(* Experiment runner: regenerates each table of EXPERIMENTS.md.

     dune exec bin/experiments.exe -- list
     dune exec bin/experiments.exe -- run overhead_vs_k
     dune exec bin/experiments.exe -- run --all
*)

open Cmdliner

let list_cmd =
  let doc = "List available experiments." in
  let run () =
    List.iter print_endline Harness.Experiments.names;
    0
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run one experiment (or --all) and print its table." in
  let all =
    Arg.(value & flag & info [ "all" ] ~doc:"Run every experiment in order.")
  in
  let names =
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"Experiment names.")
  in
  let run all names =
    if all then begin
      List.iter Harness.Report.print (Harness.Experiments.all ());
      0
    end
    else if names = [] then begin
      prerr_endline "no experiment given; try `list` or `run --all`";
      2
    end
    else
      List.fold_left
        (fun code name ->
          match Harness.Experiments.by_name name with
          | Some f ->
            Harness.Report.print (f ());
            code
          | None ->
            Fmt.epr "unknown experiment %S (see `list`)@." name;
            2)
        0 names
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ all $ names)

let chaos_cmd =
  let doc =
    "Run an oracle-certified chaos campaign: randomized fault plans (loss, \
     duplication, reordering, partitions, correlated crashes) against the \
     hardened K-optimistic protocol.  On a failure, a greedy shrinker prints \
     a 1-minimal counterexample."
  in
  let runs =
    Arg.(value & opt int 200 & info [ "runs" ] ~docv:"N" ~doc:"Number of randomized cases.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign master seed.")
  in
  let break_ =
    let breakage_conv =
      Arg.enum
        [
          ("none", Recovery.Config.no_breakage);
          ( "orphan-check",
            { Recovery.Config.no_breakage with break_orphan_check = true } );
          ( "dup-suppression",
            { Recovery.Config.no_breakage with break_dup_suppression = true } );
          ("send-gate", { Recovery.Config.no_breakage with break_send_gate = true });
        ]
    in
    Arg.(
      value
      & opt breakage_conv Recovery.Config.no_breakage
      & info [ "break" ] ~docv:"SAFEGUARD"
          ~doc:
            "Deliberately disable a protocol safeguard (orphan-check, \
             dup-suppression or send-gate) to demonstrate that the oracle \
             catches the corruption and the shrinker minimizes it.")
  in
  let storage_faults =
    Arg.(
      value & flag
      & info [ "storage-faults" ]
          ~doc:
            "Also kill one process per case over a real file-backed store and \
             damage its files before the respawn (torn final write, bit flip, \
             truncated segment, failing fsync).  Runs whose oracle violations \
             are matched by storage damage reported at reopen count as \
             detected data loss, not protocol failures.")
  in
  let run runs seed breakage storage_faults =
    Fmt.pr "chaos campaign: %d runs, master seed %d%s@." runs seed
      (if storage_faults then " (with storage faults)" else "");
    let progress i = if i mod 25 = 0 then Fmt.pr "  ... %d/%d runs@." i runs in
    let summary =
      Harness.Chaos.campaign ~breakage ~storage_faults ~progress ~runs ~seed ()
    in
    Fmt.pr
      "certified %d/%d runs, %d with detected storage data loss (max risk seen \
       %d; wire faults injected: %d lost, %d duplicated; %d protocol \
       retransmissions)@."
      summary.Harness.Chaos.certified summary.runs summary.Harness.Chaos.detected
      summary.max_risk_seen summary.total_net_lost summary.total_net_duplicated
      summary.total_retransmissions;
    match summary.Harness.Chaos.failures with
    | [] ->
      Fmt.pr "all runs oracle-certified.@.";
      0
    | (case, verdict) :: rest ->
      Fmt.pr "@.%d FAILING run(s).  First failure:@.%a@.%a@." (1 + List.length rest)
        Harness.Chaos.pp_case case Harness.Chaos.pp_verdict verdict;
      Fmt.pr "@.shrinking (greedy, 1-minimal) ...@.";
      let minimal = Harness.Chaos.shrink ~breakage case in
      let outcome = Harness.Chaos.run_case ~breakage minimal in
      Fmt.pr "minimal counterexample:@.%a@.%a@." Harness.Chaos.pp_case minimal
        Harness.Chaos.pp_verdict outcome.Harness.Chaos.verdict;
      1
  in
  Cmd.v (Cmd.info "chaos" ~doc) Term.(const run $ runs $ seed $ break_ $ storage_faults)

let () =
  let doc = "K-optimistic logging experiment suite (ICDCS '97 reproduction)" in
  let info = Cmd.info "experiments" ~version:"1.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ list_cmd; run_cmd; chaos_cmd ]))
