(* Experiment runner: regenerates each table of EXPERIMENTS.md.

     dune exec bin/experiments.exe -- list
     dune exec bin/experiments.exe -- run overhead_vs_k
     dune exec bin/experiments.exe -- run --all
*)

open Cmdliner

let list_cmd =
  let doc = "List available experiments." in
  let run () =
    List.iter print_endline Harness.Experiments.names;
    0
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Also write the produced tables (title, columns, rows, notes — \
           cells exactly as rendered) as a JSON array to $(docv).")

let write_json json reports =
  Option.iter
    (fun file ->
      let oc = open_out file in
      output_string oc (Harness.Report.json_of_reports reports);
      close_out oc;
      Fmt.pr "json written to %s@." file)
    json

let run_cmd =
  let doc = "Run one experiment (or --all) and print its table." in
  let all =
    Arg.(value & flag & info [ "all" ] ~doc:"Run every experiment in order.")
  in
  let names =
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"Experiment names.")
  in
  let run all names json =
    if all then begin
      let reports = Harness.Experiments.all () in
      List.iter Harness.Report.print reports;
      write_json json reports;
      0
    end
    else if names = [] then begin
      prerr_endline "no experiment given; try `list` or `run --all`";
      2
    end
    else begin
      let code, reports =
        List.fold_left
          (fun (code, reports) name ->
            match Harness.Experiments.by_name name with
            | Some f ->
              let r = f () in
              Harness.Report.print r;
              (code, r :: reports)
            | None ->
              Fmt.epr "unknown experiment %S (see `list`)@." name;
              (2, reports))
          (0, []) names
      in
      write_json json (List.rev reports);
      code
    end
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ all $ names $ json_arg)

let net_cmd =
  let doc =
    "Run E14: a real multi-process cluster on loopback TCP — forked koptnode \
     daemons over durable stores, SIGKILLed and respawned mid-workload, all \
     traffic through the fault-injecting proxy; per-process trace files are \
     merged and certified by the causality oracle."
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Time-capped CI mode: one small cluster, one SIGKILL, oracle must \
             certify the merged trace.")
  in
  let run smoke json =
    match Net.Deployment.experiment ~smoke () with
    | report ->
      Harness.Report.print report;
      write_json json [ report ];
      0
    | exception Failure msg ->
      Fmt.epr "FAIL: %s@." msg;
      1
  in
  Cmd.v (Cmd.info "net" ~doc) Term.(const run $ smoke $ json_arg)

let kv_cmd =
  let doc =
    "Run E15: the sharded KV service on live clusters — consistent-hash \
     routing, Zipfian open-loop load, cross-shard multi-puts whose acks are \
     K-rule output commits; baseline runs feed throughput and ack-latency \
     percentiles into BENCH_net.json, faulted runs (SIGKILLs + proxy) must \
     certify with risk at most K."
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Time-capped CI mode: one 4-shard cluster (baseline + one-kill \
             faulted run), oracle-certified.")
  in
  let run smoke json =
    match Shardkv.Service.experiment ~smoke () with
    | report, bench ->
      Harness.Report.print report;
      Harness.Report.merge_bench "BENCH_net.json" bench;
      Fmt.pr "merged %d E15 keys into BENCH_net.json@." (List.length bench);
      write_json json [ report ];
      0
    | exception Failure msg ->
      Fmt.epr "FAIL: %s@." msg;
      1
  in
  Cmd.v (Cmd.info "kv" ~doc) Term.(const run $ smoke $ json_arg)

let recovery_cmd =
  let doc =
    "Run E16: fast recovery on live clusters — SIGKILL a daemon, respawn it \
     immediately, and race a probe Get against the replay; measures ttfr \
     (time to first answered request, served from the probe's hot partition \
     while the rest of the log replays) and ttfull (time to full recovery) \
     across log lengths, with and without incremental per-partition \
     checkpoints; baseline rows feed ttfr/ttfull into BENCH_net.json and \
     every run must oracle-certify with risk at most K."
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Time-capped CI mode: one small cluster, one SIGKILL + probe, \
             oracle-certified.")
  in
  let run smoke json =
    match Net.Recovery_exp.experiment ~smoke () with
    | report, bench ->
      Harness.Report.print report;
      if bench <> [] then begin
        Harness.Report.merge_bench "BENCH_net.json" bench;
        Fmt.pr "merged %d E16 keys into BENCH_net.json@." (List.length bench)
      end;
      write_json json [ report ];
      0
    | exception Failure msg ->
      Fmt.epr "FAIL: %s@." msg;
      1
  in
  Cmd.v (Cmd.info "recovery" ~doc) Term.(const run $ smoke $ json_arg)

let churn_cmd =
  let doc =
    "Run E17: membership churn and degraded modes on live clusters — add a \
     daemon mid-run (Join handshake widens incumbent dependency vectors), \
     SIGKILL+respawn an incumbent, retire a daemon gracefully (frontier \
     broadcast), rejoin it over its own store, rolling-restart the widened \
     cluster, and arm a disk-full brownout window on one store; every run \
     must oracle-certify at the final membership width with risk at most K, \
     and the brownout must be reported (refused-flush counter) without ever \
     being visible to the oracle."
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Time-capped CI mode: one small k=1 run covering the full churn \
             sequence, oracle-certified.")
  in
  let run smoke json =
    match Net.Churn_exp.experiment ~smoke () with
    | report, bench ->
      Harness.Report.print report;
      if bench <> [] then begin
        Harness.Report.merge_bench "BENCH_net.json" bench;
        Fmt.pr "merged %d E17 keys into BENCH_net.json@." (List.length bench)
      end;
      write_json json [ report ];
      0
    | exception Failure msg ->
      Fmt.epr "FAIL: %s@." msg;
      1
  in
  Cmd.v (Cmd.info "churn" ~doc) Term.(const run $ smoke $ json_arg)

let breakage_conv =
  Arg.enum
    [
      ("none", Recovery.Config.no_breakage);
      ("orphan-check", { Recovery.Config.no_breakage with break_orphan_check = true });
      ( "dup-suppression",
        { Recovery.Config.no_breakage with break_dup_suppression = true } );
      ("send-gate", { Recovery.Config.no_breakage with break_send_gate = true });
    ]

let break_arg =
  Arg.(
    value
    & opt breakage_conv Recovery.Config.no_breakage
    & info [ "break" ] ~docv:"SAFEGUARD"
        ~doc:
          "Deliberately disable a protocol safeguard (orphan-check, \
           dup-suppression or send-gate) to demonstrate that the oracle catches \
           the corruption.")

let chaos_cmd =
  let doc =
    "Run an oracle-certified chaos campaign: randomized fault plans (loss, \
     duplication, reordering, partitions, correlated crashes) against the \
     hardened K-optimistic protocol.  On a failure, a greedy shrinker prints \
     a 1-minimal counterexample."
  in
  let runs =
    Arg.(value & opt int 200 & info [ "runs" ] ~docv:"N" ~doc:"Number of randomized cases.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign master seed.")
  in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE"
          ~doc:
            "Write the minimized counterexample as a replayable schedule file \
             (see PROTOCOL.md for the format; replay with $(b,explore --replay)).")
  in
  let storage_faults =
    Arg.(
      value & flag
      & info [ "storage-faults" ]
          ~doc:
            "Also kill one process per case over a real file-backed store and \
             damage its files before the respawn (torn final write, bit flip, \
             truncated segment, failing fsync).  Runs whose oracle violations \
             are matched by storage damage reported at reopen count as \
             detected data loss, not protocol failures.")
  in
  let run runs seed breakage storage_faults save =
    Fmt.pr "chaos campaign: %d runs, master seed %d%s@." runs seed
      (if storage_faults then " (with storage faults)" else "");
    let progress i = if i mod 25 = 0 then Fmt.pr "  ... %d/%d runs@." i runs in
    let summary =
      Harness.Chaos.campaign ~breakage ~storage_faults ~progress ~runs ~seed ()
    in
    Fmt.pr
      "certified %d/%d runs, %d with detected storage data loss (max risk seen \
       %d; wire faults injected: %d lost, %d duplicated; %d protocol \
       retransmissions)@."
      summary.Harness.Chaos.certified summary.runs summary.Harness.Chaos.detected
      summary.max_risk_seen summary.total_net_lost summary.total_net_duplicated
      summary.total_retransmissions;
    match summary.Harness.Chaos.failures with
    | [] ->
      Fmt.pr "all runs oracle-certified.@.";
      0
    | (case, verdict) :: rest ->
      Fmt.pr "@.%d FAILING run(s).  First failure:@.%a@.%a@." (1 + List.length rest)
        Harness.Chaos.pp_case case Harness.Chaos.pp_verdict verdict;
      Fmt.pr "@.shrinking (greedy, 1-minimal) ...@.";
      let minimal = Harness.Chaos.shrink ~breakage case in
      let outcome = Harness.Chaos.run_case ~breakage minimal in
      let sched =
        Harness.Chaos.to_schedule ~breakage ~name:(Fmt.str "chaos-seed%d-minimal" seed)
          minimal outcome.Harness.Chaos.verdict
      in
      Fmt.pr "minimal counterexample (replayable schedule):@.%a%a@."
        Harness.Schedule.pp sched Harness.Chaos.pp_verdict
        outcome.Harness.Chaos.verdict;
      Option.iter
        (fun file ->
          Harness.Schedule.save sched ~file;
          Fmt.pr "schedule written to %s (replay with `explore --replay %s`)@." file
            file)
        save;
      1
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(const run $ runs $ seed $ break_arg $ storage_faults $ save)

let explore_cmd =
  let doc =
    "Exhaustively model-check a bounded configuration: enumerate every \
     schedule (up to partial-order equivalence) of a small cluster with all \
     messages, crashes and flushes enabled from time zero, certifying each \
     complete execution with the causality oracle and the Theorem-4 K-risk \
     bound.  Counter-examples are written as replayable schedule files."
  in
  let iopt name v d = Arg.(value & opt int v & info [ name ] ~docv:"N" ~doc:d) in
  let n =
    Arg.(value & opt int 2 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of processes.")
  in
  let k =
    Arg.(
      value & opt int 1
      & info [ "k"; "optimism" ] ~docv:"K" ~doc:"Degree of optimism (0 <= K <= n).")
  in
  let messages = iopt "messages" 3 "Client injections (one-hop Forward chains)." in
  let crashes = iopt "crashes" 1 "Fail-stop crashes, all enabled from time 0." in
  let flushes = iopt "flushes" 1 "Explicit flush events (stability progress)." in
  let seed = iopt "seed" 1 "Simulator seed (storage/jitter streams; unused draws)." in
  let depth =
    iopt "depth" Harness.Explore.default_bounds.Harness.Explore.max_depth
      "Schedule-length bound; deeper branches are truncated."
  in
  let max_schedules =
    iopt "max-schedules" Harness.Explore.default_bounds.Harness.Explore.max_schedules
      "Stop after this many complete executions."
  in
  let preemptions =
    Arg.(
      value
      & opt (some int) None
      & info [ "preemptions" ] ~docv:"P"
          ~doc:
            "Context bound: maximum number of switches away from a process \
             that still has a runnable event (default: unbounded, i.e. \
             exhaustive).")
  in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE"
          ~doc:"Write the first counter-example schedule to FILE.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Instead of exploring, replay the schedule in FILE and check that \
             it reproduces its recorded verdict.")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Time-capped CI mode: exhaust one small clean configuration \
             (expecting zero violations) and one with the send gate \
             deliberately broken (expecting a counter-example that replays to \
             the same verdict).")
  in
  let run_replay file =
    match Harness.Schedule.load ~file with
    | Error msg ->
      Fmt.epr "cannot load %s: %s@." file msg;
      2
    | Ok sched ->
      let verdict = Harness.Explore.replay sched in
      let matches =
        Harness.Explore.verdict_matches sched.Harness.Schedule.expect verdict
      in
      Fmt.pr "%s: recorded %a, replayed %a -> %s@." sched.Harness.Schedule.name
        Harness.Schedule.pp_expect sched.Harness.Schedule.expect
        Harness.Chaos.pp_verdict verdict
        (if matches then "MATCH" else "MISMATCH");
      if matches then 0 else 1
  in
  let report ?save r =
    Fmt.pr "%a@." Harness.Explore.pp_result r;
    match r.Harness.Explore.violations with
    | [] -> 0
    | (sched, notes) :: _ as all ->
      Fmt.pr "@.%d counter-example(s); first:@.%a@.%a@." (List.length all)
        Harness.Schedule.pp sched
        Fmt.(list ~sep:cut string)
        notes;
      Option.iter
        (fun file ->
          Harness.Schedule.save sched ~file;
          Fmt.pr "schedule written to %s (replay with `explore --replay %s`)@." file
            file)
        (Option.join save);
      1
  in
  let run_smoke () =
    (* Small enough to exhaust in seconds; the cap is a safety net only. *)
    let p =
      {
        Harness.Schedule.n = 2;
        k = 1;
        messages = 2;
        crashes = 1;
        flushes = 1;
        seed = 1;
      }
    in
    let bounds =
      { Harness.Explore.default_bounds with Harness.Explore.max_schedules = 50_000 }
    in
    let clean = Harness.Explore.run ~bounds p in
    Fmt.pr "clean: %a@.@." Harness.Explore.pp_result clean;
    let breakage = { Recovery.Config.no_breakage with break_send_gate = true } in
    let broken = Harness.Explore.run ~breakage ~bounds p in
    Fmt.pr "broken send gate: %a@." Harness.Explore.pp_result broken;
    if not (Harness.Explore.ok clean) then begin
      Fmt.epr "FAIL: clean configuration has violations@.";
      1
    end
    else if Harness.Explore.ok broken then begin
      Fmt.epr "FAIL: broken send gate produced no counter-example@.";
      1
    end
    else begin
      let sched, _ = List.hd broken.Harness.Explore.violations in
      let verdict = Harness.Explore.replay sched in
      if Harness.Explore.verdict_matches sched.Harness.Schedule.expect verdict
      then begin
        Fmt.pr "counter-example %s replays to its recorded verdict.@."
          sched.Harness.Schedule.name;
        0
      end
      else begin
        Fmt.epr "FAIL: counter-example did not replay to its recorded verdict@.";
        1
      end
    end
  in
  let run n k messages crashes flushes seed depth max_schedules preemptions
      breakage save replay smoke =
    match replay with
    | Some file -> run_replay file
    | None ->
      if smoke then run_smoke ()
      else begin
        let p =
          { Harness.Schedule.n; k; messages; crashes; flushes; seed }
        in
        let bounds =
          {
            Harness.Explore.max_depth = depth;
            max_schedules;
            preemptions;
          }
        in
        report ~save (Harness.Explore.run ~breakage ~bounds p)
      end
  in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(
      const run $ n $ k $ messages $ crashes $ flushes $ seed $ depth
      $ max_schedules $ preemptions $ break_arg $ save $ replay $ smoke)

let () =
  let doc = "K-optimistic logging experiment suite (ICDCS '97 reproduction)" in
  let info = Cmd.info "experiments" ~version:"1.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            list_cmd; run_cmd; chaos_cmd; explore_cmd; net_cmd; kv_cmd;
            recovery_cmd; churn_cmd;
          ]))
