(* koptnode: one recovery-protocol process as a real OS daemon.

   Wires together a [Recovery.Node] over the durable file-backed store, the
   loopback TCP transport, and a control socket the deployment driver uses
   to inject client messages, poll status and request a graceful drain.
   The kvstore application is the workload (its multi-hop Put -> Replica
   chains exercise cross-process causality over the real network).

   Single-ownership design: one main-loop thread owns the node; transport
   reader threads, timer threads and control-connection threads only append
   events to a mailbox.  Each wakeup drains the {e whole} mailbox and
   processes it as one batch: actions are accumulated across the batch, the
   trace file is synced once per batch {e before} any action reaches the
   wire (so the persisted trace is always ahead of what peers have seen —
   strictly stronger than the old per-event sync-after-dispatch), and if
   the batch left gated sends or uncommitted outputs behind, a flush is run
   immediately instead of waiting for the flush timer (the group-commit
   layer in the durable store coalesces the resulting fsyncs).  Outgoing
   application frames piggyback the node's current logging-progress notice
   (frame kind 9), so stability news travels at data-traffic speed; the
   notice timer remains the fallback for idle periods.  A SIGKILL loses at
   most the batch being formatted — the deployment's merge step truncates
   any torn tail and synthesises the missing [Crashed] event from the
   successor's [Restarted]. *)

module Node = Recovery.Node
module Trace = Recovery.Trace
module Config = Recovery.Config
module Wire_codec = Net.Wire_codec
module Trace_codec = Net.Trace_codec
module App = App_model.Kvstore_app

type 'msg event =
  | From_net of 'msg Recovery.Wire.packet
  | Control of 'msg Wire_codec.control * Unix.file_descr
  | Timer of [ `Flush | `Checkpoint | `Notice | `Retransmit | `Part_ckpt ]

type 'msg mailbox = {
  q : 'msg event Queue.t;
  mu : Mutex.t;
  cond : Condition.t;
}

let mailbox () = { q = Queue.create (); mu = Mutex.create (); cond = Condition.create () }

let post mb ev =
  Mutex.lock mb.mu;
  Queue.add ev mb.q;
  Condition.signal mb.cond;
  Mutex.unlock mb.mu

(* Block for at least one event, then drain what is available, up to a
   cap: the main loop processes the mailbox in batches.  The cap bounds
   how much pending work (gated sends, uncommitted outputs) can pile up
   between two stability points — the per-event buffer scans are linear in
   those buffers, so unbounded batches would go quadratic under an
   injection burst. *)
let batch_cap = 256

let take_batch mb =
  Mutex.lock mb.mu;
  while Queue.is_empty mb.q do
    Condition.wait mb.cond mb.mu
  done;
  let rec grab k acc =
    if k = 0 || Queue.is_empty mb.q then List.rev acc
    else grab (k - 1) (Queue.pop mb.q :: acc)
  in
  let evs = grab batch_cap [] in
  Mutex.unlock mb.mu;
  evs

let pending mb =
  Mutex.lock mb.mu;
  let n = Queue.length mb.q in
  Mutex.unlock mb.mu;
  n

let write_all fd s =
  let buf = Bytes.unsafe_of_string s in
  let n = Bytes.length buf in
  let rec loop off =
    if off = n then true
    else
      match Unix.write fd buf off (n - off) with
      | 0 -> false
      | k -> loop (off + k)
      | exception Unix.Unix_error _ -> false
  in
  loop 0

let read_exact fd n =
  let buf = Bytes.create n in
  let rec loop off =
    if off = n then Some (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> None
      | k -> loop (off + k)
      | exception Unix.Unix_error _ -> None
  in
  loop 0

(* Read one control frame off a connection. *)
let read_control wire fd =
  match read_exact fd Wire_codec.header_bytes with
  | None -> None
  | Some header -> (
    match Wire_codec.parse_header header ~pos:0 with
    | Error _ -> None
    | Ok (kind, len) -> (
      match if len = 0 then Some "" else read_exact fd len with
      | None -> None
      | Some payload -> (
        match Wire_codec.check_frame ~header ~payload with
        | Error _ -> None
        | Ok () -> (
          match Wire_codec.decode_control_body wire ~kind payload with
          | Error _ -> None
          | Ok ctl -> Some ctl))))

(* The node's protocol metrics are a single-threaded record bumped by the
   main loop; rather than scatter registry calls through lib/recovery, a
   collect hook mirrors them into the daemon's registry whenever a
   snapshot is taken (Stats scrape or the Quit-time metrics file).  The
   latency summaries keep their raw samples, so the hook rebuilds exact
   histograms — sum/min/max are exact, only the quantile estimates are
   bucket-quantised.  Counter names carry the [_total] suffix the
   exposition format uses throughout. *)
let node_metric_counters : (string * (Recovery.Metrics.t -> int)) list =
  [
    ("deliveries_total", fun m -> m.Recovery.Metrics.deliveries);
    ("sends_total", fun m -> m.Recovery.Metrics.sends);
    ("releases_total", fun m -> m.Recovery.Metrics.releases);
    ("orphans_discarded_total", fun m -> m.Recovery.Metrics.orphans_discarded);
    ("duplicates_dropped_total", fun m -> m.Recovery.Metrics.duplicates_dropped);
    ("cancelled_sends_total", fun m -> m.Recovery.Metrics.cancelled_sends);
    ("induced_rollbacks_total", fun m -> m.Recovery.Metrics.induced_rollbacks);
    ("restarts_total", fun m -> m.Recovery.Metrics.restarts);
    ("undone_intervals_total", fun m -> m.Recovery.Metrics.undone_intervals);
    ("lost_intervals_total", fun m -> m.Recovery.Metrics.lost_intervals);
    ("replayed_total", fun m -> m.Recovery.Metrics.replayed);
    ("outputs_committed_total", fun m -> m.Recovery.Metrics.outputs_committed);
    ("notices_total", fun m -> m.Recovery.Metrics.notices);
    ("announcements_sent_total", fun m -> m.Recovery.Metrics.announcements_sent);
    ("acks_sent_total", fun m -> m.Recovery.Metrics.acks_sent);
    ("retransmissions_total", fun m -> m.Recovery.Metrics.retransmissions);
  ]

(* Histograms of the node's abstract-unit latency summaries (config time
   units, not seconds — the bucket grid is unit-agnostic). *)
let node_metric_summaries : (string * (Recovery.Metrics.t -> Sim.Summary.t)) list =
  [
    ("blocked_time", fun m -> m.Recovery.Metrics.blocked_time);
    ("release_dep_entries", fun m -> m.Recovery.Metrics.release_dep_entries);
    ("delivery_delay", fun m -> m.Recovery.Metrics.delivery_delay);
    ("output_latency", fun m -> m.Recovery.Metrics.output_latency);
  ]

let run (type state msg) ~(app : (state, msg) App_model.App_intf.t)
    ~(wire : msg App_model.App_intf.wire_format) ~pid ~n ~k ~listen_port ~peers
    ~control_port ~store_dir ~trace_file ~metrics_file ~epoch ~time_scale
    ~retransmit ~ckpt_interval ~part_ckpt ~join =
  let config =
    Config.harden ?retransmit_interval:retransmit
      (Config.k_optimistic ~n ~k ())
  in
  (* --ckpt-interval overrides the full-checkpoint period; 0 disables it
     (incremental per-partition checkpoints, when armed, keep replay
     bounded instead). *)
  let checkpoint_interval =
    match ckpt_interval with
    | None -> config.Config.timing.Config.checkpoint_interval
    | Some i when i <= 0. -> None
    | Some i -> Some i
  in
  let now () = (Unix.gettimeofday () -. epoch) /. time_scale in
  let trace = Trace.create () in
  let writer = Trace_codec.open_writer trace_file in
  let mb = mailbox () in
  (* One registry for the whole process: the store (and its group-commit
     layer), the transport, the main loop's phase spans and the
     metrics-record bridge below all land in it, so a single Stats scrape
     — or the Quit-time metrics file — is the full picture.  A [Crash]
     respawn reuses it: the reopened store's counters continue rather
     than reset, matching the incarnation-spanning metrics record. *)
  let obs = Obs.Registry.create () in
  let node = ref (Node.create ~config ~pid ~app ~store_dir ~obs ~trace) in
  (* Bridge the node's single-threaded metrics record into the registry
     at collect time (see [node_metric_counters] above).  The hook reads
     [!node] each collect, so it survives Crash respawns. *)
  let bridge_counters =
    List.map
      (fun (name, read) -> (Obs.Registry.counter obs name, read))
      node_metric_counters
  in
  let bridge_hists =
    List.map
      (fun (name, read) -> (Obs.Registry.histogram obs name, read))
      node_metric_summaries
  in
  let g_recovery_active = Obs.Registry.gauge obs "recovery_active" in
  let g_replay_pending = Obs.Registry.gauge obs "recovery_replay_pending" in
  let g_parts_total = Obs.Registry.gauge obs "recovery_partitions_total" in
  let g_parts_recovered = Obs.Registry.gauge obs "recovery_partitions_recovered" in
  Obs.Registry.on_collect obs (fun () ->
      let m = Node.metrics !node in
      List.iter (fun (c, read) -> Obs.Counter.set c (read m)) bridge_counters;
      List.iter
        (fun (h, read) ->
          Obs.Histogram.reset h;
          List.iter (Obs.Histogram.observe h) (Sim.Summary.samples (read m)))
        bridge_hists;
      Obs.Gauge.set g_recovery_active
        (if Node.recovery_active !node then 1. else 0.);
      Obs.Gauge.set g_replay_pending (float_of_int (Node.recovery_pending !node));
      let parts = Node.partition_count !node in
      Obs.Gauge.set g_parts_total (float_of_int parts);
      let recovered = ref 0 in
      for p = 0 to parts - 1 do
        if Node.partition_recovered !node p then incr recovered
      done;
      Obs.Gauge.set g_parts_recovered (float_of_int !recovered));

  (* Transport: frames from peers become mailbox events; decode failures
     are reported on stderr (and counted by the transport), never lost. *)
  let on_error msg = Fmt.epr "[koptnode %d] %s@." pid msg in
  let on_frame ~src:_ ~kind ~body =
    if kind = Wire_codec.app_notice_kind then
      (* Piggybacked logging progress: absorb the notice before the app
         message it rode in on, as if it had arrived just ahead of it. *)
      match Wire_codec.decode_data_body wire ~kind body with
      | Ok (m, notice) ->
        Option.iter (fun nt -> post mb (From_net (Recovery.Wire.Notice nt))) notice;
        post mb (From_net (Recovery.Wire.App m))
      | Error e -> on_error (Fmt.str "undecodable data frame (kind %d): %s" kind e)
    else
      match Wire_codec.decode_packet_body wire ~kind body with
      | Ok packet -> post mb (From_net packet)
      | Error e -> on_error (Fmt.str "undecodable packet (kind %d): %s" kind e)
  in
  let transport =
    Net.Transport.create ~self:pid ~listen_port ~peers ~on_frame ~on_error ~obs ()
  in
  let dispatch actions =
    List.iter
      (fun action ->
        match (action : msg Node.action) with
        | Node.Unicast { dst; packet = Recovery.Wire.App m } ->
          (* Data frames carry the current stability frontier along. *)
          Net.Transport.send transport ~dst
            (Wire_codec.encode_data wire
               ?piggyback:(Node.current_notice !node) m)
        | Node.Unicast { dst; packet } ->
          Net.Transport.send transport ~dst
            (Wire_codec.encode_packet wire packet)
        | Node.Broadcast packet ->
          Net.Transport.broadcast transport
            (Wire_codec.encode_packet wire packet))
      actions
  in

  (* Timers, one thread per configured period (abstract units scaled to
     wall clock). *)
  let stopping = ref false in
  let timer kind interval =
    match interval with
    | None -> ()
    | Some period ->
      let delay = period *. time_scale in
      ignore
        (Thread.create
           (fun () ->
             while not !stopping do
               Thread.delay delay;
               if not !stopping then post mb (Timer kind)
             done)
           ()
          : Thread.t)
  in
  timer `Flush config.Config.timing.Config.flush_interval;
  timer `Checkpoint checkpoint_interval;
  timer `Notice config.Config.timing.Config.notice_interval;
  timer `Retransmit config.Config.timing.Config.retransmit_interval;
  timer `Part_ckpt part_ckpt;

  (* Control socket: each accepted connection feeds control frames into the
     mailbox; replies are written by the main loop. *)
  let control_sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt control_sock Unix.SO_REUSEADDR true;
  Unix.bind control_sock (Unix.ADDR_INET (Unix.inet_addr_loopback, control_port));
  Unix.listen control_sock 16;
  let control_conn fd =
    let rec loop () =
      match read_control wire fd with
      | None -> (try Unix.close fd with Unix.Unix_error _ -> ())
      | Some ctl ->
        post mb (Control (ctl, fd));
        loop ()
    in
    loop ()
  in
  ignore
    (Thread.create
       (fun () ->
         let rec loop () =
           match Unix.accept control_sock with
           | fd, _ ->
             ignore (Thread.create control_conn fd : Thread.t);
             loop ()
           | exception Unix.Unix_error _ -> ()
         in
         loop ())
       ()
      : Thread.t);

  (* Boot: a pre-existing store means we are the successor of a killed
     incarnation.  [restart_begin] completes the protocol part of Figure
     3's Restart (announcement, incarnation bump) immediately and defers
     the application replay into per-partition queues — the daemon starts
     serving requests on recovered partitions while the main loop pumps
     [replay_step] in the background. *)
  if not (Node.is_up !node) then
    dispatch (fst (Node.restart_begin !node ~now:(now ())));
  (* A joiner introduces itself: the Join broadcast carries its current
     frontier, and every incumbent widens its dependency vector on receipt
     (the driver has already pointed them at our data port via Add_peer). *)
  if join then dispatch (fst (Node.announce_join !node ~now:(now ())));
  Trace_codec.sync writer trace;

  (* Main-loop phase timing, always on: what the retired KOPT_PROF env
     knob printed at exit is now four [phase_seconds] histograms in the
     registry, readable live over the Stats arm.  B13 pins the per-record
     cost low enough to leave enabled unconditionally. *)
  let span phase =
    Obs.Span.create obs ~labels:[ ("phase", phase) ] "phase_seconds"
  in
  let sp_handle = span "handle" in
  let sp_flush = span "flush" in
  let sp_sync = span "sync" in
  let sp_dispatch = span "dispatch" in
  let c_batches = Obs.Registry.counter obs "batches_total" in
  let c_batch_events = Obs.Registry.counter obs "batch_events_total" in
  let c_eager_flushes = Obs.Registry.counter obs "eager_flushes_total" in
  let reply fd ctl =
    ignore (write_all fd (Wire_codec.encode_control wire ctl) : bool)
  in
  let finish () =
    stopping := true;
    Trace_codec.sync writer trace;
    Trace_codec.close_writer writer;
    let oc = open_out metrics_file in
    output_string oc (Obs.Snapshot.to_text (Obs.Registry.snapshot obs));
    close_out oc;
    Net.Transport.close transport;
    (try Unix.close control_sock with Unix.Unix_error _ -> ())
  in
  (* Batched main loop.  Per wakeup: drain the mailbox, run every event
     through the node accumulating its actions (syncing the trace file as
     events produce entries), flush eagerly if the batch left gated sends
     or uncommitted outputs behind, and only then put the accumulated
     actions on the wire — the persisted trace is always ahead of the
     store's stability point and of anything a peer can have seen. *)
  (* On-demand recovery: replay the partition clients are actually asking
     for first.  Parked requests sit in the node's receive buffer; the most
     frequently named unrecovered partition is the hottest. *)
  let hot_partition () =
    let parts = Node.partition_count !node in
    if parts = 0 then None
    else begin
      let votes = Array.make parts 0 in
      List.iter
        (fun (m : msg Recovery.Wire.app_message) ->
          match Node.partition_of_payload !node m.Recovery.Wire.payload with
          | Some p when not (Node.partition_recovered !node p) ->
            votes.(p) <- votes.(p) + 1
          | Some _ | None -> ())
        (Node.receive_buffer_messages !node);
      let best = ref (-1) in
      Array.iteri (fun p c -> if c > 0 && (!best < 0 || c > votes.(!best)) then best := p) votes;
      if !best < 0 then None else Some !best
    end
  in
  (* Replay pacing: each re-executed record costs [t_replay] abstract
     units, the same charge the simulator's cost model levies — so ttfull
     measured here scales with log length the way E6 predicts. *)
  let replay_budget = 32 in
  let replay_pace executed =
    if executed > 0 then
      Thread.delay
        (float_of_int executed *. config.Config.timing.Config.t_replay *. time_scale)
  in
  let rec main_loop () =
    (* While a replay is in progress the loop must not block on the
       mailbox: an idle wakeup pumps the replay queues instead. *)
    let batch =
      if Node.recovery_active !node && pending mb = 0 then []
      else take_batch mb
    in
    let acc = ref [] in
    let add actions = if actions <> [] then acc := actions :: !acc in
    let quit_fd = ref None in
    let step_up f = if Node.is_up !node then add (fst (f !node ~now:(now ()))) in
    let process ev =
      match ev with
      | From_net packet -> step_up (fun nd ~now -> Node.handle_packet nd ~now packet)
      | Timer `Part_ckpt ->
        step_up (fun nd ~now ->
            let _, actions, cost = Node.partition_checkpoint nd ~now in
            (actions, cost))
      | Timer ((`Flush | `Checkpoint | `Notice | `Retransmit) as kind) ->
        step_up
          (match kind with
          | `Flush -> Node.flush
          | `Checkpoint -> Node.checkpoint
          | `Notice -> Node.broadcast_notice
          | `Retransmit -> Node.retransmit_tick)
      | Control (ctl, fd) -> (
        match ctl with
        | Wire_codec.Inject { seq; payload } ->
          step_up (fun nd ~now -> Node.inject nd ~now ~seq payload)
        | Wire_codec.Tick t ->
          step_up
            (match t with
            | `Flush -> Node.flush
            | `Checkpoint -> Node.checkpoint
            | `Notice -> Node.broadcast_notice)
        | Wire_codec.Crash ->
          (* Soft fail-stop: same recovery path as a SIGKILL + respawn,
             without losing the OS process. *)
          Node.halt !node ~now:(now ());
          Trace_codec.sync writer trace;
          Thread.delay (Config.real_restart_delay ~time_scale config.Config.timing);
          node := Node.create ~config ~pid ~app ~store_dir ~obs ~trace;
          add (fst (Node.restart_begin !node ~now:(now ())))
        | Wire_codec.Status_req ->
          let m = Node.metrics !node in
          reply fd
            (Wire_codec.Status
               {
                 st_up = Node.is_up !node;
                 st_pending = pending mb;
                 st_send_buf = Node.send_buffer_size !node;
                 st_recv_buf = Node.receive_buffer_size !node;
                 st_out_buf = Node.output_buffer_size !node;
                 st_deliveries = m.Recovery.Metrics.deliveries;
                 st_trace_len = Trace.length trace;
                 st_current = Node.current !node;
                 st_recovering = Node.recovery_active !node;
                 st_replay_pending = Node.recovery_pending !node;
               })
        | Wire_codec.Add_peer { pid = peer_pid; port } ->
          (* Live membership: a joiner's data port.  The transport treats a
             known pid as a no-op, so re-announcement is harmless. *)
          Net.Transport.add_peer transport ~pid:peer_pid ~port
        | Wire_codec.Retire_req ->
          (* Graceful permanent leave: broadcast the final frontier (a
             forced flush inside [Node.retire] makes it stable first), then
             drain and exit exactly like Quit — the accumulated Retire
             broadcast goes on the wire before the drain closes shop. *)
          step_up (fun nd ~now -> Node.retire nd ~now);
          quit_fd := Some fd
        | Wire_codec.Arm_brownout { slow; rounds } -> (
          match slow with
          | None -> Node.arm_storage_disk_full !node ~rounds
          | Some delay -> Node.arm_storage_slow_fsync !node ~delay ~rounds)
        | Wire_codec.Stats_req ->
          (* Live scrape: a full consistent snapshot of the registry (the
             collect hook above refreshes the bridged node metrics first),
             serialised as the versioned text exposition. *)
          reply fd
            (Wire_codec.Stats (Obs.Snapshot.to_text (Obs.Registry.snapshot obs)))
        | Wire_codec.Quit -> quit_fd := Some fd
        | Wire_codec.Hello _ | Wire_codec.Status _ | Wire_codec.Stats _
        | Wire_codec.Bye -> ())
    in
    let rec consume = function
      | [] -> ()
      | ev :: rest ->
        process ev;
        (* The trace file must never fall behind the stable store: a later
           event in this batch may fsync the store (rollback, checkpoint,
           output commit), and a SIGKILL between that fsync and a
           batch-end-only trace sync would leave the store remembering
           deliveries whose trace events were lost — the respawned node
           then replays intervals the merged trace never saw created live.
           [Trace_codec.sync] is O(1) when the event added nothing, so this
           keeps the batch's single eager fsync as the only per-batch cost. *)
        Trace_codec.sync writer trace;
        if !quit_fd = None then consume rest
    in
    Obs.Counter.incr c_batches;
    Obs.Counter.add c_batch_events (List.length batch);
    Obs.Span.time sp_handle (fun () -> consume batch);
    (* Background replay pump: one bounded step per wakeup, prioritising
       the partition parked client requests are waiting on.  Interleaving
       with the batch processing above is what makes recovery on-demand —
       Gets on recovered partitions are answered between steps. *)
    if !quit_fd = None && Node.recovery_active !node then begin
      let prefer = hot_partition () in
      let executed, actions, _cost =
        Node.replay_step !node ~now:(now ()) ?prefer ~budget:replay_budget ()
      in
      add actions;
      Trace_codec.sync writer trace;
      replay_pace executed
    end;
    (* Eager flush: anything the batch left volatile gets its stability
       point now instead of at the next flush-timer tick — gated sends
       release, outputs commit, and fresh deliveries are acknowledged
       before the senders' retransmission timers re-send them.  The group
       commit layer makes the per-batch fsync cheap; idle batches skip it
       entirely. *)
    if
      !quit_fd = None
      && Node.is_up !node
      && (Node.volatile_log_length !node > 0
         || Node.output_buffer_size !node > 0
         || Node.send_buffer_size !node > 0)
    then begin
      Obs.Counter.incr c_eager_flushes;
      Obs.Span.time sp_flush (fun () -> add (fst (Node.flush !node ~now:(now ()))))
    end;
    Obs.Span.time sp_sync (fun () -> Trace_codec.sync writer trace);
    Obs.Span.time sp_dispatch (fun () -> List.iter dispatch (List.rev !acc));
    match !quit_fd with
    | Some fd ->
      (* Graceful drain: one last flush gives everything volatile its
         stability point (and the dispatch below puts the resulting
         releases on the wire), then [halt] records the clean exit as a
         [Crashed] with no lost interval — the oracle treats that as a
         no-op, so a quit daemon is distinguishable in the merged trace
         from a torn SIGKILL without weakening certification. *)
      if Node.is_up !node then begin
        (* Finish any in-progress replay first so the drain leaves a fully
           recovered store (and the merged trace its Recovery_completed). *)
        if Node.recovery_active !node then begin
          let _, actions, _ =
            Node.replay_step !node ~now:(now ()) ~budget:max_int ()
          in
          Trace_codec.sync writer trace;
          dispatch actions
        end;
        let actions = fst (Node.flush !node ~now:(now ())) in
        Trace_codec.sync writer trace;
        dispatch actions;
        Node.halt !node ~now:(now ())
      end;
      finish ();
      reply fd Wire_codec.Bye
    | None -> main_loop ()
  in
  main_loop ()

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)

open Cmdliner

let peers_conv =
  let parse s =
    try
      Ok
        (String.split_on_char ',' s
        |> List.filter (fun s -> s <> "")
        |> List.map (fun kv ->
               match String.split_on_char ':' kv with
               | [ pid; port ] -> (int_of_string pid, int_of_string port)
               | _ -> failwith "bad"))
    with _ -> Error (`Msg "expected PID:PORT[,PID:PORT...]")
  in
  let print ppf peers =
    Fmt.pf ppf "%a"
      (Fmt.list ~sep:(Fmt.any ",") (fun ppf (p, q) -> Fmt.pf ppf "%d:%d" p q))
      peers
  in
  Arg.conv (parse, print)

let cmd =
  let pid = Arg.(required & opt (some int) None & info [ "pid" ] ~doc:"Process id.") in
  let n =
    Arg.(required & opt (some int) None & info [ "nodes" ] ~doc:"Cluster size.")
  in
  let k =
    Arg.(required & opt (some int) None & info [ "optimism" ] ~doc:"Degree of optimism.")
  in
  let listen_port =
    Arg.(required & opt (some int) None & info [ "listen" ] ~doc:"Data port to listen on.")
  in
  let peers =
    Arg.(
      value & opt peers_conv []
      & info [ "peers" ] ~doc:"Peer data ports as PID:PORT,... (proxy ports under faults).")
  in
  let control_port =
    Arg.(required & opt (some int) None & info [ "control" ] ~doc:"Control port.")
  in
  let store_dir =
    Arg.(
      required & opt (some string) None
      & info [ "store-dir" ] ~doc:"Durable store directory (survives SIGKILL).")
  in
  let trace_file =
    Arg.(required & opt (some string) None & info [ "trace-file" ] ~doc:"Trace output file.")
  in
  let metrics_file =
    Arg.(
      required & opt (some string) None
      & info [ "metrics-file" ] ~doc:"Metrics output file (written on Quit).")
  in
  let epoch =
    Arg.(
      value & opt float 0.
      & info [ "epoch" ] ~doc:"Shared wall-clock origin (Unix time) for trace timestamps.")
  in
  let time_scale =
    Arg.(
      value
      & opt float Config.default_time_scale
      & info [ "time-scale" ] ~doc:"Seconds per abstract time unit.")
  in
  let retransmit =
    Arg.(
      value & opt (some float) None
      & info [ "retransmit" ] ~doc:"Retransmission period (abstract units).")
  in
  let ckpt_interval =
    Arg.(
      value & opt (some float) None
      & info [ "ckpt-interval" ]
          ~doc:"Full-checkpoint period (abstract units); 0 disables it.")
  in
  let part_ckpt =
    Arg.(
      value & opt (some float) None
      & info [ "part-ckpt" ]
          ~doc:"Incremental per-partition checkpoint period (abstract units).")
  in
  let app_t =
    Arg.(
      value
      & opt (enum [ ("kvstore", `Kvstore); ("shardkv", `Shardkv) ]) `Kvstore
      & info [ "app" ] ~doc:"Application to run: $(b,kvstore) or $(b,shardkv).")
  in
  let join =
    Arg.(
      value & flag
      & info [ "join" ]
          ~doc:"Announce this process as a joiner on boot (membership churn).")
  in
  let run' app pid n k listen_port peers control_port store_dir trace_file
      metrics_file epoch time_scale retransmit ckpt_interval part_ckpt join =
    let go (type state msg) ((app, wire) :
          (state, msg) App_model.App_intf.t * msg App_model.App_intf.wire_format) =
      run ~app ~wire ~pid ~n ~k ~listen_port ~peers ~control_port ~store_dir
        ~trace_file ~metrics_file ~epoch ~time_scale ~retransmit ~ckpt_interval
        ~part_ckpt ~join
    in
    match app with
    | `Kvstore -> go (App.app, App.wire)
    | `Shardkv -> go (Shardkv.Shard_app.app, Shardkv.Shard_app.wire)
  in
  Cmd.v
    (Cmd.info "koptnode" ~doc:"K-optimistic logging daemon (one cluster process).")
    Term.(
      const run' $ app_t $ pid $ n $ k $ listen_port $ peers $ control_port
      $ store_dir $ trace_file $ metrics_file $ epoch $ time_scale $ retransmit
      $ ckpt_interval $ part_ckpt $ join)

let () = exit (Cmd.eval cmd)
