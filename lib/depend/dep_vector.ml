type t = Entry.t option array

let create ~n =
  if n <= 0 then invalid_arg "Dep_vector.create: n must be positive";
  Array.make n None

let n = Array.length

let copy = Array.copy

let grow t ~n:n' =
  let n = Array.length t in
  if n' < n then invalid_arg "Dep_vector.grow: would shrink";
  if n' = n then t
  else begin
    let t' = Array.make n' None in
    Array.blit t 0 t' 0 n;
    t'
  end

let shrink t ~n:n' =
  let n = Array.length t in
  if n' <= 0 then invalid_arg "Dep_vector.shrink: n must be positive";
  if n' > n then invalid_arg "Dep_vector.shrink: would grow";
  for j = n' to n - 1 do
    match t.(j) with
    | None -> ()
    | Some _ ->
      invalid_arg "Dep_vector.shrink: dropped slot holds a live dependency"
  done;
  Array.sub t 0 n'

let get t j = t.(j)

let set t j e = t.(j) <- e

let clear t j = t.(j) <- None

let merge_max ~into src =
  if Array.length into <> Array.length src then
    invalid_arg "Dep_vector.merge_max: size mismatch";
  for j = 0 to Array.length into - 1 do
    match into.(j), src.(j) with
    | _, None -> ()
    | None, (Some _ as e) -> into.(j) <- e
    | Some a, Some b -> if Entry.lt a b then into.(j) <- Some b
  done

let non_null_count t =
  Array.fold_left (fun acc e -> match e with None -> acc | Some _ -> acc + 1) 0 t

let non_null t =
  let acc = ref [] in
  for j = Array.length t - 1 downto 0 do
    match t.(j) with
    | None -> ()
    | Some e -> acc := (j, e) :: !acc
  done;
  !acc

let of_non_null ~n entries =
  let t = create ~n in
  List.iter
    (fun (j, e) ->
      if j < 0 || j >= n then invalid_arg "Dep_vector.of_non_null: bad index";
      t.(j) <- Some e)
    entries;
  t

let iteri t ~f = Array.iteri f t

let elide_stable t ~stable =
  let elided = ref 0 in
  for j = 0 to Array.length t - 1 do
    match t.(j) with
    | None -> ()
    | Some e ->
      if stable j e then begin
        t.(j) <- None;
        incr elided
      end
  done;
  !elided

let equal a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  for j = 0 to Array.length a - 1 do
    match a.(j), b.(j) with
    | None, None -> ()
    | Some x, Some y -> if not (Entry.equal x y) then ok := false
    | None, Some _ | Some _, None -> ok := false
  done;
  !ok

let pp ppf t =
  let item ppf (j, e) = Entry.pp_at j ppf e in
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any "; ") item) (non_null t)
