module Int_map = Map.Make (Int)

type t = int Int_map.t
(* incarnation -> recorded max interval index *)

let empty = Int_map.empty

let is_empty = Int_map.is_empty

let insert t (e : Entry.t) =
  Int_map.update e.inc
    (function None -> Some e.sii | Some x -> Some (Stdlib.max x e.sii))
    t

(* First writer wins: for tables recording where an incarnation {e ended}
   (the iet), a conflicting later claim must not widen the recorded ending
   — an incarnation ends exactly once, so on correct inputs this equals
   [insert], and on contradictory ones the earliest (most conservative)
   ending governs every subsequent orphan judgment. *)
let insert_min t (e : Entry.t) =
  Int_map.update e.inc
    (function None -> Some e.sii | Some x -> Some (Stdlib.min x e.sii))
    t

let find t ~inc = Int_map.find_opt inc t

let covers t (e : Entry.t) =
  match Int_map.find_opt e.inc t with
  | None -> false
  | Some x' -> e.sii <= x'

let orphans t (e : Entry.t) =
  (* Any recorded incarnation t >= e.inc ending before e.sii revokes e. *)
  Int_map.exists (fun inc x0 -> inc >= e.inc && x0 < e.sii) t

let max_inc t =
  match Int_map.max_binding_opt t with
  | None -> None
  | Some (inc, _) -> Some inc

let merge a b = Int_map.fold (fun inc sii acc -> insert acc { inc; sii }) b a

let cardinal = Int_map.cardinal

let entries t =
  Int_map.fold (fun inc sii acc -> Entry.make ~inc ~sii :: acc) t []
  |> List.rev

let of_entries es = List.fold_left insert empty es

let equal = Int_map.equal Int.equal

let pp ppf t = Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma Entry.pp) (entries t)
