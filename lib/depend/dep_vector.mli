(** Transitive dependency vectors with NULL entries.

    The protocol of Figures 2–3 maintains a size-N vector [tdv] whose entry
    [j] is the highest-index state interval of process [j] that the local
    state (or a buffered message) transitively depends on, or NULL when the
    dependency has been elided because the interval is known stable
    (Theorem 2).  NULL is lexicographically smaller than every non-NULL
    entry.

    The wire representation omits NULL entries; [non_null_count] is therefore
    both the piggyback size and the quantity bounded by K (Theorem 4). *)

type t

val create : n:int -> t
(** All-NULL vector for an N-process system (Corollary 3: a process starts
    with no dependency entries). *)

val n : t -> int

val copy : t -> t

val grow : t -> n:int -> t
(** Identity-preserving resize for membership growth: slot [j] of the
    result is slot [j] of the input, new slots are NULL.  Sound by
    Corollary 3 — a process nobody has ever depended on contributes only
    NULL entries, so widening the vector changes no verdict.  Returns the
    input unchanged when [n] equals the current width.
    @raise Invalid_argument if [n] is smaller than the current width. *)

val shrink : t -> n:int -> t
(** Drop trailing slots after a retirement.  Only NULL slots may be
    dropped: by Theorem 2 a NULL entry carries no dependency information,
    so removing it changes no orphan verdict — whereas dropping a live
    entry would forget a dependency.
    @raise Invalid_argument if any dropped slot is non-NULL, or [n] is
    not in [(0, width]]. *)

val get : t -> int -> Entry.t option

val set : t -> int -> Entry.t option -> unit

val clear : t -> int -> unit
(** [clear t j] sets entry [j] to NULL. *)

val merge_max : into:t -> t -> unit
(** Pointwise lexicographic maximum, the [tdv[j] := max(tdv[j], m.tdv[j])]
    step of Deliver_message.  NULL loses to any entry. *)

val non_null_count : t -> int

val non_null : t -> (int * Entry.t) list
(** [(process, entry)] pairs in increasing process order — the wire form. *)

val of_non_null : n:int -> (int * Entry.t) list -> t

val iteri : t -> f:(int -> Entry.t option -> unit) -> unit

val elide_stable : t -> stable:(int -> Entry.t -> bool) -> int
(** Apply Theorem 2: NULL every entry [(j, e)] for which [stable j e] holds.
    Returns the number of entries elided.  This is the per-message loop of
    Check_send_buffer and the local-vector loop of Receive_log. *)

val equal : t -> t -> bool

val pp : t Fmt.t
(** Prints the non-NULL entries as [{(t,x)_j; ...}], matching the paper's
    dependency-set notation. *)
