(** Per-process sets of per-incarnation interval indices.

    This is the [set of entry] with the [Insert] semantics of Figure 3: at
    most one entry per incarnation, keeping the maximum index.  Two protocol
    tables share this structure:

    - an {b incarnation end table} row ([iet[j]]): entry [(t, x0)] records
      that incarnation [t] of process [j] ended at index [x0] — intervals
      [(s, y)] with [s <= t] and [y > x0] are rolled back;
    - a {b logging progress table} row ([log[j]]): entry [(t, x')] records
      that intervals of incarnation [t] up to index [x'] are stable. *)

type t

val empty : t

val is_empty : t -> bool

val insert : t -> Entry.t -> t
(** Figure 3's [Insert(se, (t, x0))]: keep the per-incarnation maximum. *)

val insert_min : t -> Entry.t -> t
(** Keep the per-incarnation {e minimum} instead.  Incarnation-end rows
    ([iet[j]]) must use this: an incarnation ends exactly once, so on
    correct announcement streams it coincides with {!insert}, but if a
    duplicated or corrupted announcement ever claims a {e later} ending
    for an incarnation already recorded, widening the row would
    retroactively un-orphan messages that earlier announcements orphaned
    — and a node that discarded such a message while the row was narrow
    diverges from its own post-crash replay, which rebuilds the row from
    the full logged announcement set at once.  Keeping the earliest
    ending makes every orphan judgment monotone over time. *)

val find : t -> inc:int -> int option
(** Recorded index for incarnation [inc], if any. *)

val covers : t -> Entry.t -> bool
(** [covers se e]: the table has [(e.inc, x')] with [e.sii <= x'].  For a
    logging-progress row this is exactly "interval [e] is known stable" —
    the condition of Check_send_buffer and Receive_log in Figure 3. *)

val orphans : t -> Entry.t -> bool
(** [orphans iet e]: the table has [(t, x0)] with [t >= e.inc] and
    [x0 < e.sii], i.e. a rollback announcement revokes interval [e].  This is
    the Check_orphan condition of Figure 2. *)

val max_inc : t -> int option
(** Highest incarnation recorded. *)

val merge : t -> t -> t
(** Pointwise [insert] of every entry of the second table into the first. *)

val cardinal : t -> int

val entries : t -> Entry.t list
(** All entries, in increasing incarnation order. *)

val of_entries : Entry.t list -> t

val equal : t -> t -> bool

val pp : t Fmt.t
