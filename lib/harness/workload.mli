(** Workload and failure-schedule generators.

    Each generator schedules outside-world injections on a cluster.  The
    fixed-work generators (pipeline, telecom, kvstore) perform the same
    total application work regardless of protocol or K, which makes
    overhead comparisons across configurations meaningful; the chatter
    generator produces order-dependent branching and is used for stress and
    oracle testing rather than like-for-like overhead numbers. *)

val chatter :
  (App_model.Chatter_app.state, App_model.Chatter_app.msg) Cluster.t ->
  rng:Sim.Rng.t ->
  tokens:int ->
  hops:int ->
  start:float ->
  rate:float ->
  unit
(** Inject [tokens] tokens at exponential inter-arrival times with the
    given mean [rate] (arrivals per time unit), round-robin destinations. *)

val pipeline :
  (App_model.Pipeline_app.state, App_model.Pipeline_app.msg) Cluster.t ->
  jobs:int ->
  start:float ->
  rate:float ->
  unit
(** [jobs] jobs entering stage 0; each traverses all N processes. *)

val telecom :
  (App_model.Telecom_app.state, App_model.Telecom_app.msg) Cluster.t ->
  rng:Sim.Rng.t ->
  calls:int ->
  hops:int ->
  start:float ->
  rate:float ->
  unit
(** Call setups at random ingress switches; each call routes through
    [hops] switches and commits a "connected" output at the egress. *)

val kvstore :
  (App_model.Kvstore_app.state, App_model.Kvstore_app.msg) Cluster.t ->
  rng:Sim.Rng.t ->
  ops:int ->
  keys:int ->
  start:float ->
  rate:float ->
  unit
(** Mixed puts (75%) and gets (25%) over [keys] distinct keys, sent to
    random coordinator processes. *)

(** {1 Open-loop KV traffic}

    The sharded-KV service ({!Shardkv} over the live deployment) is driven
    by an {e open-loop} generator: arrival times are fixed in advance by a
    Poisson process at the target rate (exponential think times between
    arrivals), independent of when earlier operations complete — the
    arrival pattern of many light users, and the load model under which
    latency percentiles are honest (a closed loop self-throttles when the
    system slows down; an open loop builds a backlog instead).  Key
    popularity is Zipfian: rank [r] is drawn with probability proportional
    to [1/(r+1)^theta], the standard skew model for KV traffic. *)

type kv_op =
  | Kv_get of int  (** key rank *)
  | Kv_put of int * int  (** key rank, value *)
  | Kv_multi_put of (int * int) list
      (** cross-shard batch: ≥ 2 distinct key ranks *)

type timed_kv_op = { at : float;  (** seconds from workload start *) kv : kv_op }

val open_loop_kv :
  rng:Sim.Rng.t ->
  ops:int ->
  keys:int ->
  rate:float ->
  ?theta:float ->
  ?gets:float ->
  ?multi:float ->
  ?multi_width:int ->
  unit ->
  timed_kv_op list
(** [ops] operations over [keys] key ranks at [rate] arrivals per second.
    [theta] (default 0.99, the YCSB convention) is the Zipf exponent;
    [gets] (default 0.25) and [multi] (default 0.1) are the fractions of
    reads and of multi-puts (the rest are single puts); [multi_width]
    (default 3) bounds the distinct keys per multi-put — every emitted
    multi-put holds at least two distinct ranks, so it can span shards.
    The op list is sorted by [at] and is a pure function of the
    arguments. *)

val random_failures :
  ('state, 'msg) Cluster.t ->
  rng:Sim.Rng.t ->
  count:int ->
  window:float * float ->
  unit
(** Schedule [count] crashes of uniformly random processes at uniformly
    random times within the window.  At most one crash is scheduled per
    process per window slice to keep episodes distinguishable. *)
