(** Plain-text experiment tables.

    Every experiment renders through this module so that
    [bench/main.exe] and [bin/experiments.exe] produce uniform,
    diff-friendly output recorded in EXPERIMENTS.md. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument on column-count mismatch. *)

val note : t -> string -> unit
(** Free-form footnote printed under the table. *)

val pp : t Fmt.t

val print : t -> unit
(** [pp] to stdout, followed by a blank line. *)

val to_json : t -> string
(** The table as a JSON object ([title], [columns], [rows], [notes]; every
    cell a string, exactly as rendered). *)

val json_of_reports : t list -> string
(** JSON array of {!to_json} objects — what [experiments --json] writes. *)

(** {1 Cell formatting helpers} *)

val cell_f : float -> string
(** Two-decimal float, [-] for NaN. *)

val cell_i : int -> string

val cell_pct : float -> string

val cell_summary : Sim.Summary.t -> string
(** [mean/p99] rendering. *)

(** {1 Flat benchmark JSON}

    The [BENCH_*.json] files are flat [{"name": float}] objects.  These
    helpers let several producers (the bench binary's B10-B12 section,
    the E15 experiment) share one file without clobbering each other's
    keys. *)

val load_bench : string -> (string * float) list
(** In file order; [[]] if the file does not exist. *)

val save_bench : string -> (string * float) list -> unit
(** Sorted by key; on duplicate keys the first entry wins. *)

val merge_bench : string -> (string * float) list -> unit
(** Load, replace or add the given entries, save.  Existing keys not
    mentioned survive — this is the only way any producer should write a
    shared bench file. *)
