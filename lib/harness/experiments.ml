module Config = Recovery.Config

let default_seeds = [ 11; 23; 47 ]

(* ------------------------------------------------------------------ *)
(* Shared scenario runner                                              *)

type run = { stats : Cluster.stats; oracle : Oracle.report }

(* Telecom workload: fixed total work (every call traverses [hops]
   switches and commits one output), so numbers are comparable across
   protocol configurations. *)
let run_telecom ~config ~seed ?(calls = 150) ?(hops = 4) ?(failures = 0) () =
  let n = config.Config.n in
  let cluster =
    Cluster.create ~config ~app:App_model.Telecom_app.app ~seed ~horizon:4000. ()
  in
  let rng = Sim.Rng.create (seed * 7919) in
  Workload.telecom cluster ~rng ~calls ~hops ~start:10. ~rate:1.0;
  if failures > 0 then
    Workload.random_failures cluster ~rng:(Sim.Rng.split rng) ~count:failures
      ~window:(50., 10. +. (float_of_int calls /. 1.0));
  Cluster.run cluster;
  let stats = Cluster.stats cluster in
  let oracle = Oracle.check ~k:config.Config.protocol.k ~n (Cluster.trace cluster) in
  if not (Oracle.ok oracle) then
    failwith
      (Fmt.str "experiment run is incorrect (%s, seed %d): %a"
         (Config.describe config) seed Oracle.pp_report oracle);
  { stats; oracle }

let averaged ~seeds ~config ?calls ?hops ?failures () =
  List.map (fun seed -> run_telecom ~config ~seed ?calls ?hops ?failures ()) seeds

let favg f runs =
  List.fold_left (fun acc r -> acc +. f r) 0. runs /. float_of_int (List.length runs)

let iavg f runs = favg (fun r -> float_of_int (f r)) runs

let merged f runs =
  List.fold_left
    (fun acc r -> Sim.Summary.merge acc (f r))
    (Sim.Summary.create ())
    runs

(* ------------------------------------------------------------------ *)

let figure1 () =
  let t =
    Report.create ~title:"F1: Figure 1 worked example (prose facts)"
      ~columns:[ "flavour"; "fact"; "status" ]
  in
  let record flavour name (outcome : Figure1.outcome) =
    let fails = outcome.failures in
    t |> fun t ->
    Report.add_row t
      [ name; "all prose facts"; (if fails = [] then "REPRODUCED" else "FAILED") ];
    List.iter (fun f -> Report.add_row t [ name; f; "FAILED" ]) fails;
    Report.add_row t
      [
        name;
        "m6 at P4 / r1 at P4";
        Fmt.str "%a / %a"
          Fmt.(option ~none:(any "-") (fmt "%.1f"))
          outcome.m6_delivered_at
          Fmt.(option ~none:(any "-") (fmt "%.1f"))
          outcome.r1_at_p4;
      ];
    Report.add_row t
      [
        name;
        "m7 at P5 / r1 at P5";
        Fmt.str "%a / %a"
          Fmt.(option ~none:(any "-") (fmt "%.1f"))
          outcome.m7_delivered_at
          Fmt.(option ~none:(any "-") (fmt "%.1f"))
          outcome.r1_at_p5;
      ];
    Report.add_row t
      [
        name;
        "P4 output committed at";
        Fmt.str "%a"
          Fmt.(option ~none:(any "never") (fmt "%.1f"))
          outcome.output_committed_at;
      ];
    ignore flavour
  in
  record Figure1.Improved "improved" (Figure1.run Figure1.Improved);
  record Figure1.Strom_yemini "strom-yemini" (Figure1.run Figure1.Strom_yemini);
  Report.note t
    "Under Strom-Yemini, m6 and m7 wait for r1; under the improved protocol \
     (Corollary 1) both deliver before r1 arrives.";
  t

let theorems ?(seeds = default_seeds) () =
  let n = 8 in
  let t =
    Report.create
      ~title:"T1/T2/T4: theorem validation under crash injection (oracle-checked)"
      ~columns:
        [ "K"; "runs"; "violations"; "max risk"; "bound"; "rollbacks"; "orphans at end" ]
  in
  List.iter
    (fun k ->
      let config = Config.k_optimistic ~n ~k () in
      let runs = averaged ~seeds ~config ~failures:3 () in
      let max_risk =
        List.fold_left (fun acc r -> Stdlib.max acc r.oracle.Oracle.max_risk) 0 runs
      in
      let viol =
        List.fold_left
          (fun acc r -> acc + List.length r.oracle.Oracle.violations)
          0 runs
      in
      Report.add_row t
        [
          Report.cell_i k;
          Report.cell_i (List.length runs);
          Report.cell_i viol;
          Report.cell_i max_risk;
          (if max_risk <= k then "risk <= K: OK" else "risk > K: FAIL");
          Report.cell_f (iavg (fun r -> r.stats.Cluster.induced_rollbacks) runs);
          Report.cell_i
            (List.fold_left (fun acc r -> acc + r.oracle.Oracle.orphans_at_end) 0 runs);
        ])
    [ 0; 1; 2; 4; 8 ];
  Report.note t
    "Theorem 4: a released message is revocable by at most K process failures; \
     the oracle recomputes the true risk of every released message.";
  t

let overhead_row t name config runs =
  Report.add_row t
    [
      name;
      Report.cell_summary (merged (fun r -> r.stats.Cluster.blocked_time) runs);
      Report.cell_f (Sim.Summary.mean (merged (fun r -> r.stats.Cluster.wire_vector_size) runs));
      Report.cell_f (iavg (fun r -> r.stats.Cluster.sync_writes) runs);
      Report.cell_summary (merged (fun r -> r.stats.Cluster.output_latency) runs);
      Report.cell_f (favg (fun r -> r.stats.Cluster.makespan) runs);
      Report.cell_f (favg (fun r -> r.stats.Cluster.busy_time) runs);
    ];
  ignore config

let overhead_vs_k ?(n = 8) ?(seeds = default_seeds) () =
  let t =
    Report.create ~title:"E1: failure-free overhead vs K (telecom, no failures)"
      ~columns:
        [
          "protocol";
          "send blocked mean/p99";
          "wire vec mean";
          "sync writes";
          "output latency mean/p99";
          "makespan";
          "busy time";
        ]
  in
  let pess = Config.pessimistic ~n () in
  overhead_row t "pessimistic" pess (averaged ~seeds ~config:pess ());
  List.iter
    (fun k ->
      let config = Config.k_optimistic ~n ~k () in
      overhead_row t (Fmt.str "K=%d" k) config (averaged ~seeds ~config ()))
    [ 0; 1; 2; 4; 6; n ];
  Report.note t
    "Expected shape: blocking time falls monotonically as K grows; pessimistic \
     trades blocking for synchronous writes.  K=N blocks (almost) never.";
  t

let recovery_vs_k ?(n = 8) ?(seeds = default_seeds) () =
  let t =
    Report.create ~title:"E2: recovery efficiency vs K (telecom, 3 crashes)"
      ~columns:
        [
          "protocol";
          "induced rollbacks";
          "undone intervals";
          "orphan msgs";
          "replayed";
          "retransmissions";
          "outputs committed";
        ]
  in
  let row name config =
    let runs = averaged ~seeds ~config ~failures:3 () in
    Report.add_row t
      [
        name;
        Report.cell_f (iavg (fun r -> r.stats.Cluster.induced_rollbacks) runs);
        Report.cell_f (iavg (fun r -> r.stats.Cluster.undone_intervals) runs);
        Report.cell_f (iavg (fun r -> r.stats.Cluster.orphans_discarded) runs);
        Report.cell_f (iavg (fun r -> r.stats.Cluster.replayed) runs);
        Report.cell_f (iavg (fun r -> r.stats.Cluster.retransmissions) runs);
        Report.cell_f (iavg (fun r -> r.stats.Cluster.outputs_committed) runs);
      ]
  in
  row "pessimistic" (Config.pessimistic ~n ());
  List.iter
    (fun k -> row (Fmt.str "K=%d" k) (Config.k_optimistic ~n ~k ()))
    [ 0; 1; 2; 4; 6; n ];
  Report.note t
    "Expected shape: rollback scope (induced rollbacks, undone work, orphans) \
     grows with K; at K=0 failures never revoke messages and recovery is \
     localized to the failed process.";
  t

let vector_scalability ?(seeds = default_seeds) () =
  let t =
    Report.create
      ~title:"E3: piggybacked vector size vs system size N (Theorem 2 scalability)"
      ~columns:
        [ "N"; "K-opt (K=N) mean"; "K-opt p99"; "K=4 mean"; "fixed vector (S&Y)" ]
  in
  List.iter
    (fun n ->
      let calls = 20 * n in
      let kn = Config.optimistic ~n () in
      let k4 = Config.k_optimistic ~n ~k:(Stdlib.min 4 n) () in
      let sy = Config.strom_yemini ~n () in
      let vec config =
        merged
          (fun r -> r.stats.Cluster.wire_vector_size)
          (averaged ~seeds ~config ~calls ())
      in
      let vkn = vec kn and vk4 = vec k4 and vsy = vec sy in
      Report.add_row t
        [
          Report.cell_i n;
          Report.cell_f (Sim.Summary.mean vkn);
          Report.cell_f (Sim.Summary.percentile vkn 99.);
          Report.cell_f (Sim.Summary.mean vk4);
          Report.cell_f (Sim.Summary.mean vsy);
        ])
    [ 4; 8; 16; 24; 32 ];
  Report.note t
    "The K-bounded vector stays flat (~K) as the system grows, the paper's \
     scalability claim; with K=N, elision alone still tracks every non-stable \
     dependency, so density-driven growth returns.  The classical vector is \
     always exactly N.";
  t

let preset_comparison ?(n = 8) ?(seeds = default_seeds) () =
  let t =
    Report.create ~title:"E4: protocol presets on one workload (telecom, 2 crashes)"
      ~columns:
        [
          "preset";
          "blocked mean";
          "wire vec mean";
          "sync writes";
          "rollbacks";
          "undone";
          "orphans";
          "outputs";
          "output latency mean";
        ]
  in
  let row name config =
    let runs = averaged ~seeds ~config ~failures:2 () in
    Report.add_row t
      [
        name;
        Report.cell_f (Sim.Summary.mean (merged (fun r -> r.stats.Cluster.blocked_time) runs));
        Report.cell_f
          (Sim.Summary.mean (merged (fun r -> r.stats.Cluster.wire_vector_size) runs));
        Report.cell_f (iavg (fun r -> r.stats.Cluster.sync_writes) runs);
        Report.cell_f (iavg (fun r -> r.stats.Cluster.induced_rollbacks) runs);
        Report.cell_f (iavg (fun r -> r.stats.Cluster.undone_intervals) runs);
        Report.cell_f (iavg (fun r -> r.stats.Cluster.orphans_discarded) runs);
        Report.cell_f (iavg (fun r -> r.stats.Cluster.outputs_committed) runs);
        Report.cell_f (Sim.Summary.mean (merged (fun r -> r.stats.Cluster.output_latency) runs));
      ]
  in
  row "pessimistic" (Config.pessimistic ~n ());
  row "K=2" (Config.k_optimistic ~n ~k:2 ());
  row "optimistic (K=N)" (Config.optimistic ~n ());
  row "strom-yemini" (Config.strom_yemini ~n ());
  row "damani-garg" (Config.damani_garg ~n ());
  Report.note t
    "K-optimistic logging spans the spectrum: K=0/pessimistic never roll back \
     non-failed processes; K=N matches optimistic logging's overhead with its \
     rollback scope; K=2 sits in between on both axes.";
  t

let output_commit ?(n = 8) ?(seeds = default_seeds) () =
  let t =
    Report.create ~title:"E5: output commit latency (telecom outputs)"
      ~columns:[ "configuration"; "outputs"; "latency mean"; "latency p99" ]
  in
  let row name config =
    let runs = averaged ~seeds ~config () in
    let lat = merged (fun r -> r.stats.Cluster.output_latency) runs in
    Report.add_row t
      [
        name;
        Report.cell_f (iavg (fun r -> r.stats.Cluster.outputs_committed) runs);
        Report.cell_f (Sim.Summary.mean lat);
        Report.cell_f (Sim.Summary.percentile lat 99.);
      ]
  in
  let with_notice period config =
    {
      config with
      Config.timing = { config.Config.timing with notice_interval = Some period };
    }
  in
  row "K=N, notices every 10" (with_notice 10. (Config.optimistic ~n ()));
  row "K=N, notices every 25" (with_notice 25. (Config.optimistic ~n ()));
  row "K=N, notices every 100" (with_notice 100. (Config.optimistic ~n ()));
  let odl =
    let c = Config.optimistic ~n () in
    { c with Config.protocol = { c.Config.protocol with output_driven_logging = true } }
  in
  row "K=N, output-driven logging" (with_notice 100. odl);
  row "K=2" (Config.k_optimistic ~n ~k:2 ());
  row "pessimistic" (Config.pessimistic ~n ());
  Report.note t
    "An output commits when all its dependencies are stable; slower \
     logging-progress notification directly slows output commit, and \
     output-driven logging (reference [6]) recovers the latency without \
     frequent notices.";
  t

let ablation ?(n = 8) ?(seeds = default_seeds) () =
  let t =
    Report.create
      ~title:"E6: ablating the paper's three improvements (telecom, 2 crashes)"
      ~columns:
        [
          "variant";
          "announcements";
          "wire vec mean";
          "delivery delay mean/p99";
          "blocked mean";
          "rollbacks";
        ]
  in
  let row name config =
    let runs = averaged ~seeds ~config ~failures:2 () in
    Report.add_row t
      [
        name;
        Report.cell_f (iavg (fun r -> r.stats.Cluster.announcements) runs);
        Report.cell_f
          (Sim.Summary.mean (merged (fun r -> r.stats.Cluster.wire_vector_size) runs));
        Report.cell_summary (merged (fun r -> r.stats.Cluster.delivery_delay) runs);
        Report.cell_f (Sim.Summary.mean (merged (fun r -> r.stats.Cluster.blocked_time) runs));
        Report.cell_f (iavg (fun r -> r.stats.Cluster.induced_rollbacks) runs);
      ]
  in
  let base = Config.optimistic ~n () in
  row "improved (Thm1+Thm2+Cor1)" base;
  row "- Theorem 1 (announce all rollbacks)"
    {
      base with
      Config.protocol = { base.Config.protocol with announce_all_rollbacks = true };
    };
  row "- Theorem 2 (no commit tracking)"
    {
      base with
      Config.protocol = { base.Config.protocol with commit_tracking = false };
    };
  row "- Corollary 1 (wait for announcements)"
    {
      base with
      Config.protocol =
        {
          base.Config.protocol with
          announce_all_rollbacks = true;
          delivery_rule = Config.Wait_announcement;
        };
    };
  row "strom-yemini (all three removed)" (Config.strom_yemini ~n ());
  Report.note t
    "Theorem 1 cuts announcement traffic; Theorem 2 shrinks the piggybacked \
     vector; Corollary 1 removes delivery delays (the wait-for-announcement \
     rule needs all-rollback announcements, hence the combined toggle).  On \
     this fast network announcements arrive quickly, so the wait-rule delays \
     are small; Figure 1 (table F1) shows the canonical case where the \
     announcement is slow and Corollary 1's benefit is decisive.";
  t

let sensitivity ?(n = 8) ?(seeds = default_seeds) () =
  let t =
    Report.create
      ~title:"E7: flush/checkpoint interval sensitivity (K=2, telecom, 2 crashes)"
      ~columns:
        [
          "flush interval";
          "checkpoint interval";
          "blocked mean";
          "output latency mean";
          "sync writes";
          "undone intervals";
          "replayed";
        ]
  in
  let row flush ckpt =
    let base = Config.k_optimistic ~n ~k:2 () in
    let config =
      {
        base with
        Config.timing =
          {
            base.Config.timing with
            flush_interval = Some flush;
            checkpoint_interval = Some ckpt;
          };
      }
    in
    let runs = averaged ~seeds ~config ~failures:2 () in
    Report.add_row t
      [
        Report.cell_f flush;
        Report.cell_f ckpt;
        Report.cell_f (Sim.Summary.mean (merged (fun r -> r.stats.Cluster.blocked_time) runs));
        Report.cell_f (Sim.Summary.mean (merged (fun r -> r.stats.Cluster.output_latency) runs));
        Report.cell_f (iavg (fun r -> r.stats.Cluster.sync_writes) runs);
        Report.cell_f (iavg (fun r -> r.stats.Cluster.undone_intervals) runs);
        Report.cell_f (iavg (fun r -> r.stats.Cluster.replayed) runs);
      ]
  in
  List.iter (fun f -> row f 400.) [ 10.; 50.; 200. ];
  List.iter (fun c -> row 50. c) [ 100.; 800. ];
  Report.note t
    "Frequent flushing shortens blocking and output latency at the cost of \
     more storage operations; checkpoint frequency trades checkpoint work \
     against replay length after a crash.";
  t

let gc_footprint ?(n = 8) ?(seeds = default_seeds) () =
  let t =
    Report.create
      ~title:"E8: log garbage collection (telecom, 1 crash, storage footprint)"
      ~columns:
        [
          "checkpoint interval";
          "GC";
          "retained at t=320 (mean/node)";
          "records written";
          "reclaimed";
          "outputs";
        ]
  in
  let row ckpt_interval gc =
    let base = Config.k_optimistic ~n ~k:2 () in
    let config =
      {
        base with
        Config.protocol = { base.Config.protocol with gc_logs = gc };
        Config.timing =
          { base.Config.timing with checkpoint_interval = Some ckpt_interval };
      }
    in
    let totals =
      List.map
        (fun seed ->
          let cluster =
            Cluster.create ~config ~app:App_model.Telecom_app.app ~seed
              ~horizon:4000. ()
          in
          let rng = Sim.Rng.create (seed * 7919) in
          Workload.telecom cluster ~rng ~calls:150 ~hops:4 ~start:10. ~rate:1.0;
          Workload.random_failures cluster ~rng:(Sim.Rng.split rng) ~count:1
            ~window:(50., 160.);
          (* Snapshot the footprint mid-run, while the workload is hot; the
             run then continues to quiescence for the oracle check. *)
          Cluster.run_until cluster 320.;
          let nodes = Cluster.nodes cluster in
          let retained =
            Array.fold_left
              (fun acc nd -> acc + Recovery.Node.live_log_records nd)
              0 nodes
          in
          Cluster.run cluster;
          let oracle =
            Oracle.check ~k:2 ~n (Cluster.trace cluster)
          in
          if not (Oracle.ok oracle) then
            failwith (Fmt.str "E8 run incorrect: %a" Oracle.pp_report oracle);
          let written =
            Array.fold_left
              (fun acc nd -> acc + Recovery.Node.stable_log_length nd)
              0 nodes
          in
          let reclaimed =
            Array.fold_left
              (fun acc nd -> acc + (Recovery.Node.metrics nd).Recovery.Metrics.gc_records)
              0 nodes
          in
          (retained, written, reclaimed, (Cluster.stats cluster).Cluster.outputs_committed))
        seeds
    in
    let avg f =
      List.fold_left (fun acc x -> acc + f x) 0 totals / List.length totals
    in
    Report.add_row t
      [
        Report.cell_f ckpt_interval;
        (if gc then "on" else "off");
        Report.cell_f (float_of_int (avg (fun (r, _, _, _) -> r)) /. float_of_int n);
        Report.cell_i (avg (fun (_, w, _, _) -> w));
        Report.cell_i (avg (fun (_, _, g, _) -> g));
        Report.cell_i (avg (fun (_, _, _, o) -> o));
      ]
  in
  List.iter
    (fun interval ->
      row interval false;
      row interval true)
    [ 100.; 400. ];
  Report.note t
    "GC reclaims every record behind a checkpoint whose dependency vector is      empty; behaviour (outputs, rollbacks) is identical with GC on or off,      only the storage footprint changes.  More frequent checkpoints give GC      more clean cut points.";
  t

let tracking_comparison ?(n = 8) ?(seeds = default_seeds) () =
  let t =
    Report.create
      ~title:
        "E9: transitive vs direct dependency tracking (failure-free, telecom)"
      ~columns:
        [
          "scheme";
          "wire entries/msg";
          "piggyback entries total";
          "assembly queries";
          "output latency mean/p99";
          "announcements";
        ]
  in
  let row name config =
    let runs =
      List.map
        (fun seed ->
          let cluster =
            Cluster.create ~config ~app:App_model.Telecom_app.app ~seed
              ~horizon:4000. ()
          in
          let rng = Sim.Rng.create (seed * 7919) in
          Workload.telecom cluster ~rng ~calls:150 ~hops:4 ~start:10. ~rate:1.0;
          Cluster.run cluster;
          let oracle =
            Oracle.check ~k:config.Config.protocol.k ~n (Cluster.trace cluster)
          in
          if not (Oracle.ok oracle) then
            failwith (Fmt.str "E9 run incorrect: %a" Oracle.pp_report oracle);
          let queries =
            Array.fold_left
              (fun acc nd -> acc + (Recovery.Node.metrics nd).Recovery.Metrics.dep_queries)
              0 (Cluster.nodes cluster)
          in
          (Cluster.stats cluster, queries))
        seeds
    in
    let stats = List.map fst runs in
    let favg f =
      List.fold_left (fun acc s -> acc +. f s) 0. stats
      /. float_of_int (List.length stats)
    in
    let lat =
      List.fold_left
        (fun acc (s : Cluster.stats) -> Sim.Summary.merge acc s.output_latency)
        (Sim.Summary.create ())
        stats
    in
    Report.add_row t
      [
        name;
        Report.cell_f
          (Sim.Summary.mean
             (List.fold_left
                (fun acc (s : Cluster.stats) -> Sim.Summary.merge acc s.wire_vector_size)
                (Sim.Summary.create ())
                stats));
        Report.cell_f (favg (fun s -> float_of_int s.piggyback_entries));
        Report.cell_f
          (List.fold_left (fun acc (_, q) -> acc +. float_of_int q) 0. runs
          /. float_of_int (List.length runs));
        Report.cell_summary lat;
        Report.cell_f (favg (fun s -> float_of_int s.announcements));
      ]
  in
  row "transitive, K=N" (Config.optimistic ~n ());
  row "transitive, K=2" (Config.k_optimistic ~n ~k:2 ());
  row "direct (assembly at commit)" (Config.direct_dependency ~n ());
  Report.note t
    "Section 5's tradeoff, measured: direct tracking piggybacks a single      entry per message but pays for it at output commit with query/reply      assembly traffic.  (Failure recovery under uncoordinated direct      tracking diverges — see the test suite's storm demonstration — which      is why this comparison is failure-free.)";
  t

(* E10/E11 run through the chaos harness: hardened protocol (periodic
   retransmission + announcement gossip) under an adversarial fault plan,
   every run certified by the oracle.  A violation aborts the table. *)
let certified_chaos_run ~table_name case =
  let outcome = Chaos.run_case case in
  match (outcome.Chaos.verdict, outcome.Chaos.stats) with
  | Chaos.Certified report, Some stats -> (report, stats)
  | Chaos.Certified _, None -> assert false
  | (Chaos.Detected _ | Chaos.Violated _ | Chaos.Crashed _), _ ->
    failwith
      (Fmt.str "%s run failed (%a): %a" table_name Chaos.pp_case case
         Chaos.pp_verdict outcome.Chaos.verdict)

let adversarial_network ?(n = 8) ?(seeds = default_seeds) () =
  let t =
    Report.create
      ~title:
        "E10: adversarial network — loss, duplication, reordering (oracle-certified)"
      ~columns:
        [
          "K";
          "loss";
          "violations";
          "max risk";
          "retrans";
          "dups dropped";
          "wire lost/dup/reord";
          "outputs";
        ]
  in
  let row ~k ~loss =
    let runs =
      List.map
        (fun seed ->
          certified_chaos_run ~table_name:"E10"
            {
              Chaos.n;
              k;
              seed;
              faults =
                [ Chaos.Loss loss; Chaos.Duplication 0.05; Chaos.Reorder (0.10, 15.) ];
            })
        seeds
    in
    let sum f = List.fold_left (fun acc (_, s) -> acc + f s) 0 runs in
    let max_risk =
      List.fold_left
        (fun acc ((r : Oracle.report), _) -> Stdlib.max acc r.Oracle.max_risk)
        0 runs
    in
    Report.add_row t
      [
        Report.cell_i k;
        Report.cell_pct (100. *. loss);
        Report.cell_i 0;
        Report.cell_i max_risk;
        Report.cell_i (sum (fun s -> s.Cluster.retransmissions));
        Report.cell_i (sum (fun s -> s.Cluster.duplicates_dropped));
        Fmt.str "%d/%d/%d"
          (sum (fun s -> s.Cluster.net_faults.Netmodel.lost))
          (sum (fun s -> s.Cluster.net_faults.Netmodel.duplicated))
          (sum (fun s -> s.Cluster.net_faults.Netmodel.reordered));
        Report.cell_i (sum (fun s -> s.Cluster.outputs_committed));
      ]
  in
  List.iter (fun k -> List.iter (fun loss -> row ~k ~loss) [ 0.02; 0.10 ]) [ 0; 2; n ];
  Report.note t
    "Hardened protocol (ack-driven retransmission every 40 units, announcement      gossip on notices) under wire-level loss, duplication and reordering.      Every run is oracle-certified; the K-optimistic risk bound holds      unchanged because loss only delays — never forges — dependency and      stability knowledge.";
  t

let correlated_failures ?(n = 8) ?(seeds = default_seeds) () =
  let t =
    Report.create
      ~title:"E11: correlated failures under a lossy network (oracle-certified)"
      ~columns:
        [
          "scenario";
          "violations";
          "max risk";
          "restarts";
          "rollbacks";
          "undone";
          "replayed";
          "orphans at end";
          "outputs";
        ]
  in
  let base =
    [ Chaos.Loss 0.02; Chaos.Duplication 0.02; Chaos.Reorder (0.05, 10.) ]
  in
  let scenarios =
    [
      ("simultaneous pair", [ Chaos.Crash { kind = Chaos.Group [ 1; 4 ]; time = 60. } ]);
      ("cascade of three", [ Chaos.Crash { kind = Chaos.Cascade [ 0; 2; 5 ]; time = 60. } ]);
      ("crash in checkpoint", [ Chaos.Crash { kind = Chaos.In_checkpoint 3; time = 60. } ]);
      ("crash in flush", [ Chaos.Crash { kind = Chaos.In_flush 2; time = 60. } ]);
      ( "partition + crash",
        [
          Chaos.Partition { group = [ 0; 1; 2 ]; from_ = 50.; until = 90.; drop = false };
          Chaos.Crash { kind = Chaos.Single 1; time = 70. };
        ] );
    ]
  in
  List.iter
    (fun (name, extra) ->
      let runs =
        List.map
          (fun seed ->
            certified_chaos_run ~table_name:"E11"
              { Chaos.n; k = 2; seed; faults = base @ extra })
          seeds
      in
      let sum f = List.fold_left (fun acc (_, s) -> acc + f s) 0 runs in
      let osum f = List.fold_left (fun acc (r, _) -> acc + f r) 0 runs in
      let max_risk =
        List.fold_left
          (fun acc ((r : Oracle.report), _) -> Stdlib.max acc r.Oracle.max_risk)
          0 runs
      in
      Report.add_row t
        [
          name;
          Report.cell_i 0;
          Report.cell_i max_risk;
          Report.cell_i (sum (fun s -> s.Cluster.restarts));
          Report.cell_i (sum (fun s -> s.Cluster.induced_rollbacks));
          Report.cell_i (sum (fun s -> s.Cluster.undone_intervals));
          Report.cell_i (sum (fun s -> s.Cluster.replayed));
          Report.cell_i (osum (fun (r : Oracle.report) -> r.Oracle.orphans_at_end));
          Report.cell_i (sum (fun s -> s.Cluster.outputs_committed));
        ])
    scenarios;
  Report.note t
    "Correlated failure injection at K=2 over a lossy, duplicating,      reordering network: simultaneous multi-node crashes, cascades striking      while the previous victim is still down, and crashes landing mid-      checkpoint and mid-flush.  All runs oracle-certified with max risk <= K.";
  t

(* E12 exercises the durable backend end to end: the cluster runs over real
   files, one process is killed (descriptors closed, unsynced bytes gone),
   its files are damaged post mortem, and a fresh process recovers solely
   from what is on disk.  Acceptable outcomes are exactly two: the run is
   oracle-certified (damage repaired by truncate-and-replay plus sender
   retransmission), or the data loss is detected and reported at reopen.
   An oracle violation with no reported damage is silent wrong state and
   aborts the table. *)
let durability ?(n = 6) ?(seeds = default_seeds) () =
  let t =
    Report.create
      ~title:"E12: durable storage under kill + file damage (oracle-certified)"
      ~columns:
        [
          "storage fault";
          "certified";
          "loss detected";
          "max risk";
          "log bytes dropped";
          "missing records";
          "ckpts dropped";
          "replayed";
          "outputs";
        ]
  in
  let k = 2 in
  let one_run ~seed ~fault =
    let root = Durable.Temp.fresh_dir ~prefix:"e12" () in
    Fun.protect
      ~finally:(fun () -> Durable.Temp.rm_rf root)
      (fun () ->
        let config = Config.harden (Config.k_optimistic ~n ~k ()) in
        let cluster =
          Cluster.create ~config ~app:App_model.Telecom_app.app ~seed
            ~horizon:1500. ~store_root:root ()
        in
        let rng = Sim.Rng.create (seed * 7919) in
        Workload.telecom cluster ~rng ~calls:60 ~hops:4 ~start:10. ~rate:1.0;
        Cluster.kill_at cluster ~time:60. ~pid:2 ?storage_fault:fault ();
        Cluster.run cluster;
        let oracle = Oracle.check ~k ~n (Cluster.trace cluster) in
        let reports = Cluster.storage_reports cluster in
        let damaged =
          List.exists
            (fun (_, _, note, report) ->
              note <> "none" || Storage.Stable_store.report_damaged report)
            reports
        in
        if (not (Oracle.ok oracle)) && not damaged then
          failwith
            (Fmt.str
               "E12: silent wrong state (seed %d, fault %a): %a with no reported \
                storage damage"
               seed
               Fmt.(option ~none:(any "none") Durable.Fault.pp)
               fault Oracle.pp_report oracle);
        (oracle, reports, Cluster.stats cluster))
  in
  let row name fault =
    let runs = List.map (fun seed -> one_run ~seed ~fault) seeds in
    let certified =
      List.length (List.filter (fun (o, _, _) -> Oracle.ok o) runs)
    in
    let max_risk =
      List.fold_left
        (fun acc ((o : Oracle.report), _, _) -> Stdlib.max acc o.Oracle.max_risk)
        0 runs
    in
    let rsum f =
      List.fold_left
        (fun acc (_, reports, _) ->
          List.fold_left (fun acc (_, _, _, r) -> acc + f r) acc reports)
        0 runs
    in
    let ssum f = List.fold_left (fun acc (_, _, s) -> acc + f s) 0 runs in
    Report.add_row t
      [
        name;
        Fmt.str "%d/%d" certified (List.length runs);
        Report.cell_i (List.length runs - certified);
        Fmt.str "%d (K=%d: %s)" max_risk k (if max_risk <= k then "OK" else "FAIL");
        Report.cell_i
          (rsum (fun r -> r.Storage.Stable_store.log_bytes_dropped));
        Report.cell_i
          (rsum (fun r -> r.Storage.Stable_store.missing_log_records));
        Report.cell_i
          (rsum (fun r -> r.Storage.Stable_store.checkpoints_dropped));
        Report.cell_i (ssum (fun s -> s.Cluster.replayed));
        Report.cell_i (ssum (fun s -> s.Cluster.outputs_committed));
      ]
  in
  row "none (clean kill)" None;
  List.iter
    (fun f -> row (Durable.Fault.to_string f) (Some f))
    Durable.Fault.all;
  Report.note t
    "One process is killed at t=60 over a real file-backed store and its      files damaged before the respawn; every run either recovers to an      oracle-certified state (torn tails truncated, lost records replayed or      retransmitted) or reports the loss at reopen (missing records against      the stable-length witness, dropped checkpoints).  No run may combine an      oracle violation with a clean storage report.";
  t

(* E13 certifies small configurations exhaustively: the model checker
   enumerates every schedule up to partial-order equivalence and runs the
   oracle (including the Theorem-4 K-risk bound) on each complete
   execution.  Where E1-E12 sample the schedule space with seeds, E13
   closes it — for configurations small enough to close. *)
let exhaustive () =
  let t =
    Report.create
      ~title:"E13: exhaustive schedule certification (sleep-set POR model checker)"
      ~columns:
        [
          "config";
          "schedules";
          "slept";
          "pruned subtrees";
          "transitions";
          "replayed";
          "max depth";
          "max risk";
          "K ok";
          "exhausted";
        ]
  in
  let row (p : Schedule.explore_params) =
    let r = Explore.run p in
    (match r.Explore.violations with
    | [] -> ()
    | (sched, notes) :: _ ->
      failwith
        (Fmt.str "E13: %s violates the oracle: %s" sched.Schedule.name
           (String.concat "; " notes)));
    Report.add_row t
      [
        Fmt.str "n=%d K=%d m=%d c=%d f=%d" p.Schedule.n p.Schedule.k
          p.Schedule.messages p.Schedule.crashes p.Schedule.flushes;
        Report.cell_i r.Explore.schedules;
        Report.cell_i r.Explore.sleep_pruned;
        Report.cell_i r.Explore.sleep_terminals;
        Report.cell_i r.Explore.transitions;
        Report.cell_i r.Explore.replayed_transitions;
        Report.cell_i r.Explore.max_depth_seen;
        Report.cell_i r.Explore.max_risk;
        (if r.Explore.max_risk <= p.Schedule.k then "yes" else "NO");
        (if r.Explore.complete then "yes" else "NO");
      ]
  in
  List.iter row
    [
      { Schedule.n = 2; k = 0; messages = 2; crashes = 1; flushes = 1; seed = 1 };
      { Schedule.n = 2; k = 1; messages = 2; crashes = 1; flushes = 1; seed = 1 };
      { Schedule.n = 2; k = 2; messages = 2; crashes = 1; flushes = 1; seed = 1 };
      { Schedule.n = 2; k = 1; messages = 3; crashes = 1; flushes = 0; seed = 1 };
      { Schedule.n = 3; k = 3; messages = 3; crashes = 1; flushes = 0; seed = 1 };
    ];
  Report.note t
    "Every schedule of each bounded configuration (messages, crashes and      flushes all enabled from time zero) enumerated by the stateless      sleep-set model checker and certified by the causality oracle; 'slept'      counts interleavings proved equivalent to an explored one and skipped.      Max observed Theorem-4 risk stays within K in every configuration,      including the K=0 (risk 0, pessimistic) and K=N boundaries.";
  t

let table =
  [
    ("figure1", figure1);
    ("theorems", fun () -> theorems ());
    ("overhead_vs_k", fun () -> overhead_vs_k ());
    ("recovery_vs_k", fun () -> recovery_vs_k ());
    ("vector_scalability", fun () -> vector_scalability ());
    ("preset_comparison", fun () -> preset_comparison ());
    ("output_commit", fun () -> output_commit ());
    ("ablation", fun () -> ablation ());
    ("sensitivity", fun () -> sensitivity ());
    ("gc_footprint", fun () -> gc_footprint ());
    ("tracking_comparison", fun () -> tracking_comparison ());
    ("adversarial_network", fun () -> adversarial_network ());
    ("correlated_failures", fun () -> correlated_failures ());
    ("durability", fun () -> durability ());
    ("exhaustive", exhaustive);
  ]

let names = List.map fst table

let by_name name = List.assoc_opt name table

let all () = List.map (fun (_, f) -> f ()) table
