(** The experiment suite.

    One generator per table in EXPERIMENTS.md.  The paper's evaluation
    artifacts are its worked example (Figure 1), its protocol (Figures 2–3,
    exercised by the test suite) and its qualitative claims about the
    overhead/recovery tradeoff; each generator regenerates one of those as
    a measured table.  All experiments are deterministic given their seeds.

    Every generator also runs the causality oracle on its runs and raises
    [Failure] if a protocol-correctness violation is detected, so the
    numbers in a printed table are guaranteed to come from a correct
    execution. *)

val figure1 : unit -> Report.t
(** F1: prose facts of the Figure 1 example, for both delivery rules. *)

val theorems : ?seeds:int list -> unit -> Report.t
(** T1/T2/T4: for each K, run a failure-heavy workload and report the
    oracle's verdicts — zero violations and max observed risk [<= K]. *)

val overhead_vs_k : ?n:int -> ?seeds:int list -> unit -> Report.t
(** E1: failure-free overhead as a function of K — send-buffer blocking,
    piggyback size, synchronous writes, output latency, makespan. *)

val recovery_vs_k : ?n:int -> ?seeds:int list -> unit -> Report.t
(** E2: recovery efficiency as a function of K under crash injection —
    induced rollbacks, undone intervals, orphans, replay and
    retransmission work. *)

val vector_scalability : ?seeds:int list -> unit -> Report.t
(** E3: piggybacked vector size versus system size N, commit dependency
    tracking against the fixed size-N vector. *)

val preset_comparison : ?n:int -> ?seeds:int list -> unit -> Report.t
(** E4: pessimistic / K-optimistic / optimistic / Strom–Yemini /
    Damani–Garg side by side on the same workload with failures. *)

val output_commit : ?n:int -> ?seeds:int list -> unit -> Report.t
(** E5: output-commit latency versus K, logging-progress notification
    period, and output-driven logging. *)

val ablation : ?n:int -> ?seeds:int list -> unit -> Report.t
(** E6: the paper's three improvements toggled one at a time — Theorem 1
    (announcements), Theorem 2 (vector entries), Corollary 1 (delivery
    delays). *)

val sensitivity : ?n:int -> ?seeds:int list -> unit -> Report.t
(** E7: flush and checkpoint interval sensitivity at fixed K. *)

val gc_footprint : ?n:int -> ?seeds:int list -> unit -> Report.t
(** E8: storage footprint with and without log garbage collection (an
    extension: the paper attributes GC to accumulated logging progress but
    gives no procedure; see DESIGN.md §5a). *)

val tracking_comparison : ?n:int -> ?seeds:int list -> unit -> Report.t
(** E9: transitive vectors vs direct dependency tracking (Section 5's
    related-work tradeoff): wire overhead against commit-time assembly
    traffic.  Failure-free (see DESIGN.md on direct-tracking recovery). *)

val adversarial_network : ?n:int -> ?seeds:int list -> unit -> Report.t
(** E10: the hardened protocol (retransmission + announcement gossip)
    under wire-level loss, duplication and reordering, for K in
    [{0, 2, N}]; every run oracle-certified. *)

val correlated_failures : ?n:int -> ?seeds:int list -> unit -> Report.t
(** E11: correlated failure injection (simultaneous multi-node crashes,
    cascades, crash-during-checkpoint/flush, partition + crash) over a
    lossy network at K=2; every run oracle-certified. *)

val exhaustive : unit -> Report.t
(** E13: every schedule of a set of bounded configurations enumerated by
    the sleep-set model checker ({!Explore.run}) and certified by the
    oracle; aborts with [Failure] on any violation.  Covers the K=0 and
    K=N boundaries. *)

val all : unit -> Report.t list
(** Every table, in EXPERIMENTS.md order. *)

val by_name : string -> (unit -> Report.t) option

val names : string list
