module Config = Recovery.Config
module Counter = App_model.Counter_app

type bounds = {
  max_depth : int;
  max_schedules : int;
  preemptions : int option;
}

let default_bounds = { max_depth = 400; max_schedules = 200_000; preemptions = None }

type result = {
  params : Schedule.explore_params;
  schedules : int;
  truncated : int;
  sleep_pruned : int;
  sleep_terminals : int;
  transitions : int;
  replayed_transitions : int;
  max_depth_seen : int;
  max_enabled : int;
  max_risk : int;
  complete : bool;
  violations : (Schedule.t * string list) list;
}

let ok r = r.violations = []

let pp_result ppf r =
  Fmt.pf ppf
    "@[<v>n=%d K=%d messages=%d crashes=%d flushes=%d seed=%d:@,\
     %d schedule(s) certified%s, %d truncated by bounds@,\
     POR: %d candidate(s) slept, %d subtree(s) fully pruned@,\
     %d transition(s) executed + %d replayed (stateless-DFS overhead)@,\
     max depth %d, widest choice point %d, max Theorem-4 risk %d@,\
     violations: %d@]"
    r.params.Schedule.n r.params.Schedule.k r.params.Schedule.messages
    r.params.Schedule.crashes r.params.Schedule.flushes r.params.Schedule.seed
    r.schedules
    (if r.complete then " (state space exhausted)" else "")
    r.truncated r.sleep_pruned r.sleep_terminals r.transitions
    r.replayed_transitions r.max_depth_seen r.max_enabled r.max_risk
    (List.length r.violations)

(* ------------------------------------------------------------------ *)
(* Scenario construction *)

(* Untimed: every cost, interval and latency collapses to zero, so all
   events sit at time 0 and the canonical (time, seq) order degenerates to
   insertion order — the clock stops mattering and only the scheduler's
   choices distinguish executions.  Periodic timers are off (they would
   re-arm forever); stability progress comes from the scenario's explicit
   flush events instead. *)
let untimed =
  {
    Config.t_proc = 0.;
    t_sync_write = 0.;
    t_replay = 0.;
    t_checkpoint = 0.;
    per_entry_overhead = 0.;
    flush_interval = None;
    checkpoint_interval = None;
    notice_interval = None;
    retransmit_interval = None;
    restart_delay = 0.;
    net_latency = 0.;
    net_jitter = 0.;
    fifo = false;
  }

let build ?(breakage = Config.no_breakage) (p : Schedule.explore_params) =
  let config =
    Config.k_optimistic ~timing:untimed ~n:p.Schedule.n ~k:p.Schedule.k ()
  in
  let config =
    { config with Config.protocol = { config.Config.protocol with breakage } }
  in
  let cluster =
    Cluster.create ~config ~app:Counter.app ~seed:p.Schedule.seed
      ~auto_timers:false
      (* Pinning transit to zero bypasses the timing RNG entirely (see
         Netmodel.transit), so executing a packet event consumes no
         randomness — required for the commutation argument. *)
      ~net_override:(fun ~src:_ ~dst:_ ~packet_kind:_ -> Some 0.)
      ()
  in
  for i = 0 to p.Schedule.messages - 1 do
    let src = i mod p.Schedule.n in
    Cluster.inject_at cluster ~time:0. ~dst:src
      (Counter.Forward { dst = (src + 1) mod p.Schedule.n; amount = i + 1 })
  done;
  for c = 0 to p.Schedule.crashes - 1 do
    Cluster.crash_at cluster ~time:0. ~pid:(c mod p.Schedule.n)
  done;
  for f = 0 to p.Schedule.flushes - 1 do
    Cluster.flush_at cluster ~time:0. ~pid:(f mod p.Schedule.n)
  done;
  cluster

(* ------------------------------------------------------------------ *)
(* Independence *)

(* Sound for the untimed scenario above: an event with [pid = Some p]
   reads and writes only process p's protocol state (plus the write-only
   trace and, for the flagged events, the outside world's request log).
   Crash/restart/kill events carry no pid and are dependent with
   everything.  Request-log reads (failure announcements, which trigger
   client retransmission) conflict with writes (fresh injections), and
   writes with writes (the log is an ordered list). *)
let independent (a : Cluster.enabled) (b : Cluster.enabled) =
  (match (a.Cluster.pid, b.Cluster.pid) with
  | Some p, Some q -> p <> q
  | _ -> false)
  && (not (a.Cluster.log_write && b.Cluster.log_write))
  && (not (a.Cluster.log_write && b.Cluster.log_read))
  && not (a.Cluster.log_read && b.Cluster.log_write)

(* ------------------------------------------------------------------ *)
(* Stateless sleep-set DFS *)

let run ?(breakage = Config.no_breakage) ?(bounds = default_bounds)
    ?(keep_violations = 16) (p : Schedule.explore_params) =
  let schedules = ref 0
  and truncated = ref 0
  and sleep_pruned = ref 0
  and sleep_terminals = ref 0
  and transitions = ref 0
  and replayed = ref 0
  and max_depth_seen = ref 0
  and max_enabled = ref 0
  and max_risk = ref 0
  and violations = ref []
  and stop = ref false in
  let counterexample prefix_rev expect notes =
    if List.length !violations < keep_violations then begin
      let name =
        Fmt.str "explore-n%d-k%d-m%d-c%d-%s-%d" p.Schedule.n p.Schedule.k
          p.Schedule.messages p.Schedule.crashes
          (match expect with Schedule.Crashed -> "crash" | _ -> "violation")
          (List.length !violations + 1)
      in
      let sched =
        {
          Schedule.name;
          expect;
          breakage;
          scenario = Schedule.Explore p;
          choices = List.rev prefix_rev;
        }
      in
      violations := (sched, notes) :: !violations
    end
  in
  (* Rebuild the cluster at a prefix by replaying the recorded positions —
     the simulator is deterministic, so this reproduces the exact state
     (including event-queue sequence numbers, which sleep sets key on). *)
  let rebuild prefix_rev =
    let cluster = build ~breakage p in
    List.iter
      (fun pos ->
        incr replayed;
        if not (Cluster.step_nth cluster pos) then
          failwith "Explore: replay diverged (position out of range)")
      (List.rev prefix_rev);
    cluster
  in
  let terminal cluster prefix_rev =
    incr schedules;
    if !schedules >= bounds.max_schedules then stop := true;
    match Oracle.check ~k:p.Schedule.k ~n:p.Schedule.n (Cluster.trace cluster) with
    | oracle ->
      max_risk := Stdlib.max !max_risk oracle.Oracle.max_risk;
      if not (Oracle.ok oracle) then
        counterexample prefix_rev Schedule.Violated oracle.Oracle.violations
    | exception exn ->
      counterexample prefix_rev Schedule.Crashed [ Printexc.to_string exn ]
  in
  (* [sleep] holds pending events (stable seq identity) whose execution
     here would reproduce a trace already covered by an earlier sibling.
     [last_pid] is the process of the last executed event, for the
     preemption bound. *)
  let rec visit cluster prefix_rev ~depth ~preempts ~last_pid sleep =
    if not !stop then begin
      max_depth_seen := Stdlib.max !max_depth_seen depth;
      let enabled = Cluster.enabled_events cluster in
      max_enabled := Stdlib.max !max_enabled (List.length enabled);
      let indexed = List.mapi (fun pos ev -> (pos, ev)) enabled in
      (* Events whose target process is down are skipped, not executed:
         they would only requeue behind the (always pending, pid-less)
         restart event, which unblocks them once it runs. *)
      let runnable = List.filter (fun (_, ev) -> not ev.Cluster.blocked) indexed in
      if runnable = [] then terminal cluster prefix_rev
      else begin
        let slept, awake =
          List.partition
            (fun (_, ev) ->
              List.exists (fun s -> s.Cluster.key = ev.Cluster.key) sleep)
            runnable
        in
        sleep_pruned := !sleep_pruned + List.length slept;
        if awake = [] then incr sleep_terminals
        else if depth >= bounds.max_depth then incr truncated
        else begin
          let last_runnable =
            match last_pid with
            | None -> false
            | Some lp ->
              List.exists (fun (_, ev) -> ev.Cluster.pid = Some lp) runnable
          in
          (* A candidate is a preemption when it moves off a process that
             could still run; environment events (no pid) never count. *)
          let preempting ev =
            last_runnable && ev.Cluster.pid <> None && ev.Cluster.pid <> last_pid
          in
          let admissible, cut =
            match bounds.preemptions with
            | None -> (awake, [])
            | Some bound ->
              List.partition
                (fun (_, ev) -> (not (preempting ev)) || preempts < bound)
                awake
          in
          if cut <> [] then incr truncated;
          let n_adm = List.length admissible in
          List.iteri
            (fun i (pos, ev) ->
              if not !stop then begin
                (* Sleep set for the child: earlier siblings' subtrees have
                   covered every trace reaching this state through them, so
                   they sleep — unless dependent with [ev], whose execution
                   invalidates that coverage. *)
                let done_before =
                  List.filteri (fun j _ -> j < i) admissible |> List.map snd
                in
                let sleep' =
                  List.filter (fun s -> independent s ev) (sleep @ done_before)
                in
                let preempts' = preempts + if preempting ev then 1 else 0 in
                let last_pid' =
                  match ev.Cluster.pid with Some _ as pid -> pid | None -> last_pid
                in
                (* Stateless DFS: every sibling but the last replays the
                   prefix into a fresh cluster; the last reuses this one. *)
                let cl = if i = n_adm - 1 then cluster else rebuild prefix_rev in
                incr transitions;
                match Cluster.step_nth cl pos with
                | true ->
                  visit cl (pos :: prefix_rev) ~depth:(depth + 1)
                    ~preempts:preempts' ~last_pid:last_pid' sleep'
                | false -> failwith "Explore: chosen position vanished"
                | exception exn ->
                  (* The protocol (or a deliberate breakage) raised:
                     that terminates this schedule as a counter-example. *)
                  incr schedules;
                  if !schedules >= bounds.max_schedules then stop := true;
                  counterexample (pos :: prefix_rev) Schedule.Crashed
                    [ Printexc.to_string exn ]
              end)
            admissible
        end
      end
    end
  in
  visit (build ~breakage p) [] ~depth:0 ~preempts:0 ~last_pid:None [];
  {
    params = p;
    schedules = !schedules;
    truncated = !truncated;
    sleep_pruned = !sleep_pruned;
    sleep_terminals = !sleep_terminals;
    transitions = !transitions;
    replayed_transitions = !replayed;
    max_depth_seen = !max_depth_seen;
    max_enabled = !max_enabled;
    max_risk = !max_risk;
    complete = (!truncated = 0) && not !stop;
    violations = List.rev !violations;
  }

(* ------------------------------------------------------------------ *)
(* Replay *)

let replay_explore ?(breakage = Config.no_breakage) (p : Schedule.explore_params)
    ~choices =
  try
    let cluster = build ~breakage p in
    List.iter
      (fun pos ->
        if not (Cluster.step_nth cluster pos) then
          failwith
            (Fmt.str "Explore.replay: choice %d out of range (schedule stale?)" pos))
      choices;
    let first_runnable () =
      let rec go i = function
        | [] -> None
        | ev :: rest -> if ev.Cluster.blocked then go (i + 1) rest else Some i
      in
      go 0 (Cluster.enabled_events cluster)
    in
    let rec drain () =
      match first_runnable () with
      | None -> ()
      | Some i ->
        ignore (Cluster.step_nth cluster i);
        drain ()
    in
    drain ();
    let oracle = Oracle.check ~k:p.Schedule.k ~n:p.Schedule.n (Cluster.trace cluster) in
    if Oracle.ok oracle then Chaos.Certified oracle else Chaos.Violated oracle
  with exn -> Chaos.Crashed (Printexc.to_string exn)

let replay (s : Schedule.t) =
  match s.Schedule.scenario with
  | Schedule.Explore p ->
    replay_explore ~breakage:s.Schedule.breakage p ~choices:s.Schedule.choices
  | Schedule.Chaos { case; calls } ->
    (Chaos.run_case ~breakage:s.Schedule.breakage ~calls case).Chaos.verdict
  | Schedule.Figure1 flavour -> (
    try
      let flavour =
        match flavour with
        | `Improved -> Figure1.Improved
        | `Strom_yemini -> Figure1.Strom_yemini
      in
      let outcome = Figure1.run flavour in
      let oracle = outcome.Figure1.oracle in
      if outcome.Figure1.failures = [] && Oracle.ok oracle then
        Chaos.Certified oracle
      else
        Chaos.Violated
          {
            oracle with
            Oracle.violations = outcome.Figure1.failures @ oracle.Oracle.violations;
          }
    with exn -> Chaos.Crashed (Printexc.to_string exn))

let verdict_matches expect verdict = Chaos.expect_of_verdict verdict = expect
