(** Discrete-event simulation of an N-process recovery cluster.

    Owns the nodes, the event queue, the network model, the periodic timers
    (flush, checkpoint, logging-progress notices), failure injection and the
    outside world (client injections plus their retransmission on failure
    announcements).  Time advances only through the cost model: application
    processing, synchronous stable writes, replay and checkpoint work all
    consume simulated time on the node that performs them, so makespan and
    latency measurements reflect protocol overhead. *)

type ('state, 'msg) t

val create :
  config:Recovery.Config.t ->
  app:('state, 'msg) App_model.App_intf.t ->
  ?seed:int ->
  ?horizon:float ->
  ?net_override:Netmodel.override ->
  ?fault_plan:Netmodel.fault_plan ->
  ?auto_timers:bool ->
  ?store_root:string ->
  ?scheduler:Sim.Scheduler.t ->
  unit ->
  ('state, 'msg) t
(** [scheduler] replaces the earliest-time execution order: at every step
    it picks which pending event runs next (see {!Sim.Scheduler}).  The
    default is exactly earliest-time order, so runs without a scheduler
    are bit-for-bit unchanged.  [auto_timers] (default [true]) arms the periodic flush / checkpoint /
    notice timers from the configured intervals (plus the retransmission
    timer when {!Recovery.Config.timing.retransmit_interval} is set);
    scripted scenarios turn it off and drive those actions explicitly.
    [horizon] (default 10000 time units) bounds the run — periodic timers
    re-arm forever, so a finite horizon is what terminates [run].
    [fault_plan] (default {!Netmodel.benign}) subjects all inter-node
    traffic to adversarial network faults; its randomness comes from a
    stream separate from the timing jitter, so the benign plan reproduces
    historical runs bit-for-bit. *)

(** {1 Scheduling inputs} *)

val inject_at : ('state, 'msg) t -> time:float -> dst:int -> 'msg -> unit
(** Client message from the outside world. *)

val crash_at : ('state, 'msg) t -> time:float -> pid:int -> unit
(** Fail-stop crash; the node restarts [restart_delay] later. *)

val kill_at :
  ('state, 'msg) t ->
  time:float ->
  pid:int ->
  ?storage_fault:Durable.Fault.t ->
  unit ->
  unit
(** Process death (requires [~store_root]): the node handle is discarded
    with its store descriptors, the optional storage fault mutates the
    closed files, and after [restart_delay] a {e fresh} node is created
    over the same directory — recovering solely from disk — and restarted.
    [Failed_fsync] is special: it is armed on the live store a couple of
    flush periods {e before} [time], so the node announces stability for
    log records the disk never persisted. *)

val storage_reports :
  ('state, 'msg) t ->
  (int * float * string * Storage.Stable_store.open_report) list
(** One entry per respawn, oldest first: (pid, respawn time, description of
    the injected file damage or ["none"], what open-time recovery found). *)

val crash_group_at : ('state, 'msg) t -> time:float -> pids:int list -> unit
(** Correlated failure: all listed nodes crash at the same instant. *)

val cascade_crash_at :
  ('state, 'msg) t -> time:float -> ?gap:float -> pids:int list -> unit -> unit
(** Cascading failure: each listed node crashes [gap] (default: half the
    restart delay, i.e. while the previous victim is still down) after the
    previous one. *)

(** {1 Membership churn} *)

val join_at : ('state, 'msg) t -> time:float -> pid:int -> unit
(** Bring process [pid] into the cluster at [time].

    - [pid = n t]: a {e brand-new} process joins.  It is created with a
      config counting itself ([n = pid + 1]); by Corollary 3 it starts with
      no dependency entries, and the incumbents widen their vectors when the
      Join broadcast reaches them.
    - [pid < n t]: a {e rejoin} under the same identity (e.g. after
      {!retire_at}); any retirement record is cleared, the node restarts if
      it was down, and it re-announces itself. *)

val retire_at : ('state, 'msg) t -> time:float -> pid:int -> unit
(** Graceful leave at [time]: the node force-flushes its log, broadcasts its
    final frontier (survivors treat its entries as stable forever — the
    Theorem 2 justification), and falls permanently silent.  Packets
    addressed to a retired pid are dropped.  No restart is scheduled; the
    pid can come back only through an explicit {!join_at}. *)

val rolling_restart_at :
  ('state, 'msg) t -> time:float -> ?gap:float -> pids:int list -> unit -> unit
(** Rolling restart: each listed node crashes [gap] (default: twice the
    restart delay, i.e. after the previous victim fully recovered) after
    the previous one — the classic zero-downtime upgrade pattern. *)

val arm_disk_full_at :
  ('state, 'msg) t -> time:float -> pid:int -> rounds:int -> unit
(** Brownout injection: from [time], the node's next [rounds] ordinary
    flushes refuse as if the disk were full (see
    {!Storage.Stable_store.arm_disk_full}).  Degradation is graceful: the
    volatile buffer is retained and the K-rule keeps sends gated until the
    window passes. *)

val retired : ('state, 'msg) t -> int list
(** Pids currently retired (newest first). *)

val crash_during_checkpoint_at : ('state, 'msg) t -> time:float -> pid:int -> unit
(** Force a checkpoint at [time] and crash the node mid-way through the
    checkpoint's busy window. *)

val crash_during_flush_at : ('state, 'msg) t -> time:float -> pid:int -> unit
(** Force a flush at [time] and crash the node mid-way through the write. *)

val perform_at :
  ('state, 'msg) t ->
  time:float ->
  pid:int ->
  'msg App_model.App_intf.effect list ->
  unit
(** Execute application effects within the node's current interval (see
    {!Recovery.Node.perform}); used by scripted scenarios. *)

val flush_at : ('state, 'msg) t -> time:float -> pid:int -> unit

val checkpoint_at : ('state, 'msg) t -> time:float -> pid:int -> unit

val notice_at : ('state, 'msg) t -> time:float -> pid:int -> unit

(** {1 Running} *)

val run : ('state, 'msg) t -> unit
(** Process events until the queue is empty or the horizon is reached. *)

val run_until : ('state, 'msg) t -> float -> unit
(** Process every event scheduled strictly before the given time. *)

(** {1 Explicit scheduling choice points}

    The model checker ({!Explore}) does not run the cluster to completion;
    it inspects the pending events, chooses one, executes it, and repeats —
    enumerating interleavings instead of following the clock. *)

(** One pending event, as seen from a scheduling choice point. *)
type enabled = {
  key : int;
      (** event-queue sequence number: a stable identity for this event
          across inspections (sleep sets are keyed on it) *)
  at : float;  (** scheduled simulation time *)
  pid : int option;
      (** the process whose state the event touches; [None] for failure
          injection and restart events, which the model checker treats as
          dependent on everything *)
  blocked : bool;  (** target process is currently down *)
  label : string;  (** canonical human-readable description *)
  log_write : bool;
      (** appends the outside world's request log (a fresh client
          injection) *)
  log_read : bool;
      (** reads that log (a failure announcement triggers client
          retransmission) — reads and writes do not commute *)
}

val enabled_events : ('state, 'msg) t -> enabled list
(** All pending events in canonical pop order (ascending [(time, seq)]).
    Positions in this list are the choice indices {!step_nth} accepts and
    {!Harness.Schedule} records. *)

val step_nth : ('state, 'msg) t -> int -> bool
(** Execute the [i]-th pending event of the canonical order ([step_nth t 0]
    follows earliest-time order).  Unlike {!run}, no horizon check is
    applied: the caller chose this event explicitly.  [false] if [i] is
    out of range (in particular, when nothing is pending). *)

(** {1 Inspection} *)

val n : ('state, 'msg) t -> int

val now : ('state, 'msg) t -> float

val node : ('state, 'msg) t -> int -> ('state, 'msg) Recovery.Node.t

val nodes : ('state, 'msg) t -> ('state, 'msg) Recovery.Node.t array

val trace : ('state, 'msg) t -> Recovery.Trace.t

val config : ('state, 'msg) t -> Recovery.Config.t

(** Aggregate run statistics (sums / merges over all nodes plus network
    accounting). *)
type stats = {
  makespan : float;  (** time of the last processed event *)
  deliveries : int;
  releases : int;
  sends : int;
  sync_writes : int;
  flushes : int;
  blocked_time : Sim.Summary.t;
  wire_vector_size : Sim.Summary.t;
  release_dep_entries : Sim.Summary.t;
  delivery_delay : Sim.Summary.t;
  output_latency : Sim.Summary.t;
  outputs_committed : int;
  orphans_discarded : int;
  duplicates_dropped : int;
  induced_rollbacks : int;
  restarts : int;
  undone_intervals : int;
  lost_intervals : int;
  replayed : int;
  retransmissions : int;
  announcements : int;
  notices : int;
  packets : (string * int) list;
  piggyback_entries : int;
  net_faults : Netmodel.fault_stats;
      (** wire-level faults injected by the fault plan *)
  busy_time : float;  (** total node busy time (work-weighted overhead) *)
}

val stats : ('state, 'msg) t -> stats
