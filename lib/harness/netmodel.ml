type override = src:int -> dst:int -> packet_kind:string -> float option

(* --- Adversarial fault plan ----------------------------------------- *)

type partition_mode = Drop_packets | Queue_packets

type partition = {
  group : int list; (* one side; the other side is the complement *)
  from_ : float;
  until : float;
  mode : partition_mode;
}

type fault_plan = {
  loss : float;
  duplicate : float;
  reorder : float;
  reorder_spread : float;
  partitions : partition list;
}

let benign =
  { loss = 0.; duplicate = 0.; reorder = 0.; reorder_spread = 0.; partitions = [] }

let plan_is_benign p =
  p.loss <= 0. && p.duplicate <= 0. && p.reorder <= 0. && p.partitions = []

type fault_stats = {
  lost : int;
  duplicated : int;
  reordered : int;
  partition_dropped : int;
  partition_queued : int;
}

type t = {
  timing : Recovery.Config.timing;
  rng : Sim.Rng.t;
  fault_rng : Sim.Rng.t;
  plan : fault_plan;
  override : override option;
  mutable channel_last : float array array;
      (* last scheduled arrival per (src,dst); grows when membership does *)
  counts : (string, int) Hashtbl.t;
  mutable entries : int;
  mutable lost : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable partition_dropped : int;
  mutable partition_queued : int;
}

let create ~n ~timing ~rng ?fault_rng ?(plan = benign) ?override () =
  {
    timing;
    rng;
    (* The fault stream is separate from the timing stream so a benign plan
       leaves every jitter draw — and therefore every experiment table —
       bit-for-bit unchanged. *)
    fault_rng = (match fault_rng with Some r -> r | None -> Sim.Rng.create 0);
    plan;
    override;
    channel_last = Array.make_matrix (n + 1) (n + 1) 0.;
    counts = Hashtbl.create 8;
    entries = 0;
    lost = 0;
    duplicated = 0;
    reordered = 0;
    partition_dropped = 0;
    partition_queued = 0;
  }

(* Widen the per-channel FIFO matrix when a joiner brings a pid the
   cluster was not created with.  New channels start at 0 (no previous
   arrival), exactly like the channels of the original membership. *)
let ensure_pid t pid =
  let size = Array.length t.channel_last in
  if pid + 1 >= size then begin
    let size' = pid + 2 in
    let fresh =
      Array.init size' (fun i ->
          let row = Array.make size' 0. in
          if i < size then Array.blit t.channel_last.(i) 0 row 0 size;
          row)
    in
    t.channel_last <- fresh
  end

let transit t ~now ~src ~dst ~kind ~entries =
  Hashtbl.replace t.counts kind (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts kind));
  t.entries <- t.entries + entries;
  let tm = t.timing in
  let delay =
    match t.override with
    | Some f -> (
      match f ~src ~dst ~packet_kind:kind with
      | Some d -> d
      | None ->
        tm.net_latency
        +. Sim.Rng.float t.rng (Stdlib.max 1e-9 tm.net_jitter)
        +. (float_of_int entries *. tm.per_entry_overhead))
    | None ->
      tm.net_latency
      +. Sim.Rng.float t.rng (Stdlib.max 1e-9 tm.net_jitter)
      +. (float_of_int entries *. tm.per_entry_overhead)
  in
  let arrival = now +. Stdlib.max 0. delay in
  if tm.fifo && src >= 0 && dst >= 0 then begin
    ensure_pid t (Stdlib.max src dst);
    let last = t.channel_last.(src).(dst) in
    let arrival = Stdlib.max arrival (last +. 1e-9) in
    t.channel_last.(src).(dst) <- arrival;
    arrival
  end
  else arrival

let partition_separates p ~src ~dst =
  let in_group pid = List.mem pid p.group in
  in_group src <> in_group dst

let active_partition t ~now ~src ~dst =
  if src < 0 || dst < 0 then None
  else
    List.find_opt
      (fun p -> now >= p.from_ && now < p.until && partition_separates p ~src ~dst)
      t.plan.partitions

(* Absolute arrival times for one packet handed to the network at [now]:
   [] if the wire eats it, two entries if it is duplicated.  The timing
   draw happens first and unconditionally (identical to [transit]), then
   each fault consumes the fault stream. *)
let arrivals t ~now ~src ~dst ~kind ~entries =
  let base = transit t ~now ~src ~dst ~kind ~entries in
  if plan_is_benign t.plan then [ base ]
  else
    let p = t.plan in
    match active_partition t ~now ~src ~dst with
    | Some part when part.mode = Drop_packets ->
      t.partition_dropped <- t.partition_dropped + 1;
      []
    | (Some _ | None) as part ->
      if p.loss > 0. && Sim.Rng.bernoulli t.fault_rng ~p:p.loss then begin
        t.lost <- t.lost + 1;
        []
      end
      else begin
        let arrival =
          match part with
          | Some q ->
            (* Queued at the partition boundary: delivered shortly after
               the partition heals, in a fault-stream-jittered order. *)
            t.partition_queued <- t.partition_queued + 1;
            Stdlib.max base (q.until +. Sim.Rng.float t.fault_rng 1.0)
          | None -> base
        in
        let arrival =
          if p.reorder > 0. && Sim.Rng.bernoulli t.fault_rng ~p:p.reorder then begin
            t.reordered <- t.reordered + 1;
            arrival +. Sim.Rng.float t.fault_rng (Stdlib.max 1e-9 p.reorder_spread)
          end
          else arrival
        in
        if p.duplicate > 0. && Sim.Rng.bernoulli t.fault_rng ~p:p.duplicate then begin
          t.duplicated <- t.duplicated + 1;
          let echo =
            arrival +. Sim.Rng.float t.fault_rng (Stdlib.max 1e-9 t.timing.net_jitter)
          in
          [ arrival; echo ]
        end
        else [ arrival ]
      end

let packets_sent t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let entries_carried t = t.entries

let fault_stats t =
  {
    lost = t.lost;
    duplicated = t.duplicated;
    reordered = t.reordered;
    partition_dropped = t.partition_dropped;
    partition_queued = t.partition_queued;
  }
