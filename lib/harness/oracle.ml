open Depend
module Trace = Recovery.Trace
module Wire = Recovery.Wire

type ikey = int * int * int (* pid, incarnation, state-interval index *)

type info = {
  dep : Multi_dep.t; (* true transitive dependency set, self included *)
  digest : int;
  mutable stable_at : float option;
  mutable lost : bool;
}

type report = {
  violations : string list;
  intervals : int;
  lost : int;
  undone : int;
  orphans_at_end : int;
  released : int;
  max_risk : int;
  committed_outputs : int;
}

let ok r = r.violations = []

let pp_report ppf r =
  Fmt.pf ppf
    "oracle: %s (%d intervals, %d lost, %d undone, %d released, max risk %d, %d \
     outputs)"
    (if ok r then "OK" else Fmt.str "%d VIOLATIONS" (List.length r.violations))
    r.intervals r.lost r.undone r.released r.max_risk r.committed_outputs;
  if not (ok r) then
    List.iter (fun v -> Fmt.pf ppf "@\n  - %s" v) r.violations

let key pid (e : Entry.t) : ikey = (pid, e.inc, e.sii)

let pp_ikey ppf (pid, inc, sii) = Fmt.pf ppf "(%d,%d)_%d" inc sii pid

let dependencies ~n trace ~pid interval =
  (* Lightweight forward pass: rebuild only the dependency sets.  Chains
     are implicit — an interval's predecessor and sender are named by the
     trace events, so a single table suffices. *)
  let table : (ikey, Multi_dep.t) Hashtbl.t = Hashtbl.create 256 in
  let chains : Entry.t list array = Array.make n [] (* newest first *) in
  let add pid interval ~pred_dep ~sender_dep =
    let dep = Multi_dep.create ~n in
    (match pred_dep with Some d -> Multi_dep.merge ~into:dep d | None -> ());
    (match sender_dep with Some d -> Multi_dep.merge ~into:dep d | None -> ());
    Multi_dep.add dep pid interval;
    Hashtbl.replace table (key pid interval) dep;
    chains.(pid) <- interval :: chains.(pid)
  in
  let head_dep pid =
    match chains.(pid) with
    | [] -> None
    | h :: _ -> Hashtbl.find_opt table (key pid h)
  in
  let truncate pid ~keep_le =
    chains.(pid) <-
      List.filter (fun (e : Entry.t) -> e.sii <= keep_le) chains.(pid)
  in
  let handle (e : Trace.entry) =
    match e.ev with
    | Trace.Interval_started { pid; interval; pred; by; sender_interval; replay; _ }
      when not replay ->
      let pred_dep =
        Option.bind pred (fun p -> Hashtbl.find_opt table (key pid p))
      in
      let sender_dep =
        match by, sender_interval with
        | Some id, Some si when id.Wire.origin >= 0 ->
          Hashtbl.find_opt table (key id.Wire.origin si)
        | _, _ -> None
      in
      add pid interval ~pred_dep ~sender_dep
    | Trace.Crashed { pid; first_lost = Some fl } -> truncate pid ~keep_le:(fl.sii - 1)
    | Trace.Crashed { first_lost = None; _ } -> ()
    | Trace.Restarted { pid; new_current; _ } ->
      add pid new_current ~pred_dep:(head_dep pid) ~sender_dep:None
    | Trace.Rolled_back { pid; restored; new_current; _ } ->
      truncate pid ~keep_le:restored.sii;
      add pid new_current ~pred_dep:(head_dep pid) ~sender_dep:None
    | _ -> ()
  in
  List.iter handle (Trace.events trace);
  Option.map Multi_dep.entries (Hashtbl.find_opt table (key pid interval))

let check ?k ~n trace =
  let violations = ref [] in
  let violation fmt = Fmt.kstr (fun s -> violations := s :: !violations) fmt in
  let table : (ikey, info) Hashtbl.t = Hashtbl.create 1024 in
  let chains : ikey list array = Array.make n [] (* newest first *) in
  let lost_set : (ikey, unit) Hashtbl.t = Hashtbl.create 64 in
  let sent : (Wire.identity, ikey) Hashtbl.t = Hashtbl.create 256 in
  let released = ref [] in
  let committed = ref [] in
  let undone_count = ref 0 in
  let find ikey = Hashtbl.find_opt table ikey in
  let dep_of ikey =
    match find ikey with
    | Some info -> Some info.dep
    | None ->
      violation "internal: unknown interval %a referenced" pp_ikey ikey;
      None
  in
  (* An interval is a true orphan iff its dependency closure meets the set
     of intervals lost in crashes (Definition 1 + Theorem 1 roots). *)
  let orphan dep =
    Hashtbl.fold
      (fun (pid, inc, sii) () acc ->
        acc || Multi_dep.depends_on dep pid (Entry.make ~inc ~sii))
      lost_set false
  in
  let add_interval ~pid ~interval ~pred_dep ~sender_dep ~digest ~stable_at =
    let dep = Multi_dep.create ~n in
    (match pred_dep with Some d -> Multi_dep.merge ~into:dep d | None -> ());
    (match sender_dep with Some d -> Multi_dep.merge ~into:dep d | None -> ());
    Multi_dep.add dep pid interval;
    let ikey = key pid interval in
    Hashtbl.replace table ikey { dep; digest; stable_at; lost = false };
    chains.(pid) <- ikey :: chains.(pid);
    ikey
  in
  let marker ~now ~pid ~interval =
    let pred_dep =
      match chains.(pid) with
      | [] -> None
      | head :: _ -> Option.map (fun i -> i.dep) (find head)
    in
    ignore
      (add_interval ~pid ~interval ~pred_dep ~sender_dep:None ~digest:0
         ~stable_at:(Some now)
        : ikey)
  in
  let handle (e : Trace.entry) =
    let now = e.time in
    match e.ev with
    | Trace.Interval_started { pid; interval; pred; by; sender_interval; digest; replay }
      ->
      let ikey = key pid interval in
      if replay then begin
        match find ikey with
        | Some info ->
          if info.digest <> digest then
            violation
              "replay divergence: interval %a digest %d != original %d (PWD \
               determinism broken)"
              pp_ikey ikey digest info.digest
        | None ->
          violation "replayed interval %a was never created live" pp_ikey ikey
      end
      else begin
        if Hashtbl.mem table ikey then
          violation "interval %a created twice" pp_ikey ikey;
        let pred_dep =
          match pred with
          | None -> None
          | Some p -> Option.map (fun i -> i.dep) (find (key pid p))
        in
        let sender_dep =
          match by, sender_interval with
          | Some id, Some si when id.Wire.origin >= 0 ->
            Option.bind (dep_of (key id.Wire.origin si)) Option.some
          | _, _ -> None
        in
        ignore
          (add_interval ~pid ~interval ~pred_dep ~sender_dep ~digest ~stable_at:None
            : ikey)
      end
    | Trace.Message_sent { id; src; send_interval; _ } ->
      Hashtbl.replace sent id (key src send_interval)
    | Trace.Message_released { id; _ } -> released := (id, now) :: !released
    | Trace.Message_delivered _ | Trace.Send_cancelled _ -> ()
    | Trace.Message_discarded { id; reason = Trace.Orphan_message; dst } -> (
      match Hashtbl.find_opt sent id with
      | None ->
        violation "P%d discarded %a as orphan but it has no sender interval"
          dst Wire.pp_identity id
      | Some src_key -> (
        match dep_of src_key with
        | None -> ()
        | Some dep ->
          if not (orphan dep) then
            violation "P%d discarded non-orphan message %a (sent from %a)" dst
              Wire.pp_identity id pp_ikey src_key))
    | Trace.Message_discarded { reason = Trace.Duplicate; _ } -> ()
    | Trace.Stability_advanced { pid; upto } ->
      (* Stamp unstable chain entries at or below [upto].  Stability is
         monotone along the chain, so the walk can stop at the first
         already-stable entry within range; newer-than-[upto] entries (and
         marker intervals, stable from birth) are skipped. *)
      let rec stamp = function
        | [] -> ()
        | ((_, inc, sii) as ikey) :: rest -> (
          match find ikey with
          | None -> stamp rest
          | Some info ->
            if Entry.le (Entry.make ~inc ~sii) upto then begin
              if info.stable_at = None then begin
                info.stable_at <- Some now;
                stamp rest
              end
            end
            else stamp rest)
      in
      stamp chains.(pid)
    | Trace.Checkpoint_taken _ | Trace.Notice_sent _ | Trace.Announcement_received _
    | Trace.Output_buffered _ | Trace.Recovery_completed _ ->
      ()
    | Trace.Crashed { pid; first_lost } -> (
      match first_lost with
      | None -> ()
      | Some fl ->
        let rec pop = function
          | ikey :: rest when (fun (_, _, sii) -> sii >= fl.Entry.sii) ikey ->
            (match find ikey with
            | Some info ->
              if info.stable_at <> None then
                violation
                  "interval %a was announced stable yet lost in P%d's crash"
                  pp_ikey ikey pid;
              info.lost <- true
            | None -> ());
            Hashtbl.replace lost_set ikey ();
            pop rest
          | rest -> rest
        in
        chains.(pid) <- pop chains.(pid))
    | Trace.Restarted { pid; new_current; _ } -> marker ~now ~pid ~interval:new_current
    | Trace.Rolled_back { pid; restored; new_current; _ } ->
      let rec pop = function
        | ikey :: rest when (fun (_, _, sii) -> sii > restored.Entry.sii) ikey ->
          incr undone_count;
          (match find ikey with
          | Some info ->
            if not (orphan info.dep) then
              violation
                "P%d's induced rollback undid %a, which is not a true orphan"
                pid pp_ikey ikey
          | None -> ());
          pop rest
        | rest -> rest
      in
      chains.(pid) <- pop chains.(pid);
      marker ~now ~pid ~interval:new_current
    | Trace.Output_committed { pid; id; text; _ } ->
      committed := (pid, id.Wire.out_interval, text) :: !committed
  in
  List.iter handle (Trace.events trace);
  (* --- end-of-run checks --- *)
  let orphans_at_end = ref 0 in
  Array.iteri
    (fun pid chain ->
      List.iter
        (fun ikey ->
          match find ikey with
          | None -> ()
          | Some info ->
            if orphan info.dep then begin
              incr orphans_at_end;
              violation "P%d's surviving interval %a is orphan at end of run" pid
                pp_ikey ikey
            end)
        chain)
    chains;
  List.iter
    (fun (pid, out_interval, text) ->
      match dep_of (key pid out_interval) with
      | None -> ()
      | Some dep ->
        if orphan dep then
          violation "committed output %S at P%d depends on a lost interval" text
            pid)
    !committed;
  (* Theorem 4: released messages are revocable by at most K failures. *)
  let max_risk = ref 0 in
  let check_release (id, time) =
    match Hashtbl.find_opt sent id with
    | None -> violation "released message %a was never sent" Wire.pp_identity id
    | Some src_key -> (
      match dep_of src_key with
      | None -> ()
      | Some dep ->
        let risky = Hashtbl.create 8 in
        List.iter
          (fun (pid, e) ->
            let stable =
              match find (key pid e) with
              | Some info -> (
                match info.stable_at with Some s -> s <= time | None -> false)
              | None -> false
            in
            if not stable then Hashtbl.replace risky pid ())
          (Multi_dep.entries dep);
        let risk = Hashtbl.length risky in
        if risk > !max_risk then max_risk := risk;
        match k with
        | Some k when risk > k ->
          violation
            "Theorem 4 violated: message %a released with %d risky processes > K=%d"
            Wire.pp_identity id risk k
        | Some _ | None -> ())
  in
  List.iter check_release (List.rev !released);
  {
    violations = List.rev !violations;
    intervals = Hashtbl.length table;
    lost = Hashtbl.length lost_set;
    undone = !undone_count;
    orphans_at_end = !orphans_at_end;
    released = List.length !released;
    max_risk = !max_risk;
    committed_outputs = List.length !committed;
  }
