module Config = Recovery.Config

(* A fault directive: one removable unit of adversity.  A campaign case is
   a list of directives; the shrinker minimizes a failing case by dropping
   directives one at a time, so each directive must be independently
   removable.  The types live in {!Schedule} (which serializes them) and
   are re-exported here so existing campaign code is unaffected. *)
type crash_kind = Schedule.crash_kind =
  | Single of int
  | Group of int list
  | Cascade of int list
  | In_checkpoint of int
  | In_flush of int

type fault = Schedule.fault =
  | Loss of float
  | Duplication of float
  | Reorder of float * float  (* probability, spread *)
  | Partition of { group : int list; from_ : float; until : float; drop : bool }
  | Crash of { kind : crash_kind; time : float }
  | Kill of { pid : int; time : float; storage : Durable.Fault.t option }
  | Join of { pid : int; time : float }
  | Retire of { pid : int; time : float }
  | Brownout of { pid : int; time : float; rounds : int }

type case = Schedule.case = { n : int; k : int; seed : int; faults : fault list }

let pp_pids = Fmt.(brackets (list ~sep:comma int))

let pp_fault ppf = function
  | Loss p -> Fmt.pf ppf "loss %.1f%%" (100. *. p)
  | Duplication p -> Fmt.pf ppf "duplication %.1f%%" (100. *. p)
  | Reorder (p, spread) -> Fmt.pf ppf "reorder %.1f%% (spread %.1f)" (100. *. p) spread
  | Partition { group; from_; until; drop } ->
    Fmt.pf ppf "partition %a %s [%.0f, %.0f)" pp_pids group
      (if drop then "dropping" else "queueing")
      from_ until
  | Crash { kind; time } -> (
    match kind with
    | Single pid -> Fmt.pf ppf "crash P%d at %.0f" pid time
    | Group pids -> Fmt.pf ppf "simultaneous crash %a at %.0f" pp_pids pids time
    | Cascade pids -> Fmt.pf ppf "cascading crash %a from %.0f" pp_pids pids time
    | In_checkpoint pid -> Fmt.pf ppf "crash P%d during checkpoint at %.0f" pid time
    | In_flush pid -> Fmt.pf ppf "crash P%d during flush at %.0f" pid time)
  | Kill { pid; time; storage } ->
    Fmt.pf ppf "kill P%d at %.0f%a" pid time
      Fmt.(option (any " + storage fault " ++ Durable.Fault.pp))
      storage
  | Join { pid; time } -> Fmt.pf ppf "join P%d at %.0f" pid time
  | Retire { pid; time } -> Fmt.pf ppf "retire P%d at %.0f" pid time
  | Brownout { pid; time; rounds } ->
    Fmt.pf ppf "brownout P%d at %.0f for %d flushes" pid time rounds

let pp_case ppf c =
  Fmt.pf ppf "@[<v2>n=%d K=%d seed=%d, %d fault(s):@,%a@]" c.n c.k c.seed
    (List.length c.faults)
    Fmt.(list ~sep:cut pp_fault)
    c.faults

(* Fold the wire-level directives into one Netmodel plan.  Multiple
   directives of the same probabilistic kind combine by max, so dropping
   any one of them weakens the plan monotonically. *)
let plan_of_faults faults =
  List.fold_left
    (fun (plan : Netmodel.fault_plan) fault ->
      match fault with
      | Loss p -> { plan with loss = Stdlib.max plan.loss p }
      | Duplication p -> { plan with duplicate = Stdlib.max plan.duplicate p }
      | Reorder (p, spread) ->
        {
          plan with
          reorder = Stdlib.max plan.reorder p;
          reorder_spread = Stdlib.max plan.reorder_spread spread;
        }
      | Partition { group; from_; until; drop } ->
        {
          plan with
          partitions =
            {
              Netmodel.group;
              from_;
              until;
              mode = (if drop then Netmodel.Drop_packets else Netmodel.Queue_packets);
            }
            :: plan.partitions;
        }
      | Crash _ | Kill _ | Join _ | Retire _ | Brownout _ -> plan)
    Netmodel.benign faults

let schedule_crashes cluster faults =
  List.iter
    (function
      | Loss _ | Duplication _ | Reorder _ | Partition _ -> ()
      | Kill { pid; time; storage } ->
        Cluster.kill_at cluster ~time ~pid ?storage_fault:storage ()
      | Crash { kind; time } -> (
        match kind with
        | Single pid -> Cluster.crash_at cluster ~time ~pid
        | Group pids -> Cluster.crash_group_at cluster ~time ~pids
        | Cascade pids -> Cluster.cascade_crash_at cluster ~time ~pids ()
        | In_checkpoint pid -> Cluster.crash_during_checkpoint_at cluster ~time ~pid
        | In_flush pid -> Cluster.crash_during_flush_at cluster ~time ~pid)
      | Join { pid; time } -> Cluster.join_at cluster ~time ~pid
      | Retire { pid; time } -> Cluster.retire_at cluster ~time ~pid
      | Brownout { pid; time; rounds } ->
        Cluster.arm_disk_full_at cluster ~time ~pid ~rounds)
    faults

let needs_store faults = List.exists (function Kill _ -> true | _ -> false) faults

type verdict =
  | Certified of Oracle.report
  | Detected of { oracle : Oracle.report; damage : string list }
      (* oracle violations, but injected storage damage was detected and
         reported at reopen: loud data loss, not silent wrong state *)
  | Violated of Oracle.report
  | Crashed of string  (* the harness or protocol raised *)

type outcome = { verdict : verdict; stats : Cluster.stats option }

let verdict_failed = function
  | Certified _ | Detected _ -> false
  | Violated _ | Crashed _ -> true

let pp_verdict ppf = function
  | Certified r -> Fmt.pf ppf "certified (%a)" Oracle.pp_report r
  | Detected { oracle; damage } ->
    Fmt.pf ppf "@[<v2>detected storage damage (%a):@,%a@]" Oracle.pp_report oracle
      Fmt.(list ~sep:cut string)
      damage
  | Violated r -> Fmt.pf ppf "VIOLATED: %a" Oracle.pp_report r
  | Crashed msg -> Fmt.pf ppf "HARNESS EXCEPTION: %s" msg

(* Run one case end to end: hardened K-optimistic protocol (periodic
   retransmission + announcement gossip), telecom workload, the case's
   fault plan and crash schedule, then the offline causality oracle over
   the full trace.  A deliberately broken protocol ([breakage]) may also
   make the run raise — that counts as a failure, not a campaign abort. *)
let run_case ?(breakage = Config.no_breakage) ?(calls = 60) case =
  (* Kill directives need real files to die over; the store root lives only
     for the duration of the run. *)
  let store_root =
    if needs_store case.faults then Some (Durable.Temp.fresh_dir ~prefix:"chaos" ())
    else None
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Durable.Temp.rm_rf store_root)
    (fun () ->
      try
        let config =
          Config.harden (Config.k_optimistic ~n:case.n ~k:case.k ())
        in
        let config =
          { config with Config.protocol = { config.Config.protocol with breakage } }
        in
        let cluster =
          Cluster.create ~config ~app:App_model.Telecom_app.app ~seed:case.seed
            ~horizon:1500. ~fault_plan:(plan_of_faults case.faults) ?store_root ()
        in
        let rng = Sim.Rng.create (case.seed * 7919) in
        Workload.telecom cluster ~rng ~calls ~hops:4 ~start:10. ~rate:1.0;
        schedule_crashes cluster case.faults;
        Cluster.run cluster;
        (* A [Join] directive can grow membership mid-run; certify at the
           cluster's final width, not the case's starting one. *)
        let oracle =
          Oracle.check ~k:case.k ~n:(Cluster.n cluster) (Cluster.trace cluster)
        in
        let stats = Some (Cluster.stats cluster) in
        let damage =
          List.filter_map
            (fun (pid, time, note, report) ->
              if note <> "none" || Storage.Stable_store.report_damaged report then
                Some
                  (Fmt.str "P%d respawned at %.0f: %s; %a" pid time note
                     Storage.Stable_store.pp_open_report report)
              else None)
            (Cluster.storage_reports cluster)
        in
        if Oracle.ok oracle then { verdict = Certified oracle; stats }
        else if damage <> [] then { verdict = Detected { oracle; damage }; stats }
        else { verdict = Violated oracle; stats }
      with exn -> { verdict = Crashed (Printexc.to_string exn); stats = None })

(* ------------------------------------------------------------------ *)
(* Randomized campaign                                                 *)

let distinct_pids rng ~n ~count =
  let pids = Array.init n Fun.id in
  Sim.Rng.shuffle rng pids;
  Array.to_list (Array.sub pids 0 (Stdlib.min count n))

(* One randomized case.  Every case carries loss, duplication and
   reordering; half add a partition; every case has at least one crash
   directive, cycling through the correlated-failure kinds so each kind
   appears throughout a campaign.  K cycles through {0, 2, N}.  With
   [storage_faults] every case additionally kills one process — cycling
   through no damage and the four storage faults — so the campaign also
   exercises restart-from-disk under file corruption. *)
let random_case ?(storage_faults = false) rng ~index =
  let n = 4 + Sim.Rng.int rng 5 in
  let k = match index mod 3 with 0 -> 0 | 1 -> Stdlib.min 2 n | _ -> n in
  let seed = 10_000 + index in
  let faults = ref [] in
  let add f = faults := f :: !faults in
  add (Loss (Sim.Rng.uniform rng ~lo:0.01 ~hi:0.10));
  add (Duplication (Sim.Rng.uniform rng ~lo:0.01 ~hi:0.10));
  add (Reorder (Sim.Rng.uniform rng ~lo:0.02 ~hi:0.20, Sim.Rng.uniform rng ~lo:5. ~hi:25.));
  if Sim.Rng.bool rng then begin
    let side = distinct_pids rng ~n ~count:(1 + Sim.Rng.int rng (n - 1)) in
    let from_ = Sim.Rng.uniform rng ~lo:40. ~hi:150. in
    let duration = Sim.Rng.uniform rng ~lo:20. ~hi:80. in
    add (Partition { group = side; from_; until = from_ +. duration; drop = Sim.Rng.bool rng })
  end;
  let crash_time () = Sim.Rng.uniform rng ~lo:40. ~hi:220. in
  (match index mod 5 with
  | 0 -> add (Crash { kind = Single (Sim.Rng.int rng n); time = crash_time () })
  | 1 -> add (Crash { kind = Group (distinct_pids rng ~n ~count:2); time = crash_time () })
  | 2 -> add (Crash { kind = Cascade (distinct_pids rng ~n ~count:3); time = crash_time () })
  | 3 -> add (Crash { kind = In_checkpoint (Sim.Rng.int rng n); time = crash_time () })
  | _ -> add (Crash { kind = In_flush (Sim.Rng.int rng n); time = crash_time () }));
  (* Occasionally a second, independent crash late in the run. *)
  if Sim.Rng.bool rng then
    add (Crash { kind = Single (Sim.Rng.int rng n); time = Sim.Rng.uniform rng ~lo:220. ~hi:320. });
  if storage_faults then begin
    let storage =
      match index mod 5 with
      | 0 -> None
      | i -> Some (List.nth Durable.Fault.all (i - 1))
    in
    add (Kill { pid = Sim.Rng.int rng n; time = crash_time (); storage })
  end;
  (* A quarter of cases add membership churn on top of everything else,
     cycling through the three shapes: a brand-new joiner, a graceful
     retirement followed by a later rejoin, and a disk-full brownout.
     Each directive is still independently removable: a rejoin of a pid
     that never retired is just a re-announcement, and a retirement whose
     rejoin is dropped leaves a permanently silent (but certified) node. *)
  if index mod 4 = 3 then begin
    match index / 4 mod 3 with
    | 0 -> add (Join { pid = n; time = Sim.Rng.uniform rng ~lo:60. ~hi:180. })
    | 1 ->
      let pid = Sim.Rng.int rng n in
      let leave = Sim.Rng.uniform rng ~lo:60. ~hi:140. in
      add (Retire { pid; time = leave });
      add (Join { pid; time = leave +. Sim.Rng.uniform rng ~lo:60. ~hi:120. })
    | _ ->
      add
        (Brownout
           {
             pid = Sim.Rng.int rng n;
             time = Sim.Rng.uniform rng ~lo:40. ~hi:120.;
             rounds = 2 + Sim.Rng.int rng 4;
           })
  end;
  { n; k; seed; faults = List.rev !faults }

type summary = {
  runs : int;
  certified : int;
  detected : int;  (* storage damage reported instead of silent wrong state *)
  failures : (case * verdict) list;  (* oldest first *)
  total_retransmissions : int;
  total_net_lost : int;
  total_net_duplicated : int;
  max_risk_seen : int;
}

let campaign ?(breakage = Config.no_breakage) ?(storage_faults = false) ?progress
    ~runs ~seed () =
  let rng = Sim.Rng.create seed in
  let certified = ref 0 in
  let detected = ref 0 in
  let failures = ref [] in
  let retrans = ref 0 and lost = ref 0 and dup = ref 0 and risk = ref 0 in
  for index = 0 to runs - 1 do
    let case = random_case ~storage_faults rng ~index in
    let { verdict; stats } = run_case ~breakage case in
    (match stats with
    | Some s ->
      retrans := !retrans + s.Cluster.retransmissions;
      lost := !lost + s.Cluster.net_faults.Netmodel.lost;
      dup := !dup + s.Cluster.net_faults.Netmodel.duplicated
    | None -> ());
    (match verdict with
    | Certified r ->
      incr certified;
      risk := Stdlib.max !risk r.Oracle.max_risk
    | Detected _ -> incr detected
    | Violated _ | Crashed _ -> failures := (case, verdict) :: !failures);
    match progress with Some f -> f (index + 1) | None -> ()
  done;
  {
    runs;
    certified = !certified;
    detected = !detected;
    failures = List.rev !failures;
    total_retransmissions = !retrans;
    total_net_lost = !lost;
    total_net_duplicated = !dup;
    max_risk_seen = !risk;
  }

(* ------------------------------------------------------------------ *)
(* Greedy shrinker                                                     *)

(* Minimize a failing case: repeatedly try dropping one fault directive;
   keep any drop under which the case still fails.  The result is
   1-minimal — removing any remaining directive makes the run pass. *)
let shrink ?(breakage = Config.no_breakage) case =
  let still_fails faults =
    verdict_failed (run_case ~breakage { case with faults }).verdict
  in
  let rec fixpoint faults =
    let rec try_drop i =
      if i >= List.length faults then None
      else
        let without = List.filteri (fun j _ -> j <> i) faults in
        if still_fails without then Some without else try_drop (i + 1)
    in
    match try_drop 0 with Some faults' -> fixpoint faults' | None -> faults
  in
  { case with faults = fixpoint case.faults }

(* ------------------------------------------------------------------ *)
(* Bridge to the serialized schedule format *)

let expect_of_verdict = function
  | Certified _ -> Schedule.Certified
  | Detected _ -> Schedule.Detected
  | Violated _ -> Schedule.Violated
  | Crashed _ -> Schedule.Crashed

let to_schedule ?(breakage = Config.no_breakage) ?(calls = 60) ~name case verdict =
  {
    Schedule.name;
    expect = expect_of_verdict verdict;
    breakage;
    scenario = Schedule.Chaos { case; calls };
    (* The timed simulator is deterministic given the case's seeds; there
       are no recorded choice points to replay. *)
    choices = [];
  }
