(** Bounded stateless model checking of the recovery protocol.

    {!run} drives the deterministic simulator through {e every} schedule
    of a small configuration — a handful of client messages, crashes and
    flushes, all enabled from time zero — and runs the offline causality
    oracle ({!Oracle.check}, which includes the Theorem-4 K-risk bound) on
    every complete execution.  Exploration is stateless depth-first
    search: a prefix is re-executed from scratch for every sibling branch
    (the cluster has no snapshot/undo), with sleep-set partial-order
    reduction so that interleavings differing only in the order of
    commuting deliveries are certified once, not once per permutation.

    Soundness of the reduction rests on the scenario construction
    ({!build}): every cost and interval is zero, the network override pins
    every transit to zero delay {e before} the timing RNG would draw, and
    the fault plan is benign — so executing one pending event consumes no
    randomness and touches only its target process's state (plus the
    write-only trace).  Two pending events are treated as independent iff
    they touch distinct processes and do not conflict on the outside
    world's request log; crash/restart events carry no process and are
    dependent with everything. *)

type bounds = {
  max_depth : int;  (** schedule-length cap; deeper branches are cut *)
  max_schedules : int;  (** stop after this many complete executions *)
  preemptions : int option;
      (** context bound: maximum number of times a schedule may switch
          away from a process that still has a runnable event.  [None]
          (the default) = unbounded, i.e. truly exhaustive *)
}

val default_bounds : bounds
(** [max_depth = 400], [max_schedules = 200_000], unbounded preemptions. *)

type result = {
  params : Schedule.explore_params;
  schedules : int;  (** complete executions certified by the oracle *)
  truncated : int;  (** branches cut by the depth or preemption bound *)
  sleep_pruned : int;
      (** runnable candidates skipped because the sleep set proved the
          resulting interleaving equivalent to one already explored *)
  sleep_terminals : int;
      (** search nodes where {e every} runnable event was asleep — whole
          subtrees proved redundant *)
  transitions : int;  (** events executed on live branches *)
  replayed_transitions : int;
      (** events re-executed while rebuilding prefixes (the stateless-DFS
          overhead) *)
  max_depth_seen : int;
  max_enabled : int;  (** widest choice point encountered *)
  max_risk : int;  (** largest Theorem-4 risk over all executions *)
  complete : bool;
      (** no branch was cut and the schedule cap was not hit: the state
          space was exhausted up to trace equivalence *)
  violations : (Schedule.t * string list) list;
      (** replayable counter-example schedules, oldest first, each with
          its oracle violations (or the raised exception) *)
}

val ok : result -> bool
(** No violations. *)

val pp_result : result Fmt.t

val build :
  ?breakage:Recovery.Config.breakage ->
  Schedule.explore_params ->
  (App_model.Counter_app.state, App_model.Counter_app.msg) Cluster.t
(** The canonical scenario for a parameter tuple: an untimed cluster
    (zero costs, zero latency, no periodic timers, transit pinned to zero
    delay) with [messages] one-hop [Forward] chains, [crashes] fail-stop
    crashes and [flushes] explicit flushes, all scheduled at time 0 —
    every ordering decision is left to the scheduler.  Both {!run} and
    {!replay} build scenarios only through this function, which is what
    makes a recorded choice sequence replayable byte-for-byte. *)

val run :
  ?breakage:Recovery.Config.breakage ->
  ?bounds:bounds ->
  ?keep_violations:int ->
  Schedule.explore_params ->
  result
(** Explore the configuration's schedule space.  At most
    [keep_violations] (default 16) counter-examples are retained; the
    search keeps running to completion (or its bounds) either way. *)

val replay_explore :
  ?breakage:Recovery.Config.breakage ->
  Schedule.explore_params ->
  choices:int list ->
  Chaos.verdict
(** Rebuild the scenario, apply the recorded choice positions in order,
    drain the remaining events in canonical order, and run the oracle.
    Never returns [Detected] (explore scenarios involve no storage
    damage). *)

val replay : Schedule.t -> Chaos.verdict
(** Replay any schedule: [Explore] via {!replay_explore}, [Chaos] via
    {!Chaos.run_case}, [Figure1] via {!Figure1.run} (prose-fact failures
    are folded into the oracle report's violations). *)

val verdict_matches : Schedule.expect -> Chaos.verdict -> bool
(** Does the replayed verdict fall in the recorded class? *)
