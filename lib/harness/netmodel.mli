(** Network model: timing plus composable adversarial faults.

    Computes per-packet transit times: a base latency, uniform jitter, a
    per-piggyback-entry serialization cost (this is how dependency-vector
    size turns into failure-free overhead), and optional FIFO enforcement
    per channel (Strom & Yemini assume FIFO; the K-optimistic protocol does
    not need it).  An override hook lets scripted scenarios (Figure 1) pin
    exact arrival orders.

    On top of the timing model sits a {!fault_plan}: per-packet loss,
    wire-level duplication, reordering bursts and timed partitions.  The
    fault decisions draw from their own RNG stream, so the {!benign} plan
    is observationally identical to the pure timing model — same arrival
    times for the same seed (a property the test suite checks). *)

type override = src:int -> dst:int -> packet_kind:string -> float option
(** Returns the full transit time for a packet, or [None] to use the model. *)

(** {1 Fault plans} *)

type partition_mode =
  | Drop_packets  (** packets crossing the cut are lost *)
  | Queue_packets  (** packets crossing the cut are delivered after healing *)

type partition = {
  group : int list;  (** one side of the cut; the rest of the cluster is the other *)
  from_ : float;
  until : float;
  mode : partition_mode;
}

type fault_plan = {
  loss : float;  (** per-packet loss probability *)
  duplicate : float;  (** probability a packet is duplicated on the wire *)
  reorder : float;  (** probability a packet is held back (reordering burst) *)
  reorder_spread : float;  (** maximum extra delay for a held-back packet *)
  partitions : partition list;
}

val benign : fault_plan
(** No loss, no duplication, no reordering, no partitions. *)

val plan_is_benign : fault_plan -> bool

type fault_stats = {
  lost : int;
  duplicated : int;
  reordered : int;
  partition_dropped : int;
  partition_queued : int;
}

type t

val create :
  n:int ->
  timing:Recovery.Config.timing ->
  rng:Sim.Rng.t ->
  ?fault_rng:Sim.Rng.t ->
  ?plan:fault_plan ->
  ?override:override ->
  unit ->
  t
(** [rng] drives timing jitter; [fault_rng] (required for a non-benign
    [plan] to be deterministic) drives fault decisions.  Keeping the two
    streams separate is what makes a benign plan bit-identical to the
    timing-only model. *)

val transit :
  t -> now:float -> src:int -> dst:int -> kind:string -> entries:int -> float
(** Absolute arrival time for a packet handed to the network at [now],
    ignoring the fault plan.  Guaranteed [>= now]; with FIFO enabled, also
    no earlier than the last arrival scheduled on the same (src, dst)
    channel. *)

val arrivals :
  t -> now:float -> src:int -> dst:int -> kind:string -> entries:int -> float list
(** Arrival times after applying the fault plan: [[]] if the packet is
    lost (wire loss or a dropping partition), two arrivals if duplicated,
    delayed arrivals under reordering or a queueing partition.  Under
    {!benign} this is always the singleton [[transit ...]]. *)

val packets_sent : t -> (string * int) list
(** Packet counts by kind, for traffic accounting (counts every packet
    handed to the network, including ones the fault plan then drops). *)

val entries_carried : t -> int
(** Total piggybacked dependency entries carried by all packets. *)

val fault_stats : t -> fault_stats
