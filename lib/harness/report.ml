type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* newest first *)
  mutable notes : string list; (* newest first *)
}

let create ~title ~columns = { title; columns; rows = []; notes = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Fmt.str "Report.add_row: %d cells for %d columns in %S" (List.length row)
         (List.length t.columns) t.title);
  t.rows <- row :: t.rows

let note t s = t.notes <- s :: t.notes

let widths t =
  let all = t.columns :: List.rev t.rows in
  List.fold_left
    (fun acc row -> List.map2 (fun w cell -> Stdlib.max w (String.length cell)) acc row)
    (List.map String.length t.columns)
    (List.tl all)

let pad width s = s ^ String.make (width - String.length s) ' '

let pp ppf t =
  let widths = widths t in
  let line row = String.concat "  " (List.map2 pad widths row) in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  Fmt.pf ppf "== %s ==@\n%s@\n%s" t.title (line t.columns) rule;
  List.iter (fun row -> Fmt.pf ppf "@\n%s" (line row)) (List.rev t.rows);
  List.iter (fun n -> Fmt.pf ppf "@\n  note: %s" n) (List.rev t.notes)

let print t = Fmt.pr "%a@\n@\n" pp t

(* Machine-readable dump (the experiments CLI's --json flag).  Hand-rolled
   like bench/main.ml: the only JSON we emit is strings, and escaping the
   JSON control set is enough for the cell/note vocabulary we produce. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let str s = "\"" ^ json_escape s ^ "\"" in
  let arr items = "[" ^ String.concat ", " items ^ "]" in
  let rows =
    List.rev_map (fun row -> arr (List.map str row)) t.rows |> String.concat ",\n      "
  in
  Fmt.str
    "{\n    \"title\": %s,\n    \"columns\": %s,\n    \"rows\": [\n      \
     %s\n    ],\n    \"notes\": %s\n  }"
    (str t.title)
    (arr (List.map str t.columns))
    rows
    (arr (List.rev_map str t.notes))

let json_of_reports reports =
  "[\n  " ^ String.concat ",\n  " (List.map to_json reports) ^ "\n]\n"

let cell_f v = if Float.is_nan v then "-" else Fmt.str "%.2f" v

let cell_i = string_of_int

let cell_pct v = if Float.is_nan v then "-" else Fmt.str "%.1f%%" v

let cell_summary s =
  if Sim.Summary.count s = 0 then "-"
  else Fmt.str "%.2f/%.2f" (Sim.Summary.mean s) (Sim.Summary.percentile s 99.)

(* ------------------------------------------------------------------ *)
(* Flat benchmark JSON ({"name": float, ...}) — BENCH_net.json et al.  *)

let load_bench path =
  match open_in path with
  | exception Sys_error _ -> []
  | ic ->
    let entries = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         match Scanf.sscanf line " %S : %f" (fun k v -> (k, v)) with
         | kv -> entries := kv :: !entries
         | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !entries

let save_bench path entries =
  let entries =
    List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) entries
  in
  let oc = open_out path in
  let field (name, v) = Fmt.str "  \"%s\": %.1f" (json_escape name) v in
  output_string oc
    ("{\n" ^ String.concat ",\n" (List.map field entries) ^ "\n}\n");
  close_out oc

let merge_bench path entries =
  let keep (k, _) = not (List.mem_assoc k entries) in
  save_bench path (List.filter keep (load_bench path) @ entries)
