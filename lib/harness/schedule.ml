module Config = Recovery.Config

type crash_kind =
  | Single of int
  | Group of int list
  | Cascade of int list
  | In_checkpoint of int
  | In_flush of int

type fault =
  | Loss of float
  | Duplication of float
  | Reorder of float * float
  | Partition of { group : int list; from_ : float; until : float; drop : bool }
  | Crash of { kind : crash_kind; time : float }
  | Kill of { pid : int; time : float; storage : Durable.Fault.t option }
  | Join of { pid : int; time : float }
  | Retire of { pid : int; time : float }
  | Brownout of { pid : int; time : float; rounds : int }

type case = { n : int; k : int; seed : int; faults : fault list }

type explore_params = {
  n : int;
  k : int;
  messages : int;
  crashes : int;
  flushes : int;
  seed : int;
}

type scenario =
  | Explore of explore_params
  | Chaos of { case : case; calls : int }
  | Figure1 of [ `Improved | `Strom_yemini ]

type expect = Certified | Detected | Violated | Crashed

type t = {
  name : string;
  expect : expect;
  breakage : Config.breakage;
  scenario : scenario;
  choices : int list;
}

let magic = "koptlog-schedule v1"

(* ------------------------------------------------------------------ *)
(* Encoding *)

(* 17 significant digits round-trip every binary double exactly, so a
   schedule written from a float-valued fault plan replays bit-for-bit. *)
let float_str f = Fmt.str "%.17g" f
let pids_str pids = String.concat "," (List.map string_of_int pids)

let fault_line = function
  | Loss p -> Fmt.str "loss %s" (float_str p)
  | Duplication p -> Fmt.str "duplication %s" (float_str p)
  | Reorder (p, spread) -> Fmt.str "reorder %s %s" (float_str p) (float_str spread)
  | Partition { group; from_; until; drop } ->
    Fmt.str "partition %s pids=%s from=%s until=%s"
      (if drop then "drop" else "queue")
      (pids_str group) (float_str from_) (float_str until)
  | Crash { kind; time } ->
    let body =
      match kind with
      | Single pid -> Fmt.str "single %d" pid
      | Group pids -> Fmt.str "group %s" (pids_str pids)
      | Cascade pids -> Fmt.str "cascade %s" (pids_str pids)
      | In_checkpoint pid -> Fmt.str "in-checkpoint %d" pid
      | In_flush pid -> Fmt.str "in-flush %d" pid
    in
    Fmt.str "crash %s at=%s" body (float_str time)
  | Kill { pid; time; storage } ->
    Fmt.str "kill %d at=%s storage=%s" pid (float_str time)
      (match storage with None -> "none" | Some f -> Durable.Fault.to_string f)
  | Join { pid; time } -> Fmt.str "join %d at=%s" pid (float_str time)
  | Retire { pid; time } -> Fmt.str "retire %d at=%s" pid (float_str time)
  | Brownout { pid; time; rounds } ->
    Fmt.str "brownout %d at=%s rounds=%d" pid (float_str time) rounds

let expect_to_string = function
  | Certified -> "certified"
  | Detected -> "detected"
  | Violated -> "violated"
  | Crashed -> "crashed"

let expect_of_string = function
  | "certified" -> Some Certified
  | "detected" -> Some Detected
  | "violated" -> Some Violated
  | "crashed" -> Some Crashed
  | _ -> None

let pp_expect ppf e = Fmt.string ppf (expect_to_string e)

let breakage_str (b : Config.breakage) =
  let flags =
    (if b.Config.break_orphan_check then [ "orphan-check" ] else [])
    @ (if b.Config.break_dup_suppression then [ "dup-suppression" ] else [])
    @ if b.Config.break_send_gate then [ "send-gate" ] else []
  in
  match flags with [] -> "none" | fs -> String.concat "," fs

let scenario_line = function
  | Explore { n; k; messages; crashes; flushes; seed } ->
    Fmt.str "explore n=%d k=%d messages=%d crashes=%d flushes=%d seed=%d" n k
      messages crashes flushes seed
  | Chaos { case = { n; k; seed; faults = _ }; calls } ->
    Fmt.str "chaos n=%d k=%d seed=%d calls=%d" n k seed calls
  | Figure1 `Improved -> "figure1 improved"
  | Figure1 `Strom_yemini -> "figure1 strom-yemini"

let to_string t =
  let b = Buffer.create 256 in
  let line fmt = Fmt.kstr (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "%s" magic;
  line "name: %s" t.name;
  line "expect: %s" (expect_to_string t.expect);
  line "breakage: %s" (breakage_str t.breakage);
  line "scenario: %s" (scenario_line t.scenario);
  (match t.scenario with
  | Chaos { case; _ } ->
    List.iter (fun f -> line "fault: %s" (fault_line f)) case.faults
  | Explore _ | Figure1 _ -> ());
  line "choices:%s"
    (String.concat "" (List.map (fun c -> " " ^ string_of_int c) t.choices));
  Buffer.contents b

let pp ppf t = Fmt.string ppf (to_string t)

(* ------------------------------------------------------------------ *)
(* Decoding *)

exception Parse of string

let perr fmt = Fmt.kstr (fun s -> raise (Parse s)) fmt

let tokens s =
  String.split_on_char ' ' s |> List.filter (fun tok -> tok <> "")

let int_of s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> perr "bad integer %S" s

let float_of s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> perr "bad float %S" s

let pids_of s = List.map int_of (String.split_on_char ',' s)

(* [key=value] tokens, order-insensitive. *)
let kv_list toks =
  List.map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i ->
        ( String.sub tok 0 i,
          String.sub tok (i + 1) (String.length tok - i - 1) )
      | None -> perr "expected key=value, got %S" tok)
    toks

let field kvs key =
  match List.assoc_opt key kvs with
  | Some v -> v
  | None -> perr "missing field %S" key

let parse_breakage s =
  if s = "none" then Config.no_breakage
  else
    List.fold_left
      (fun (b : Config.breakage) flag ->
        match flag with
        | "orphan-check" -> { b with Config.break_orphan_check = true }
        | "dup-suppression" -> { b with Config.break_dup_suppression = true }
        | "send-gate" -> { b with Config.break_send_gate = true }
        | other -> perr "unknown breakage flag %S" other)
      Config.no_breakage
      (String.split_on_char ',' s)

let parse_fault s =
  match tokens s with
  | [ "loss"; p ] -> Loss (float_of p)
  | [ "duplication"; p ] -> Duplication (float_of p)
  | [ "reorder"; p; spread ] -> Reorder (float_of p, float_of spread)
  | "partition" :: mode :: rest ->
    let drop =
      match mode with
      | "drop" -> true
      | "queue" -> false
      | m -> perr "unknown partition mode %S" m
    in
    let kvs = kv_list rest in
    Partition
      {
        group = pids_of (field kvs "pids");
        from_ = float_of (field kvs "from");
        until = float_of (field kvs "until");
        drop;
      }
  | [ "crash"; kind; arg; at ] ->
    let time =
      match kv_list [ at ] with
      | [ ("at", v) ] -> float_of v
      | _ -> perr "crash needs at=<time>, got %S" at
    in
    let kind =
      match kind with
      | "single" -> Single (int_of arg)
      | "group" -> Group (pids_of arg)
      | "cascade" -> Cascade (pids_of arg)
      | "in-checkpoint" -> In_checkpoint (int_of arg)
      | "in-flush" -> In_flush (int_of arg)
      | k -> perr "unknown crash kind %S" k
    in
    Crash { kind; time }
  | "kill" :: pid :: rest ->
    let kvs = kv_list rest in
    let storage =
      match field kvs "storage" with
      | "none" -> None
      | name -> (
        match Durable.Fault.of_string name with
        | Some f -> Some f
        | None -> perr "unknown storage fault %S" name)
    in
    Kill { pid = int_of pid; time = float_of (field kvs "at"); storage }
  | "join" :: pid :: rest ->
    let kvs = kv_list rest in
    Join { pid = int_of pid; time = float_of (field kvs "at") }
  | "retire" :: pid :: rest ->
    let kvs = kv_list rest in
    Retire { pid = int_of pid; time = float_of (field kvs "at") }
  | "brownout" :: pid :: rest ->
    let kvs = kv_list rest in
    Brownout
      {
        pid = int_of pid;
        time = float_of (field kvs "at");
        rounds = int_of (field kvs "rounds");
      }
  | _ -> perr "unparseable fault line %S" s

(* Scenario as parsed from its header line; chaos faults arrive on
   subsequent lines and are attached at the end. *)
type partial_scenario =
  | P_explore of explore_params
  | P_chaos of { n : int; k : int; seed : int; calls : int }
  | P_figure1 of [ `Improved | `Strom_yemini ]

let parse_scenario s =
  match tokens s with
  | "explore" :: rest ->
    let kvs = kv_list rest in
    let i key = int_of (field kvs key) in
    P_explore
      {
        n = i "n";
        k = i "k";
        messages = i "messages";
        crashes = i "crashes";
        flushes = i "flushes";
        seed = i "seed";
      }
  | "chaos" :: rest ->
    let kvs = kv_list rest in
    let i key = int_of (field kvs key) in
    P_chaos { n = i "n"; k = i "k"; seed = i "seed"; calls = i "calls" }
  | [ "figure1"; "improved" ] -> P_figure1 `Improved
  | [ "figure1"; "strom-yemini" ] -> P_figure1 `Strom_yemini
  | _ -> perr "unparseable scenario %S" s

let of_string text =
  try
    let lines =
      String.split_on_char '\n' text
      |> List.map String.trim
      |> List.filter (fun l -> l <> "" && l.[0] <> '#')
    in
    let header, rest =
      match lines with
      | [] -> perr "empty schedule"
      | h :: rest -> (h, rest)
    in
    if header <> magic then perr "bad magic %S (want %S)" header magic;
    let name = ref None
    and expect = ref None
    and breakage = ref Config.no_breakage
    and scenario = ref None
    and faults = ref []
    and choices = ref [] in
    List.iter
      (fun line ->
        match String.index_opt line ':' with
        | None -> perr "expected 'key: value', got %S" line
        | Some i ->
          let key = String.sub line 0 i in
          let value =
            String.trim (String.sub line (i + 1) (String.length line - i - 1))
          in
          (match key with
          | "name" -> (
            match tokens value with
            | [ tok ] -> name := Some tok
            | _ -> perr "name must be a single token, got %S" value)
          | "expect" -> (
            match expect_of_string value with
            | Some e -> expect := Some e
            | None -> perr "unknown expect %S" value)
          | "breakage" -> breakage := parse_breakage value
          | "scenario" -> scenario := Some (parse_scenario value)
          | "fault" -> faults := parse_fault value :: !faults
          | "choices" -> choices := !choices @ List.map int_of (tokens value)
          | other -> perr "unknown key %S" other))
      rest;
    let get what = function
      | Some v -> v
      | None -> perr "missing %s line" what
    in
    let scenario =
      match get "scenario" !scenario with
      | P_explore p ->
        if !faults <> [] then perr "explore scenario cannot carry fault lines";
        Explore p
      | P_figure1 f ->
        if !faults <> [] then perr "figure1 scenario cannot carry fault lines";
        Figure1 f
      | P_chaos { n; k; seed; calls } ->
        Chaos { case = { n; k; seed; faults = List.rev !faults }; calls }
    in
    Ok
      {
        name = get "name" !name;
        expect = get "expect" !expect;
        breakage = !breakage;
        scenario;
        choices = !choices;
      }
  with Parse msg -> Error msg

let save t ~file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load ~file =
  match In_channel.with_open_text file In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg
