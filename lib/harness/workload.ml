let arrivals ~rng ~count ~start ~rate k =
  let time = ref start in
  for i = 0 to count - 1 do
    time := !time +. Sim.Rng.exponential rng ~mean:(1. /. rate);
    k i !time
  done

let chatter cluster ~rng ~tokens ~hops ~start ~rate =
  let n = Cluster.n cluster in
  arrivals ~rng ~count:tokens ~start ~rate (fun i time ->
      Cluster.inject_at cluster ~time ~dst:(i mod n)
        (App_model.Chatter_app.Token { hops_left = hops; salt = i }))

let pipeline cluster ~jobs ~start ~rate =
  (* Deterministic arrival spacing: the pipeline is the fixed-work baseline
     workload, so keep even its injection times configuration-independent. *)
  let period = 1. /. rate in
  for i = 0 to jobs - 1 do
    Cluster.inject_at cluster
      ~time:(start +. (period *. float_of_int i))
      ~dst:0
      (App_model.Pipeline_app.Job { id = i; stage = 0; payload = i })
  done

let telecom cluster ~rng ~calls ~hops ~start ~rate =
  let n = Cluster.n cluster in
  arrivals ~rng ~count:calls ~start ~rate (fun i time ->
      let ingress = Sim.Rng.int rng n in
      let route = App_model.Telecom_app.route ~n ~ingress ~call_id:i ~hops in
      Cluster.inject_at cluster ~time ~dst:ingress
        (App_model.Telecom_app.Setup { call_id = i; route }))

let kvstore cluster ~rng ~ops ~keys ~start ~rate =
  let n = Cluster.n cluster in
  arrivals ~rng ~count:ops ~start ~rate (fun i time ->
      let key = Fmt.str "key-%d" (Sim.Rng.int rng keys) in
      let dst = Sim.Rng.int rng n in
      let msg =
        if Sim.Rng.int rng 4 < 3 then App_model.Kvstore_app.Put { key; value = i }
        else App_model.Kvstore_app.Get key
      in
      Cluster.inject_at cluster ~time ~dst msg)

type kv_op =
  | Kv_get of int
  | Kv_put of int * int
  | Kv_multi_put of (int * int) list

type timed_kv_op = { at : float; kv : kv_op }

(* Zipfian sampling by inverse CDF over the rank weights 1/(r+1)^theta.
   The table costs O(keys) once; each draw is a binary search. *)
let zipf_table ~keys ~theta =
  let cdf = Array.make keys 0. in
  let total = ref 0. in
  for r = 0 to keys - 1 do
    total := !total +. (1. /. Float.pow (float_of_int (r + 1)) theta);
    cdf.(r) <- !total
  done;
  (cdf, !total)

let zipf_draw rng (cdf, total) =
  let u = Sim.Rng.float rng total in
  let n = Array.length cdf in
  let rec search lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if cdf.(mid) < u then search (mid + 1) hi else search lo mid
    end
  in
  search 0 n

let open_loop_kv ~rng ~ops ~keys ~rate ?(theta = 0.99) ?(gets = 0.25)
    ?(multi = 0.1) ?(multi_width = 3) () =
  if keys < 2 then invalid_arg "open_loop_kv: needs at least 2 keys";
  if multi_width < 2 then invalid_arg "open_loop_kv: multi_width must be >= 2";
  let table = zipf_table ~keys ~theta in
  let time = ref 0. in
  List.init ops (fun i ->
      time := !time +. Sim.Rng.exponential rng ~mean:(1. /. rate);
      let draw () = zipf_draw rng table in
      let roll = Sim.Rng.float rng 1. in
      let kv =
        if roll < gets then Kv_get (draw ())
        else if roll < gets +. multi then begin
          (* Distinct ranks, keeping the Zipfian skew: popular keys appear
             in many batches, but never twice in one. *)
          let rec grab picked budget =
            if List.length picked >= multi_width || budget = 0 then picked
            else begin
              let r = draw () in
              grab (if List.mem r picked then picked else r :: picked) (budget - 1)
            end
          in
          let picked = grab [] (4 * multi_width) in
          let picked =
            match picked with
            | [ only ] -> [ (only + 1 + Sim.Rng.int rng (keys - 1)) mod keys; only ]
            | picked -> picked
          in
          Kv_multi_put (List.mapi (fun j r -> (r, (i * 131) + j)) (List.rev picked))
        end
        else Kv_put (draw (), i * 37)
      in
      { at = !time; kv })

let random_failures cluster ~rng ~count ~window:(lo, hi) =
  let n = Cluster.n cluster in
  let slice = (hi -. lo) /. float_of_int (Stdlib.max 1 count) in
  for i = 0 to count - 1 do
    let time = lo +. (slice *. float_of_int i) +. Sim.Rng.float rng slice in
    let pid = Sim.Rng.int rng n in
    Cluster.crash_at cluster ~time ~pid
  done
