module Node = Recovery.Node
module Wire = Recovery.Wire
module Config = Recovery.Config

type timer_kind = Flush_timer | Checkpoint_timer | Notice_timer | Retransmit_timer

type 'msg event =
  | Packet of { src : int; dst : int; packet : 'msg Wire.packet }
  | Timer of { pid : int; kind : timer_kind; periodic : bool }
  | Inject of { dst : int; payload : 'msg; seq : int; retry : bool }
  | Perform of { pid : int; effects : 'msg App_model.App_intf.effect list }
  | Crash of int
  | Restart of int
  | Arm_fsync_failure of int
  | Kill of { pid : int; fault : Durable.Fault.t option }
  | Respawn of int
  | Join_node of int
  | Retire_node of int
  | Arm_disk_full of { pid : int; rounds : int }

type ('state, 'msg) t = {
  cfg : Config.t;
  app : ('state, 'msg) App_model.App_intf.t;
  store_root : string option;
  storage_rng : Sim.Rng.t option;
  sched : Sim.Scheduler.t option;
  mutable nodes : ('state, 'msg) Node.t array; (* slots replaced on kill *)
  queue : 'msg event Sim.Event_queue.t;
  net : Netmodel.t;
  trace_ : Recovery.Trace.t;
  horizon : float;
  mutable now : float;
  auto_timers_ : bool;
  mutable next_free : float array;
  mutable down : bool array;
  mutable retired_pids : int list; (* pids gone for good: packets to them drop *)
  mutable held : (int * int * 'msg Wire.packet) list;
      (* packets addressed to down nodes: (src, dst, packet), oldest last *)
  mutable inject_seq : int;
  mutable client_log : (int * int * 'msg) list; (* seq, dst, payload *)
  mutable busy_time : float;
  mutable dead_metrics : Recovery.Metrics.t list;
      (* metrics of node handles discarded by kills, so [stats] stays whole *)
  mutable storage_reports_ :
    (int * float * string * Storage.Stable_store.open_report) list;
      (* (pid, respawn time, injected-damage description, report), oldest last *)
  mutable fault_notes : (int * string) list; (* pid, damage description *)
}

let n t = Array.length t.nodes

let now t = t.now

let node t pid = t.nodes.(pid)

let nodes t = t.nodes

let trace t = t.trace_

let config t = t.cfg

let period t = function
  | Flush_timer -> t.cfg.Config.timing.flush_interval
  | Checkpoint_timer -> t.cfg.Config.timing.checkpoint_interval
  | Notice_timer -> t.cfg.Config.timing.notice_interval
  | Retransmit_timer -> t.cfg.Config.timing.retransmit_interval

let schedule t ~time ev = Sim.Event_queue.schedule t.queue ~time ev

let entries_of_packet = function
  | Wire.App m -> List.length m.Wire.dep
  | Wire.Notice notice -> Wire.notice_entry_count notice
  | Wire.Dep_query { intervals; _ } -> List.length intervals
  | Wire.Dep_reply { infos; _ } -> List.length infos
  | Wire.Join _ | Wire.Retire _ -> 1 (* one frontier entry each *)
  | Wire.Ann _ | Wire.Ack _ | Wire.Flush_request _ -> 0

let send_packet t ~src ~dst packet =
  (* The fault plan may eat the packet ([]) or duplicate it (two arrivals). *)
  List.iter
    (fun arrival -> schedule t ~time:arrival (Packet { src; dst; packet }))
    (Netmodel.arrivals t.net ~now:t.now ~src ~dst ~kind:(Wire.packet_kind packet)
       ~entries:(entries_of_packet packet))

let dispatch_actions t ~src actions =
  List.iter
    (function
      | Node.Unicast { dst; packet } -> send_packet t ~src ~dst packet
      | Node.Broadcast packet ->
        for dst = 0 to Array.length t.nodes - 1 do
          if dst <> src then send_packet t ~src ~dst packet
        done)
    actions

let cost_time t (c : Node.cost) =
  let tm = t.cfg.Config.timing in
  (float_of_int c.deliveries *. tm.t_proc)
  +. (float_of_int c.replays *. tm.t_replay)
  +. (float_of_int c.sync_writes *. tm.t_sync_write)
  +. (float_of_int c.checkpoints *. tm.t_checkpoint)

let consume t ~pid (actions, cost) =
  let busy = cost_time t cost in
  t.busy_time <- t.busy_time +. busy;
  t.next_free.(pid) <- Stdlib.max t.next_free.(pid) t.now +. busy;
  dispatch_actions t ~src:pid actions

(* The outside world reacts to failure announcements like any good client
   library: it retries the requests it sent to the failed process.  The
   node's duplicate suppression keeps retries idempotent; requests whose
   delivery was lost with the volatile log are thereby recovered (footnote 3
   of the paper leaves in-transit/lost messages to the senders, and the
   outside world is a sender too). *)
let client_retransmit t ~pid =
  List.iter
    (fun (seq, dst, payload) ->
      if dst = pid then
        schedule t
          ~time:(t.now +. t.cfg.Config.timing.net_latency)
          (Inject { dst; payload; seq; retry = true }))
    (List.rev t.client_log)

let rearm t ~pid kind =
  match period t kind with
  | Some p -> schedule t ~time:(t.now +. p) (Timer { pid; kind; periodic = true })
  | None -> ()

let node_dir_of t pid =
  Option.map (fun root -> Filename.concat root (Printf.sprintf "p%d" pid)) t.store_root

(* Arm the periodic timers of one node, staggering first firings so the
   cluster does not flush in lockstep.  Used at create for the initial
   membership and again for every joiner. *)
let arm_timers t ~pid =
  if t.auto_timers_ then begin
    let n = Array.length t.nodes in
    List.iter
      (fun kind ->
        match period t kind with
        | None -> ()
        | Some p ->
          let phase = p *. (float_of_int (pid + 1) /. float_of_int (n + 1)) in
          schedule t ~time:(t.now +. phase) (Timer { pid; kind; periodic = true }))
      [ Flush_timer; Checkpoint_timer; Notice_timer; Retransmit_timer ]
  end

let fire_timer t ~pid kind =
  let node = t.nodes.(pid) in
  if Node.is_up node then begin
    match kind with
    | Flush_timer -> consume t ~pid (Node.flush node ~now:t.now)
    | Checkpoint_timer -> consume t ~pid (Node.checkpoint node ~now:t.now)
    | Notice_timer -> consume t ~pid (Node.broadcast_notice node ~now:t.now)
    | Retransmit_timer -> consume t ~pid (Node.retransmit_tick node ~now:t.now)
  end

let release_held t ~pid =
  let mine, others = List.partition (fun (_, dst, _) -> dst = pid) t.held in
  t.held <- others;
  List.iteri
    (fun i (src, dst, packet) ->
      schedule t ~time:(t.now +. (0.001 *. float_of_int (i + 1))) (Packet { src; dst; packet }))
    (List.rev mine)

let handle_event t = function
  | Packet { src; dst; packet } ->
    if List.mem dst t.retired_pids then () (* gone for good: the wire eats it *)
    else if t.down.(dst) then t.held <- (src, dst, packet) :: t.held
    else begin
      let ann_from =
        match packet with
        | Wire.Ann ann when ann.Wire.failure -> Some ann.Wire.from_
        | Wire.Ann _ | Wire.App _ | Wire.Notice _ | Wire.Ack _ | Wire.Flush_request _
        | Wire.Dep_query _ | Wire.Dep_reply _ | Wire.Join _ | Wire.Retire _ ->
          None
      in
      consume t ~pid:dst (Node.handle_packet t.nodes.(dst) ~now:t.now packet);
      (* The outside world hears failure announcements too (dst-local
         observation is enough: every node receives the broadcast, and the
         retransmission is idempotent, so trigger it once — when the lowest
         live pid processes it). *)
      match ann_from with
      | Some failed when dst = (if failed = 0 then 1 else 0) -> client_retransmit t ~pid:failed
      | Some _ | None -> ()
    end
  | Timer { pid; kind; periodic } ->
    fire_timer t ~pid kind;
    if periodic then rearm t ~pid kind
  | Inject { dst; payload; seq; retry } ->
    if t.down.(dst) then
      (* client retries later, like a TCP connect to a rebooting host *)
      schedule t
        ~time:(t.now +. t.cfg.Config.timing.restart_delay)
        (Inject { dst; payload; seq; retry })
    else begin
      if not retry then t.client_log <- (seq, dst, payload) :: t.client_log;
      consume t ~pid:dst (Node.inject t.nodes.(dst) ~now:t.now ~seq payload)
    end
  | Perform { pid; effects } ->
    if not t.down.(pid) then
      consume t ~pid (Node.perform t.nodes.(pid) ~now:t.now effects)
  | Crash pid ->
    if not t.down.(pid) then begin
      t.down.(pid) <- true;
      Node.crash t.nodes.(pid) ~now:t.now;
      t.next_free.(pid) <- t.now;
      schedule t ~time:(t.now +. t.cfg.Config.timing.restart_delay) (Restart pid)
    end
  | Restart pid ->
    t.down.(pid) <- false;
    consume t ~pid (Node.restart t.nodes.(pid) ~now:t.now);
    release_held t ~pid
  | Arm_fsync_failure pid ->
    if not t.down.(pid) then Node.arm_storage_fsync_failure t.nodes.(pid)
  | Kill { pid; fault } ->
    if not t.down.(pid) then begin
      t.down.(pid) <- true;
      t.dead_metrics <- Node.metrics t.nodes.(pid) :: t.dead_metrics;
      Node.halt t.nodes.(pid) ~now:t.now;
      (* Post-mortem file damage happens between death and respawn. *)
      (match (fault, t.store_root, t.storage_rng) with
      | Some f, Some root, Some rng ->
        let dir = Filename.concat root (Printf.sprintf "p%d" pid) in
        let note = Durable.Fault.apply ~dir ~rand:(Sim.Rng.int rng) f in
        t.fault_notes <- (pid, note) :: t.fault_notes
      | _ -> ());
      t.next_free.(pid) <- t.now;
      schedule t ~time:(t.now +. t.cfg.Config.timing.restart_delay) (Respawn pid)
    end
  | Respawn pid ->
    (* A fresh process over the same store directory: everything it knows,
       it knows from open-time recovery of the files the kill left behind. *)
    let dir =
      match t.store_root with
      | Some root -> Filename.concat root (Printf.sprintf "p%d" pid)
      | None -> invalid_arg "Cluster: Respawn without a store root"
    in
    let fresh =
      Node.create ~config:t.cfg ~pid ~app:t.app ~store_dir:dir ?obs:None
        ~trace:t.trace_
    in
    t.nodes.(pid) <- fresh;
    (match Node.storage_report fresh with
    | Some report ->
      let note =
        match List.assoc_opt pid t.fault_notes with
        | Some n ->
          t.fault_notes <- List.remove_assoc pid t.fault_notes;
          n
        | None -> "none"
      in
      t.storage_reports_ <- t.storage_reports_ @ [ (pid, t.now, note, report) ]
    | None -> ());
    t.down.(pid) <- false;
    consume t ~pid (Node.restart fresh ~now:t.now);
    release_held t ~pid
  | Join_node pid ->
    if pid = Array.length t.nodes then begin
      (* A brand-new process.  Its own config already counts itself
         (n = pid + 1): by Corollary 3 it starts with no dependency entries,
         so a vector covering [0..pid] is trivially conservative.  The
         incumbents learn of it from the Join broadcast and widen their
         vectors then — membership growth is protocol traffic, not an
         out-of-band reconfiguration. *)
      let jcfg = Config.validate_exn { t.cfg with Config.n = pid + 1 } in
      let fresh =
        Node.create ~config:jcfg ~pid ~app:t.app ?store_dir:(node_dir_of t pid)
          ?obs:None ~trace:t.trace_
      in
      t.nodes <- Array.append t.nodes [| fresh |];
      t.next_free <- Array.append t.next_free [| t.now |];
      t.down <- Array.append t.down [| false |];
      arm_timers t ~pid;
      consume t ~pid (Node.announce_join fresh ~now:t.now)
    end
    else begin
      (* Rejoin of a known pid (typically after retirement): same identity,
         same store, so it resumes where it left off and re-announces. *)
      t.retired_pids <- List.filter (fun p -> p <> pid) t.retired_pids;
      if t.down.(pid) then begin
        t.down.(pid) <- false;
        consume t ~pid (Node.restart t.nodes.(pid) ~now:t.now);
        release_held t ~pid
      end;
      consume t ~pid (Node.announce_join t.nodes.(pid) ~now:t.now)
    end
  | Retire_node pid ->
    if (not t.down.(pid)) && not (List.mem pid t.retired_pids) then begin
      (* Graceful leave: flush everything, tell the survivors the final
         frontier (so they can treat this pid's entries as stable forever),
         then fall silent.  No restart is scheduled — the pid is gone until
         an explicit rejoin. *)
      consume t ~pid (Node.retire t.nodes.(pid) ~now:t.now);
      Node.crash t.nodes.(pid) ~now:t.now;
      t.down.(pid) <- true;
      t.retired_pids <- pid :: t.retired_pids;
      t.next_free.(pid) <- t.now
    end
  | Arm_disk_full { pid; rounds } ->
    if not t.down.(pid) then Node.arm_storage_disk_full t.nodes.(pid) ~rounds

let busy_gate t ev_time pid =
  (* A node processes one event at a time; arrivals during busy periods are
     deferred to the moment it frees up. *)
  if t.next_free.(pid) > ev_time +. 1e-12 then Some t.next_free.(pid) else None

let event_pid = function
  | Packet { dst; _ } -> Some dst
  | Timer { pid; _ } -> Some pid
  | Inject { dst; _ } -> Some dst
  | Perform { pid; _ } -> Some pid
  | Crash _ | Restart _ | Arm_fsync_failure _ | Kill _ | Respawn _ | Join_node _
  | Retire_node _ | Arm_disk_full _ ->
    None (* crashes/kills/membership changes preempt; restarts are external *)

let exec_cell t (time, ev) =
  t.now <- Stdlib.max t.now time;
  match event_pid ev with
  | Some pid when not (t.down.(pid)) -> (
    match busy_gate t time pid with
    | Some free_at -> schedule t ~time:free_at ev
    | None -> handle_event t ev)
  | Some _ | None -> handle_event t ev

let step t =
  let cell =
    match t.sched with
    | None -> Sim.Event_queue.next t.queue
    | Some sched ->
      let pending = Sim.Event_queue.length t.queue in
      if pending = 0 then None
      else Sim.Event_queue.remove_nth t.queue (Sim.Scheduler.pick sched ~n_enabled:pending)
  in
  match cell with
  | None -> false
  | Some (time, ev) ->
    if time > t.horizon then false
    else begin
      exec_cell t (time, ev);
      true
    end

(* --- Explicit scheduling choice points (model checker interface) ------ *)

type enabled = {
  key : int;  (* Event_queue sequence number: stable identity *)
  at : float;
  pid : int option;
  blocked : bool;
  label : string;
  log_write : bool;
  log_read : bool;
}

let describe_event = function
  | Packet { src; dst; packet } ->
    Fmt.str "packet %s P%d->P%d" (Wire.packet_kind packet) src dst
  | Timer { pid; kind; _ } ->
    Fmt.str "timer %s P%d"
      (match kind with
      | Flush_timer -> "flush"
      | Checkpoint_timer -> "checkpoint"
      | Notice_timer -> "notice"
      | Retransmit_timer -> "retransmit")
      pid
  | Inject { dst; seq; retry; _ } ->
    Fmt.str "inject #%d->P%d%s" seq dst (if retry then " (retry)" else "")
  | Perform { pid; _ } -> Fmt.str "perform P%d" pid
  | Crash pid -> Fmt.str "crash P%d" pid
  | Restart pid -> Fmt.str "restart P%d" pid
  | Arm_fsync_failure pid -> Fmt.str "arm-fsync-failure P%d" pid
  | Kill { pid; _ } -> Fmt.str "kill P%d" pid
  | Respawn pid -> Fmt.str "respawn P%d" pid
  | Join_node pid -> Fmt.str "join P%d" pid
  | Retire_node pid -> Fmt.str "retire P%d" pid
  | Arm_disk_full { pid; rounds } -> Fmt.str "arm-disk-full P%d (%d)" pid rounds

let enabled_events t =
  List.map
    (fun (key, at, ev) ->
      let pid = event_pid ev in
      {
        key;
        at;
        pid;
        blocked = (match pid with Some p -> t.down.(p) | None -> false);
        label = describe_event ev;
        log_write = (match ev with Inject { retry = false; _ } -> true | _ -> false);
        log_read =
          (match ev with
          | Packet { packet = Wire.Ann a; _ } -> a.Wire.failure
          | _ -> false);
      })
    (Sim.Event_queue.pending t.queue)

let step_nth t i =
  match Sim.Event_queue.remove_nth t.queue i with
  | None -> false
  | Some cell ->
    exec_cell t cell;
    true

let run t = while step t do () done

let run_until t deadline =
  let continue = ref true in
  while
    !continue
    &&
    match Sim.Event_queue.peek_time t.queue with
    | Some tm when tm < deadline -> true
    | Some _ | None -> false
  do
    continue := step t
  done;
  t.now <- Stdlib.max t.now deadline

let create ~config ~app ?(seed = 42) ?(horizon = 10_000.) ?net_override
    ?(fault_plan = Netmodel.benign) ?(auto_timers = true) ?store_root ?scheduler () =
  let config = Config.validate_exn config in
  let n = config.Config.n in
  let rng = Sim.Rng.create seed in
  let trace_ = Recovery.Trace.create () in
  let node_dir pid =
    Option.map (fun root -> Filename.concat root (Printf.sprintf "p%d" pid)) store_root
  in
  let nodes =
    Array.init n (fun pid ->
        Node.create ~config ~pid ~app ?store_dir:(node_dir pid) ?obs:None
          ~trace:trace_)
  in
  (* Bind the splits in sequence: the first must be the timing stream (the
     same child the pre-fault-plan model derived, so benign runs reproduce
     historical tables bit-for-bit); the fault stream is a further split.
     The storage-fault stream is split only when a store root exists, so
     in-memory runs keep their historical streams untouched. *)
  let net_rng = Sim.Rng.split rng in
  let fault_rng = Sim.Rng.split rng in
  let storage_rng =
    match store_root with None -> None | Some _ -> Some (Sim.Rng.split rng)
  in
  let t =
    {
      cfg = config;
      app;
      store_root;
      storage_rng;
      sched = scheduler;
      nodes;
      queue = Sim.Event_queue.create ();
      net =
        Netmodel.create ~n ~timing:config.Config.timing ~rng:net_rng ~fault_rng
          ~plan:fault_plan ?override:net_override ();
      trace_;
      horizon;
      now = 0.;
      auto_timers_ = auto_timers;
      next_free = Array.make n 0.;
      down = Array.make n false;
      retired_pids = [];
      held = [];
      inject_seq = 0;
      client_log = [];
      busy_time = 0.;
      dead_metrics = [];
      storage_reports_ = [];
      fault_notes = [];
    }
  in
  Array.iteri (fun pid _ -> arm_timers t ~pid) nodes;
  t

let inject_at t ~time ~dst payload =
  let seq = t.inject_seq + 1 in
  t.inject_seq <- seq;
  schedule t ~time (Inject { dst; payload; seq; retry = false })

let crash_at t ~time ~pid = schedule t ~time (Crash pid)

(* --- Process death with durable storage ------------------------------ *)

let kill_at t ~time ~pid ?storage_fault () =
  if t.store_root = None then
    invalid_arg "Cluster.kill_at: cluster was created without ~store_root";
  match storage_fault with
  | Some Durable.Fault.Failed_fsync ->
    (* A lying fsync must be armed while the process is alive: the disk
       starts dropping log writes a couple of flush periods before the
       death, so stability the node announced in between is false. *)
    let lead =
      match t.cfg.Config.timing.flush_interval with
      | Some p -> 2.5 *. p
      | None -> 50.
    in
    schedule t ~time:(Stdlib.max 0. (time -. lead)) (Arm_fsync_failure pid);
    (* [Fault.apply] is a no-op for [Failed_fsync]; passing it through the
       kill records the injected damage in the respawn's report. *)
    schedule t ~time (Kill { pid; fault = Some Durable.Fault.Failed_fsync })
  | fault -> schedule t ~time (Kill { pid; fault })

let storage_reports t = t.storage_reports_

(* --- Correlated failure injection ----------------------------------- *)

(* Simultaneous multi-node crash: every pid goes down at the same instant,
   so no survivor hears a failure announcement before losing its peers. *)
let crash_group_at t ~time ~pids = List.iter (fun pid -> crash_at t ~time ~pid) pids

(* Cascading crashes: each subsequent pid fails [gap] after the previous
   one.  With [gap < restart_delay] (the default: half of it), pid [i+1]
   dies while pid [i] is still down or replaying — the recovery of one
   failure overlaps the next. *)
let cascade_crash_at t ~time ?gap ~pids () =
  let gap =
    match gap with
    | Some g -> g
    | None -> 0.5 *. t.cfg.Config.timing.restart_delay
  in
  List.iteri
    (fun i pid -> crash_at t ~time:(time +. (gap *. float_of_int i)) ~pid)
    pids


(* --- Membership churn ------------------------------------------------ *)

let join_at t ~time ~pid = schedule t ~time (Join_node pid)

let retire_at t ~time ~pid = schedule t ~time (Retire_node pid)

(* Restart every listed node one at a time, each crash spaced so the
   previous victim has fully recovered before the next goes down (the
   classic rolling upgrade).  [gap] defaults to twice the restart delay. *)
let rolling_restart_at t ~time ?gap ~pids () =
  let gap =
    match gap with
    | Some g -> g
    | None -> 2.0 *. t.cfg.Config.timing.restart_delay
  in
  List.iteri
    (fun i pid -> crash_at t ~time:(time +. (gap *. float_of_int i)) ~pid)
    pids

let arm_disk_full_at t ~time ~pid ~rounds =
  schedule t ~time (Arm_disk_full { pid; rounds })

let retired t = t.retired_pids

let perform_at t ~time ~pid effects = schedule t ~time (Perform { pid; effects })

let flush_at t ~time ~pid =
  schedule t ~time (Timer { pid; kind = Flush_timer; periodic = false })

let checkpoint_at t ~time ~pid =
  schedule t ~time (Timer { pid; kind = Checkpoint_timer; periodic = false })

let notice_at t ~time ~pid =
  schedule t ~time (Timer { pid; kind = Notice_timer; periodic = false })

(* Crash landing inside the checkpoint's busy window: the checkpoint is
   forced at [time] and the crash hits while the node is still paying for
   it (checkpoints cost [t_checkpoint] of busy time). *)
let crash_during_checkpoint_at t ~time ~pid =
  checkpoint_at t ~time ~pid;
  crash_at t ~time:(time +. (0.5 *. t.cfg.Config.timing.t_checkpoint)) ~pid

(* Likewise for an asynchronous flush. *)
let crash_during_flush_at t ~time ~pid =
  flush_at t ~time ~pid;
  crash_at t ~time:(time +. (0.5 *. t.cfg.Config.timing.t_sync_write)) ~pid

type stats = {
  makespan : float;
  deliveries : int;
  releases : int;
  sends : int;
  sync_writes : int;
  flushes : int;
  blocked_time : Sim.Summary.t;
  wire_vector_size : Sim.Summary.t;
  release_dep_entries : Sim.Summary.t;
  delivery_delay : Sim.Summary.t;
  output_latency : Sim.Summary.t;
  outputs_committed : int;
  orphans_discarded : int;
  duplicates_dropped : int;
  induced_rollbacks : int;
  restarts : int;
  undone_intervals : int;
  lost_intervals : int;
  replayed : int;
  retransmissions : int;
  announcements : int;
  notices : int;
  packets : (string * int) list;
  piggyback_entries : int;
  net_faults : Netmodel.fault_stats;
  busy_time : float;
}

let stats t =
  let ms = t.dead_metrics @ Array.to_list (Array.map Node.metrics t.nodes) in
  let sum f = List.fold_left (fun acc m -> acc + f m) 0 ms in
  let merge f =
    List.fold_left (fun acc m -> Sim.Summary.merge acc (f m)) (Sim.Summary.create ()) ms
  in
  {
    makespan = t.now;
    deliveries = sum (fun m -> m.Recovery.Metrics.deliveries);
    releases = sum (fun m -> m.Recovery.Metrics.releases);
    sends = sum (fun m -> m.Recovery.Metrics.sends);
    sync_writes =
      Array.fold_left (fun acc nd -> acc + Node.sync_writes nd) 0 t.nodes;
    flushes = Array.fold_left (fun acc nd -> acc + Node.flushes nd) 0 t.nodes;
    blocked_time = merge (fun m -> m.Recovery.Metrics.blocked_time);
    wire_vector_size = merge (fun m -> m.Recovery.Metrics.wire_vector_size);
    release_dep_entries = merge (fun m -> m.Recovery.Metrics.release_dep_entries);
    delivery_delay = merge (fun m -> m.Recovery.Metrics.delivery_delay);
    output_latency = merge (fun m -> m.Recovery.Metrics.output_latency);
    outputs_committed = sum (fun m -> m.Recovery.Metrics.outputs_committed);
    orphans_discarded = sum (fun m -> m.Recovery.Metrics.orphans_discarded);
    duplicates_dropped = sum (fun m -> m.Recovery.Metrics.duplicates_dropped);
    induced_rollbacks = sum (fun m -> m.Recovery.Metrics.induced_rollbacks);
    restarts = sum (fun m -> m.Recovery.Metrics.restarts);
    undone_intervals = sum (fun m -> m.Recovery.Metrics.undone_intervals);
    lost_intervals = sum (fun m -> m.Recovery.Metrics.lost_intervals);
    replayed = sum (fun m -> m.Recovery.Metrics.replayed);
    retransmissions = sum (fun m -> m.Recovery.Metrics.retransmissions);
    announcements = sum (fun m -> m.Recovery.Metrics.announcements_sent);
    notices = sum (fun m -> m.Recovery.Metrics.notices);
    packets = Netmodel.packets_sent t.net;
    piggyback_entries = Netmodel.entries_carried t.net;
    net_faults = Netmodel.fault_stats t.net;
    busy_time = t.busy_time;
  }
