(** Serialized, replayable schedules.

    A schedule pins one execution of the harness: which scenario to build
    (a model-checker configuration, a chaos case, or the Figure 1 worked
    example), which protocol safeguards to deliberately break, the exact
    sequence of scheduling choices taken, and the verdict the execution is
    expected to reproduce.  The model checker ({!Explore}) writes a
    schedule for every counter-example it finds; the chaos shrinker saves
    minimized failing cases in the same format; the corpus under
    [test/corpus/] replays them on every test run.

    The on-disk format is line-based text (see PROTOCOL.md): a magic
    header, [key: value] lines, [fault:] lines for chaos cases, and a
    [choices:] line holding the recorded scheduling decisions.  Floats are
    printed with 17 significant digits so every schedule replays
    byte-for-byte; {!of_string} inverts {!to_string} exactly. *)

(** {1 Fault directives}

    These are the chaos campaign's fault types; {!Chaos} re-exports them,
    so [Chaos.fault] and [Schedule.fault] are interchangeable.  They live
    here so the codec does not depend on the campaign runner. *)

type crash_kind =
  | Single of int
  | Group of int list  (** simultaneous multi-node crash *)
  | Cascade of int list
      (** staggered crashes, each while the previous victim is down *)
  | In_checkpoint of int  (** crash mid-checkpoint *)
  | In_flush of int  (** crash mid-flush *)

(** One removable unit of adversity (the chaos shrinker drops directives
    one at a time). *)
type fault =
  | Loss of float  (** per-packet loss probability *)
  | Duplication of float
  | Reorder of float * float  (** probability, extra-delay spread *)
  | Partition of { group : int list; from_ : float; until : float; drop : bool }
  | Crash of { kind : crash_kind; time : float }
  | Kill of { pid : int; time : float; storage : Durable.Fault.t option }
      (** process death over a durable store, optionally followed by
          post-mortem file damage *)
  | Join of { pid : int; time : float }
      (** membership churn: a brand-new process joins ([pid = n]) or a
          retired/crashed one rejoins under its old identity ([pid < n]) *)
  | Retire of { pid : int; time : float }
      (** graceful leave: force-flush, broadcast the final frontier, fall
          permanently silent *)
  | Brownout of { pid : int; time : float; rounds : int }
      (** disk-full window: the node's next [rounds] ordinary flushes
          refuse; degradation must stay graceful (sends gated, no data
          loss) *)

type case = { n : int; k : int; seed : int; faults : fault list }
(** One chaos campaign case. *)

(** {1 Scenarios} *)

type explore_params = {
  n : int;  (** processes *)
  k : int;  (** degree of optimism *)
  messages : int;  (** client injections ([Forward] one-hop chains) *)
  crashes : int;  (** fail-stop crashes, all enabled from time 0 *)
  flushes : int;  (** explicit flush events (stability progress) *)
  seed : int;
}
(** A bounded model-checking configuration.  The scenario it denotes is a
    pure function of these six integers (see {!Explore.build}), so the
    params plus a choice sequence pin one execution exactly. *)

type scenario =
  | Explore of explore_params
      (** untimed cluster under explicit scheduling; [choices] are
          positions into {!Cluster.enabled_events} *)
  | Chaos of { case : case; calls : int }
      (** a chaos case replayed through {!Chaos.run_case}; the timed
          simulator's earliest-time order is already deterministic given
          the seeds, so [choices] is empty *)
  | Figure1 of [ `Improved | `Strom_yemini ]
      (** the paper's worked example, via {!Figure1.run} *)

(** The verdict class a replay must reproduce ({!Chaos.verdict} stripped
    of its payloads). *)
type expect = Certified | Detected | Violated | Crashed

type t = {
  name : string;  (** identifier; single token, no spaces *)
  expect : expect;
  breakage : Recovery.Config.breakage;
      (** deliberately disabled safeguards the scenario runs under *)
  scenario : scenario;
  choices : int list;
      (** recorded scheduling decisions, oldest first: each is a position
          into the canonical pending-event order at that step.  Replay
          applies them in order, then drains remaining events in
          canonical order. *)
}

(** {1 Codec} *)

val to_string : t -> string
(** Canonical text form, ending in a newline.  [of_string (to_string t)]
    is [Ok t] for every well-formed [t]. *)

val of_string : string -> (t, string) result
(** Parse; the error names the offending line. *)

val save : t -> file:string -> unit

val load : file:string -> (t, string) result
(** [Error] covers both unreadable files and malformed contents. *)

val expect_to_string : expect -> string

val expect_of_string : string -> expect option

val pp_expect : expect Fmt.t

val pp : t Fmt.t
(** Prints {!to_string}. *)
