(** Oracle-certified chaos campaigns.

    A campaign runs many randomized scenarios — each a workload plus a list
    of fault directives (message loss, duplication, reordering, timed
    partitions, correlated crashes) — under the hardened K-optimistic
    protocol, and certifies every run with the offline causality oracle
    ({!Oracle.check}).  When a run fails (oracle violation or harness
    exception), a greedy delta-debugging shrinker minimizes the fault list
    to a 1-minimal counterexample. *)

type crash_kind = Schedule.crash_kind =
  | Single of int
  | Group of int list  (** simultaneous multi-node crash *)
  | Cascade of int list  (** staggered crashes, each while the previous victim is down *)
  | In_checkpoint of int  (** crash mid-checkpoint *)
  | In_flush of int  (** crash mid-flush *)

(** One removable unit of adversity.  The shrinker minimizes a failing case
    by dropping directives one at a time.  (Defined in {!Schedule}, which
    serializes cases to disk; re-exported here unchanged.) *)
type fault = Schedule.fault =
  | Loss of float  (** per-packet loss probability *)
  | Duplication of float
  | Reorder of float * float  (** probability, extra-delay spread *)
  | Partition of { group : int list; from_ : float; until : float; drop : bool }
  | Crash of { kind : crash_kind; time : float }
  | Kill of { pid : int; time : float; storage : Durable.Fault.t option }
      (** process death over a durable store, optionally followed by
          post-mortem file damage; the respawned process recovers solely
          from disk *)
  | Join of { pid : int; time : float }
      (** membership churn: a brand-new process joins ([pid = n]) or a
          retired one rejoins under its old identity ([pid < n]); the run
          is certified at the cluster's final width *)
  | Retire of { pid : int; time : float }
      (** graceful leave: force-flush, broadcast the final frontier
          (Theorem 2 — survivors treat the entries as stable forever),
          fall permanently silent *)
  | Brownout of { pid : int; time : float; rounds : int }
      (** disk-full window: the node's next [rounds] ordinary flushes
          refuse; the K-rule must keep degradation graceful *)

type case = Schedule.case = { n : int; k : int; seed : int; faults : fault list }

val pp_fault : Format.formatter -> fault -> unit

val pp_case : Format.formatter -> case -> unit

val plan_of_faults : fault list -> Netmodel.fault_plan
(** Wire-level directives folded into one plan (probabilities combine by
    max, so dropping any directive weakens the plan monotonically). *)

type verdict =
  | Certified of Oracle.report
  | Detected of { oracle : Oracle.report; damage : string list }
      (** the oracle saw violations, but every respawn over injected
          storage damage reported the loss at reopen — loud, detected data
          loss rather than silent wrong state *)
  | Violated of Oracle.report
  | Crashed of string  (** the harness or protocol raised *)

type outcome = { verdict : verdict; stats : Cluster.stats option }

val verdict_failed : verdict -> bool

val pp_verdict : Format.formatter -> verdict -> unit

val run_case :
  ?breakage:Recovery.Config.breakage -> ?calls:int -> case -> outcome
(** Run one case end to end under [Config.harden (k_optimistic ~n ~k)]:
    telecom workload, the case's fault plan and crash schedule, then the
    oracle over the full trace.  [breakage] deliberately disables protocol
    safeguards to validate that the oracle (or the harness itself) catches
    the resulting corruption.  A case with [Kill] directives runs the
    cluster over a temporary durable store root (removed afterwards); an
    oracle violation accompanied by reported storage damage yields
    [Detected], one without yields [Violated]. *)

val random_case : ?storage_faults:bool -> Sim.Rng.t -> index:int -> case
(** Randomized case generator: every case carries loss (≤ 10%),
    duplication and reordering; half add a timed partition; crash
    directives cycle through the correlated-failure kinds; K cycles
    through [{0, 2, N}].  With [storage_faults] (default [false]) every
    case also kills one process, cycling through clean kills and the four
    storage faults of {!Durable.Fault}.  A quarter of cases add membership
    churn, cycling through a brand-new joiner, a retire-then-rejoin pair,
    and a disk-full brownout window. *)

type summary = {
  runs : int;
  certified : int;
  detected : int;
      (** runs whose oracle violations were matched by reported storage
          damage — data loss was injected, detected and reported *)
  failures : (case * verdict) list;  (** oldest first *)
  total_retransmissions : int;
  total_net_lost : int;
  total_net_duplicated : int;
  max_risk_seen : int;
}

val campaign :
  ?breakage:Recovery.Config.breakage ->
  ?storage_faults:bool ->
  ?progress:(int -> unit) ->
  runs:int ->
  seed:int ->
  unit ->
  summary

val shrink : ?breakage:Recovery.Config.breakage -> case -> case
(** Greedy 1-minimal shrink of a failing case: the result still fails, and
    removing any single remaining directive makes it pass. *)

val expect_of_verdict : verdict -> Schedule.expect
(** The verdict class, for recording in a schedule. *)

val to_schedule :
  ?breakage:Recovery.Config.breakage ->
  ?calls:int ->
  name:string ->
  case ->
  verdict ->
  Schedule.t
(** Wrap a (typically shrunk) case and the verdict it reproduces as a
    serialized schedule; {!Explore.replay} re-runs it through
    {!run_case}. *)
