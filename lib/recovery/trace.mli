(** Structured execution traces.

    Every protocol-relevant occurrence is appended to a shared trace.  The
    trace serves three purposes: human-readable walkthroughs (the Figure 1
    example prints one), metrics extraction, and — most importantly — input
    to the offline causality oracle, which recomputes the true transitive
    dependency relation independently of the protocol's own vectors and
    checks the protocol's every decision against it. *)

open Depend

type discard_reason =
  | Orphan_message  (** Check_orphan rejected it against the iet *)
  | Duplicate  (** receiver-side identity suppression *)

type event =
  | Interval_started of {
      pid : int;
      interval : Entry.t;
      pred : Entry.t option;  (** previous interval of the same process *)
      by : Wire.identity option;  (** delivery that started it; [None] for
                                      initial and rollback-marker intervals *)
      sender_interval : Entry.t option;
          (** the interval the triggering message was sent from ([None] for
              outside-world messages and marker intervals) *)
      digest : int;  (** application-state digest on entry to the interval *)
      replay : bool;  (** re-created during recovery rather than live *)
    }
  | Message_sent of {
      id : Wire.identity;
      src : int;
      dst : int;
      send_interval : Entry.t;
    }  (** logical send (buffered); release may come later *)
  | Message_released of { id : Wire.identity; dep_size : int; blocked : float }
  | Message_delivered of { id : Wire.identity; dst : int; interval : Entry.t }
  | Message_discarded of { id : Wire.identity; dst : int; reason : discard_reason }
  | Send_cancelled of { id : Wire.identity; src : int }
      (** an unreleased buffered send was dropped (its interval rolled back) *)
  | Stability_advanced of { pid : int; upto : Entry.t }
      (** intervals of [pid] up to [upto] became stable (flush/checkpoint) *)
  | Checkpoint_taken of { pid : int; interval : Entry.t }
  | Crashed of { pid : int; first_lost : Entry.t option }
      (** [first_lost] is the first interval irrecoverably lost, if any *)
  | Restarted of { pid : int; announced : Wire.announcement; new_current : Entry.t }
  | Rolled_back of {
      pid : int;
      restored : Entry.t;  (** last surviving interval *)
      first_undone : Entry.t;
      new_current : Entry.t;
      because : Wire.announcement;
    }
  | Announcement_received of { pid : int; ann : Wire.announcement }
  | Notice_sent of { pid : int; entries : int }
  | Output_buffered of { pid : int; id : Wire.output_id; text : string }
  | Output_committed of { pid : int; id : Wire.output_id; text : string; latency : float }
  | Recovery_completed of { pid : int; replayed : int }
      (** the restarted process finished replaying its log ([replayed]
          delivery records); between [Restarted] and this event the process
          may already have been serving requests on recovered partitions *)

type entry = { time : float; seq : int; ev : event }

type t

val create : unit -> t

val add : t -> time:float -> event -> unit

val events : t -> entry list
(** In chronological (insertion) order. *)

val length : t -> int

val suffix : t -> from_:int -> entry list
(** Entries with [seq >= from_], in chronological order, in time
    proportional to the suffix length — for incremental writers that have
    already persisted the first [from_] entries. *)

val pp_event : event Fmt.t

val pp_entry : entry Fmt.t

val dump : t Fmt.t
(** The whole trace, one event per line. *)
