(** Protocol and cost-model configuration.

    Every behavioural difference between the protocols the paper discusses
    is an independent axis here, so both the named presets and the paper's
    three improvements can be ablated one at a time. *)

type delivery_rule =
  | Corollary1
      (** Check_deliverability of Figure 2: when local and piggybacked
          entries for some process disagree on the incarnation, wait only
          until the smaller one is known stable; no entry at all means no
          wait. *)
  | Wait_announcement
      (** Strom & Yemini: delay a message carrying a dependency on
          incarnation [t] of [P_i] until the rollback announcement for
          incarnation [t-1] has arrived. *)

type tracking =
  | Transitive
      (** the paper's scheme: piggyback the whole (elidable) vector, so
          orphanhood and output commit are decidable locally *)
  | Direct
      (** related-work comparator (Johnson & Zwaenepoel; Sistla & Welch):
          piggyback only the sender's current interval.  Cheaper on the
          wire, but output commit must {e assemble} transitive dependencies
          with query/reply traffic at commit time — exactly the tradeoff
          Section 5 describes.  Failure recovery under direct tracking
          additionally needs {e coordinated} recovery: with only local
          information, in-flight transitively-orphan messages pass the
          arrival check, re-infect receivers and sustain a rollback storm
          (the test suite demonstrates this).  This implementation provides
          the uncoordinated data path only; use it for failure-free
          comparisons. *)

type breakage = {
  break_orphan_check : bool;
      (** deliberately skip the arrival-time orphan check (Figure 2's
          discard rule) — for validating that the chaos harness and the
          offline oracle actually detect protocol violations. *)
  break_dup_suppression : bool;
      (** deliberately deliver duplicate copies of a message. *)
  break_send_gate : bool;
      (** deliberately release messages regardless of the K bound. *)
}

val no_breakage : breakage

type protocol = {
  tracking : tracking;
  k : int;
      (** degree of optimism: a message is released only when at most [k]
          dependency entries are non-NULL.  [0] = pessimistic end of the
          spectrum, [n] = classical optimistic logging. *)
  commit_tracking : bool;
      (** apply Theorem 2: elide dependency entries on known-stable
          intervals.  Without it the vector always holds every acquired
          entry, as in Strom–Yemini, and [k] must equal [n]. *)
  announce_all_rollbacks : bool;
      (** broadcast announcements for induced rollbacks too (pre-Theorem 1
          behaviour). *)
  delivery_rule : delivery_rule;
  sync_logging : bool;
      (** flush the volatile buffer synchronously on every delivery
          (pessimistic logging). *)
  output_driven_logging : bool;
      (** on buffering an output, send flush requests to the processes it
          depends on instead of waiting for periodic notices (the
          alternative discussed at the end of Section 2). *)
  retransmit_on_failure : bool;
      (** senders replay their archives to a failed process (footnote 3:
          lost in-transit messages "can be retrieved from the senders'
          volatile logs"). *)
  gossip_notices : bool;
      (** notices carry all known stability rows, not just the sender's. *)
  gossip_announcements : bool;
      (** periodic notices also carry every failure announcement the
          sender has seen, so an announcement lost on the wire is healed
          by anti-entropy.  Needed for safety under message loss; off by
          default (benign networks deliver each broadcast exactly once). *)
  gc_logs : bool;
      (** garbage-collect the stable log and old checkpoints behind any
          checkpoint whose dependency vector is empty — such a checkpoint
          can never be rolled past (Theorem 2's argument), so nothing
          before it is ever replayed again.  Delivered-message identities
          from the collected prefix are retained as compact stubs inside
          the checkpoint so duplicate suppression stays sound; a stable
          log prefix holding a still-undelivered requeued message is never
          collected.  The paper attributes garbage collection to
          accumulated logging progress information (Section 2). *)
  breakage : breakage;
      (** deliberate protocol breaks, all false in every preset; used only
          to prove the chaos harness detects violations. *)
}

type timing = {
  t_proc : float;  (** application processing time per delivery *)
  t_sync_write : float;  (** synchronous stable-storage write *)
  t_replay : float;  (** re-execution of one logged delivery *)
  t_checkpoint : float;  (** taking or restoring a checkpoint *)
  per_entry_overhead : float;
      (** added network latency per piggybacked dependency entry *)
  flush_interval : float option;  (** period of asynchronous flushes *)
  checkpoint_interval : float option;
  notice_interval : float option;  (** logging-progress broadcast period *)
  retransmit_interval : float option;
      (** period of the sender-side retransmission timer: unacknowledged
          archived messages are re-sent each period.  [None] (the default)
          retransmits only on failure announcements, which suffices on a
          lossless network. *)
  restart_delay : float;  (** crash detection + reboot time *)
  net_latency : float;  (** base one-way latency *)
  net_jitter : float;  (** uniform jitter added to the base latency *)
  fifo : bool;  (** enforce FIFO channels (Strom–Yemini assume them) *)
}

type t = { n : int; protocol : protocol; timing : timing }

val default_timing : timing

val validate : t -> (t, string) result
(** Check internal consistency (e.g. [0 <= k <= n]; [k < n] requires
    commit tracking; [Wait_announcement] requires announcing all
    rollbacks). *)

val validate_exn : t -> t

(** {1 Presets} *)

val k_optimistic : ?timing:timing -> n:int -> k:int -> unit -> t
(** The paper's protocol (Figures 2–3) with degree of optimism [k]. *)

val pessimistic : ?timing:timing -> n:int -> unit -> t
(** 0-optimistic with synchronous logging: no failure ever revokes a
    message, recovery is localized. *)

val optimistic : ?timing:timing -> n:int -> unit -> t
(** N-optimistic: classical optimistic logging with all three of the
    paper's improvements applied. *)

val strom_yemini : ?timing:timing -> n:int -> unit -> t
(** The baseline of reference [12]: size-N vectors (no Theorem 2),
    announcements for every rollback, delivery delayed until announcements
    arrive, FIFO channels. *)

val direct_dependency : ?timing:timing -> n:int -> unit -> t
(** The direct-tracking comparator of Section 5 (references [6,7,10]):
    one piggybacked entry per message, all rollbacks announced, transitive
    dependencies assembled by query/reply at output-commit time.  See
    {!tracking} for the failure-recovery caveat. *)

val damani_garg : ?timing:timing -> n:int -> unit -> t
(** The baseline of reference [2]: failures-only announcements (Theorem 1)
    but no commit dependency tracking.  (Their protocol tracks multiple
    incarnations per process; this preset approximates it within the
    single-entry-per-process engine — see DESIGN.md.) *)

val default_time_scale : float
(** Seconds per abstract time unit when a configuration drives {e real}
    processes (the threaded actor runtime and the [koptnode] daemon):
    [0.001], i.e. abstract time units are interpreted as milliseconds.
    Both real deployments share this one constant so that a kill in the
    actor runtime and a [SIGKILL] of a daemon observe the same outage
    duration for the same configuration. *)

val real_restart_delay : ?time_scale:float -> timing -> float
(** Wall-clock seconds a dead process stays down before it is recovered:
    [timing.restart_delay] scaled by [time_scale] (default
    {!default_time_scale}).  This is the single source of the
    restart-backoff used by [Runtime.Actor_runtime] (crash and kill) and
    by the multi-process deployment's respawn path ([Net.Deployment]);
    neither carries its own magic number. *)

val harden : ?retransmit_interval:float -> t -> t
(** Enable the reliability machinery required on a lossy network:
    periodic sender retransmission and announcement gossip.  Leaves every
    other axis untouched; never weakens the K bound (see PROTOCOL.md). *)

val describe : t -> string
(** Short human-readable protocol description for report headers. *)
