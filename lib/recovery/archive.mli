(** Sender-side retransmission archive.

    An insertion-ordered set of released application messages keyed by
    {!Wire.identity}: O(1) removal by identity (acks) and by predicate
    (orphan pruning on announcements), with iteration in release order
    for retransmission.  Replaces the former newest-first list whose
    per-ack [List.mem]/[List.filter] scans were O(n{^2}) over a run. *)

type 'msg t

val create : unit -> 'msg t

val length : 'msg t -> int

val mem : 'msg t -> Wire.identity -> bool

val add : 'msg t -> 'msg Wire.app_message -> unit
(** Append at the newest end.  Re-adding an existing identity moves it to
    the newest end (does not occur in the protocol's use). *)

val remove : 'msg t -> Wire.identity -> unit

val remove_if : 'msg t -> ('msg Wire.app_message -> bool) -> unit

val clear : 'msg t -> unit

val oldest_first : 'msg t -> 'msg Wire.app_message list
(** Archived messages in release order. *)

val newest_first : 'msg t -> 'msg Wire.app_message list
(** Archived messages in reverse release order (checkpoint snapshots). *)

val iter_oldest : 'msg t -> ('msg Wire.app_message -> unit) -> unit

val due_oldest : 'msg t -> ('msg Wire.app_message -> unit) -> unit
(** Advance the archive's retransmission clock by one tick and apply [f],
    in release order, to exactly the messages whose per-message backoff has
    expired.  A freshly archived message is due on the first tick after its
    release; each re-send then doubles its gap (capped), so a message that
    keeps going unacknowledged is retried ever more rarely — but always
    eventually, which is all the lossy-network delivery argument needs.
    Without the backoff, every tick re-sent the {e whole} archive; under a
    backlog the retransmissions crowded out the acks that would have
    drained the archive, a positive feedback loop that collapsed live
    throughput (retransmissions outnumbered real sends ~47:1 in the B12
    workload).  Acks, orphan pruning and announcement-triggered recovery
    retransmission ({!iter_oldest}) are unaffected. *)
