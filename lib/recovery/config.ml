type delivery_rule = Corollary1 | Wait_announcement

type tracking = Transitive | Direct

type breakage = {
  break_orphan_check : bool;
  break_dup_suppression : bool;
  break_send_gate : bool;
}

let no_breakage =
  { break_orphan_check = false; break_dup_suppression = false; break_send_gate = false }

type protocol = {
  tracking : tracking;
  k : int;
  commit_tracking : bool;
  announce_all_rollbacks : bool;
  delivery_rule : delivery_rule;
  sync_logging : bool;
  output_driven_logging : bool;
  retransmit_on_failure : bool;
  gossip_notices : bool;
  gossip_announcements : bool;
  gc_logs : bool;
  breakage : breakage;
}

type timing = {
  t_proc : float;
  t_sync_write : float;
  t_replay : float;
  t_checkpoint : float;
  per_entry_overhead : float;
  flush_interval : float option;
  checkpoint_interval : float option;
  notice_interval : float option;
  retransmit_interval : float option;
  restart_delay : float;
  net_latency : float;
  net_jitter : float;
  fifo : bool;
}

type t = { n : int; protocol : protocol; timing : timing }

(* Times are in abstract milliseconds.  The ratios follow the paper's
   setting: a synchronous stable write costs an order of magnitude more than
   message processing, which is why pessimistic logging's failure-free
   overhead is "higher" and why asynchronous logging amortizes it. *)
let default_timing =
  {
    t_proc = 0.2;
    t_sync_write = 4.0;
    t_replay = 0.05;
    t_checkpoint = 8.0;
    per_entry_overhead = 0.02;
    flush_interval = Some 50.;
    checkpoint_interval = Some 400.;
    notice_interval = Some 25.;
    retransmit_interval = None;
    restart_delay = 30.;
    net_latency = 1.0;
    net_jitter = 0.5;
    fifo = false;
  }

let validate t =
  let p = t.protocol in
  if t.n <= 0 then Error "n must be positive"
  else if p.k < 0 || p.k > t.n then Error "k must be in [0, n]"
  else if (not p.commit_tracking) && p.k < t.n then
    Error "k < n requires commit dependency tracking (entries are never \
           elided otherwise, so sends would block forever)"
  else if p.delivery_rule = Wait_announcement && not p.announce_all_rollbacks
  then
    Error "the wait-for-announcement delivery rule requires announcing all \
           rollbacks (otherwise delivery can block forever on an induced \
           rollback that is never announced)"
  else if p.tracking = Direct && not p.announce_all_rollbacks then
    Error "direct dependency tracking requires announcing all rollbacks \
           (transitive orphans are only detectable through cascading \
           announcements)"
  else if p.tracking = Direct && p.k < t.n then
    Error "direct dependency tracking carries no vector to bound, so K must \
           equal N"
  else if p.tracking = Direct && p.gc_logs then
    Error "log garbage collection needs the transitive vector to prove a \
           checkpoint can never be rolled past"
  else Ok t

let validate_exn t =
  match validate t with Ok t -> t | Error msg -> invalid_arg ("Config: " ^ msg)

let base_protocol ~k =
  {
    tracking = Transitive;
    k;
    commit_tracking = true;
    announce_all_rollbacks = false;
    delivery_rule = Corollary1;
    sync_logging = false;
    output_driven_logging = false;
    retransmit_on_failure = true;
    gossip_notices = false;
    gossip_announcements = false;
    gc_logs = false;
    breakage = no_breakage;
  }

let k_optimistic ?(timing = default_timing) ~n ~k () =
  validate_exn { n; protocol = base_protocol ~k; timing }

let pessimistic ?(timing = default_timing) ~n () =
  validate_exn
    { n; protocol = { (base_protocol ~k:0) with sync_logging = true }; timing }

let optimistic ?(timing = default_timing) ~n () = k_optimistic ~timing ~n ~k:n ()

let strom_yemini ?(timing = default_timing) ~n () =
  validate_exn
    {
      n;
      protocol =
        {
          (base_protocol ~k:n) with
          commit_tracking = false;
          announce_all_rollbacks = true;
          delivery_rule = Wait_announcement;
        };
      timing = { timing with fifo = true };
    }

let direct_dependency ?(timing = default_timing) ~n () =
  validate_exn
    {
      n;
      protocol =
        {
          (base_protocol ~k:n) with
          tracking = Direct;
          announce_all_rollbacks = true;
          delivery_rule = Wait_announcement;
        };
      timing;
    }

let damani_garg ?(timing = default_timing) ~n () =
  validate_exn
    { n; protocol = { (base_protocol ~k:n) with commit_tracking = false }; timing }

(* One scale, one formula, two real runtimes (threads and processes):
   the outage between a kill and the recovery attempt must not depend on
   which deployment style injected the kill. *)
let default_time_scale = 0.001

let real_restart_delay ?(time_scale = default_time_scale) timing =
  timing.restart_delay *. time_scale

(* Turn on the reliability machinery needed to survive a lossy network:
   a periodic retransmission timer on every sender's archive, and
   announcement gossip so a dropped failure announcement is eventually
   healed by a periodic notice.  Off by default so the benign-network
   experiments are bit-for-bit unchanged. *)
let harden ?(retransmit_interval = 40.) t =
  {
    t with
    protocol = { t.protocol with gossip_announcements = true };
    timing = { t.timing with retransmit_interval = Some retransmit_interval };
  }

let describe t =
  let p = t.protocol in
  if p.tracking = Direct then "direct dependency tracking (assembly at commit)"
  else if p.sync_logging then "pessimistic (sync logging, K=0)"
  else if not p.commit_tracking then
    if p.announce_all_rollbacks then "strom-yemini (full vector, all rollbacks announced)"
    else "damani-garg (full vector, failures-only announcements)"
  else if p.k >= t.n then "optimistic (K=N)"
  else Fmt.str "%d-optimistic" p.k
