(* Sender-side retransmission archive (footnote 3's "senders' volatile
   logs").

   Semantically an ordered set of released application messages keyed by
   {!Wire.identity}.  Acks and announcements remove entries by identity or
   by predicate on every ack/announcement received, so membership
   operations must be O(1) — a plain list made each of those a full scan
   and the whole run O(n^2) in the number of released messages.  Entries
   carry a monotone insertion sequence number so retransmission still
   walks the archive in exactly release order (the order matters: it is
   the order retransmitted packets hit the network model). *)

type 'msg item = {
  seq : int;
  msg : 'msg Wire.app_message;
  mutable due : int; (* tick count at which the next re-send is allowed *)
  mutable gap : int; (* current backoff, in ticks; quadruples per re-send *)
}

(* Cap the per-message backoff so a stuck message is still retried within
   a bounded number of ticks — retransmission must stay {e eventual} for
   the lossy-network delivery argument.  The gap grows 4x per re-send
   (schedule 1, 5, 21, 85, ... ticks after release): under a benign burst
   the receiver's ack can take a second or more to fight back through the
   backlog, and a doubling schedule still re-sent every message ~6 times
   in that window — over 80%% of all received traffic was duplicates. *)
let max_gap = 64

type 'msg t = {
  tbl : (Wire.identity, 'msg item) Hashtbl.t;
  mutable next_seq : int;
  mutable ticks : int;
}

let create () = { tbl = Hashtbl.create 64; next_seq = 0; ticks = 0 }

let length t = Hashtbl.length t.tbl

let mem t id = Hashtbl.mem t.tbl id

let add t (msg : 'msg Wire.app_message) =
  Hashtbl.replace t.tbl msg.Wire.id
    { seq = t.next_seq; msg; due = t.ticks + 1; gap = 1 };
  t.next_seq <- t.next_seq + 1

let remove t id = Hashtbl.remove t.tbl id

let clear t =
  Hashtbl.reset t.tbl;
  t.next_seq <- 0;
  t.ticks <- 0

let remove_if t pred =
  Hashtbl.filter_map_inplace
    (fun _ item -> if pred item.msg then None else Some item)
    t.tbl

let items t = Hashtbl.fold (fun _ item acc -> item :: acc) t.tbl []

(* Release order: the order retransmissions go out in. *)
let oldest_first t =
  List.sort (fun a b -> Stdlib.compare a.seq b.seq) (items t)
  |> List.map (fun item -> item.msg)

(* Reverse release order: the shape the checkpointed snapshot has always
   had (the archive used to be a newest-first list), preserved so restart
   rebuilds retransmit in the historical order. *)
let newest_first t =
  List.sort (fun a b -> Stdlib.compare b.seq a.seq) (items t)
  |> List.map (fun item -> item.msg)

let iter_oldest t f = List.iter f (oldest_first t)

let due_oldest t f =
  t.ticks <- t.ticks + 1;
  List.sort (fun a b -> Stdlib.compare a.seq b.seq) (items t)
  |> List.iter (fun item ->
         if t.ticks >= item.due then begin
           item.due <- t.ticks + item.gap;
           item.gap <- Stdlib.min (item.gap * 4) max_gap;
           f item.msg
         end)
