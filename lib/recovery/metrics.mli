(** Per-node protocol counters and distributions.

    Populated by {!Node}; aggregated across a cluster by the harness.  The
    distinctions mirror the paper's two performance axes: failure-free
    overhead (blocked send time, piggyback size, synchronous writes) and
    recovery efficiency (rollbacks, undone intervals, orphans, replay). *)

type t = {
  mutable deliveries : int;  (** application messages delivered (live) *)
  mutable sends : int;  (** logical sends performed by the application *)
  mutable releases : int;  (** messages actually released to the network *)
  blocked_time : Sim.Summary.t;
      (** per released message: time spent held in the send buffer *)
  release_dep_entries : Sim.Summary.t;
      (** piggybacked dependency entries per released message *)
  wire_vector_size : Sim.Summary.t;
      (** on-the-wire vector size: equals the entry count under commit
          dependency tracking, and N for fixed-size-vector protocols *)
  mutable orphans_discarded : int;
  mutable duplicates_dropped : int;
  delivery_delay : Sim.Summary.t;
      (** per delivered message: time spent undeliverable in the receive
          buffer (the Corollary 1 ablation measures this) *)
  mutable cancelled_sends : int;  (** unreleased sends dropped at rollback *)
  mutable induced_rollbacks : int;  (** rollbacks of non-failed processes *)
  mutable restarts : int;  (** recoveries from actual crashes *)
  mutable undone_intervals : int;  (** state intervals rolled back *)
  mutable lost_intervals : int;  (** intervals irrecoverably lost to crashes *)
  mutable replayed : int;  (** logged deliveries re-executed during recovery *)
  mutable outputs_committed : int;
  output_latency : Sim.Summary.t;  (** buffer-to-commit delay per output *)
  mutable notices : int;
  mutable notice_entries : int;
  mutable announcements_sent : int;
  mutable acks_sent : int;
  mutable retransmissions : int;
  mutable gc_records : int;
      (** stable-log records reclaimed by garbage collection *)
  mutable dep_queries : int;
      (** direct-tracking assembly queries sent (commit-time cost) *)
  mutable part_ckpt_dropped : int;
      (** damaged or unreadable {!Wire.sync_record.Part_ckpt} payloads
          dropped at restart; the covered partitions fell back to replay
          from the full checkpoint *)
}

val create : unit -> t
