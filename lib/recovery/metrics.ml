type t = {
  mutable deliveries : int;
  mutable sends : int;
  mutable releases : int;
  blocked_time : Sim.Summary.t;
  release_dep_entries : Sim.Summary.t;
  wire_vector_size : Sim.Summary.t;
  mutable orphans_discarded : int;
  mutable duplicates_dropped : int;
  delivery_delay : Sim.Summary.t;
  mutable cancelled_sends : int;
  mutable induced_rollbacks : int;
  mutable restarts : int;
  mutable undone_intervals : int;
  mutable lost_intervals : int;
  mutable replayed : int;
  mutable outputs_committed : int;
  output_latency : Sim.Summary.t;
  mutable notices : int;
  mutable notice_entries : int;
  mutable announcements_sent : int;
  mutable acks_sent : int;
  mutable retransmissions : int;
  mutable gc_records : int;
  mutable dep_queries : int;
  mutable part_ckpt_dropped : int;
}

let create () =
  {
    deliveries = 0;
    sends = 0;
    releases = 0;
    blocked_time = Sim.Summary.create ();
    release_dep_entries = Sim.Summary.create ();
    wire_vector_size = Sim.Summary.create ();
    orphans_discarded = 0;
    duplicates_dropped = 0;
    delivery_delay = Sim.Summary.create ();
    cancelled_sends = 0;
    induced_rollbacks = 0;
    restarts = 0;
    undone_intervals = 0;
    lost_intervals = 0;
    replayed = 0;
    outputs_committed = 0;
    output_latency = Sim.Summary.create ();
    notices = 0;
    notice_entries = 0;
    announcements_sent = 0;
    acks_sent = 0;
    retransmissions = 0;
    gc_records = 0;
    dep_queries = 0;
    part_ckpt_dropped = 0;
  }
