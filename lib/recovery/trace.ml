open Depend

type discard_reason = Orphan_message | Duplicate

type event =
  | Interval_started of {
      pid : int;
      interval : Entry.t;
      pred : Entry.t option;
      by : Wire.identity option;
      sender_interval : Entry.t option;
      digest : int;
      replay : bool;
    }
  | Message_sent of {
      id : Wire.identity;
      src : int;
      dst : int;
      send_interval : Entry.t;
    }
  | Message_released of { id : Wire.identity; dep_size : int; blocked : float }
  | Message_delivered of { id : Wire.identity; dst : int; interval : Entry.t }
  | Message_discarded of { id : Wire.identity; dst : int; reason : discard_reason }
  | Send_cancelled of { id : Wire.identity; src : int }
  | Stability_advanced of { pid : int; upto : Entry.t }
  | Checkpoint_taken of { pid : int; interval : Entry.t }
  | Crashed of { pid : int; first_lost : Entry.t option }
  | Restarted of { pid : int; announced : Wire.announcement; new_current : Entry.t }
  | Rolled_back of {
      pid : int;
      restored : Entry.t;
      first_undone : Entry.t;
      new_current : Entry.t;
      because : Wire.announcement;
    }
  | Announcement_received of { pid : int; ann : Wire.announcement }
  | Notice_sent of { pid : int; entries : int }
  | Output_buffered of { pid : int; id : Wire.output_id; text : string }
  | Output_committed of { pid : int; id : Wire.output_id; text : string; latency : float }
  | Recovery_completed of { pid : int; replayed : int }
      (** the restarted process finished replaying its log ([replayed]
          delivery records); between [Restarted] and this event the process
          may already have been serving requests on recovered partitions *)

type entry = { time : float; seq : int; ev : event }

type t = { mutable entries : entry list (* newest first *); mutable next_seq : int }

let create () = { entries = []; next_seq = 0 }

let add t ~time ev =
  t.entries <- { time; seq = t.next_seq; ev } :: t.entries;
  t.next_seq <- t.next_seq + 1

let events t = List.rev t.entries

let length t = t.next_seq

(* Entries are newest-first and seq is dense, so the suffix from [from_]
   is a prefix of the internal list: O(suffix), not O(trace) — what lets
   an incremental trace writer stay cheap on a long-running node. *)
let suffix t ~from_ =
  let rec take acc = function
    | e :: rest when e.seq >= from_ -> take (e :: acc) rest
    | _ -> acc
  in
  take [] t.entries

let pp_reason ppf = function
  | Orphan_message -> Fmt.string ppf "orphan"
  | Duplicate -> Fmt.string ppf "duplicate"

let pp_event ppf = function
  | Interval_started { pid; interval; replay; by; _ } ->
    Fmt.pf ppf "P%d starts %a%s%s" pid Entry.pp interval
      (match by with None -> " (marker)" | Some _ -> "")
      (if replay then " [replay]" else "")
  | Message_sent { id; src; dst; send_interval } ->
    Fmt.pf ppf "P%d sends %a to P%d from %a" src Wire.pp_identity id dst
      Entry.pp send_interval
  | Message_released { id; dep_size; blocked } ->
    Fmt.pf ppf "released %a |dep|=%d blocked=%.2f" Wire.pp_identity id dep_size
      blocked
  | Message_delivered { id; dst; interval } ->
    Fmt.pf ppf "P%d delivers %a starting %a" dst Wire.pp_identity id Entry.pp
      interval
  | Message_discarded { id; dst; reason } ->
    Fmt.pf ppf "P%d discards %a (%a)" dst Wire.pp_identity id pp_reason reason
  | Send_cancelled { id; src } ->
    Fmt.pf ppf "P%d cancels unreleased %a" src Wire.pp_identity id
  | Stability_advanced { pid; upto } ->
    Fmt.pf ppf "P%d stable up to %a" pid Entry.pp upto
  | Checkpoint_taken { pid; interval } ->
    Fmt.pf ppf "P%d checkpoints at %a" pid Entry.pp interval
  | Crashed { pid; first_lost } ->
    Fmt.pf ppf "P%d crashes%a" pid
      Fmt.(option (any ", loses from " ++ Entry.pp))
      first_lost
  | Restarted { pid; announced; new_current } ->
    Fmt.pf ppf "P%d restarts, announces %a, continues as %a" pid
      Wire.pp_announcement announced Entry.pp new_current
  | Rolled_back { pid; restored; first_undone; new_current; because } ->
    Fmt.pf ppf "P%d rolls back to %a (undoing from %a) due to %a, continues as %a"
      pid Entry.pp restored Entry.pp first_undone Wire.pp_announcement because
      Entry.pp new_current
  | Announcement_received { pid; ann } ->
    Fmt.pf ppf "P%d receives %a" pid Wire.pp_announcement ann
  | Notice_sent { pid; entries } ->
    Fmt.pf ppf "P%d broadcasts logging progress (%d entries)" pid entries
  | Output_buffered { pid; id; text } ->
    Fmt.pf ppf "P%d buffers output %a %S" pid Wire.pp_output_id id text
  | Output_committed { pid; id; text; latency } ->
    Fmt.pf ppf "P%d commits output %a %S after %.2f" pid Wire.pp_output_id id
      text latency
  | Recovery_completed { pid; replayed } ->
    Fmt.pf ppf "P%d completes recovery (%d records replayed)" pid replayed

let pp_entry ppf e = Fmt.pf ppf "[%8.2f] %a" e.time pp_event e.ev

let dump ppf t = Fmt.(list ~sep:(any "@\n") pp_entry) ppf (events t)
