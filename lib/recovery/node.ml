open Depend
module App_intf = App_model.App_intf

type 'msg action =
  | Unicast of { dst : int; packet : 'msg Wire.packet }
  | Broadcast of 'msg Wire.packet

type cost = {
  deliveries : int;
  replays : int;
  sync_writes : int;
  checkpoints : int;
}

let zero_cost = { deliveries = 0; replays = 0; sync_writes = 0; checkpoints = 0 }

let add_cost a b =
  {
    deliveries = a.deliveries + b.deliveries;
    replays = a.replays + b.replays;
    sync_writes = a.sync_writes + b.sync_writes;
    checkpoints = a.checkpoints + b.checkpoints;
  }

(* A buffered, not-yet-released send (Figure 2's Send_buffer entry).  Its
   vector snapshot is mutated in place as stability news arrives. *)
type 'msg pending_send = {
  ps_id : Wire.identity;
  ps_dst : int;
  ps_interval : Entry.t;
  ps_tdv : Dep_vector.t;
  ps_payload : 'msg;
  ps_enqueued : float;
  ps_k : int;
}

type pending_output = {
  po_id : Wire.output_id;
  po_text : string;
  po_tdv : Dep_vector.t;
  po_buffered : float;
}

(* Stable-log records.  A [Delivery] is an incoming message together with
   the state interval its delivery started: replay re-executes the
   application on it and must land on exactly that interval.  A [Requeued]
   record persists a non-orphan message that a rollback truncated out of
   the delivery log and put back into the receive buffer ("add non-orphans
   to Receive buffer", Figure 3): without it, a crash between the rollback
   and the re-delivery would lose the message with no retransmission
   source left (the sender may have garbage-collected it after the
   original delivery became stable). *)
type 'msg logged =
  | Delivery of {
      lg_msg : 'msg Wire.app_message;
      lg_interval : Entry.t;
      lg_window : bool;
          (* delivered inside a recovery window, i.e. while partitioned
             replay of an earlier crash was still in progress.  The live
             digest of such an interval covers a partially-recovered state,
             so a later recovery must not re-certify it (the frontier
             digest event is suppressed when the frontier record is
             window-marked). *)
    }
  | Requeued of 'msg Wire.app_message

(* Immutable snapshots of buffered-but-unreleased sends and outputs.  They
   are part of the process state a checkpoint must capture: a send still
   held back by the K rule when the checkpoint is taken belongs to an
   interval the post-crash replay will never re-execute (replay starts at
   the checkpoint), so without these snapshots a crash would silently drop
   it. *)
type 'msg saved_send = {
  sv_id : Wire.identity;
  sv_dst : int;
  sv_interval : Entry.t;
  sv_dep : (int * Entry.t) list;
  sv_payload : 'msg;
  sv_enqueued : float;
  sv_k : int;
}

type saved_output = {
  so_id : Wire.output_id;
  so_text : string;
  so_dep : (int * Entry.t) list;
  so_buffered : float;
}

(* Direct-tracking commit assembly: the transitive closure of one pending
   output, grown by querying each member interval's owner for its direct
   parents, and committed once every member is known stable. *)
type member_state = {
  mutable m_stable : bool;
  mutable m_expanded : bool;
  mutable m_queried : bool;
      (* a query about this member is in flight; cleared once per
         notice period so reply traffic stays bounded *)
}

type assembly = { members : (int * Entry.t, member_state) Hashtbl.t }

type ('state, 'msg) ckpt = {
  ck_current : Entry.t;
  ck_tdv : (int * Entry.t) list;
  ck_state : 'state;
  ck_log_pos : int;
  ck_sends : 'msg saved_send list;
  ck_outs : saved_output list;
  ck_archive : 'msg Wire.app_message list;
      (* released-message archive at checkpoint time.  Replay only
         regenerates sends from intervals at or after the checkpoint; for
         anything released earlier the archive is the only copy a
         restarted sender can retransmit (footnote 3's "senders' volatile
         logs" must survive the sender's own crash once the send interval
         is absorbed into a checkpoint). *)
}

(* --- Partitioned (fast) recovery ----------------------------------- *)

(* One logged delivery awaiting partitioned replay.  The metadata pass of
   [restart_begin] walks the log serially {e without} running the
   application, so it can pre-compute per-record context: the interval the
   replay must land on and the dependency-vector snapshot the record's
   regenerated effects must carry.  Replaying records of different
   partitions in any order then yields the serial result, because
   cross-partition handlers commute (the {!App_intf.partitioning}
   contract). *)
type 'msg replay_item = {
  ri_msg : 'msg Wire.app_message;
  ri_interval : Entry.t;
  ri_tdv : Dep_vector.t; (* vector after this delivery, from the metadata pass *)
  ri_window : bool; (* the record's [lg_window] flag *)
  ri_covered : bool;
      (* a per-partition checkpoint already covers this record: count it
         done without re-executing the handler *)
}

(* A barrier-separated stage: the per-partition queues replay in any
   order/interleaving; the trailing barrier (a record touching state
   outside any single partition) runs only once every queue has drained,
   preserving its exact log position relative to both sides. *)
type 'msg replay_stage = {
  rs_queues : 'msg replay_item Queue.t array; (* one queue per partition *)
  rs_barrier : 'msg replay_item option;
}

type 'msg recovery = {
  rc_parts : int;
  mutable rc_stages : 'msg replay_stage list; (* head = current stage *)
  rc_part_pending : int array; (* items left per partition, all stages *)
  mutable rc_barriers_pending : int;
  mutable rc_replayed : int; (* records actually re-executed *)
  rc_frontier : 'msg replay_item option;
      (* last delivery record in the log; its interval is certified
         against the live digest once replay completes (unless
         window-marked) *)
  mutable rc_next : int; (* round-robin cursor over partitions *)
  mutable rc_live_delivered : bool;
      (* a fresh (non-replay) message was delivered during the recovery
         window: the state at completion is past the frontier, so the
         frontier digest certification must be skipped *)
}

type ('state, 'msg) t = {
  cfg : Config.t;
  pid : int;
  mutable n : int;
      (* protocol membership width: how many processes the dependency
         vector and per-process tables cover.  Grows (never shrinks) on any
         evidence of a wider cluster — a Join handshake, a piggybacked
         dependency, an announcement or notice row from an unknown pid, or
         sync-area records from a previous, wider incarnation.  Corollary 3
         makes the widening verdict-preserving: a process nobody has yet
         depended on contributes only NULL entries. *)
  app_n : int;
      (* the width the application was initialised with, frozen at
         [create].  All application calls ([handle], [part_of_msg]) use
         this, not [n]: apps route by [~n] (e.g. [owner ~n key]), so the
         value must be identical between a delivery and its post-crash
         replay — and membership can change between the two. *)
  app : ('state, 'msg) App_intf.t;
  trace : Trace.t;
  metrics : Metrics.t;
  store : (('state, 'msg) ckpt, 'msg logged, Wire.sync_record) Storage.Stable_store.t;
  (* --- volatile protocol state (lost at crash) --- *)
  mutable up : bool;
  mutable current : Entry.t;
  mutable tdv : Dep_vector.t;
  mutable state : 'state;
  mutable log_tab : Entry_set.t array; (* log[j]: stability knowledge *)
  mutable iet : Entry_set.t array; (* incarnation end tables *)
  mutable max_ann_inc : int array; (* highest announced incarnation, or -1 *)
  mutable recv_buf : (float * 'msg Wire.app_message) list;
      (* (arrival time, message), oldest first *)
  mutable send_buf : 'msg pending_send list; (* oldest first *)
  mutable out_buf : pending_output list; (* oldest first *)
  delivered : (Wire.identity, Entry.t) Hashtbl.t;
  stubs : (Wire.identity, unit) Hashtbl.t;
      (* deliveries whose records were GC'd; see Wire.Gc_stubs *)
  direct_parents : (Entry.t, (int * Entry.t) list) Hashtbl.t;
      (* direct tracking: each local interval's chain predecessor and, for
         delivery-started intervals, the sending interval.  Rebuilt by
         replay; pruned with the chain on rollback. *)
  assemblies : (Wire.output_id, assembly) Hashtbl.t;
      (* direct tracking: one transitive-closure assembly per pending
         output *)
  released_ids : (Wire.identity, unit) Hashtbl.t;
  buffered_send_ids : (Wire.identity, unit) Hashtbl.t;
  buffered_out_ids : (Wire.output_id, unit) Hashtbl.t;
  committed_ids : (Wire.output_id, unit) Hashtbl.t; (* cache of stable records *)
  archive : 'msg Archive.t; (* released msgs awaiting ack, in release order *)
  anns_seen : (Wire.announcement, unit) Hashtbl.t;
  mutable anns_order : Wire.announcement list;
      (* announcements absorbed (received or own), newest first; gossiped
         on notices when [gossip_announcements] is set *)
  mutable unacked : (int * Wire.identity) list; (* deliveries awaiting ack *)
  mutable send_idx : int; (* sends performed in the current interval *)
  mutable out_idx : int; (* outputs performed in the current interval *)
  mutable frontier : Entry.t; (* own chain's known-stable frontier *)
  mutable outputs_log : (string * float) list; (* outside world's ledger *)
  mutable ckpt_ops : int;
  mutable actions : 'msg action list; (* reversed accumulator *)
  mutable recovery : 'msg recovery option;
      (* in-progress partitioned replay; [None] once recovery completes
         (or for serial restarts).  Volatile: a crash drops it and the
         next restart replays from the log again. *)
  part_dirty : int array;
      (* per-partition deliveries since that partition's last incremental
         checkpoint; [[||]] for unpartitioned applications *)
  retired : (int, Entry.t) Hashtbl.t;
      (* pid -> retirement frontier: the process announced (via
         {!Wire.packet.Retire}) that it left for good after flushing, so
         every interval up to the frontier is stable and its vector slot
         drains to NULL (Theorem 2).  Volatile — a restarted node relearns
         retirements from re-broadcasts or simply never hears from the
         retiree again. *)
}

module Store = Storage.Stable_store

let push t a = t.actions <- a :: t.actions

let trace t ~now ev = Trace.add t.trace ~time:now ev

let proto t = t.cfg.Config.protocol

let breakage t = (proto t).Config.breakage

(* Remember an announcement (received or our own) for dedup and gossip. *)
let note_ann t ann =
  if not (Hashtbl.mem t.anns_seen ann) then begin
    Hashtbl.replace t.anns_seen ann ();
    t.anns_order <- ann :: t.anns_order
  end

let gossip_anns t =
  if (proto t).gossip_announcements then List.rev t.anns_order else []

(* ------------------------------------------------------------------ *)
(* Membership                                                          *)

(* Grow the protocol membership to cover pid [j].  Every per-process table
   widens with its neutral element (no stability knowledge, no incarnation
   endings, no announced incarnations) and the dependency vector widens
   with NULL entries — Corollary 3: a process execution "can be considered
   as starting with an initial checkpoint", so before anyone acquires a
   dependency on the newcomer, every orphan and stability verdict computed
   over the narrower vector is preserved by the wider one.  Called on any
   evidence of a wider cluster; idempotent and cheap when [j] is already
   covered. *)
let ensure_member t j =
  if j >= t.n then begin
    let n' = j + 1 in
    let grow_tab a neutral =
      let a' = Array.make n' neutral in
      Array.blit a 0 a' 0 t.n;
      a'
    in
    t.tdv <- Dep_vector.grow t.tdv ~n:n';
    t.log_tab <- grow_tab t.log_tab Entry_set.empty;
    t.iet <- grow_tab t.iet Entry_set.empty;
    t.max_ann_inc <- grow_tab t.max_ann_inc (-1);
    t.n <- n'
  end

(* Dependency lists arrive from the wire, from checkpoints and from log
   records written by a (possibly wider) previous incarnation: each pid in
   one is membership evidence. *)
let ensure_deps t dep = List.iter (fun (j, (_ : Entry.t)) -> ensure_member t j) dep

(* ------------------------------------------------------------------ *)
(* Dependency bookkeeping                                              *)

let stable_in_log t j e =
  ensure_member t j;
  Entry_set.covers t.log_tab.(j) e

(* Theorem 2: dependencies on stable intervals are redundant. *)
let elide_tdv t =
  if (proto t).commit_tracking then
    ignore (Dep_vector.elide_stable t.tdv ~stable:(stable_in_log t) : int)

let orphan_entry (ann : Wire.announcement) (e : Entry.t) =
  e.inc <= ann.ending.inc && e.sii > ann.ending.sii

(* Check_orphan of Figure 2, applied to a wire message. *)
let orphan_wire t (m : 'msg Wire.app_message) =
  ensure_deps t m.dep;
  List.exists (fun (j, e) -> Entry_set.orphans t.iet.(j) e) m.dep

(* A copy of this message is already waiting in the receive buffer.
   Retransmissions (sender archives, outside-world retries) can race with
   the original while it is still undeliverable, so duplicate suppression
   must look at the buffer as well as the delivered table. *)
let buffered_in_recv t id =
  List.exists (fun (_, (m : 'msg Wire.app_message)) -> m.id = id) t.recv_buf

let orphan_vector t v =
  let found = ref false in
  Dep_vector.iteri v ~f:(fun j e ->
      match e with
      | None -> ()
      | Some e -> if Entry_set.orphans t.iet.(j) e then found := true);
  !found

(* Mark the whole current chain stable (everything delivered is now in the
   stable log, and marker intervals are reconstructable from sync records). *)
let advance_stability t ~now =
  t.log_tab.(t.pid) <- Entry_set.insert t.log_tab.(t.pid) t.current;
  if Entry.lt t.frontier t.current then begin
    t.frontier <- t.current;
    trace t ~now (Stability_advanced { pid = t.pid; upto = t.current })
  end

(* ------------------------------------------------------------------ *)
(* Check_deliverability (Figure 2)                                     *)

let deliverable t (m : 'msg Wire.app_message) =
  ensure_deps t m.dep;
  match (proto t).delivery_rule with
  | Config.Corollary1 ->
    (* Delivering must not leave us depending on two incarnations of the
       same process unless the smaller one is known stable.  No local entry
       at all means no conflict and no delay (the Corollary 1 special
       case illustrated by m7/P5 in Figure 1). *)
    List.for_all
      (fun (j, e) ->
        match Dep_vector.get t.tdv j with
        | None -> true
        | Some mine ->
          mine.Entry.inc = e.Entry.inc
          || stable_in_log t j (Entry.min mine e))
      m.dep
  | Config.Wait_announcement ->
    (* Strom & Yemini: a dependency on incarnation t of P_j may only be
       acquired after the rollback announcement ending incarnation t-1 has
       arrived.  A process does not receive its own broadcasts but trivially
       knows its own incarnations up to the current one. *)
    List.for_all
      (fun (j, e) ->
        e.Entry.inc = 0
        || (if j = t.pid then e.Entry.inc <= t.current.inc
            else t.max_ann_inc.(j) >= e.Entry.inc - 1))
      m.dep

(* ------------------------------------------------------------------ *)
(* Send path: Send_message / Check_send_buffer (Figure 2)              *)

let release_send t ~now (ps : 'msg pending_send) =
  Hashtbl.remove t.buffered_send_ids ps.ps_id;
  Hashtbl.replace t.released_ids ps.ps_id ();
  let dep =
    match (proto t).tracking with
    | Config.Transitive -> Dep_vector.non_null ps.ps_tdv
    | Config.Direct ->
      (* Only the sender's current interval travels (Section 5).  It is
         never elided: it is the receiver's sole handle for arrival-time
         orphan checks. *)
      [ (t.pid, ps.ps_interval) ]
  in
  let wire =
    {
      Wire.id = ps.ps_id;
      src = t.pid;
      dst = ps.ps_dst;
      send_interval = ps.ps_interval;
      dep;
      payload = ps.ps_payload;
    }
  in
  let m = t.metrics in
  m.releases <- m.releases + 1;
  Sim.Summary.add m.blocked_time (now -. ps.ps_enqueued);
  Sim.Summary.add_int m.release_dep_entries (List.length dep);
  Sim.Summary.add_int m.wire_vector_size
    (if (proto t).commit_tracking then List.length dep else t.n);
  if (proto t).retransmit_on_failure || t.cfg.Config.timing.retransmit_interval <> None
  then Archive.add t.archive wire;
  trace t ~now
    (Message_released
       { id = ps.ps_id; dep_size = List.length dep; blocked = now -. ps.ps_enqueued });
  push t (Unicast { dst = ps.ps_dst; packet = Wire.App wire })

let check_send_buffer t ~now =
  if (proto t).commit_tracking then
    List.iter
      (fun ps -> ignore (Dep_vector.elide_stable ps.ps_tdv ~stable:(stable_in_log t) : int))
      t.send_buf;
  let ready, blocked =
    List.partition
      (fun ps ->
        (breakage t).break_send_gate
        || Dep_vector.non_null_count ps.ps_tdv <= ps.ps_k)
      t.send_buf
  in
  t.send_buf <- blocked;
  List.iter (release_send t ~now) ready

(* [send_message_at] performs a send in an explicit interval context
   instead of the node's live one — partitioned replay re-executes records
   out of log order, so the regenerated sends must carry the interval and
   vector snapshot the metadata pass computed for their record, not
   whatever the interleaved replay happens to have made current. *)
let send_message_at t ~now ~interval ~tdv ~idx ~dst ~k payload =
  let id = { Wire.origin = t.pid; origin_interval = interval; idx } in
  (* A replayed execution regenerates the sends of reconstructed intervals
     with identical identities; suppress the ones still accounted for.
     After a crash both tables are empty, so replayed sends are re-released
     — receivers drop the duplicates by identity. *)
  if Hashtbl.mem t.released_ids id || Hashtbl.mem t.buffered_send_ids id then ()
  else begin
    t.metrics.sends <- t.metrics.sends + 1;
    trace t ~now (Message_sent { id; src = t.pid; dst; send_interval = interval });
    let k =
      match k with
      | Some k when (proto t).commit_tracking -> Stdlib.max 0 (Stdlib.min t.n k)
      | Some _ | None -> (proto t).k
    in
    Hashtbl.replace t.buffered_send_ids id ();
    let ps =
      {
        ps_id = id;
        ps_dst = dst;
        ps_interval = interval;
        ps_tdv = Dep_vector.copy tdv;
        ps_payload = payload;
        ps_enqueued = now;
        ps_k = k;
      }
    in
    t.send_buf <- t.send_buf @ [ ps ]
  end

let send_message t ~now ~dst ~k payload =
  let idx = t.send_idx in
  t.send_idx <- t.send_idx + 1;
  send_message_at t ~now ~interval:t.current ~tdv:t.tdv ~idx ~dst ~k payload

(* ------------------------------------------------------------------ *)
(* Output commit                                                       *)

(* "An output can be viewed as a 0-optimistic message": it is released when
   every interval it depends on is known stable.  For the commit-tracking
   protocol that is the all-entries-NULL condition of Section 4.2; checking
   coverage directly gives the same answer and also serves the fixed-vector
   baselines, whose entries are never elided. *)
let output_ready t po =
  List.for_all (fun (j, e) -> stable_in_log t j e) (Dep_vector.non_null po.po_tdv)

let commit_output t ~now po =
  Hashtbl.remove t.buffered_out_ids po.po_id;
  Hashtbl.remove t.assemblies po.po_id;
  Hashtbl.replace t.committed_ids po.po_id ();
  Store.log_announcement t.store (Wire.Committed po.po_id);
  t.outputs_log <- (po.po_text, now) :: t.outputs_log;
  let m = t.metrics in
  m.outputs_committed <- m.outputs_committed + 1;
  Sim.Summary.add m.output_latency (now -. po.po_buffered);
  trace t ~now
    (Output_committed
       { pid = t.pid; id = po.po_id; text = po.po_text; latency = now -. po.po_buffered })

(* --- Direct-tracking commit assembly (Section 5's tradeoff) --------- *)

(* What this process can answer about one of its own intervals. *)
let local_dep_info t (interval : Entry.t) =
  match Hashtbl.find_opt t.direct_parents interval with
  | Some parents ->
    Wire.Info { stable = stable_in_log t t.pid interval; parents }
  | None ->
    if Entry.equal interval Entry.initial then
      Wire.Info { stable = true; parents = [] }
    else Wire.Gone

let assembly_member asm key =
  match Hashtbl.find_opt asm.members key with
  | Some st -> st
  | None ->
    let st = { m_stable = false; m_expanded = false; m_queried = false } in
    Hashtbl.add asm.members key st;
    st

let assembly_absorb t asm (pid, interval) (info : Wire.dep_info) =
  let st = assembly_member asm (pid, interval) in
  match info with
  | Wire.Gone ->
    (* The interval was rolled back: this output is orphan and will be
       pruned when the corresponding announcement rolls us back too. *)
    ()
  | Wire.Info { stable; parents } ->
    if stable then st.m_stable <- true;
    if not st.m_expanded then begin
      st.m_expanded <- true;
      List.iter
        (fun (p, e) -> ignore (assembly_member asm (p, e) : member_state))
        parents
    end;
    ignore t

let assembly_complete asm =
  Hashtbl.fold
    (fun _ st acc -> acc && st.m_stable && st.m_expanded)
    asm.members true

(* Advance one assembly: resolve local members, query remote owners about
   unresolved ones.  Queries are re-sent on every poll; they are idempotent
   and their volume is precisely the assembly cost Section 5 talks about. *)
let assembly_step t ~now asm =
  ignore now;
  let pending_remote = Hashtbl.create 4 in
  let local = ref [] in
  Hashtbl.iter
    (fun (pid, interval) st ->
      if not (st.m_stable && st.m_expanded) then
        if pid = t.pid then local := interval :: !local
        else if not st.m_queried then begin
          st.m_queried <- true;
          Hashtbl.replace pending_remote pid
            (interval :: (try Hashtbl.find pending_remote pid with Not_found -> []))
        end)
    asm.members;
  List.iter
    (fun interval -> assembly_absorb t asm (t.pid, interval) (local_dep_info t interval))
    !local;
  Hashtbl.iter
    (fun owner intervals ->
      t.metrics.dep_queries <- t.metrics.dep_queries + 1;
      push t
        (Unicast { dst = owner; packet = Wire.Dep_query { from_ = t.pid; intervals } }))
    pending_remote

let check_output_buffer t ~now =
  match (proto t).tracking with
  | Config.Transitive ->
    let ready, waiting = List.partition (output_ready t) t.out_buf in
    t.out_buf <- waiting;
    List.iter (commit_output t ~now) ready
  | Config.Direct ->
    let ready, waiting =
      List.partition
        (fun po ->
          match Hashtbl.find_opt t.assemblies po.po_id with
          | Some asm ->
            (* keep resolving local members until a fixpoint, then decide *)
            let rec settle () =
              let before = Hashtbl.length asm.members in
              let unstable_local =
                Hashtbl.fold
                  (fun (pid, interval) st acc ->
                    if pid = t.pid && not (st.m_stable && st.m_expanded) then
                      (pid, interval) :: acc
                    else acc)
                  asm.members []
              in
              List.iter
                (fun (_, interval) ->
                  assembly_absorb t asm (t.pid, interval) (local_dep_info t interval))
                unstable_local;
              if Hashtbl.length asm.members > before then settle ()
            in
            settle ();
            assembly_complete asm
          | None -> false)
        t.out_buf
    in
    t.out_buf <- waiting;
    List.iter (commit_output t ~now) ready;
    List.iter
      (fun po ->
        match Hashtbl.find_opt t.assemblies po.po_id with
        | Some asm -> assembly_step t ~now asm
        | None -> ())
      waiting

(* Explicit-context variant of [buffer_output], for the same reason as
   {!send_message_at}: partitioned replay regenerates outputs out of log
   order, so their identity and dependency snapshot come from the metadata
   pass, not from the node's live interval. *)
let rec buffer_output_at t ~now ~interval ~tdv ~idx text =
  let oid = { Wire.out_interval = interval; out_idx = idx } in
  if Hashtbl.mem t.committed_ids oid || Hashtbl.mem t.buffered_out_ids oid then ()
  else begin
    Hashtbl.replace t.buffered_out_ids oid ();
    let po =
      { po_id = oid; po_text = text; po_tdv = Dep_vector.copy tdv; po_buffered = now }
    in
    t.out_buf <- t.out_buf @ [ po ];
    (match (proto t).tracking with
    | Config.Direct ->
      let asm = { members = Hashtbl.create 8 } in
      ignore (assembly_member asm (t.pid, t.current) : member_state);
      Hashtbl.replace t.assemblies oid asm
    | Config.Transitive -> ());
    trace t ~now (Output_buffered { pid = t.pid; id = oid; text });
    if (proto t).output_driven_logging then begin
      (* Force logging progress at the processes the output depends on
         instead of waiting for their periodic notifications (Section 2's
         output-driven logging alternative, reference [6]). *)
      Dep_vector.iteri po.po_tdv ~f:(fun j e ->
          match e with
          | Some _ when j <> t.pid ->
            push t (Unicast { dst = j; packet = Wire.Flush_request { from_ = t.pid } })
          | Some _ | None -> ());
      do_flush t ~now ~ack:true
    end
  end

(* ------------------------------------------------------------------ *)
(* Flush: asynchronous logging progress                                *)

and do_flush ?(forced = false) t ~now ~ack =
  ignore
    ((if forced then Store.flush_forced t.store else Store.flush t.store) : int);
  (* A brownout-refused flush left records volatile: nothing new is stable,
     so neither stability nor acks may advance — the K rule keeps holding
     the affected sends, which is the graceful-degradation contract. *)
  if Store.volatile_length t.store > 0 then begin
    check_send_buffer t ~now;
    check_output_buffer t ~now
  end
  else begin
    advance_stability t ~now;
    elide_tdv t;
    do_flush_acks t ~ack;
    check_send_buffer t ~now;
    check_output_buffer t ~now
  end

and do_flush_acks t ~ack =
  if ack && t.unacked <> [] then begin
    (* Everything delivered so far is now stable: tell the senders so they
       can garbage-collect their retransmission archives. *)
    let by_src = Hashtbl.create 8 in
    List.iter
      (fun (src, id) ->
        let ids = try Hashtbl.find by_src src with Not_found -> [] in
        Hashtbl.replace by_src src (id :: ids))
      t.unacked;
    Hashtbl.iter
      (fun src ids ->
        t.metrics.acks_sent <- t.metrics.acks_sent + 1;
        push t (Unicast { dst = src; packet = Wire.Ack { from_ = t.pid; to_ = src; ids } }))
      by_src;
    t.unacked <- []
  end

let buffer_output t ~now text =
  let idx = t.out_idx in
  t.out_idx <- t.out_idx + 1;
  buffer_output_at t ~now ~interval:t.current ~tdv:t.tdv ~idx text

(* ------------------------------------------------------------------ *)
(* Deliver_message (Figure 2) and the delivery loop                    *)

(* Partition of a payload under the application's decomposition, or [None]
   when the app is unpartitioned or the message is a barrier. *)
let part_of_payload t payload =
  match t.app.App_intf.partitioning with
  | None -> None
  | Some pt -> pt.part_of_msg ~n:t.app_n payload

let mark_part_dirty t payload =
  if t.part_dirty <> [||] then
    match part_of_payload t payload with
    | Some p -> t.part_dirty.(p) <- t.part_dirty.(p) + 1
    | None -> ()

let deliver t ~now ~replay (m : 'msg Wire.app_message) =
  let pred = t.current in
  ensure_deps t m.dep;
  (match (proto t).tracking with
  | Config.Transitive ->
    let wire_vec = Dep_vector.of_non_null ~n:t.n m.dep in
    Dep_vector.merge_max ~into:t.tdv wire_vec
  | Config.Direct ->
    (* No vector merging: the piggybacked entry only records the direct
       parent. *)
    ());
  t.current <- Entry.next_interval t.current;
  Dep_vector.set t.tdv t.pid (Some t.current);
  elide_tdv t;
  t.send_idx <- 0;
  t.out_idx <- 0;
  Hashtbl.replace t.direct_parents t.current
    ((t.pid, pred) :: (if m.src >= 0 then [ (m.src, m.send_interval) ] else []));
  Hashtbl.replace t.delivered m.id t.current;
  if replay then t.metrics.replayed <- t.metrics.replayed + 1
  else begin
    Store.append_volatile t.store
      (Delivery
         {
           lg_msg = m;
           lg_interval = t.current;
           lg_window = t.recovery <> None;
         });
    (match t.recovery with
    | Some rc -> rc.rc_live_delivered <- true
    | None -> ());
    if m.src >= 0 then t.unacked <- (m.src, m.id) :: t.unacked;
    t.metrics.deliveries <- t.metrics.deliveries + 1;
    trace t ~now (Message_delivered { id = m.id; dst = t.pid; interval = t.current })
  end;
  mark_part_dirty t m.payload;
  let state', effects = t.app.handle ~pid:t.pid ~n:t.app_n t.state ~src:m.src m.payload in
  t.state <- state';
  trace t ~now
    (Interval_started
       {
         pid = t.pid;
         interval = t.current;
         pred = Some pred;
         by = Some m.id;
         sender_interval = (if m.src >= 0 then Some m.send_interval else None);
         digest = t.app.digest state';
         replay;
       });
  List.iter
    (function
      | App_intf.Send { dst; msg; k } -> send_message t ~now ~dst ~k msg
      | App_intf.Output text -> buffer_output t ~now text)
    effects;
  (* Pessimistic logging: the volatile buffer is written synchronously on
     every delivery, before any message leaves the send buffer. *)
  if (proto t).sync_logging && not replay then do_flush t ~now ~ack:true
  else begin
    (* Low-risk sends leave immediately; only riskier-than-K ones wait. *)
    check_send_buffer t ~now;
    check_output_buffer t ~now
  end

(* During a recovery window only messages whose partition has fully
   replayed may be delivered: a new delivery is logged {e after} every
   replayed record, so serially it happens after all of them — executing
   it on a partition whose replay is still pending would read a slice the
   remaining replay is about to change.  Barrier-class messages (and every
   message of an unpartitioned app — vacuous, since those recover
   serially) wait for full recovery.  Parked messages simply stay in the
   receive buffer. *)
let partition_admissible t (m : 'msg Wire.app_message) =
  match t.recovery with
  | None -> true
  | Some rc -> (
    match part_of_payload t m.Wire.payload with
    | Some p ->
      p >= 0 && p < rc.rc_parts
      && rc.rc_part_pending.(p) = 0
      && rc.rc_barriers_pending = 0
    | None -> false)

let rec drain t ~now =
  let rec find = function
    | [] -> None
    | ((_, m) as cell) :: _ when deliverable t m && partition_admissible t m ->
      Some cell
    | _ :: rest -> find rest
  in
  match find t.recv_buf with
  | None -> ()
  | Some ((arrived, m) as cell) ->
    t.recv_buf <- List.filter (fun x -> x != cell) t.recv_buf;
    Sim.Summary.add t.metrics.delivery_delay (now -. arrived);
    deliver t ~now ~replay:false m;
    drain t ~now

let recheck t ~now =
  drain t ~now;
  check_send_buffer t ~now;
  check_output_buffer t ~now

(* ------------------------------------------------------------------ *)
(* Partitioned replay engine (fast recovery)                           *)

(* Re-execute one pre-analysed log record in its own context.  No trace
   event is emitted here: the state a partitioned replay holds mid-way is
   an interleaving-dependent hybrid whose digest matches no serially
   created interval, so per-record replay certification would flag false
   divergence.  Certification happens once, at the frontier, when the
   state has converged to the serial result. *)
let replay_exec t ~now (ri : 'msg replay_item) =
  t.metrics.replayed <- t.metrics.replayed + 1;
  let state', effects =
    t.app.handle ~pid:t.pid ~n:t.app_n t.state ~src:ri.ri_msg.Wire.src
      ri.ri_msg.Wire.payload
  in
  t.state <- state';
  let sidx = ref 0 in
  let oidx = ref 0 in
  List.iter
    (function
      | App_intf.Send { dst; msg; k } ->
        let idx = !sidx in
        incr sidx;
        send_message_at t ~now ~interval:ri.ri_interval ~tdv:ri.ri_tdv ~idx ~dst ~k
          msg
      | App_intf.Output text ->
        let idx = !oidx in
        incr oidx;
        buffer_output_at t ~now ~interval:ri.ri_interval ~tdv:ri.ri_tdv ~idx text)
    effects

(* Replay up to [budget] records (checkpoint-covered records are free),
   preferring partition [prefer] when it still has work — the on-demand
   hook: a daemon replays the partitions clients are actually waiting on
   first.  Returns the number of records re-executed.  On completion,
   certifies the frontier interval against its live digest (unless the
   frontier record was delivered inside an earlier recovery window) and
   emits [Recovery_completed]. *)
let do_replay_step t ~now ?prefer ~budget () =
  match t.recovery with
  | None -> 0
  | Some rc ->
    let executed = ref 0 in
    let finished = ref false in
    while (not !finished) && !executed < max budget 1 do
      match rc.rc_stages with
      | [] -> finished := true
      | stage :: rest -> (
        let nonempty p = not (Queue.is_empty stage.rs_queues.(p)) in
        let pick =
          match prefer with
          | Some p when p >= 0 && p < rc.rc_parts && nonempty p -> Some p
          | _ ->
            let rec probe i =
              if i = rc.rc_parts then None
              else
                let p = (rc.rc_next + i) mod rc.rc_parts in
                if nonempty p then Some p else probe (i + 1)
            in
            probe 0
        in
        match pick with
        | Some p ->
          let ri = Queue.pop stage.rs_queues.(p) in
          rc.rc_next <- (p + 1) mod rc.rc_parts;
          rc.rc_part_pending.(p) <- rc.rc_part_pending.(p) - 1;
          if not ri.ri_covered then begin
            replay_exec t ~now ri;
            if t.part_dirty <> [||] then t.part_dirty.(p) <- t.part_dirty.(p) + 1;
            rc.rc_replayed <- rc.rc_replayed + 1;
            incr executed
          end
        | None ->
          (* Stage drained: run its barrier at its exact position. *)
          (match stage.rs_barrier with
          | Some ri ->
            replay_exec t ~now ri;
            rc.rc_barriers_pending <- rc.rc_barriers_pending - 1;
            rc.rc_replayed <- rc.rc_replayed + 1;
            incr executed
          | None -> ());
          rc.rc_stages <- rest)
    done;
    if rc.rc_stages = [] then begin
      t.recovery <- None;
      (match rc.rc_frontier with
      | Some ri when (not ri.ri_window) && not rc.rc_live_delivered ->
        (* The state has converged to the serial replay result, which is
           exactly the live state after the frontier (last logged)
           delivery: certify it against the live digest.  A window-marked
           frontier was itself executed on a partially recovered state, so
           its live digest covers no serially reachable state — skip.
           Likewise when fresh deliveries were served during the window
           (on-demand recovery): the completed state is already past the
           frontier, so its digest certifies nothing. *)
        trace t ~now
          (Interval_started
             {
               pid = t.pid;
               interval = ri.ri_interval;
               pred = None;
               by = Some ri.ri_msg.Wire.id;
               sender_interval =
                 (if ri.ri_msg.Wire.src >= 0 then Some ri.ri_msg.Wire.send_interval
                  else None);
               digest = t.app.digest t.state;
               replay = true;
             })
      | Some _ | None -> ());
      trace t ~now (Recovery_completed { pid = t.pid; replayed = rc.rc_replayed })
    end;
    (* Newly recovered partitions may have parked requests; regenerated
       sends and outputs release under the usual rules. *)
    recheck t ~now;
    !executed

(* Complete any in-progress partitioned replay synchronously.  Rollback,
   full checkpoints and announcements that force a rollback all reason
   about a single coherent state, so they drain the recovery first. *)
let finish_recovery t ~now =
  while t.recovery <> None do
    ignore (do_replay_step t ~now ~budget:max_int () : int)
  done

(* ------------------------------------------------------------------ *)
(* Rebuild: common replay engine for Restart and Rollback (Figure 3)   *)

(* Incarnation markers persisted in the sync area, latest-writer-wins per
   log position: a marker supersedes every earlier marker at the same or a
   later position, mirroring how a rollback truncates the future it was
   part of. *)
let effective_markers t ~from_pos =
  let all =
    List.fold_left
      (fun acc r ->
        match r with
        | Wire.Marker { entry; log_pos } ->
          List.filter (fun (_, p) -> p < log_pos) acc @ [ (entry, log_pos) ]
        | Wire.Ann_logged _ | Wire.Committed _ | Wire.Gc_stubs _
        | Wire.Part_ckpt _ -> acc)
      []
      (Store.announcements t.store)
  in
  List.filter (fun (_, p) -> p >= from_pos) all

(* End of an incarnation's stable prefix: remember its frontier, then
   continue as the marker interval. *)
let apply_marker t ((entry : Entry.t), _pos) =
  t.log_tab.(t.pid) <- Entry_set.insert t.log_tab.(t.pid) t.current;
  Hashtbl.replace t.direct_parents entry [ (t.pid, t.current) ];
  t.current <- entry;
  Dep_vector.set t.tdv t.pid (Some entry);
  t.log_tab.(t.pid) <- Entry_set.insert t.log_tab.(t.pid) entry;
  t.send_idx <- 0;
  t.out_idx <- 0

(* Re-instate checkpointed pending sends and outputs that are not already
   accounted for (released since the checkpoint, still buffered live, or
   committed). *)
let reinstate_saved_sends t svs =
  List.iter
    (fun sv ->
      if
        (not (Hashtbl.mem t.released_ids sv.sv_id))
        && not (Hashtbl.mem t.buffered_send_ids sv.sv_id)
      then begin
        ensure_deps t sv.sv_dep;
        Hashtbl.replace t.buffered_send_ids sv.sv_id ();
        t.send_buf <-
          t.send_buf
          @ [
              {
                ps_id = sv.sv_id;
                ps_dst = sv.sv_dst;
                ps_interval = sv.sv_interval;
                ps_tdv = Dep_vector.of_non_null ~n:t.n sv.sv_dep;
                ps_payload = sv.sv_payload;
                ps_enqueued = sv.sv_enqueued;
                ps_k = sv.sv_k;
              };
            ]
      end)
    svs

let reinstate_saved_outs t sos =
  List.iter
    (fun so ->
      if
        (not (Hashtbl.mem t.committed_ids so.so_id))
        && not (Hashtbl.mem t.buffered_out_ids so.so_id)
      then begin
        ensure_deps t so.so_dep;
        Hashtbl.replace t.buffered_out_ids so.so_id ();
        t.out_buf <-
          t.out_buf
          @ [
              {
                po_id = so.so_id;
                po_text = so.so_text;
                po_tdv = Dep_vector.of_non_null ~n:t.n so.so_dep;
                po_buffered = so.so_buffered;
              };
            ]
      end)
    sos

(* Restore a released-message archive snapshot: anything not already
   re-archived or still buffered comes back as a released message replay
   will not regenerate. *)
let reinstate_archive t msgs =
  List.iter
    (fun (m : 'msg Wire.app_message) ->
      if (not (Archive.mem t.archive m.id)) && not (Hashtbl.mem t.buffered_send_ids m.id)
      then begin
        Archive.add t.archive m;
        Hashtbl.replace t.released_ids m.id ()
      end)
    msgs

(* Restore the checkpoint [ck] and replay the stable log through the
   application, applying incarnation markers at their recorded positions.
   Stops before the first record satisfying [halt] and returns the log
   position reached. *)
let rebuild t ~now ~ck ~halt =
  t.state <- ck.ck_state;
  t.current <- ck.ck_current;
  ensure_deps t ck.ck_tdv;
  t.tdv <- Dep_vector.of_non_null ~n:t.n ck.ck_tdv;
  t.send_idx <- 0;
  t.out_idx <- 0;
  reinstate_saved_sends t ck.ck_sends;
  reinstate_saved_outs t ck.ck_outs;
  let markers = effective_markers t ~from_pos:ck.ck_log_pos in
  let records = Store.stable_log_from t.store ~pos:ck.ck_log_pos in
  let pos = ref ck.ck_log_pos in
  let requeued = ref [] in
  let rec walk markers records =
    match markers, records with
    | ((_, p) as m) :: ms, _ when p <= !pos ->
      apply_marker t m;
      walk ms records
    | _, [] -> ()
    | _, Requeued m :: rs ->
      (* Not a state transition: remember it for the caller (Restart puts
         undelivered ones back into the receive buffer). *)
      requeued := m :: !requeued;
      incr pos;
      walk markers rs
    | _, (Delivery d as r) :: rs ->
      if halt r then ()
      else begin
        deliver t ~now ~replay:true d.lg_msg;
        assert (Entry.equal t.current d.lg_interval);
        incr pos;
        walk markers rs
      end
  in
  walk markers records;
  (!pos, List.rev !requeued)

(* ------------------------------------------------------------------ *)
(* Rollback (Figure 3)                                                 *)

let cancel_send t ~now (ps : 'msg pending_send) =
  Hashtbl.remove t.buffered_send_ids ps.ps_id;
  t.metrics.cancelled_sends <- t.metrics.cancelled_sends + 1;
  trace t ~now (Send_cancelled { id = ps.ps_id; src = t.pid })

let rollback t ~now ~(because : Wire.announcement) =
  let ann = because in
  (* A rollback reasons about one coherent state and truncates the log the
     pending replay items point into: complete the replay first. *)
  finish_recovery t ~now;
  t.metrics.induced_rollbacks <- t.metrics.induced_rollbacks + 1;
  let old_current = t.current in
  (* "Log all the unlogged messages to the stable storage": the surviving
     prefix must be replayable.  No stability is claimed here — part of
     what we just wrote is about to be truncated.  Forced: a brownout
     refusal here would let the truncation below drop still-volatile
     deliveries the process has already absorbed. *)
  ignore (Store.flush_forced t.store : int);
  let j = ann.from_ in
  let ck_ok =
    match (proto t).tracking with
    | Config.Transitive ->
      fun ck ->
        (match List.assoc_opt j ck.ck_tdv with
        | Some e -> not (orphan_entry ann e)
        | None -> true)
    | Config.Direct ->
      (* The checkpoint's vector records no remote dependencies, so locate
         the first directly-orphan record and restore behind it.  Direct
         tracking forbids log GC, so the scan always reaches the record. *)
      let base = Store.log_base t.store in
      let halt_pos = ref (Store.stable_log_length t.store) in
      List.iteri
        (fun i record ->
          match record with
          | Delivery d
            when base + i < !halt_pos
                 && List.exists
                      (fun (p, e) -> p = j && orphan_entry ann e)
                      d.lg_msg.Wire.dep ->
            halt_pos := base + i
          | Delivery _ | Requeued _ -> ())
        (Store.stable_log_from t.store ~pos:base);
      fun ck -> ck.ck_log_pos <= !halt_pos
  in
  let ck =
    match Store.restore_checkpoint t.store ~satisfying:ck_ok with
    | Some ck -> ck
    | None ->
      (* The initial checkpoint has an empty vector at position 0 and
         satisfies either predicate, and it is never discarded. *)
      assert false
  in
  t.ckpt_ops <- t.ckpt_ops + 1;
  (* Replay "till condition (I) is not satisfied": stop before the first
     logged delivery whose piggyback would make us depend on a rolled-back
     interval of P_j. *)
  let halt = function
    | Requeued _ -> false
    | Delivery d ->
      List.exists (fun (i, e) -> i = j && orphan_entry ann e) d.lg_msg.Wire.dep
  in
  let stop_pos, walked_requeued = rebuild t ~now ~ck ~halt in
  let stop = t.current in
  let removed = Store.truncate_stable_log t.store ~keep:stop_pos in
  let first_undone =
    match
      List.find_map (function Delivery d -> Some d.lg_interval | Requeued _ -> None) removed
    with
    | Some interval -> interval
    | None -> old_current
  in
  (* "Among remaining logged messages, discard orphans and add non-orphans
     to Receive buffer."  The survivors are also re-persisted as Requeued
     records: once truncated out of the delivery log they would otherwise
     exist only in the volatile receive buffer, and a crash before their
     re-delivery would lose them for good (their senders may have
     garbage-collected them after the original deliveries became stable). *)
  List.iter
    (fun lg ->
      let m = match lg with Delivery d -> d.lg_msg | Requeued m -> m in
      if orphan_wire t m && not (breakage t).break_orphan_check then begin
        t.metrics.orphans_discarded <- t.metrics.orphans_discarded + 1;
        trace t ~now
          (Message_discarded { id = m.Wire.id; dst = t.pid; reason = Trace.Orphan_message })
      end
      else begin
        Store.append_volatile t.store (Requeued m);
        if not (buffered_in_recv t m.Wire.id) then
          t.recv_buf <- t.recv_buf @ [ (now, m) ]
      end)
    removed;
  (* Requeued records inside the replayed prefix are messages an {e
     earlier} rollback re-buffered and whose re-delivery this restore just
     undid (or never happened).  Restart re-buffers exactly these after a
     crash, so the live node must too — dropping them here would leave the
     store remembering a message the process forgot, and the next restart
     would deliver it, diverging from the live run. *)
  List.iter
    (fun (m : 'msg Wire.app_message) ->
      if
        (not (Hashtbl.mem t.delivered m.Wire.id))
        && (not (buffered_in_recv t m.Wire.id))
        && not (orphan_wire t m)
      then t.recv_buf <- t.recv_buf @ [ (now, m) ])
    walked_requeued;
  ignore (Store.flush_forced t.store : int);
  (* Prune volatile structures of the undone intervals.  State-interval
     indices are monotone along a process history, so "undone" is exactly
     "index greater than the replay stop point". *)
  let undone (e : Entry.t) = e.sii > stop.sii in
  Hashtbl.filter_map_inplace
    (fun _ interval -> if undone interval then None else Some interval)
    t.delivered;
  Hashtbl.filter_map_inplace
    (fun interval parents -> if undone interval then None else Some parents)
    t.direct_parents;
  t.unacked <- List.filter (fun (_, id) -> Hashtbl.mem t.delivered id) t.unacked;
  let cancelled, kept_sends =
    List.partition (fun ps -> undone ps.ps_interval) t.send_buf
  in
  t.send_buf <- kept_sends;
  List.iter (cancel_send t ~now) cancelled;
  let dropped_outs, kept_outs =
    List.partition (fun po -> undone po.po_id.Wire.out_interval) t.out_buf
  in
  t.out_buf <- kept_outs;
  List.iter
    (fun po ->
      Hashtbl.remove t.buffered_out_ids po.po_id;
      Hashtbl.remove t.assemblies po.po_id)
    dropped_outs;
  t.metrics.undone_intervals <- t.metrics.undone_intervals + (old_current.sii - stop.sii);
  (* Start a new incarnation, "as if it itself has failed".  The new number
     must exceed every incarnation this process ever used; [old_current.inc]
     is that maximum.  The bump is persisted so that a crash immediately
     after this rollback cannot lead to number reuse. *)
  let new_current = Entry.make ~inc:(old_current.inc + 1) ~sii:(stop.sii + 1) in
  t.current <- new_current;
  Hashtbl.replace t.direct_parents new_current [ (t.pid, stop) ];
  Store.log_announcement t.store (Wire.Marker { entry = new_current; log_pos = stop_pos });
  Dep_vector.set t.tdv t.pid (Some new_current);
  t.log_tab.(t.pid) <- Entry_set.insert t.log_tab.(t.pid) stop;
  t.log_tab.(t.pid) <- Entry_set.insert t.log_tab.(t.pid) new_current;
  t.frontier <- new_current;
  t.send_idx <- 0;
  t.out_idx <- 0;
  (* The pre-restore flush made the surviving prefix stable; record that
     transition (the new marker interval is stable by construction). *)
  trace t ~now (Stability_advanced { pid = t.pid; upto = stop });
  trace t ~now
    (Rolled_back
       { pid = t.pid; restored = stop; first_undone; new_current; because = ann });
  if (proto t).announce_all_rollbacks then begin
    (* Pre-Theorem 1 behaviour (Strom & Yemini): every rollback is
       announced, not just failures. *)
    let fa =
      {
        Wire.from_ = t.pid;
        ending = Entry.make ~inc:old_current.inc ~sii:stop.sii;
        failure = false;
      }
    in
    Store.log_announcement t.store (Wire.Ann_logged fa);
    note_ann t fa;
    t.iet.(t.pid) <- Entry_set.insert_min t.iet.(t.pid) fa.ending;
    t.log_tab.(t.pid) <- Entry_set.insert t.log_tab.(t.pid) fa.ending;
    t.metrics.announcements_sent <- t.metrics.announcements_sent + 1;
    push t (Broadcast (Wire.Ann fa))
  end

(* ------------------------------------------------------------------ *)
(* Receive_failure_ann (Figure 3)                                      *)

let discard_orphan_receives t ~now =
  let orphans, kept =
    if (breakage t).break_orphan_check then ([], t.recv_buf)
    else List.partition (fun (_, m) -> orphan_wire t m) t.recv_buf
  in
  t.recv_buf <- kept;
  List.iter
    (fun ((_, m) : float * 'msg Wire.app_message) ->
      t.metrics.orphans_discarded <- t.metrics.orphans_discarded + 1;
      trace t ~now
        (Message_discarded { id = m.id; dst = t.pid; reason = Trace.Orphan_message }))
    orphans

let cancel_orphan_sends t ~now =
  let orphans, kept = List.partition (fun ps -> orphan_vector t ps.ps_tdv) t.send_buf in
  t.send_buf <- kept;
  List.iter (cancel_send t ~now) orphans

let retransmit t ~dst =
  Archive.iter_oldest t.archive (fun (m : 'msg Wire.app_message) ->
      if m.dst = dst && not (orphan_wire t m) then begin
        t.metrics.retransmissions <- t.metrics.retransmissions + 1;
        push t (Unicast { dst; packet = Wire.App m })
      end)

(* Periodic retransmission (armed by [Config.timing.retransmit_interval]):
   re-send the archived messages whose per-message backoff has expired
   (not yet acked, not orphan).  On a lossless network the archive drains
   via acks before the first tick; on a lossy one this is what makes
   delivery eventually happen.  The backoff ({!Archive.due_oldest}) keeps
   an undrained archive from flooding the wire every tick and starving the
   very acks that would drain it. *)
let do_retransmit_tick t =
  Archive.due_oldest t.archive (fun (m : 'msg Wire.app_message) ->
      if not (orphan_wire t m) then begin
        t.metrics.retransmissions <- t.metrics.retransmissions + 1;
        push t (Unicast { dst = m.Wire.dst; packet = Wire.App m })
      end)

let receive_ann t ~now (ann : Wire.announcement) =
  let j = ann.from_ in
  (* Dedup: a re-broadcast, a duplicated packet or a gossiped copy of an
     announcement already absorbed is a no-op (announcement contents are
     unique per rollback/restart, so structural equality identifies them). *)
  if j = t.pid || Hashtbl.mem t.anns_seen ann then ()
  else begin
    ensure_member t j;
    note_ann t ann;
    trace t ~now (Announcement_received { pid = t.pid; ann });
    (* "Synchronously log the received announcement". *)
    Store.log_announcement t.store (Wire.Ann_logged ann);
    t.iet.(j) <- Entry_set.insert_min t.iet.(j) ann.ending;
    (* Corollary 1: the announcement doubles as a logging-progress
       notification that the ending interval is stable. *)
    t.log_tab.(j) <- Entry_set.insert t.log_tab.(j) ann.ending;
    if ann.ending.inc > t.max_ann_inc.(j) then t.max_ann_inc.(j) <- ann.ending.inc;
    discard_orphan_receives t ~now;
    cancel_orphan_sends t ~now;
    Archive.remove_if t.archive (orphan_wire t);
    (match (proto t).tracking with
    | Config.Transitive -> (
      match Dep_vector.get t.tdv j with
      | Some e when orphan_entry ann e -> rollback t ~now ~because:ann
      | Some _ | None -> ())
    | Config.Direct ->
      (* Only direct dependencies are visible; transitive orphans are caught
         by the cascade of rollback announcements this rollback emits. *)
      let hit =
        Hashtbl.fold
          (fun (id : Wire.identity) _interval acc ->
            acc || (id.origin = j && orphan_entry ann id.origin_interval))
          t.delivered false
      in
      if hit then rollback t ~now ~because:ann);
    elide_tdv t;
    recheck t ~now;
    if ann.failure && (proto t).retransmit_on_failure then retransmit t ~dst:j
  end

(* ------------------------------------------------------------------ *)
(* Receive_log (Figure 3)                                              *)

let receive_notice t ~now (notice : Wire.notice) =
  List.iter
    (fun (j, entries) ->
      ensure_member t j;
      List.iter (fun e -> t.log_tab.(j) <- Entry_set.insert t.log_tab.(j) e) entries)
    notice.Wire.rows;
  elide_tdv t;
  recheck t ~now;
  (* Gossiped announcements (anti-entropy against announcement loss): each
     is absorbed exactly as a direct broadcast would be; already-seen ones
     are deduplicated inside [receive_ann]. *)
  List.iter (fun ann -> receive_ann t ~now ann) notice.Wire.anns

let receive_ack t (ack : Wire.ack) =
  List.iter (fun id -> Archive.remove t.archive id) ack.ids

(* ------------------------------------------------------------------ *)
(* Receive_message (Figure 2)                                          *)

let receive_app t ~now (m : 'msg Wire.app_message) =
  match
    if (breakage t).break_dup_suppression then None
    else if buffered_in_recv t m.id then Some `Buffered
    else if Hashtbl.mem t.delivered m.id || Hashtbl.mem t.stubs m.id then
      Some `Delivered
    else None
  with
  | Some kind ->
    t.metrics.duplicates_dropped <- t.metrics.duplicates_dropped + 1;
    trace t ~now (Message_discarded { id = m.id; dst = t.pid; reason = Trace.Duplicate });
    (* The duplicate proves the sender still archives this message; if its
       delivery is already stable here, ack it so the sender can GC.  A
       buffered copy is not even delivered yet, let alone stable. *)
    if
      kind = `Delivered
      && m.src >= 0
      && not (List.exists (fun (_, id) -> id = m.id) t.unacked)
    then
      push t (Unicast { dst = m.src; packet = Wire.Ack { from_ = t.pid; to_ = m.src; ids = [ m.id ] } })
  | None ->
    if orphan_wire t m && not (breakage t).break_orphan_check then begin
      t.metrics.orphans_discarded <- t.metrics.orphans_discarded + 1;
      trace t ~now (Message_discarded { id = m.id; dst = t.pid; reason = Trace.Orphan_message })
    end
    else begin
      t.recv_buf <- t.recv_buf @ [ (now, m) ];
      drain t ~now
    end

(* ------------------------------------------------------------------ *)
(* Checkpoint (Figure 3)                                               *)

(* Log/checkpoint garbage collection.  A checkpoint all of whose
   dependency entries are currently known stable can never be orphaned: if
   it were, it would transitively depend on a never-stable lost interval,
   whose entry is never elided (Theorem 3) and can never be covered — so
   the vector would contain a never-stable entry.  Rollback therefore
   never restores past such a checkpoint and Restart never replays records
   before it: older checkpoints and the log prefix are reclaimable.  Two
   safeguards: the boundary never crosses a still-undelivered Requeued
   record (the only persistent copy of its message), and the identities of
   collected deliveries are persisted as Gc_stubs in the synchronous area
   so duplicate suppression survives crashes. *)
let gc_anchor t =
  let all_stable entries = List.for_all (fun (j, e) -> stable_in_log t j e) entries in
  if Dep_vector.non_null_count t.tdv = 0 then Some (Store.stable_log_length t.store, None)
  else
    List.find_map
      (fun ck -> if all_stable ck.ck_tdv then Some (ck.ck_log_pos, Some ck) else None)
      (Store.checkpoints t.store)

let run_gc t =
  match gc_anchor t with
  | None -> ()
  | Some (anchor_pos, anchor_ck) ->
    let base = Store.log_base t.store in
    if anchor_pos > base then begin
      let prefix = Store.stable_log_from t.store ~pos:base in
      let boundary = ref base in
      let stub_ids = ref [] in
      (try
         List.iter
           (fun record ->
             if !boundary >= anchor_pos then raise Exit;
             (match record with
             | Requeued m when not (Hashtbl.mem t.delivered m.Wire.id) -> raise Exit
             | Delivery d -> stub_ids := d.lg_msg.Wire.id :: !stub_ids
             | Requeued m -> stub_ids := m.Wire.id :: !stub_ids);
             incr boundary)
           prefix
       with Exit -> ());
      if !boundary > base then begin
        (* Persist the stub identities before dropping the records. *)
        Store.log_announcement t.store (Wire.Gc_stubs (List.rev !stub_ids));
        List.iter (fun id -> Hashtbl.replace t.stubs id ()) !stub_ids;
        t.metrics.gc_records <-
          t.metrics.gc_records + Store.discard_log_prefix t.store ~before:!boundary
      end
    end;
    (* Checkpoints older than the anchor are never restored again. *)
    (match anchor_ck with
    | Some anchor ->
      ignore (Store.prune_checkpoints_older_than t.store ~anchor:(fun c -> c == anchor) : int)
    | None ->
      (* anchor is the about-to-be-saved state: prune after it is saved *)
      ())

let do_checkpoint t ~now =
  (* A full checkpoint snapshots the whole state; a partially replayed
     hybrid is not a state serial replay can reach, so drain first.  The
     flush is forced: the checkpoint's log position must cover every
     delivery its state absorbed, brownout or not. *)
  finish_recovery t ~now;
  do_flush ~forced:true t ~now ~ack:true;
  let ck =
    {
      ck_current = t.current;
      ck_tdv = Dep_vector.non_null t.tdv;
      ck_state = t.state;
      ck_log_pos = Store.stable_log_length t.store;
      ck_sends =
        List.map
          (fun ps ->
            {
              sv_id = ps.ps_id;
              sv_dst = ps.ps_dst;
              sv_interval = ps.ps_interval;
              sv_dep = Dep_vector.non_null ps.ps_tdv;
              sv_payload = ps.ps_payload;
              sv_enqueued = ps.ps_enqueued;
              sv_k = ps.ps_k;
            })
          t.send_buf;
      ck_outs =
        List.map
          (fun po ->
            {
              so_id = po.po_id;
              so_text = po.po_text;
              so_dep = Dep_vector.non_null po.po_tdv;
              so_buffered = po.po_buffered;
            })
          t.out_buf;
      ck_archive = Archive.newest_first t.archive;
    }
  in
  if (proto t).gc_logs then run_gc t;
  Store.save_checkpoint t.store ck;
  if (proto t).gc_logs && ck.ck_tdv = [] then
    (* the state just checkpointed is itself a clean anchor *)
    ignore (Store.prune_checkpoints t.store ~keep_latest:1 : int);
  t.ckpt_ops <- t.ckpt_ops + 1;
  (* Corollary 2: after a checkpoint the dependency on the process's own
     current incarnation can be omitted. *)
  Dep_vector.set t.tdv t.pid None;
  trace t ~now (Checkpoint_taken { pid = t.pid; interval = t.current });
  recheck t ~now

(* ------------------------------------------------------------------ *)
(* Crash / Restart (Figure 3)                                          *)

let do_crash t ~now =
  let first_lost =
    match Store.volatile_peek t.store with
    | Some (Delivery d) -> Some d.lg_interval
    | Some (Requeued _) | None ->
      (* Requeued records are flushed as soon as they are written, so the
         volatile buffer starts with a delivery whenever it is non-empty. *)
      None
  in
  t.metrics.lost_intervals <- t.metrics.lost_intervals + Store.volatile_length t.store;
  ignore (Store.crash t.store : int);
  t.up <- false;
  t.recovery <- None;
  trace t ~now (Crashed { pid = t.pid; first_lost })

(* Shared restart prologue: wipe volatile state, rebuild durable knowledge
   from the synchronous area (announcements we logged — ours and others' —
   committed outputs, incarnation markers, per-partition checkpoints),
   re-seed the duplicate-suppression table from the whole stable log and
   locate the full checkpoint to rebuild from.  Returns the checkpoint and
   the surviving per-partition checkpoint candidates (latest record per
   partition, invalidated by any later marker that truncated below its
   covered prefix). *)
let restart_prologue t =
  t.metrics.restarts <- t.metrics.restarts + 1;
  (* Volatile state is gone. *)
  t.recovery <- None;
  if t.part_dirty <> [||] then Array.fill t.part_dirty 0 (Array.length t.part_dirty) 0;
  t.recv_buf <- [];
  t.send_buf <- [];
  t.out_buf <- [];
  Hashtbl.reset t.delivered;
  Hashtbl.reset t.stubs;
  Hashtbl.reset t.direct_parents;
  Hashtbl.reset t.assemblies;
  Hashtbl.reset t.released_ids;
  Hashtbl.reset t.buffered_send_ids;
  Hashtbl.reset t.buffered_out_ids;
  Hashtbl.reset t.committed_ids;
  Archive.clear t.archive;
  Hashtbl.reset t.anns_seen;
  t.anns_order <- [];
  t.unacked <- [];
  t.log_tab <- Array.make t.n Entry_set.empty;
  t.iet <- Array.make t.n Entry_set.empty;
  t.max_ann_inc <- Array.make t.n (-1);
  let parts =
    match t.app.App_intf.partitioning with Some pt -> pt.parts | None -> 0
  in
  let part_ck = Array.make (Stdlib.max parts 1) None in
  List.iter
    (function
      | Wire.Ann_logged (ann : Wire.announcement) ->
        (* Announcements persisted by a previous, wider incarnation are
           membership evidence too. *)
        ensure_member t ann.from_;
        note_ann t ann;
        t.iet.(ann.from_) <- Entry_set.insert_min t.iet.(ann.from_) ann.ending;
        t.log_tab.(ann.from_) <- Entry_set.insert t.log_tab.(ann.from_) ann.ending;
        if ann.ending.inc > t.max_ann_inc.(ann.from_) then
          t.max_ann_inc.(ann.from_) <- ann.ending.inc
      | Wire.Committed oid -> Hashtbl.replace t.committed_ids oid ()
      | Wire.Gc_stubs ids -> List.iter (fun id -> Hashtbl.replace t.stubs id ()) ids
      | Wire.Marker { log_pos; _ } ->
        (* A rollback truncated the log at [log_pos]: any partition
           checkpoint covering a longer prefix describes state that no
           longer exists. *)
        Array.iteri
          (fun p slot ->
            match slot with
            | Some (pos, _) when pos > log_pos -> part_ck.(p) <- None
            | Some _ | None -> ())
          part_ck
      | Wire.Part_ckpt { pc_part; pc_pos; pc_payload } ->
        if pc_part >= 0 && pc_part < parts then
          part_ck.(pc_part) <- Some (pc_pos, pc_payload))
    (Store.announcements t.store);
  let ck =
    match Store.latest_checkpoint t.store with
    | Some ck -> ck
    | None -> assert false (* the initial checkpoint always exists *)
  in
  t.ckpt_ops <- t.ckpt_ops + 1;
  (* Deliveries that predate the checkpoint are stable and still valid;
     their identities must survive into the duplicate-suppression table. *)
  List.iter
    (function
      | Delivery d -> Hashtbl.replace t.delivered d.lg_msg.Wire.id d.lg_interval
      | Requeued _ -> ())
    (Store.stable_log_from t.store ~pos:(Store.log_base t.store));
  (ck, part_ck)

(* Shared restart epilogue: announce the failure, persist the incarnation
   bump, continue as a fresh interval and come back up.  [t.current] must
   be the frontier of the (metadata or full) replay when this runs. *)
let restart_epilogue t ~now =
  (* Everything reconstructed from the stable log is stable by definition. *)
  trace t ~now (Stability_advanced { pid = t.pid; upto = t.current });
  (* The failed incarnation is the highest number this process ever used,
     which every bump persisted as a marker. *)
  let max_inc =
    List.fold_left
      (fun acc r ->
        match r with
        | Wire.Marker { entry; _ } -> Stdlib.max acc entry.Entry.inc
        | Wire.Ann_logged a when a.from_ = t.pid -> Stdlib.max acc a.ending.Entry.inc
        | Wire.Ann_logged _ | Wire.Committed _ | Wire.Gc_stubs _ | Wire.Part_ckpt _
          -> acc)
      t.current.inc
      (Store.announcements t.store)
  in
  let fa =
    {
      Wire.from_ = t.pid;
      ending = Entry.make ~inc:max_inc ~sii:t.current.sii;
      failure = true;
    }
  in
  Store.log_announcement t.store (Wire.Ann_logged fa);
  note_ann t fa;
  t.iet.(t.pid) <- Entry_set.insert_min t.iet.(t.pid) fa.ending;
  t.log_tab.(t.pid) <- Entry_set.insert t.log_tab.(t.pid) fa.ending;
  t.log_tab.(t.pid) <- Entry_set.insert t.log_tab.(t.pid) t.current;
  let new_current = Entry.make ~inc:(max_inc + 1) ~sii:(t.current.sii + 1) in
  Hashtbl.replace t.direct_parents new_current [ (t.pid, t.current) ];
  t.current <- new_current;
  Store.log_announcement t.store
    (Wire.Marker { entry = new_current; log_pos = Store.stable_log_length t.store });
  Dep_vector.set t.tdv t.pid (Some new_current);
  t.log_tab.(t.pid) <- Entry_set.insert t.log_tab.(t.pid) new_current;
  t.frontier <- new_current;
  t.send_idx <- 0;
  t.out_idx <- 0;
  elide_tdv t;
  t.up <- true;
  t.metrics.announcements_sent <- t.metrics.announcements_sent + 1;
  trace t ~now (Restarted { pid = t.pid; announced = fa; new_current });
  push t (Broadcast (Wire.Ann fa))

let do_restart t ~now =
  let rep0 = t.metrics.replayed in
  let ck, _part_ck = restart_prologue t in
  let _, requeued = rebuild t ~now ~ck ~halt:(fun _ -> false) in
  (* Recover the retransmission archive: replay re-released the sends of
     replayed intervals; anything older comes from the checkpoint copy. *)
  reinstate_archive t ck.ck_archive;
  (* Requeued messages not re-delivered before the crash go back to the
     receive buffer; known orphans and anything already delivered are
     dropped. *)
  List.iter
    (fun (m : 'msg Wire.app_message) ->
      if
        (not (Hashtbl.mem t.delivered m.id))
        && (not (buffered_in_recv t m.id))
        && not (orphan_wire t m)
      then t.recv_buf <- t.recv_buf @ [ (now, m) ])
    requeued;
  restart_epilogue t ~now;
  trace t ~now
    (Recovery_completed { pid = t.pid; replayed = t.metrics.replayed - rep0 });
  recheck t ~now

(* Restart's fast-path variant: come back up {e before} replaying.  The
   serial metadata pass reconstructs everything replay can derive from the
   log alone (intervals, dependency snapshots, duplicate suppression,
   direct parents) and queues the application re-execution per partition;
   the caller then pumps {!do_replay_step} while already serving requests
   on partitions whose queues have drained.  Falls back to the serial
   restart when the application declares no partitioning. *)
let do_restart_begin t ~now =
  match t.app.App_intf.partitioning with
  | None -> do_restart t ~now
  | Some pt ->
    let ck, part_ck = restart_prologue t in
    t.state <- ck.ck_state;
    t.current <- ck.ck_current;
    ensure_deps t ck.ck_tdv;
    t.tdv <- Dep_vector.of_non_null ~n:t.n ck.ck_tdv;
    t.send_idx <- 0;
    t.out_idx <- 0;
    reinstate_saved_sends t ck.ck_sends;
    reinstate_saved_outs t ck.ck_outs;
    let records = Store.stable_log_from t.store ~pos:ck.ck_log_pos in
    (* A barrier in the replay range reads and writes state outside any
       single partition, so no per-partition snapshot is sound across it;
       applications with barriers declare no export anyway. *)
    let has_barrier =
      List.exists
        (function
          | Delivery d -> pt.part_of_msg ~n:t.app_n d.lg_msg.Wire.payload = None
          | Requeued _ -> false)
        records
    in
    let stable_len = Store.stable_log_length t.store in
    Array.iteri
      (fun p slot ->
        match slot with
        | Some (pos, _)
          when pt.part_import <> None
               && (not has_barrier)
               && pos > ck.ck_log_pos && pos <= stable_len -> ()
        | Some _ -> part_ck.(p) <- None
        | None -> ())
      part_ck;
    (* Apply the surviving per-partition checkpoints over the full
       checkpoint's state, and re-instate the pending effects their
       covered (skipped) records would have regenerated. *)
    Array.iteri
      (fun p slot ->
        match slot with
        | None -> ()
        | Some (_, payload) ->
          (* The payload is a sealed (length- and CRC-witnessed) blob; the
             witness covers exactly the marshalled bytes, so [Marshal] never
             runs on damaged input it could crash on — and a blob that fails
             the witness (or the unmarshal, or the app's import) is a
             {e reported} loss: the slot is dropped, the partition falls
             back to replaying from the full checkpoint, and the drop is
             counted.  Never a silent acceptance, never an abort. *)
          let decoded =
            match Durable.Codec.unseal payload with
            | Error _ -> None
            | Ok bytes -> (
              match
                (Marshal.from_string bytes 0
                  : string
                    * 'msg saved_send list
                    * saved_output list
                    * 'msg Wire.app_message list)
              with
              | v -> Some v
              | exception (Failure _ | Invalid_argument _ | End_of_file) -> None)
          in
          let imported =
            match decoded with
            | None -> None
            | Some ((slice, _, _, _) as v) -> (
              match pt.part_import with
              | None -> Some v
              | Some import -> (
                match import t.state p slice with
                | state' ->
                  t.state <- state';
                  Some v
                | exception Failure _ -> None))
          in
          match imported with
          | None ->
            part_ck.(p) <- None;
            t.metrics.part_ckpt_dropped <- t.metrics.part_ckpt_dropped + 1
          | Some (_, sends, outs, archive) ->
            reinstate_saved_sends t sends;
            reinstate_saved_outs t outs;
            reinstate_archive t archive)
      part_ck;
    (* Serial metadata pass: evolve intervals, vectors and bookkeeping
       exactly as [rebuild] would, but defer the application handlers into
       per-partition queues. *)
    let markers = effective_markers t ~from_pos:ck.ck_log_pos in
    let pos = ref ck.ck_log_pos in
    let requeued = ref [] in
    let fresh_queues () = Array.init pt.parts (fun _ -> Queue.create ()) in
    let stages_rev = ref [] in
    let cur = ref (fresh_queues ()) in
    let part_pending = Array.make pt.parts 0 in
    let barriers = ref 0 in
    let frontier = ref None in
    let rec walk markers records =
      match markers, records with
      | ((_, p) as m) :: ms, _ when p <= !pos ->
        apply_marker t m;
        walk ms records
      | _, [] -> ()
      | _, Requeued m :: rs ->
        requeued := m :: !requeued;
        incr pos;
        walk markers rs
      | _, Delivery d :: rs ->
        let pred = t.current in
        ensure_deps t d.lg_msg.Wire.dep;
        (match (proto t).tracking with
        | Config.Transitive ->
          Dep_vector.merge_max ~into:t.tdv
            (Dep_vector.of_non_null ~n:t.n d.lg_msg.Wire.dep)
        | Config.Direct -> ());
        t.current <- Entry.next_interval t.current;
        Dep_vector.set t.tdv t.pid (Some t.current);
        assert (Entry.equal t.current d.lg_interval);
        Hashtbl.replace t.direct_parents t.current
          ((t.pid, pred)
          ::
          (if d.lg_msg.Wire.src >= 0 then
             [ (d.lg_msg.Wire.src, d.lg_msg.Wire.send_interval) ]
           else []));
        Hashtbl.replace t.delivered d.lg_msg.Wire.id t.current;
        let item covered =
          {
            ri_msg = d.lg_msg;
            ri_interval = t.current;
            ri_tdv = Dep_vector.copy t.tdv;
            ri_window = d.lg_window;
            ri_covered = covered;
          }
        in
        (match pt.part_of_msg ~n:t.app_n d.lg_msg.Wire.payload with
        | Some p ->
          let covered =
            match part_ck.(p) with
            | Some (cpos, _) -> !pos < cpos
            | None -> false
          in
          let ri = item covered in
          Queue.add ri (!cur).(p);
          part_pending.(p) <- part_pending.(p) + 1;
          frontier := Some ri
        | None ->
          let ri = item false in
          stages_rev := { rs_queues = !cur; rs_barrier = Some ri } :: !stages_rev;
          cur := fresh_queues ();
          incr barriers;
          frontier := Some ri);
        incr pos;
        walk markers rs
    in
    walk markers records;
    stages_rev := { rs_queues = !cur; rs_barrier = None } :: !stages_rev;
    reinstate_archive t ck.ck_archive;
    List.iter
      (fun (m : 'msg Wire.app_message) ->
        if
          (not (Hashtbl.mem t.delivered m.Wire.id))
          && (not (buffered_in_recv t m.Wire.id))
          && not (orphan_wire t m)
        then t.recv_buf <- t.recv_buf @ [ (now, m) ])
      (List.rev !requeued);
    restart_epilogue t ~now;
    let pending = Array.fold_left ( + ) 0 part_pending + !barriers in
    if pending = 0 then begin
      trace t ~now (Recovery_completed { pid = t.pid; replayed = 0 });
      recheck t ~now
    end
    else begin
      t.recovery <-
        Some
          {
            rc_parts = pt.parts;
            rc_stages = List.rev !stages_rev;
            rc_part_pending = part_pending;
            rc_barriers_pending = !barriers;
            rc_replayed = 0;
            rc_frontier = !frontier;
            rc_next = 0;
            rc_live_delivered = false;
          };
      recheck t ~now
    end

(* ------------------------------------------------------------------ *)
(* Per-partition incremental checkpoints                               *)

(* Snapshot the dirtiest partition's slice together with the pending
   sends, outputs and retransmission archive (the effects replay of its
   covered records would otherwise regenerate — a superset is safe, the
   restore paths deduplicate by identity exactly as full-checkpoint
   restore does).  The record is synchronous like every sync-area write;
   superseded same-partition records are compacted away.  Returns false
   when the application exports no slices or nothing is dirty. *)
let do_partition_checkpoint t ~now =
  match t.app.App_intf.partitioning with
  | Some ({ part_export = Some export; _ } as pt) when t.recovery = None ->
    let best = ref (-1) in
    Array.iteri
      (fun p c -> if c > 0 && (!best < 0 || c > t.part_dirty.(!best)) then best := p)
      t.part_dirty;
    if !best < 0 then false
    else begin
      let p = !best in
      (* Flush first (forced, like the full checkpoint's) so the snapshot
         corresponds exactly to the stable prefix it claims to cover. *)
      do_flush ~forced:true t ~now ~ack:true;
      let pos = Store.stable_log_length t.store in
      let sends =
        List.map
          (fun ps ->
            {
              sv_id = ps.ps_id;
              sv_dst = ps.ps_dst;
              sv_interval = ps.ps_interval;
              sv_dep = Dep_vector.non_null ps.ps_tdv;
              sv_payload = ps.ps_payload;
              sv_enqueued = ps.ps_enqueued;
              sv_k = ps.ps_k;
            })
          t.send_buf
      in
      let outs =
        List.map
          (fun po ->
            {
              so_id = po.po_id;
              so_text = po.po_text;
              so_dep = Dep_vector.non_null po.po_tdv;
              so_buffered = po.po_buffered;
            })
          t.out_buf
      in
      let payload =
        (* Sealed so restart can witness integrity before unmarshalling;
           see the decode side in [do_restart_begin]. *)
        Durable.Codec.seal
          (Marshal.to_string
             (export t.state p, sends, outs, Archive.newest_first t.archive)
             [ Marshal.Closures ])
      in
      Store.log_announcement t.store
        (Wire.Part_ckpt { pc_part = p; pc_pos = pos; pc_payload = payload });
      (* Drop the records this one supersedes so the sync area stays
         bounded by one snapshot per partition. *)
      ignore
        (Store.compact_sync t.store ~keep:(function
           | Wire.Part_ckpt { pc_part; pc_pos; _ } ->
             not (pc_part = p && pc_pos < pos)
           | Wire.Ann_logged _ | Wire.Marker _ | Wire.Committed _
           | Wire.Gc_stubs _ -> true)
          : int);
      ignore pt.parts;
      t.part_dirty.(p) <- 0;
      true
    end
  | Some _ | None -> false

(* ------------------------------------------------------------------ *)
(* Public driver interface                                             *)

(* [?store_dir] and [?obs] sit before the labelled [~trace], so they can
   never be erased by a positional application — warning 16 does not apply
   to how this function is actually used (every caller passes the
   arguments or forwards [?store_dir:None] / [?obs:None]). *)
let[@warning "-16"] create ~config ~pid ~app ?store_dir ?obs ~trace:tr =
  let config = Config.validate_exn config in
  let n = config.Config.n in
  if pid < 0 || pid >= n then invalid_arg "Node.create: pid out of range";
  let state = app.App_intf.init ~pid ~n in
  let store, fresh_store =
    match store_dir with
    | None -> (Store.create (), true)
    | Some dir ->
      let store, report = Store.open_durable ~dir ?obs () in
      (store, report.Store.fresh)
  in
  let t =
    {
      cfg = config;
      pid;
      n;
      app_n = n;
      app;
      trace = tr;
      metrics = Metrics.create ();
      store;
      up = fresh_store;
      current = Entry.initial;
      tdv = Dep_vector.create ~n;
      state;
      log_tab = Array.make n Entry_set.empty;
      iet = Array.make n Entry_set.empty;
      max_ann_inc = Array.make n (-1);
      recv_buf = [];
      send_buf = [];
      out_buf = [];
      delivered = Hashtbl.create 64;
      stubs = Hashtbl.create 16;
      direct_parents = Hashtbl.create 64;
      assemblies = Hashtbl.create 8;
      released_ids = Hashtbl.create 64;
      buffered_send_ids = Hashtbl.create 16;
      buffered_out_ids = Hashtbl.create 16;
      committed_ids = Hashtbl.create 16;
      archive = Archive.create ();
      anns_seen = Hashtbl.create 16;
      anns_order = [];
      unacked = [];
      send_idx = 0;
      out_idx = 0;
      frontier = Entry.initial;
      outputs_log = [];
      ckpt_ops = 0;
      actions = [];
      recovery = None;
      part_dirty =
        (match app.App_intf.partitioning with
        | Some pt -> Array.make pt.parts 0
        | None -> [||]);
      retired = Hashtbl.create 4;
    }
  in
  (* A damaged store can come back with every checkpoint dropped (e.g. a
     bit flip in the only checkpoint file).  The loss is already reported
     by open-time recovery; restart still needs a checkpoint to rebuild
     from, so re-seed the initial one — replay then reconstructs whatever
     the surviving log suffix allows. *)
  let reseed = (not fresh_store) && Store.latest_checkpoint t.store = None in
  if fresh_store || reseed then
    (* "Each process execution can be considered as starting with an initial
       checkpoint" (Corollary 3): interval (0,1) is stable from the start. *)
    Store.save_checkpoint t.store
      {
        ck_current = t.current;
        ck_tdv = [];
        ck_state = state;
        ck_log_pos = Store.log_base t.store;
        ck_sends = [];
        ck_outs = [];
        ck_archive = [];
      };
  if fresh_store then begin
    t.log_tab.(pid) <- Entry_set.insert t.log_tab.(pid) t.current;
    Trace.add tr ~time:0.
      (Interval_started
         {
           pid;
           interval = t.current;
           pred = None;
           by = None;
           sender_interval = None;
           digest = app.App_intf.digest state;
           replay = false;
         })
  end;
  (* A node reopened over a pre-existing store starts down (the previous
     incarnation of the process died); the driver brings it back with
     [restart], which rebuilds everything from the persisted state —
     Figure 3's Restart, now from real files. *)
  t

let with_cost t f =
  let sync0 = Store.sync_writes t.store in
  let del0 = t.metrics.deliveries in
  let rep0 = t.metrics.replayed in
  let ck0 = t.ckpt_ops in
  t.actions <- [];
  f ();
  let actions = List.rev t.actions in
  t.actions <- [];
  ( actions,
    {
      deliveries = t.metrics.deliveries - del0;
      replays = t.metrics.replayed - rep0;
      sync_writes = Store.sync_writes t.store - sync0;
      checkpoints = t.ckpt_ops - ck0;
    } )

let guard t f = if t.up then f () else ()

let handle_packet t ~now packet =
  with_cost t (fun () ->
      guard t (fun () ->
          match packet with
          | Wire.App m -> receive_app t ~now m
          | Wire.Ann ann -> receive_ann t ~now ann
          | Wire.Notice notice -> receive_notice t ~now notice
          | Wire.Ack ack -> receive_ack t ack
          | Wire.Flush_request { from_ } ->
            do_flush t ~now ~ack:true;
            let rows = [ (t.pid, Entry_set.entries t.log_tab.(t.pid)) ] in
            push t
              (Unicast
                 {
                   dst = from_;
                   packet = Wire.Notice { from_ = t.pid; rows; anns = gossip_anns t };
                 })
          | Wire.Dep_query { from_; intervals } ->
            let infos =
              List.map (fun interval -> (interval, local_dep_info t interval)) intervals
            in
            push t (Unicast { dst = from_; packet = Wire.Dep_reply { from_ = t.pid; infos } })
          | Wire.Dep_reply { from_; infos } ->
            Hashtbl.iter
              (fun _ asm ->
                List.iter
                  (fun (interval, info) ->
                    if Hashtbl.mem asm.members (from_, interval) then
                      assembly_absorb t asm (from_, interval) info)
                  infos)
              t.assemblies;
            check_output_buffer t ~now
          | Wire.Join { from_; n; current } ->
            if from_ >= 0 && n >= from_ + 1 then begin
              (* Widen to the joiner's view of the cluster (Corollary 3)
                 and adopt its current interval as stable: a joiner's
                 pre-join history is recovered-from-log or initial, hence
                 logged.  A {e re}-join (known pid, fresh incarnation
                 after a retire or a long partition) takes the same path —
                 the widening is a no-op and the adoption refreshes the
                 stability row. *)
              ensure_member t (n - 1);
              Hashtbl.remove t.retired from_;
              t.log_tab.(from_) <- Entry_set.insert t.log_tab.(from_) current;
              elide_tdv t;
              recheck t ~now;
              (* Hand the joiner our stability knowledge so its own vector
                 entries start draining without waiting a notice period. *)
              let rows = [ (t.pid, Entry_set.entries t.log_tab.(t.pid)) ] in
              push t
                (Unicast
                   {
                     dst = from_;
                     packet = Wire.Notice { from_ = t.pid; rows; anns = gossip_anns t };
                   })
            end
          | Wire.Retire { from_; upto } ->
            if from_ >= 0 && from_ <> t.pid then begin
              ensure_member t from_;
              (* The retiree flushed before announcing: everything up to
                 [upto] is stable, and nothing after [upto] will ever
                 exist.  Recording the frontier lets Theorem 2 elide its
                 entries, so no send blocks forever on a process that is
                 gone. *)
              Hashtbl.replace t.retired from_ upto;
              t.log_tab.(from_) <- Entry_set.insert t.log_tab.(from_) upto;
              elide_tdv t;
              recheck t ~now
            end))

let inject t ~now ~seq payload =
  with_cost t (fun () ->
      guard t (fun () ->
          let m =
            {
              Wire.id =
                {
                  Wire.origin = App_intf.outside_world;
                  origin_interval = Entry.make ~inc:0 ~sii:seq;
                  idx = 0;
                };
              src = App_intf.outside_world;
              dst = t.pid;
              send_interval = Entry.initial;
              dep = [];
              payload;
            }
          in
          receive_app t ~now m))

let flush t ~now = with_cost t (fun () -> guard t (fun () -> do_flush t ~now ~ack:true))

let perform t ~now effects =
  with_cost t (fun () ->
      guard t (fun () ->
          List.iter
            (function
              | App_intf.Send { dst; msg; k } -> send_message t ~now ~dst ~k msg
              | App_intf.Output text -> buffer_output t ~now text)
            effects;
          check_send_buffer t ~now;
          check_output_buffer t ~now))

let checkpoint t ~now = with_cost t (fun () -> guard t (fun () -> do_checkpoint t ~now))

let broadcast_notice t ~now =
  with_cost t (fun () ->
      guard t (fun () ->
          (* Direct tracking: allow one assembly query round per notice
             period, and advance pending assemblies. *)
          if (proto t).tracking = Config.Direct then begin
            Hashtbl.iter
              (fun _ asm ->
                Hashtbl.iter (fun _ st -> st.m_queried <- false) asm.members)
              t.assemblies;
            check_output_buffer t ~now
          end;
          let rows =
            if (proto t).gossip_notices then
              List.filter_map
                (fun j ->
                  let es = Entry_set.entries t.log_tab.(j) in
                  if es = [] then None else Some (j, es))
                (List.init t.n Fun.id)
            else [ (t.pid, Entry_set.entries t.log_tab.(t.pid)) ]
          in
          let entries = List.fold_left (fun acc (_, es) -> acc + List.length es) 0 rows in
          t.metrics.notices <- t.metrics.notices + 1;
          t.metrics.notice_entries <- t.metrics.notice_entries + entries;
          trace t ~now (Notice_sent { pid = t.pid; entries });
          push t (Broadcast (Wire.Notice { from_ = t.pid; rows; anns = gossip_anns t }))))

let retransmit_tick t ~now =
  ignore now;
  with_cost t (fun () -> guard t (fun () -> do_retransmit_tick t))

let crash t ~now = if t.up then do_crash t ~now

let halt t ~now =
  if not (Store.is_durable t.store) then
    invalid_arg "Node.halt: only a node with a durable store can be killed";
  if t.up then do_crash t ~now;
  Store.kill t.store

let restart t ~now =
  with_cost t (fun () -> if not t.up then do_restart t ~now)

let restart_begin t ~now =
  with_cost t (fun () -> if not t.up then do_restart_begin t ~now)

let replay_step t ~now ?prefer ~budget () =
  let executed = ref 0 in
  let actions, cost =
    with_cost t (fun () ->
        guard t (fun () -> executed := do_replay_step t ~now ?prefer ~budget ()))
  in
  (!executed, actions, cost)

let partition_checkpoint t ~now =
  let did = ref false in
  let actions, cost =
    with_cost t (fun () ->
        guard t (fun () -> did := do_partition_checkpoint t ~now))
  in
  (!did, actions, cost)

let is_up t = t.up

let storage_report t = Store.storage_report t.store

let arm_storage_fsync_failure t = Store.arm_fsync_failure t.store

let arm_storage_disk_full t ~rounds = Store.arm_disk_full t.store ~rounds

let arm_storage_slow_fsync t ~delay ~rounds =
  Store.arm_slow_fsync t.store ~delay ~rounds

let storage_degraded_flushes t = Store.degraded_flushes t.store

let storage_slowed_fsyncs t = Store.slowed_fsyncs t.store

(* ------------------------------------------------------------------ *)
(* Membership                                                          *)

let membership_n t = t.n

let is_retired t j = Hashtbl.mem t.retired j

let retired_frontier t j = Hashtbl.find_opt t.retired j

let announce_join t ~now =
  ignore now;
  with_cost t (fun () ->
      guard t (fun () ->
          push t (Broadcast (Wire.Join { from_ = t.pid; n = t.n; current = t.current }))))

let retire t ~now =
  with_cost t (fun () ->
      guard t (fun () ->
          (* Flush first (forced — a leaver must not be stoppable by a
             brownout window): the Retire frontier claims stability up to
             [t.current], so make it true before anyone hears the claim. *)
          do_flush ~forced:true t ~now ~ack:true;
          push t (Broadcast (Wire.Retire { from_ = t.pid; upto = t.current }))))

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)

let pid t = t.pid

let config t = t.cfg

let current t = t.current

let dep_vector t = Dep_vector.copy t.tdv

let app_state t = t.state

let log_row t j = t.log_tab.(j)

let iet_row t j = t.iet.(j)

(* The notice broadcast_notice would send right now, without the metrics
   or trace side effects — for piggybacking on outgoing data frames. *)
let current_notice t =
  if not t.up then None
  else
    let rows =
      if (proto t).gossip_notices then
        List.filter_map
          (fun j ->
            let es = Entry_set.entries t.log_tab.(j) in
            if es = [] then None else Some (j, es))
          (List.init t.n Fun.id)
      else [ (t.pid, Entry_set.entries t.log_tab.(t.pid)) ]
    in
    Some { Wire.from_ = t.pid; rows; anns = gossip_anns t }

let send_buffer_size t = List.length t.send_buf

let receive_buffer_size t = List.length t.recv_buf

let receive_buffer_messages t = List.map snd t.recv_buf

let max_announced_inc t j = t.max_ann_inc.(j)

let output_buffer_size t = List.length t.out_buf

let committed_outputs t = List.rev t.outputs_log

let stable_frontier t = t.frontier

(* --- fast-recovery inspection --- *)

let recovery_active t = t.recovery <> None

let recovery_pending t =
  match t.recovery with
  | None -> 0
  | Some rc -> Array.fold_left ( + ) 0 rc.rc_part_pending + rc.rc_barriers_pending

let partition_count t =
  match t.app.App_intf.partitioning with Some pt -> pt.parts | None -> 0

let partition_of_payload t payload = part_of_payload t payload

let partition_recovered t p =
  match t.recovery with
  | None -> true
  | Some rc ->
    p >= 0 && p < rc.rc_parts
    && rc.rc_part_pending.(p) = 0
    && rc.rc_barriers_pending = 0

let partition_digest t p =
  match t.app.App_intf.partitioning with
  | Some pt when p >= 0 && p < pt.parts -> Some (pt.part_digest t.state p)
  | Some _ | None -> None

let metrics t = t.metrics

let sync_writes t = Store.sync_writes t.store

let flushes t = Store.flushes t.store

let volatile_log_length t = Store.volatile_length t.store

let stable_log_length t = Store.stable_log_length t.store

let live_log_records t = Store.live_log_records t.store

let pp_state ppf t =
  Fmt.pf ppf "P%d%s at %a tdv=%a recv=%d send=%d out=%d stable=%a" t.pid
    (if t.up then "" else " (down)")
    Entry.pp t.current Dep_vector.pp t.tdv
    (List.length t.recv_buf)
    (List.length t.send_buf)
    (List.length t.out_buf)
    Entry.pp t.frontier
