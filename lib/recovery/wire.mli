(** Wire formats of the recovery layer — the sealed vocabulary between
    nodes, drivers and stable storage.

    Three kinds of traffic cross the network (Section 2's "major
    components"): application messages carrying piggybacked dependency
    vectors, rollback/failure announcements, and logging progress
    notifications.  We add two pieces of supporting traffic that the paper
    leaves to its references: stability acknowledgements (so senders can
    garbage-collect their retransmission archives — the "senders' volatile
    logs" of footnote 3) and flush requests (output-driven logging,
    reference [6]).

    All types are concrete: drivers construct packets, nodes pattern-match
    on them, and the durable store serializes them — but everything that
    goes on the wire or onto disk is enumerated here and nowhere else.
    Changing this module means changing the protocol's wire format; the
    on-disk encoding of these values is specified in PROTOCOL.md. *)

open Depend

(** Deterministic message identity.

    [origin_interval] is the state interval the send was performed in and
    [idx] the rank of the send within that interval.  Because execution
    within an interval is deterministic, a replayed send reproduces the same
    identity, which is what makes receiver-side duplicate suppression
    sound.  [origin = App_model.App_intf.outside_world] marks injected
    client messages; their [origin_interval] carries a unique injection
    sequence number instead. *)
type identity = { origin : int; origin_interval : Entry.t; idx : int }

val pp_identity : identity Fmt.t

(** An application message as released on the wire. *)
type 'msg app_message = {
  id : identity;
  src : int;
  dst : int;
  send_interval : Entry.t;  (** sender's state interval at send time *)
  dep : (int * Entry.t) list;
      (** non-NULL dependency entries frozen at release time *)
  payload : 'msg;
}

(** A rollback announcement (Figure 1's dotted [r] lines).

    [ending] is "the ending index number of the failed incarnation":
    intervals [(s, y)] of [from_] with [s <= ending.inc] and
    [y > ending.sii] are rolled back.  [failure] distinguishes genuine
    failure announcements from the induced-rollback announcements that only
    the Strom–Yemini preset broadcasts (Theorem 1 makes the latter
    unnecessary). *)
type announcement = { from_ : int; ending : Entry.t; failure : bool }

val pp_announcement : announcement Fmt.t

(** A logging progress notification: for each process, the per-incarnation
    stability frontier the sender knows.  With gossiping disabled the list
    has a single row — the sender's own.  [anns] is empty unless
    announcement gossip is enabled ({!Config.protocol.gossip_announcements}),
    in which case it carries every failure announcement the sender has
    absorbed, as anti-entropy against announcement loss. *)
type notice = {
  from_ : int;
  rows : (int * Entry.t list) list;
  anns : announcement list;
}

val notice_entry_count : notice -> int
(** Entries carried by a notice (piggyback cost accounting). *)

(** Stability acknowledgement: the listed deliveries from [to_] have become
    stable at [from_], so [to_] may drop them from its retransmission
    archive. *)
type ack = { from_ : int; to_ : int; ids : identity list }

(** Answer to a dependency query about one state interval of the
    receiver (direct-tracking assembly). *)
type dep_info =
  | Info of { stable : bool; parents : (int * Entry.t) list }
      (** the interval exists; whether it is stable yet, and its direct
          parents (chain predecessor plus the sending interval, if any) *)
  | Gone  (** the interval was rolled back (or never existed) *)

(** Everything a node can put on the network. *)
type 'msg packet =
  | App of 'msg app_message
  | Ann of announcement
  | Notice of notice
  | Ack of ack
  | Flush_request of { from_ : int }
      (** output-driven logging: asks the receiver to flush and notify *)
  | Dep_query of { from_ : int; intervals : Entry.t list }
      (** direct-tracking assembly: asks the receiver about its own
          intervals *)
  | Dep_reply of { from_ : int; infos : (Entry.t * dep_info) list }
  | Join of { from_ : int; n : int; current : Entry.t }
      (** membership join handshake: [from_] (a pid at or beyond the
          receiver's current width) announces itself; [n] is the joiner's
          own view of the cluster width (at least [from_ + 1]) and
          [current] its current state interval.  Receivers grow their
          vectors and tables to width [n] (Corollary 3 makes the widening
          verdict-preserving) and adopt [current] as stable. *)
  | Retire of { from_ : int; upto : Entry.t }
      (** membership retirement: [from_] leaves for good after flushing, so
          every interval up to and including [upto] is stable.  Receivers
          record the frontier and elide the retiree's entries (Theorem 2),
          so its vector slot drains to NULL and no send ever blocks on a
          process that is gone. *)

val packet_kind : 'msg packet -> string
(** Short tag for accounting and the network model's per-kind latencies. *)

(** Identity of an output sent to the outside world. *)
type output_id = { out_interval : Entry.t; out_idx : int }

val pp_output_id : output_id Fmt.t

(** Records written synchronously to stable storage.  Figure 3 logs received
    announcements and its own announcement synchronously; we additionally
    persist incarnation bumps (so numbers are never reused after a crash
    that follows a rollback) and committed outputs (so replay never repeats
    an external action). *)
type sync_record =
  | Ann_logged of announcement
  | Marker of { entry : Entry.t; log_pos : int }
      (** incarnation bump: after replaying [log_pos] stable records, the
          process continued as interval [entry] *)
  | Committed of output_id
  | Gc_stubs of identity list
      (** identities of deliveries whose log records were garbage-collected;
          retained so duplicate suppression survives GC and crashes *)
  | Part_ckpt of { pc_part : int; pc_pos : int; pc_payload : string }
      (** incremental per-partition checkpoint: after the first [pc_pos]
          stable records, partition [pc_part]'s state slice (plus the
          pending effects replay up to [pc_pos] would regenerate) is
          [pc_payload].  Opaque at this layer — the node marshals it where
          the message type is known; PROTOCOL.md gives the format.  A later
          [Marker] with [log_pos < pc_pos] invalidates the record. *)
