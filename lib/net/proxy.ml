type stats = {
  forwarded : int;
  dropped : int;
  duplicated : int;
  delayed : int;
  severed : int;
}

type route = { dst : int; listen_port : int; target_port : int }

type t = {
  routes : route list;
  plan : Harness.Netmodel.fault_plan;
  rng : Sim.Rng.t;
  rng_mutex : Mutex.t;
  time_scale : float;
  epoch : float;
  listeners : Unix.file_descr list;
  conns : (Unix.file_descr, bool ref) Hashtbl.t; (* fd -> closed? *)
  conns_mutex : Mutex.t;
  counters : Obs.Counter.t array; (* forwarded, dropped, duplicated, delayed, severed *)
  counters_mutex : Mutex.t; (* serializes relay-thread bumps and [stats] reads *)
  mutable stopping : bool;
}

let c_forwarded = 0

let c_dropped = 1

let c_duplicated = 2

let c_delayed = 3

let c_severed = 4

let bump t i =
  Mutex.lock t.counters_mutex;
  Obs.Counter.incr t.counters.(i);
  Mutex.unlock t.counters_mutex

let draw t f =
  Mutex.lock t.rng_mutex;
  let v = f t.rng in
  Mutex.unlock t.rng_mutex;
  v

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Each proxied stream is served by two pump threads, and shutdown may
   race both: a tracked descriptor therefore carries a close guard so
   it is closed exactly once no matter who gets there first.  A double
   close is not harmless — between the two closes the kernel can hand
   the same descriptor number to a brand-new connection, and the
   second close then silently destroys that one. *)
let track t fd =
  Mutex.lock t.conns_mutex;
  Hashtbl.replace t.conns fd (ref false);
  Mutex.unlock t.conns_mutex

let close_tracked t fd =
  Mutex.lock t.conns_mutex;
  let do_close =
    match Hashtbl.find_opt t.conns fd with
    | Some closed when not !closed ->
      closed := true;
      true
    | Some _ -> false
    | None -> true (* untracked: the caller is the sole owner *)
  in
  Mutex.unlock t.conns_mutex;
  if do_close then close_quiet fd

let read_exact fd n =
  let buf = Bytes.create n in
  let rec loop off =
    if off = n then Some (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> None
      | k -> loop (off + k)
      | exception Unix.Unix_error _ -> None
  in
  loop 0

let write_all fd s =
  let buf = Bytes.unsafe_of_string s in
  let n = Bytes.length buf in
  let rec loop off =
    if off = n then true
    else
      match Unix.write fd buf off (n - off) with
      | 0 -> false
      | k -> loop (off + k)
      | exception Unix.Unix_error _ -> false
  in
  loop 0

(* Abstract-time clock shared with the fault plan's partition windows. *)
let abstract_now t = (Unix.gettimeofday () -. t.epoch) /. t.time_scale

(* The partition (if any) currently cutting src from dst. *)
let active_partition t ~src ~dst =
  let now = abstract_now t in
  List.find_opt
    (fun (p : Harness.Netmodel.partition) ->
      p.from_ <= now && now < p.until
      && List.mem src p.group <> List.mem dst p.group)
    t.plan.partitions

let read_frame fd =
  match read_exact fd Wire_codec.header_bytes with
  | None -> None
  | Some header -> (
    match Wire_codec.parse_header header ~pos:0 with
    | Error _ -> None
    | Ok (_, len) -> (
      match if len = 0 then Some "" else read_exact fd len with
      | None -> None
      | Some payload ->
        (* Forward verbatim; the endpoint's CRC check is the arbiter of
           integrity, the proxy only needs the framing to cut the stream
           into faultable units. *)
        Some (header ^ payload)))

(* Relay frames client -> server, applying per-frame faults. *)
let pump_frames t ~src ~dst ~client ~server =
  let rec loop () =
    if t.stopping then ()
    else
      match read_frame client with
      | None ->
        close_tracked t client;
        close_tracked t server
      | Some frame ->
        let forward =
          match active_partition t ~src ~dst with
          | Some { mode = Harness.Netmodel.Drop_packets; _ } ->
            bump t c_dropped;
            false
          | Some ({ mode = Harness.Netmodel.Queue_packets; _ } as p) ->
            (* Hold the frame (and hence the whole stream suffix) until
               the partition heals, then deliver. *)
            let heal = t.epoch +. (p.until *. t.time_scale) in
            let wait = heal -. Unix.gettimeofday () in
            if wait > 0. then Thread.delay wait;
            bump t c_delayed;
            true
          | None ->
            if draw t (fun rng -> Sim.Rng.bernoulli rng ~p:t.plan.loss) then begin
              bump t c_dropped;
              false
            end
            else begin
              (if t.plan.reorder > 0.
               && draw t (fun rng -> Sim.Rng.bernoulli rng ~p:t.plan.reorder)
              then begin
                let d =
                  draw t (fun rng ->
                      Sim.Rng.float rng
                        (Float.max 1e-9 (t.plan.reorder_spread *. t.time_scale)))
                in
                bump t c_delayed;
                Thread.delay d
              end);
              true
            end
        in
        if forward then begin
          let dup =
            t.plan.duplicate > 0.
            && draw t (fun rng -> Sim.Rng.bernoulli rng ~p:t.plan.duplicate)
          in
          if dup then bump t c_duplicated;
          let payload = if dup then frame ^ frame else frame in
          if write_all server payload then begin
            bump t c_forwarded;
            loop ()
          end
          else begin
            close_tracked t client;
            close_tracked t server
          end
        end
        else loop ()
  in
  loop ()

(* Drain server -> client bytes (the acceptor side of a transport
   connection never writes, but a relay must not wedge if it does). *)
let pump_raw t client server =
  let buf = Bytes.create 4096 in
  let rec loop () =
    match Unix.read server buf 0 4096 with
    | 0 | (exception Unix.Unix_error _) ->
      close_tracked t client;
      close_tracked t server
    | n -> if write_all client (Bytes.sub_string buf 0 n) then loop ()
  in
  loop ()

let handle_conn t route client =
  track t client;
  match read_frame client with
  | Some frame
    when String.length frame > Wire_codec.header_bytes
         && Char.code frame.[3] = Wire_codec.hello_kind -> (
    let body =
      String.sub frame Wire_codec.header_bytes
        (String.length frame - Wire_codec.header_bytes)
    in
    match Wire_codec.Prim.run Wire_codec.Prim.get_int body with
    | Error _ -> close_tracked t client
    | Ok src -> (
      (* A connection attempted across an active dropping partition is
         severed at the hello; the dialer's backoff keeps retrying until
         the window closes. *)
      match active_partition t ~src ~dst:route.dst with
      | Some { mode = Harness.Netmodel.Drop_packets; _ } ->
        bump t c_severed;
        close_tracked t client
      | _ -> (
        let server = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.set_close_on_exec server;
        match
          Unix.connect server
            (Unix.ADDR_INET (Unix.inet_addr_loopback, route.target_port));
          Unix.setsockopt server Unix.TCP_NODELAY true
        with
        | () ->
          track t server;
          if write_all server frame then begin
            ignore (Thread.create (fun () -> pump_raw t client server) () : Thread.t);
            pump_frames t ~src ~dst:route.dst ~client ~server
          end
          else begin
            close_tracked t client;
            close_tracked t server
          end
        | exception Unix.Unix_error _ ->
          close_quiet server;
          close_tracked t client)))
  | _ -> close_tracked t client (* not a transport stream: refuse *)

let accept_loop t route listener =
  let rec loop () =
    match Unix.accept listener with
    | fd, _ ->
      (* The proxy lives in the driver process, which forks daemon
         respawns: none of its sockets may leak into those children (a
         leaked duplicate would keep a "severed" connection half-open). *)
      Unix.set_close_on_exec fd;
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      ignore (Thread.create (fun () -> handle_conn t route fd) () : Thread.t);
      loop ()
    | exception Unix.Unix_error _ -> ()
  in
  loop ()

let start ~routes ?(plan = Harness.Netmodel.benign) ?(seed = 0)
    ?(time_scale = Recovery.Config.default_time_scale) ?obs () =
  let obs = match obs with Some r -> r | None -> Obs.Registry.create () in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let routes =
    List.map
      (fun (dst, listen_port, target_port) -> { dst; listen_port; target_port })
      routes
  in
  let listeners =
    List.map
      (fun r ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.set_close_on_exec fd;
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, r.listen_port));
        Unix.listen fd 64;
        fd)
      routes
  in
  let t =
    {
      routes;
      plan;
      rng = Sim.Rng.create seed;
      rng_mutex = Mutex.create ();
      time_scale;
      epoch = Unix.gettimeofday ();
      listeners;
      conns = Hashtbl.create 64;
      conns_mutex = Mutex.create ();
      counters =
        (let c name = Obs.Registry.counter obs ("proxy_" ^ name) in
         [|
           c "forwarded_total"; c "dropped_total"; c "duplicated_total";
           c "delayed_total"; c "severed_total";
         |]);
      counters_mutex = Mutex.create ();
      stopping = false;
    }
  in
  List.iter2
    (fun route listener ->
      ignore (Thread.create (fun () -> accept_loop t route listener) () : Thread.t))
    t.routes listeners;
  t

let stats t =
  Mutex.lock t.counters_mutex;
  let s =
    {
      forwarded = Obs.Counter.value t.counters.(c_forwarded);
      dropped = Obs.Counter.value t.counters.(c_dropped);
      duplicated = Obs.Counter.value t.counters.(c_duplicated);
      delayed = Obs.Counter.value t.counters.(c_delayed);
      severed = Obs.Counter.value t.counters.(c_severed);
    }
  in
  Mutex.unlock t.counters_mutex;
  s

let close t =
  Mutex.lock t.conns_mutex;
  let first = not t.stopping in
  t.stopping <- true;
  let pending =
    if not first then []
    else
      Hashtbl.fold
        (fun fd closed acc ->
          if !closed then acc
          else begin
            closed := true;
            fd :: acc
          end)
        t.conns []
  in
  Mutex.unlock t.conns_mutex;
  (* Second call is a no-op: listeners and streams close exactly once. *)
  if first then begin
    List.iter close_quiet t.listeners;
    List.iter close_quiet pending
  end
