module Config = Recovery.Config
module Trace = Recovery.Trace
module Wire = Recovery.Wire
module App = App_model.Kvstore_app

type node = {
  pid : int;
  data_port : int;
  proxy_port : int option;  (** what peers dial instead, under faults *)
  control_port : int;
  store_dir : string;
  trace_file : string;
  metrics_file : string;
  log_file : string;
  mutable os_pid : int;
  mutable ctl : Unix.file_descr option;
}

type t = {
  n : int;
  k : int;
  config : Config.t;
  time_scale : float;
  epoch : float;
  root : string;
  exe : string;
  app : string;
  ckpt_interval : float option;  (** [--ckpt-interval] override, 0 disables *)
  part_ckpt : float option;  (** [--part-ckpt] period, incremental snapshots *)
  mutable nodes : node array; (* grows on add_node; slots never removed *)
  proxy : Proxy.t option;
  mutable seq : int;  (** outside-world injection sequence numbers *)
  mutable retired_pids : int list;
  mutable alive : bool;
}

let n t = t.n

let width t = Array.length t.nodes

let retired t = t.retired_pids

let config t = t.config

let root t = t.root

let epoch t = t.epoch

let time_scale t = t.time_scale

(* ------------------------------------------------------------------ *)
(* Plumbing                                                            *)

let find_exe = function
  | Some exe -> exe
  | None -> (
    match Sys.getenv_opt "KOPTNODE_EXE" with
    | Some exe -> exe
    | None ->
      let candidates =
        [
          Filename.concat (Filename.dirname Sys.executable_name) "koptnode.exe";
          Filename.concat
            (Filename.dirname Sys.executable_name)
            "../bin/koptnode.exe";
          "_build/default/bin/koptnode.exe";
        ]
      in
      (match List.find_opt Sys.file_exists candidates with
      | Some exe -> exe
      | None ->
        invalid_arg
          "Deployment.launch: koptnode.exe not found (set KOPTNODE_EXE)"))

(* Allocate a whole batch of distinct loopback ports, holding every socket
   open until the batch is complete.  Closing each socket before binding
   the next (the old one-at-a-time scheme) lets the kernel hand the same
   ephemeral port out twice — negligible for a handful of daemons, a real
   collision risk for the ~200 ports a 64-shard launch needs. *)
let free_ports count =
  let fds =
    List.init count (fun _ ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        fd)
  in
  let ports =
    List.map
      (fun fd ->
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, port) -> port
        | _ -> assert false)
      fds
  in
  List.iter Unix.close fds;
  Array.of_list ports

let write_all fd s =
  let buf = Bytes.unsafe_of_string s in
  let len = Bytes.length buf in
  let rec loop off =
    if off = len then true
    else
      match Unix.write fd buf off (len - off) with
      | 0 -> false
      | k -> loop (off + k)
      | exception Unix.Unix_error _ -> false
  in
  loop 0

let read_exact fd len =
  let buf = Bytes.create len in
  let rec loop off =
    if off = len then Some (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> None
      | k -> loop (off + k)
      | exception Unix.Unix_error _ -> None
  in
  loop 0

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Daemon lifecycle                                                    *)

let spawn ?(join = false) t node =
  let peers =
    Array.to_list t.nodes
    |> List.filter (fun p -> p.pid <> node.pid)
    |> List.map (fun p ->
           Fmt.str "%d:%d" p.pid
             (match p.proxy_port with Some pp -> pp | None -> p.data_port))
    |> String.concat ","
  in
  let retransmit =
    match t.config.Config.timing.Config.retransmit_interval with
    | Some r -> [ "--retransmit"; Fmt.str "%g" r ]
    | None -> []
  in
  let ckpt =
    match t.ckpt_interval with
    | Some i -> [ "--ckpt-interval"; Fmt.str "%g" i ]
    | None -> []
  in
  let part_ckpt =
    match t.part_ckpt with
    | Some p -> [ "--part-ckpt"; Fmt.str "%g" p ]
    | None -> []
  in
  let argv =
    [
      t.exe; "--pid"; string_of_int node.pid;
      (* A joiner's own config counts itself (Corollary 3: it starts with no
         dependency entries); incumbents keep the launch width and widen
         their vectors when the Join broadcast reaches them. *)
      "--nodes"; string_of_int (Stdlib.max t.n (node.pid + 1));
      "--app"; t.app;
      "--optimism"; string_of_int t.k; "--listen"; string_of_int node.data_port;
      "--control";
      string_of_int node.control_port; "--peers"; peers; "--store-dir";
      node.store_dir; "--trace-file"; node.trace_file; "--metrics-file";
      node.metrics_file; "--epoch"; Fmt.str "%.6f" t.epoch; "--time-scale";
      Fmt.str "%g" t.time_scale;
    ]
    @ retransmit @ ckpt @ part_ckpt
    @ (if join then [ "--join" ] else [])
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let log =
    Unix.openfile node.log_file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  let os_pid = Unix.create_process t.exe (Array.of_list argv) devnull log log in
  Unix.close devnull;
  Unix.close log;
  node.os_pid <- os_pid

(* Control connection: one persistent TCP connection per daemon, re-dialled
   lazily after a kill. *)
let rec ctl_fd ?(attempts = 100) node =
  match node.ctl with
  | Some fd -> Some fd
  | None ->
    if attempts = 0 then None
    else begin
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (* Daemons respawned later must not inherit the driver's control
         connections to their siblings (at N=64 that is dozens of stray
         descriptors per respawn, pinning dead connections open). *)
      Unix.set_close_on_exec fd;
      match
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, node.control_port));
        Unix.setsockopt fd Unix.TCP_NODELAY true
      with
      | () ->
        (* A flooded daemon can sit on a control request for a long time;
           an unbounded recv here would wedge the whole driver (settle's
           deadline is only checked between polls).  A timed-out RPC
           drops the connection, so no stale reply can ever be read. *)
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
        node.ctl <- Some fd;
        Some fd
      | exception Unix.Unix_error _ ->
        close_quiet fd;
        Thread.delay 0.05;
        ctl_fd ~attempts:(attempts - 1) node
    end

let ctl_drop node =
  match node.ctl with
  | Some fd ->
    close_quiet fd;
    node.ctl <- None
  | None -> ()

let ctl_send' node wire ctl =
  match ctl_fd node with
  | None -> false
  | Some fd ->
    let ok = write_all fd (Wire_codec.encode_control wire ctl) in
    if not ok then ctl_drop node;
    ok

let ctl_send node ctl = ctl_send' node App.wire ctl

let read_reply fd =
  match read_exact fd Wire_codec.header_bytes with
  | None -> None
  | Some header -> (
    match Wire_codec.parse_header header ~pos:0 with
    | Error _ -> None
    | Ok (kind, len) -> (
      match if len = 0 then Some "" else read_exact fd len with
      | None -> None
      | Some payload -> (
        match Wire_codec.check_frame ~header ~payload with
        | Error _ -> None
        | Ok () ->
          Result.to_option (Wire_codec.decode_control_body App.wire ~kind payload))))

let ctl_rpc node ctl =
  if not (ctl_send node ctl) then None
  else
    match node.ctl with
    | None -> None
    | Some fd -> (
      match read_reply fd with
      | Some r -> Some r
      | None ->
        ctl_drop node;
        None)

(* ------------------------------------------------------------------ *)
(* Launch                                                              *)

let launch ~n ~k ?(app = "kvstore") ?retransmit ?ckpt_interval ?part_ckpt
    ?(time_scale = Config.default_time_scale) ?plan ?(seed = 0) ?root ?exe () =
  (* Control writes race daemon SIGKILLs; a broken pipe must be an error on
     the write, not a fatal signal. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let exe = find_exe exe in
  let config = Config.harden ?retransmit_interval:retransmit (Config.k_optimistic ~n ~k ()) in
  let root =
    match root with
    | Some r ->
      Durable.Temp.mkdir_p r;
      r
    | None -> Durable.Temp.fresh_dir ~prefix:"koptnet" ()
  in
  let use_proxy = plan <> None in
  let per_node = if use_proxy then 3 else 2 in
  let ports = free_ports (n * per_node) in
  let nodes =
    Array.init n (fun pid ->
        {
          pid;
          data_port = ports.(pid * per_node);
          proxy_port = (if use_proxy then Some ports.((pid * per_node) + 2) else None);
          control_port = ports.((pid * per_node) + 1);
          store_dir = Filename.concat root (Fmt.str "store-%d" pid);
          trace_file = Filename.concat root (Fmt.str "trace-%d.bin" pid);
          metrics_file = Filename.concat root (Fmt.str "metrics-%d.txt" pid);
          log_file = Filename.concat root (Fmt.str "daemon-%d.log" pid);
          os_pid = -1;
          ctl = None;
        })
  in
  let proxy =
    match plan with
    | None -> None
    | Some plan ->
      let routes =
        Array.to_list nodes
        |> List.map (fun node ->
               ( node.pid,
                 (match node.proxy_port with Some p -> p | None -> assert false),
                 node.data_port ))
      in
      Some (Proxy.start ~routes ~plan ~seed ~time_scale ())
  in
  let t =
    {
      n;
      k;
      config;
      time_scale;
      epoch = Unix.gettimeofday ();
      root;
      exe;
      app;
      ckpt_interval;
      part_ckpt;
      nodes;
      proxy;
      seq = 0;
      retired_pids = [];
      alive = true;
    }
  in
  Array.iter (fun node -> spawn t node) nodes;
  t

(* ------------------------------------------------------------------ *)
(* Driving                                                             *)

let inject_app t ~dst ~wire msg =
  t.seq <- t.seq + 1;
  ignore
    (ctl_send' t.nodes.(dst) wire (Wire_codec.Inject { seq = t.seq; payload = msg })
      : bool)

let inject t ~dst msg = inject_app t ~dst ~wire:App.wire msg

let tick t ~dst kind = ignore (ctl_send t.nodes.(dst) (Wire_codec.Tick kind) : bool)

let status t ~dst =
  match ctl_rpc t.nodes.(dst) Wire_codec.Status_req with
  | Some (Wire_codec.Status s) -> Some s
  | _ -> None

let scrape t ~dst =
  match ctl_rpc t.nodes.(dst) Wire_codec.Stats_req with
  | Some (Wire_codec.Stats text) -> Some (Obs.Snapshot.of_text text)
  | _ -> None

let kill_only t ~dst =
  let node = t.nodes.(dst) in
  ctl_drop node;
  (try Unix.kill node.os_pid Sys.sigkill with Unix.Unix_error _ -> ());
  (try ignore (Unix.waitpid [] node.os_pid : int * Unix.process_status)
   with Unix.Unix_error _ -> ());
  node.os_pid <- -1

let respawn t ~dst = spawn t t.nodes.(dst)

(* ------------------------------------------------------------------ *)
(* Membership churn                                                    *)

(* Bring a brand-new daemon into a live cluster.  The incumbents are told
   its data port first (Add_peer), so the Join broadcast the joiner emits
   on boot can be answered immediately; the joiner itself is spawned with
   [--join] and a config counting itself.  Returns the new pid. *)
let add_node t =
  if not t.alive then invalid_arg "Deployment.add_node: deployment finished";
  let pid = Array.length t.nodes in
  let ports = free_ports 2 in
  let node =
    {
      pid;
      data_port = ports.(0);
      (* Joiners bypass the fault proxy: its route table is fixed at
         launch.  Churn experiments run proxyless or accept direct links
         for late joiners. *)
      proxy_port = None;
      control_port = ports.(1);
      store_dir = Filename.concat t.root (Fmt.str "store-%d" pid);
      trace_file = Filename.concat t.root (Fmt.str "trace-%d.bin" pid);
      metrics_file = Filename.concat t.root (Fmt.str "metrics-%d.txt" pid);
      log_file = Filename.concat t.root (Fmt.str "daemon-%d.log" pid);
      os_pid = -1;
      ctl = None;
    }
  in
  t.nodes <- Array.append t.nodes [| node |];
  Array.iter
    (fun peer ->
      if peer.pid <> pid && not (List.mem peer.pid t.retired_pids) then
        ignore
          (ctl_send peer (Wire_codec.Add_peer { pid; port = node.data_port })
            : bool))
    t.nodes;
  spawn ~join:true t node;
  pid

let arm_brownout t ~dst ?slow ~rounds () =
  ignore (ctl_send t.nodes.(dst) (Wire_codec.Arm_brownout { slow; rounds }) : bool)

let kill t ~dst =
  kill_only t ~dst;
  (* The detection + reboot outage of the cost model, in wall-clock terms —
     the same constant the threaded actor runtime sleeps (Config.real_restart_delay). *)
  Thread.delay (Config.real_restart_delay ~time_scale:t.time_scale t.config.Config.timing);
  respawn t ~dst

let run_workload t ~ops ~seed =
  let rng = Sim.Rng.create seed in
  for i = 0 to ops - 1 do
    let dst = Sim.Rng.int rng t.n in
    let key = Fmt.str "key%d" (Sim.Rng.int rng 17) in
    let msg =
      if i mod 5 = 4 then App.Get key
      else App.Put { key; value = (i * 37) + Sim.Rng.int rng 100 }
    in
    inject t ~dst msg;
    if i mod 8 = 7 then Thread.delay 0.002
  done

let live_pids t =
  Array.to_list t.nodes
  |> List.filter_map (fun node ->
         if List.mem node.pid t.retired_pids then None else Some node.pid)

let settle ?(timeout = 30.) t =
  let deadline = Unix.gettimeofday () +. timeout in
  let prev_deliveries = ref (-1) in
  let rec loop () =
    if Unix.gettimeofday () > deadline then false
    else begin
      let statuses = List.map (fun pid -> status t ~dst:pid) (live_pids t) in
      let all_ok =
        List.for_all
          (function
            | Some s ->
              s.Wire_codec.st_up
              && (not s.Wire_codec.st_recovering)
              && s.Wire_codec.st_pending = 0
              && s.Wire_codec.st_send_buf = 0
              && s.Wire_codec.st_recv_buf = 0
              && s.Wire_codec.st_out_buf = 0
            | None -> false)
          statuses
      in
      let deliveries =
        List.fold_left
          (fun acc -> function
            | Some s -> acc + s.Wire_codec.st_deliveries
            | None -> acc)
          0 statuses
      in
      if all_ok && deliveries = !prev_deliveries then true
      else begin
        prev_deliveries := deliveries;
        Thread.delay 0.1;
        loop ()
      end
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Merge + certify                                                     *)

(* A SIGKILLed incarnation never wrote its own [Crashed] event; reconstruct
   it from the successor's [Restarted]: the failure announcement pins the
   crashed incarnation's last stable interval, and the successor's first
   interval (replay frontier + 1) pins the first lost index.  An in-process
   crash (the [Crash] control, or a future graceful failure path) does
   write [Crashed], so we only synthesise when none is pending. *)
let synthesize_crashes entries =
  let crashed = Hashtbl.create 8 in
  let count = ref 0 in
  let out =
    List.concat_map
      (fun (e : Trace.entry) ->
        match e.ev with
        | Trace.Crashed { pid; _ } ->
          Hashtbl.replace crashed pid true;
          [ e ]
        | Trace.Restarted { pid; announced; new_current } ->
          let pending = Hashtbl.mem crashed pid in
          Hashtbl.remove crashed pid;
          if pending then [ e ]
          else begin
            incr count;
            let first_lost =
              Some
                (Depend.Entry.make ~inc:announced.Wire.ending.Depend.Entry.inc
                   ~sii:new_current.Depend.Entry.sii)
            in
            [
              { e with ev = Trace.Crashed { pid; first_lost } };
              e;
            ]
          end
        | _ -> [ e ])
      entries
  in
  (out, !count)

let merge_traces t =
  let damage = ref [] in
  let tagged =
    Array.to_list t.nodes
    |> List.concat_map (fun node ->
           match Trace_codec.load_file node.trace_file with
           | Error e ->
             damage := Fmt.str "pid %d: %s" node.pid e :: !damage;
             []
           | Ok { Trace_codec.entries; damage = d } ->
             (match d with
             | Some d -> damage := Fmt.str "pid %d: %s" node.pid d :: !damage
             | None -> ());
             List.mapi (fun i e -> (e.Trace.time, node.pid, i, e)) entries)
  in
  let sorted =
    List.stable_sort
      (fun (ta, pa, ia, _) (tb, pb, ib, _) ->
        match Float.compare ta tb with
        | 0 -> ( match Int.compare pa pb with 0 -> Int.compare ia ib | c -> c)
        | c -> c)
      tagged
  in
  let entries = List.map (fun (_, _, _, e) -> e) sorted in
  let entries, synthesized = synthesize_crashes entries in
  let trace = Trace.create () in
  List.iter (fun (e : Trace.entry) -> Trace.add trace ~time:e.time e.ev) entries;
  (trace, List.rev !damage, synthesized)

(* A daemon's metrics file is the text exposition its registry wrote at
   Quit.  A missing file is an empty snapshot — the daemon was reaped
   (SIGKILLed at teardown) rather than drained, which loses metrics but
   never certification evidence (the trace file is synced continuously).
   An unparseable file is damage worth surfacing, like a torn trace. *)
let load_metrics node =
  if not (Sys.file_exists node.metrics_file) then Ok Obs.Snapshot.empty
  else begin
    let ic = open_in_bin node.metrics_file in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Obs.Snapshot.of_text text with
    | Ok snap -> Ok snap
    | Error e -> Error (Fmt.str "pid %d metrics: %s" node.pid e)
  end

(* The flat counters view over a merged snapshot: every counter family,
   label sets summed away.  (The per-daemon families are unlabelled today;
   summing keeps the view stable if labels appear.) *)
let counters_of_snapshot snap =
  List.fold_left
    (fun acc ((name, _labels), v) ->
      match v with
      | Obs.Snapshot.Counter v ->
        let cur = try List.assoc name acc with Not_found -> 0 in
        (name, cur + v) :: List.remove_assoc name acc
      | Obs.Snapshot.Gauge _ | Obs.Snapshot.Hist _ -> acc)
    [] (Obs.Snapshot.bindings snap)
  |> List.sort compare

let contains line sub =
  let nl = String.length line and ns = String.length sub in
  let rec at i = i + ns <= nl && (String.sub line i ns = sub || at (i + 1)) in
  at 0

let count_log_errors t =
  Array.to_list t.nodes
  |> List.fold_left
       (fun acc node ->
         if not (Sys.file_exists node.log_file) then acc
         else begin
           let ic = open_in node.log_file in
           let rec loop n =
             match input_line ic with
             | line ->
               loop
                 (if contains line "undecodable" || contains line "inbound frame"
                  then n + 1
                  else n)
             | exception End_of_file -> n
           in
           let n = loop 0 in
           close_in ic;
           acc + n
         end)
       0

type outcome = {
  trace : Trace.t;
  damage : string list;
  synthesized_crashes : int;
  oracle : Harness.Oracle.report;
  obs : Obs.Snapshot.t;
      (** all daemons' Quit-time registry snapshots, merged: counters
          summed, histograms bucket-wise summed *)
  counters : (string * int) list;
  proxy : Proxy.stats option;
  transport_drops : int;
  decode_errors : int;
      (** inbound frames the daemons' transports could not decode (summed
          [transport_decode_errors_total] counters) *)
  frames_dropped : int;
      (** outbound frames dropped to queue overflow (summed
          [transport_frames_dropped_total] counters) *)
}

let counter counters name = try List.assoc name counters with Not_found -> 0

let check_fault_free outcome =
  (* On a run with no proxy and no kills nothing on the wire may be
     corrupt or shed: a nonzero decode-failure count means the codec or
     the framing regressed, and dropped outbound frames mean the send
     queues overflowed — certification must fail rather than lean on the
     protocol's loss tolerance to paper over either. *)
  if outcome.decode_errors > 0 then
    failwith
      (Fmt.str "fault-free run decoded %d frame(s) as garbage" outcome.decode_errors);
  if outcome.frames_dropped > 0 then
    failwith
      (Fmt.str "fault-free run shed %d outbound frame(s) to queue overflow"
         outcome.frames_dropped)

let reap node =
  if node.os_pid > 0 then begin
    (try Unix.kill node.os_pid Sys.sigkill with Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] node.os_pid : int * Unix.process_status)
     with Unix.Unix_error _ -> ());
    node.os_pid <- -1
  end

(* The daemon exits by itself after Bye; reap, falling back to SIGKILL
   only if it wedges. *)
let wait_exit node =
  if node.os_pid > 0 then begin
    let deadline = Unix.gettimeofday () +. 10. in
    let rec wait () =
      match Unix.waitpid [ Unix.WNOHANG ] node.os_pid with
      | 0, _ ->
        if Unix.gettimeofday () > deadline then reap node
        else begin
          Thread.delay 0.02;
          wait ()
        end
      | _ -> node.os_pid <- -1
      | exception Unix.Unix_error _ -> node.os_pid <- -1
    in
    wait ()
  end

let quit_node node =
  if node.os_pid < 0 then () (* already gone (retired or reaped) *)
  else
    match ctl_fd ~attempts:10 node with
    | None -> reap node
    | Some fd ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
      (match ctl_rpc node Wire_codec.Quit with
      | Some Wire_codec.Bye | Some _ | None -> ());
      ctl_drop node;
      wait_exit node

(* Graceful permanent leave: the daemon force-flushes, broadcasts its final
   frontier (Retire), drains and exits.  The pid stays in the node table so
   its trace and metrics join the merge, but no successor is ever spawned. *)
let retire t ~dst =
  let node = t.nodes.(dst) in
  if not (List.mem dst t.retired_pids) then begin
    (match ctl_rpc node Wire_codec.Retire_req with
    | Some Wire_codec.Bye | Some _ | None -> ());
    ctl_drop node;
    wait_exit node;
    t.retired_pids <- dst :: t.retired_pids
  end

(* Rejoin after retirement: a fresh daemon under the same pid, over the
   same store directory (so it resumes from its retirement frontier with a
   bumped incarnation), announcing itself like any joiner.  The incumbents
   still know the pid and its ports, so their transports simply re-dial. *)
let rejoin t ~dst =
  let node = t.nodes.(dst) in
  if List.mem dst t.retired_pids then begin
    t.retired_pids <- List.filter (fun p -> p <> dst) t.retired_pids;
    spawn ~join:true t node
  end

(* Rolling restart: SIGKILL + respawn each live daemon in turn, letting the
   cluster settle between victims so at most one process is ever down —
   the zero-downtime upgrade pattern.  Returns [false] if any settle timed
   out. *)
let rolling_restart ?(timeout = 30.) t =
  List.fold_left
    (fun ok pid ->
      kill t ~dst:pid;
      settle ~timeout t && ok)
    true (live_pids t)

let finish t =
  if not t.alive then invalid_arg "Deployment.finish: already finished";
  t.alive <- false;
  Array.iter quit_node t.nodes;
  (match t.proxy with Some p -> Proxy.close p | None -> ());
  let trace, damage, synthesized_crashes = merge_traces t in
  let metric_damage = ref [] in
  let obs =
    Array.to_list t.nodes
    |> List.map (fun node ->
           match load_metrics node with
           | Ok snap -> snap
           | Error e ->
             metric_damage := e :: !metric_damage;
             Obs.Snapshot.empty)
    |> Obs.Snapshot.merge_all
  in
  let damage = damage @ List.rev !metric_damage in
  let counters = counters_of_snapshot obs in
  (* [n] is the final membership width: joins may have widened the cluster
     past the launch size, and every pid that ever existed must be in
     range for the oracle's per-process tables. *)
  let oracle = Harness.Oracle.check ~k:t.k ~n:(Array.length t.nodes) trace in
  {
    trace;
    damage;
    synthesized_crashes;
    oracle;
    obs;
    counters;
    proxy = Option.map Proxy.stats t.proxy;
    transport_drops = count_log_errors t;
    decode_errors = counter counters "transport_decode_errors_total";
    frames_dropped = counter counters "transport_frames_dropped_total";
  }

let destroy t =
  Array.iter
    (fun node ->
      ctl_drop node;
      reap node)
    t.nodes;
  (match t.proxy with Some p -> Proxy.close p | None -> ());
  t.alive <- false;
  Durable.Temp.rm_rf t.root

(* ------------------------------------------------------------------ *)
(* E14                                                                 *)

let fault_plan ~with_partition =
  {
    Harness.Netmodel.loss = 0.05;
    duplicate = 0.05;
    reorder = 0.10;
    reorder_spread = 5.;
    partitions =
      (if with_partition then
         [
           {
             Harness.Netmodel.group = [ 0 ];
             from_ = 250.;
             until = 450.;
             mode = Harness.Netmodel.Drop_packets;
           };
         ]
       else []);
  }

let one_run ~n ~k ~ops ~kills ~plan ~seed report =
  let t = launch ~n ~k ~plan ~seed () in
  let outcome =
    Fun.protect
      ~finally:(fun () -> if t.alive then Array.iter reap t.nodes)
      (fun () ->
        run_workload t ~ops:(ops / 2) ~seed;
        List.iter
          (fun victim ->
            kill t ~dst:victim;
            run_workload t ~ops:(ops / (2 * List.length kills)) ~seed:(seed + victim))
          kills;
        (* Live stats plane, exercised mid-run (daemons still busy, one of
           them a post-SIGKILL successor): every daemon must answer the
           Stats arm with a parseable exposition, and the cluster-wide
           merge must show deliveries — this is the gate the CI net smoke
           relies on. *)
        let live =
          List.map
            (fun pid ->
              match scrape t ~dst:pid with
              | Some (Ok snap) -> snap
              | Some (Error e) ->
                failwith (Fmt.str "E14: pid %d Stats scrape unparseable: %s" pid e)
              | None -> failwith (Fmt.str "E14: pid %d did not answer Stats_req" pid))
            (live_pids t)
          |> Obs.Snapshot.merge_all
        in
        if Obs.Snapshot.counter live "deliveries_total" = 0 then
          failwith "E14: live Stats scrape shows zero deliveries_total";
        let settled = settle t in
        let outcome = finish t in
        if not settled then
          Harness.Report.note report (Fmt.str "K=%d: settle timed out" k);
        outcome)
  in
  let o = outcome.oracle in
  if o.Harness.Oracle.violations <> [] then
    failwith
      (Fmt.str "E14: oracle violations at K=%d:@.%a" k
         (Fmt.list ~sep:Fmt.cut Fmt.string)
         o.Harness.Oracle.violations);
  List.iter
    (fun d -> Harness.Report.note report (Fmt.str "K=%d trace damage: %s" k d))
    outcome.damage;
  (match outcome.proxy with
  | Some p ->
    Harness.Report.note report
      (Fmt.str
         "K=%d proxy: %d forwarded, %d dropped, %d duplicated, %d delayed, %d severed"
         k p.Proxy.forwarded p.Proxy.dropped p.Proxy.duplicated p.Proxy.delayed
         p.Proxy.severed)
  | None -> ());
  Harness.Report.add_row report
    [
      string_of_int k;
      string_of_int (List.length kills);
      string_of_int (counter outcome.counters "deliveries_total");
      string_of_int (counter outcome.counters "releases_total");
      string_of_int (counter outcome.counters "restarts_total");
      string_of_int outcome.synthesized_crashes;
      string_of_int (counter outcome.counters "orphans_discarded_total");
      string_of_int (counter outcome.counters "duplicates_dropped_total");
      string_of_int (counter outcome.counters "retransmissions_total");
      string_of_int (counter outcome.counters "outputs_committed_total");
      string_of_int outcome.decode_errors;
      string_of_int outcome.frames_dropped;
      string_of_int o.Harness.Oracle.lost;
      string_of_int o.Harness.Oracle.undone;
      string_of_int o.Harness.Oracle.max_risk;
      string_of_int (List.length o.Harness.Oracle.violations);
    ];
  Durable.Temp.rm_rf t.root

let experiment ?(smoke = false) () =
  let report =
    Harness.Report.create
      ~title:
        (if smoke then "E14-smoke: multi-process deployment (loopback TCP)"
         else "E14: multi-process deployment (loopback TCP, SIGKILL + proxy faults)")
      ~columns:
        [
          "K"; "kills"; "delivs"; "released"; "restarts"; "synth"; "orphans";
          "dups"; "retrans"; "outputs"; "dec_err"; "drops"; "lost"; "undone";
          "risk"; "violations";
        ]
  in
  if smoke then
    one_run ~n:3 ~k:1 ~ops:48 ~kills:[ 1 ]
      ~plan:(fault_plan ~with_partition:false)
      ~seed:7 report
  else begin
    let n = 4 in
    List.iter
      (fun k ->
        one_run ~n ~k ~ops:120 ~kills:[ 1 ]
          ~plan:(fault_plan ~with_partition:true)
          ~seed:(100 + k) report)
      [ 0; 2; n ]
  end;
  Harness.Report.note report
    "every run: real OS processes on loopback TCP, durable stores, \
     SIGKILL mid-workload, all traffic through the fault proxy; merged \
     trace certified by the causality oracle";
  report
