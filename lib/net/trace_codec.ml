module Trace = Recovery.Trace
module Wire = Recovery.Wire
open Wire_codec.Prim

(* All trace entries travel under one frame kind; the event variant is a
   tag byte inside the payload.  Trace frames share the kind space with
   packets and control frames but never cross a socket — they only live in
   per-process trace files. *)
let trace_kind = 33

let tag_of_event = function
  | Trace.Interval_started _ -> 0
  | Trace.Message_sent _ -> 1
  | Trace.Message_released _ -> 2
  | Trace.Message_delivered _ -> 3
  | Trace.Message_discarded _ -> 4
  | Trace.Send_cancelled _ -> 5
  | Trace.Stability_advanced _ -> 6
  | Trace.Checkpoint_taken _ -> 7
  | Trace.Crashed _ -> 8
  | Trace.Restarted _ -> 9
  | Trace.Rolled_back _ -> 10
  | Trace.Announcement_received _ -> 11
  | Trace.Notice_sent _ -> 12
  | Trace.Output_buffered _ -> 13
  | Trace.Output_committed _ -> 14
  | Trace.Recovery_completed _ -> 15

let put_event b ev =
  Buffer.add_char b (Char.chr (tag_of_event ev));
  match ev with
  | Trace.Interval_started { pid; interval; pred; by; sender_interval; digest; replay }
    ->
    put_int b pid;
    put_entry b interval;
    put_option b put_entry pred;
    put_option b put_identity by;
    put_option b put_entry sender_interval;
    put_int b digest;
    put_bool b replay
  | Trace.Message_sent { id; src; dst; send_interval } ->
    put_identity b id;
    put_int b src;
    put_int b dst;
    put_entry b send_interval
  | Trace.Message_released { id; dep_size; blocked } ->
    put_identity b id;
    put_int b dep_size;
    put_float b blocked
  | Trace.Message_delivered { id; dst; interval } ->
    put_identity b id;
    put_int b dst;
    put_entry b interval
  | Trace.Message_discarded { id; dst; reason } ->
    put_identity b id;
    put_int b dst;
    put_bool b (reason = Trace.Duplicate)
  | Trace.Send_cancelled { id; src } ->
    put_identity b id;
    put_int b src
  | Trace.Stability_advanced { pid; upto } ->
    put_int b pid;
    put_entry b upto
  | Trace.Checkpoint_taken { pid; interval } ->
    put_int b pid;
    put_entry b interval
  | Trace.Crashed { pid; first_lost } ->
    put_int b pid;
    put_option b put_entry first_lost
  | Trace.Restarted { pid; announced; new_current } ->
    put_int b pid;
    put_announcement b announced;
    put_entry b new_current
  | Trace.Rolled_back { pid; restored; first_undone; new_current; because } ->
    put_int b pid;
    put_entry b restored;
    put_entry b first_undone;
    put_entry b new_current;
    put_announcement b because
  | Trace.Announcement_received { pid; ann } ->
    put_int b pid;
    put_announcement b ann
  | Trace.Notice_sent { pid; entries } ->
    put_int b pid;
    put_int b entries
  | Trace.Output_buffered { pid; id; text } ->
    put_int b pid;
    put_output_id b id;
    put_string b text
  | Trace.Output_committed { pid; id; text; latency } ->
    put_int b pid;
    put_output_id b id;
    put_string b text;
    put_float b latency
  | Trace.Recovery_completed { pid; replayed } ->
    put_int b pid;
    put_int b replayed

let encode_entry (e : Trace.entry) =
  let b = Buffer.create 64 in
  put_float b e.Trace.time;
  put_int b e.Trace.seq;
  put_event b e.Trace.ev;
  Wire_codec.frame ~kind:trace_kind (Buffer.contents b)

let read_event c =
  match get_u8 c with
  | 0 ->
    let pid = get_int c in
    let interval = get_entry c in
    let pred = get_option c get_entry in
    let by = get_option c get_identity in
    let sender_interval = get_option c get_entry in
    let digest = get_int c in
    let replay = get_bool c in
    Trace.Interval_started { pid; interval; pred; by; sender_interval; digest; replay }
  | 1 ->
    let id = get_identity c in
    let src = get_int c in
    let dst = get_int c in
    let send_interval = get_entry c in
    Trace.Message_sent { id; src; dst; send_interval }
  | 2 ->
    let id = get_identity c in
    let dep_size = get_int c in
    let blocked = get_float c in
    Trace.Message_released { id; dep_size; blocked }
  | 3 ->
    let id = get_identity c in
    let dst = get_int c in
    let interval = get_entry c in
    Trace.Message_delivered { id; dst; interval }
  | 4 ->
    let id = get_identity c in
    let dst = get_int c in
    let reason = if get_bool c then Trace.Duplicate else Trace.Orphan_message in
    Trace.Message_discarded { id; dst; reason }
  | 5 ->
    let id = get_identity c in
    let src = get_int c in
    Trace.Send_cancelled { id; src }
  | 6 ->
    let pid = get_int c in
    let upto = get_entry c in
    Trace.Stability_advanced { pid; upto }
  | 7 ->
    let pid = get_int c in
    let interval = get_entry c in
    Trace.Checkpoint_taken { pid; interval }
  | 8 ->
    let pid = get_int c in
    let first_lost = get_option c get_entry in
    Trace.Crashed { pid; first_lost }
  | 9 ->
    let pid = get_int c in
    let announced = get_announcement c in
    let new_current = get_entry c in
    Trace.Restarted { pid; announced; new_current }
  | 10 ->
    let pid = get_int c in
    let restored = get_entry c in
    let first_undone = get_entry c in
    let new_current = get_entry c in
    let because = get_announcement c in
    Trace.Rolled_back { pid; restored; first_undone; new_current; because }
  | 11 ->
    let pid = get_int c in
    let ann = get_announcement c in
    Trace.Announcement_received { pid; ann }
  | 12 ->
    let pid = get_int c in
    let entries = get_int c in
    Trace.Notice_sent { pid; entries }
  | 13 ->
    let pid = get_int c in
    let id = get_output_id c in
    let text = get_string c in
    Trace.Output_buffered { pid; id; text }
  | 14 ->
    let pid = get_int c in
    let id = get_output_id c in
    let text = get_string c in
    let latency = get_float c in
    Trace.Output_committed { pid; id; text; latency }
  | 15 ->
    let pid = get_int c in
    let replayed = get_int c in
    Trace.Recovery_completed { pid; replayed }
  | t -> failwith (Fmt.str "unknown trace event tag %d" t)

let read_entry c =
  let time = get_float c in
  let seq = get_int c in
  let ev = read_event c in
  { Trace.time; seq; ev }

let decode_entry s =
  match Wire_codec.decode_frame s ~pos:0 with
  | Error _ as e -> e
  | Ok (kind, body, next) ->
    if kind <> trace_kind then Error (Fmt.str "not a trace frame (kind %d)" kind)
    else if next <> String.length s then Error "trailing bytes after frame"
    else run read_entry body

type load = { entries : Trace.entry list; damage : string option }

let decode_stream s =
  let rec loop pos acc =
    if pos = String.length s then { entries = List.rev acc; damage = None }
    else
      match Wire_codec.decode_frame s ~pos with
      | Error e ->
        {
          entries = List.rev acc;
          damage =
            Some (Fmt.str "trace file damaged at byte %d: %s (torn tail truncated)"
                    pos e);
        }
      | Ok (kind, body, next) ->
        if kind <> trace_kind then
          {
            entries = List.rev acc;
            damage = Some (Fmt.str "unexpected frame kind %d at byte %d" kind pos);
          }
        else (
          match run read_entry body with
          | Error e ->
            {
              entries = List.rev acc;
              damage = Some (Fmt.str "undecodable trace entry at byte %d: %s" pos e);
            }
          | Ok entry -> loop next (entry :: acc))
  in
  loop 0 []

let load_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> Ok (decode_stream s)
  | exception Sys_error e -> Error e

type writer = { oc : out_channel; mutable written : int }

let open_writer path =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
  in
  { oc; written = 0 }

let append w entries =
  List.iter (fun e -> output_string w.oc (encode_entry e)) entries;
  flush w.oc;
  w.written <- w.written + List.length entries

let close_writer w = close_out_noerr w.oc

let sync w trace =
  if Trace.length trace > w.written then
    append w (Trace.suffix trace ~from_:w.written)
