(* E17: membership churn and degraded modes on the live deployment.

   One run walks a cluster through every membership transition the
   protocol supports, with the workload running throughout:

     join       — a fourth daemon is added mid-run ([Deployment.add_node]);
                  incumbents widen their dependency vectors when its Join
                  broadcast arrives (Corollary 3: a fresh process carries
                  no dependency entries, so the wide vector is
                  trivially conservative)
     SIGKILL    — an incumbent is killed and respawned mid-churn, so
                  crash recovery and vector widening compose
     retire     — a daemon leaves gracefully ([Deployment.retire]): it
                  flushes, broadcasts its final frontier, and survivors
                  treat its entries as stable forever (Theorem 2)
     rejoin     — the retired pid comes back over its own store directory,
                  announcing itself like any joiner
     rolling    — every live daemon is SIGKILLed + respawned in turn,
                  the cluster settling between victims
     brownout   — one daemon's disk refuses ordinary flushes for a
                  window (ENOSPC); refused records stay volatile and the
                  K-rule keeps its sends gated, so the degradation is
                  visible in the [storage_degraded_flushes] counter but
                  never in the oracle report

   The merged trace is certified at the *final* membership width: zero
   violations and measured risk at most K across the whole timeline,
   churn included. *)

module App = App_model.Kvstore_app

type measure = {
  width : int;  (** final membership width (launch n + joins) *)
  deliveries : int;
  degraded : int;  (** flushes refused during the brownout window *)
  risk : int;  (** max measured risk over the merged trace *)
}

(* A burst of Puts at one daemon, keys tagged per churn phase so the
   merged trace reads chronologically. *)
let burst t ~dst ~tag ~count ~seed =
  for i = 0 to count - 1 do
    Deployment.inject t ~dst
      (App.Put { key = Fmt.str "e17-%s-%d" tag i; value = seed + i });
    if i mod 16 = 15 then Thread.delay 0.002
  done

let settle_or_note t report ~label ~stage =
  if not (Deployment.settle ~timeout:120. t) then
    Harness.Report.note report (Fmt.str "%s: settle after %s timed out" label stage)

(* One oracle-certified churn run. *)
let e17_run ~k ~ops ~brownout_rounds ~seed ~label report =
  let n = 3 in
  let t = Deployment.launch ~n ~k ~seed () in
  match
    (fun () ->
      let settle = settle_or_note t report ~label in
      (* Steady state at the launch membership. *)
      for dst = 0 to n - 1 do
        burst t ~dst ~tag:(Fmt.str "pre%d" dst) ~count:ops ~seed
      done;
      settle ~stage:"launch workload";
      (* Join: membership grows to four under load. *)
      let joiner = Deployment.add_node t in
      burst t ~dst:joiner ~tag:"join" ~count:ops ~seed;
      burst t ~dst:0 ~tag:"postjoin" ~count:ops ~seed;
      settle ~stage:"join";
      (* Crash recovery composed with the widened membership. *)
      Deployment.kill t ~dst:1;
      burst t ~dst:1 ~tag:"postkill" ~count:ops ~seed;
      settle ~stage:"kill";
      (* Graceful leave, then traffic among the survivors only. *)
      Deployment.retire t ~dst:2;
      burst t ~dst:0 ~tag:"postretire" ~count:ops ~seed;
      burst t ~dst:joiner ~tag:"postretire2" ~count:ops ~seed;
      settle ~stage:"retire";
      (* The retired pid rejoins over its own store. *)
      Deployment.rejoin t ~dst:2;
      burst t ~dst:2 ~tag:"rejoin" ~count:ops ~seed;
      settle ~stage:"rejoin";
      (* Rolling restart of the whole (now four-wide) cluster. *)
      if not (Deployment.rolling_restart ~timeout:120. t) then
        Harness.Report.note report
          (Fmt.str "%s: rolling restart settle timed out" label);
      (* Disk-full brownout at daemon 0: ordinary flushes refuse for a
         window.  The post-window burst outnumbers the window so the
         backlog provably drains through a succeeding flush before the
         run ends. *)
      Deployment.arm_brownout t ~dst:0 ~rounds:brownout_rounds ();
      burst t ~dst:0 ~tag:"brownout" ~count:ops ~seed;
      burst t ~dst:0 ~tag:"drain" ~count:(brownout_rounds + 8) ~seed;
      settle ~stage:"brownout";
      Deployment.finish t)
      ()
  with
  | exception e ->
    (try Deployment.destroy t with _ -> ());
    raise e
  | outcome ->
    let o = outcome.Deployment.oracle in
    if o.Harness.Oracle.violations <> [] then
      failwith
        (Fmt.str "E17 %s: oracle violations:@.%a" label
           (Fmt.list ~sep:Fmt.cut Fmt.string)
           o.Harness.Oracle.violations);
    if o.Harness.Oracle.max_risk > k then
      failwith
        (Fmt.str "E17 %s: measured risk %d exceeds K=%d" label
           o.Harness.Oracle.max_risk k);
    let counter = Deployment.counter outcome.Deployment.counters in
    let degraded = counter "storage_degraded_flushes_total" in
    if degraded = 0 then
      failwith
        (Fmt.str "E17 %s: brownout window armed but no flush was refused" label);
    List.iter
      (fun d -> Harness.Report.note report (Fmt.str "%s trace damage: %s" label d))
      outcome.Deployment.damage;
    let m =
      {
        width = Deployment.width t;
        deliveries = counter "deliveries_total";
        degraded;
        risk = o.Harness.Oracle.max_risk;
      }
    in
    Harness.Report.add_row report
      [
        string_of_int k;
        string_of_int m.width;
        string_of_int (List.length (Deployment.retired t));
        string_of_int (counter "restarts_total");
        string_of_int m.deliveries;
        string_of_int m.degraded;
        string_of_int m.risk;
        string_of_int (List.length o.Harness.Oracle.violations);
      ];
    Durable.Temp.rm_rf (Deployment.root t);
    m

let experiment ?(smoke = false) () =
  let report =
    Harness.Report.create
      ~title:
        (if smoke then "E17-smoke: membership churn (live cluster)"
         else
           "E17: membership churn — join, kill, retire, rejoin, rolling \
            restart, disk-full brownout (live clusters)")
      ~columns:
        [
          "K"; "width"; "retired"; "restarts"; "delivs"; "degraded"; "risk";
          "violations";
        ]
  in
  let bench = ref [] in
  if smoke then
    ignore
      (e17_run ~k:1 ~ops:16 ~brownout_rounds:3 ~seed:17 ~label:"smoke" report
        : measure)
  else
    List.iter
      (fun k ->
        let m =
          e17_run ~k ~ops:48 ~brownout_rounds:5 ~seed:(1700 + k)
            ~label:(Fmt.str "k=%d" k) report
        in
        if k = 2 then
          bench :=
            [
              (Fmt.str "E17 deliveries k=%d" k, float_of_int m.deliveries);
              (Fmt.str "E17 degraded flushes k=%d" k, float_of_int m.degraded);
              (Fmt.str "E17 max risk k=%d" k, float_of_int m.risk);
              (Fmt.str "E17 membership width k=%d" k, float_of_int m.width);
            ])
      [ 0; 2 ];
  Harness.Report.note report
    "per run: workload at n=3, then under continued load: add a fourth \
     daemon (Join handshake widens incumbent vectors), SIGKILL+respawn an \
     incumbent, retire a daemon (frontier broadcast, Theorem 2), rejoin it \
     over its own store, rolling-restart all four, and arm a disk-full \
     brownout window (refused flushes stay volatile; the K-rule gates \
     sends until the backlog drains).  The merged trace is certified at \
     the final width: zero violations, risk <= K throughout.";
  (report, List.rev !bench)
