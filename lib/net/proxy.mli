(** Fault-injecting userspace TCP relay.

    One listener per daemon stands between the cluster and that daemon's
    real data port; every peer dials the proxy port instead.  Because the
    first frame on a connection is the transport's [Hello], the relay
    knows both endpoints of every stream and can apply
    {!Harness.Netmodel.fault_plan}-style faults per (src, dst) pair and
    per frame:

    - {b delay}: each frame is held back with probability [reorder] for a
      uniform time up to [reorder_spread] (within one TCP stream this
      delays the suffix; genuine reordering additionally arises from
      reconnects, which the protocol tolerates anyway);
    - {b drop}: each frame is dropped with probability [loss];
    - {b duplicate}: each frame is written twice with probability
      [duplicate] — the receiver's identity-based suppression eats it;
    - {b partition}: while a partition window is active, streams crossing
      the cut are severed and new ones are cut at the hello; the dialer's
      backoff keeps retrying until the network heals.

    The relay never rewrites bytes: a frame is forwarded verbatim, late,
    twice or not at all.  Corrupt frames (which the relay cannot even
    parse past) sever the stream, exactly like a real middlebox dying
    mid-connection. *)

type stats = {
  forwarded : int;
  dropped : int;
  duplicated : int;
  delayed : int;
  severed : int;  (** streams cut by a partition window *)
}

type t

val start :
  routes:(int * int * int) list ->
  ?plan:Harness.Netmodel.fault_plan ->
  ?seed:int ->
  ?time_scale:float ->
  ?obs:Obs.Registry.t ->
  unit ->
  t
(** [routes] lists [(dst_pid, listen_port, target_port)] triples.  Fault
    probabilities come from [plan] (default {!Harness.Netmodel.benign});
    the plan's times (partition windows, [reorder_spread]) are in abstract
    config units and are scaled to wall-clock seconds by [time_scale]
    (default {!Recovery.Config.default_time_scale}).  Fault decisions draw
    from a seeded {!Sim.Rng}.  [obs] receives the proxy's counters
    ([proxy_forwarded_total], [proxy_dropped_total], ...); it defaults
    to a private registry. *)

val stats : t -> stats
(** Bumps happen on relay threads under the proxy's counters mutex and
    [stats] reads under that same mutex, so the record is a consistent
    point-in-time cut across all five counters. *)

val close : t -> unit
