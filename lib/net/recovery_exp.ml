(* E16: fast recovery on the live deployment.

   Each run builds a log of known length at one daemon (Puts whose keys it
   owns), SIGKILLs it, respawns it immediately and fires a probe Get at it
   while the successor is still replaying.  Two clocks are read off the
   merged trace, both relative to the successor's [Restarted] event:

     ttfr   — time to first request: the probe's [Output_committed]
     ttfull — time to full recovery: the successor's [Recovery_completed]

   With on-demand replay the probe's partition is replayed first (it is
   the hottest parked request), so ttfr tracks one partition's share of
   the log while ttfull pays for all of it; with incremental
   per-partition checkpoints ([--part-ckpt]) the replay range collapses
   to the records after each partition's last snapshot and ttfull goes
   roughly flat in log length.  Every run is oracle-certified the same
   way E14/E15 are: zero violations, measured risk at most K. *)

module App = App_model.Kvstore_app
module Trace = Recovery.Trace

(* The replay pump paces itself at [t_replay] abstract units per
   re-executed record (bin/koptnode.ml).  At the default 1 ms/unit clock a
   whole-log replay finishes inside the driver's first control-socket
   redial, making ttfr unmeasurable; the 10x coarser clock stretches
   replay into the hundreds-of-milliseconds range the probe can actually
   interrupt — same protocol, same certification, slower abstract time. *)
let e16_time_scale = 10. *. Recovery.Config.default_time_scale

let victim = 1

(* Keys the victim owns: every Put injected at the victim is applied
   there (one log record each), never forwarded — so [ops] is the
   victim's log length, spread across its recovery partitions by the
   second, independent key hash. *)
let victim_keys ~n ~count =
  let rec collect i acc = function
    | 0 -> List.rev acc
    | left ->
      let key = Fmt.str "e16-%d" i in
      if App.owner ~n key = victim then collect (i + 1) (key :: acc) (left - 1)
      else collect (i + 1) acc left
  in
  collect 0 [] count

type measure = {
  ttfr : float;  (** seconds, [Restarted] -> probe [Output_committed] *)
  ttfull : float;  (** seconds, [Restarted] -> [Recovery_completed] *)
  replayed : int;  (** records re-executed by the successor *)
}

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Read both clocks off the merged trace.  The victim has exactly one
   [Restarted] (daemons booting over a fresh store start up without one);
   wall clock is [epoch +. time *. scale], the same conversion E15 uses
   for client-visible ack latency. *)
let analyze t trace ~probe ~label =
  let epoch = Deployment.epoch t in
  let scale = Deployment.time_scale t in
  let wall time = epoch +. (time *. scale) in
  let prefix = Fmt.str "get %s ->" probe in
  let restarted = ref None in
  let ttfr = ref None in
  let ttfull = ref None in
  let replayed = ref 0 in
  List.iter
    (fun { Trace.time; ev; _ } ->
      match ev with
      | Trace.Restarted { pid; _ } when pid = victim ->
        restarted := Some (wall time)
      | Trace.Output_committed { pid; text; _ }
        when pid = victim && !ttfr = None && starts_with ~prefix text -> (
        match !restarted with
        | Some r0 -> ttfr := Some (wall time -. r0)
        | None -> ())
      | Trace.Recovery_completed { pid; replayed = rep }
        when pid = victim && !ttfull = None -> (
        match !restarted with
        | Some r0 ->
          ttfull := Some (wall time -. r0);
          replayed := rep
        | None -> ())
      | _ -> ())
    (Trace.events trace);
  match (!ttfr, !ttfull) with
  | Some ttfr, Some ttfull -> { ttfr; ttfull; replayed = !replayed }
  | None, _ -> failwith (Fmt.str "E16 %s: probe Get was never answered" label)
  | _, None ->
    failwith (Fmt.str "E16 %s: successor never completed recovery" label)

(* One oracle-certified run; returns the measured clocks for the caller's
   bench keys. *)
let e16_run ~k ~ops ~part_ckpt ~seed ~label report =
  let n = 3 in
  let t =
    Deployment.launch ~n ~k ~ckpt_interval:0. ?part_ckpt
      ~time_scale:e16_time_scale ~seed ()
  in
  match
    (fun () ->
      let keys = victim_keys ~n ~count:ops in
      List.iteri
        (fun i key ->
          Deployment.inject t ~dst:victim (App.Put { key; value = i + seed });
          if i mod 16 = 15 then Thread.delay 0.002)
        keys;
      if not (Deployment.settle ~timeout:120. t) then
        Harness.Report.note report (Fmt.str "%s: pre-kill settle timed out" label);
      (* The snapshot timer covers one dirty partition per tick; give the
         rotation enough idle ticks to visit all of them, so the pckpt
         rows measure bounded replay rather than snapshot-timer luck. *)
      (match part_ckpt with
      | Some period -> Thread.delay (12. *. period *. e16_time_scale)
      | None -> ());
      let probe = List.nth keys (ops - 1) in
      (* The crash, the immediate respawn, and the probe racing the
         replay: kill_only/respawn skip the usual restart-delay sleep so
         the probe lands while partitions are still pending. *)
      Deployment.kill_only t ~dst:victim;
      Deployment.respawn t ~dst:victim;
      Deployment.inject t ~dst:victim (App.Get probe);
      let deadline = Unix.gettimeofday () +. 120. in
      let rec await_recovery () =
        match Deployment.status t ~dst:victim with
        | Some s when s.Wire_codec.st_up && not s.Wire_codec.st_recovering -> ()
        | _ ->
          if Unix.gettimeofday () < deadline then begin
            Thread.delay 0.02;
            await_recovery ()
          end
      in
      await_recovery ();
      if not (Deployment.settle ~timeout:120. t) then
        Harness.Report.note report (Fmt.str "%s: post-kill settle timed out" label);
      (probe, Deployment.finish t))
      ()
  with
  | exception e ->
    (try Deployment.destroy t with _ -> ());
    raise e
  | probe, outcome ->
    let o = outcome.Deployment.oracle in
    if o.Harness.Oracle.violations <> [] then
      failwith
        (Fmt.str "E16 %s: oracle violations:@.%a" label
           (Fmt.list ~sep:Fmt.cut Fmt.string)
           o.Harness.Oracle.violations);
    if o.Harness.Oracle.max_risk > k then
      failwith
        (Fmt.str "E16 %s: measured risk %d exceeds K=%d" label
           o.Harness.Oracle.max_risk k);
    List.iter
      (fun d -> Harness.Report.note report (Fmt.str "%s trace damage: %s" label d))
      outcome.Deployment.damage;
    let m = analyze t outcome.Deployment.trace ~probe ~label in
    let ms v = 1000. *. v in
    Harness.Report.add_row report
      [
        string_of_int ops;
        string_of_int k;
        (match part_ckpt with None -> "-" | Some p -> Fmt.str "%g" p);
        Harness.Report.cell_f (ms m.ttfr);
        Harness.Report.cell_f (ms m.ttfull);
        string_of_int m.replayed;
        string_of_int (Deployment.counter outcome.Deployment.counters "restarts_total");
        string_of_int o.Harness.Oracle.max_risk;
        string_of_int (List.length o.Harness.Oracle.violations);
      ];
    Durable.Temp.rm_rf (Deployment.root t);
    m

let experiment ?(smoke = false) () =
  let report =
    Harness.Report.create
      ~title:
        (if smoke then "E16-smoke: fast recovery (live cluster)"
         else
           "E16: fast recovery — on-demand replay and incremental checkpoints \
            (live clusters)")
      ~columns:
        [
          "ops"; "K"; "pckpt"; "ttfr_ms"; "ttfull_ms"; "replayed"; "restarts";
          "risk"; "violations";
        ]
  in
  let bench = ref [] in
  if smoke then
    ignore
      (e16_run ~k:1 ~ops:120 ~part_ckpt:None ~seed:16 ~label:"smoke" report
        : measure)
  else begin
    let sizes = [ 300; 600; 1200 ] in
    (* Pure on-demand replay: ttfr (one hot partition + probe transit)
       stays well below ttfull (the whole log), which grows linearly. *)
    List.iter
      (fun k ->
        List.iter
          (fun ops ->
            let m =
              e16_run ~k ~ops ~part_ckpt:None ~seed:(1600 + ops + k)
                ~label:(Fmt.str "ops=%d k=%d" ops k) report
            in
            bench :=
              (Fmt.str "E16 ttfull ms ops=%d k=%d" ops k, 1000. *. m.ttfull)
              :: (Fmt.str "E16 ttfr ms ops=%d k=%d" ops k, 1000. *. m.ttfr)
              :: !bench)
          sizes)
      [ 0; 2 ];
    (* Incremental per-partition checkpoints bound every partition's
       replay range by the snapshot period, flattening ttfull in log
       length. *)
    List.iter
      (fun ops ->
        let m =
          e16_run ~k:2 ~ops ~part_ckpt:(Some 5.) ~seed:(2600 + ops)
            ~label:(Fmt.str "ops=%d k=2 pckpt" ops) report
        in
        bench :=
          (Fmt.str "E16 ttfull ms ops=%d k=2 pckpt" ops, 1000. *. m.ttfull)
          :: !bench)
      sizes
  end;
  Harness.Report.note report
    "per run: build a log of `ops` records at one daemon, SIGKILL it, \
     respawn immediately, probe with a Get during replay; ttfr = Restarted \
     -> probe's output commit, ttfull = Restarted -> Recovery_completed \
     (merged-trace wall clock).  pckpt rows arm incremental per-partition \
     checkpoints.  Every run oracle-certified: zero violations, risk <= K.";
  (report, List.rev !bench)
