(** Byte-level wire format of the networking subsystem.

    Everything that crosses a socket — protocol packets between daemons,
    control traffic between the deployment driver and a daemon, and the
    trace entries a daemon appends to its trace file — is one {e frame}:

    {v
      offset  size  field
      0       2     magic "KW"
      2       1     version (currently 1)
      3       1     kind
      4       4     payload length, u32 LE
      8       4     CRC32 (IEEE, reflected), u32 LE,
                    over bytes 2..7 and the payload
      12      len   payload
    v}

    The checksum covers the version, kind and length fields as well as the
    payload, so no single mutated byte can re-frame a message (the QCheck
    suite pins this, mirroring the durable-store codec).  Decode failures
    are {e reported} — every decoding function returns a [result], and the
    transport counts and surfaces them — never silently dropped.

    Integers inside payloads are int64 LE; strings are u32-length-prefixed
    bytes; application payloads go through the {!App_model.App_intf.wire_format}
    the application provides.  Per-packet layouts are specified in
    PROTOCOL.md §Wire format. *)

val version : int

val header_bytes : int
(** 12: fixed frame header size. *)

val max_frame_payload : int
(** Upper bound a reader enforces on the advertised payload length (16 MiB)
    so a corrupt length field cannot make it allocate unboundedly. *)

(** {1 Frames} *)

val frame : kind:int -> string -> string
(** Wrap a payload into a full frame. *)

val parse_header : string -> pos:int -> (int * int, string) result
(** [parse_header s ~pos] validates magic, version and length bound of the
    12 header bytes at [pos] and returns [(kind, payload_length)].  The CRC
    is checked by {!check_frame} once the payload is available. *)

val check_frame : header:string -> payload:string -> (unit, string) result
(** Verify the CRC of a reassembled frame ([header] is exactly the 12
    header bytes). *)

val decode_frame : string -> pos:int -> (int * string * int, string) result
(** Decode one frame from a buffer: [(kind, payload, next_pos)]. *)

(** {1 Protocol packets} *)

val packet_kind_code : 'msg Recovery.Wire.packet -> int

val encode_packet :
  'msg App_model.App_intf.wire_format -> 'msg Recovery.Wire.packet -> string
(** Full frame for a protocol packet. *)

val decode_packet_body :
  'msg App_model.App_intf.wire_format ->
  kind:int ->
  string ->
  ('msg Recovery.Wire.packet, string) result
(** Decode a checked frame payload back into a packet. *)

val decode_packet :
  'msg App_model.App_intf.wire_format ->
  string ->
  ('msg Recovery.Wire.packet, string) result
(** [decode_frame] + [decode_packet_body] on a single whole-frame string;
    trailing bytes are an error.  (The QCheck properties round-trip through
    this.) *)

(** {1 Data frames with piggybacked logging progress}

    An application message may carry the sender's current logging-progress
    {!Recovery.Wire.notice} in the same frame (kind 9: the notice body
    followed by the app body), so stability news rides data traffic
    instead of waiting for the notice timer; the standalone Notice packet
    remains the fallback for idle peers.  PROTOCOL.md §Wire format has the
    byte layout. *)

val app_notice_kind : int
(** Kind code (9) of a data frame with a piggybacked notice. *)

val encode_data :
  'msg App_model.App_intf.wire_format ->
  ?piggyback:Recovery.Wire.notice ->
  'msg Recovery.Wire.app_message ->
  string
(** Full frame for an application message, with the notice aboard when
    [piggyback] is given.  Without it the frame is byte-identical to
    [encode_packet (App m)]. *)

val decode_data_body :
  'msg App_model.App_intf.wire_format ->
  kind:int ->
  string ->
  ('msg Recovery.Wire.app_message * Recovery.Wire.notice option, string) result
(** Decode a checked data-frame payload (kind [k_app] or
    {!app_notice_kind}) into the message and its piggybacked notice, if
    any. *)

(** {1 Control channel}

    The deployment driver speaks this over a daemon's control socket. *)

type status = {
  st_up : bool;
  st_pending : int;  (** mailbox backlog *)
  st_send_buf : int;
  st_recv_buf : int;
  st_out_buf : int;
  st_deliveries : int;
  st_trace_len : int;
  st_current : Depend.Entry.t;
  st_recovering : bool;  (** a {!Recovery.Node.restart_begin} replay is live *)
  st_replay_pending : int;  (** log records still queued for replay *)
}

type 'msg control =
  | Hello of { pid : int }
      (** first frame on every data connection: identifies the dialer *)
  | Inject of { seq : int; payload : 'msg }
  | Tick of [ `Flush | `Checkpoint | `Notice ]
  | Crash  (** soft fail-stop: lose volatile state, restart in-process *)
  | Status_req
  | Status of status
  | Quit  (** drain: persist trace + metrics files and exit cleanly *)
  | Bye
  | Add_peer of { pid : int; port : int }
      (** live membership: start dialling a (possibly brand-new) peer *)
  | Retire_req
      (** graceful permanent leave: flush, broadcast {!Recovery.Wire.packet.Retire},
          then drain and exit like [Quit] *)
  | Arm_brownout of { slow : float option; rounds : int }
      (** degrade the daemon's store for the next [rounds] flush rounds:
          with [slow = Some d] each fsync is stretched by [d] seconds,
          with [slow = None] flushes refuse as if the disk were full *)
  | Stats_req
      (** scrape the daemon's live metric registry *)
  | Stats of string
      (** reply to [Stats_req]: an {!Obs.Snapshot.to_text} exposition —
          [# koptlog-obs v1] header, then [# TYPE]-declared
          Prometheus-style samples (PROTOCOL.md §Control socket) *)

val control_kind_code : 'msg control -> int

val hello_kind : int
(** Kind code of [Hello], exposed so the transport and the proxy can
    recognise the connection preamble without a payload codec. *)

val encode_control :
  'msg App_model.App_intf.wire_format -> 'msg control -> string

val decode_control_body :
  'msg App_model.App_intf.wire_format ->
  kind:int ->
  string ->
  ('msg control, string) result

val decode_control :
  'msg App_model.App_intf.wire_format ->
  string ->
  ('msg control, string) result

val is_packet_kind : int -> bool

val is_control_kind : int -> bool

(** {1 Primitive readers/writers}

    Shared with {!Trace_codec}; exposed for it and for tests. *)

module Prim : sig
  val put_int : Buffer.t -> int -> unit

  val put_float : Buffer.t -> float -> unit

  val put_string : Buffer.t -> string -> unit

  val put_bool : Buffer.t -> bool -> unit

  val put_entry : Buffer.t -> Depend.Entry.t -> unit

  val put_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit

  val put_option : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a option -> unit

  val put_identity : Buffer.t -> Recovery.Wire.identity -> unit

  val put_announcement : Buffer.t -> Recovery.Wire.announcement -> unit

  val put_output_id : Buffer.t -> Recovery.Wire.output_id -> unit

  (** A cursor over a payload string.  Readers raise [Failure] on
      malformed input; the [decode_*] entry points catch it and return
      [Error]. *)
  type cursor

  val cursor : string -> cursor

  val finished : cursor -> bool

  val fail : cursor -> string -> 'a

  val get_u8 : cursor -> int

  val get_int : cursor -> int

  val get_float : cursor -> float

  val get_string : cursor -> string

  val get_bool : cursor -> bool

  val get_entry : cursor -> Depend.Entry.t

  val get_list : cursor -> (cursor -> 'a) -> 'a list

  val get_option : cursor -> (cursor -> 'a) -> 'a option

  val get_identity : cursor -> Recovery.Wire.identity

  val get_announcement : cursor -> Recovery.Wire.announcement

  val get_output_id : cursor -> Recovery.Wire.output_id

  val run : (cursor -> 'a) -> string -> ('a, string) result
  (** Apply a reader to a whole payload; trailing bytes are an error. *)
end
