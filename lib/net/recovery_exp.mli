(** E16: fast recovery measured on the live deployment.

    Builds a log of known length at one daemon, SIGKILLs it, respawns it
    immediately and races a probe Get against the replay.  Off the merged
    trace it reads, relative to the successor's [Restarted] event,

    - {e ttfr} — time to first request: the probe's [Output_committed],
      answered from the probe's (hot, replayed-first) partition while the
      rest of the log is still being re-executed; and
    - {e ttfull} — time to full recovery: the [Recovery_completed] event.

    Baseline rows replay the whole log on demand; [pckpt] rows arm
    incremental per-partition checkpoints, which bound every partition's
    replay range by the snapshot period.  Every run is certified by the
    causality oracle (zero violations, measured risk at most K). *)

val experiment : ?smoke:bool -> unit -> Harness.Report.t * (string * float) list
(** [smoke] shrinks it to one small certified run for CI.  The float list
    is the bench keys ("E16 ttfr ms ..." / "E16 ttfull ms ...") the caller
    merges into BENCH_net.json.
    @raise Failure on any oracle violation, risk above K, an unanswered
    probe or a replay that never completes. *)
