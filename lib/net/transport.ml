type stats = {
  frames_sent : int;
  frames_dropped : int;
  frames_received : int;
  decode_errors : int;
  reconnects : int;
}

type peer = {
  pid : int;
  port : int;
  queue : string Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable sock : Unix.file_descr option;
}

type t = {
  self : int;
  listen_sock : Unix.file_descr;
  mutable peers : peer list;
  peers_mutex : Mutex.t; (* guards [peers] updates; reads see a whole list *)
  on_frame : src:int -> kind:int -> body:string -> unit;
  on_error : string -> unit;
  max_queue : int;
  backoff_base : float;
  backoff_cap : float;
  mutable stopping : bool;
  counters : Obs.Counter.t array; (* sent, dropped, received, decode_errors, reconnects *)
  counters_mutex : Mutex.t; (* serializes writer-thread bumps and [stats] reads *)
}

let c_sent = 0

let c_dropped = 1

let c_received = 2

let c_decode_errors = 3

let c_reconnects = 4

let bump_n t i n =
  if n > 0 then begin
    Mutex.lock t.counters_mutex;
    Obs.Counter.add t.counters.(i) n;
    Mutex.unlock t.counters_mutex
  end

let bump t i = bump_n t i 1

let loopback port = Unix.ADDR_INET (Unix.inet_addr_loopback, port)

(* Read exactly [n] bytes; [None] on EOF or any socket error (the
   connection is finished either way). *)
let read_exact fd n =
  let buf = Bytes.create n in
  let rec loop off =
    if off = n then Some (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> None
      | k -> loop (off + k)
      | exception Unix.Unix_error _ -> None
  in
  loop 0

let write_all fd s =
  let buf = Bytes.unsafe_of_string s in
  let n = Bytes.length buf in
  let rec loop off =
    if off = n then true
    else
      match Unix.write fd buf off (n - off) with
      | 0 -> false
      | k -> loop (off + k)
      | exception Unix.Unix_error _ -> false
  in
  loop 0

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* One inbound connection: a Hello frame naming the dialer, then a stream
   of frames.  Any framing or checksum error is reported and kills the
   connection — the dialer's backoff loop brings up a fresh one. *)
let read_frame t fd =
  match read_exact fd Wire_codec.header_bytes with
  | None -> None
  | Some header -> (
    match Wire_codec.parse_header header ~pos:0 with
    | Error e ->
      bump t c_decode_errors;
      t.on_error (Fmt.str "inbound frame header: %s" e);
      None
    | Ok (kind, len) -> (
      match if len = 0 then Some "" else read_exact fd len with
      | None -> None
      | Some payload -> (
        match Wire_codec.check_frame ~header ~payload with
        | Error e ->
          bump t c_decode_errors;
          t.on_error (Fmt.str "inbound frame: %s" e);
          None
        | Ok () -> Some (kind, payload))))

let reader_loop t fd =
  let src =
    match read_frame t fd with
    | Some (kind, payload) when kind = Wire_codec.hello_kind ->
      (* The hello payload is a bare pid (see Wire_codec.encode_control). *)
      Result.to_option
        (Wire_codec.Prim.run Wire_codec.Prim.get_int payload)
    | Some _ ->
      bump t c_decode_errors;
      t.on_error "inbound connection did not start with Hello";
      None
    | None -> None
  in
  match src with
  | None -> close_quiet fd
  | Some src ->
    let rec loop () =
      match read_frame t fd with
      | None -> close_quiet fd
      | Some (kind, body) ->
        bump t c_received;
        (try t.on_frame ~src ~kind ~body
         with exn ->
           t.on_error (Fmt.str "frame handler raised: %s" (Printexc.to_string exn)));
        loop ()
    in
    loop ()

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listen_sock with
    | fd, _ ->
      ignore (Thread.create (reader_loop t) fd : Thread.t);
      loop ()
    | exception Unix.Unix_error _ -> () (* listener closed: shutting down *)
  in
  loop ()

let hello_frame self =
  Wire_codec.encode_control App_model.App_intf.string_wire_format
    (Wire_codec.Hello { pid = self })

(* Sleep [d] seconds in small slices, returning early once [close] sets
   the stop flag — a writer parked in a multi-second backoff must not hold
   shutdown hostage for the remainder of its nap (the graceful-quit test
   asserts a bound on shutdown latency). *)
let interruptible_delay t d =
  let slice = 0.02 in
  let rec nap remaining =
    if (not t.stopping) && remaining > 0. then begin
      Thread.delay (Float.min slice remaining);
      nap (remaining -. slice)
    end
  in
  nap d

(* Dial with exponential backoff until connected or shutdown. *)
let rec dial t peer ~backoff ~first =
  if t.stopping then None
  else begin
    if not first then bump t c_reconnects;
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match
      Unix.connect fd (loopback peer.port);
      Unix.setsockopt fd Unix.TCP_NODELAY true
    with
    | () ->
      if write_all fd (hello_frame t.self) then Some fd
      else begin
        close_quiet fd;
        interruptible_delay t backoff;
        dial t peer ~backoff:(Float.min (2. *. backoff) t.backoff_cap) ~first:false
      end
    | exception Unix.Unix_error _ ->
      close_quiet fd;
      interruptible_delay t backoff;
      dial t peer ~backoff:(Float.min (2. *. backoff) t.backoff_cap) ~first:false
  end

(* Each wakeup drains the peer's whole queue and writes it as one
   coalesced batch: frames are self-delimiting (header carries the
   length), so concatenation is exactly the byte stream N separate writes
   would have produced, for one syscall instead of N.  The QCheck suite
   pins that a coalesced batch decodes to the same frame sequence.

   Retry accounting distinguishes the two failure modes: [writes] counts
   write failures on the current connection (a batch cut mid-write is
   discarded by the receiver's checksum, so a retry can at worst duplicate
   — which the protocol suppresses by identity) and resets to zero after
   every successful dial, because a fresh connection deserves a fresh
   budget; [dials] bounds reconnect cycles within one batch so a peer that
   accepts and immediately resets cannot spin this thread forever.  Every
   frame popped from the queue is counted exactly once, as sent or as
   dropped — including when shutdown lands mid-batch. *)
let writer_loop t peer =
  let first = ref true in
  let buf = Buffer.create 4096 in
  let rec loop () =
    Mutex.lock peer.mutex;
    while Queue.is_empty peer.queue && not t.stopping do
      Condition.wait peer.nonempty peer.mutex
    done;
    if t.stopping then Mutex.unlock peer.mutex
    else begin
      Buffer.clear buf;
      let count = ref 0 in
      while not (Queue.is_empty peer.queue) do
        Buffer.add_string buf (Queue.pop peer.queue);
        incr count
      done;
      Mutex.unlock peer.mutex;
      let batch = Buffer.contents buf in
      let n = !count in
      let rec send_batch ~dials ~writes =
        if t.stopping then bump_n t c_dropped n
        else
          match peer.sock with
          | Some fd ->
            if write_all fd batch then bump_n t c_sent n
            else begin
              (* Close under the peer mutex, and only if [close t] has not
                 raced us to it: a second close of the same descriptor
                 number can land on an unrelated fd opened in between. *)
              Mutex.lock peer.mutex;
              (match peer.sock with
              | Some fd' when fd' == fd ->
                close_quiet fd;
                peer.sock <- None
              | _ -> ());
              Mutex.unlock peer.mutex;
              if writes < 2 then send_batch ~dials ~writes:(writes + 1)
              else bump_n t c_dropped n
            end
          | None -> (
            match dial t peer ~backoff:t.backoff_base ~first:!first with
            | None -> bump_n t c_dropped n (* shutdown *)
            | Some fd ->
              first := false;
              peer.sock <- Some fd;
              if dials < 2 then send_batch ~dials:(dials + 1) ~writes:0
              else bump_n t c_dropped n)
      in
      send_batch ~dials:0 ~writes:0;
      loop ()
    end
  in
  loop ()

let create ~self ~listen_port ~peers ~on_frame ?(on_error = fun _ -> ())
    ?(max_queue = 1024) ?(backoff_base = 0.05) ?(backoff_cap = 2.) ?obs () =
  let obs = match obs with Some r -> r | None -> Obs.Registry.create () in
  (* A peer SIGKILLed mid-write must surface as EPIPE (handled per write),
     not kill this process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_sock Unix.SO_REUSEADDR true;
  Unix.bind listen_sock (loopback listen_port);
  Unix.listen listen_sock 64;
  let make_peer (pid, port) =
    {
      pid;
      port;
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      sock = None;
    }
  in
  let peers = List.map make_peer peers in
  let t =
    {
      self;
      listen_sock;
      peers;
      peers_mutex = Mutex.create ();
      on_frame;
      on_error;
      max_queue;
      backoff_base;
      backoff_cap;
      stopping = false;
      counters =
        (let c name = Obs.Registry.counter obs ("transport_" ^ name) in
         [|
           c "frames_sent_total"; c "frames_dropped_total"; c "frames_received_total";
           c "decode_errors_total"; c "reconnects_total";
         |]);
      counters_mutex = Mutex.create ();
    }
  in
  ignore (Thread.create accept_loop t : Thread.t);
  List.iter (fun peer -> ignore (Thread.create (writer_loop t) peer : Thread.t)) peers;
  t

(* Late peer registration: a joiner dialled after creation.  Known pids are
   a no-op (re-announcing an existing peer must not spawn a second writer);
   new ones get the same queue + writer-thread setup as creation-time
   peers.  The list is replaced whole under the mutex, so concurrent
   [send]/[broadcast] reads see either the old or the new membership,
   never a torn list. *)
let add_peer t ~pid ~port =
  Mutex.lock t.peers_mutex;
  if List.exists (fun p -> p.pid = pid) t.peers || t.stopping then
    Mutex.unlock t.peers_mutex
  else begin
    let peer =
      {
        pid;
        port;
        queue = Queue.create ();
        mutex = Mutex.create ();
        nonempty = Condition.create ();
        sock = None;
      }
    in
    t.peers <- t.peers @ [ peer ];
    Mutex.unlock t.peers_mutex;
    ignore (Thread.create (writer_loop t) peer : Thread.t)
  end

let send t ~dst frame =
  match List.find_opt (fun p -> p.pid = dst) t.peers with
  | None -> bump t c_dropped
  | Some peer ->
    Mutex.lock peer.mutex;
    if Queue.length peer.queue >= t.max_queue then bump t c_dropped
    else begin
      Queue.add frame peer.queue;
      Condition.signal peer.nonempty
    end;
    Mutex.unlock peer.mutex

let broadcast t frame = List.iter (fun p -> send t ~dst:p.pid frame) t.peers

let stats t =
  Mutex.lock t.counters_mutex;
  let s =
    {
      frames_sent = Obs.Counter.value t.counters.(c_sent);
      frames_dropped = Obs.Counter.value t.counters.(c_dropped);
      frames_received = Obs.Counter.value t.counters.(c_received);
      decode_errors = Obs.Counter.value t.counters.(c_decode_errors);
      reconnects = Obs.Counter.value t.counters.(c_reconnects);
    }
  in
  Mutex.unlock t.counters_mutex;
  s

let close t =
  t.stopping <- true;
  close_quiet t.listen_sock;
  List.iter
    (fun peer ->
      Mutex.lock peer.mutex;
      (match peer.sock with
      | Some fd ->
        close_quiet fd;
        peer.sock <- None
      | None -> ());
      (* Frames still queued will never be popped by a writer: count them
         dropped here so sent + dropped accounts for every accepted frame
         even across shutdown.  (Frames a writer already popped are its to
         count, exactly once, in its batch path.) *)
      bump_n t c_dropped (Queue.length peer.queue);
      Queue.clear peer.queue;
      Condition.broadcast peer.nonempty;
      Mutex.unlock peer.mutex)
    t.peers
