(** E17: membership churn and degraded modes on the live deployment.

    One oracle-certified run per K walks a real cluster through every
    membership transition — join (vector widening per Corollary 3),
    mid-churn SIGKILL, graceful retire (Theorem 2 frontier broadcast),
    rejoin over the retiree's own store, a rolling restart of the full
    widened cluster — and then arms a disk-full brownout window on one
    daemon's store, checking the degradation is reported (refused-flush
    counter) but never visible to the oracle: zero violations and
    measured risk at most K over the merged trace at the final
    membership width. *)

type measure = {
  width : int;  (** final membership width (launch n + joins) *)
  deliveries : int;
  degraded : int;  (** flushes refused during the brownout window *)
  risk : int;  (** max measured risk over the merged trace *)
}

val experiment : ?smoke:bool -> unit -> Harness.Report.t * (string * float) list
(** Run E17; [smoke] shrinks it to one small k=1 run covering the full
    churn sequence.  Returns the report and the bench keys to merge into
    BENCH_net.json (full mode only).
    @raise Failure on any oracle violation, on risk exceeding K, or if
    the brownout window refused no flush. *)
