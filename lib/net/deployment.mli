(** Multi-process deployment: real daemons on loopback TCP.

    Forks N [koptnode] daemons (the kvstore application over the durable
    store), drives a workload through their control sockets, SIGKILLs and
    respawns processes mid-run, optionally routes all traffic through the
    fault-injecting {!Proxy}, then merges the per-process trace files and
    certifies the merged trace with {!Harness.Oracle} — the same
    end-to-end correctness argument the simulator uses, now across real
    process boundaries, real sockets and real kills.

    Trace merging: per-process files are concatenated and sorted by
    (wall-clock time, pid, file position); the daemons share one epoch
    ([--epoch]) so timestamps are comparable, and a causal successor is
    always later than its cause because a real network message takes
    strictly positive time.  A SIGKILLed daemon never wrote its
    [Trace.Crashed] event, so the merge {e synthesises} it in front of the
    successor incarnation's [Restarted]: the announcement in that event
    pins the crashed incarnation, and the replay frontier pins the first
    lost interval.  DESIGN.md §E14 spells out why this reconstruction is
    exact. *)

type t

val launch :
  n:int ->
  k:int ->
  ?app:string ->
  ?retransmit:float ->
  ?ckpt_interval:float ->
  ?part_ckpt:float ->
  ?time_scale:float ->
  ?plan:Harness.Netmodel.fault_plan ->
  ?seed:int ->
  ?root:string ->
  ?exe:string ->
  unit ->
  t
(** Start [n] daemons with degree of optimism [k] on free loopback ports.
    [app] (default ["kvstore"]) selects the application the daemons run —
    any name [koptnode --app] accepts (["shardkv"] is the sharded store).
    With [plan], every inter-daemon connection is routed through a
    {!Proxy} applying it.  [root] (default: a fresh temp dir) holds the
    per-process store dirs, trace files, metrics files and daemon logs.
    [exe] overrides daemon binary discovery ([$KOPTNODE_EXE], the build
    tree, or a sibling of the running executable).  [ckpt_interval]
    overrides the daemons' full-checkpoint period (0 disables it);
    [part_ckpt] arms incremental per-partition checkpointing with the
    given period — both in abstract time units. *)

val n : t -> int
(** Launch-time cluster size (the width incumbents were configured with). *)

val width : t -> int
(** Current membership width: [n] plus every {!add_node} since launch
    (retired pids keep their slots, so the width never shrinks). *)

val retired : t -> int list
(** Pids gracefully retired so far, newest first. *)

val config : t -> Recovery.Config.t
(** The (hardened) configuration every daemon runs. *)

val root : t -> string

val epoch : t -> float
(** The shared wall-clock origin (Unix time) of every daemon's trace
    timestamps: [epoch +. time *. time_scale] converts a merged-trace
    entry back to wall clock, which is how client-visible latency is
    measured against injection times. *)

val time_scale : t -> float

val inject : t -> dst:int -> App_model.Kvstore_app.msg -> unit
(** Deliver a client message to daemon [dst] (a fresh outside-world
    sequence number is assigned). *)

val inject_app :
  t -> dst:int -> wire:'msg App_model.App_intf.wire_format -> 'msg -> unit
(** {!inject} for deployments running a different application: the payload
    is encoded with the given wire format, which must match the daemons'
    [--app] (a mismatch is counted by the daemon as a decode failure,
    never misread). *)

val tick : t -> dst:int -> [ `Flush | `Checkpoint | `Notice ] -> unit

val status : t -> dst:int -> Wire_codec.status option
(** Poll a daemon's control socket; [None] if it cannot be reached. *)

val scrape : t -> dst:int -> (Obs.Snapshot.t, string) result option
(** Scrape daemon [dst]'s live metric registry over the control socket
    ([Stats_req]): the parsed exposition, [Error] if the daemon answered
    with text {!Obs.Snapshot.of_text} rejects (a format regression worth
    failing on), [None] if it cannot be reached.  The snapshot is a
    consistent cut of the daemon's registry taken by its main loop, so
    cross-metric invariants (e.g. [flush_rounds_total] at least the
    fsync histogram's count) hold within one scrape. *)

val kill : t -> dst:int -> unit
(** SIGKILL daemon [dst], wait {!Recovery.Config.real_restart_delay}, and
    respawn it over the same store directory — the successor incarnation
    recovers from whatever the killed one had made durable. *)

val kill_only : t -> dst:int -> unit
(** SIGKILL daemon [dst] and reap it, without respawning — the recovery
    tests separate the kill from the {!respawn} so they can catch (and
    re-kill) the successor mid-replay. *)

val respawn : t -> dst:int -> unit
(** Start a fresh incarnation of a {!kill_only}ed daemon over its store
    directory. *)

(** {1 Membership churn} *)

val add_node : t -> int
(** Grow the cluster by one live daemon: allocates ports and a store
    directory for the next pid, tells every incumbent to start dialling it
    ([Add_peer] control), and spawns it with [--join] so it announces
    itself — incumbents widen their dependency vectors when the Join
    broadcast reaches them (Corollary 3 makes the joiner's empty vector
    sound).  Returns the new pid.  Joiners bypass the fault proxy (its
    route table is fixed at launch). *)

val retire : t -> dst:int -> unit
(** Graceful permanent leave: the daemon flushes, broadcasts its final
    frontier ({!Recovery.Wire.packet.Retire} — survivors treat its entries
    as stable forever, per Theorem 2), drains and exits.  No successor is
    spawned; the pid's trace and metrics still join the final merge. *)

val rejoin : t -> dst:int -> unit
(** Bring a {!retire}d pid back: a fresh daemon over the same store
    directory, spawned with [--join] so it re-announces itself (a
    rejoining process is just a joiner whose stable past the survivors
    already hold, per Theorem 2).  A no-op for pids not retired. *)

val rolling_restart : ?timeout:float -> t -> bool
(** SIGKILL + respawn every live daemon in turn, waiting for the cluster
    to {!settle} between victims so at most one process is down at a time.
    [false] if any settle timed out. *)

val arm_brownout :
  t -> dst:int -> ?slow:float -> rounds:int -> unit -> unit
(** Degrade daemon [dst]'s store for its next [rounds] flush rounds: with
    [slow] each fsync stretches by that many seconds; without it, flushes
    refuse as if the disk were full (ENOSPC brownout).  Degradation is
    graceful: refused records stay volatile and the K-rule keeps the
    daemon's sends gated, so correctness is never traded for progress. *)

val run_workload : t -> ops:int -> seed:int -> unit
(** Inject a deterministic kvstore workload (Puts with interleaved Gets)
    round-robin across the cluster. *)

val settle : ?timeout:float -> t -> bool
(** Poll until every daemon is up with empty protocol buffers, no replay
    in progress, an idle mailbox and a delivery count stable across
    consecutive polls; [false] on [timeout] (default 30 s). *)

type outcome = {
  trace : Recovery.Trace.t;  (** merged, globally ordered *)
  damage : string list;
      (** torn-tail reports from trace-file loads and unparseable
          metrics files *)
  synthesized_crashes : int;  (** [Crashed] events reconstructed at merge *)
  oracle : Harness.Oracle.report;
  obs : Obs.Snapshot.t;
      (** every daemon's Quit-time registry snapshot, merged with
          {!Obs.Snapshot.merge_all}: counters and histogram buckets sum
          across the cluster, so e.g. the fsync-latency histogram here is
          the cluster-wide latency distribution.  A daemon reaped without
          draining contributes an empty snapshot (its metrics file was
          never written) — trace evidence is unaffected. *)
  counters : (string * int) list;
      (** flat view over [obs]: every counter family, summed ([_total]
          names, e.g. ["deliveries_total"]) *)
  proxy : Proxy.stats option;
  transport_drops : int;  (** frames daemons reported undecodable (from logs) *)
  decode_errors : int;
      (** summed [transport_decode_errors_total] counters: inbound frames
          whose checksum or payload failed to decode, cluster-wide *)
  frames_dropped : int;
      (** summed [transport_frames_dropped_total] counters: outbound
          frames shed to per-peer queue overflow *)
}

val counter : (string * int) list -> string -> int
(** Look up a summed metrics counter ([0] if absent). *)

val check_fault_free : outcome -> unit
(** Certification tightening for runs with no proxy and no kills: a
    benign network must decode every frame and shed none, so
    @raise Failure if [decode_errors] or [frames_dropped] is nonzero. *)

val finish : t -> outcome
(** Drain every daemon (Quit → metrics + final trace sync), reap the
    processes, stop the proxy, merge and certify.  The deployment is dead
    afterwards; its [root] is left on disk for inspection. *)

val destroy : t -> unit
(** Force-kill anything still running and delete [root]. *)

(** {1 Experiment / smoke entry points} *)

val experiment : ?smoke:bool -> unit -> Harness.Report.t
(** E14: oracle-certified multi-process runs across K, with a mid-run
    SIGKILL and a proxy fault plan.  Every run also {!scrape}s each live
    daemon mid-load and fails on an unparseable exposition or a cluster
    that shows zero [deliveries_total] — the CI net smoke's stats-plane
    gate.  [smoke] shrinks it to one small oracle-certified run (one
    kill) for CI.
    @raise Failure on any oracle violation. *)
