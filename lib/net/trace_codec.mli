(** Serialization of execution-trace entries.

    Each daemon appends its {!Recovery.Trace} entries to a per-process
    trace file as they happen (one {!Wire_codec} frame per entry, flushed
    after every protocol step), so the trace written {e before} a [SIGKILL]
    survives the kill.  The deployment driver loads the per-process files,
    merges them into one global trace and certifies it with the offline
    causality oracle — the same end-to-end argument the simulator and the
    threaded runtime use, now across real process boundaries.

    A file killed mid-append ends in a torn frame; the loader truncates at
    the first undecodable byte and {e reports} the damage, mirroring the
    durable store's open-time recovery discipline. *)

val encode_entry : Recovery.Trace.entry -> string
(** One full frame. *)

val decode_entry : string -> (Recovery.Trace.entry, string) result

type load = {
  entries : Recovery.Trace.entry list;  (** file order *)
  damage : string option;
      (** [Some reason] if the file ended in a torn or corrupt frame;
          never silent *)
}

val decode_stream : string -> load
(** Decode concatenated frames until the bytes run out or stop decoding. *)

val load_file : string -> (load, string) result
(** [Error] only if the file cannot be read at all. *)

(** {1 Incremental writer} *)

type writer

val open_writer : string -> writer
(** Open (append mode, created if missing) a trace file. *)

val append : writer -> Recovery.Trace.entry list -> unit
(** Write entries and flush them to the file descriptor, so they survive a
    subsequent [SIGKILL] of the writing process. *)

val close_writer : writer -> unit

val sync : writer -> Recovery.Trace.t -> unit
(** Append every entry of [trace] beyond what this writer already wrote —
    the daemon calls this after each protocol step. *)
