open Depend
module Wire = Recovery.Wire
module App_intf = App_model.App_intf

let version = 1

let header_bytes = 12

let max_frame_payload = 16 * 1024 * 1024

let magic0 = 'K'

let magic1 = 'W'

(* ------------------------------------------------------------------ *)
(* Primitives                                                          *)

module Prim = struct
  let put_int b v =
    let s = Bytes.create 8 in
    Bytes.set_int64_le s 0 (Int64.of_int v);
    Buffer.add_bytes b s

  let put_float b v =
    let s = Bytes.create 8 in
    Bytes.set_int64_le s 0 (Int64.bits_of_float v);
    Buffer.add_bytes b s

  let put_string b s =
    put_int b (String.length s);
    Buffer.add_string b s

  let put_bool b v = Buffer.add_char b (if v then '\x01' else '\x00')

  let put_entry b (e : Entry.t) =
    put_int b e.Entry.inc;
    put_int b e.Entry.sii

  let put_list b put xs =
    put_int b (List.length xs);
    List.iter (put b) xs

  let put_option b put = function
    | None -> put_bool b false
    | Some v ->
      put_bool b true;
      put b v

  let put_identity b (id : Wire.identity) =
    put_int b id.Wire.origin;
    put_entry b id.Wire.origin_interval;
    put_int b id.Wire.idx

  let put_announcement b (a : Wire.announcement) =
    put_int b a.Wire.from_;
    put_entry b a.Wire.ending;
    put_bool b a.Wire.failure

  let put_output_id b (o : Wire.output_id) =
    put_entry b o.Wire.out_interval;
    put_int b o.Wire.out_idx

  type cursor = { s : string; mutable pos : int }

  let cursor s = { s; pos = 0 }

  let finished c = c.pos = String.length c.s

  let fail _c msg = failwith msg

  let need c n =
    if c.pos + n > String.length c.s then
      failwith (Fmt.str "short payload: need %d bytes at offset %d of %d" n c.pos
                  (String.length c.s))

  let get_int c =
    need c 8;
    let v = Int64.to_int (String.get_int64_le c.s c.pos) in
    c.pos <- c.pos + 8;
    v

  let get_float c =
    need c 8;
    let v = Int64.float_of_bits (String.get_int64_le c.s c.pos) in
    c.pos <- c.pos + 8;
    v

  let get_string c =
    let len = get_int c in
    if len < 0 then failwith "negative string length";
    need c len;
    let v = String.sub c.s c.pos len in
    c.pos <- c.pos + len;
    v

  let get_u8 c =
    need c 1;
    let v = Char.code c.s.[c.pos] in
    c.pos <- c.pos + 1;
    v

  let get_bool c =
    need c 1;
    let v =
      match c.s.[c.pos] with
      | '\x00' -> false
      | '\x01' -> true
      | ch -> failwith (Fmt.str "bad bool byte %#x" (Char.code ch))
    in
    c.pos <- c.pos + 1;
    v

  let get_entry c =
    let inc = get_int c in
    let sii = get_int c in
    Entry.make ~inc ~sii

  let get_list c get =
    let n = get_int c in
    if n < 0 || n > max_frame_payload then failwith "bad list length";
    List.init n (fun _ -> get c)

  let get_option c get = if get_bool c then Some (get c) else None

  let get_identity c =
    let origin = get_int c in
    let origin_interval = get_entry c in
    let idx = get_int c in
    { Wire.origin; origin_interval; idx }

  let get_announcement c =
    let from_ = get_int c in
    let ending = get_entry c in
    let failure = get_bool c in
    { Wire.from_; ending; failure }

  let get_output_id c =
    let out_interval = get_entry c in
    let out_idx = get_int c in
    { Wire.out_interval; out_idx }

  let run reader s =
    match
      let c = cursor s in
      let v = reader c in
      if not (finished c) then
        failwith (Fmt.str "trailing bytes: %d consumed of %d" c.pos
                    (String.length s));
      v
    with
    | v -> Ok v
    | exception Failure msg -> Error msg
end

open Prim

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)

let frame ~kind payload =
  if kind < 0 || kind > 0xFF then invalid_arg "Wire_codec.frame: kind out of range";
  let len = String.length payload in
  if len > max_frame_payload then invalid_arg "Wire_codec.frame: payload too large";
  let head = Bytes.create header_bytes in
  Bytes.set head 0 magic0;
  Bytes.set head 1 magic1;
  Bytes.set head 2 (Char.chr version);
  Bytes.set head 3 (Char.chr kind);
  Bytes.set_int32_le head 4 (Int32.of_int len);
  let crc =
    Durable.Codec.crc32
      ~init:(Durable.Codec.crc32 (Bytes.unsafe_to_string head) ~pos:2 ~len:6)
      payload ~pos:0 ~len
  in
  Bytes.set_int32_le head 8 (Int32.of_int crc);
  Bytes.unsafe_to_string head ^ payload

let get_le32 s pos = Int32.to_int (String.get_int32_le s pos) land 0xFFFFFFFF

let parse_header s ~pos =
  if pos < 0 || pos + header_bytes > String.length s then Error "short frame header"
  else if s.[pos] <> magic0 || s.[pos + 1] <> magic1 then
    Error
      (Fmt.str "bad frame magic %#x %#x" (Char.code s.[pos]) (Char.code s.[pos + 1]))
  else if Char.code s.[pos + 2] <> version then
    Error (Fmt.str "unsupported wire version %d (want %d)" (Char.code s.[pos + 2])
             version)
  else begin
    let kind = Char.code s.[pos + 3] in
    let len = get_le32 s (pos + 4) in
    if len > max_frame_payload then Error (Fmt.str "frame payload length %d too large" len)
    else Ok (kind, len)
  end

let frame_crc ~header ~pos ~payload =
  Durable.Codec.crc32
    ~init:(Durable.Codec.crc32 header ~pos:(pos + 2) ~len:6)
    payload ~pos:0 ~len:(String.length payload)

let check_frame ~header ~payload =
  match parse_header header ~pos:0 with
  | Error _ as e -> e
  | Ok (_, len) ->
    if len <> String.length payload then Error "frame length mismatch"
    else begin
      let expect = get_le32 header 8 in
      if frame_crc ~header ~pos:0 ~payload <> expect then
        Error "frame checksum mismatch"
      else Ok ()
    end

let decode_frame s ~pos =
  match parse_header s ~pos with
  | Error _ as e -> e
  | Ok (kind, len) ->
    if pos + header_bytes + len > String.length s then Error "truncated frame"
    else begin
      let payload = String.sub s (pos + header_bytes) len in
      let expect = get_le32 s (pos + 8) in
      if frame_crc ~header:s ~pos ~payload <> expect then
        Error "frame checksum mismatch"
      else Ok (kind, payload, pos + header_bytes + len)
    end

(* ------------------------------------------------------------------ *)
(* Protocol packets                                                    *)

let k_hello = 1

let k_app = 2

let k_ann = 3

let k_notice = 4

let k_ack = 5

let k_flush_request = 6

let k_dep_query = 7

let k_dep_reply = 8

let k_app_notice = 9 (* App + piggybacked logging-progress Notice *)

let k_join = 10

let k_retire = 11

let k_inject = 16

let k_tick_flush = 17

let k_tick_checkpoint = 18

let k_tick_notice = 19

let k_crash = 20

let k_status_req = 21

let k_status = 22

let k_quit = 23

let k_bye = 24

let k_add_peer = 25

let k_retire_req = 26

let k_arm_brownout = 27

let k_stats_req = 28

let k_stats = 29

let hello_kind = k_hello

let app_notice_kind = k_app_notice

let is_packet_kind k = k >= k_app && k <= k_retire

let is_control_kind k = k = k_hello || (k >= k_inject && k <= k_stats)

let packet_kind_code : type msg. msg Wire.packet -> int = function
  | Wire.App _ -> k_app
  | Wire.Ann _ -> k_ann
  | Wire.Notice _ -> k_notice
  | Wire.Ack _ -> k_ack
  | Wire.Flush_request _ -> k_flush_request
  | Wire.Dep_query _ -> k_dep_query
  | Wire.Dep_reply _ -> k_dep_reply
  | Wire.Join _ -> k_join
  | Wire.Retire _ -> k_retire

let put_dep b (pid, entry) =
  put_int b pid;
  put_entry b entry

let get_dep c =
  let pid = get_int c in
  let entry = get_entry c in
  (pid, entry)

let put_dep_info b = function
  | Wire.Gone -> put_bool b false
  | Wire.Info { stable; parents } ->
    put_bool b true;
    put_bool b stable;
    put_list b put_dep parents

let get_dep_info c =
  if not (get_bool c) then Wire.Gone
  else begin
    let stable = get_bool c in
    let parents = get_list c get_dep in
    Wire.Info { stable; parents }
  end

(* The App and Notice bodies are shared with the piggyback frame (kind
   [k_app_notice]), whose payload is the Notice fields followed by the App
   fields. *)
let put_app_body (wf : 'msg App_intf.wire_format) b (m : 'msg Wire.app_message) =
  put_identity b m.Wire.id;
  put_int b m.Wire.src;
  put_int b m.Wire.dst;
  put_entry b m.Wire.send_interval;
  put_list b put_dep m.Wire.dep;
  put_string b (wf.App_intf.write m.Wire.payload)

let put_notice_body b (n : Wire.notice) =
  put_int b n.Wire.from_;
  put_list b
    (fun b (pid, entries) ->
      put_int b pid;
      put_list b put_entry entries)
    n.Wire.rows;
  put_list b put_announcement n.Wire.anns

let get_notice_body c =
  let from_ = get_int c in
  let rows =
    get_list c (fun c ->
        let pid = get_int c in
        let entries = get_list c get_entry in
        (pid, entries))
  in
  let anns = get_list c get_announcement in
  { Wire.from_; rows; anns }

(* The raw app fields; the application payload is returned undecoded so
   the caller can report its errors distinctly. *)
let get_app_fields c =
  let id = get_identity c in
  let src = get_int c in
  let dst = get_int c in
  let send_interval = get_entry c in
  let dep = get_list c get_dep in
  let payload = get_string c in
  (id, src, dst, send_interval, dep, payload)

let app_of_fields (wf : 'msg App_intf.wire_format)
    (id, src, dst, send_interval, dep, payload) =
  match wf.App_intf.read payload with
  | Error e -> Error (Fmt.str "app payload: %s" e)
  | Ok payload -> Ok { Wire.id; src; dst; send_interval; dep; payload }

let encode_packet (wf : 'msg App_intf.wire_format) (p : 'msg Wire.packet) =
  let b = Buffer.create 64 in
  (match p with
  | Wire.App m -> put_app_body wf b m
  | Wire.Ann a -> put_announcement b a
  | Wire.Notice n -> put_notice_body b n
  | Wire.Ack a ->
    put_int b a.Wire.from_;
    put_int b a.Wire.to_;
    put_list b put_identity a.Wire.ids
  | Wire.Flush_request { from_ } -> put_int b from_
  | Wire.Dep_query { from_; intervals } ->
    put_int b from_;
    put_list b put_entry intervals
  | Wire.Dep_reply { from_; infos } ->
    put_int b from_;
    put_list b
      (fun b (interval, info) ->
        put_entry b interval;
        put_dep_info b info)
      infos
  | Wire.Join { from_; n; current } ->
    put_int b from_;
    put_int b n;
    put_entry b current
  | Wire.Retire { from_; upto } ->
    put_int b from_;
    put_entry b upto);
  frame ~kind:(packet_kind_code p) (Buffer.contents b)

let decode_packet_body (wf : 'msg App_intf.wire_format) ~kind body =
  if kind = k_app then
    (* Two layers can reject an app message: the generic reader and the
       application's own payload format.  Both surface as [Error]. *)
    Result.bind (run get_app_fields body) (fun fields ->
        Result.map (fun m -> Wire.App m) (app_of_fields wf fields))
  else
    run
      (fun c ->
        if kind = k_ann then Wire.Ann (get_announcement c)
        else if kind = k_notice then Wire.Notice (get_notice_body c)
        else if kind = k_ack then begin
          let from_ = get_int c in
          let to_ = get_int c in
          let ids = get_list c get_identity in
          Wire.Ack { Wire.from_; to_; ids }
        end
        else if kind = k_flush_request then Wire.Flush_request { from_ = get_int c }
        else if kind = k_dep_query then begin
          let from_ = get_int c in
          let intervals = get_list c get_entry in
          Wire.Dep_query { from_; intervals }
        end
        else if kind = k_dep_reply then begin
          let from_ = get_int c in
          let infos =
            get_list c (fun c ->
                let interval = get_entry c in
                let info = get_dep_info c in
                (interval, info))
          in
          Wire.Dep_reply { from_; infos }
        end
        else if kind = k_join then begin
          let from_ = get_int c in
          let n = get_int c in
          let current = get_entry c in
          if from_ < 0 || n < from_ + 1 then failwith "bad join widths";
          Wire.Join { from_; n; current }
        end
        else if kind = k_retire then begin
          let from_ = get_int c in
          let upto = get_entry c in
          if from_ < 0 then failwith "bad retire pid";
          Wire.Retire { from_; upto }
        end
        else fail c (Fmt.str "unknown packet kind %d" kind))
      body

let decode_packet wf s =
  match decode_frame s ~pos:0 with
  | Error _ as e -> e
  | Ok (kind, body, next) ->
    if next <> String.length s then Error "trailing bytes after frame"
    else decode_packet_body wf ~kind body

(* ------------------------------------------------------------------ *)
(* Data frames with piggybacked logging progress

   An application message can carry the sender's current Notice in the
   same frame (kind [k_app_notice]: the notice body, then the app body),
   so logging-progress news rides data traffic instead of waiting for the
   notice timer; the standalone Notice packet remains the fallback for
   idle peers.  Without a piggyback, [encode_data] emits a plain App
   frame, byte-identical to [encode_packet (App m)]. *)

let encode_data (wf : 'msg App_intf.wire_format) ?piggyback
    (m : 'msg Wire.app_message) =
  let b = Buffer.create 64 in
  match piggyback with
  | None ->
    put_app_body wf b m;
    frame ~kind:k_app (Buffer.contents b)
  | Some notice ->
    put_notice_body b notice;
    put_app_body wf b m;
    frame ~kind:k_app_notice (Buffer.contents b)

let decode_data_body (wf : 'msg App_intf.wire_format) ~kind body =
  if kind = k_app then
    Result.bind (run get_app_fields body) (fun fields ->
        Result.map (fun m -> (m, None)) (app_of_fields wf fields))
  else if kind = k_app_notice then
    Result.bind
      (run
         (fun c ->
           let notice = get_notice_body c in
           let fields = get_app_fields c in
           (notice, fields))
         body)
      (fun (notice, fields) ->
        Result.map (fun m -> (m, Some notice)) (app_of_fields wf fields))
  else Error (Fmt.str "not a data frame (kind %d)" kind)

(* ------------------------------------------------------------------ *)
(* Control channel                                                     *)

type status = {
  st_up : bool;
  st_pending : int;
  st_send_buf : int;
  st_recv_buf : int;
  st_out_buf : int;
  st_deliveries : int;
  st_trace_len : int;
  st_current : Entry.t;
  st_recovering : bool;
  st_replay_pending : int;
}

type 'msg control =
  | Hello of { pid : int }
  | Inject of { seq : int; payload : 'msg }
  | Tick of [ `Flush | `Checkpoint | `Notice ]
  | Crash
  | Status_req
  | Status of status
  | Quit
  | Bye
  | Add_peer of { pid : int; port : int }
  | Retire_req
  | Arm_brownout of { slow : float option; rounds : int }
  | Stats_req
  | Stats of string

let control_kind_code : type msg. msg control -> int = function
  | Hello _ -> k_hello
  | Inject _ -> k_inject
  | Tick `Flush -> k_tick_flush
  | Tick `Checkpoint -> k_tick_checkpoint
  | Tick `Notice -> k_tick_notice
  | Crash -> k_crash
  | Status_req -> k_status_req
  | Status _ -> k_status
  | Quit -> k_quit
  | Bye -> k_bye
  | Add_peer _ -> k_add_peer
  | Retire_req -> k_retire_req
  | Arm_brownout _ -> k_arm_brownout
  | Stats_req -> k_stats_req
  | Stats _ -> k_stats

let encode_control (wf : 'msg App_intf.wire_format) (c : 'msg control) =
  let b = Buffer.create 32 in
  (match c with
  | Hello { pid } -> put_int b pid
  | Inject { seq; payload } ->
    put_int b seq;
    put_string b (wf.App_intf.write payload)
  | Tick _ | Crash | Status_req | Quit | Bye | Retire_req | Stats_req -> ()
  | Stats text -> put_string b text
  | Add_peer { pid; port } ->
    put_int b pid;
    put_int b port
  | Arm_brownout { slow; rounds } ->
    put_option b put_float slow;
    put_int b rounds
  | Status s ->
    put_bool b s.st_up;
    put_int b s.st_pending;
    put_int b s.st_send_buf;
    put_int b s.st_recv_buf;
    put_int b s.st_out_buf;
    put_int b s.st_deliveries;
    put_int b s.st_trace_len;
    put_entry b s.st_current;
    put_bool b s.st_recovering;
    put_int b s.st_replay_pending);
  frame ~kind:(control_kind_code c) (Buffer.contents b)

let decode_control_body (wf : 'msg App_intf.wire_format) ~kind body =
  if kind = k_inject then
    Result.bind
      (run
         (fun c ->
           let seq = get_int c in
           let payload = get_string c in
           (seq, payload))
         body)
      (fun (seq, payload) ->
        match wf.App_intf.read payload with
        | Error e -> Error (Fmt.str "inject payload: %s" e)
        | Ok payload -> Ok (Inject { seq; payload }))
  else
    run
      (fun c ->
        if kind = k_hello then Hello { pid = get_int c }
        else if kind = k_tick_flush then Tick `Flush
        else if kind = k_tick_checkpoint then Tick `Checkpoint
        else if kind = k_tick_notice then Tick `Notice
        else if kind = k_crash then Crash
        else if kind = k_status_req then Status_req
        else if kind = k_status then begin
          let st_up = get_bool c in
          let st_pending = get_int c in
          let st_send_buf = get_int c in
          let st_recv_buf = get_int c in
          let st_out_buf = get_int c in
          let st_deliveries = get_int c in
          let st_trace_len = get_int c in
          let st_current = get_entry c in
          let st_recovering = get_bool c in
          let st_replay_pending = get_int c in
          Status
            {
              st_up;
              st_pending;
              st_send_buf;
              st_recv_buf;
              st_out_buf;
              st_deliveries;
              st_trace_len;
              st_current;
              st_recovering;
              st_replay_pending;
            }
        end
        else if kind = k_quit then Quit
        else if kind = k_bye then Bye
        else if kind = k_add_peer then begin
          let pid = get_int c in
          let port = get_int c in
          Add_peer { pid; port }
        end
        else if kind = k_retire_req then Retire_req
        else if kind = k_stats_req then Stats_req
        else if kind = k_stats then Stats (get_string c)
        else if kind = k_arm_brownout then begin
          let slow = get_option c get_float in
          let rounds = get_int c in
          Arm_brownout { slow; rounds }
        end
        else fail c (Fmt.str "unknown control kind %d" kind))
      body

let decode_control wf s =
  match decode_frame s ~pos:0 with
  | Error _ as e -> e
  | Ok (kind, body, next) ->
    if next <> String.length s then Error "trailing bytes after frame"
    else decode_control_body wf ~kind body
