(** Loopback TCP transport between recovery daemons.

    One listening socket per process; for each peer the transport keeps a
    single {e outbound} connection (dialer writes, acceptor reads), so an
    N-process cluster carries at most N·(N−1) connections.  The first
    frame on every connection is a [Hello] identifying the dialer.

    Reliability model: the K-optimistic protocol needs {e no} FIFO
    channels and tolerates loss and duplication (duplicates are suppressed
    by identity, loss is healed by the sender's retransmission timer), so
    the transport is allowed to be simple and lossy at the edges —
    per-peer outbound queues are bounded (overflow drops the newest frame
    and counts it), a dead peer is re-dialled with exponential backoff,
    and frames queued across a reconnect are delivered late, i.e.
    {e reconnection reorders traffic}.  PROTOCOL.md documents why all of
    this is legal.

    Batched writes: each writer wakeup drains its peer's whole queue and
    writes the concatenation in one syscall — frames are self-delimiting,
    so the byte stream is identical to per-frame writes.  Write-failure
    retries are budgeted per connection (the budget resets after a
    successful re-dial) and reconnect cycles are bounded per batch.
    Accounting is exact: every frame accepted by {!send} is eventually
    counted in [frames_sent] or [frames_dropped], including frames in
    flight or still queued when {!close} lands.

    Decode and checksum failures on inbound frames are counted and
    reported through [on_error]; the damaged connection is closed (the
    dialer re-establishes it) — a corrupt frame is never delivered and
    never silently swallowed. *)

type stats = {
  frames_sent : int;
  frames_dropped : int;  (** outbound queue overflow *)
  frames_received : int;
  decode_errors : int;
  reconnects : int;  (** dial attempts after the first per peer *)
}

type t

val create :
  self:int ->
  listen_port:int ->
  peers:(int * int) list ->
  on_frame:(src:int -> kind:int -> body:string -> unit) ->
  ?on_error:(string -> unit) ->
  ?max_queue:int ->
  ?backoff_base:float ->
  ?backoff_cap:float ->
  ?obs:Obs.Registry.t ->
  unit ->
  t
(** [peers] maps peer pid to the TCP port to dial (the peer's own listen
    port, or a fault proxy standing in front of it).  [on_frame] is called
    from reader threads — the callback must be thread-safe.  [max_queue]
    (default 1024) bounds each peer's outbound queue.  Backoff starts at
    [backoff_base] (default 0.05 s) and doubles to [backoff_cap] (default
    2 s).

    [obs] is the registry where the transport registers its counters
    ([transport_frames_sent_total], [transport_frames_dropped_total],
    [transport_frames_received_total], [transport_decode_errors_total],
    [transport_reconnects_total]); it defaults to a private registry so
    unwired transports keep exact per-instance counts. *)

val add_peer : t -> pid:int -> port:int -> unit
(** Register a peer that joined after {!create} (membership churn): frames
    for [pid] can be sent from now on, dialled on demand like any other
    peer.  A pid already known is a no-op, so re-announcement is safe. *)

val send : t -> dst:int -> string -> unit
(** Enqueue a full frame for [dst]; drops (and counts) on overflow or
    unknown destination. *)

val broadcast : t -> string -> unit
(** [send] to every peer. *)

val stats : t -> stats
(** Consistency contract: the counters are bumped by several writer and
    reader threads, always under the transport's counters mutex, and
    [stats] reads all five under that same mutex — so the record is a
    consistent cut (e.g. [frames_sent + frames_dropped] accounts for
    every frame {!send} accepted once the transport is closed).  Reading
    the cells through a raw {!Obs.Registry.snapshot} of [obs] is atomic
    per counter but may straddle an in-flight batch across counters. *)

val close : t -> unit
(** Stop accepting, close every socket and wake the writer threads.
    Reader threads exit as their sockets die.  A writer parked in dial
    backoff notices the stop flag within tens of milliseconds (the backoff
    sleep is sliced), so shutdown latency is bounded even mid-reconnect. *)
