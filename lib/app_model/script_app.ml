(** A table-driven application for scripted scenarios.

    Messages are string labels; a {e plan} maps (process, label) to the
    effects the process performs when it delivers that label.  Labels with no
    plan entry are inert (useful as filler deliveries that only advance the
    state-interval index).  The Figure 1 reproduction is built on this app:
    the plan encodes exactly the message chains of the paper's example. *)

type msg = string

type state = { pid : int; delivered : string list (* newest first *) }

type plan = (int * string, msg App_intf.effect list) Hashtbl.t

let make_plan bindings =
  let plan : plan = Hashtbl.create 16 in
  List.iter
    (fun (pid, label, effects) ->
      if Hashtbl.mem plan (pid, label) then
        invalid_arg
          (Fmt.str "Script_app.make_plan: duplicate entry for (%d, %s)" pid label);
      Hashtbl.add plan (pid, label) effects)
    bindings;
  plan

(* Labels are strings; they cross the network verbatim. *)
let wire : msg App_intf.wire_format = App_intf.string_wire_format

let app plan : (state, msg) App_intf.t =
  {
    name = "script";
    init = (fun ~pid ~n:_ -> { pid; delivered = [] });
    handle =
      (fun ~pid ~n:_ state ~src:_ label ->
        let state = { state with delivered = label :: state.delivered } in
        let effects =
          match Hashtbl.find_opt plan (pid, label) with
          | None -> []
          | Some effects -> effects
        in
        (state, effects));
    digest =
      (fun s ->
        List.fold_left
          (fun h label -> Hashing.mix h (Hashing.string label))
          (Hashing.int s.pid) s.delivered);
    pp_msg = Fmt.string;
    partitioning = None;
  }
