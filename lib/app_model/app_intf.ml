(** The piecewise-deterministic (PWD) application contract.

    The paper's execution model: "process execution is divided into a
    sequence of state intervals each of which is started by a
    nondeterministic event such as message receipt.  The execution within an
    interval is completely deterministic."  An application is therefore a
    pure transition function: delivering a message to a state yields the
    next state plus a list of effects (message sends and outputs to the
    outside world).  Recovery replays exactly this function, so determinism
    is a correctness requirement — the test suite checks it by comparing
    state digests across replays. *)

type 'msg effect =
  | Send of { dst : int; msg : 'msg; k : int option }
      (** Send [msg] to process [dst].  [k], when given, overrides the
          system-wide degree of optimism for this message ("different values
          of K can in fact be applied to different messages in the same
          system", Section 4.2). *)
  | Output of string
      (** Output to the outside world; committed only when every interval it
          depends on is stable (the output-commit problem, Section 2). *)

type ('state, 'msg) t = {
  name : string;
  init : pid:int -> n:int -> 'state;
      (** Initial state of process [pid] in an [n]-process system. *)
  handle : pid:int -> n:int -> 'state -> src:int -> 'msg -> 'state * 'msg effect list;
      (** Deterministic transition on message delivery.  [src] is the sending
          process, or {!outside_world} for client/injected messages. *)
  digest : 'state -> int;
      (** Deterministic fingerprint of a state, used to verify replay. *)
  pp_msg : 'msg Fmt.t;
}

(** Byte-level payload serialization, supplied by applications that want to
    run over a real network ([Net.Wire_codec] is parameterized over this).
    [read] must invert [write]; it returns [Error] — never a wrong value —
    on bytes it does not recognise, so transport-level corruption that
    slips past the frame checksum still cannot inject a fabricated
    message. *)
type 'msg wire_format = {
  write : 'msg -> string;
  read : string -> ('msg, string) result;
}

(** Strings go on the wire verbatim — the format for label/bytes payloads
    ({!Script_app}, tests). *)
let string_wire_format = { write = Fun.id; read = (fun s -> Ok s) }

let outside_world = -1

let send ?k dst msg = Send { dst; msg; k }

let output s = Output s
