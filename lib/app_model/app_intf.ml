(** The piecewise-deterministic (PWD) application contract.

    The paper's execution model: "process execution is divided into a
    sequence of state intervals each of which is started by a
    nondeterministic event such as message receipt.  The execution within an
    interval is completely deterministic."  An application is therefore a
    pure transition function: delivering a message to a state yields the
    next state plus a list of effects (message sends and outputs to the
    outside world).  Recovery replays exactly this function, so determinism
    is a correctness requirement — the test suite checks it by comparing
    state digests across replays. *)

type 'msg effect =
  | Send of { dst : int; msg : 'msg; k : int option }
      (** Send [msg] to process [dst].  [k], when given, overrides the
          system-wide degree of optimism for this message ("different values
          of K can in fact be applied to different messages in the same
          system", Section 4.2). *)
  | Output of string
      (** Output to the outside world; committed only when every interval it
          depends on is stable (the output-commit problem, Section 2). *)

(** Optional state decomposition for fast recovery.

    An application that can split its state into [parts] independent
    partitions — such that handling a message of partition [p] reads and
    writes only partition [p]'s slice of the state — declares the
    decomposition here.  Recovery then replays the partitions of a crashed
    process's log {e independently} (any interleaving of per-partition
    replay yields the state serial replay yields, because cross-partition
    handlers commute) and can serve requests on already-replayed partitions
    while the rest of the log is still being redone.

    [part_of_msg] maps a payload to its partition, or [None] for a
    {e barrier} message that touches state outside any single partition
    (e.g. a cross-shard transaction): a barrier is replayed only after
    everything logged before it and before everything logged after it, and
    its presence in a replay range disables per-partition checkpoint
    skipping.

    [part_digest] fingerprints one partition's slice only, so tests can
    compare partitioned replay against serial replay slice by slice.

    [part_export]/[part_import], when provided, snapshot and restore one
    partition's slice as opaque bytes — the basis of per-partition
    incremental checkpoints.  [part_import state p bytes] must restore
    partition [p] of [state] to exactly the exported slice while leaving
    every other partition untouched; applications whose state includes
    global (cross-partition) counters must omit these two rather than
    silently lose the counters of skipped records. *)
type ('state, 'msg) partitioning = {
  parts : int;  (** number of partitions; must be >= 1 *)
  part_of_msg : n:int -> 'msg -> int option;
      (** partition of a payload, or [None] for a barrier message *)
  part_digest : 'state -> int -> int;
      (** deterministic fingerprint of one partition's state slice *)
  part_export : ('state -> int -> string) option;
  part_import : ('state -> int -> string -> 'state) option;
}

type ('state, 'msg) t = {
  name : string;
  init : pid:int -> n:int -> 'state;
      (** Initial state of process [pid] in an [n]-process system. *)
  handle : pid:int -> n:int -> 'state -> src:int -> 'msg -> 'state * 'msg effect list;
      (** Deterministic transition on message delivery.  [src] is the sending
          process, or {!outside_world} for client/injected messages. *)
  digest : 'state -> int;
      (** Deterministic fingerprint of a state, used to verify replay. *)
  pp_msg : 'msg Fmt.t;
  partitioning : ('state, 'msg) partitioning option;
      (** State decomposition for partitioned replay; [None] means the
          state is monolithic and recovery replays serially. *)
}

(** Byte-level payload serialization, supplied by applications that want to
    run over a real network ([Net.Wire_codec] is parameterized over this).
    [read] must invert [write]; it returns [Error] — never a wrong value —
    on bytes it does not recognise, so transport-level corruption that
    slips past the frame checksum still cannot inject a fabricated
    message. *)
type 'msg wire_format = {
  write : 'msg -> string;
  read : string -> ('msg, string) result;
}

(** Strings go on the wire verbatim — the format for label/bytes payloads
    ({!Script_app}, tests). *)
let string_wire_format = { write = Fun.id; read = (fun s -> Ok s) }

let outside_world = -1

let send ?k dst msg = Send { dst; msg; k }

let output s = Output s
