(** Uniform-chatter workload application.

    Tokens hop between processes; the next destination and the occasional
    fan-out or die-out are derived by hashing the local state with the token
    salt, so the communication pattern looks random but is a deterministic
    function of delivered messages — as the PWD model requires.  The hop
    budget bounds total load.  This is the default workload for the
    overhead/recovery experiments because it creates dense, irregular
    cross-process dependency chains. *)

type msg = Token of { hops_left : int; salt : int }

type state = { pid : int; seen : int; mix : int }

let pp_msg ppf (Token { hops_left; salt }) =
  Fmt.pf ppf "Token hops=%d salt=%d" hops_left salt

(* Out of 16 hash buckets: 2 die out, 2 fork into two tokens, 12 continue as
   one token — expected branching factor 1, so load stays level. *)
let branching h = match h mod 16 with 0 | 1 -> 0 | 2 | 3 -> 2 | _ -> 1

let next_dst ~n ~pid h i =
  if n = 1 then pid
  else begin
    let d = Hashing.in_range (Hashing.mix h i) ~bound:(n - 1) in
    if d >= pid then d + 1 else d
  end

let app : (state, msg) App_intf.t =
  {
    name = "chatter";
    init = (fun ~pid ~n:_ -> { pid; seen = 0; mix = 0 });
    handle =
      (fun ~pid ~n state ~src:_ (Token { hops_left; salt }) ->
        let h = Hashing.mix (Hashing.mix state.mix salt) (state.seen + 1) in
        let state = { state with seen = state.seen + 1; mix = h } in
        if hops_left <= 0 then
          (state, [ App_intf.output (Fmt.str "p%d token retired salt=%d" pid salt) ])
        else begin
          let sends =
            List.init (branching h) (fun i ->
                App_intf.send (next_dst ~n ~pid h i)
                  (Token { hops_left = hops_left - 1; salt = Hashing.mix salt i }))
          in
          (state, sends)
        end);
    digest = (fun s -> Hashing.mix (Hashing.pair s.pid s.seen) s.mix);
    pp_msg;
    partitioning = None;
  }
