(** A staged computation pipeline.

    Jobs enter at stage 0 and traverse processes left to right; each stage
    applies a deterministic transform; the last stage emits the result as an
    output.  This is the "long-running scientific application" shape from
    the paper's motivation: a failure in the middle of the pipe can orphan
    all downstream work, which is exactly what recovery-efficiency
    experiments measure. *)

type msg = Job of { id : int; stage : int; payload : int }

type state = { pid : int; processed : int; acc : int }

let transform ~pid payload = Hashing.mix (Hashing.int payload) (pid + 1)

let pp_msg ppf (Job { id; stage; payload }) =
  Fmt.pf ppf "Job#%d stage=%d payload=%d" id stage payload

let app : (state, msg) App_intf.t =
  {
    name = "pipeline";
    init = (fun ~pid ~n:_ -> { pid; processed = 0; acc = 0 });
    handle =
      (fun ~pid ~n state ~src:_ (Job { id; stage; payload }) ->
        let payload = transform ~pid payload in
        let state =
          { state with processed = state.processed + 1; acc = Hashing.mix state.acc payload }
        in
        if stage >= n - 1 then
          (state, [ App_intf.output (Fmt.str "job %d done: %d" id payload) ])
        else
          (state, [ App_intf.send (pid + 1) (Job { id; stage = stage + 1; payload }) ]));
    digest = (fun s -> Hashing.mix (Hashing.pair s.pid s.processed) s.acc);
    pp_msg;
    partitioning = None;
  }
