(** A replicated key-value store.

    Keys are owned by [hash key mod n]; a [Put] arriving anywhere is routed
    to the owner, which applies it and replicates to the next process.  Reads
    are answered with an output.  This exercises multi-hop causal chains —
    the structure under which optimistic logging's rollback propagation is
    interesting. *)

module Str_map = Map.Make (String)

type msg =
  | Put of { key : string; value : int }
  | Replica of { key : string; value : int; version : int }
  | Get of string

type state = {
  pid : int;
  store : (int * int) Str_map.t; (* key -> (value, version) *)
}

let owner ~n key = Hashing.string key mod n

(* Recovery partitions: a second, independent hash of the key (the owner
   hash shards *across* processes; this one shards *within* a process's
   store).  Every message touches exactly one key, so the store decomposes
   perfectly — there is no barrier message and no global counter. *)
let parts = 8

let part_of_key key = Hashing.mix 0x9e37 (Hashing.string key) mod parts

let pp_msg ppf = function
  | Put { key; value } -> Fmt.pf ppf "Put %s=%d" key value
  | Replica { key; value; version } -> Fmt.pf ppf "Replica %s=%d v%d" key value version
  | Get key -> Fmt.pf ppf "Get %s" key

let lookup state key = Str_map.find_opt key state.store

let apply state key value version =
  { state with store = Str_map.add key (value, version) state.store }

(* Byte-level payload format for the TCP deployment: a tag byte, then
   int64-LE integers and u32-length-prefixed strings.  [read] never guesses:
   unknown tags and short buffers are errors, and the trailing-bytes check
   means no encoded message is a proper prefix of another. *)
let wire : msg App_intf.wire_format =
  let put_int b v =
    let s = Bytes.create 8 in
    Bytes.set_int64_le s 0 (Int64.of_int v);
    Buffer.add_bytes b s
  in
  let put_str b s =
    put_int b (String.length s);
    Buffer.add_string b s
  in
  let write msg =
    let b = Buffer.create 32 in
    (match msg with
    | Put { key; value } ->
      Buffer.add_char b '\x01';
      put_str b key;
      put_int b value
    | Replica { key; value; version } ->
      Buffer.add_char b '\x02';
      put_str b key;
      put_int b value;
      put_int b version
    | Get key ->
      Buffer.add_char b '\x03';
      put_str b key);
    Buffer.contents b
  in
  let read s =
    let pos = ref 0 in
    let need n =
      if !pos + n > String.length s then failwith "kvstore wire: short buffer"
    in
    let get_int () =
      need 8;
      let v = Int64.to_int (String.get_int64_le s !pos) in
      pos := !pos + 8;
      v
    in
    let get_str () =
      let len = get_int () in
      if len < 0 then failwith "kvstore wire: negative length";
      need len;
      let v = String.sub s !pos len in
      pos := !pos + len;
      v
    in
    match
      if String.length s = 0 then Error "kvstore wire: empty payload"
      else begin
        let tag = s.[0] in
        pos := 1;
        let msg =
          match tag with
          | '\x01' ->
            let key = get_str () in
            Put { key; value = get_int () }
          | '\x02' ->
            let key = get_str () in
            let value = get_int () in
            Replica { key; value; version = get_int () }
          | '\x03' -> Get (get_str ())
          | c -> failwith (Fmt.str "kvstore wire: unknown tag %#x" (Char.code c))
        in
        if !pos <> String.length s then failwith "kvstore wire: trailing bytes";
        Ok msg
      end
    with
    | result -> result
    | exception Failure e -> Error e
  in
  { App_intf.write; read }

let key_of_msg = function
  | Put { key; _ } | Replica { key; _ } | Get key -> key

let part_slice state p =
  Str_map.filter (fun key _ -> part_of_key key = p) state.store

let partitioning : (state, msg) App_intf.partitioning =
  {
    App_intf.parts;
    part_of_msg = (fun ~n:_ msg -> Some (part_of_key (key_of_msg msg)));
    part_digest =
      (fun s p ->
        Str_map.fold
          (fun key (value, version) h ->
            Hashing.mix (Hashing.mix (Hashing.mix h (Hashing.string key)) value) version)
          (part_slice s p) (Hashing.pair s.pid p));
    part_export =
      Some
        (fun s p ->
          (* Sealed (length + CRC witness over the marshalled bytes) so
             import can verify integrity before [Marshal] ever runs on
             disk-sourced input. *)
          Durable.Codec.seal
            (Marshal.to_string (Str_map.bindings (part_slice s p)) []));
    part_import =
      Some
        (fun s p bytes ->
          let payload =
            match Durable.Codec.unseal bytes with
            | Ok payload -> payload
            | Error e -> failwith ("kvstore slice: " ^ e)
          in
          let bindings : (string * (int * int)) list =
            try Marshal.from_string payload 0
            with Invalid_argument _ | End_of_file ->
              failwith "kvstore slice: truncated marshal"
          in
          (* Keys only ever gain versions (no delete), so the exported
             slice supersedes whatever the partial state holds for [p]:
             overwrite binding by binding. *)
          ignore p;
          {
            s with
            store =
              List.fold_left
                (fun store (key, v) -> Str_map.add key v store)
                s.store bindings;
          });
  }

let app : (state, msg) App_intf.t =
  {
    name = "kvstore";
    init = (fun ~pid ~n:_ -> { pid; store = Str_map.empty });
    handle =
      (fun ~pid ~n state ~src:_ msg ->
        match msg with
        | Put { key; value } ->
          let o = owner ~n key in
          if o <> pid then (state, [ App_intf.send o (Put { key; value }) ])
          else begin
            let version =
              match lookup state key with None -> 1 | Some (_, v) -> v + 1
            in
            let state = apply state key value version in
            let replica_holder = (pid + 1) mod n in
            let effects =
              if replica_holder = pid then []
              else [ App_intf.send replica_holder (Replica { key; value; version }) ]
            in
            (state, effects)
          end
        | Replica { key; value; version } ->
          let newer =
            match lookup state key with
            | None -> true
            | Some (_, v) -> version > v
          in
          ((if newer then apply state key value version else state), [])
        | Get key ->
          let answer =
            match lookup state key with
            | None -> Fmt.str "get %s -> none" key
            | Some (value, version) -> Fmt.str "get %s -> %d (v%d)" key value version
          in
          (state, [ App_intf.output answer ]));
    digest =
      (fun s ->
        Str_map.fold
          (fun key (value, version) h ->
            Hashing.mix (Hashing.mix (Hashing.mix h (Hashing.string key)) value) version)
          s.store (Hashing.pair s.pid 0));
    pp_msg;
    partitioning = Some partitioning;
  }
