(** A telecom-switch call-routing application.

    The paper motivates K-optimistic logging with "continuously-running
    service-providing applications" such as telecommunications systems: the
    service must answer quickly (low failure-free overhead) yet recover fast
    (small rollback scope).  Here each process is a switch; a call setup
    request routes through a deterministic chain of switches and the egress
    switch emits the "connected" output — an outside-world action that must
    never be revoked, i.e. the output-commit problem. *)

type msg =
  | Setup of { call_id : int; route : int list }
      (** Remaining switches the call must traverse. *)
  | Teardown of { call_id : int }

module Int_set = Set.Make (Int)

type state = { pid : int; active : Int_set.t; connected : int; torn_down : int }

let pp_msg ppf = function
  | Setup { call_id; route } ->
    Fmt.pf ppf "Setup call=%d route=[%a]" call_id Fmt.(list ~sep:comma int) route
  | Teardown { call_id } -> Fmt.pf ppf "Teardown call=%d" call_id

(* A deterministic route of [hops] distinct switches starting after
   [ingress]. *)
let route ~n ~ingress ~call_id ~hops =
  let rec build current remaining acc =
    if remaining = 0 then List.rev acc
    else begin
      let step = 1 + Hashing.in_range (Hashing.pair call_id remaining) ~bound:(Stdlib.max 1 (n - 1)) in
      let next = (current + step) mod n in
      let next = if next = current then (next + 1) mod n else next in
      build next (remaining - 1) (next :: acc)
    end
  in
  build ingress hops []

let app : (state, msg) App_intf.t =
  {
    name = "telecom";
    init = (fun ~pid ~n:_ -> { pid; active = Int_set.empty; connected = 0; torn_down = 0 });
    handle =
      (fun ~pid ~n:_ state ~src:_ msg ->
        match msg with
        | Setup { call_id; route } -> begin
          let state = { state with active = Int_set.add call_id state.active } in
          match route with
          | [] ->
            ( { state with connected = state.connected + 1 },
              [ App_intf.output (Fmt.str "call %d connected at switch %d" call_id pid) ] )
          | next :: rest -> (state, [ App_intf.send next (Setup { call_id; route = rest }) ])
        end
        | Teardown { call_id } ->
          let state =
            {
              state with
              active = Int_set.remove call_id state.active;
              torn_down = state.torn_down + 1;
            }
          in
          (state, []));
    digest =
      (fun s ->
        Int_set.fold
          (fun call h -> Hashing.mix h call)
          s.active
          (Hashing.mix (Hashing.pair s.pid s.connected) s.torn_down));
    pp_msg;
    partitioning = None;
  }
