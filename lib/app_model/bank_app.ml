(** A bank with accounts sharded across processes.

    Transfers move money between processes in two legs: the debit happens at
    the source shard, then a credit message travels to the destination
    shard.  The invariant the recovery layer must preserve is {e conservation}:
    money withdrawn equals money deposited plus money demonstrably
    in flight.  A recovery bug that loses, duplicates or re-plays a credit
    breaks the global balance — which makes this app the sharpest
    end-to-end check in the suite: after any sequence of crashes and
    rollbacks, once the system quiesces, the sum of all balances must equal
    the initial total.

    Determinism note: amounts and routing are carried entirely by the
    messages, so replay reproduces every transfer exactly. *)

module Int_map = Map.Make (Int)

type msg =
  | Deposit of { account : int; amount : int }
      (** outside money entering the system (tracked by the harness) *)
  | Transfer of { from_account : int; to_shard : int; to_account : int; amount : int }
      (** debit locally, send the credit leg to [to_shard] *)
  | Credit of { account : int; amount : int }  (** second leg of a transfer *)
  | Audit  (** output this shard's total *)

type state = { pid : int; accounts : int Int_map.t; ops : int }

let balance state account =
  Option.value ~default:0 (Int_map.find_opt account state.accounts)

let total state = Int_map.fold (fun _ v acc -> acc + v) state.accounts 0

let adjust state account delta =
  {
    state with
    accounts = Int_map.add account (balance state account + delta) state.accounts;
    ops = state.ops + 1;
  }

let pp_msg ppf = function
  | Deposit { account; amount } -> Fmt.pf ppf "Deposit %d->acc%d" amount account
  | Transfer { from_account; to_shard; to_account; amount } ->
    Fmt.pf ppf "Transfer %d acc%d -> P%d/acc%d" amount from_account to_shard to_account
  | Credit { account; amount } -> Fmt.pf ppf "Credit %d->acc%d" amount account
  | Audit -> Fmt.string ppf "Audit"

let app : (state, msg) App_intf.t =
  {
    name = "bank";
    init = (fun ~pid ~n:_ -> { pid; accounts = Int_map.empty; ops = 0 });
    handle =
      (fun ~pid ~n:_ state ~src:_ msg ->
        match msg with
        | Deposit { account; amount } -> (adjust state account amount, [])
        | Transfer { from_account; to_shard; to_account; amount } ->
          (* Debit even into overdraft: the workload controls amounts, and
             allowing negatives keeps the conservation check linear. *)
          let state = adjust state from_account (-amount) in
          if to_shard = pid then (adjust state to_account amount, [])
          else (state, [ App_intf.send to_shard (Credit { account = to_account; amount }) ])
        | Credit { account; amount } -> (adjust state account amount, [])
        | Audit ->
          (state, [ App_intf.output (Fmt.str "shard %d total=%d" pid (total state)) ]));
    digest =
      (fun s ->
        Int_map.fold
          (fun account v h -> Hashing.mix (Hashing.mix h account) v)
          s.accounts
          (Hashing.pair s.pid s.ops));
    pp_msg;
    partitioning = None;
  }
