(** Minimal PWD application: a per-process accumulator.

    Used heavily by unit tests: its state digest is the state itself, so
    replay divergence is immediately visible. *)

type msg =
  | Add of int  (** add to the local accumulator *)
  | Forward of { dst : int; amount : int }
      (** add locally, then pass [amount] along to [dst] *)
  | Report  (** output the current accumulator value *)

type state = { pid : int; total : int; handled : int }

let pp_msg ppf = function
  | Add v -> Fmt.pf ppf "Add %d" v
  | Forward { dst; amount } -> Fmt.pf ppf "Forward %d to %d" amount dst
  | Report -> Fmt.string ppf "Report"

let app : (state, msg) App_intf.t =
  {
    name = "counter";
    init = (fun ~pid ~n:_ -> { pid; total = 0; handled = 0 });
    handle =
      (fun ~pid:_ ~n:_ state ~src:_ msg ->
        let state = { state with handled = state.handled + 1 } in
        match msg with
        | Add v -> ({ state with total = state.total + v }, [])
        | Forward { dst; amount } ->
          ( { state with total = state.total + amount },
            [ App_intf.send dst (Add amount) ] )
        | Report ->
          (state, [ App_intf.output (Fmt.str "p%d total=%d" state.pid state.total) ]));
    digest = (fun s -> Hashing.mix (Hashing.pair s.pid s.total) s.handled);
    pp_msg;
    partitioning = None;
  }
