(** Process-local observability: named counters, gauges and log-scale
    latency histograms in a registry, snapshotted into a mergeable value
    with a versioned text exposition format.

    The subsystem replaces the patchwork of per-module [stats] records
    with one measurement plane: hot paths bump plain [int]/[float]
    cells (no atomics, no locks of their own), the owning module's
    existing lock — if it has one — is what makes multi-writer bumps
    consistent, and a {!Registry.snapshot} turns the live cells into an
    immutable {!Snapshot.t} that daemons serve over their control
    socket and drivers merge across processes.

    {2 Consistency contract}

    Metric cells are word-sized OCaml values, so every individual read
    and write is atomic — a reader can never observe a torn counter.
    What is {e not} guaranteed without external serialization:

    - [Counter.add]/[Counter.incr] from two threads may lose updates
      (read-modify-write races).  Modules with multiple writer threads
      must bump under their own mutex, as [Net.Transport] does.
    - A histogram observation updates several cells (bucket, sum,
      min/max, count); concurrent observers of the {e same} histogram
      must be serialized by the caller.
    - {!Registry.snapshot} reads each cell atomically but does not
      freeze writers: a snapshot taken mid-bump may see metric A
      before and metric B after the same logical event.  Snapshots
      are exact whenever the caller quiesces writers or holds the
      lock the writers bump under.

    Registration ({!Registry.counter} and friends) and snapshotting
    are serialized by the registry's own mutex and may be called from
    any thread. *)

module Counter : sig
  type t

  val value : t -> int
  val incr : t -> unit
  val add : t -> int -> unit

  val set : t -> int -> unit
  (** [set] exists for bridge code that mirrors an externally-owned
      counter (e.g. a [Recovery.Metrics] field) into the registry at
      collect time; hot paths use {!incr}/{!add}. *)
end

module Gauge : sig
  type t

  val value : t -> float
  val set : t -> float -> unit
  val add : t -> float -> unit
end

module Histogram : sig
  (** Fixed-bucket base-2 log-scale histogram.  Bucket [i] counts
      observations in [(2^(i-31), 2^(i-30)]] seconds — spanning
      ~1 ns to 128 s — with one final overflow bucket; underflow and
      non-positive values land in bucket 0.  Observing is O(1): one
      [frexp], five cell writes.  NaN observations are ignored. *)

  type t

  val bucket_count : int
  (** Number of buckets including the overflow bucket. *)

  val bound : int -> float
  (** Inclusive upper bound of bucket [i]; [infinity] for the last. *)

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  val min_value : t -> float
  (** Smallest observation, [nan] while empty. *)

  val max_value : t -> float
  (** Largest observation, [nan] while empty. *)

  val reset : t -> unit
  (** Zero every cell.  For bridge code that rebuilds a histogram from
      an externally-owned sample set at collect time. *)
end

module Snapshot : sig
  (** An immutable, mergeable view of a registry's metrics. *)

  type hist = {
    counts : int array;  (** per-bucket counts, {!Histogram.bucket_count} long *)
    sum : float;
    minv : float;  (** [nan] when empty *)
    maxv : float;  (** [nan] when empty *)
  }

  type value = Counter of int | Gauge of float | Hist of hist

  type t

  val empty : t

  val bindings : t -> ((string * (string * string) list) * value) list
  (** Sorted by (name, labels). *)

  val counter : t -> ?labels:(string * string) list -> string -> int
  (** Value of a counter sample; [0] when absent. *)

  val gauge : t -> ?labels:(string * string) list -> string -> float
  (** Value of a gauge sample; [0.] when absent. *)

  val hist : t -> ?labels:(string * string) list -> string -> hist option

  val hist_count : hist -> int
  val hist_mean : hist -> float
  (** [nan] when empty. *)

  val quantile : hist -> float -> float option
  (** [quantile h p] for [p] in [0..100]: the upper bound of the
      bucket holding the rank-[ceil (p/100 * count)] observation,
      clamped into [[minv, maxv]] — so any returned estimate is
      bounded by the recorded extremes.  [None] when empty. *)

  val merge : t -> t -> t
  (** Pointwise on (name, labels): counters sum exactly, gauges sum,
      histograms add bucket-wise with [sum] summed and [minv]/[maxv]
      taken as min/max.  A key present on one side passes through, so
      [empty] is the identity; merge is associative and commutative.
      @raise Invalid_argument when the two sides disagree on a
      sample's kind. *)

  val merge_all : t list -> t

  val equal : t -> t -> bool
  (** Structural, with floats compared by bits (so [nan] = [nan]). *)

  val to_text : t -> string
  (** Versioned text exposition.  First line is [# koptlog-obs v1];
      each family is announced by a [# TYPE name kind] line followed
      by Prometheus-style samples [name{label="v",...} value].
      Histograms render as cumulative [_bucket{le="..."}] lines
      (zero-increment buckets elided, [le="+Inf"] always present)
      plus [_sum], [_count], [_min] and [_max] samples. *)

  val of_text : string -> (t, string) result
  (** Parses what {!to_text} emits; [to_text] then [of_text] is the
      identity.  Unknown [#] comment lines are ignored; anything else
      malformed — bad header, untyped sample, non-monotone bucket
      cumulative, missing histogram component — is an [Error] naming
      the offending line. *)
end

module Registry : sig
  type t

  val create : unit -> t

  val counter : t -> ?labels:(string * string) list -> string -> Counter.t
  (** Get-or-create.  Metric names must match
      [[A-Za-z_][A-Za-z0-9_]*]; labels are sorted internally so label
      order never distinguishes metrics.
      @raise Invalid_argument on a malformed name, a kind clash with
      an existing metric of the same name, or a reserved histogram
      suffix ([_bucket]/[_sum]/[_count]/[_min]/[_max] when the base
      name is a histogram). *)

  val gauge : t -> ?labels:(string * string) list -> string -> Gauge.t
  val histogram : t -> ?labels:(string * string) list -> string -> Histogram.t

  val on_collect : t -> (unit -> unit) -> unit
  (** Register a hook run at the start of every {!snapshot} — the
      bridge point for modules that keep their own bookkeeping
      (hooks typically [Counter.set] mirrored values).  Hooks run
      outside the registry mutex and may register metrics. *)

  val snapshot : t -> Snapshot.t
end

module Span : sig
  (** Phase timers: a named histogram observed in seconds.  Subsumes
      the old env-gated [KOPT_PROF] profiler — spans are always on;
      the cost is two clock reads per timed section. *)

  type t

  val create : Registry.t -> ?labels:(string * string) list -> string -> t
  val time : t -> (unit -> 'a) -> 'a
  val record : t -> seconds:float -> unit
end
