(* Process-local metric registry with a mergeable snapshot algebra and a
   versioned text exposition format.  See obs.mli for the consistency
   contract; the short version: cells are word-sized so individual
   reads/writes are atomic, read-modify-write is NOT, and multi-writer
   modules bump under their own lock. *)

(* ------------------------------------------------------------------ *)
(* Live cells                                                          *)

module Counter = struct
  type t = { mutable c : int }

  let make () = { c = 0 }
  let value t = t.c
  let incr t = t.c <- t.c + 1
  let add t n = t.c <- t.c + n
  let set t n = t.c <- n
end

module Gauge = struct
  type t = { mutable g : float }

  let make () = { g = 0. }
  let value t = t.g
  let set t v = t.g <- v
  let add t v = t.g <- t.g +. v
end

module Histogram = struct
  (* Base-2 log-scale buckets: bucket [i] covers (2^(i-31), 2^(i-30)]
     seconds for i in 0..37 (~1 ns up to 128 s), bucket 38 is the
     overflow.  [frexp] gives the exponent directly, so placing an
     observation costs one primitive call and a clamp. *)

  let bucket_count = 39
  let lowest_exp = -30

  let bound i =
    if i >= bucket_count - 1 then infinity else Float.ldexp 1.0 (lowest_exp + i)

  let bucket_of v =
    if not (v > 0.) then 0
    else begin
      (* v = m * 2^e with m in [0.5, 1): v <= 2^e, with equality iff
         m = 0.5 — in which case v belongs to the next bucket down. *)
      let m, e = Float.frexp v in
      let e = if m = 0.5 then e - 1 else e in
      let i = e - lowest_exp in
      if i < 0 then 0 else if i > bucket_count - 1 then bucket_count - 1 else i
    end

  type t = {
    counts : int array;
    mutable n : int;
    mutable sum : float;
    mutable minv : float;
    mutable maxv : float;
  }

  let make () =
    { counts = Array.make bucket_count 0; n = 0; sum = 0.; minv = nan; maxv = nan }

  let observe t v =
    if not (Float.is_nan v) then begin
      let i = bucket_of v in
      t.counts.(i) <- t.counts.(i) + 1;
      t.n <- t.n + 1;
      t.sum <- t.sum +. v;
      if Float.is_nan t.minv || v < t.minv then t.minv <- v;
      if Float.is_nan t.maxv || v > t.maxv then t.maxv <- v
    end

  let count t = t.n
  let sum t = t.sum
  let min_value t = t.minv
  let max_value t = t.maxv

  let reset t =
    Array.fill t.counts 0 bucket_count 0;
    t.n <- 0;
    t.sum <- 0.;
    t.minv <- nan;
    t.maxv <- nan
end

(* ------------------------------------------------------------------ *)
(* Names, labels, float text                                           *)

let valid_name s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let check_name what s =
  if not (valid_name s) then invalid_arg (Printf.sprintf "Obs: bad %s %S" what s)

let norm_labels labels =
  List.iter (fun (k, _) -> check_name "label name" k) labels;
  List.sort_uniq compare labels

(* Shortest decimal rendering that survives float_of_string exactly;
   readable for the common case, never lossy. *)
let float_repr f =
  if Float.is_nan f then "nan"
  else if f = infinity then "inf"
  else if f = neg_infinity then "-inf"
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s
    else
      let s = Printf.sprintf "%.15g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape_label_value v =
  let b = Buffer.create (String.length v + 4) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)

module Snapshot = struct
  type hist = { counts : int array; sum : float; minv : float; maxv : float }
  type value = Counter of int | Gauge of float | Hist of hist

  type key = string * (string * string) list
  type t = (key * value) list (* sorted by key *)

  let empty = []
  let bindings t = t

  let of_bindings l =
    List.sort (fun (k1, _) (k2, _) -> compare k1 k2) l

  let find t ?(labels = []) name =
    match List.assoc_opt (name, norm_labels labels) t with
    | Some v -> Some v
    | None -> None

  let counter t ?labels name =
    match find t ?labels name with Some (Counter c) -> c | _ -> 0

  let gauge t ?labels name =
    match find t ?labels name with Some (Gauge g) -> g | _ -> 0.

  let hist t ?labels name =
    match find t ?labels name with Some (Hist h) -> Some h | _ -> None

  let hist_count h = Array.fold_left ( + ) 0 h.counts
  let hist_mean h =
    let n = hist_count h in
    if n = 0 then nan else h.sum /. float_of_int n

  let quantile h p =
    let total = hist_count h in
    if total = 0 then None
    else begin
      let rank =
        let r = int_of_float (ceil (p /. 100. *. float_of_int total)) in
        if r < 1 then 1 else if r > total then total else r
      in
      let rec bucket i cum =
        let cum = cum + h.counts.(i) in
        if cum >= rank || i = Histogram.bucket_count - 1 then i else bucket (i + 1) cum
      in
      let est = Histogram.bound (bucket 0 0) in
      let est = if est < h.minv then h.minv else est in
      let est = if est > h.maxv then h.maxv else est in
      Some est
    end

  let fmin a b = if Float.is_nan a then b else if Float.is_nan b then a else Float.min a b
  let fmax a b = if Float.is_nan a then b else if Float.is_nan b then a else Float.max a b

  let combine (name, _) a b =
    match (a, b) with
    | Counter x, Counter y -> Counter (x + y)
    | Gauge x, Gauge y -> Gauge (x +. y)
    | Hist x, Hist y ->
      Hist
        {
          counts = Array.map2 ( + ) x.counts y.counts;
          sum = x.sum +. y.sum;
          minv = fmin x.minv y.minv;
          maxv = fmax x.maxv y.maxv;
        }
    | _ -> invalid_arg (Printf.sprintf "Obs.Snapshot.merge: kind clash on %S" name)

  let rec merge a b =
    match (a, b) with
    | [], t | t, [] -> t
    | ((ka, va) :: ra as la), ((kb, vb) :: rb as lb) ->
      let c = compare ka kb in
      if c < 0 then (ka, va) :: merge ra lb
      else if c > 0 then (kb, vb) :: merge la rb
      else (ka, combine ka va vb) :: merge ra rb

  let merge_all l = List.fold_left merge empty l

  let fbits = Int64.bits_of_float
  let feq a b = fbits a = fbits b

  let value_equal a b =
    match (a, b) with
    | Counter x, Counter y -> x = y
    | Gauge x, Gauge y -> feq x y
    | Hist x, Hist y ->
      x.counts = y.counts && feq x.sum y.sum && feq x.minv y.minv && feq x.maxv y.maxv
    | _ -> false

  let equal a b =
    List.length a = List.length b
    && List.for_all2 (fun (ka, va) (kb, vb) -> ka = kb && value_equal va vb) a b

  (* ---------------------------------------------------------------- *)
  (* Exposition                                                        *)

  let header = "# koptlog-obs v1"

  let render_labels b labels =
    match labels with
    | [] -> ()
    | _ ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b k;
          Buffer.add_string b "=\"";
          Buffer.add_string b (escape_label_value v);
          Buffer.add_char b '"')
        labels;
      Buffer.add_char b '}'

  let render_sample b name labels value =
    Buffer.add_string b name;
    render_labels b labels;
    Buffer.add_char b ' ';
    Buffer.add_string b value;
    Buffer.add_char b '\n'

  let kind_of = function Counter _ -> "counter" | Gauge _ -> "gauge" | Hist _ -> "histogram"

  let to_text t =
    let b = Buffer.create 1024 in
    Buffer.add_string b header;
    Buffer.add_char b '\n';
    let last_family = ref "" in
    List.iter
      (fun ((name, labels), v) ->
        if name <> !last_family then begin
          last_family := name;
          Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name (kind_of v))
        end;
        match v with
        | Counter c -> render_sample b name labels (string_of_int c)
        | Gauge g -> render_sample b name labels (float_repr g)
        | Hist h ->
          let cum = ref 0 in
          Array.iteri
            (fun i n ->
              cum := !cum + n;
              if n > 0 && i < Histogram.bucket_count - 1 then
                render_sample b (name ^ "_bucket")
                  (labels @ [ ("le", float_repr (Histogram.bound i)) ])
                  (string_of_int !cum))
            h.counts;
          render_sample b (name ^ "_bucket") (labels @ [ ("le", "+Inf") ])
            (string_of_int !cum);
          render_sample b (name ^ "_sum") labels (float_repr h.sum);
          render_sample b (name ^ "_count") labels (string_of_int !cum);
          render_sample b (name ^ "_min") labels (float_repr h.minv);
          render_sample b (name ^ "_max") labels (float_repr h.maxv))
      t;
    Buffer.contents b

  (* Parsing.  Line-oriented: [# TYPE name kind] declares a family,
     other comments are skipped, and every sample line must belong to a
     declared family (histogram components by suffix). *)

  exception Bad of string

  let parse_labels ln s =
    (* s is the full text inside the braces *)
    let n = String.length s in
    let out = ref [] in
    let pos = ref 0 in
    let fail msg = raise (Bad (Printf.sprintf "line %d: %s" ln msg)) in
    while !pos < n do
      let eq =
        match String.index_from_opt s !pos '=' with
        | Some e -> e
        | None -> fail "label without '='"
      in
      let k = String.sub s !pos (eq - !pos) in
      if not (valid_name k) then fail (Printf.sprintf "bad label name %S" k);
      if eq + 1 >= n || s.[eq + 1] <> '"' then fail "label value not quoted";
      let b = Buffer.create 16 in
      let i = ref (eq + 2) in
      let closed = ref false in
      while not !closed do
        if !i >= n then fail "unterminated label value"
        else
          match s.[!i] with
          | '"' ->
            closed := true;
            incr i
          | '\\' ->
            if !i + 1 >= n then fail "dangling escape";
            (match s.[!i + 1] with
            | '\\' -> Buffer.add_char b '\\'
            | '"' -> Buffer.add_char b '"'
            | 'n' -> Buffer.add_char b '\n'
            | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            i := !i + 2
          | c ->
            Buffer.add_char b c;
            incr i
      done;
      out := (k, Buffer.contents b) :: !out;
      if !i < n then
        if s.[!i] = ',' then pos := !i + 1 else fail "expected ',' between labels"
      else pos := !i
    done;
    List.rev !out

  let parse_sample ln line =
    let fail msg = raise (Bad (Printf.sprintf "line %d: %s" ln msg)) in
    let name_end =
      let rec go i =
        if i >= String.length line then i
        else
          match line.[i] with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> go (i + 1)
          | _ -> i
      in
      go 0
    in
    let name = String.sub line 0 name_end in
    if not (valid_name name) then fail "sample without a metric name";
    let labels, rest_pos =
      if name_end < String.length line && line.[name_end] = '{' then begin
        (* The closing brace must be found outside quoted label values
           ('}' and escaped '"' may occur inside them). *)
        let n = String.length line in
        let rec close i in_quote =
          if i >= n then fail "unterminated label set"
          else
            match line.[i] with
            | '\\' when in_quote -> close (i + 2) in_quote
            | '"' -> close (i + 1) (not in_quote)
            | '}' when not in_quote -> i
            | _ -> close (i + 1) in_quote
        in
        let close = close (name_end + 1) false in
        ( parse_labels ln (String.sub line (name_end + 1) (close - name_end - 1)),
          close + 1 )
      end
      else ([], name_end)
    in
    if rest_pos >= String.length line || line.[rest_pos] <> ' ' then
      fail "expected ' ' before sample value";
    let value = String.sub line (rest_pos + 1) (String.length line - rest_pos - 1) in
    if String.trim value = "" then fail "missing sample value";
    (name, labels, String.trim value)

  type hacc = {
    mutable cums : (int * int) list; (* bucket index, cumulative count *)
    mutable inf : int option;
    mutable hsum : float option;
    mutable hcount : int option;
    mutable hmin : float option;
    mutable hmax : float option;
  }

  (* le strings are matched against the canonical rendering of each
     bucket bound — the same [float_repr] that produced them. *)
  let le_table =
    lazy
      (let tbl = Hashtbl.create 64 in
       for i = 0 to Histogram.bucket_count - 2 do
         Hashtbl.replace tbl (float_repr (Histogram.bound i)) i
       done;
       tbl)

  let of_text s =
    try
      let lines = String.split_on_char '\n' s in
      (match lines with
      | first :: _ when first = header -> ()
      | _ -> raise (Bad (Printf.sprintf "missing %s header" header)));
      let types : (string, string) Hashtbl.t = Hashtbl.create 32 in
      let plain : (key * value) list ref = ref [] in
      let hists : (key, hacc) Hashtbl.t = Hashtbl.create 16 in
      let hist_order : key list ref = ref [] in
      let hacc key =
        match Hashtbl.find_opt hists key with
        | Some a -> a
        | None ->
          let a =
            { cums = []; inf = None; hsum = None; hcount = None; hmin = None; hmax = None }
          in
          Hashtbl.replace hists key a;
          hist_order := key :: !hist_order;
          a
      in
      let int_of ln v =
        match int_of_string_opt v with
        | Some i -> i
        | None -> raise (Bad (Printf.sprintf "line %d: bad integer %S" ln v))
      in
      let float_of ln v =
        match float_of_string_opt v with
        | Some f -> f
        | None -> raise (Bad (Printf.sprintf "line %d: bad float %S" ln v))
      in
      let hist_component name =
        (* [name] ends in a histogram suffix of a declared histogram family *)
        let strip suffix =
          let ls = String.length suffix and ln = String.length name in
          if ln > ls && String.sub name (ln - ls) ls = suffix then
            let base = String.sub name 0 (ln - ls) in
            if Hashtbl.find_opt types base = Some "histogram" then Some base else None
          else None
        in
        match strip "_bucket" with
        | Some b -> Some (`Bucket, b)
        | None -> (
          match strip "_sum" with
          | Some b -> Some (`Sum, b)
          | None -> (
            match strip "_count" with
            | Some b -> Some (`Count, b)
            | None -> (
              match strip "_min" with
              | Some b -> Some (`Min, b)
              | None -> (
                match strip "_max" with
                | Some b -> Some (`Max, b)
                | None -> None))))
      in
      List.iteri
        (fun idx line ->
          let ln = idx + 1 in
          let fail msg = raise (Bad (Printf.sprintf "line %d: %s" ln msg)) in
          if ln = 1 || String.trim line = "" then ()
          else if String.length line > 0 && line.[0] = '#' then begin
            match String.split_on_char ' ' line with
            | "#" :: "TYPE" :: name :: kind :: [] ->
              if not (valid_name name) then fail "bad TYPE name";
              (match kind with
              | "counter" | "gauge" | "histogram" -> ()
              | k -> fail (Printf.sprintf "unknown TYPE kind %S" k));
              (match Hashtbl.find_opt types name with
              | Some k when k <> kind -> fail (Printf.sprintf "conflicting TYPE for %s" name)
              | _ -> Hashtbl.replace types name kind)
            | _ -> () (* other comments are ignored *)
          end
          else begin
            let name, labels, value = parse_sample ln line in
            match hist_component name with
            | Some (`Bucket, base) -> (
              let le =
                match List.assoc_opt "le" labels with
                | Some le -> le
                | None -> fail "_bucket sample without le label"
              in
              let key = (base, norm_labels (List.remove_assoc "le" labels)) in
              let a = hacc key in
              let cum = int_of ln value in
              if le = "+Inf" then
                match a.inf with
                | Some _ -> fail "duplicate +Inf bucket"
                | None -> a.inf <- Some cum
              else
                match Hashtbl.find_opt (Lazy.force le_table) le with
                | None -> fail (Printf.sprintf "unknown bucket bound le=%S" le)
                | Some i ->
                  if List.mem_assoc i a.cums then fail "duplicate bucket"
                  else a.cums <- (i, cum) :: a.cums)
            | Some (comp, base) -> (
              let key = (base, norm_labels labels) in
              let a = hacc key in
              let dup () = fail (Printf.sprintf "duplicate histogram component for %s" base) in
              match comp with
              | `Sum -> if a.hsum <> None then dup () else a.hsum <- Some (float_of ln value)
              | `Count ->
                if a.hcount <> None then dup () else a.hcount <- Some (int_of ln value)
              | `Min -> if a.hmin <> None then dup () else a.hmin <- Some (float_of ln value)
              | `Max -> if a.hmax <> None then dup () else a.hmax <- Some (float_of ln value)
              | `Bucket -> assert false)
            | None -> (
              let key = (name, norm_labels labels) in
              match Hashtbl.find_opt types name with
              | Some "counter" -> plain := (key, Counter (int_of ln value)) :: !plain
              | Some "gauge" -> plain := (key, Gauge (float_of ln value)) :: !plain
              | Some "histogram" -> fail "bare sample for a histogram family"
              | Some _ -> assert false
              | None -> fail (Printf.sprintf "sample %S has no TYPE declaration" name))
          end)
        lines;
      let finished =
        List.rev_map
          (fun ((base, _) as key) ->
            let a = Hashtbl.find hists key in
            let fail msg = raise (Bad (Printf.sprintf "histogram %s: %s" base msg)) in
            let total =
              match a.inf with Some t -> t | None -> fail "missing +Inf bucket"
            in
            let counts = Array.make Histogram.bucket_count 0 in
            let cums = List.sort compare a.cums in
            let prev = ref 0 in
            List.iter
              (fun (i, cum) ->
                if cum < !prev then fail "non-monotone bucket cumulative";
                counts.(i) <- cum - !prev;
                prev := cum)
              cums;
            if total < !prev then fail "non-monotone bucket cumulative";
            counts.(Histogram.bucket_count - 1) <- total - !prev;
            (match a.hcount with
            | Some c when c <> total -> fail "_count disagrees with +Inf cumulative"
            | Some _ -> ()
            | None -> fail "missing _count");
            let sum = match a.hsum with Some s -> s | None -> fail "missing _sum" in
            let minv = match a.hmin with Some m -> m | None -> fail "missing _min" in
            let maxv = match a.hmax with Some m -> m | None -> fail "missing _max" in
            (key, Hist { counts; sum; minv; maxv }))
          !hist_order
      in
      Ok (of_bindings (!plain @ finished))
    with Bad msg -> Error msg
end

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

module Registry = struct
  type metric =
    | MCounter of Counter.t
    | MGauge of Gauge.t
    | MHist of Histogram.t

  type t = {
    tbl : (Snapshot.key, metric) Hashtbl.t;
    kinds : (string, string) Hashtbl.t; (* family name -> kind *)
    mutable hooks : (unit -> unit) list;
    mu : Mutex.t;
  }

  let create () =
    { tbl = Hashtbl.create 64; kinds = Hashtbl.create 32; hooks = []; mu = Mutex.create () }

  let with_lock t f =
    Mutex.lock t.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

  let kind_name = function
    | MCounter _ -> "counter"
    | MGauge _ -> "gauge"
    | MHist _ -> "histogram"

  (* Histogram families own their [_bucket]/[_sum]/... sample names in
     the exposition, so those names are reserved both ways. *)
  let hist_suffixes = [ "_bucket"; "_sum"; "_count"; "_min"; "_max" ]

  let check_suffixes t name is_hist =
    List.iter
      (fun suf ->
        let ls = String.length suf and ln = String.length name in
        if ln > ls && String.sub name (ln - ls) ls = suf then
          match Hashtbl.find_opt t.kinds (String.sub name 0 (ln - ls)) with
          | Some "histogram" ->
            invalid_arg
              (Printf.sprintf "Obs.Registry: %s collides with histogram %s" name
                 (String.sub name 0 (ln - ls)))
          | _ -> ())
      hist_suffixes;
    if is_hist then
      List.iter
        (fun suf ->
          if Hashtbl.mem t.kinds (name ^ suf) then
            invalid_arg
              (Printf.sprintf "Obs.Registry: histogram %s collides with metric %s%s" name
                 name suf))
        hist_suffixes

  let get_or_create t ?(labels = []) name make =
    check_name "metric name" name;
    let key = (name, norm_labels labels) in
    with_lock t (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | Some m -> m
        | None ->
          let m = make () in
          (match Hashtbl.find_opt t.kinds name with
          | Some k when k <> kind_name m ->
            invalid_arg
              (Printf.sprintf "Obs.Registry: %s already registered as a %s" name k)
          | _ ->
            check_suffixes t name (kind_name m = "histogram");
            Hashtbl.replace t.kinds name (kind_name m));
          Hashtbl.replace t.tbl key m;
          m)

  let counter t ?labels name =
    match get_or_create t ?labels name (fun () -> MCounter (Counter.make ())) with
    | MCounter c -> c
    | m ->
      invalid_arg
        (Printf.sprintf "Obs.Registry: %s is a %s, not a counter" name (kind_name m))

  let gauge t ?labels name =
    match get_or_create t ?labels name (fun () -> MGauge (Gauge.make ())) with
    | MGauge g -> g
    | m ->
      invalid_arg
        (Printf.sprintf "Obs.Registry: %s is a %s, not a gauge" name (kind_name m))

  let histogram t ?labels name =
    (match labels with
    | Some ls when List.mem_assoc "le" ls ->
      invalid_arg "Obs.Registry: the le label is reserved on histograms"
    | _ -> ());
    match get_or_create t ?labels name (fun () -> MHist (Histogram.make ())) with
    | MHist h -> h
    | m ->
      invalid_arg
        (Printf.sprintf "Obs.Registry: %s is a %s, not a histogram" name (kind_name m))

  let on_collect t hook = with_lock t (fun () -> t.hooks <- t.hooks @ [ hook ])

  let snapshot t =
    (* Hooks run outside the mutex so they may register metrics. *)
    let hooks = with_lock t (fun () -> t.hooks) in
    List.iter (fun h -> h ()) hooks;
    with_lock t (fun () ->
        Snapshot.of_bindings
          (Hashtbl.fold
             (fun key m acc ->
               let v =
                 match m with
                 | MCounter c -> Snapshot.Counter (Counter.value c)
                 | MGauge g -> Snapshot.Gauge (Gauge.value g)
                 | MHist h ->
                   Snapshot.Hist
                     {
                       Snapshot.counts = Array.copy h.Histogram.counts;
                       sum = h.Histogram.sum;
                       minv = h.Histogram.minv;
                       maxv = h.Histogram.maxv;
                     }
               in
               (key, v) :: acc)
             t.tbl []))
end

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

module Span = struct
  type t = Histogram.t

  let create reg ?labels name = Registry.histogram reg ?labels name
  let record t ~seconds = Histogram.observe t seconds

  let time t f =
    let t0 = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> Histogram.observe t (Unix.gettimeofday () -. t0)) f
end
