type t = {
  mutable samples : float list;
  mutable sorted : float array option; (* cache invalidated by [add] *)
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () =
  {
    samples = [];
    sorted = None;
    n = 0;
    mean = 0.;
    m2 = 0.;
    min = Float.infinity;
    max = Float.neg_infinity;
  }

let add t x =
  t.samples <- x :: t.samples;
  t.sorted <- None;
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let add_int t x = add t (float_of_int x)

let count t = t.n

let total t = t.mean *. float_of_int t.n

let mean t = if t.n = 0 then 0. else t.mean

let stddev t = if t.n < 2 then 0. else sqrt (t.m2 /. float_of_int t.n)

let min t = if t.n = 0 then Float.nan else t.min

let max t = if t.n = 0 then Float.nan else t.max

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
    let a = Array.of_list t.samples in
    Array.sort Float.compare a;
    t.sorted <- Some a;
    a

let samples t = List.rev t.samples

let percentile t p =
  if t.n = 0 then Float.nan
  else begin
    let a = sorted t in
    let p = Stdlib.max 0. (Stdlib.min 100. p) in
    (* Nearest-rank: the smallest sample with at least p% of samples <= it. *)
    let rank = int_of_float (Float.ceil (p /. 100. *. float_of_int t.n)) in
    let idx = Stdlib.max 0 (Stdlib.min (t.n - 1) (rank - 1)) in
    a.(idx)
  end

let median t = percentile t 50.

let merge a b =
  let t = create () in
  List.iter (add t) (List.rev b.samples);
  List.iter (add t) (List.rev a.samples);
  t

let pp ppf t =
  if t.n = 0 then Fmt.string ppf "n=0"
  else
    Fmt.pf ppf "n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f" t.n (mean t)
      (median t) (percentile t 99.) (max t)
