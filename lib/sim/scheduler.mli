(** Pluggable event-scheduling policy.

    The simulator normally executes pending events in earliest-time order
    (ties broken by insertion).  A scheduler replaces that rule with an
    explicit choice: at every step the driver reports how many events are
    pending (in canonical [(time, seq)] order) and the scheduler answers
    with the index of the one to execute.  This turns the schedule itself
    into an input, which is what lets the model checker enumerate, record
    and replay interleavings ({!Harness.Explore}) and lets stress tests
    drive the threaded runtime through adversarial mailbox orders.

    Every pick is recorded, so the exact interleaving of any run can be
    serialized and replayed byte-for-byte. *)

type t

val earliest : unit -> t
(** Always picks index 0 — exactly the default earliest-time order. *)

val replay : int list -> t
(** Follow the given choice sequence (indices into the canonical pending
    order); after it is exhausted, fall back to earliest-time order.  An
    out-of-range recorded index is clamped into the current pending range,
    so a schedule replayed against a shorter queue still progresses. *)

val of_fun : (n_enabled:int -> int) -> t
(** Arbitrary policy: the function receives the number of pending events
    ([>= 1]) and returns the index of the one to execute.  Results are
    clamped to [[0, n_enabled)].  The function must be pure if the
    scheduler is shared across threads (see {!Runtime.Actor_runtime}). *)

val pick : t -> n_enabled:int -> int
(** Next choice, recorded.  Requires [n_enabled >= 1]. *)

val choices : t -> int list
(** Every pick made so far, oldest first — the serializable schedule. *)
