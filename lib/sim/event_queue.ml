type 'a cell = { time : float; seq : int; payload : 'a }

type 'a t = {
  heap : 'a cell Heap.t;
  mutable next_seq : int;
}

let cmp a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () = { heap = Heap.create ~cmp; next_seq = 0 }

let schedule t ~time payload =
  if not (Float.is_finite time) || time < 0. then
    invalid_arg "Event_queue.schedule: time must be finite and non-negative";
  Heap.push t.heap { time; seq = t.next_seq; payload };
  t.next_seq <- t.next_seq + 1

let next t =
  match Heap.pop t.heap with
  | None -> None
  | Some cell -> Some (cell.time, cell.payload)

let peek_time t =
  match Heap.peek t.heap with
  | None -> None
  | Some cell -> Some cell.time

let is_empty t = Heap.is_empty t.heap

let length t = Heap.length t.heap

let sorted_cells t = List.sort cmp (Heap.to_list t.heap)

let pending t = List.map (fun c -> (c.seq, c.time, c.payload)) (sorted_cells t)

let remove_nth t i =
  if i = 0 then next t
  else if i < 0 || i >= Heap.length t.heap then None
  else begin
    let cells = sorted_cells t in
    let victim = List.nth cells i in
    Heap.clear t.heap;
    List.iteri (fun j c -> if j <> i then Heap.push t.heap c) cells;
    Some (victim.time, victim.payload)
  end

let drain t ~keep =
  let cells = Heap.to_list t.heap in
  Heap.clear t.heap;
  let surviving = List.filter (fun c -> keep (c.time, c.payload)) cells in
  List.iter (Heap.push t.heap) (List.sort cmp surviving)
