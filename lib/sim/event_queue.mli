(** Discrete-event scheduler queue.

    Events are ordered by simulated time; ties break deterministically by
    insertion order, so a simulation run is fully reproducible. *)

type 'a t

val create : unit -> 'a t

val schedule : 'a t -> time:float -> 'a -> unit
(** Enqueue an event at absolute simulated time [time] (must be finite and
    non-negative). *)

val next : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val peek_time : 'a t -> float option
(** Time of the earliest pending event. *)

val is_empty : 'a t -> bool

val length : 'a t -> int

val pending : 'a t -> (int * float * 'a) list
(** Every pending event as [(seq, time, payload)] in canonical pop order —
    ascending [(time, seq)].  [seq] is the insertion-order sequence number,
    a stable identity for the event across inspections (the model checker
    keys its sleep sets on it).  The queue is not modified. *)

val remove_nth : 'a t -> int -> (float * 'a) option
(** Remove and return the [i]-th event of the canonical pop order
    ([remove_nth t 0] is exactly {!next}).  This is the scheduling choice
    point: a {!Scheduler} picks which pending event runs next instead of
    always taking the earliest.  Remaining events keep their sequence
    numbers, so canonical order — and any recorded schedule — stays
    stable.  [None] if [i] is out of range. *)

val drain : 'a t -> keep:(float * 'a -> bool) -> unit
(** Remove every pending event that does not satisfy [keep].  Relative order
    of surviving events is preserved.  Used by failure injection to cancel a
    crashed node's local timers. *)
