type policy =
  | Earliest
  | Replay of { mutable upcoming : int list }
  | Fn of (n_enabled:int -> int)

type t = { policy : policy; mutable picked_rev : int list }

let earliest () = { policy = Earliest; picked_rev = [] }

let replay choices = { policy = Replay { upcoming = choices }; picked_rev = [] }

let of_fun f = { policy = Fn f; picked_rev = [] }

let clamp ~n_enabled i = if i < 0 then 0 else if i >= n_enabled then n_enabled - 1 else i

let pick t ~n_enabled =
  if n_enabled <= 0 then invalid_arg "Scheduler.pick: nothing is pending";
  let i =
    match t.policy with
    | Earliest -> 0
    | Replay r -> (
      match r.upcoming with
      | [] -> 0
      | i :: rest ->
        r.upcoming <- rest;
        clamp ~n_enabled i)
    | Fn f -> clamp ~n_enabled (f ~n_enabled)
  in
  t.picked_rev <- i :: t.picked_rev;
  i

let choices t = List.rev t.picked_rev
