(** Streaming numeric summaries for experiment reporting.

    Keeps all samples (experiments are laptop-scale) so exact percentiles are
    available; mean/variance use Welford's algorithm for numerical
    stability. *)

type t

val create : unit -> t

val add : t -> float -> unit

val add_int : t -> int -> unit

val count : t -> int

val total : t -> float

val mean : t -> float
(** 0. when empty. *)

val stddev : t -> float
(** Population standard deviation; 0. when fewer than two samples. *)

val min : t -> float
(** [nan] when empty. *)

val max : t -> float
(** [nan] when empty. *)

val samples : t -> float list
(** Every recorded sample, oldest first — lets bridge code rebuild a
    different aggregate (e.g. an [Obs] histogram) from the exact data. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0,100\]], nearest-rank on sorted samples;
    [nan] when empty. *)

val median : t -> float

val merge : t -> t -> t
(** Combined summary over both sample sets. *)

val pp : t Fmt.t
(** Renders [count/mean/p50/p99/max] compactly. *)
