type t = {
  shards : int;
  vnodes : int;
  seed : int;
  points : (int * int) array;  (** (position, shard), sorted by position *)
}

let default_vnodes = 64

let default_seed = 0x5eed

let shards t = t.shards

let vnodes t = t.vnodes

let seed t = t.seed

let points t = t.points

(* SplitMix64's avalanche finisher: every input bit affects every output
   bit, so structured inputs (small shard/vnode indices, short keys) spread
   uniformly over the ring. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Fold to OCaml's non-negative int range: the ring is a 62-bit space. *)
let to_pos z = Int64.to_int z land max_int

let point_hash ~seed ~shard ~vnode =
  (* Independent of the ring's size: a shard's points never move when other
     shards come or go — the whole minimal-movement argument. *)
  mix64
    (Int64.add
       (mix64 (Int64.add (mix64 (Int64.of_int seed)) (Int64.of_int shard)))
       (Int64.of_int vnode))
  |> to_pos

let fnv_offset = 0xcbf29ce484222325L

let fnv_prime = 0x100000001b3L

let fnv64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let key_hash _t key = to_pos (mix64 (fnv64 key))

let sort_points points =
  (* Position ties (astronomically unlikely) resolve to the lower shard id
     on every reconstruction, keeping the map deterministic. *)
  Array.sort compare points;
  points

let make ~shards ?(vnodes = default_vnodes) ?(seed = default_seed) () =
  if shards <= 0 then invalid_arg "Ring.make: shards must be positive";
  if vnodes <= 0 then invalid_arg "Ring.make: vnodes must be positive";
  let points =
    Array.init (shards * vnodes) (fun i ->
        let shard = i / vnodes and vnode = i mod vnodes in
        (point_hash ~seed ~shard ~vnode, shard))
  in
  { shards; vnodes; seed; points = sort_points points }

let owner_of_hash t h =
  (* First point at or clockwise-after [h], wrapping past the top. *)
  let pts = t.points in
  let n = Array.length pts in
  let rec search lo hi =
    (* invariant: fst pts.(hi) >= h if hi < n; everything below lo is < h *)
    if lo >= hi then if lo = n then snd pts.(0) else snd pts.(lo)
    else begin
      let mid = (lo + hi) / 2 in
      if fst pts.(mid) < h then search (mid + 1) hi else search lo mid
    end
  in
  search 0 n

let owner t key = owner_of_hash t (key_hash t key)

let grow t ~shards =
  if shards < t.shards then invalid_arg "Ring.grow: cannot shrink";
  if shards = t.shards then t
  else begin
    (* Only the new shards' points are added; existing points — including
       the absence of previously removed shards — are untouched, so the
       remap-iff-new-owner-is-new law holds even mid-churn. *)
    let fresh =
      Array.init
        ((shards - t.shards) * t.vnodes)
        (fun i ->
          let shard = t.shards + (i / t.vnodes) and vnode = i mod t.vnodes in
          (point_hash ~seed:t.seed ~shard ~vnode, shard))
    in
    { t with shards; points = sort_points (Array.append t.points fresh) }
  end

let remove t i =
  if i < 0 || i >= t.shards then invalid_arg "Ring.remove: shard out of range";
  let points = Array.of_list (List.filter (fun (_, s) -> s <> i) (Array.to_list t.points)) in
  if Array.length points = 0 then invalid_arg "Ring.remove: cannot empty the ring";
  { t with points }
