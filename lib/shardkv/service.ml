type latency_stats = {
  acked : int;
  outstanding : int;
  p50 : float;
  p99 : float;
  max : float;
}

(* The tag is the output text's first token ("get:12", "mp:7"). *)
let tag_of_output text =
  match String.index_opt text ' ' with
  | Some i -> String.sub text 0 i
  | None -> text

(* Client-side ack latency, histogram-backed: injection times are recorded
   per tag, commits are matched from a merged trace, and each matched ack
   is a single [kv_ack_seconds] observation — the former full-trace rescan
   that re-sorted every sample per query is gone.  Pure over the issued
   table plus (epoch, time_scale), so the ingest/stats path is testable
   without a deployment. *)
module Latency = struct
  type t = {
    epoch : float;
    time_scale : float;
    issued : (string, float) Hashtbl.t;  (* output tag -> injection wall time *)
    acked_tags : (string, unit) Hashtbl.t;
    obs : Obs.Registry.t;
    hist : Obs.Histogram.t;
    c_issued : Obs.Counter.t;
    c_acked : Obs.Counter.t;
  }

  let create ?obs ~epoch ~time_scale () =
    let obs = match obs with Some r -> r | None -> Obs.Registry.create () in
    {
      epoch;
      time_scale;
      issued = Hashtbl.create 256;
      acked_tags = Hashtbl.create 256;
      obs;
      hist = Obs.Registry.histogram obs "kv_ack_seconds";
      c_issued = Obs.Registry.counter obs "kv_issued_total";
      c_acked = Obs.Registry.counter obs "kv_acked_total";
    }

  let issue t ~tag ~at =
    if not (Hashtbl.mem t.issued tag) then begin
      Hashtbl.replace t.issued tag at;
      Obs.Counter.incr t.c_issued
    end

  (* Absorb every committed output in [trace] that answers a recorded
     injection and has not been counted yet; idempotent across repeated
     calls and across traces sharing a prefix (replayed duplicates of an
     output commit only count once, matching exactly-once ack
     semantics). *)
  let ingest t trace =
    List.iter
      (fun { Recovery.Trace.time; ev; _ } ->
        match ev with
        | Recovery.Trace.Output_committed { text; _ } -> (
          let tag = tag_of_output text in
          match Hashtbl.find_opt t.issued tag with
          | Some issued_at when not (Hashtbl.mem t.acked_tags tag) ->
            Hashtbl.replace t.acked_tags tag ();
            Obs.Counter.incr t.c_acked;
            Obs.Histogram.observe t.hist
              ((t.epoch +. (time *. t.time_scale)) -. issued_at)
          | _ -> ())
        | _ -> ())
      (Recovery.Trace.events trace)

  (* Percentiles are read from the histogram, so they are upper bucket
     bounds (within one power-of-two of the exact order statistic);
     acked/outstanding/max are exact. *)
  let stats t =
    let snap = Obs.Registry.snapshot t.obs in
    let q =
      match Obs.Snapshot.hist snap "kv_ack_seconds" with
      | Some h -> fun p -> Option.value ~default:Float.nan (Obs.Snapshot.quantile h p)
      | None -> fun _ -> Float.nan
    in
    let acked = Obs.Counter.value t.c_acked in
    {
      acked;
      outstanding = Obs.Counter.value t.c_issued - acked;
      p50 = q 50.;
      p99 = q 99.;
      max =
        (if acked = 0 then Float.nan else Obs.Histogram.max_value t.hist);
    }
end

type t = {
  dep : Net.Deployment.t;
  mutable ring : Ring.t;
  lat : Latency.t;
  mutable next_get : int;
  mutable next_mp : int;
}

let connect ?obs dep =
  {
    dep;
    ring = Ring.make ~shards:(Net.Deployment.n dep) ();
    lat =
      Latency.create ?obs ~epoch:(Net.Deployment.epoch dep)
        ~time_scale:(Net.Deployment.time_scale dep) ();
    next_get = 0;
    next_mp = 0;
  }

let latency t = t.lat

let ring t = t.ring

let key_of_rank r = Fmt.str "key-%d" r

let inject t ~dst msg =
  Net.Deployment.inject_app t.dep ~dst ~wire:Shard_app.wire msg

let put t ~key ~value =
  inject t ~dst:(Ring.owner t.ring key) (Shard_app.Put { key; value })

let get t ~key =
  let g = t.next_get in
  t.next_get <- g + 1;
  Latency.issue t.lat ~tag:(Fmt.str "get:%d" g) ~at:(Unix.gettimeofday ());
  inject t ~dst:(Ring.owner t.ring key) (Shard_app.Get { g; key })

let live_shards t =
  let retired = Net.Deployment.retired t.dep in
  List.filter
    (fun p -> not (List.mem p retired))
    (List.init (Net.Deployment.width t.dep) Fun.id)

(* Live membership drives the ring.  The joiner's own init ring is already
   [pid + 1] shards wide (config [n] counts it), but it knows nothing of
   earlier retirements; incumbents are the mirror image.  Both config
   messages are ordinary logged app messages, so every shard's ring stays
   a deterministic fold of its log and replay reproduces the routing. *)
let grow t =
  let pid = Net.Deployment.add_node t.dep in
  let w = Net.Deployment.width t.dep in
  List.iter
    (fun dst -> if dst <> pid then inject t ~dst (Shard_app.Grow { w }))
    (live_shards t);
  List.iter
    (fun shard -> inject t ~dst:pid (Shard_app.Retire_shard { shard }))
    (Net.Deployment.retired t.dep);
  t.ring <- Ring.grow t.ring ~shards:w;
  pid

let retire_shard t ~shard =
  (* Route away first — client and survivors drop the shard's points, so
     no new traffic can chase a process that is about to fall silent —
     then let the graceful leave flush and broadcast its final frontier. *)
  t.ring <- Ring.remove t.ring shard;
  List.iter
    (fun dst ->
      if dst <> shard then inject t ~dst (Shard_app.Retire_shard { shard }))
    (live_shards t);
  Net.Deployment.retire t.dep ~dst:shard

let multi_put t pairs =
  match pairs with
  | [] | [ _ ] -> invalid_arg "Service.multi_put: needs at least two pairs"
  | (key0, _) :: _ ->
    let m = t.next_mp in
    t.next_mp <- m + 1;
    Latency.issue t.lat ~tag:(Fmt.str "mp:%d" m) ~at:(Unix.gettimeofday ());
    inject t ~dst:(Ring.owner t.ring key0) (Shard_app.Multi_put { m; pairs })

let run_open_loop ?start t ops =
  let start = match start with Some s -> s | None -> Unix.gettimeofday () in
  List.iter
    (fun { Harness.Workload.at; kv } ->
      let due = start +. at in
      let now = Unix.gettimeofday () in
      if due > now then Unix.sleepf (due -. now);
      match kv with
      | Harness.Workload.Kv_get r -> get t ~key:(key_of_rank r)
      | Harness.Workload.Kv_put (r, v) -> put t ~key:(key_of_rank r) ~value:v
      | Harness.Workload.Kv_multi_put pairs ->
        multi_put t (List.map (fun (r, v) -> (key_of_rank r, v)) pairs))
    ops

let latency_stats t trace =
  Latency.ingest t.lat trace;
  Latency.stats t.lat

(* ------------------------------------------------------------------ *)
(* E15                                                                 *)

let e15_plan =
  {
    Harness.Netmodel.loss = 0.03;
    duplicate = 0.03;
    reorder = 0.08;
    reorder_spread = 5.;
    partitions = [];
  }

(* One oracle-certified run: launch, drive the open-loop schedule with
   SIGKILLs spread through it, settle, merge + certify, and add a report
   row.  Returns (throughput, latency stats) for the caller's bench
   keys. *)
let e15_run ~shards ~k ~ops ~rate ~kills ~plan ~seed ~label report =
  (* Periodic logging-progress gossip is O(N^2) frames per flush interval;
     at 64 daemons on modest hardware the default 1 ms/unit clock floods
     every mailbox (and feeds the retransmission timers a storm of their
     own).  Large clusters therefore run the *abstract* clock 10x
     coarser — same protocol, same certification, gentler wall-clock
     timer rates; commit latencies simply reflect the scaled flush
     cadence. *)
  let time_scale =
    if shards >= 32 then 10. *. Recovery.Config.default_time_scale
    else Recovery.Config.default_time_scale
  in
  let t =
    match plan with
    | None -> Net.Deployment.launch ~n:shards ~k ~app:"shardkv" ~time_scale ~seed ()
    | Some plan ->
      Net.Deployment.launch ~n:shards ~k ~app:"shardkv" ~time_scale ~plan ~seed ()
  in
  let faulted = kills <> [] || plan <> None in
  match
    (fun () ->
      let svc = connect t in
      let rng = Sim.Rng.create seed in
      let keys = Stdlib.max 50 (12 * shards) in
      let schedule = Harness.Workload.open_loop_kv ~rng ~ops ~keys ~rate () in
      (* Kills are spread through the schedule: split it into one segment
         per kill plus a tail, keeping one wall-clock origin so the
         arrival process stays open-loop across the interruptions. *)
      let segments = List.length kills + 1 in
      let seg_len = (ops + segments - 1) / segments in
      let rec split i = function
        | [] -> [ [] ]
        | sched ->
          let seg = List.filteri (fun j _ -> j < seg_len) sched in
          let rest = List.filteri (fun j _ -> j >= seg_len) sched in
          if i = 0 then [ sched ] else seg :: split (i - 1) rest
      in
      let segs = split (segments - 1) schedule in
      let t0 = Unix.gettimeofday () in
      List.iteri
        (fun i seg ->
          if i > 0 then Net.Deployment.kill t ~dst:(List.nth kills (i - 1));
          run_open_loop ~start:t0 svc seg)
        segs;
      let settled = Net.Deployment.settle ~timeout:120. t in
      let outcome = Net.Deployment.finish t in
      let elapsed = Unix.gettimeofday () -. t0 in
      if not settled then
        Harness.Report.note report (Fmt.str "%s: settle timed out" label);
      (svc, outcome, elapsed))
      ()
  with
  | exception e ->
    (try Net.Deployment.destroy t with _ -> ());
    raise e
  | svc, outcome, elapsed ->
    let o = outcome.Net.Deployment.oracle in
    if o.Harness.Oracle.violations <> [] then
      failwith
        (Fmt.str "E15 %s: oracle violations:@.%a" label
           (Fmt.list ~sep:Fmt.cut Fmt.string)
           o.Harness.Oracle.violations);
    if o.Harness.Oracle.max_risk > k then
      failwith
        (Fmt.str "E15 %s: measured risk %d exceeds K=%d" label
           o.Harness.Oracle.max_risk k);
    let stats = latency_stats svc outcome.Net.Deployment.trace in
    if not faulted then begin
      Net.Deployment.check_fault_free outcome;
      if stats.outstanding > 0 then
        failwith
          (Fmt.str "E15 %s: %d acks missing on a fault-free run" label
             stats.outstanding)
    end;
    List.iter
      (fun d -> Harness.Report.note report (Fmt.str "%s trace damage: %s" label d))
      outcome.Net.Deployment.damage;
    let delivs = Net.Deployment.counter outcome.Net.Deployment.counters "deliveries_total" in
    let throughput = float_of_int delivs /. elapsed in
    let ms v = 1000. *. v in
    Harness.Report.add_row report
      [
        string_of_int shards;
        string_of_int k;
        string_of_int (List.length kills);
        (if plan = None then "-" else "proxy");
        string_of_int ops;
        string_of_int stats.acked;
        string_of_int stats.outstanding;
        Harness.Report.cell_f throughput;
        Harness.Report.cell_f (ms stats.p50);
        Harness.Report.cell_f (ms stats.p99);
        string_of_int outcome.Net.Deployment.decode_errors;
        string_of_int outcome.Net.Deployment.frames_dropped;
        string_of_int o.Harness.Oracle.max_risk;
        string_of_int (List.length o.Harness.Oracle.violations);
      ];
    Durable.Temp.rm_rf (Net.Deployment.root t);
    (throughput, stats)

let experiment ?(smoke = false) () =
  let report =
    Harness.Report.create
      ~title:
        (if smoke then "E15-smoke: sharded KV service (live cluster)"
         else "E15: sharded KV service (live clusters, N = 16 and 64)")
      ~columns:
        [
          "shards"; "K"; "kills"; "net"; "ops"; "acked"; "outst"; "delivs/s";
          "p50ms"; "p99ms"; "dec_err"; "drops"; "risk"; "violations";
        ]
  in
  let bench = ref [] in
  let cluster ~shards ~k ~ops ~rate ~kills ~seed ~tag =
    let throughput, stats =
      e15_run ~shards ~k ~ops ~rate ~kills:[] ~plan:None ~seed
        ~label:(Fmt.str "n=%d baseline" shards) report
    in
    bench :=
      (Fmt.str "E15 kv ack p99 ms %s" tag, 1000. *. stats.p99)
      :: (Fmt.str "E15 kv ack p50 ms %s" tag, 1000. *. stats.p50)
      :: (Fmt.str "E15 kv delivs/s %s" tag, throughput)
      :: !bench;
    ignore
      (e15_run ~shards ~k ~ops ~rate ~kills ~plan:(Some e15_plan) ~seed:(seed + 1)
         ~label:(Fmt.str "n=%d faults" shards) report
        : float * latency_stats)
  in
  if smoke then
    cluster ~shards:4 ~k:1 ~ops:150 ~rate:150. ~kills:[ 1 ] ~seed:15
      ~tag:"n=4 k=1 (smoke)"
  else begin
    cluster ~shards:16 ~k:2 ~ops:600 ~rate:300. ~kills:[ 3; 11 ] ~seed:150
      ~tag:"n=16 k=2";
    cluster ~shards:64 ~k:2 ~ops:800 ~rate:300. ~kills:[ 5; 23; 47 ] ~seed:164
      ~tag:"n=64 k=2"
  end;
  Harness.Report.note report
    "baseline rows: benign network, no kills — must ack every tagged op with \
     zero decode errors (these rows feed BENCH_net.json); fault rows: \
     SIGKILLs + proxy loss/duplication/reordering, oracle-certified, measured \
     risk <= K.  Latency is injection -> output commit (the client-visible \
     ack under the K rule).";
  (report, List.rev !bench)
