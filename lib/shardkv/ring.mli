(** Consistent-hash ring: the stable key→shard mapping of the sharded KV
    service.

    Each shard owns [vnodes] points on a 63-bit ring; a key belongs to the
    shard owning the first point at or clockwise-after the key's hash.
    Point positions are a pure function of [(seed, shard, vnode)] — never
    of the ring's size — which yields the minimal-movement law the QCheck
    suite pins: growing an [n]-shard ring to [n+1] shards remaps a key iff
    its new owner {e is} shard [n], and removing a shard remaps only the
    keys that shard owned.  Construction uses no global or randomized
    hash state (notably not [Hashtbl.hash]), so the mapping is stable
    across runs, processes and machines: every daemon and every client
    rebuilds the identical ring from [(shards, vnodes, seed)] alone. *)

type t

val default_vnodes : int
(** 64: per-shard virtual-node count keeping measured per-shard load
    within a factor of 1.6 of fair share (the balance test pins that
    bound on a deterministic key sample). *)

val default_seed : int

val make : shards:int -> ?vnodes:int -> ?seed:int -> unit -> t
(** @raise Invalid_argument if [shards <= 0] or [vnodes <= 0]. *)

val shards : t -> int

val vnodes : t -> int

val seed : t -> int

val points : t -> (int * int) array
(** The sorted [(position, shard)] points — exposed for property tests. *)

val key_hash : t -> string -> int
(** Position of a key on this ring (FNV-1a/64 with an avalanche finisher,
    folded to the ring's 63-bit space). *)

val owner : t -> string -> int
(** The shard owning [key]. *)

val owner_of_hash : t -> int -> int
(** [owner] of a precomputed {!key_hash} position. *)

val grow : t -> shards:int -> t
(** The ring widened to [shards]: points for the new shards are appended,
    existing points (including the absence of any previously removed
    shard) are untouched — so a key is remapped iff its new owner is one
    of the new shards.  On a pristine ring, [grow (make ~shards:n ())
    ~shards:m] equals [make ~shards:m ()].
    @raise Invalid_argument if [shards < shards t]. *)

val remove : t -> int -> t
(** The ring without shard [i]'s points: where keys of a lost shard land.
    Keys not owned by [i] keep their owner (the minimal-movement law).
    @raise Invalid_argument if [i] is out of range or the last shard. *)
