(** Client library for the sharded KV service, over a live deployment.

    A service handle wraps a {!Net.Deployment} whose daemons run the
    [shardkv] application ([Deployment.launch ~app:"shardkv"]).  The
    client rebuilds the same consistent-hash {!Ring} the daemons use
    (both are pure functions of the cluster size and the default seed) and
    routes every operation straight to the owning shard's control socket —
    there is no metadata service and no extra hop on the happy path.

    Acknowledged operations (gets and multi-puts) carry a unique tag that
    reappears in the committed output's text; the handle records each
    injection's wall-clock time, so after {!Net.Deployment.finish} the
    merged trace yields end-to-end client latency: injection to
    {e output commit} — the moment the K-optimistic rule lets the answer
    leave the system, which is the only latency a client can observe. *)

type t

type latency_stats = {
  acked : int;  (** tagged operations whose output committed *)
  outstanding : int;  (** tagged operations never acked *)
  p50 : float;  (** seconds, injection -> output commit *)
  p99 : float;
  max : float;
}

(** Client-side ack latency, histogram-backed.  Injections are recorded
    per tag ({!issue}); matching committed outputs in a merged trace are
    absorbed once each ({!ingest}) as observations of a [kv_ack_seconds]
    histogram (plus [kv_issued_total] / [kv_acked_total] counters) in the
    handle's registry.  Standalone — built over an explicit
    (epoch, time_scale) pair — so it is testable without a deployment,
    and the registry view means repeated {!stats} queries cost O(buckets)
    instead of the retired full-trace rescan-and-sort. *)
module Latency : sig
  type t

  val create : ?obs:Obs.Registry.t -> epoch:float -> time_scale:float -> unit -> t
  (** [obs] (default: a private registry) receives the three metric
      families; pass the deployment driver's registry to fold client
      latency into a wider report. *)

  val issue : t -> tag:string -> at:float -> unit
  (** Record an injection at wall-clock time [at].  Re-issuing a known
      tag is a no-op (tags are unique by construction). *)

  val ingest : t -> Recovery.Trace.t -> unit
  (** Match committed outputs against recorded injections — an output's
      tag is its text's first token — converting trace time back to wall
      clock via [epoch +. time *. time_scale].  Idempotent: a tag acks at
      most once, across calls and across duplicate commit events. *)

  val stats : t -> latency_stats
  (** [acked], [outstanding] and [max] are exact; [p50]/[p99] are
      histogram quantiles — upper bucket bounds, within one power of two
      above the exact order statistic ([nan] when nothing acked). *)
end

val connect : ?obs:Obs.Registry.t -> Net.Deployment.t -> t
(** The deployment must have been launched with [~app:"shardkv"]; the
    client's ring is derived from [Deployment.n].  [obs] is forwarded to
    the handle's {!Latency} tracker. *)

val latency : t -> Latency.t
(** The handle's ack-latency tracker ({!get} and {!multi_put} feed it). *)

val ring : t -> Ring.t

val key_of_rank : int -> string
(** The key namespace used by {!run_open_loop}: rank [r] is ["key-r"]. *)

val put : t -> key:string -> value:int -> unit
(** Fire-and-forget single-key put, routed to the owner shard. *)

val get : t -> key:string -> unit
(** Tagged read; the owner commits an output ["get:<tag> <key> -> ..."]
    whose commit time the handle later matches for latency. *)

val grow : t -> int
(** Wire a live join to the ring: spawn a new daemon
    ({!Net.Deployment.add_node}), widen the client ring, and send every
    incumbent a [Grow] app message (a logged message, so replay reproduces
    the routing change); the joiner is additionally told about earlier
    retirements.  Returns the new shard's pid.  Consistent-hash
    semantics: ~1/N of keys remap onto the joiner, and values written
    under a remapped key {e before} the grow are not migrated — they
    simply become unreachable under the new routing, as in any
    consistent-hash deployment without data movement. *)

val retire_shard : t -> shard:int -> unit
(** Wire a graceful leave to the ring: drop [shard]'s points from the
    client ring, tell every survivor ([Retire_shard] app message) so no
    traffic is forwarded to a permanently silent process, then retire the
    daemon ({!Net.Deployment.retire}).  Keys the shard owned remap to
    survivors (minimal movement: only those keys move). *)

val multi_put : t -> (string * int) list -> unit
(** Cross-shard batch, injected at the coordinator (owner of the first
    key).  The client ack is the coordinator's ["mp:<tag> ok"] output —
    committed only when every touched shard's apply interval is stable
    under the K rule.
    @raise Invalid_argument on fewer than two pairs. *)

val run_open_loop : ?start:float -> t -> Harness.Workload.timed_kv_op list -> unit
(** Replay a {!Harness.Workload.open_loop_kv} schedule against the wall
    clock: each operation is injected at [start +. at] (default [start] is
    now), or immediately if that moment has passed — arrivals never wait
    for earlier operations, so a slow cluster builds a backlog instead of
    silently throttling the load.  Pass the same [start] across calls to
    keep one schedule honest around mid-run kills. *)

val latency_stats : t -> Recovery.Trace.t -> latency_stats
[@@ocaml.deprecated "use Service.latency + Latency.ingest/Latency.stats"]
(** [Latency.ingest (latency t) trace; Latency.stats (latency t)].  Kept
    for callers of the pre-registry API; note the percentile semantics
    changed from exact order statistics to histogram bucket bounds. *)

val experiment : ?smoke:bool -> unit -> Harness.Report.t * (string * float) list
(** E15: the sharded KV service on live clusters.  Per cluster size
    (N = 16 and N = 64; [smoke]: N = 4) an open-loop Zipfian workload runs
    twice — a benign baseline (must be fault-free: zero decode errors,
    zero outstanding acks) that yields the throughput and latency
    percentiles, and a faulted run under SIGKILLs plus a proxy fault plan
    that the oracle must certify with measured risk ≤ K.  Returns the
    report and the [(key, value)] pairs destined for BENCH_net.json.
    @raise Failure on any oracle violation, risk above K, or a non-clean
    baseline. *)
