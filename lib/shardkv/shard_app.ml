(** The sharded key-value application.

    One process = one shard; ownership comes from the consistent-hash
    {!Ring}, which every shard rebuilds deterministically from [(n, seed)]
    alone, so all shards agree on placement without any metadata service.
    Single-key operations are routed by the client straight to the owner
    (a mis-routed message is forwarded, so a stale client ring costs one
    hop, never a wrong answer).

    The cross-shard primitive is [Multi_put]: the client injects it at a
    {e coordinator} shard (by convention the owner of the first key), which
    partitions the pairs by owner, applies its own group, fans the rest out
    as [Mp_apply] messages, and counts [Mp_ack]s.  When the last ack
    arrives the coordinator emits the client acknowledgement as an
    {e output} — and that is the whole commit protocol: the recovery
    layer's output-commit rule holds the ack until every state interval it
    transitively depends on (the apply intervals on {e all} touched shards,
    via the acks) is stable under the K-optimistic rule.  No extra
    two-phase machinery is needed, and the ack can never be observed and
    then revoked: if any participant is killed first, the ack's dependency
    closure contains the lost interval and the output stays uncommitted
    until replay re-establishes it.  PROTOCOL.md §Multi-put spells out the
    argument. *)

module Str_map = Map.Make (String)
module Int_map = Map.Make (Int)

type msg =
  | Put of { key : string; value : int }
  | Get of { g : int; key : string }  (** [g] tags the reply output *)
  | Multi_put of { m : int; pairs : (string * int) list }
      (** client-injected at the coordinator; [m] tags the ack output *)
  | Mp_apply of { m : int; coord : int; pairs : (string * int) list }
  | Mp_ack of { m : int; from_ : int }
  | Grow of { w : int }
      (** membership grew: widen the local ring to [w] shards.  Logged and
          replayed like any other message, so every incarnation of a shard
          folds the same ring history. *)
  | Retire_shard of { shard : int }
      (** [shard] left the cluster: drop its points so no traffic is
          forwarded to a permanently silent process *)

type state = {
  pid : int;
  ring : Ring.t;
  store : (int * int) Str_map.t;  (** key -> (value, version) *)
  pending : int Int_map.t;  (** multi-put id -> acks still missing *)
  puts : int;
}

let pp_msg ppf = function
  | Put { key; value } -> Fmt.pf ppf "Put %s=%d" key value
  | Get { g; key } -> Fmt.pf ppf "Get#%d %s" g key
  | Multi_put { m; pairs } ->
    Fmt.pf ppf "MultiPut#%d [%a]" m
      (Fmt.list ~sep:Fmt.sp (fun ppf (k, v) -> Fmt.pf ppf "%s=%d" k v))
      pairs
  | Mp_apply { m; coord; pairs } ->
    Fmt.pf ppf "MpApply#%d coord=%d (%d keys)" m coord (List.length pairs)
  | Mp_ack { m; from_ } -> Fmt.pf ppf "MpAck#%d from %d" m from_
  | Grow { w } -> Fmt.pf ppf "Grow w=%d" w
  | Retire_shard { shard } -> Fmt.pf ppf "RetireShard %d" shard

let lookup state key = Str_map.find_opt key state.store

let apply_one state (key, value) =
  let version = match lookup state key with None -> 1 | Some (_, v) -> v + 1 in
  {
    state with
    store = Str_map.add key (value, version) state.store;
    puts = state.puts + 1;
  }

(* Partition [pairs] by owning shard, preserving first-seen owner order and
   within-owner pair order — the grouping must be a pure function of the
   message so replay reproduces the same fan-out. *)
let partition ring pairs =
  let groups = ref [] in
  List.iter
    (fun (key, value) ->
      let o = Ring.owner ring key in
      match List.assoc_opt o !groups with
      | Some acc -> acc := (key, value) :: !acc
      | None -> groups := (o, ref [ (key, value) ]) :: !groups)
    pairs;
  List.rev_map (fun (o, acc) -> (o, List.rev !acc)) !groups

let mp_ack_text m = Fmt.str "mp:%d ok" m

let get_text g key = function
  | None -> Fmt.str "get:%d %s -> none" g key
  | Some (value, version) -> Fmt.str "get:%d %s -> %d (v%d)" g key value version

let handle ~pid ~n:_ state ~src:_ msg =
  match msg with
  | Put { key; value } ->
    let o = Ring.owner state.ring key in
    if o <> pid then (state, [ App_model.App_intf.send o (Put { key; value }) ])
    else (apply_one state (key, value), [])
  | Get { g; key } ->
    let o = Ring.owner state.ring key in
    if o <> pid then (state, [ App_model.App_intf.send o (Get { g; key }) ])
    else (state, [ App_model.App_intf.output (get_text g key (lookup state key)) ])
  | Multi_put { m; pairs } ->
    let groups = partition state.ring pairs in
    let local = match List.assoc_opt pid groups with Some l -> l | None -> [] in
    let remote = List.filter (fun (o, _) -> o <> pid) groups in
    let state = List.fold_left apply_one state local in
    if remote = [] then (state, [ App_model.App_intf.output (mp_ack_text m) ])
    else begin
      let state =
        { state with pending = Int_map.add m (List.length remote) state.pending }
      in
      ( state,
        List.map
          (fun (o, pairs) ->
            App_model.App_intf.send o (Mp_apply { m; coord = pid; pairs }))
          remote )
    end
  | Mp_apply { m; coord; pairs } ->
    let state = List.fold_left apply_one state pairs in
    (state, [ App_model.App_intf.send coord (Mp_ack { m; from_ = pid }) ])
  | Mp_ack { m; from_ = _ } -> (
    match Int_map.find_opt m state.pending with
    | None -> (state, [])  (* stale ack for an already-acked multi-put *)
    | Some 1 ->
      ( { state with pending = Int_map.remove m state.pending },
        [ App_model.App_intf.output (mp_ack_text m) ] )
    | Some left ->
      ({ state with pending = Int_map.add m (left - 1) state.pending }, []))
  | Grow { w } ->
    if w <= Ring.shards state.ring then (state, [])
    else ({ state with ring = Ring.grow state.ring ~shards:w }, [])
  | Retire_shard { shard } -> (
    (* [remove] is idempotent on an already-absent shard; a decode-valid
       but out-of-range shard id must not crash the daemon. *)
    match Ring.remove state.ring shard with
    | ring -> ({ state with ring }, [])
    | exception Invalid_argument _ -> (state, []))

let digest s =
  (* The ring is a deterministic fold of the logged [Grow]/[Retire_shard]
     messages over the [(n, seed)] starting point — identical on every
     incarnation replaying the same log — so it stays out of the digest. *)
  let h =
    Str_map.fold
      (fun key (value, version) h ->
        App_model.Hashing.(mix (mix (mix h (string key)) value) version))
      s.store
      (App_model.Hashing.pair s.pid s.puts)
  in
  Int_map.fold (fun m left h -> App_model.Hashing.(mix (mix h m) left)) s.pending h

(* Byte-level payload format, mirroring the kvstore app's conventions: a
   tag byte, int64-LE integers, u32-length-prefixed strings, and a
   count-prefixed pair list; unknown tags, short buffers and trailing
   bytes are decode errors. *)
let wire : msg App_model.App_intf.wire_format =
  let put_int b v =
    let s = Bytes.create 8 in
    Bytes.set_int64_le s 0 (Int64.of_int v);
    Buffer.add_bytes b s
  in
  let put_str b s =
    put_int b (String.length s);
    Buffer.add_string b s
  in
  let put_pairs b pairs =
    put_int b (List.length pairs);
    List.iter
      (fun (k, v) ->
        put_str b k;
        put_int b v)
      pairs
  in
  let write msg =
    let b = Buffer.create 48 in
    (match msg with
    | Put { key; value } ->
      Buffer.add_char b '\x01';
      put_str b key;
      put_int b value
    | Get { g; key } ->
      Buffer.add_char b '\x02';
      put_int b g;
      put_str b key
    | Multi_put { m; pairs } ->
      Buffer.add_char b '\x03';
      put_int b m;
      put_pairs b pairs
    | Mp_apply { m; coord; pairs } ->
      Buffer.add_char b '\x04';
      put_int b m;
      put_int b coord;
      put_pairs b pairs
    | Mp_ack { m; from_ } ->
      Buffer.add_char b '\x05';
      put_int b m;
      put_int b from_
    | Grow { w } ->
      Buffer.add_char b '\x06';
      put_int b w
    | Retire_shard { shard } ->
      Buffer.add_char b '\x07';
      put_int b shard);
    Buffer.contents b
  in
  let read s =
    let pos = ref 0 in
    let need n =
      if !pos + n > String.length s then failwith "shardkv wire: short buffer"
    in
    let get_int () =
      need 8;
      let v = Int64.to_int (String.get_int64_le s !pos) in
      pos := !pos + 8;
      v
    in
    let get_str () =
      let len = get_int () in
      if len < 0 then failwith "shardkv wire: negative length";
      need len;
      let v = String.sub s !pos len in
      pos := !pos + len;
      v
    in
    let get_pairs () =
      let count = get_int () in
      if count < 0 then failwith "shardkv wire: negative pair count";
      List.init count (fun _ ->
          let k = get_str () in
          (k, get_int ()))
    in
    match
      if String.length s = 0 then Error "shardkv wire: empty payload"
      else begin
        let tag = s.[0] in
        pos := 1;
        let msg =
          match tag with
          | '\x01' ->
            let key = get_str () in
            Put { key; value = get_int () }
          | '\x02' ->
            let g = get_int () in
            Get { g; key = get_str () }
          | '\x03' ->
            let m = get_int () in
            Multi_put { m; pairs = get_pairs () }
          | '\x04' ->
            let m = get_int () in
            let coord = get_int () in
            Mp_apply { m; coord; pairs = get_pairs () }
          | '\x05' ->
            let m = get_int () in
            Mp_ack { m; from_ = get_int () }
          | '\x06' -> Grow { w = get_int () }
          | '\x07' -> Retire_shard { shard = get_int () }
          | c -> failwith (Fmt.str "shardkv wire: unknown tag %#x" (Char.code c))
        in
        if !pos <> String.length s then failwith "shardkv wire: trailing bytes";
        Ok msg
      end
    with
    | result -> result
    | exception Failure e -> Error e
  in
  { App_model.App_intf.write; read }

(* Recovery partitions within one shard's store.  Single-key messages
   belong to their key's partition; the cross-shard multi-put messages
   touch the global [pending]/[puts] bookkeeping (and arbitrary key sets),
   so they are barriers — replayed only at their exact log position.  The
   global [puts] counter also rules out per-partition snapshots: skipping
   a record would silently lose its increments, so [part_export] is [None]
   and shardkv gets partitioned replay but not incremental checkpoints. *)
let parts = 8

let part_of_key key =
  App_model.Hashing.(mix 0x9e37 (string key)) mod parts

let partitioning : (state, msg) App_model.App_intf.partitioning =
  {
    App_model.App_intf.parts;
    part_of_msg =
      (fun ~n:_ -> function
        | Put { key; _ } | Get { key; _ } -> Some (part_of_key key)
        | Multi_put _ | Mp_apply _ | Mp_ack _ -> None
        (* Ring changes redirect every partition's routing: barriers. *)
        | Grow _ | Retire_shard _ -> None);
    part_digest =
      (fun s p ->
        Str_map.fold
          (fun key (value, version) h ->
            if part_of_key key = p then
              App_model.Hashing.(mix (mix (mix h (string key)) value) version)
            else h)
          s.store
          (App_model.Hashing.pair s.pid p));
    part_export = None;
    part_import = None;
  }

let app : (state, msg) App_model.App_intf.t =
  {
    name = "shardkv";
    init =
      (fun ~pid ~n ->
        {
          pid;
          ring = Ring.make ~shards:n ();
          store = Str_map.empty;
          pending = Int_map.empty;
          puts = 0;
        });
    handle;
    digest;
    pp_msg;
    partitioning = Some partitioning;
  }
