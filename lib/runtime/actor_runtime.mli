(** A threaded actor deployment of the recovery protocol.

    The simulator ({!Harness.Cluster}) exercises the protocol under
    controlled, deterministic schedules; this runtime runs the {e same}
    {!Recovery.Node} on real OS threads with real mailboxes and wall-clock
    timers — the shape a downstream user would embed in an actual service.
    One thread per process drains a mutex-protected mailbox; periodic
    flush/checkpoint/notice ticks come from a timer thread; a crash makes
    the actor drop its volatile state, sleep through the restart delay and
    recover, while its mailbox keeps accumulating like a listen backlog.

    Nondeterminism here is real (thread scheduling), so runs are not
    reproducible — the correctness argument is the same offline causality
    oracle, applied to the merged trace after the run. *)

type ('state, 'msg) t

val create :
  config:Recovery.Config.t ->
  app:('state, 'msg) App_model.App_intf.t ->
  ?store_root:string ->
  ?scheduler:Sim.Scheduler.t ->
  ?time_scale:float ->
  unit ->
  ('state, 'msg) t
(** Spawn one actor thread per process plus a timer thread.  [time_scale]
    (default 0.001) converts the configuration's abstract time units to
    seconds — with the default, a flush interval of 50 means 50 ms.

    With [store_root], process [i] keeps a durable file-backed store under
    [store_root/p<i>] instead of the in-memory model, which enables
    {!kill}.

    [scheduler] perturbs every mailbox's service order: instead of FIFO,
    each actor asks the scheduler which of its queued work items to take
    next (see {!Sim.Scheduler}).  All actors share the one scheduler
    (picks are serialized internally), so a stateful policy sees an
    arbitrary thread interleaving — use pure [Sim.Scheduler.of_fun]
    policies (e.g. LIFO) for meaningful stress orders.  Protocol
    correctness must hold under any service order; the oracle checks the
    merged trace as usual. *)

val inject : ('state, 'msg) t -> dst:int -> 'msg -> unit
(** Outside-world message; thread-safe. *)

val crash : ('state, 'msg) t -> pid:int -> unit
(** Ask the actor to fail-stop and recover after the configured restart
    delay; thread-safe and asynchronous.  The node handle survives: only
    volatile state is lost. *)

val kill : ('state, 'msg) t -> pid:int -> unit
(** Ask the actor to die as a process: the node handle and its store
    descriptors are discarded (un-fsynced bytes are lost from the files),
    and after the restart delay a {e fresh} handle is created over the same
    store directory and restarted — it recovers solely from what open-time
    recovery reads back from disk.  Requires [~store_root]; thread-safe and
    asynchronous.
    @raise Invalid_argument when the runtime has no store root. *)

val with_node : ('state, 'msg) t -> int -> (('state, 'msg) Recovery.Node.t -> 'a) -> 'a
(** Run a read-only inspection of a node under the runtime's lock. *)

val await :
  ('state, 'msg) t -> ?timeout:float -> (unit -> bool) -> bool
(** Poll the condition (called without the lock; use {!with_node} inside)
    every few milliseconds until it holds or [timeout] (seconds, default 10)
    elapses.  Returns whether the condition was met. *)

val idle : ('state, 'msg) t -> bool
(** No mailbox has pending work and no actor is mid-handler.  (Timers keep
    ticking, so this is a snapshot, not a fixpoint.) *)

val trace : ('state, 'msg) t -> Recovery.Trace.t
(** The shared execution trace; stable to read after {!shutdown}. *)

val shutdown : ('state, 'msg) t -> unit
(** Stop all threads and join them.  Idempotent. *)
