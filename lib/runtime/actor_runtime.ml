module Node = Recovery.Node
module Wire = Recovery.Wire
module Config = Recovery.Config

type 'msg work =
  | Packet of { src : int; packet : 'msg Wire.packet }
  | Client of { seq : int; payload : 'msg }
  | Tick of [ `Flush | `Checkpoint | `Notice ]
  | Crash
  | Kill
  | Stop

type 'msg mailbox = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : 'msg work Queue.t;
}

let mailbox () =
  { mutex = Mutex.create (); nonempty = Condition.create (); queue = Queue.create () }

let post box work =
  Mutex.lock box.mutex;
  Queue.add work box.queue;
  Condition.signal box.nonempty;
  Mutex.unlock box.mutex

(* Remove the [i]-th element (FIFO order) of a queue; caller holds the
   mailbox mutex and guarantees the queue is non-empty. *)
let take_nth queue i =
  let items = List.of_seq (Queue.to_seq queue) in
  Queue.clear queue;
  List.iteri (fun j item -> if j <> i then Queue.add item queue) items;
  List.nth items i

let take ?scheduler box =
  Mutex.lock box.mutex;
  while Queue.is_empty box.queue do
    Condition.wait box.nonempty box.mutex
  done;
  let work =
    match scheduler with
    | None -> Queue.pop box.queue
    | Some (sched, lock) ->
      Mutex.lock lock;
      let i = Sim.Scheduler.pick sched ~n_enabled:(Queue.length box.queue) in
      Mutex.unlock lock;
      take_nth box.queue i
  in
  Mutex.unlock box.mutex;
  work

let pending box =
  Mutex.lock box.mutex;
  let n = Queue.length box.queue in
  Mutex.unlock box.mutex;
  n

type ('state, 'msg) t = {
  config : Config.t;
  app : ('state, 'msg) App_model.App_intf.t;
  store_root : string option;
  sched : Sim.Scheduler.t option;
  sched_lock : Mutex.t; (* Scheduler.t is not thread-safe; picks serialize here *)
  time_scale : float;
  start : float;
  nodes : ('state, 'msg) Node.t array; (* slots replaced on kill-respawn *)
  boxes : 'msg mailbox array;
  trace_ : Recovery.Trace.t;
  (* One big lock around every node handler call: nodes share the trace,
     and actor realism lives in the queues and timers, not in parallel
     handler execution. *)
  big_lock : Mutex.t;
  busy : bool array; (* actor currently inside a handler *)
  recovering : bool array; (* actor between fail-stop and completed restart *)
  mutable threads : Thread.t list;
  mutable stopping : bool;
  mutable inject_seq : int;
  mutable client_log : (int * int * 'msg) list; (* seq, dst, payload *)
  seq_lock : Mutex.t;
}

let now t = (Unix.gettimeofday () -. t.start) /. t.time_scale

let dispatch t ~src actions =
  List.iter
    (function
      | Node.Unicast { dst; packet } -> post t.boxes.(dst) (Packet { src; packet })
      | Node.Broadcast packet ->
        Array.iteri
          (fun dst box -> if dst <> src then post box (Packet { src; packet }))
          t.boxes;
        (* The outside world hears failure announcements too and retries its
           requests to the failed process; the node's duplicate suppression
           keeps the retries idempotent (cf. Harness.Cluster). *)
        (match packet with
        | Wire.Ann a when a.Wire.failure ->
          Mutex.lock t.seq_lock;
          let retries = List.filter (fun (_, dst, _) -> dst = src) t.client_log in
          Mutex.unlock t.seq_lock;
          List.iter
            (fun (seq, dst, payload) -> post t.boxes.(dst) (Client { seq; payload }))
            (List.rev retries)
        | _ -> ()))
    actions

let locked t pid f =
  Mutex.lock t.big_lock;
  t.busy.(pid) <- true;
  let result = try Ok (f ()) with exn -> Error exn in
  t.busy.(pid) <- false;
  Mutex.unlock t.big_lock;
  match result with Ok v -> v | Error exn -> raise exn

let store_dir t pid =
  Option.map (fun root -> Filename.concat root (Printf.sprintf "p%d" pid)) t.store_root

let actor_loop t pid =
  (* Re-read the slot on every work item: a Kill replaces the node with a
     fresh handle recovered from the on-disk store. *)
  let continue = ref true in
  let scheduler = Option.map (fun s -> (s, t.sched_lock)) t.sched in
  while !continue do
    let node = t.nodes.(pid) in
    match take ?scheduler t.boxes.(pid) with
    | Stop -> continue := false
    | Packet { packet; _ } ->
      let actions, _cost =
        locked t pid (fun () -> Node.handle_packet node ~now:(now t) packet)
      in
      dispatch t ~src:pid actions
    | Client { seq; payload } ->
      let actions, _cost =
        locked t pid (fun () -> Node.inject node ~now:(now t) ~seq payload)
      in
      dispatch t ~src:pid actions
    | Tick kind ->
      let actions, _cost =
        locked t pid (fun () ->
            match kind with
            | `Flush -> Node.flush node ~now:(now t)
            | `Checkpoint -> Node.checkpoint node ~now:(now t)
            | `Notice -> Node.broadcast_notice node ~now:(now t))
      in
      dispatch t ~src:pid actions
    | Crash ->
      (* Fail-stop: volatile state is dropped immediately; the mailbox keeps
         accumulating like a listen backlog while the process reboots.  The
         recovering flag keeps [idle] (and hence [await]-based settlement
         checks) honest for the whole outage. *)
      t.recovering.(pid) <- true;
      locked t pid (fun () -> Node.crash node ~now:(now t));
      Thread.delay
        (Config.real_restart_delay ~time_scale:t.time_scale t.config.Config.timing);
      let actions, _cost = locked t pid (fun () -> Node.restart node ~now:(now t)) in
      dispatch t ~src:pid actions;
      t.recovering.(pid) <- false
    | Kill ->
      (* Process death: the node handle dies with its store descriptors;
         un-fsynced bytes are gone from the files.  A *new* handle is
         created over the same directory — everything it knows, it knows
         from open-time recovery of those files — and restarted. *)
      t.recovering.(pid) <- true;
      locked t pid (fun () -> Node.halt node ~now:(now t));
      Thread.delay
        (Config.real_restart_delay ~time_scale:t.time_scale t.config.Config.timing);
      let actions, _cost =
        locked t pid (fun () ->
            let fresh =
              Node.create ~config:t.config ~pid ~app:t.app
                ?store_dir:(store_dir t pid) ?obs:None ~trace:t.trace_
            in
            t.nodes.(pid) <- fresh;
            Node.restart fresh ~now:(now t))
      in
      dispatch t ~src:pid actions;
      t.recovering.(pid) <- false
  done

let timer_loop t =
  let tick interval kind =
    match interval with
    | None -> None
    | Some period -> Some (ref (period *. t.time_scale), period *. t.time_scale, kind)
  in
  let timers =
    List.filter_map Fun.id
      [
        tick t.config.Config.timing.flush_interval `Flush;
        tick t.config.Config.timing.checkpoint_interval `Checkpoint;
        tick t.config.Config.timing.notice_interval `Notice;
      ]
  in
  let resolution = 0.002 in
  let elapsed = ref 0. in
  while not t.stopping do
    Thread.delay resolution;
    elapsed := !elapsed +. resolution;
    List.iter
      (fun (next, period, kind) ->
        if !elapsed >= !next then begin
          next := !next +. period;
          Array.iter (fun box -> post box (Tick kind)) t.boxes
        end)
      timers
  done

let create ~config ~app ?store_root ?scheduler
    ?(time_scale = Config.default_time_scale) () =
  let config = Config.validate_exn config in
  let n = config.Config.n in
  let trace_ = Recovery.Trace.create () in
  let node_dir pid =
    Option.map (fun root -> Filename.concat root (Printf.sprintf "p%d" pid)) store_root
  in
  let t =
    {
      config;
      app;
      store_root;
      sched = scheduler;
      sched_lock = Mutex.create ();
      time_scale;
      start = Unix.gettimeofday ();
      nodes =
        Array.init n (fun pid ->
            Node.create ~config ~pid ~app ?store_dir:(node_dir pid) ?obs:None
              ~trace:trace_);
      boxes = Array.init n (fun _ -> mailbox ());
      trace_;
      big_lock = Mutex.create ();
      busy = Array.make n false;
      recovering = Array.make n false;
      threads = [];
      stopping = false;
      inject_seq = 0;
      client_log = [];
      seq_lock = Mutex.create ();
    }
  in
  let actors = List.init n (fun pid -> Thread.create (actor_loop t) pid) in
  let timer = Thread.create timer_loop t in
  t.threads <- timer :: actors;
  t

let inject t ~dst payload =
  Mutex.lock t.seq_lock;
  t.inject_seq <- t.inject_seq + 1;
  let seq = t.inject_seq in
  t.client_log <- (seq, dst, payload) :: t.client_log;
  Mutex.unlock t.seq_lock;
  post t.boxes.(dst) (Client { seq; payload })

let crash t ~pid = post t.boxes.(pid) Crash

let kill t ~pid =
  if t.store_root = None then
    invalid_arg "Actor_runtime.kill: runtime was created without ~store_root";
  post t.boxes.(pid) Kill

let with_node t pid f =
  Mutex.lock t.big_lock;
  let result = try Ok (f t.nodes.(pid)) with exn -> Error exn in
  Mutex.unlock t.big_lock;
  match result with Ok v -> v | Error exn -> raise exn

let idle t =
  Array.for_all (fun box -> pending box = 0) t.boxes
  && Array.for_all (fun b -> not b) t.busy
  && Array.for_all (fun b -> not b) t.recovering

let await (_t : ('state, 'msg) t) ?(timeout = 10.) condition =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec poll () =
    if condition () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.005;
      poll ()
    end
  in
  poll ()

let trace t = t.trace_

let shutdown t =
  if not t.stopping then begin
    t.stopping <- true;
    Array.iter (fun box -> post box Stop) t.boxes;
    List.iter Thread.join t.threads;
    t.threads <- []
  end
