(* Two backends behind one interface: the original in-memory model (the
   simulator's store, byte-for-byte unchanged behaviour) and the durable
   file-backed store of lib/durable.  Dispatch is a two-constructor match;
   the in-memory arm never touches the filesystem. *)

module Mem = struct
  type ('ckpt, 'log, 'ann) t = {
    mutable stable_log : 'log list; (* newest first, positions [base, stable_len) *)
    mutable stable_len : int;
    mutable base : int; (* logical position of the oldest retained record *)
    volatile : 'log Queue.t;
    mutable ckpts : 'ckpt list; (* newest first *)
    mutable anns : 'ann list; (* newest first *)
    mutable inc : int;
    mutable sync_writes : int;
    mutable flushes : int;
    mutable disk_full : int; (* flush rounds left to refuse (brownout) *)
    mutable degraded_flushes : int;
  }

  let create () =
    {
      stable_log = [];
      stable_len = 0;
      base = 0;
      volatile = Queue.create ();
      ckpts = [];
      anns = [];
      inc = 0;
      sync_writes = 0;
      flushes = 0;
      disk_full = 0;
      degraded_flushes = 0;
    }

  let append_volatile t r = Queue.add r t.volatile

  (* Critical-path flush (checkpoints, rollback): models a writer that
     blocks until space frees, so it never refuses. *)
  let flush_force t =
    let n = Queue.length t.volatile in
    if n > 0 then begin
      Queue.iter (fun r -> t.stable_log <- r :: t.stable_log) t.volatile;
      Queue.clear t.volatile;
      t.stable_len <- t.stable_len + n;
      t.flushes <- t.flushes + 1;
      t.sync_writes <- t.sync_writes + 1
    end;
    n

  let flush t =
    if t.disk_full > 0 && not (Queue.is_empty t.volatile) then begin
      (* Same degradation contract as the durable backend: the flush
         refuses, the volatile buffer is retained intact, and the refusal
         is counted.  Stability simply does not advance this round. *)
      t.disk_full <- t.disk_full - 1;
      t.degraded_flushes <- t.degraded_flushes + 1;
      0
    end
    else flush_force t

  let stable_log_from t ~pos =
    if pos < t.base || pos > t.stable_len then
      invalid_arg "Stable_store.stable_log_from: position out of range";
    (* stable_log is newest first; take until we reach position [pos]. *)
    let rec take i acc = function
      | [] -> acc
      | r :: rest -> if i < pos then acc else take (i - 1) (r :: acc) rest
    in
    take (t.stable_len - 1) [] t.stable_log

  let truncate_stable_log t ~keep =
    if keep < t.base || keep > t.stable_len then
      invalid_arg "Stable_store.truncate_stable_log: keep out of range";
    let removed = stable_log_from t ~pos:keep in
    let rec drop i l = if i = 0 then l else drop (i - 1) (List.tl l) in
    t.stable_log <- drop (t.stable_len - keep) t.stable_log;
    t.stable_len <- keep;
    Queue.clear t.volatile;
    removed

  let discard_log_prefix t ~before =
    if before > t.stable_len then
      invalid_arg "Stable_store.discard_log_prefix: position out of range";
    if before <= t.base then 0
    else begin
      (* newest-first: keep the first (stable_len - before) physical cells *)
      let keep_cells = t.stable_len - before in
      let rec take i acc l =
        if i = 0 then List.rev acc
        else
          match l with
          | [] -> List.rev acc
          | r :: rest -> take (i - 1) (r :: acc) rest
      in
      let discarded = before - t.base in
      t.stable_log <- take keep_cells [] t.stable_log;
      t.base <- before;
      discarded
    end

  let save_checkpoint t c =
    ignore (flush_force t : int);
    t.ckpts <- c :: t.ckpts;
    t.sync_writes <- t.sync_writes + 1

  let restore_checkpoint t ~satisfying =
    let rec find = function
      | [] -> None
      | c :: rest -> if satisfying c then Some (c, c :: rest) else find rest
    in
    match find t.ckpts with
    | None -> None
    | Some (c, kept) ->
      t.ckpts <- kept;
      Some c

  let prune_checkpoints t ~keep_latest =
    if keep_latest < 1 then
      invalid_arg "Stable_store.prune_checkpoints: must keep at least one";
    let rec split i acc = function
      | [] -> (List.rev acc, [])
      | rest when i = 0 -> (List.rev acc, rest)
      | c :: rest -> split (i - 1) (c :: acc) rest
    in
    let kept, dropped = split keep_latest [] t.ckpts in
    t.ckpts <- kept;
    List.length dropped

  let prune_checkpoints_older_than t ~anchor =
    let rec split acc = function
      | [] -> None
      | c :: rest when anchor c -> Some (List.rev (c :: acc), rest)
      | c :: rest -> split (c :: acc) rest
    in
    match split [] t.ckpts with
    | None -> 0
    | Some (kept, dropped) ->
      t.ckpts <- kept;
      List.length dropped

  let log_announcement t a =
    t.anns <- a :: t.anns;
    t.sync_writes <- t.sync_writes + 1

  let compact_sync t ~keep =
    let kept = List.filter keep t.anns in
    let dropped = List.length t.anns - List.length kept in
    if dropped > 0 then begin
      t.anns <- kept;
      t.sync_writes <- t.sync_writes + 1
    end;
    dropped

  let set_incarnation t i =
    t.inc <- i;
    t.sync_writes <- t.sync_writes + 1

  let crash t =
    let lost = Queue.length t.volatile in
    Queue.clear t.volatile;
    lost
end

module Disk = Durable.Durable_store

type open_report = Disk.open_report = {
  fresh : bool;
  recovered_log : int;
  log_bytes_dropped : int;
  log_segments_dropped : int;
  missing_log_records : int;
  recovered_checkpoints : int;
  checkpoints_dropped : int;
  sync_records : int;
  sync_bytes_dropped : int;
  sync_area_missing : bool;
}

let report_damaged = Disk.damaged

let pp_open_report = Disk.pp_open_report

type ('ckpt, 'log, 'ann) t =
  | Mem of ('ckpt, 'log, 'ann) Mem.t
  | Disk of ('ckpt, 'log, 'ann) Disk.t

let create () = Mem (Mem.create ())

let open_durable ~dir ?segment_bytes ?obs () =
  let store, report = Disk.open_ ~dir ?segment_bytes ?obs () in
  (Disk store, report)

let is_durable = function Mem _ -> false | Disk _ -> true

let storage_report = function Mem _ -> None | Disk d -> Some (Disk.report d)

let storage_dir = function Mem _ -> None | Disk d -> Some (Disk.dir d)

let append_volatile t r =
  match t with Mem m -> Mem.append_volatile m r | Disk d -> Disk.append_volatile d r

let flush = function Mem m -> Mem.flush m | Disk d -> Disk.flush d

let flush_forced = function
  | Mem m -> Mem.flush_force m
  | Disk d -> Disk.flush_forced d

let stable_log_length = function
  | Mem m -> m.Mem.stable_len
  | Disk d -> Disk.stable_log_length d

let volatile_length = function
  | Mem m -> Queue.length m.Mem.volatile
  | Disk d -> Disk.volatile_length d

let volatile_peek = function
  | Mem m -> Queue.peek_opt m.Mem.volatile
  | Disk d -> Disk.volatile_peek d

let stable_log_from t ~pos =
  match t with
  | Mem m -> Mem.stable_log_from m ~pos
  | Disk d -> Disk.stable_log_from d ~pos

let truncate_stable_log t ~keep =
  match t with
  | Mem m -> Mem.truncate_stable_log m ~keep
  | Disk d -> Disk.truncate_stable_log d ~keep

let discard_log_prefix t ~before =
  match t with
  | Mem m -> Mem.discard_log_prefix m ~before
  | Disk d -> Disk.discard_log_prefix d ~before

let log_base = function Mem m -> m.Mem.base | Disk d -> Disk.log_base d

let live_log_records = function
  | Mem m -> m.Mem.stable_len - m.Mem.base
  | Disk d -> Disk.live_log_records d

let save_checkpoint t c =
  match t with Mem m -> Mem.save_checkpoint m c | Disk d -> Disk.save_checkpoint d c

let latest_checkpoint = function
  | Mem m -> ( match m.Mem.ckpts with [] -> None | c :: _ -> Some c)
  | Disk d -> Disk.latest_checkpoint d

let checkpoints = function Mem m -> m.Mem.ckpts | Disk d -> Disk.checkpoints d

let restore_checkpoint t ~satisfying =
  match t with
  | Mem m -> Mem.restore_checkpoint m ~satisfying
  | Disk d -> Disk.restore_checkpoint d ~satisfying

let prune_checkpoints t ~keep_latest =
  match t with
  | Mem m -> Mem.prune_checkpoints m ~keep_latest
  | Disk d -> Disk.prune_checkpoints d ~keep_latest

let prune_checkpoints_older_than t ~anchor =
  match t with
  | Mem m -> Mem.prune_checkpoints_older_than m ~anchor
  | Disk d -> Disk.prune_checkpoints_older_than d ~anchor

let log_announcement t a =
  match t with Mem m -> Mem.log_announcement m a | Disk d -> Disk.log_announcement d a

let announcements = function
  | Mem m -> List.rev m.Mem.anns
  | Disk d -> Disk.announcements d

let compact_sync t ~keep =
  match t with
  | Mem m -> Mem.compact_sync m ~keep
  | Disk d -> Disk.compact_sync d ~keep

let set_incarnation t i =
  match t with Mem m -> Mem.set_incarnation m i | Disk d -> Disk.set_incarnation d i

let incarnation = function Mem m -> m.Mem.inc | Disk d -> Disk.incarnation d

let crash = function Mem m -> Mem.crash m | Disk d -> Disk.crash d

let sync_writes = function Mem m -> m.Mem.sync_writes | Disk d -> Disk.sync_writes d

let flushes = function Mem m -> m.Mem.flushes | Disk d -> Disk.flushes d

let kill = function
  | Mem _ -> invalid_arg "Stable_store.kill: in-memory store has no files"
  | Disk d -> Disk.kill d

let arm_fsync_failure = function
  | Mem _ -> invalid_arg "Stable_store.arm_fsync_failure: in-memory store"
  | Disk d -> Disk.arm_fsync_failure d

let arm_disk_full t ~rounds =
  match t with
  | Mem m ->
    if rounds < 0 then invalid_arg "Stable_store.arm_disk_full";
    m.Mem.disk_full <- rounds
  | Disk d -> Disk.arm_disk_full d ~rounds

let arm_slow_fsync t ~delay ~rounds =
  match t with
  | Mem _ ->
    (* Simulated time has no real fsync to stretch; the disk-full window is
       the brownout the simulation can express. *)
    invalid_arg "Stable_store.arm_slow_fsync: in-memory store"
  | Disk d -> Disk.arm_slow_fsync d ~delay ~rounds

let degraded_flushes = function
  | Mem m -> m.Mem.degraded_flushes
  | Disk d -> Disk.degraded_flushes d

let slowed_fsyncs = function Mem _ -> 0 | Disk d -> Disk.slowed_fsyncs d
