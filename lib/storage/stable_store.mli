(** Per-process stable storage, in two interchangeable backends.

    Models exactly the storage properties the recovery protocol relies on:

    - a {b message log} split into a stable prefix and a volatile suffix; the
      paper's optimistic logging "first saves messages in a volatile buffer
      and later writes several messages to stable storage in a single
      operation" ([flush]);
    - {b checkpoints}, each of which also flushes the volatile buffer "so
      that stable state intervals are always continuous" (Section 2);
    - a small synchronous area for {b failure announcements} and the
      process's {b incarnation counter} (Figure 3 logs announcements
      synchronously; the incarnation counter must survive a crash so that a
      process never reuses an incarnation number);
    - {b crash semantics}: [crash] discards the volatile suffix and nothing
      else.

    The store is generic in the checkpoint, log-record and announcement
    types so that it carries whatever the recovery layer defines.  It also
    counts synchronous writes and flushes; the simulation engine converts
    those counts into time via its cost model.

    Two backends implement this contract:

    - {!create} builds the original {b in-memory model} used by the
      deterministic simulation (free, instant, survives [crash] but not
      process death);
    - {!open_durable} opens a {b file-backed store}
      ({!Durable.Durable_store}): checksummed segmented log, checkpoint
      snapshot files and an fsynced synchronous area under one directory.
      Only this backend survives {!kill} — a new [open_durable] on the
      same directory recovers everything that was durable at the kill.

    The conformance suite in [test/test_storage.ml] runs the same
    assertions over both backends so they cannot drift. *)

type ('ckpt, 'log, 'ann) t

val create : unit -> ('ckpt, 'log, 'ann) t
(** A fresh in-memory store. *)

(** {1 Durable backend} *)

type open_report = Durable.Durable_store.open_report = {
  fresh : bool;
  recovered_log : int;
  log_bytes_dropped : int;
  log_segments_dropped : int;
  missing_log_records : int;
  recovered_checkpoints : int;
  checkpoints_dropped : int;
  sync_records : int;
  sync_bytes_dropped : int;
  sync_area_missing : bool;
}
(** What open-time recovery found; see {!Durable.Durable_store.open_report}
    for field documentation. *)

val report_damaged : open_report -> bool

val pp_open_report : Format.formatter -> open_report -> unit

val open_durable :
  dir:string ->
  ?segment_bytes:int ->
  ?obs:Obs.Registry.t ->
  unit ->
  ('ckpt, 'log, 'ann) t * open_report
(** Open (or create) a file-backed store rooted at [dir].  [obs] is
    forwarded to {!Durable.Durable_store.open_}: the registry where the
    backend registers its flush/fsync metric families. *)

val is_durable : ('ckpt, 'log, 'ann) t -> bool

val storage_report : ('ckpt, 'log, 'ann) t -> open_report option
(** The durable backend's open-time recovery report; [None] in memory. *)

val storage_dir : ('ckpt, 'log, 'ann) t -> string option

val kill : ('ckpt, 'log, 'ann) t -> unit
(** Process death (durable backend only): un-fsynced bytes are lost, all
    descriptors close, and the handle becomes unusable; recover with a new
    {!open_durable} on the same directory.  Contrast {!crash}, which only
    drops the volatile buffer of a handle that stays alive.
    @raise Invalid_argument on the in-memory backend, which cannot outlive
    its process. *)

val arm_fsync_failure : ('ckpt, 'log, 'ann) t -> unit
(** Storage fault injection (durable backend only): from now on the log's
    fsync lies.  See {!Durable.Durable_store.arm_fsync_failure}. *)

val arm_disk_full : ('ckpt, 'log, 'ann) t -> rounds:int -> unit
(** Brownout fault injection (both backends): the next [rounds] {!flush}
    attempts refuse as if the disk were full.  The volatile buffer is
    retained intact — nothing is lost, stability just stops advancing
    until the window passes; refusals are counted
    ({!degraded_flushes}).  {!flush_forced}, checkpoints and rollback are
    exempt (they model writers that block until space frees). *)

val arm_slow_fsync : ('ckpt, 'log, 'ann) t -> delay:float -> rounds:int -> unit
(** Brownout fault injection (durable backend only): the next [rounds]
    flush rounds stretch their fsync by [delay] seconds, outside the
    group-commit lock.  See {!Durable.Durable_store.arm_slow_fsync}. *)

val degraded_flushes : ('ckpt, 'log, 'ann) t -> int
(** Flushes refused by an armed disk-full window. *)

val slowed_fsyncs : ('ckpt, 'log, 'ann) t -> int
(** Flush rounds stretched by an armed slow-fsync window (0 in memory). *)

(** {1 Message log} *)

val append_volatile : ('ckpt, 'log, 'ann) t -> 'log -> unit
(** Record a delivered message in the volatile buffer. *)

val flush : ('ckpt, 'log, 'ann) t -> int
(** Write the whole volatile buffer to stable storage in one operation;
    returns the number of records made stable.  Counted as one flush (and as
    a synchronous write only when records were actually written).  An armed
    disk-full window ({!arm_disk_full}) makes this refuse (return 0 with the
    buffer intact) instead. *)

val flush_forced : ('ckpt, 'log, 'ann) t -> int
(** Critical-path variant of {!flush} that an armed disk-full window never
    refuses — used where a refusal would be unsound (checkpointing,
    rollback's log-everything step). *)

val stable_log_length : ('ckpt, 'log, 'ann) t -> int

val volatile_length : ('ckpt, 'log, 'ann) t -> int

val volatile_peek : ('ckpt, 'log, 'ann) t -> 'log option
(** Oldest record still in the volatile buffer — the first record a crash
    would lose. *)

val stable_log_from : ('ckpt, 'log, 'ann) t -> pos:int -> 'log list
(** Stable log records from position [pos] (0-based) onward, in order. *)

val truncate_stable_log : ('ckpt, 'log, 'ann) t -> keep:int -> 'log list
(** Keep only the first [keep] stable records, returning the removed tail in
    order.  Used by Rollback: replay stops at the first orphan interval and
    the remaining logged messages are re-examined.  Also clears the volatile
    buffer (its contents started intervals after the truncation point).
    @raise Invalid_argument if [keep] exceeds the stable length. *)

val discard_log_prefix : ('ckpt, 'log, 'ann) t -> before:int -> int
(** Garbage-collect stable records at logical positions [< before], which
    replay will never need again (they precede a checkpoint that can never
    be rolled past).  Logical positions are preserved: [stable_log_length]
    and the positions used by [stable_log_from]/[truncate_stable_log] are
    unchanged; only the storage is reclaimed.  Returns the number of
    records discarded.  Requesting a prefix already discarded is a no-op.
    @raise Invalid_argument if [before] exceeds the stable length. *)

val log_base : ('ckpt, 'log, 'ann) t -> int
(** First logical position still physically present (0 when no prefix has
    been discarded).  [stable_log_from ~pos] requires [pos >= log_base]. *)

val live_log_records : ('ckpt, 'log, 'ann) t -> int
(** Number of records physically retained — the storage-footprint metric
    the garbage-collection experiment reports. *)

(** {1 Checkpoints} *)

val save_checkpoint : ('ckpt, 'log, 'ann) t -> 'ckpt -> unit
(** Persist a checkpoint; flushes the volatile buffer first (counted). *)

val latest_checkpoint : ('ckpt, 'log, 'ann) t -> 'ckpt option

val checkpoints : ('ckpt, 'log, 'ann) t -> 'ckpt list
(** Newest first. *)

val restore_checkpoint :
  ('ckpt, 'log, 'ann) t -> satisfying:('ckpt -> bool) -> 'ckpt option
(** Latest checkpoint satisfying the predicate; discards the (newer)
    checkpoints that follow it, per Figure 3's Rollback. *)

val prune_checkpoints : ('ckpt, 'log, 'ann) t -> keep_latest:int -> int
(** Garbage-collect all but the [keep_latest] newest checkpoints; returns
    how many were discarded.  Requires [keep_latest >= 1] (the latest
    checkpoint is always needed for restart). *)

val prune_checkpoints_older_than :
  ('ckpt, 'log, 'ann) t -> anchor:('ckpt -> bool) -> int
(** Discard every checkpoint older than the newest one satisfying
    [anchor]; the anchor itself and everything newer are kept.  No-op when
    no checkpoint satisfies [anchor].  Returns how many were discarded. *)

(** {1 Synchronous area} *)

val log_announcement : ('ckpt, 'log, 'ann) t -> 'ann -> unit
(** Synchronous write (counted). *)

val announcements : ('ckpt, 'log, 'ann) t -> 'ann list
(** Oldest first. *)

val compact_sync : ('ckpt, 'log, 'ann) t -> keep:('ann -> bool) -> int
(** Rewrite the synchronous area keeping only the announcements [keep]
    accepts; returns how many were dropped.  Counted as one synchronous
    write when anything was dropped, free otherwise.  Lets superseded
    per-partition checkpoint records be reclaimed so the sync area stays
    bounded by one snapshot per partition. *)

val set_incarnation : ('ckpt, 'log, 'ann) t -> int -> unit
(** Synchronously persist the incarnation counter (counted).  Necessary so a
    process that fails right after a rollback does not reuse an incarnation
    number — a refinement Figure 3 leaves implicit. *)

val incarnation : ('ckpt, 'log, 'ann) t -> int
(** Last persisted incarnation counter; 0 initially. *)

(** {1 Crash semantics and accounting} *)

val crash : ('ckpt, 'log, 'ann) t -> int
(** Discard the volatile buffer; returns how many records were lost.  All
    stable content survives. *)

val sync_writes : ('ckpt, 'log, 'ann) t -> int
(** Number of synchronous stable-storage operations so far (flushes that
    wrote data, checkpoints, announcement and incarnation writes). *)

val flushes : ('ckpt, 'log, 'ann) t -> int
(** Number of [flush] calls that wrote at least one record. *)
