type t =
  | Torn_final_write
  | Bit_flip
  | Truncated_segment
  | Failed_fsync
  | Disk_full
  | Slow_fsync

let all =
  [ Torn_final_write; Bit_flip; Truncated_segment; Failed_fsync; Disk_full;
    Slow_fsync ]

let to_string = function
  | Torn_final_write -> "torn-final-write"
  | Bit_flip -> "bit-flip"
  | Truncated_segment -> "truncated-segment"
  | Failed_fsync -> "failed-fsync"
  | Disk_full -> "disk-full"
  | Slow_fsync -> "slow-fsync"

let of_string s = List.find_opt (fun f -> to_string f = s) all

let pp ppf f = Format.pp_print_string ppf (to_string f)

let files_matching dir prefix =
  match Sys.readdir dir with
  | entries ->
    Array.to_list entries
    |> List.filter (fun name ->
           String.length name >= String.length prefix
           && String.sub name 0 (String.length prefix) = prefix
           && Filename.check_suffix name ".dat")
    |> List.sort compare
    |> List.map (fun name -> Filename.concat dir name)
  | exception Sys_error _ -> []

let size path = (Unix.stat path).Unix.st_size

let truncate path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.ftruncate fd len)

let flip_byte path off mask =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let b = Bytes.create 1 in
      ignore (Unix.lseek fd off Unix.SEEK_SET : int);
      if Unix.read fd b 0 1 = 1 then begin
        Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor mask));
        ignore (Unix.lseek fd off Unix.SEEK_SET : int);
        ignore (Unix.write fd b 0 1 : int)
      end)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Structural targeting: damage is aimed at a {e record} (index chosen by
   [rand]), located by scanning the file's Codec frames, never at a raw
   byte offset of the whole file.  Record boundaries move when the record
   format evolves (new fields, bigger payloads), but "the 3rd record" stays
   the 3rd record — so campaigns keep damaging what they meant to damage
   across format changes (the E12 refresh that PR 7's [lg_window] forced
   cannot recur).  Returns [(start, len)] spans, oldest first. *)
let record_spans path =
  let contents = read_file path in
  let rec loop pos acc =
    match Codec.decode contents ~pos with
    | Codec.Record { next; _ } -> loop next ((pos, next - pos) :: acc)
    | Codec.Truncated | Codec.Corrupt | Codec.End -> List.rev acc
    | exception Invalid_argument _ -> List.rev acc
  in
  (loop 0 [], String.length contents)

let apply ~dir ~rand fault =
  match fault with
  | Failed_fsync -> "failed fsync (armed on the live store before the kill)"
  | Disk_full -> "disk full (armed on the live store; flushes refuse)"
  | Slow_fsync -> "slow fsync (armed on the live store; rounds stretched)"
  | Torn_final_write -> (
    match
      List.filter (fun p -> size p > 0) (files_matching dir "seg-") |> List.rev
    with
    | [] -> "torn final write: no log bytes to tear"
    | last :: _ -> (
      match record_spans last with
      | [], sz ->
        (* No decodable record: shear trailing bytes as before. *)
        let tear = 1 + rand (min 16 sz) in
        truncate last (sz - tear);
        Printf.sprintf "tore %d trailing bytes off %s" tear
          (Filename.basename last)
      | spans, sz ->
        (* Cut into the final record: keep everything before it plus a
           random proper prefix of it (possibly mid-header). *)
        let start, len = List.nth spans (List.length spans - 1) in
        let keep = start + rand len in
        truncate last (min keep sz);
        Printf.sprintf "tore record %d of %s mid-write (kept %d of %d bytes)"
          (List.length spans - 1)
          (Filename.basename last) (keep - start) len))
  | Truncated_segment -> (
    match List.filter (fun p -> size p > 0) (files_matching dir "seg-") with
    | [] -> "truncated segment: no log bytes to cut"
    | segs -> (
      let victim = List.nth segs (rand (List.length segs)) in
      match record_spans victim with
      | [], sz ->
        let keep = rand sz in
        truncate victim keep;
        Printf.sprintf "truncated %s from %d to %d bytes"
          (Filename.basename victim) sz keep
      | spans, sz ->
        (* Cut at a record boundary: keep the first [k] records. *)
        let k = rand (List.length spans) in
        let keep =
          if k = 0 then 0
          else
            let start, len = List.nth spans (k - 1) in
            start + len
        in
        truncate victim keep;
        Printf.sprintf "truncated %s to its first %d of %d records (%d of %d bytes)"
          (Filename.basename victim) k (List.length spans) keep sz))
  | Bit_flip -> (
    let candidates =
      (files_matching dir "seg-" @ files_matching dir "ckpt-"
      @
      let s = Filename.concat dir "sync.dat" in
      if Sys.file_exists s then [ s ] else [])
      |> List.filter (fun p -> size p > 0)
    in
    match candidates with
    | [] -> "bit flip: no bytes to flip"
    | files -> (
      let victim = List.nth files (rand (List.length files)) in
      match record_spans victim with
      | [], sz ->
        let off = rand sz in
        let bit = rand 8 in
        flip_byte victim off (1 lsl bit);
        Printf.sprintf "flipped bit %d of byte %d in %s" bit off
          (Filename.basename victim)
      | spans, _ ->
        let idx = rand (List.length spans) in
        let start, len = List.nth spans idx in
        let off = start + rand len in
        let bit = rand 8 in
        flip_byte victim off (1 lsl bit);
        Printf.sprintf "flipped bit %d of record %d (byte %d of %d) in %s" bit
          idx (off - start) len
          (Filename.basename victim)))
