type t = Torn_final_write | Bit_flip | Truncated_segment | Failed_fsync

let all = [ Torn_final_write; Bit_flip; Truncated_segment; Failed_fsync ]

let to_string = function
  | Torn_final_write -> "torn-final-write"
  | Bit_flip -> "bit-flip"
  | Truncated_segment -> "truncated-segment"
  | Failed_fsync -> "failed-fsync"

let of_string s = List.find_opt (fun f -> to_string f = s) all

let pp ppf f = Format.pp_print_string ppf (to_string f)

let files_matching dir prefix =
  match Sys.readdir dir with
  | entries ->
    Array.to_list entries
    |> List.filter (fun name ->
           String.length name >= String.length prefix
           && String.sub name 0 (String.length prefix) = prefix
           && Filename.check_suffix name ".dat")
    |> List.sort compare
    |> List.map (fun name -> Filename.concat dir name)
  | exception Sys_error _ -> []

let size path = (Unix.stat path).Unix.st_size

let truncate path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.ftruncate fd len)

let flip_byte path off mask =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let b = Bytes.create 1 in
      ignore (Unix.lseek fd off Unix.SEEK_SET : int);
      if Unix.read fd b 0 1 = 1 then begin
        Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor mask));
        ignore (Unix.lseek fd off Unix.SEEK_SET : int);
        ignore (Unix.write fd b 0 1 : int)
      end)

let apply ~dir ~rand fault =
  match fault with
  | Failed_fsync -> "failed fsync (armed on the live store before the kill)"
  | Torn_final_write -> (
    match
      List.filter (fun p -> size p > 0) (files_matching dir "seg-") |> List.rev
    with
    | [] -> "torn final write: no log bytes to tear"
    | last :: _ ->
      let sz = size last in
      let tear = 1 + rand (min 16 sz) in
      truncate last (sz - tear);
      Printf.sprintf "tore %d trailing bytes off %s" tear (Filename.basename last)
    )
  | Truncated_segment -> (
    match List.filter (fun p -> size p > 0) (files_matching dir "seg-") with
    | [] -> "truncated segment: no log bytes to cut"
    | segs ->
      let victim = List.nth segs (rand (List.length segs)) in
      let sz = size victim in
      let keep = rand sz in
      truncate victim keep;
      Printf.sprintf "truncated %s from %d to %d bytes" (Filename.basename victim)
        sz keep)
  | Bit_flip -> (
    let candidates =
      (files_matching dir "seg-" @ files_matching dir "ckpt-"
      @
      let s = Filename.concat dir "sync.dat" in
      if Sys.file_exists s then [ s ] else [])
      |> List.filter (fun p -> size p > 0)
    in
    match candidates with
    | [] -> "bit flip: no bytes to flip"
    | files ->
      let victim = List.nth files (rand (List.length files)) in
      let off = rand (size victim) in
      let bit = rand 8 in
      flip_byte victim off (1 lsl bit);
      Printf.sprintf "flipped bit %d of byte %d in %s" bit off
        (Filename.basename victim))
