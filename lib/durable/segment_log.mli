(** Segmented append-only record log.

    The message log lives in numbered segment files [seg-<start>.dat],
    where [<start>] is the absolute logical index of the segment's first
    record — so logical positions survive both restarts and prefix
    compaction (deleting whole leading segments) without any translation
    table.  Records are {!Codec} frames; appends go to the newest segment
    and are made durable in batches by {!sync}, which is the physical face
    of the paper's [flush] operation.

    Open-time recovery scans every segment in order and stops at the first
    anomaly — a torn frame, a checksum mismatch, or a segment whose record
    count does not meet the next segment's start index.  Everything from
    the anomaly onward is truncated (later segments deleted), so the
    recovered log is always a gap-free prefix of what was written.

    [kill] models a process death: nothing is synced, every byte past the
    last successful [sync] is discarded, exactly like an OS losing the page
    cache.  A log whose [sync] has been armed to fail (see
    {!arm_fsync_failure}) silently stops making appends durable — the
    storage-fault campaigns use this to model a lying disk. *)

type t

type recovered = {
  first : int;  (** logical index of the first recovered record *)
  payloads : string list;  (** recovered record payloads, oldest first *)
  bytes_dropped : int;  (** bytes truncated from torn/corrupt tails *)
  segments_dropped : int;  (** later segments discarded after an anomaly *)
  tail : Codec.tail;  (** state of the first anomaly encountered *)
}

val open_ : dir:string -> ?segment_bytes:int -> unit -> t * recovered
(** Open (creating if needed) the segment log in [dir].  [segment_bytes]
    (default 64 KiB) is the size threshold past which appends rotate to a
    new segment. *)

val append : t -> string -> int
(** Append one record payload; returns its absolute logical index.  The
    record is volatile until the next {!sync}. *)

val sync : t -> unit
(** fsync the newest segment (one synchronous operation per batch). *)

val arm_fsync_failure : t -> unit
(** From now on {!sync} reports success without persisting anything. *)

val next_index : t -> int
(** Logical index the next {!append} will get. *)

val first_index : t -> int
(** Logical index of the oldest physically retained record. *)

val truncate_after : t -> keep:int -> unit
(** Physically discard every record with logical index [>= keep]: later
    segments are deleted and the segment containing [keep] is truncated at
    the record boundary.  Subsequent appends continue at index [keep]. *)

val drop_segments_below : t -> before:int -> unit
(** Delete whole segments that only contain records with index [< before].
    The newest segment is never deleted; compaction is segment-grained, so
    a few records below [before] may physically survive. *)

val segment_count : t -> int

val kill : t -> unit
(** Process death: discard every un-synced byte (including segments rotated
    away while fsync was armed to fail) and close all descriptors.  The log
    is unusable afterwards; reopen with {!open_}. *)

val close : t -> unit
(** Graceful close: {!sync} then release descriptors. *)
