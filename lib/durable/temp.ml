let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let counter = ref 0

let fresh_dir ?base ~prefix () =
  let base =
    match base with Some b -> b | None -> Filename.get_temp_dir_name ()
  in
  mkdir_p base;
  let rec attempt () =
    incr counter;
    let path =
      Filename.concat base
        (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !counter)
    in
    match Unix.mkdir path 0o755 with
    | () -> path
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> attempt ()
  in
  attempt ()

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error (_, _, _) -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
