(* Record kinds, one byte each.  The segment log uses its own fixed kind
   internally; these are the checkpoint-file and synchronous-area kinds. *)
let k_ckpt = 0x43 (* 'C': (stable length at save, checkpoint snapshot) *)

let k_ann = 0x41 (* 'A': announcement *)

let k_inc = 0x49 (* 'I': incarnation counter *)

let k_len = 0x4E (* 'N': stable-length witness, recorded after each flush *)

let k_base = 0x42 (* 'B': logical log base after prefix compaction *)

(* Every Marshal blob travels sealed: the envelope's CRC witnesses the
   exact marshalled bytes, so [of_bin_opt] rejects damaged or skewed input
   before [Marshal.from_string] can crash on it.  Decode failures are
   never raised out of [open_] — they are counted into the open report. *)
let to_bin v = Codec.seal (Marshal.to_string v [ Marshal.Closures ])

let of_bin_opt (s : string) =
  match Codec.unseal s with
  | Error _ -> None
  | Ok p -> (
    match Marshal.from_string p 0 with
    | v -> Some v
    | exception (Failure _ | Invalid_argument _ | End_of_file) -> None)


type open_report = {
  fresh : bool;
  recovered_log : int;
  log_bytes_dropped : int;
  log_segments_dropped : int;
  missing_log_records : int;
  recovered_checkpoints : int;
  checkpoints_dropped : int;
  sync_records : int;
  sync_bytes_dropped : int;
  sync_area_missing : bool;
}

let damaged r =
  r.log_bytes_dropped > 0 || r.log_segments_dropped > 0
  || r.missing_log_records > 0 || r.checkpoints_dropped > 0
  || r.sync_bytes_dropped > 0 || r.sync_area_missing

let pp_open_report ppf r =
  Format.fprintf ppf
    "@[<v>fresh: %b@,log: %d records recovered, %d bytes + %d segments dropped@,\
     missing vs stable-length witness: %d@,\
     checkpoints: %d recovered, %d dropped@,\
     sync area: %d records, %d bytes dropped%s@]"
    r.fresh r.recovered_log r.log_bytes_dropped r.log_segments_dropped
    r.missing_log_records r.recovered_checkpoints r.checkpoints_dropped
    r.sync_records r.sync_bytes_dropped
    (if r.sync_area_missing then ", MISSING" else "")

type ('ckpt, 'log, 'ann) t = {
  root : string;
  log : Segment_log.t;
  mutable stable_log : 'log list; (* newest first, mirrors the segments *)
  mutable stable_len : int;
  mutable base : int;
  volatile : 'log Queue.t;
  mutable ckpts : (int * 'ckpt) list; (* (file seq, snapshot), newest first *)
  mutable ckpt_seq : int;
  mutable anns : 'ann list; (* newest first *)
  mutable inc : int;
  sync_writes : Obs.Counter.t;
  flushes : Obs.Counter.t;
  mutable sync_fd : Unix.file_descr; (* sync.dat, appended under the lock *)
  mutable disk_full : int; (* flush rounds still refused (ENOSPC brownout) *)
  mutable slow_fsync : (float * int) option; (* extra seconds, rounds left *)
  mutable round_slow : float; (* slow-down of the round in flight *)
  degraded_flushes : Obs.Counter.t;
  slowed_fsyncs : Obs.Counter.t;
  mutable alive : bool;
  gc : Group_commit.t; (* flush coalescing; its lock guards all state *)
  report : open_report;
}

let guard t = if not t.alive then invalid_arg "Durable_store: store killed"

let sync_path root = Filename.concat root "sync.dat"

let ckpt_path root seq = Filename.concat root (Printf.sprintf "ckpt-%012d.dat" seq)

let parse_ckpt name =
  if String.length name = 21 && String.sub name 0 5 = "ckpt-"
     && Filename.check_suffix name ".dat"
  then int_of_string_opt (String.sub name 5 12)
  else None

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Append one record to the synchronous area.  Writes of protocol data
   (announcements, incarnation) are fsynced and counted by the callers in
   [sync_writes]; store-internal metadata (length witness, base) is not
   counted — the paper's cost model has no such operation, it piggybacks
   here on writes the simulated store performs for free.  With
   [~fsync:false] the record is only buffered (a [write], no fsync): the
   bytes survive a process kill in the kernel regardless, and become
   power-loss durable with the next fsynced record on this descriptor.
   The flush path's length witness uses this — see [flush]. *)
let sync_put ?(fsync = true) t ~kind payload =
  let frame = Codec.encode ~kind payload in
  let len = String.length frame in
  let rec loop pos =
    if pos < len then
      loop (pos + Unix.write_substring t.sync_fd frame pos (len - pos))
  in
  loop 0;
  if fsync then Unix.fsync t.sync_fd

let open_ ~dir ?segment_bytes ?obs () =
  let obs = match obs with Some r -> r | None -> Obs.Registry.create () in
  Temp.mkdir_p dir;
  let pre_existing =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun name ->
           name = "sync.dat"
           || Filename.check_suffix name ".dat"
              && (String.length name >= 4 && String.sub name 0 4 = "seg-"
                 || String.length name >= 5 && String.sub name 0 5 = "ckpt-"))
  in
  let fresh = pre_existing = [] in
  let sync_file = sync_path dir in
  let sync_missing = (not fresh) && not (Sys.file_exists sync_file) in
  (* Synchronous area first: it holds the metadata (base, length witness)
     that interprets the rest. *)
  let sync_records = ref [] (* oldest first after rev *) in
  let sync_bytes_dropped = ref 0 in
  (if Sys.file_exists sync_file then begin
     let contents = read_file sync_file in
     let scanned = Codec.scan contents in
     sync_records := scanned.records;
     if scanned.valid_bytes < String.length contents then begin
       sync_bytes_dropped := String.length contents - scanned.valid_bytes;
       let fd = Unix.openfile sync_file [ Unix.O_WRONLY ] 0o644 in
       Unix.ftruncate fd scanned.valid_bytes;
       Unix.close fd
     end
   end);
  let anns = ref [] (* newest first *) in
  let inc = ref 0 in
  let witness_len = ref None in
  let logical_base = ref 0 in
  (* A record whose seal or Marshal header is damaged (in a way the frame
     CRC happened to miss, or after version skew) is dropped and its bytes
     counted — reported damage, never a crash and never silent
     acceptance. *)
  List.iter
    (fun (kind, payload) ->
      let undecodable () =
        sync_bytes_dropped :=
          !sync_bytes_dropped + String.length payload + Codec.header_bytes
      in
      let absorb f = match of_bin_opt payload with
        | Some v -> f v
        | None -> undecodable ()
      in
      if kind = k_ann then absorb (fun a -> anns := a :: !anns)
      else if kind = k_inc then absorb (fun (i : int) -> inc := i)
      else if kind = k_len then absorb (fun (w : int) -> witness_len := Some w)
      else if kind = k_base then absorb (fun (b : int) -> logical_base := b))
    !sync_records;
  (* Message log.  An undecodable record breaks the gap-free prefix the
     log promises, so recovery truncates there — the suffix is counted as
     dropped bytes, exactly like a torn tail. *)
  let log, recovered = Segment_log.open_ ~dir ?segment_bytes () in
  let log_undecodable_bytes = ref 0 in
  let stable_log =
    let rec decode_prefix idx acc = function
      | [] -> acc
      | payload :: rest -> (
        match of_bin_opt payload with
        | Some r -> decode_prefix (idx + 1) (r :: acc) rest
        | None ->
          List.iter
            (fun p ->
              log_undecodable_bytes :=
                !log_undecodable_bytes + String.length p + Codec.header_bytes)
            (payload :: rest);
          Segment_log.truncate_after log ~keep:idx;
          acc)
    in
    decode_prefix recovered.Segment_log.first [] recovered.Segment_log.payloads
  in
  let stable_len = Segment_log.next_index log in
  let missing =
    match !witness_len with
    | Some w when w > stable_len -> w - stable_len
    | Some _ | None -> 0
  in
  (* Checkpoints: each its own file; drop torn/corrupt ones and any whose
     saved stable length exceeds the recovered log (its replay suffix is
     gone, an older checkpoint still covers the surviving prefix). *)
  let ckpt_seqs =
    Sys.readdir dir |> Array.to_list
    |> List.filter_map parse_ckpt
    |> List.sort compare
  in
  let ckpts = ref [] (* newest first *) in
  let ckpts_dropped = ref 0 in
  List.iter
    (fun seq ->
      let path = ckpt_path dir seq in
      let usable =
        match Codec.decode (read_file path) ~pos:0 with
        | Codec.Record { kind; payload; _ } when kind = k_ckpt -> (
          match (of_bin_opt payload : (int * _) option) with
          | Some (log_pos, snapshot) when log_pos <= stable_len ->
            Some (seq, snapshot)
          | Some _ | None -> None)
        | _ -> None
        | exception _ -> None
      in
      match usable with
      | Some c -> ckpts := c :: !ckpts
      | None ->
        incr ckpts_dropped;
        Unix.unlink path)
    ckpt_seqs;
  let report =
    {
      fresh;
      recovered_log = List.length stable_log;
      log_bytes_dropped =
        recovered.Segment_log.bytes_dropped + !log_undecodable_bytes;
      log_segments_dropped = recovered.Segment_log.segments_dropped;
      missing_log_records = missing;
      recovered_checkpoints = List.length !ckpts;
      checkpoints_dropped = !ckpts_dropped;
      sync_records = List.length !sync_records;
      sync_bytes_dropped = !sync_bytes_dropped;
      sync_area_missing = sync_missing;
    }
  in
  let sync_fd =
    Unix.openfile sync_file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  let t =
    {
      root = dir;
      log;
      stable_log;
      stable_len;
      base = max !logical_base (Segment_log.first_index log);
      volatile = Queue.create ();
      ckpts = !ckpts;
      ckpt_seq = 1 + List.fold_left (fun m s -> max m s) (-1) ckpt_seqs;
      anns = !anns;
      inc = !inc;
      disk_full = 0;
      slow_fsync = None;
      round_slow = 0.;
      degraded_flushes = Obs.Registry.counter obs "storage_degraded_flushes_total";
      slowed_fsyncs = Obs.Registry.counter obs "storage_slowed_fsyncs_total";
      sync_writes = Obs.Registry.counter obs "storage_sync_writes_total";
      flushes = Obs.Registry.counter obs "storage_flushes_total";
      sync_fd;
      alive = true;
      gc = Group_commit.create ~obs ();
      report;
    }
  in
  (t, report)

let report t = t.report

let dir t = t.root

(* --- the Stable_store contract ------------------------------------- *)

(* Thread safety: every public operation runs under the group-commit
   coordinator's lock.  Plain reads and appends take it directly
   ([with_lock]); operations that rewrite files or close descriptors
   ([exclusive]) additionally wait out any fsync in flight.  [flush] goes
   through {!Group_commit.force} so concurrent flushes coalesce. *)

let with_lock t f = Group_commit.with_lock t.gc (fun () -> f ())

let exclusive t f = Group_commit.exclusive t.gc (fun () -> f ())

let append_volatile t r =
  with_lock t (fun () ->
      guard t;
      Queue.add r t.volatile)

(* The flush path has exactly one durability point: the segment log's
   fsync.  The stable-length witness — which lets a reopen detect a log
   tail that fsync claimed but did not persist — is recorded in the
   synchronous area as a {e buffered} write ([sync_put ~fsync:false]),
   after the fsync returns and under the lock, valued at what that fsync
   covered.  Buffered is enough: a process kill never drops written bytes
   (only power loss can, and that also drops the log tail the witness
   would have accused, so the witness can only ever under-claim — it
   never fabricates damage).  Crucially it does {e not} ride the log's
   fsync, so a lying log fsync still leaves a truthful witness behind. *)
(* Brownout degradation.  A disk-full window makes [flush] {e refuse} —
   nothing is drained, the volatile queue is retained intact and the
   refusal is counted — so the caller's records stay volatile and the
   K-rule keeps the node's sends gated: the protocol degrades to blocking
   at the K boundary instead of ever claiming stability the disk did not
   provide, and the first flush after the window drains everything in one
   synchronous round.  A slow-fsync window stretches each fsync, which the
   group-commit coordinator absorbs by coalescing more callers per round
   (its stats report the shed). *)
(* The group-commit round itself, shared by the refusable and the forced
   ([flush_forced]) entry points. *)
let flush_run t =
  Group_commit.force t.gc
      ~pending:(fun () ->
        guard t;
        not (Queue.is_empty t.volatile))
      ~prepare:(fun () ->
        let n = Queue.length t.volatile in
        Queue.iter
          (fun r ->
            ignore (Segment_log.append t.log (to_bin r) : int);
            t.stable_log <- r :: t.stable_log)
          t.volatile;
        Queue.clear t.volatile;
        t.stable_len <- t.stable_len + n;
        (* Only one leader is ever between prepare and sync, so a per-round
           slow-down recorded here (under the lock) can be consumed in
           [sync] (outside it) without a race. *)
        (match t.slow_fsync with
        | Some (delay, rounds) when rounds > 0 ->
          t.slow_fsync <- (if rounds = 1 then None else Some (delay, rounds - 1));
          Obs.Counter.incr t.slowed_fsyncs;
          t.round_slow <- delay
        | Some _ | None -> t.round_slow <- 0.);
        (n, t.stable_len))
      ~sync:(fun () ->
        Segment_log.sync t.log;
        let s = t.round_slow in
        if s > 0. then begin
          t.round_slow <- 0.;
          Thread.delay s
        end)
      ~commit:(fun (_, len) ->
        sync_put ~fsync:false t ~kind:k_len (to_bin len);
        Obs.Counter.incr t.flushes;
        Obs.Counter.incr t.sync_writes)
      ~default:(0, 0) ()
  |> fst

let flush t =
  let refused =
    with_lock t (fun () ->
        guard t;
        if t.disk_full > 0 && not (Queue.is_empty t.volatile) then begin
          t.disk_full <- t.disk_full - 1;
          Obs.Counter.incr t.degraded_flushes;
          true
        end
        else false)
  in
  if refused then 0 else flush_run t

(* Critical-path flush (checkpoints, rollback): models a writer that
   blocks until space frees, so an armed disk-full window never refuses
   it.  Without this, a checkpoint taken during a brownout would capture
   state whose covering log prefix the refused flush left volatile —
   restart would then replay records the checkpoint already absorbed. *)
let flush_forced t = flush_run t

let stable_log_length t = with_lock t (fun () -> t.stable_len)

let volatile_length t = with_lock t (fun () -> Queue.length t.volatile)

let volatile_peek t = with_lock t (fun () -> Queue.peek_opt t.volatile)

let log_from t ~pos =
  if pos < t.base || pos > t.stable_len then
    invalid_arg "Stable_store.stable_log_from: position out of range";
  let rec take i acc = function
    | [] -> acc
    | r :: rest -> if i < pos then acc else take (i - 1) (r :: acc) rest
  in
  take (t.stable_len - 1) [] t.stable_log

let stable_log_from t ~pos = with_lock t (fun () -> log_from t ~pos)

let truncate_stable_log t ~keep =
  exclusive t (fun () ->
      guard t;
      if keep < t.base || keep > t.stable_len then
        invalid_arg "Stable_store.truncate_stable_log: keep out of range";
      let removed = log_from t ~pos:keep in
      let rec drop i l = if i = 0 then l else drop (i - 1) (List.tl l) in
      t.stable_log <- drop (t.stable_len - keep) t.stable_log;
      t.stable_len <- keep;
      Segment_log.truncate_after t.log ~keep;
      sync_put t ~kind:k_len (to_bin keep);
      Queue.clear t.volatile;
      removed)

let discard_log_prefix t ~before =
  exclusive t @@ fun () ->
  guard t;
  if before > t.stable_len then
    invalid_arg "Stable_store.discard_log_prefix: position out of range";
  if before <= t.base then 0
  else begin
    let keep_cells = t.stable_len - before in
    let rec take i acc l =
      if i = 0 then List.rev acc
      else
        match l with
        | [] -> List.rev acc
        | r :: rest -> take (i - 1) (r :: acc) rest
    in
    let discarded = before - t.base in
    t.stable_log <- take keep_cells [] t.stable_log;
    t.base <- before;
    (* Record the logical base first, then reclaim whole segments; if we
       die in between, reopen just sees a few extra records below base. *)
    sync_put t ~kind:k_base (to_bin before);
    Segment_log.drop_segments_below t.log ~before;
    discarded
  end

let log_base t = with_lock t (fun () -> t.base)

let live_log_records t = with_lock t (fun () -> t.stable_len - t.base)

let save_checkpoint t c =
  ignore (flush_forced t : int);
  exclusive t (fun () ->
      guard t;
      let seq = t.ckpt_seq in
      t.ckpt_seq <- seq + 1;
      let path = ckpt_path t.root seq in
      let fd =
        Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
      in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let frame = Codec.encode ~kind:k_ckpt (to_bin (t.stable_len, c)) in
          let len = String.length frame in
          let rec loop pos =
            if pos < len then
              loop (pos + Unix.write_substring fd frame pos (len - pos))
          in
          loop 0;
          Unix.fsync fd);
      t.ckpts <- (seq, c) :: t.ckpts;
      Obs.Counter.incr t.sync_writes)

let latest_checkpoint t =
  with_lock t (fun () ->
      match t.ckpts with [] -> None | (_, c) :: _ -> Some c)

let checkpoints t = with_lock t (fun () -> List.map snd t.ckpts)

let unlink_ckpts t dropped =
  List.iter (fun (seq, _) -> Unix.unlink (ckpt_path t.root seq)) dropped

let restore_checkpoint t ~satisfying =
  exclusive t @@ fun () ->
  guard t;
  let rec find newer = function
    | [] -> None
    | (seq, c) :: rest ->
      if satisfying c then Some (List.rev newer, (seq, c) :: rest)
      else find ((seq, c) :: newer) rest
  in
  match find [] t.ckpts with
  | None -> None
  | Some (newer, kept) ->
    unlink_ckpts t newer;
    t.ckpts <- kept;
    Some (snd (List.hd kept))

let prune_checkpoints t ~keep_latest =
  exclusive t @@ fun () ->
  guard t;
  if keep_latest < 1 then
    invalid_arg "Stable_store.prune_checkpoints: must keep at least one";
  let rec split i acc = function
    | [] -> (List.rev acc, [])
    | rest when i = 0 -> (List.rev acc, rest)
    | c :: rest -> split (i - 1) (c :: acc) rest
  in
  let kept, dropped = split keep_latest [] t.ckpts in
  t.ckpts <- kept;
  unlink_ckpts t dropped;
  List.length dropped

let prune_checkpoints_older_than t ~anchor =
  exclusive t @@ fun () ->
  guard t;
  let rec split acc = function
    | [] -> None
    | (seq, c) :: rest when anchor c -> Some (List.rev ((seq, c) :: acc), rest)
    | c :: rest -> split (c :: acc) rest
  in
  match split [] t.ckpts with
  | None -> 0
  | Some (kept, dropped) ->
    t.ckpts <- kept;
    unlink_ckpts t dropped;
    List.length dropped

let log_announcement t a =
  with_lock t (fun () ->
      guard t;
      sync_put t ~kind:k_ann (to_bin a);
      t.anns <- a :: t.anns;
      Obs.Counter.incr t.sync_writes)

let announcements t = with_lock t (fun () -> List.rev t.anns)

(* Rewrite the synchronous area keeping only the announcements [keep]
   accepts (plus the store metadata — base, length witness, incarnation —
   re-emitted fresh).  Atomic: build a temp file, fsync it, rename over
   sync.dat, reopen the append descriptor.  A crash before the rename
   leaves the old area intact; after it, the new one. *)
let compact_sync t ~keep =
  exclusive t @@ fun () ->
  guard t;
  let kept = List.filter keep (List.rev t.anns) (* oldest first *) in
  let dropped = List.length t.anns - List.length kept in
  if dropped > 0 then begin
    let tmp = sync_path t.root ^ ".tmp" in
    let fd =
      Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let b = Buffer.create 4096 in
        Buffer.add_string b (Codec.encode ~kind:k_base (to_bin t.base));
        Buffer.add_string b (Codec.encode ~kind:k_len (to_bin t.stable_len));
        Buffer.add_string b (Codec.encode ~kind:k_inc (to_bin t.inc));
        List.iter
          (fun a -> Buffer.add_string b (Codec.encode ~kind:k_ann (to_bin a)))
          kept;
        let frame = Buffer.contents b in
        let len = String.length frame in
        let rec loop pos =
          if pos < len then
            loop (pos + Unix.write_substring fd frame pos (len - pos))
        in
        loop 0;
        Unix.fsync fd);
    Unix.rename tmp (sync_path t.root);
    Unix.close t.sync_fd;
    t.sync_fd <-
      Unix.openfile (sync_path t.root) [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644;
    t.anns <- List.rev kept;
    Obs.Counter.incr t.sync_writes
  end;
  dropped

let set_incarnation t i =
  with_lock t (fun () ->
      guard t;
      sync_put t ~kind:k_inc (to_bin i);
      t.inc <- i;
      Obs.Counter.incr t.sync_writes)

let incarnation t = with_lock t (fun () -> t.inc)

let crash t =
  with_lock t (fun () ->
      let lost = Queue.length t.volatile in
      Queue.clear t.volatile;
      lost)

let sync_writes t = with_lock t (fun () -> Obs.Counter.value t.sync_writes)

let flushes t = with_lock t (fun () -> Obs.Counter.value t.flushes)

let commit_stats t = Group_commit.stats t.gc

let kill t =
  (* [exclusive] waits out an fsync in flight: descriptors must not close
     under a leader mid-sync. *)
  exclusive t (fun () ->
      if t.alive then begin
        Queue.clear t.volatile;
        Segment_log.kill t.log;
        Unix.close t.sync_fd;
        t.alive <- false
      end)

let arm_fsync_failure t =
  exclusive t (fun () ->
      guard t;
      Segment_log.arm_fsync_failure t.log)

let arm_disk_full t ~rounds =
  if rounds < 0 then invalid_arg "Durable_store.arm_disk_full";
  with_lock t (fun () ->
      guard t;
      t.disk_full <- rounds)

let arm_slow_fsync t ~delay ~rounds =
  if delay < 0. || rounds < 0 then invalid_arg "Durable_store.arm_slow_fsync";
  with_lock t (fun () ->
      guard t;
      t.slow_fsync <- (if rounds = 0 then None else Some (delay, rounds)))

let degraded_flushes t = with_lock t (fun () -> Obs.Counter.value t.degraded_flushes)

let slowed_fsyncs t = with_lock t (fun () -> Obs.Counter.value t.slowed_fsyncs)
