(** Group-commit coordinator.

    Coalesces concurrent durability requests onto one fsync, Taurus-style:
    a {e round} is [prepare] (under the coordinator's lock: drain pending
    work into buffered writes at its final on-disk position) followed by
    [sync] (outside the lock: the single fsync).  All callers whose work a
    round covers are released when that round completes; callers that
    arrive while a round's fsync is in flight are grouped into the next
    round.  The coordinator's lock doubles as the owner's state lock, via
    {!with_lock} and {!exclusive}. *)

type t

type stats = {
  rounds : int;  (** completed rounds — i.e. fsyncs actually issued *)
  coalesced : int;  (** callers released by a round they did not lead *)
}

val create : ?obs:Obs.Registry.t -> unit -> t
(** [obs] is where the coordinator registers its metrics —
    [flush_rounds_total], [flush_coalesced_total] and the
    [fsync_seconds] histogram (single-writer: only one leader is ever
    inside a sync).  Defaults to a private registry, so coordinators
    that are not wired into a daemon's stats plane keep exact
    per-instance counts. *)

val force :
  t ->
  pending:(unit -> bool) ->
  prepare:(unit -> 'a) ->
  sync:(unit -> unit) ->
  ?commit:('a -> unit) ->
  default:'a ->
  unit ->
  'a
(** Make everything the caller has written so far durable.  [pending]
    (evaluated under the lock) says whether there is undrained work; if so
    the caller leads or joins the next round, whose leader runs [prepare]
    under the lock and [sync] outside it.  With nothing pending, the call
    waits only for a round already in flight (whose [prepare] has, by
    construction, drained the caller's work) and issues no fsync of its
    own.  [commit], if given, runs under the lock once [sync] has returned
    (and is skipped if it raised) — the place to record metadata that must
    never claim more than an fsync actually made durable.  Returns
    [prepare]'s result to the round's leader and [default] to everyone
    else. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** Run [f] under the coordinator's lock (shared-state accesses of the
    owning store). *)

val exclusive : t -> (unit -> 'a) -> 'a
(** Run [f] under the lock with no round in flight — for operations that
    must not race an fsync (truncation, compaction, kill, fault arming). *)

val stats : t -> stats
(** Consistency contract: the underlying cells are bumped by writer
    threads under the coordinator's own lock, and [stats] reads them
    under that same lock — so the pair it returns is a consistent
    point-in-time view even while flush rounds are in flight.  (A raw
    {!Obs.Registry.snapshot} of the backing registry is weaker: each
    counter is read atomically but the pair may straddle a round.) *)
