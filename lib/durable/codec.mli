(** Self-describing binary record codec for the on-disk stores.

    Every durable artifact (log segments, checkpoint snapshots, the
    synchronous area) is a sequence of framed records:

    {v
      +-------+------+-----------+----------+------------------+
      | magic | kind | length LE | crc32 LE | payload          |
      | 1 B   | 1 B  | 4 B       | 4 B      | [length] bytes   |
      +-------+------+-----------+----------+------------------+
    v}

    The CRC32 (IEEE, reflected) covers the kind byte, the length field and
    the payload, so a single-byte mutation anywhere in a record is either
    caught by the checksum, rejected by the magic byte, or turns the frame
    into a truncation — a reader can never accept a wrong record.  Decoding
    stops at the first anomaly; whatever follows is treated as a torn or
    corrupt tail and truncated by open-time recovery. *)

val magic : char

val header_bytes : int
(** Bytes of framing overhead per record (magic + kind + length + crc). *)

val crc32 : ?init:int -> string -> pos:int -> len:int -> int
(** Running CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a
    substring.  [init] defaults to the empty-message state; feed the result
    back in to checksum discontiguous pieces.  The result fits 32 bits. *)

val crc32_string : string -> int

val encode : kind:int -> string -> string
(** Frame one record.  [kind] must fit one byte. *)

val encode_into : Buffer.t -> kind:int -> string -> unit

type decoded =
  | Record of { kind : int; payload : string; next : int }
      (** a valid frame; [next] is the offset just past it *)
  | Truncated  (** the bytes end mid-frame: a torn write *)
  | Corrupt  (** bad magic or checksum mismatch *)
  | End  (** clean end of input *)

val decode : string -> pos:int -> decoded

val seal : string -> string
(** Wrap a blob in a one-record envelope whose CRC32 witnesses the exact
    sealed bytes.  Everything [Marshal]-encoded that touches disk travels
    sealed, so {!unseal} rejects damaged or version-skewed bytes before
    [Marshal.from_string] can crash (or worse, misread) on them. *)

val unseal : string -> (string, string) result
(** Recover the sealed blob; [Error] (with a reason) on any mismatch —
    truncation, checksum failure, trailing bytes.  Never raises. *)

type tail = Clean | Torn | Corrupt_tail

type scan_result = {
  records : (int * string) list;  (** (kind, payload), oldest first *)
  valid_bytes : int;  (** length of the longest valid prefix *)
  tail : tail;
}

val scan : string -> scan_result
(** Decode records from offset 0 until the first anomaly or the end. *)
