let log_kind = 0x4C (* 'L' *)

let default_segment_bytes = 64 * 1024

type seg = {
  start : int; (* absolute logical index of the first record *)
  path : string;
  mutable count : int;
  mutable bytes : int;
  mutable offsets : int list; (* byte offset of each record, newest first *)
}

type t = {
  dir : string;
  segment_bytes : int;
  mutable segs : seg list; (* oldest first; the last one is [cur] *)
  mutable cur : seg;
  mutable fd : Unix.file_descr;
  mutable synced : int; (* durable byte count of [cur] *)
  mutable dirty : bool;
  mutable fail_fsync : bool;
  (* segments rotated away while fsync was failing: (path, durable bytes) *)
  mutable closed_unsynced : (string * int) list;
  mutable alive : bool;
}

type recovered = {
  first : int;
  payloads : string list;
  bytes_dropped : int;
  segments_dropped : int;
  tail : Codec.tail;
}

let seg_path dir start = Filename.concat dir (Printf.sprintf "seg-%012d.dat" start)

let parse_seg name =
  if String.length name = 20 && String.sub name 0 4 = "seg-"
     && Filename.check_suffix name ".dat"
  then int_of_string_opt (String.sub name 4 12)
  else None

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let file_size path = (Unix.stat path).Unix.st_size

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> Unix.ftruncate fd len)

let write_all fd s =
  let len = String.length s in
  let rec loop pos =
    if pos < len then loop (pos + Unix.write_substring fd s pos (len - pos))
  in
  loop 0

let guard t name = if not t.alive then invalid_arg ("Segment_log." ^ name ^ ": log closed")

let offsets_of_records records =
  (* newest first, from a Codec.scan record list (oldest first) *)
  let off = ref 0 in
  List.fold_left
    (fun acc (_, payload) ->
      let here = !off in
      off := here + Codec.header_bytes + String.length payload;
      here :: acc)
    [] records

let create_segment dir start =
  let path = seg_path dir start in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Unix.close fd;
  { start; path; count = 0; bytes = 0; offsets = [] }

let open_ ~dir ?(segment_bytes = default_segment_bytes) () =
  Temp.mkdir_p dir;
  let starts =
    Sys.readdir dir |> Array.to_list
    |> List.filter_map parse_seg
    |> List.sort compare
  in
  let bytes_dropped = ref 0 in
  let segments_dropped = ref 0 in
  let tail = ref Codec.Clean in
  let stop = ref false in
  let kept = ref [] (* newest first *) in
  let payloads = ref [] (* newest first *) in
  List.iter
    (fun start ->
      let path = seg_path dir start in
      if !stop then begin
        bytes_dropped := !bytes_dropped + file_size path;
        incr segments_dropped;
        Unix.unlink path
      end
      else begin
        (match !kept with
        | prev :: _ when prev.start + prev.count <> start ->
          (* The previous segment lost records (a mid-log truncation or
             corruption ate its tail): logical positions would gap, so
             everything from here on is unusable. *)
          if !tail = Codec.Clean then tail := Codec.Corrupt_tail;
          stop := true;
          bytes_dropped := !bytes_dropped + file_size path;
          incr segments_dropped;
          Unix.unlink path
        | _ -> ());
        if not !stop then begin
          let contents = read_file path in
          let scanned = Codec.scan contents in
          let seg =
            {
              start;
              path;
              count = List.length scanned.records;
              bytes = scanned.valid_bytes;
              offsets = offsets_of_records scanned.records;
            }
          in
          List.iter (fun (_, p) -> payloads := p :: !payloads) scanned.records;
          kept := seg :: !kept;
          if scanned.tail <> Codec.Clean then begin
            tail := scanned.tail;
            stop := true;
            bytes_dropped :=
              !bytes_dropped + (String.length contents - scanned.valid_bytes);
            truncate_file path scanned.valid_bytes
          end
        end
      end)
    starts;
  let segs =
    match List.rev !kept with [] -> [ create_segment dir 0 ] | segs -> segs
  in
  let cur = List.nth segs (List.length segs - 1) in
  let fd = Unix.openfile cur.path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
  let t =
    {
      dir;
      segment_bytes;
      segs;
      cur;
      fd;
      synced = cur.bytes;
      dirty = false;
      fail_fsync = false;
      closed_unsynced = [];
      alive = true;
    }
  in
  let recovered =
    {
      first = (List.hd segs).start;
      payloads = List.rev !payloads;
      bytes_dropped = !bytes_dropped;
      segments_dropped = !segments_dropped;
      tail = !tail;
    }
  in
  (t, recovered)

let next_index t = t.cur.start + t.cur.count

let first_index t = (List.hd t.segs).start

let segment_count t = List.length t.segs

let do_sync t =
  if t.dirty then begin
    if not t.fail_fsync then begin
      Unix.fsync t.fd;
      t.synced <- t.cur.bytes
    end;
    t.dirty <- false
  end

let sync t =
  guard t "sync";
  do_sync t

let arm_fsync_failure t =
  guard t "arm_fsync_failure";
  t.fail_fsync <- true

let rotate t =
  do_sync t;
  if t.synced < t.cur.bytes then
    t.closed_unsynced <- (t.cur.path, t.synced) :: t.closed_unsynced;
  Unix.close t.fd;
  let seg = create_segment t.dir (next_index t) in
  t.segs <- t.segs @ [ seg ];
  t.cur <- seg;
  t.fd <- Unix.openfile seg.path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644;
  t.synced <- 0;
  t.dirty <- false

let append t payload =
  guard t "append";
  if t.cur.bytes >= t.segment_bytes && t.cur.count > 0 then rotate t;
  let frame = Codec.encode ~kind:log_kind payload in
  write_all t.fd frame;
  let idx = next_index t in
  t.cur.offsets <- t.cur.bytes :: t.cur.offsets;
  t.cur.count <- t.cur.count + 1;
  t.cur.bytes <- t.cur.bytes + String.length frame;
  t.dirty <- true;
  idx

let rec drop_n n l = if n = 0 then l else drop_n (n - 1) (List.tl l)

let truncate_after t ~keep =
  guard t "truncate_after";
  if keep < first_index t then
    invalid_arg "Segment_log.truncate_after: keep below first retained record";
  if keep < next_index t then begin
    Unix.close t.fd;
    let keep_segs, dropped =
      List.partition (fun s -> s.start < keep) t.segs
    in
    List.iter
      (fun s ->
        t.closed_unsynced <- List.remove_assoc s.path t.closed_unsynced;
        Unix.unlink s.path)
      dropped;
    let cur =
      match List.rev keep_segs with
      | [] -> create_segment t.dir keep
      | s :: _ -> s
    in
    t.segs <- (match keep_segs with [] -> [ cur ] | _ -> keep_segs);
    let durable =
      if cur == t.cur then t.synced
      else
        match List.assoc_opt cur.path t.closed_unsynced with
        | Some b -> b
        | None -> cur.bytes
    in
    t.closed_unsynced <- List.remove_assoc cur.path t.closed_unsynced;
    (if keep < cur.start + cur.count then begin
       let i = keep - cur.start in
       let off = List.nth cur.offsets (cur.count - 1 - i) in
       truncate_file cur.path off;
       cur.offsets <- drop_n (cur.count - i) cur.offsets;
       cur.count <- i;
       cur.bytes <- off
     end);
    t.cur <- cur;
    t.fd <- Unix.openfile cur.path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644;
    t.synced <- min durable cur.bytes;
    t.dirty <- t.cur.bytes > t.synced
  end

let drop_segments_below t ~before =
  guard t "drop_segments_below";
  let keep, dropped =
    List.partition
      (fun s -> s == t.cur || s.start + s.count > before)
      t.segs
  in
  List.iter
    (fun s ->
      t.closed_unsynced <- List.remove_assoc s.path t.closed_unsynced;
      Unix.unlink s.path)
    dropped;
  t.segs <- keep

let kill t =
  if t.alive then begin
    Unix.close t.fd;
    if t.cur.bytes > t.synced then truncate_file t.cur.path t.synced;
    List.iter (fun (path, durable) -> truncate_file path durable) t.closed_unsynced;
    t.alive <- false
  end

let close t =
  if t.alive then begin
    do_sync t;
    Unix.close t.fd;
    t.alive <- false
  end
