(** Filesystem helpers shared by the durable store, the experiment harness
    and the tests: scratch directories for store roots and recursive
    cleanup. *)

val mkdir_p : string -> unit

val fresh_dir : ?base:string -> prefix:string -> unit -> string
(** Create (and return) a new empty directory under [base] (default: the
    system temporary directory) whose name starts with [prefix].  Names are
    disambiguated with the process id and a counter, so concurrent test
    runners do not collide. *)

val rm_rf : string -> unit
(** Recursively delete a file or directory tree; missing paths are fine. *)
