let magic = '\xd7'

let header_bytes = 10 (* magic 1 + kind 1 + length 4 + crc 4 *)

(* CRC32, IEEE 802.3 reflected polynomial, table-driven byte at a time.
   Plain OCaml ints: the value always fits 32 bits, masked on the way out. *)

let table =
  lazy
    (let t = Array.make 256 0 in
     for i = 0 to 255 do
       let c = ref i in
       for _ = 0 to 7 do
         c := if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
       done;
       t.(i) <- !c
     done;
     t)

let mask32 = 0xFFFFFFFF

let crc32 ?(init = 0) s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Codec.crc32";
  let table = Lazy.force table in
  let c = ref (init lxor mask32) in
  for i = pos to pos + len - 1 do
    c :=
      Array.unsafe_get table ((!c lxor Char.code (String.unsafe_get s i)) land 0xFF)
      lxor (!c lsr 8)
  done;
  !c lxor mask32

let crc32_string s = crc32 s ~pos:0 ~len:(String.length s)

(* The checksum covers kind + length + payload, i.e. everything after the
   magic byte, so no single flipped byte can yield a different valid
   record. *)
let frame_crc ~kind ~len payload =
  let head = Bytes.create 5 in
  Bytes.set head 0 (Char.chr kind);
  Bytes.set_int32_le head 1 (Int32.of_int len);
  let c = crc32 (Bytes.unsafe_to_string head) ~pos:0 ~len:5 in
  crc32 ~init:c payload ~pos:0 ~len

let encode_into buf ~kind payload =
  if kind < 0 || kind > 0xFF then invalid_arg "Codec.encode: kind out of range";
  let len = String.length payload in
  let head = Bytes.create header_bytes in
  Bytes.set head 0 magic;
  Bytes.set head 1 (Char.chr kind);
  Bytes.set_int32_le head 2 (Int32.of_int len);
  Bytes.set_int32_le head 6 (Int32.of_int (frame_crc ~kind ~len payload));
  Buffer.add_bytes buf head;
  Buffer.add_string buf payload

let encode ~kind payload =
  let buf = Buffer.create (header_bytes + String.length payload) in
  encode_into buf ~kind payload;
  Buffer.contents buf

type decoded =
  | Record of { kind : int; payload : string; next : int }
  | Truncated
  | Corrupt
  | End

let get_le32 s pos =
  Int32.to_int (String.get_int32_le s pos) land mask32

let decode s ~pos =
  let total = String.length s in
  if pos < 0 || pos > total then invalid_arg "Codec.decode: position out of range";
  if pos = total then End
  else if total - pos < header_bytes then Truncated
  else if s.[pos] <> magic then Corrupt
  else begin
    let kind = Char.code s.[pos + 1] in
    let len = get_le32 s (pos + 2) in
    let crc = get_le32 s (pos + 6) in
    if len > total - pos - header_bytes then
      (* A mutated length field lands here too; indistinguishable from a
         torn write and equally safe: the reader truncates, never invents
         a record. *)
      Truncated
    else
      let c = crc32 s ~pos:(pos + 1) ~len:5 in
      let c = crc32 ~init:c s ~pos:(pos + header_bytes) ~len in
      if c <> crc then Corrupt
      else
        Record
          {
            kind;
            payload = String.sub s (pos + header_bytes) len;
            next = pos + header_bytes + len;
          }
  end

(* A sealed blob is a one-record envelope (fixed kind) whose checksum
   witnesses the exact bytes handed to [seal].  [Marshal] output travels
   inside these, so a damaged or version-skewed blob is rejected by the
   witness before [Marshal.from_string] ever sees it. *)
let k_sealed = 0x53 (* 'S' *)

let seal payload = encode ~kind:k_sealed payload

let unseal s =
  match decode s ~pos:0 with
  | Record { kind; payload; next }
    when kind = k_sealed && next = String.length s ->
    Ok payload
  | Record _ -> Error "sealed blob: wrong kind or trailing bytes"
  | Truncated -> Error "sealed blob: truncated"
  | Corrupt -> Error "sealed blob: checksum mismatch"
  | End -> Error "sealed blob: empty"
  | exception Invalid_argument _ -> Error "sealed blob: bad position"

type tail = Clean | Torn | Corrupt_tail

type scan_result = {
  records : (int * string) list;
  valid_bytes : int;
  tail : tail;
}

let scan s =
  let rec loop pos acc =
    match decode s ~pos with
    | End -> { records = List.rev acc; valid_bytes = pos; tail = Clean }
    | Truncated -> { records = List.rev acc; valid_bytes = pos; tail = Torn }
    | Corrupt -> { records = List.rev acc; valid_bytes = pos; tail = Corrupt_tail }
    | Record { kind; payload; next } -> loop next ((kind, payload) :: acc)
  in
  loop 0 []
