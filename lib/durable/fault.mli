(** Storage fault injection.

    Faults model what real disks do to logging systems.  [Failed_fsync],
    [Disk_full] and [Slow_fsync] are armed on a {e live} store (see
    {!Durable_store.arm_fsync_failure}, {!Durable_store.arm_disk_full},
    {!Durable_store.arm_slow_fsync}); the other three mutate the closed
    files of a killed store, between death and respawn — exactly when a
    real machine would lose or mangle sectors.

    Damage is targeted {e structurally}: the injector scans the victim
    file's {!Codec} frames and aims at a record index (tear the final
    record, cut at a record boundary, flip a bit of record [i]), never at
    a raw byte offset of the whole file.  Record boundaries move when the
    on-disk format evolves, but "record [i]" keeps naming the same logical
    object, so campaigns and their committed expectations survive format
    changes. *)

type t =
  | Torn_final_write  (** shear the final log record mid-write *)
  | Bit_flip  (** flip one bit of a random record in a random store file *)
  | Truncated_segment  (** cut a random log segment at a record boundary *)
  | Failed_fsync
      (** the log's fsync reports success without persisting (lying disk);
          applied before the kill, a no-op afterwards *)
  | Disk_full
      (** ENOSPC brownout on the live store: flushes refuse (and are
          counted) while the window lasts; nothing is dropped *)
  | Slow_fsync
      (** slow-disk brownout on the live store: fsync rounds stretched *)

val all : t list

val to_string : t -> string

val of_string : string -> t option

val pp : Format.formatter -> t -> unit

val apply : dir:string -> rand:(int -> int) -> t -> string
(** Mutate the store files under [dir] after a kill.  [rand n] must return
    a uniform integer in [\[0, n)]; callers pass a stream derived from the
    run's seed so campaigns stay reproducible.  Returns a human-readable
    description of the damage done (or why none was possible, e.g. no
    segment had any bytes yet).  The live-store faults ([Failed_fsync],
    [Disk_full], [Slow_fsync]) are described only — arming happens through
    {!Durable_store} before the kill. *)
