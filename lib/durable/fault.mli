(** Storage fault injection.

    Faults model what real disks do to logging systems.  [Failed_fsync] is
    armed on a {e live} store (see {!Durable_store.arm_fsync_failure}) and
    takes effect at the eventual kill; the other three mutate the closed
    files of a killed store, between death and respawn — exactly when a
    real machine would lose or mangle sectors. *)

type t =
  | Torn_final_write  (** shear trailing bytes off the last log record *)
  | Bit_flip  (** flip one bit in a random store file *)
  | Truncated_segment  (** cut a random log segment to a random length *)
  | Failed_fsync
      (** the log's fsync reports success without persisting (lying disk);
          applied before the kill, a no-op afterwards *)

val all : t list

val to_string : t -> string

val of_string : string -> t option

val pp : Format.formatter -> t -> unit

val apply : dir:string -> rand:(int -> int) -> t -> string
(** Mutate the store files under [dir] after a kill.  [rand n] must return
    a uniform integer in [\[0, n)]; callers pass a stream derived from the
    run's seed so campaigns stay reproducible.  Returns a human-readable
    description of the damage done (or why none was possible, e.g. no
    segment had any bytes yet). *)
