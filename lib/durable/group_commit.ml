(* Group-commit coordinator: concurrent callers that each need "everything
   I wrote so far is durable" coalesce onto one fsync.

   A durability round is prepare (under the coordinator's lock: move the
   pending work into its final, buffered on-disk position) followed by
   sync (outside the lock: the single fsync).  The lock is released during
   sync so new writers can keep appending while the disk works; their data
   lands in the next round.  Rounds are numbered: a caller with pending
   work needs the first round that starts after its call ([started + 1]),
   a caller whose work was already drained by an in-flight prepare only
   needs that round to finish, and a caller with nothing pending and no
   round in flight needs nothing at all. *)

type t = {
  mu : Mutex.t;
  done_ : Condition.t; (* a round completed, or the leader seat freed *)
  mutable started : int; (* rounds that have begun (prepare entered) *)
  mutable completed : int; (* rounds whose sync has returned *)
  mutable flushing : bool; (* a leader is between prepare and completion *)
  rounds : Obs.Counter.t; (* completed rounds, i.e. actual fsyncs *)
  coalesced : Obs.Counter.t; (* callers released by a round they did not lead *)
  fsync_seconds : Obs.Histogram.t; (* wall time of each sync () *)
}

type stats = { rounds : int; coalesced : int }

let create ?obs () =
  let obs = match obs with Some r -> r | None -> Obs.Registry.create () in
  {
    mu = Mutex.create ();
    done_ = Condition.create ();
    started = 0;
    completed = 0;
    flushing = false;
    rounds = Obs.Registry.counter obs "flush_rounds_total";
    coalesced = Obs.Registry.counter obs "flush_coalesced_total";
    fsync_seconds = Obs.Registry.histogram obs "fsync_seconds";
  }

let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Hold the lock with no round in flight: for operations that must not
   race a sync (truncation, compaction, kill, fault arming). *)
let exclusive t f =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      while t.flushing do
        Condition.wait t.done_ t.mu
      done;
      f ())

let force t ~pending ~prepare ~sync ?(commit = fun _ -> ()) ~default () =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      (* Reach [target]: loop leading or waiting until enough rounds have
         completed.  Only one leader runs at a time, and it completes the
         round it started, so rounds finish in order. *)
      let rec attain target acc ~led =
        if t.completed >= target then (acc, led)
        else if not t.flushing then begin
          t.flushing <- true;
          t.started <- t.started + 1;
          let round = t.started in
          let v = prepare () in
          Mutex.unlock t.mu;
          let finish_round ~ok =
            Mutex.lock t.mu;
            t.completed <- round;
            t.flushing <- false;
            Obs.Counter.incr t.rounds;
            Condition.broadcast t.done_;
            (* The post-durability hook runs under the lock, so waiters
               (who also need it) observe its effects, and a later round
               cannot overtake what it records. *)
            if ok then commit v
          in
          (* Only one leader is ever between prepare and completion, so
             the fsync histogram has a single writer. *)
          let sync_began = Unix.gettimeofday () in
          let observe_sync () =
            Obs.Histogram.observe t.fsync_seconds (Unix.gettimeofday () -. sync_began)
          in
          (match sync () with
          | () ->
            observe_sync ();
            finish_round ~ok:true
          | exception e ->
            (* Never leave the seat taken: waiters would hang forever. *)
            observe_sync ();
            finish_round ~ok:false;
            raise e);
          attain target v ~led:true
        end
        else begin
          Condition.wait t.done_ t.mu;
          attain target acc ~led
        end
      in
      if pending () then begin
        let v, led = attain (t.started + 1) default ~led:false in
        if not led then Obs.Counter.incr t.coalesced;
        v
      end
      else if t.flushing then begin
        (* Our work was drained by the in-flight prepare (prepare runs
           under this lock, so if flushing is set it already ran); wait for
           that round's fsync but start none of our own. *)
        Obs.Counter.incr t.coalesced;
        fst (attain t.started default ~led:false)
      end
      else default)

let stats t =
  with_lock t (fun () ->
      { rounds = Obs.Counter.value t.rounds; coalesced = Obs.Counter.value t.coalesced })
