(** File-backed stable storage.

    Implements the same contract as the in-memory [Storage.Stable_store]
    (same operations, same counters, same error strings) on real files:

    - the {b message log} is a {!Segment_log} of Marshal-encoded records,
      made durable in batches by [flush].  A flush has exactly {e one}
      durability point — the log's fsync, the paper's single
      stable-storage operation — and concurrent flushes coalesce through a
      {!Group_commit} coordinator, so N simultaneous callers cost one
      fsync, not N;
    - each {b checkpoint} is its own [ckpt-<seq>.dat] file holding one
      checksummed record: the pair (stable length at save time, snapshot);
      the length lets open-time recovery reject checkpoints that point past
      a log whose tail was lost;
    - the {b synchronous area} is [sync.dat], an append-only record
      stream, fsynced when it carries protocol data (announcements, the
      incarnation counter).  It also carries store metadata: the logical
      log base after compaction and a stable-length witness recorded after
      every flush, so a reopen can {e detect} (not just silently absorb) a
      log tail lost to a lying fsync.  The witness is a {e buffered} write
      (no fsync of its own): written bytes survive a process kill
      regardless, and only power loss can drop them — which also drops the
      log tail they would have accused, so the witness can under-claim but
      never fabricate damage.  Because it does not ride the log's fsync, a
      lying log fsync still leaves a truthful witness behind.

    Every operation is thread-safe: plain reads and appends share the
    coordinator's lock, and operations that rewrite files or close
    descriptors additionally wait out any fsync in flight.

    Open-time recovery scans everything, truncates torn or corrupt tails,
    drops unusable checkpoints and reports what it found in
    {!open_report}. *)

type ('ckpt, 'log, 'ann) t

type open_report = {
  fresh : bool;  (** no pre-existing store in this directory *)
  recovered_log : int;  (** stable log records recovered *)
  log_bytes_dropped : int;  (** torn/corrupt log bytes truncated *)
  log_segments_dropped : int;  (** whole segments discarded after an anomaly *)
  missing_log_records : int;
      (** shortfall of the recovered log against the last durable
          stable-length witness: records the store claimed stable (e.g.
          under a failing fsync) that did not survive *)
  recovered_checkpoints : int;
  checkpoints_dropped : int;  (** corrupt, torn, or pointing past the log *)
  sync_records : int;
  sync_bytes_dropped : int;  (** synchronous-area tail truncated *)
  sync_area_missing : bool;
      (** the synchronous area vanished although other store files exist *)
}

val damaged : open_report -> bool
(** True when anything was dropped, missing or truncated — every such
    condition is reported, never silently absorbed. *)

val pp_open_report : Format.formatter -> open_report -> unit

val open_ :
  dir:string ->
  ?segment_bytes:int ->
  ?obs:Obs.Registry.t ->
  unit ->
  ('ckpt, 'log, 'ann) t * open_report
(** Open the store rooted at [dir], creating it if needed, running
    open-time recovery otherwise.  Serialization uses [Marshal] (with
    closures permitted), so a store must be reopened by the same binary
    that wrote it — true of every use here (restart within a run, or the
    respawn of a killed actor).

    [obs] receives the store's metric families —
    [storage_flushes_total], [storage_sync_writes_total],
    [storage_degraded_flushes_total], [storage_slowed_fsyncs_total] —
    plus the embedded group-commit coordinator's ({!Group_commit.create}).
    Defaults to a private registry.  All cells are bumped under the
    store's lock; the accessors below read under that same lock, so
    their values are exact.  Note that get-or-create semantics mean a
    store reopened into the {e same} registry (a daemon respawning in
    process) continues the counters of its predecessor. *)

val report : ('ckpt, 'log, 'ann) t -> open_report

(** {1 The [Storage.Stable_store] contract} *)

val append_volatile : ('ckpt, 'log, 'ann) t -> 'log -> unit

val flush : ('ckpt, 'log, 'ann) t -> int

val flush_forced : ('ckpt, 'log, 'ann) t -> int
(** Like {!flush}, but an armed disk-full window ({!arm_disk_full}) never
    refuses it: the critical-path flushes of checkpointing and rollback
    model a writer that blocks until space frees.  A refused ordinary
    flush before a checkpoint would otherwise let the checkpoint capture
    state whose covering log prefix is still volatile. *)

val stable_log_length : ('ckpt, 'log, 'ann) t -> int

val volatile_length : ('ckpt, 'log, 'ann) t -> int

val volatile_peek : ('ckpt, 'log, 'ann) t -> 'log option

val stable_log_from : ('ckpt, 'log, 'ann) t -> pos:int -> 'log list

val truncate_stable_log : ('ckpt, 'log, 'ann) t -> keep:int -> 'log list

val discard_log_prefix : ('ckpt, 'log, 'ann) t -> before:int -> int

val log_base : ('ckpt, 'log, 'ann) t -> int

val live_log_records : ('ckpt, 'log, 'ann) t -> int

val save_checkpoint : ('ckpt, 'log, 'ann) t -> 'ckpt -> unit

val latest_checkpoint : ('ckpt, 'log, 'ann) t -> 'ckpt option

val checkpoints : ('ckpt, 'log, 'ann) t -> 'ckpt list

val restore_checkpoint :
  ('ckpt, 'log, 'ann) t -> satisfying:('ckpt -> bool) -> 'ckpt option

val prune_checkpoints : ('ckpt, 'log, 'ann) t -> keep_latest:int -> int

val prune_checkpoints_older_than :
  ('ckpt, 'log, 'ann) t -> anchor:('ckpt -> bool) -> int

val log_announcement : ('ckpt, 'log, 'ann) t -> 'ann -> unit

val announcements : ('ckpt, 'log, 'ann) t -> 'ann list

val compact_sync : ('ckpt, 'log, 'ann) t -> keep:('ann -> bool) -> int
(** Rewrite the synchronous area, keeping only the announcements [keep]
    accepts (store metadata — log base, stable-length witness, incarnation
    — is re-emitted).  Atomic (temp file, fsync, rename).  Returns the
    number of records dropped; a no-op (no rewrite, not counted in
    {!sync_writes}) when nothing is dropped.  What bounds the sync area
    when per-partition checkpoint records supersede each other. *)

val set_incarnation : ('ckpt, 'log, 'ann) t -> int -> unit

val incarnation : ('ckpt, 'log, 'ann) t -> int

val crash : ('ckpt, 'log, 'ann) t -> int
(** In-process crash model: drop the volatile buffer only (disk intact,
    handles still open).  Use {!kill} for a process death. *)

val sync_writes : ('ckpt, 'log, 'ann) t -> int
(** Protocol-level synchronous stable-storage operations: one per
    non-empty flush round, checkpoint, announcement and incarnation write
    — the quantity the paper's cost model charges for, and what E12/B9
    report.  Store-internal metadata writes (length witness, log base) are
    not counted. *)

val flushes : ('ckpt, 'log, 'ann) t -> int
(** Non-empty flush rounds completed.  Each round issues exactly one
    fsync, so under concurrent flushing this is also the fsync count of
    the flush path (strictly less than the number of callers whenever
    coalescing happened). *)

val commit_stats : ('ckpt, 'log, 'ann) t -> Group_commit.stats
(** Group-commit coordinator counters: rounds led and callers coalesced. *)

(** {1 Process death and fault injection} *)

val kill : ('ckpt, 'log, 'ann) t -> unit
(** Process death: every byte not yet fsynced is discarded from the files,
    all descriptors close, and the handle becomes unusable.  Recovery is
    only possible through a fresh {!open_} on the same directory. *)

val arm_fsync_failure : ('ckpt, 'log, 'ann) t -> unit
(** Make the {e log}'s fsync lie (report success, persist nothing) from
    now on; the synchronous area keeps its own descriptor and stays honest,
    which is what lets the stable-length witness expose the loss at the
    next open. *)

val arm_disk_full : ('ckpt, 'log, 'ann) t -> rounds:int -> unit
(** ENOSPC brownout: the next [rounds] non-empty {!flush} attempts refuse
    — nothing is drained or dropped, the volatile queue stays intact, and
    each refusal is counted in {!degraded_flushes}.  Degradation is
    graceful by construction: records the disk refused remain volatile, so
    the K-rule keeps the owning node's sends gated instead of ever
    claiming stability the disk did not provide; the first flush after the
    window drains the backlog in one synchronous round. *)

val arm_slow_fsync : ('ckpt, 'log, 'ann) t -> delay:float -> rounds:int -> unit
(** Slow-disk brownout: the next [rounds] flush rounds stretch their fsync
    by [delay] seconds (counted in {!slowed_fsyncs}).  The group-commit
    coordinator absorbs the slowdown by coalescing more callers per round. *)

val degraded_flushes : ('ckpt, 'log, 'ann) t -> int
(** Flush attempts refused by a disk-full window — the brownout
    degradation report. *)

val slowed_fsyncs : ('ckpt, 'log, 'ann) t -> int

val dir : ('ckpt, 'log, 'ann) t -> string
