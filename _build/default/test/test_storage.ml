(* Simulated stable storage: crash semantics, flush, truncation. *)

module Store = Storage.Stable_store

let make () : (string, string, string) Store.t = Store.create ()

let test_volatile_then_flush () =
  let s = make () in
  Store.append_volatile s "a";
  Store.append_volatile s "b";
  Alcotest.(check int) "volatile" 2 (Store.volatile_length s);
  Alcotest.(check int) "stable" 0 (Store.stable_log_length s);
  Alcotest.(check int) "flush count" 2 (Store.flush s);
  Alcotest.(check int) "volatile empty" 0 (Store.volatile_length s);
  Alcotest.(check int) "stable grows" 2 (Store.stable_log_length s);
  Alcotest.(check (list string)) "order" [ "a"; "b" ] (Store.stable_log_from s ~pos:0)

let test_empty_flush_not_counted () =
  let s = make () in
  Alcotest.(check int) "nothing written" 0 (Store.flush s);
  Alcotest.(check int) "no flush counted" 0 (Store.flushes s);
  Alcotest.(check int) "no sync write" 0 (Store.sync_writes s)

let test_crash_drops_volatile_only () =
  let s = make () in
  Store.append_volatile s "stable1";
  ignore (Store.flush s : int);
  Store.append_volatile s "lost1";
  Store.append_volatile s "lost2";
  Alcotest.(check (option string)) "first loss" (Some "lost1") (Store.volatile_peek s);
  Alcotest.(check int) "two lost" 2 (Store.crash s);
  Alcotest.(check int) "volatile gone" 0 (Store.volatile_length s);
  Alcotest.(check (list string)) "stable survives" [ "stable1" ]
    (Store.stable_log_from s ~pos:0)

let test_stable_log_from () =
  let s = make () in
  List.iter (Store.append_volatile s) [ "a"; "b"; "c"; "d" ];
  ignore (Store.flush s : int);
  Alcotest.(check (list string)) "suffix" [ "c"; "d" ] (Store.stable_log_from s ~pos:2);
  Alcotest.(check (list string)) "whole" [ "a"; "b"; "c"; "d" ]
    (Store.stable_log_from s ~pos:0);
  Alcotest.(check (list string)) "empty suffix" [] (Store.stable_log_from s ~pos:4);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Stable_store.stable_log_from: position out of range") (fun () ->
      ignore (Store.stable_log_from s ~pos:5))

let test_truncate () =
  let s = make () in
  List.iter (Store.append_volatile s) [ "a"; "b"; "c"; "d" ];
  ignore (Store.flush s : int);
  Store.append_volatile s "volatile";
  let removed = Store.truncate_stable_log s ~keep:2 in
  Alcotest.(check (list string)) "removed tail in order" [ "c"; "d" ] removed;
  Alcotest.(check int) "kept" 2 (Store.stable_log_length s);
  Alcotest.(check int) "volatile cleared too" 0 (Store.volatile_length s);
  Alcotest.(check (list string)) "prefix intact" [ "a"; "b" ]
    (Store.stable_log_from s ~pos:0);
  (* the log can grow again past the truncation point *)
  Store.append_volatile s "e";
  ignore (Store.flush s : int);
  Alcotest.(check (list string)) "regrown" [ "a"; "b"; "e" ]
    (Store.stable_log_from s ~pos:0)

let test_checkpoints () =
  let s = make () in
  Store.save_checkpoint s "ck1";
  Store.append_volatile s "m1";
  Store.save_checkpoint s "ck2";
  Alcotest.(check int) "checkpoint flushes" 1 (Store.stable_log_length s);
  Alcotest.(check (option string)) "latest" (Some "ck2") (Store.latest_checkpoint s);
  Alcotest.(check (list string)) "newest first" [ "ck2"; "ck1" ] (Store.checkpoints s)

let test_restore_checkpoint () =
  let s = make () in
  List.iter (Store.save_checkpoint s) [ "ck1"; "ck2"; "ck3" ];
  let found = Store.restore_checkpoint s ~satisfying:(fun c -> c = "ck2") in
  Alcotest.(check (option string)) "found" (Some "ck2") found;
  (* "Discard the checkpoints that follow" (Figure 3). *)
  Alcotest.(check (list string)) "later ones discarded" [ "ck2"; "ck1" ]
    (Store.checkpoints s);
  Alcotest.(check (option string)) "none match" None
    (Store.restore_checkpoint s ~satisfying:(fun c -> c = "ck3"))

let test_announcements () =
  let s = make () in
  Store.log_announcement s "ann1";
  Store.log_announcement s "ann2";
  Alcotest.(check (list string)) "oldest first" [ "ann1"; "ann2" ]
    (Store.announcements s);
  ignore (Store.crash s : int);
  Alcotest.(check (list string)) "survive crash" [ "ann1"; "ann2" ]
    (Store.announcements s)

let test_incarnation_counter () =
  let s = make () in
  Alcotest.(check int) "initial" 0 (Store.incarnation s);
  Store.set_incarnation s 3;
  ignore (Store.crash s : int);
  Alcotest.(check int) "survives crash" 3 (Store.incarnation s)

let test_sync_write_accounting () =
  let s = make () in
  Store.append_volatile s "x";
  ignore (Store.flush s : int);
  Store.save_checkpoint s "ck";
  Store.log_announcement s "ann";
  Store.set_incarnation s 1;
  (* flush(1) + checkpoint(1) + announcement(1) + incarnation(1) *)
  Alcotest.(check int) "sync writes" 4 (Store.sync_writes s);
  Alcotest.(check int) "flushes" 1 (Store.flushes s)

let test_truncate_out_of_range () =
  let s = make () in
  Store.append_volatile s "a";
  ignore (Store.flush s : int);
  Alcotest.check_raises "keep too large"
    (Invalid_argument "Stable_store.truncate_stable_log: keep out of range") (fun () ->
      ignore (Store.truncate_stable_log s ~keep:2))

let suite =
  [
    Alcotest.test_case "volatile then flush" `Quick test_volatile_then_flush;
    Alcotest.test_case "empty flush not counted" `Quick test_empty_flush_not_counted;
    Alcotest.test_case "crash drops volatile only" `Quick test_crash_drops_volatile_only;
    Alcotest.test_case "stable_log_from" `Quick test_stable_log_from;
    Alcotest.test_case "truncate" `Quick test_truncate;
    Alcotest.test_case "checkpoints" `Quick test_checkpoints;
    Alcotest.test_case "restore_checkpoint discards later" `Quick test_restore_checkpoint;
    Alcotest.test_case "announcements synchronous" `Quick test_announcements;
    Alcotest.test_case "incarnation counter" `Quick test_incarnation_counter;
    Alcotest.test_case "sync write accounting" `Quick test_sync_write_accounting;
    Alcotest.test_case "truncate out of range" `Quick test_truncate_out_of_range;
  ]
