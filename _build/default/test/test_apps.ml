(* PWD applications: determinism (the model's core requirement) and
   per-app behaviour. *)

open App_model
module App_intf = App_model.App_intf

(* Run a message sequence through an app twice and compare digests — the
   PWD contract that makes replay-based recovery possible. *)
let replay_equal (app : ('s, 'm) App_intf.t) ~pid ~n msgs =
  let run () =
    List.fold_left
      (fun state (src, m) ->
        let state', _ = app.App_intf.handle ~pid ~n state ~src m in
        state')
      (app.App_intf.init ~pid ~n)
      msgs
  in
  app.App_intf.digest (run ()) = app.App_intf.digest (run ())

let test_counter_behaviour () =
  let app = Counter_app.app in
  let s0 = app.App_intf.init ~pid:1 ~n:4 in
  let s1, eff1 = app.App_intf.handle ~pid:1 ~n:4 s0 ~src:(-1) (Counter_app.Add 5) in
  Alcotest.(check int) "no effects" 0 (List.length eff1);
  let s2, eff2 =
    app.App_intf.handle ~pid:1 ~n:4 s1 ~src:(-1)
      (Counter_app.Forward { dst = 2; amount = 3 })
  in
  (match eff2 with
  | [ App_intf.Send { dst = 2; msg = Counter_app.Add 3; k = None } ] -> ()
  | _ -> Alcotest.fail "forward should send Add to 2");
  let _, eff3 = app.App_intf.handle ~pid:1 ~n:4 s2 ~src:(-1) Counter_app.Report in
  match eff3 with
  | [ App_intf.Output text ] ->
    Alcotest.(check string) "output" "p1 total=8" text
  | _ -> Alcotest.fail "report should output"

let test_counter_digest_changes () =
  let app = Counter_app.app in
  let s0 = app.App_intf.init ~pid:0 ~n:2 in
  let s1, _ = app.App_intf.handle ~pid:0 ~n:2 s0 ~src:(-1) (Counter_app.Add 1) in
  Alcotest.(check bool) "digest differs" false
    (app.App_intf.digest s0 = app.App_intf.digest s1)

let gen_counter_msgs =
  QCheck2.Gen.(
    list_size (int_bound 30)
      (map (fun v -> (-1, Counter_app.Add v)) (int_range (-10) 10)))

let test_counter_deterministic =
  Util.qtest "counter replay determinism" gen_counter_msgs (fun msgs ->
      replay_equal Counter_app.app ~pid:0 ~n:4 msgs)

let test_kvstore_routing () =
  let app = Kvstore_app.app in
  let n = 4 in
  let key = "somekey" in
  let owner = Kvstore_app.owner ~n key in
  let other = (owner + 1) mod n in
  (* A put at a non-owner routes to the owner. *)
  let s0 = app.App_intf.init ~pid:other ~n in
  let _, eff = app.App_intf.handle ~pid:other ~n s0 ~src:(-1) (Kvstore_app.Put { key; value = 1 }) in
  (match eff with
  | [ App_intf.Send { dst; msg = Kvstore_app.Put _; _ } ] ->
    Alcotest.(check int) "routed to owner" owner dst
  | _ -> Alcotest.fail "expected routed put");
  (* A put at the owner applies and replicates to the successor. *)
  let s0 = app.App_intf.init ~pid:owner ~n in
  let s1, eff = app.App_intf.handle ~pid:owner ~n s0 ~src:(-1) (Kvstore_app.Put { key; value = 7 }) in
  (match eff with
  | [ App_intf.Send { dst; msg = Kvstore_app.Replica { version = 1; _ }; _ } ] ->
    Alcotest.(check int) "replica to successor" ((owner + 1) mod n) dst
  | _ -> Alcotest.fail "expected replica");
  let _, eff = app.App_intf.handle ~pid:owner ~n s1 ~src:(-1) (Kvstore_app.Get key) in
  match eff with
  | [ App_intf.Output text ] ->
    Alcotest.(check string) "get answer" (Fmt.str "get %s -> 7 (v1)" key) text
  | _ -> Alcotest.fail "expected output"

let test_kvstore_replica_versions () =
  let app = Kvstore_app.app in
  let s0 = app.App_intf.init ~pid:0 ~n:4 in
  let s1, _ =
    app.App_intf.handle ~pid:0 ~n:4 s0 ~src:1
      (Kvstore_app.Replica { key = "k"; value = 5; version = 3 })
  in
  (* An older replica must not overwrite a newer one. *)
  let s2, _ =
    app.App_intf.handle ~pid:0 ~n:4 s1 ~src:1
      (Kvstore_app.Replica { key = "k"; value = 9; version = 2 })
  in
  let _, eff = app.App_intf.handle ~pid:0 ~n:4 s2 ~src:(-1) (Kvstore_app.Get "k") in
  match eff with
  | [ App_intf.Output text ] -> Alcotest.(check string) "newer kept" "get k -> 5 (v3)" text
  | _ -> Alcotest.fail "expected output"

let test_pipeline_stages () =
  let app = Pipeline_app.app in
  let n = 3 in
  let s0 = app.App_intf.init ~pid:0 ~n in
  let _, eff =
    app.App_intf.handle ~pid:0 ~n s0 ~src:(-1)
      (Pipeline_app.Job { id = 1; stage = 0; payload = 42 })
  in
  (match eff with
  | [ App_intf.Send { dst = 1; msg = Pipeline_app.Job { id = 1; stage = 1; _ }; _ } ] -> ()
  | _ -> Alcotest.fail "middle stage forwards");
  let slast = app.App_intf.init ~pid:2 ~n in
  let _, eff =
    app.App_intf.handle ~pid:2 ~n slast ~src:1
      (Pipeline_app.Job { id = 1; stage = 2; payload = 42 })
  in
  match eff with
  | [ App_intf.Output _ ] -> ()
  | _ -> Alcotest.fail "last stage outputs"

let test_pipeline_transform_deterministic () =
  Alcotest.(check int) "same inputs same transform"
    (Pipeline_app.transform ~pid:2 17)
    (Pipeline_app.transform ~pid:2 17);
  Alcotest.(check bool) "pid matters" false
    (Pipeline_app.transform ~pid:1 17 = Pipeline_app.transform ~pid:2 17)

let test_telecom_route_valid =
  Util.qtest "telecom routes stay in range and avoid self-loops"
    QCheck2.Gen.(triple (int_range 2 16) (int_bound 1000) (int_range 1 6))
    (fun (n, call_id, hops) ->
      let ingress = call_id mod n in
      let route = Telecom_app.route ~n ~ingress ~call_id ~hops in
      List.length route = hops
      && List.for_all (fun sw -> sw >= 0 && sw < n) route
      &&
      let rec no_self prev = function
        | [] -> true
        | x :: rest -> x <> prev && no_self x rest
      in
      no_self ingress route)

let test_telecom_connects () =
  let app = Telecom_app.app in
  let s0 = app.App_intf.init ~pid:2 ~n:4 in
  let s1, eff =
    app.App_intf.handle ~pid:2 ~n:4 s0 ~src:1
      (Telecom_app.Setup { call_id = 9; route = [] })
  in
  (match eff with
  | [ App_intf.Output text ] ->
    Alcotest.(check string) "connected" "call 9 connected at switch 2" text
  | _ -> Alcotest.fail "expected connect output");
  let _, eff =
    app.App_intf.handle ~pid:2 ~n:4 s1 ~src:1
      (Telecom_app.Setup { call_id = 10; route = [ 3; 1 ] })
  in
  match eff with
  | [ App_intf.Send { dst = 3; msg = Telecom_app.Setup { call_id = 10; route = [ 1 ] }; _ } ]
    -> ()
  | _ -> Alcotest.fail "expected forward to next switch"

let test_telecom_teardown () =
  let app = Telecom_app.app in
  let s0 = app.App_intf.init ~pid:0 ~n:4 in
  let s1, _ =
    app.App_intf.handle ~pid:0 ~n:4 s0 ~src:1 (Telecom_app.Setup { call_id = 1; route = [] })
  in
  let s2, eff = app.App_intf.handle ~pid:0 ~n:4 s1 ~src:1 (Telecom_app.Teardown { call_id = 1 }) in
  Alcotest.(check int) "no effects" 0 (List.length eff);
  Alcotest.(check bool) "state changed" false
    (app.App_intf.digest s1 = app.App_intf.digest s2)

let test_chatter_branching_bounded () =
  let app = Chatter_app.app in
  let state = ref (app.App_intf.init ~pid:0 ~n:8) in
  for i = 1 to 200 do
    let s', eff =
      app.App_intf.handle ~pid:0 ~n:8 !state ~src:(-1)
        (Chatter_app.Token { hops_left = 5; salt = i })
    in
    state := s';
    if List.length eff > 2 then Alcotest.fail "fan-out exceeds 2";
    List.iter
      (function
        | App_intf.Send { dst; _ } ->
          if dst = 0 || dst < 0 || dst >= 8 then Alcotest.failf "bad destination %d" dst
        | App_intf.Output _ -> Alcotest.fail "no output while hops remain")
      eff
  done

let test_chatter_retires () =
  let app = Chatter_app.app in
  let s0 = app.App_intf.init ~pid:3 ~n:8 in
  let _, eff =
    app.App_intf.handle ~pid:3 ~n:8 s0 ~src:(-1) (Chatter_app.Token { hops_left = 0; salt = 1 })
  in
  match eff with
  | [ App_intf.Output _ ] -> ()
  | _ -> Alcotest.fail "exhausted token must retire with an output"

let test_script_app () =
  let plan =
    Script_app.make_plan
      [ (0, "hello", [ App_intf.send 1 "world"; App_intf.output "done" ]) ]
  in
  let app = Script_app.app plan in
  let s0 = app.App_intf.init ~pid:0 ~n:2 in
  let _, eff = app.App_intf.handle ~pid:0 ~n:2 s0 ~src:(-1) "hello" in
  Alcotest.(check int) "two effects" 2 (List.length eff);
  let _, eff = app.App_intf.handle ~pid:0 ~n:2 s0 ~src:(-1) "unplanned" in
  Alcotest.(check int) "inert label" 0 (List.length eff)

let test_script_plan_duplicate () =
  Alcotest.check_raises "duplicate binding"
    (Invalid_argument "Script_app.make_plan: duplicate entry for (0, x)") (fun () ->
      ignore (Script_app.make_plan [ (0, "x", []); (0, "x", []) ]))

let test_hashing_stable () =
  Alcotest.(check int) "string hash stable" (Hashing.string "abc") (Hashing.string "abc");
  Alcotest.(check bool) "different strings differ" false
    (Hashing.string "abc" = Hashing.string "abd");
  Alcotest.(check bool) "mix order matters" false
    (Hashing.mix (Hashing.int 1) 2 = Hashing.mix (Hashing.int 2) 1)

let test_hashing_in_range =
  Util.qtest "in_range bounds" QCheck2.Gen.(pair int (int_range 1 100)) (fun (h, b) ->
      let v = Hashing.in_range h ~bound:b in
      v >= 0 && v < b)

let gen_telecom_msgs =
  QCheck2.Gen.(
    list_size (int_bound 25)
      (map2
         (fun id hops -> (-1, Telecom_app.Setup { call_id = id; route = Telecom_app.route ~n:5 ~ingress:(id mod 5) ~call_id:id ~hops }))
         (int_bound 100) (int_range 1 4)))

let test_telecom_deterministic =
  Util.qtest "telecom replay determinism" gen_telecom_msgs (fun msgs ->
      replay_equal Telecom_app.app ~pid:2 ~n:5 msgs)

let gen_chatter_msgs =
  QCheck2.Gen.(
    list_size (int_bound 25)
      (map2 (fun salt hops -> (-1, Chatter_app.Token { hops_left = hops; salt }))
         (int_bound 1000) (int_bound 6)))

let test_chatter_deterministic =
  Util.qtest "chatter replay determinism" gen_chatter_msgs (fun msgs ->
      replay_equal Chatter_app.app ~pid:1 ~n:6 msgs)

let suite =
  [
    Alcotest.test_case "counter behaviour" `Quick test_counter_behaviour;
    Alcotest.test_case "counter digest sensitivity" `Quick test_counter_digest_changes;
    Alcotest.test_case "kvstore routing" `Quick test_kvstore_routing;
    Alcotest.test_case "kvstore replica versions" `Quick test_kvstore_replica_versions;
    Alcotest.test_case "pipeline stages" `Quick test_pipeline_stages;
    Alcotest.test_case "pipeline transform" `Quick test_pipeline_transform_deterministic;
    Alcotest.test_case "telecom connect/forward" `Quick test_telecom_connects;
    Alcotest.test_case "telecom teardown" `Quick test_telecom_teardown;
    Alcotest.test_case "chatter branching bounded" `Quick test_chatter_branching_bounded;
    Alcotest.test_case "chatter retires tokens" `Quick test_chatter_retires;
    Alcotest.test_case "script app" `Quick test_script_app;
    Alcotest.test_case "script plan duplicates" `Quick test_script_plan_duplicate;
    Alcotest.test_case "hashing stable" `Quick test_hashing_stable;
    test_counter_deterministic;
    test_telecom_route_valid;
    test_telecom_deterministic;
    test_chatter_deterministic;
    test_hashing_in_range;
  ]
