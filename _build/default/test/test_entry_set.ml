(* Per-incarnation maximum tables (iet rows and logging-progress rows),
   checked against a naive list-of-entries model. *)

open Depend
open Util

module Model = struct
  (* Reference implementation of Figure 3's Insert: one entry per
     incarnation, maximum index wins; answer queries by scanning. *)
  let insert model (entry : Depend.Entry.t) =
    let same, rest =
      List.partition (fun (x : Depend.Entry.t) -> x.inc = entry.inc) model
    in
    let sii =
      List.fold_left (fun acc (x : Depend.Entry.t) -> Stdlib.max acc x.sii)
        entry.sii same
    in
    { entry with sii } :: rest

  let covers model (q : Entry.t) =
    List.exists (fun (x : Entry.t) -> x.inc = q.inc && q.sii <= x.sii) model

  let orphans model (q : Entry.t) =
    List.exists (fun (x : Entry.t) -> x.inc >= q.inc && x.sii < q.sii) model
end

let build entries = List.fold_left Entry_set.insert Entry_set.empty entries

let test_empty () =
  Alcotest.(check bool) "empty" true (Entry_set.is_empty Entry_set.empty);
  Alcotest.(check bool) "covers nothing" false
    (Entry_set.covers Entry_set.empty (e ~inc:0 ~sii:1));
  Alcotest.(check bool) "orphans nothing" false
    (Entry_set.orphans Entry_set.empty (e ~inc:0 ~sii:1));
  Alcotest.(check (option int)) "max_inc" None (Entry_set.max_inc Entry_set.empty)

let test_insert_keeps_max () =
  (* Figure 3's Insert: one entry per incarnation, maximum index wins. *)
  let s = build [ e ~inc:1 ~sii:4; e ~inc:1 ~sii:9; e ~inc:1 ~sii:6 ] in
  Alcotest.(check int) "one entry" 1 (Entry_set.cardinal s);
  Alcotest.(check (option int)) "max kept" (Some 9) (Entry_set.find s ~inc:1)

let test_covers_cases () =
  let s = build [ e ~inc:0 ~sii:5; e ~inc:2 ~sii:3 ] in
  Alcotest.(check bool) "below frontier" true (Entry_set.covers s (e ~inc:0 ~sii:4));
  Alcotest.(check bool) "at frontier" true (Entry_set.covers s (e ~inc:0 ~sii:5));
  Alcotest.(check bool) "beyond frontier" false (Entry_set.covers s (e ~inc:0 ~sii:6));
  Alcotest.(check bool) "unknown incarnation" false
    (Entry_set.covers s (e ~inc:1 ~sii:1))

let test_orphans_cases () =
  (* iet entry (t, x0): dependency (s, y) is revoked iff s <= t and y > x0. *)
  let iet = build [ e ~inc:1 ~sii:4 ] in
  Alcotest.(check bool) "same inc, higher index" true
    (Entry_set.orphans iet (e ~inc:1 ~sii:5));
  Alcotest.(check bool) "same inc, at ending" false
    (Entry_set.orphans iet (e ~inc:1 ~sii:4));
  Alcotest.(check bool) "older inc, higher index" true
    (Entry_set.orphans iet (e ~inc:0 ~sii:5));
  Alcotest.(check bool) "newer incarnation survives" false
    (Entry_set.orphans iet (e ~inc:2 ~sii:9))

let test_covers_vs_model =
  qtest "covers agrees with naive model" QCheck2.Gen.(pair gen_entry_list gen_entry)
    (fun (entries, q) ->
      let s = build entries in
      let model = List.fold_left Model.insert [] entries in
      Entry_set.covers s q = Model.covers model q)

let test_orphans_vs_model =
  qtest "orphans agrees with naive model" QCheck2.Gen.(pair gen_entry_list gen_entry)
    (fun (entries, q) ->
      let s = build entries in
      let model = List.fold_left Model.insert [] entries in
      Entry_set.orphans s q = Model.orphans model q)

let test_merge =
  qtest "merge = insert all" QCheck2.Gen.(pair gen_entry_list gen_entry_list)
    (fun (xs, ys) ->
      Entry_set.equal
        (Entry_set.merge (build xs) (build ys))
        (build (xs @ ys)))

let test_entries_sorted =
  qtest "entries are in increasing incarnation order" gen_entry_list (fun xs ->
      let entries = Entry_set.entries (build xs) in
      let incs = List.map (fun (x : Entry.t) -> x.inc) entries in
      List.sort Int.compare incs = incs
      && List.length (List.sort_uniq Int.compare incs) = List.length incs)

let test_of_entries_roundtrip =
  qtest "of_entries/entries roundtrip" gen_entry_list (fun xs ->
      let s = build xs in
      Entry_set.equal s (Entry_set.of_entries (Entry_set.entries s)))

let test_max_inc () =
  let s = build [ e ~inc:2 ~sii:1; e ~inc:0 ~sii:9 ] in
  Alcotest.(check (option int)) "max incarnation" (Some 2) (Entry_set.max_inc s)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "insert keeps per-incarnation max" `Quick test_insert_keeps_max;
    Alcotest.test_case "covers cases" `Quick test_covers_cases;
    Alcotest.test_case "orphans cases" `Quick test_orphans_cases;
    Alcotest.test_case "max_inc" `Quick test_max_inc;
    test_covers_vs_model;
    test_orphans_vs_model;
    test_merge;
    test_entries_sorted;
    test_of_entries_roundtrip;
  ]
