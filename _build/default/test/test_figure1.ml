(* The paper's Figure 1 worked example, both flavours. *)

let test_improved () =
  let outcome = Harness.Figure1.run Harness.Figure1.Improved in
  List.iter (fun f -> Alcotest.fail f) outcome.Harness.Figure1.failures

let test_strom_yemini () =
  let outcome = Harness.Figure1.run Harness.Figure1.Strom_yemini in
  List.iter (fun f -> Alcotest.fail f) outcome.Harness.Figure1.failures

let test_delivery_race_quantified () =
  (* The concrete numbers behind the Corollary 1 claim: under S&Y, m6 and m7
     wait for r1; under the improved protocol they do not. *)
  let imp = Harness.Figure1.run Harness.Figure1.Improved in
  let sy = Harness.Figure1.run Harness.Figure1.Strom_yemini in
  let get = function Some v -> v | None -> Alcotest.fail "missing event" in
  Alcotest.(check bool) "improved: m6 before r1" true
    (get imp.m6_delivered_at < get imp.r1_at_p4);
  Alcotest.(check bool) "improved: m7 before r1" true
    (get imp.m7_delivered_at < get imp.r1_at_p5);
  Alcotest.(check bool) "S&Y: m6 after r1" true
    (get sy.m6_delivered_at >= get sy.r1_at_p4);
  Alcotest.(check bool) "S&Y: m7 after r1" true
    (get sy.m7_delivered_at >= get sy.r1_at_p5)

let test_oracle_clean_both () =
  List.iter
    (fun flavour ->
      let outcome = Harness.Figure1.run flavour in
      Alcotest.(check bool) "oracle clean" true (Harness.Oracle.ok outcome.oracle))
    [ Harness.Figure1.Improved; Harness.Figure1.Strom_yemini ]

let suite =
  [
    Alcotest.test_case "improved protocol reproduces prose" `Quick test_improved;
    Alcotest.test_case "Strom-Yemini reproduces prose" `Quick test_strom_yemini;
    Alcotest.test_case "delivery race quantified" `Quick test_delivery_race_quantified;
    Alcotest.test_case "oracle clean in both flavours" `Quick test_oracle_clean_both;
  ]
