(* Protocol-node unit tests: every routine of Figures 2 and 3, driven by
   hand-crafted packets through the test Driver, plus regression tests for
   the three completeness holes found during development (receive-buffer
   duplicate suppression, requeued-record persistence, checkpointed pending
   sends). *)

open Depend
open Util
module Node = Recovery.Node
module Wire = Recovery.Wire
module Config = Recovery.Config
module App_intf = App_model.App_intf
module D = Util.Driver

let counter = App_model.Counter_app.app

let config ?(k = 4) ?(n = 4) ?(timing = quiet_timing) () =
  Config.k_optimistic ~timing ~n ~k ()

let vec_entries node = Dep_vector.non_null (Node.dep_vector node)

(* ------------------------------------------------------------------ *)
(* Initialize (Corollary 3)                                            *)

let test_initial_state () =
  let d = D.make (config ()) counter in
  Alcotest.check entry "current is (0,1)" (e ~inc:0 ~sii:1) (Node.current d.node);
  Alcotest.(check int) "vector all NULL" 0
    (Dep_vector.non_null_count (Node.dep_vector d.node));
  Alcotest.(check bool) "initial interval stable" true
    (Entry_set.covers (Node.log_row d.node 0) (e ~inc:0 ~sii:1));
  Alcotest.(check bool) "iet empty" true (Entry_set.is_empty (Node.iet_row d.node 1));
  Alcotest.check entry "frontier" (e ~inc:0 ~sii:1) (Node.stable_frontier d.node)

(* ------------------------------------------------------------------ *)
(* Deliver_message                                                     *)

let test_inject_starts_interval () =
  let d = D.make (config ()) counter in
  D.inject d ~seq:1 (App_model.Counter_app.Add 5);
  Alcotest.check entry "interval advanced" (e ~inc:0 ~sii:2) (Node.current d.node);
  Alcotest.(check (list (pair int entry))) "own entry tracked"
    [ (0, e ~inc:0 ~sii:2) ] (vec_entries d.node);
  Alcotest.(check int) "deliveries counted" 1 (Node.metrics d.node).deliveries

let test_delivery_merges_piggyback () =
  let d = D.make (config ()) counter in
  let m =
    D.app_msg ~src:1 ~dst:0 ~send_interval:(e ~inc:0 ~sii:7)
      ~dep:[ (1, e ~inc:0 ~sii:7); (2, e ~inc:1 ~sii:3) ]
      (App_model.Counter_app.Add 1)
  in
  D.packet d (Wire.App m);
  Alcotest.(check (list (pair int entry)))
    "piggyback merged plus own entry"
    [ (0, e ~inc:0 ~sii:2); (1, e ~inc:0 ~sii:7); (2, e ~inc:1 ~sii:3) ]
    (vec_entries d.node)

let test_delivery_takes_lex_max () =
  let d = D.make (config ()) counter in
  let m1 =
    D.app_msg ~src:1 ~dst:0 ~send_interval:(e ~inc:0 ~sii:9)
      ~dep:[ (1, e ~inc:0 ~sii:9) ] (App_model.Counter_app.Add 1)
  in
  let m2 =
    D.app_msg ~src:1 ~dst:0 ~send_interval:(e ~inc:0 ~sii:4) ~idx:1
      ~dep:[ (1, e ~inc:0 ~sii:4) ] (App_model.Counter_app.Add 1)
  in
  D.packet d (Wire.App m1);
  D.packet d (Wire.App m2);
  Alcotest.(check (option entry)) "max kept" (Some (e ~inc:0 ~sii:9))
    (Dep_vector.get (Node.dep_vector d.node) 1)

(* ------------------------------------------------------------------ *)
(* Send_message / Check_send_buffer / K                                *)

let test_send_released_when_under_k () =
  let d = D.make (config ~k:4 ()) counter in
  D.inject d ~seq:1 (App_model.Counter_app.Forward { dst = 2; amount = 1 });
  match D.released d with
  | [ m ] ->
    Alcotest.(check int) "to P2" 2 m.Wire.dst;
    Alcotest.(check (list (pair int entry))) "carries own non-stable interval"
      [ (0, e ~inc:0 ~sii:2) ] m.Wire.dep
  | ms -> Alcotest.failf "expected one release, got %d" (List.length ms)

let test_send_blocked_at_k0_until_flush () =
  let d = D.make (config ~k:0 ()) counter in
  D.inject d ~seq:1 (App_model.Counter_app.Forward { dst = 2; amount = 1 });
  Alcotest.(check (list reject)) "held" [] (List.map (fun _ -> ()) (D.released d));
  Alcotest.(check int) "buffered" 1 (Node.send_buffer_size d.node);
  D.flush d;
  (match D.released d with
  | [ m ] -> Alcotest.(check int) "0 risky entries" 0 (List.length m.Wire.dep)
  | _ -> Alcotest.fail "flush should release the send");
  Alcotest.(check int) "buffer empty" 0 (Node.send_buffer_size d.node)

let test_send_blocked_by_remote_dependency () =
  let d = D.make (config ~k:1 ()) counter in
  (* Acquire two non-stable dependencies: P1's interval and our own. *)
  let m =
    D.app_msg ~src:1 ~dst:0 ~send_interval:(e ~inc:0 ~sii:5)
      ~dep:[ (1, e ~inc:0 ~sii:5) ]
      (App_model.Counter_app.Forward { dst = 2; amount = 1 })
  in
  D.packet d (Wire.App m);
  Alcotest.(check int) "blocked: two entries > K=1" 1 (Node.send_buffer_size d.node);
  (* Stability news about P1 elides its entry; one entry (ours) remains. *)
  D.packet d (D.notice_packet ~from_:1 ~rows:[ (1, [ e ~inc:0 ~sii:5 ]) ]);
  Alcotest.(check int) "released" 0 (Node.send_buffer_size d.node);
  match D.released d with
  | [ m ] ->
    Alcotest.(check (list (pair int entry))) "only own entry left"
      [ (0, e ~inc:0 ~sii:2) ] m.Wire.dep
  | _ -> Alcotest.fail "expected release after notice"

let test_per_message_k_override () =
  let plan =
    App_model.Script_app.make_plan
      [ (0, "go", [ App_intf.send ~k:0 2 "risky"; App_intf.send 3 "normal" ]) ]
  in
  let d = D.make (config ~k:4 ()) (App_model.Script_app.app plan) in
  D.inject d ~seq:1 "go";
  (* The k:0 message must wait for stability; the default-k one leaves. *)
  let released = D.released d in
  Alcotest.(check int) "one released" 1 (List.length released);
  Alcotest.(check int) "one blocked" 1 (Node.send_buffer_size d.node);
  Alcotest.(check int) "released one goes to P3" 3 (List.hd released).Wire.dst;
  D.clear d;
  D.flush d;
  match D.released d with
  | [ m ] -> Alcotest.(check int) "0-optimistic follows flush" 2 m.Wire.dst
  | _ -> Alcotest.fail "expected the k=0 message after flush"

let test_pessimistic_sync_logging () =
  let d = D.make (Config.pessimistic ~timing:quiet_timing ~n:4 ()) counter in
  let sync0 = Node.sync_writes d.node in
  D.inject d ~seq:1 (App_model.Counter_app.Forward { dst = 1; amount = 2 });
  (* Logged synchronously on delivery, so the send leaves at once with an
     empty vector: no failure can ever revoke it. *)
  (match D.released d with
  | [ m ] -> Alcotest.(check int) "no risky entries" 0 (List.length m.Wire.dep)
  | _ -> Alcotest.fail "pessimistic send must not block");
  Alcotest.(check bool) "synchronous write happened" true
    (Node.sync_writes d.node > sync0)

(* ------------------------------------------------------------------ *)
(* Check_deliverability (Corollary 1)                                  *)

let incoming_from ?(idx = 0) ~src ~inc ~sii dep payload =
  D.app_msg ~idx ~src ~dst:0 ~send_interval:(e ~inc ~sii) ~dep payload

let test_deliverable_no_local_entry () =
  (* The Figure 1 m7/P5 case: no local entry for the sender at all. *)
  let d = D.make (config ()) counter in
  D.packet d
    (Wire.App (incoming_from ~src:1 ~inc:3 ~sii:9 [ (1, e ~inc:3 ~sii:9) ]
                 (App_model.Counter_app.Add 1)));
  Alcotest.(check int) "delivered without any announcement" 1
    (Node.metrics d.node).deliveries

let test_deliverable_same_incarnation () =
  let d = D.make (config ()) counter in
  D.packet d
    (Wire.App (incoming_from ~src:1 ~inc:0 ~sii:5 [ (1, e ~inc:0 ~sii:5) ]
                 (App_model.Counter_app.Add 1)));
  D.packet d
    (Wire.App (incoming_from ~src:1 ~inc:0 ~sii:9 ~idx:1 [ (1, e ~inc:0 ~sii:9) ]
                 (App_model.Counter_app.Add 1)));
  Alcotest.(check int) "both delivered" 2 (Node.metrics d.node).deliveries

let test_delivery_waits_for_smaller_stability () =
  (* Section 3's improvement: dependency on (t-4, x) is overwritten by
     (t, x+10) as soon as the smaller interval is known stable — no need to
     wait for intervening announcements. *)
  let d = D.make (config ()) counter in
  D.packet d
    (Wire.App (incoming_from ~src:1 ~inc:0 ~sii:5 [ (1, e ~inc:0 ~sii:5) ]
                 (App_model.Counter_app.Add 1)));
  D.packet d
    (Wire.App (incoming_from ~src:1 ~inc:2 ~sii:9 ~idx:1 [ (1, e ~inc:2 ~sii:9) ]
                 (App_model.Counter_app.Add 1)));
  Alcotest.(check int) "second waits" 1 (Node.metrics d.node).deliveries;
  Alcotest.(check int) "buffered" 1 (Node.receive_buffer_size d.node);
  (* A logging-progress notification makes (0,5) stable: delivery proceeds
     and the entry is overwritten by the lexicographic max. *)
  D.packet d (D.notice_packet ~from_:1 ~rows:[ (1, [ e ~inc:0 ~sii:6 ]) ]);
  Alcotest.(check int) "unblocked" 2 (Node.metrics d.node).deliveries;
  Alcotest.(check (option entry)) "overwritten to the larger incarnation"
    (Some (e ~inc:2 ~sii:9))
    (Dep_vector.get (Node.dep_vector d.node) 1)

let test_delivery_unblocked_by_announcement () =
  (* Corollary 1: the rollback announcement itself says the ending interval
     is stable. *)
  let d = D.make (config ()) counter in
  D.packet d
    (Wire.App (incoming_from ~src:1 ~inc:0 ~sii:4 [ (1, e ~inc:0 ~sii:4) ]
                 (App_model.Counter_app.Add 1)));
  D.packet d
    (Wire.App (incoming_from ~src:1 ~inc:1 ~sii:8 ~idx:1 [ (1, e ~inc:1 ~sii:8) ]
                 (App_model.Counter_app.Add 1)));
  Alcotest.(check int) "conflicting incarnation waits" 1 (Node.metrics d.node).deliveries;
  D.packet d (Wire.Ann (D.ann ~from_:1 ~ending:(e ~inc:0 ~sii:4) ()));
  Alcotest.(check int) "announcement doubles as stability news" 2
    (Node.metrics d.node).deliveries

let test_wait_announcement_rule () =
  let d = D.make (Config.strom_yemini ~timing:quiet_timing ~n:4 ()) counter in
  D.packet d
    (Wire.App (incoming_from ~src:1 ~inc:1 ~sii:8 [ (1, e ~inc:1 ~sii:8) ]
                 (App_model.Counter_app.Add 1)));
  Alcotest.(check int) "incarnation 1 needs the announcement for 0" 0
    (Node.metrics d.node).deliveries;
  D.packet d (Wire.Ann { Wire.from_ = 1; ending = e ~inc:0 ~sii:4; failure = false });
  Alcotest.(check int) "announcement admits it" 1 (Node.metrics d.node).deliveries

let test_wait_announcement_own_incarnation () =
  (* Regression: a process never receives its own broadcast, yet must accept
     dependencies on its own later incarnations. *)
  let d = D.make (Config.strom_yemini ~timing:quiet_timing ~n:4 ()) counter in
  D.inject d ~seq:1 (App_model.Counter_app.Add 1);
  D.crash d;
  D.restart d;
  Alcotest.(check int) "in incarnation 1" 1 (Node.current d.node).Entry.inc;
  D.clear d;
  D.packet d
    (Wire.App
       (incoming_from ~src:2 ~inc:0 ~sii:3
          [ (2, e ~inc:0 ~sii:3); (0, e ~inc:1 ~sii:(Node.current d.node).Entry.sii) ]
          (App_model.Counter_app.Add 1)));
  (* one live delivery before the crash, plus this one *)
  Alcotest.(check int) "dep on own incarnation delivered" 2
    (Node.metrics d.node).deliveries;
  Alcotest.(check int) "nothing left buffered" 0 (Node.receive_buffer_size d.node)

(* ------------------------------------------------------------------ *)
(* Check_orphan                                                        *)

let test_orphan_discarded_on_arrival () =
  let d = D.make (config ()) counter in
  D.packet d (Wire.Ann (D.ann ~from_:1 ~ending:(e ~inc:0 ~sii:4) ()));
  D.packet d
    (Wire.App (incoming_from ~src:2 ~inc:0 ~sii:3
                 [ (2, e ~inc:0 ~sii:3); (1, e ~inc:0 ~sii:5) ]
                 (App_model.Counter_app.Add 1)));
  Alcotest.(check int) "discarded" 1 (Node.metrics d.node).orphans_discarded;
  Alcotest.(check int) "not delivered" 0 (Node.metrics d.node).deliveries

let test_orphan_discarded_from_receive_buffer () =
  let d = D.make (config ()) counter in
  (* Undeliverable (incarnation conflict) and also orphan-to-be. *)
  D.packet d
    (Wire.App (incoming_from ~src:1 ~inc:0 ~sii:5 [ (1, e ~inc:0 ~sii:5) ]
                 (App_model.Counter_app.Add 1)));
  D.packet d
    (Wire.App (incoming_from ~src:1 ~inc:2 ~sii:9 ~idx:1
                 [ (1, e ~inc:2 ~sii:9); (2, e ~inc:0 ~sii:8) ]
                 (App_model.Counter_app.Add 1)));
  Alcotest.(check int) "one buffered" 1 (Node.receive_buffer_size d.node);
  D.packet d (Wire.Ann (D.ann ~from_:2 ~ending:(e ~inc:0 ~sii:7) ()));
  Alcotest.(check int) "buffered orphan purged" 0 (Node.receive_buffer_size d.node);
  Alcotest.(check int) "counted" 1 (Node.metrics d.node).orphans_discarded

let test_receive_buffer_duplicate_suppressed () =
  (* Regression: a retransmitted copy racing the buffered original must not
     lead to a double delivery. *)
  let d = D.make (config ()) counter in
  D.packet d
    (Wire.App (incoming_from ~src:1 ~inc:0 ~sii:5 [ (1, e ~inc:0 ~sii:5) ]
                 (App_model.Counter_app.Add 1)));
  let blocked =
    incoming_from ~src:1 ~inc:2 ~sii:9 ~idx:1 [ (1, e ~inc:2 ~sii:9) ]
      (App_model.Counter_app.Add 7)
  in
  D.packet d (Wire.App blocked);
  D.packet d (Wire.App blocked);
  Alcotest.(check int) "single buffered copy" 1 (Node.receive_buffer_size d.node);
  Alcotest.(check int) "duplicate counted" 1 (Node.metrics d.node).duplicates_dropped;
  D.packet d (D.notice_packet ~from_:1 ~rows:[ (1, [ e ~inc:0 ~sii:5 ]) ]);
  Alcotest.(check int) "delivered exactly twice in total" 2
    (Node.metrics d.node).deliveries

let test_duplicate_of_delivered_dropped () =
  let d = D.make (config ()) counter in
  let m =
    incoming_from ~src:1 ~inc:0 ~sii:5 [ (1, e ~inc:0 ~sii:5) ]
      (App_model.Counter_app.Add 3)
  in
  D.packet d (Wire.App m);
  D.packet d (Wire.App m);
  Alcotest.(check int) "one delivery" 1 (Node.metrics d.node).deliveries;
  Alcotest.(check int) "duplicate dropped" 1 (Node.metrics d.node).duplicates_dropped

(* ------------------------------------------------------------------ *)
(* Receive_failure_ann / Rollback                                      *)

let test_announcement_no_rollback_when_clean () =
  let d = D.make (config ()) counter in
  D.packet d
    (Wire.App (incoming_from ~src:1 ~inc:0 ~sii:4 [ (1, e ~inc:0 ~sii:4) ]
                 (App_model.Counter_app.Add 1)));
  D.packet d (Wire.Ann (D.ann ~from_:1 ~ending:(e ~inc:0 ~sii:4) ()));
  Alcotest.(check int) "no rollback" 0 (Node.metrics d.node).induced_rollbacks;
  (* Corollary 1 applied: (0,4) is now known stable, so the entry is elided
     (Theorem 2). *)
  Alcotest.(check (option entry)) "entry elided" None
    (Dep_vector.get (Node.dep_vector d.node) 1);
  Alcotest.(check bool) "iet recorded" true
    (Entry_set.orphans (Node.iet_row d.node 1) (e ~inc:0 ~sii:5))

let test_announcement_triggers_rollback () =
  let d = D.make (config ()) counter in
  let digest_before = counter.App_intf.digest (Node.app_state d.node) in
  D.packet d
    (Wire.App (incoming_from ~src:1 ~inc:0 ~sii:5 [ (1, e ~inc:0 ~sii:5) ]
                 (App_model.Counter_app.Add 100)));
  D.packet d (Wire.Ann (D.ann ~from_:1 ~ending:(e ~inc:0 ~sii:4) ()));
  Alcotest.(check int) "rollback happened" 1 (Node.metrics d.node).induced_rollbacks;
  Alcotest.(check int) "orphan delivery undone" 1 (Node.metrics d.node).undone_intervals;
  Alcotest.check entry "new incarnation, next index" (e ~inc:1 ~sii:2)
    (Node.current d.node);
  Alcotest.(check int) "state reverted" digest_before
    (counter.App_intf.digest (Node.app_state d.node));
  (* Theorem 1: the induced rollback is not announced. *)
  Alcotest.(check int) "no announcement" 0 (List.length (D.announcements d))

let test_strom_yemini_announces_induced_rollback () =
  let d = D.make (Config.strom_yemini ~timing:quiet_timing ~n:4 ()) counter in
  D.packet d
    (Wire.App (incoming_from ~src:1 ~inc:0 ~sii:5 [ (1, e ~inc:0 ~sii:5) ]
                 (App_model.Counter_app.Add 100)));
  D.clear d;
  D.packet d (Wire.Ann (D.ann ~from_:1 ~ending:(e ~inc:0 ~sii:4) ()));
  match D.announcements d with
  | [ a ] ->
    Alcotest.(check bool) "marked as non-failure" false a.Wire.failure;
    Alcotest.(check int) "from this process" 0 a.Wire.from_
  | l -> Alcotest.failf "expected exactly one announcement, got %d" (List.length l)

let test_rollback_requeues_non_orphans () =
  let d = D.make (config ()) counter in
  D.packet d
    (Wire.App (incoming_from ~src:1 ~inc:0 ~sii:5 [ (1, e ~inc:0 ~sii:5) ]
                 (App_model.Counter_app.Add 100)));
  (* A client message delivered after the orphan: undone but not orphan. *)
  D.inject d ~seq:1 (App_model.Counter_app.Add 7);
  Alcotest.(check int) "two deliveries" 2 (Node.metrics d.node).deliveries;
  D.packet d (Wire.Ann (D.ann ~from_:1 ~ending:(e ~inc:0 ~sii:4) ()));
  (* The orphan is discarded; the client message is re-delivered in the new
     incarnation. *)
  Alcotest.(check int) "orphan discarded" 1 (Node.metrics d.node).orphans_discarded;
  Alcotest.(check int) "three deliveries total" 3 (Node.metrics d.node).deliveries;
  (* rollback continues as the marker interval (1,2); the re-delivery then
     starts (1,3) *)
  Alcotest.check entry "re-delivered at (1,3)" (e ~inc:1 ~sii:3) (Node.current d.node);
  let st : App_model.Counter_app.state = Node.app_state d.node in
  Alcotest.(check int) "only the client effect survives" 7 st.total

let test_rollback_restores_matching_checkpoint () =
  let d = D.make (config ()) counter in
  D.inject d ~seq:1 (App_model.Counter_app.Add 1);
  D.checkpoint d (* clean checkpoint at (0,2) *);
  D.packet d
    (Wire.App (incoming_from ~src:1 ~inc:0 ~sii:5 [ (1, e ~inc:0 ~sii:5) ]
                 (App_model.Counter_app.Add 100)));
  D.checkpoint d (* checkpoint whose vector depends on the orphan *);
  D.packet d (Wire.Ann (D.ann ~from_:1 ~ending:(e ~inc:0 ~sii:4) ()));
  Alcotest.(check int) "rollback" 1 (Node.metrics d.node).induced_rollbacks;
  let st : App_model.Counter_app.state = Node.app_state d.node in
  Alcotest.(check int) "clean state restored" 1 st.total;
  Alcotest.check entry "continues past the clean checkpoint" (e ~inc:1 ~sii:3)
    (Node.current d.node)

let test_rollback_cancels_pending_orphan_sends () =
  let d = D.make (config ~k:0 ()) counter in
  (* The forwarded send depends on P1's soon-orphan interval; K=0 keeps it
     buffered. *)
  D.packet d
    (Wire.App (incoming_from ~src:1 ~inc:0 ~sii:5 [ (1, e ~inc:0 ~sii:5) ]
                 (App_model.Counter_app.Forward { dst = 2; amount = 1 })));
  Alcotest.(check int) "pending" 1 (Node.send_buffer_size d.node);
  D.packet d (Wire.Ann (D.ann ~from_:1 ~ending:(e ~inc:0 ~sii:4) ()));
  Alcotest.(check int) "cancelled" 1 (Node.metrics d.node).cancelled_sends;
  Alcotest.(check int) "buffer empty" 0 (Node.send_buffer_size d.node);
  Alcotest.(check (list reject)) "never released" []
    (List.map (fun _ -> ()) (D.released d))

(* ------------------------------------------------------------------ *)
(* Checkpoint (Corollary 2)                                            *)

let test_checkpoint_elides_own_entry () =
  let d = D.make (config ()) counter in
  D.inject d ~seq:1 (App_model.Counter_app.Add 1);
  Alcotest.(check int) "own entry present" 1
    (Dep_vector.non_null_count (Node.dep_vector d.node));
  D.checkpoint d;
  Alcotest.(check int) "own entry elided" 0
    (Dep_vector.non_null_count (Node.dep_vector d.node));
  Alcotest.check entry "frontier advanced" (e ~inc:0 ~sii:2)
    (Node.stable_frontier d.node)

(* ------------------------------------------------------------------ *)
(* Crash / Restart                                                     *)

let test_restart_announces_and_replays () =
  let d = D.make (config ()) counter in
  D.inject d ~seq:1 (App_model.Counter_app.Add 10);
  D.inject d ~seq:2 (App_model.Counter_app.Add 20);
  D.flush d;
  D.inject d ~seq:3 (App_model.Counter_app.Add 40) (* volatile: will be lost *);
  let digest_stable =
    let st : App_model.Counter_app.state = Node.app_state d.node in
    ignore st;
    ()
  in
  ignore digest_stable;
  D.crash d;
  Alcotest.(check bool) "down" false (Node.is_up d.node);
  Alcotest.(check int) "one interval lost" 1 (Node.metrics d.node).lost_intervals;
  D.clear d;
  D.restart d;
  Alcotest.(check bool) "up" true (Node.is_up d.node);
  (match D.announcements d with
  | [ a ] ->
    Alcotest.(check bool) "failure announcement" true a.Wire.failure;
    Alcotest.check entry "ending = last stable interval" (e ~inc:0 ~sii:3)
      a.Wire.ending
  | l -> Alcotest.failf "expected one announcement, got %d" (List.length l));
  Alcotest.check entry "new incarnation" (e ~inc:1 ~sii:4) (Node.current d.node);
  let st : App_model.Counter_app.state = Node.app_state d.node in
  Alcotest.(check int) "stable prefix replayed, volatile lost" 30 st.total;
  Alcotest.(check int) "replay counted" 2 (Node.metrics d.node).replayed

let test_restart_dedupes_stable_retransmission () =
  let d = D.make (config ()) counter in
  let m =
    incoming_from ~src:1 ~inc:0 ~sii:5 [ (1, e ~inc:0 ~sii:5) ]
      (App_model.Counter_app.Add 3)
  in
  D.packet d (Wire.App m);
  D.flush d;
  D.crash d;
  D.restart d;
  D.packet d (Wire.App m) (* sender retransmits after the announcement *);
  Alcotest.(check int) "replayed delivery recognized, duplicate dropped" 1
    (Node.metrics d.node).duplicates_dropped;
  let st : App_model.Counter_app.state = Node.app_state d.node in
  Alcotest.(check int) "applied exactly once" 3 st.total

let test_restart_accepts_retransmission_of_lost () =
  let d = D.make (config ()) counter in
  let m =
    incoming_from ~src:1 ~inc:0 ~sii:5 [ (1, e ~inc:0 ~sii:5) ]
      (App_model.Counter_app.Add 3)
  in
  D.packet d (Wire.App m);
  (* no flush: the delivery is volatile and dies with the crash *)
  D.crash d;
  D.restart d;
  D.packet d (Wire.App m);
  Alcotest.(check int) "re-delivered, not a duplicate" 0
    (Node.metrics d.node).duplicates_dropped;
  let st : App_model.Counter_app.state = Node.app_state d.node in
  Alcotest.(check int) "applied once" 3 st.total

let test_replay_regenerates_sends () =
  let d = D.make (config ()) counter in
  D.inject d ~seq:1 (App_model.Counter_app.Forward { dst = 2; amount = 5 });
  D.flush d;
  Alcotest.(check int) "released live" 1 (List.length (D.released d));
  D.crash d;
  D.clear d;
  D.restart d;
  (* The send is regenerated during replay and re-released; the receiver's
     duplicate suppression keeps this harmless. *)
  match D.released d with
  | [ m ] ->
    Alcotest.(check int) "same destination" 2 m.Wire.dst;
    Alcotest.check entry "same identity interval" (e ~inc:0 ~sii:2)
      m.Wire.id.Wire.origin_interval
  | l -> Alcotest.failf "expected regenerated send, got %d" (List.length l)

let test_committed_output_not_repeated () =
  let d = D.make (config ()) counter in
  D.inject d ~seq:1 (App_model.Counter_app.Add 4);
  D.inject d ~seq:2 App_model.Counter_app.Report;
  D.flush d (* own intervals stable: output commits *);
  Alcotest.(check int) "committed" 1 (Node.metrics d.node).outputs_committed;
  D.crash d;
  D.restart d;
  Alcotest.(check int) "not re-committed by replay" 1
    (Node.metrics d.node).outputs_committed;
  Alcotest.(check (list string)) "ledger intact" [ "p0 total=4" ]
    (List.map fst (Node.committed_outputs d.node))

let test_incarnations_never_reused () =
  let d = D.make (config ()) counter in
  for seq = 1 to 3 do
    D.inject d ~seq (App_model.Counter_app.Add 1);
    D.crash d;
    D.restart d
  done;
  Alcotest.(check int) "three distinct incarnations consumed" 3
    (Node.current d.node).Entry.inc

let test_checkpointed_pending_send_survives_crash () =
  (* Regression: a send blocked by the K rule when a checkpoint is taken is
     not regenerated by replay (replay starts at the checkpoint); the
     checkpoint must carry it. *)
  let d = D.make (config ~k:0 ()) counter in
  D.packet d
    (Wire.App (incoming_from ~src:1 ~inc:0 ~sii:5 [ (1, e ~inc:0 ~sii:5) ]
                 (App_model.Counter_app.Forward { dst = 2; amount = 9 })));
  Alcotest.(check int) "blocked by K=0" 1 (Node.send_buffer_size d.node);
  D.checkpoint d;
  Alcotest.(check int) "still blocked (P1's interval not stable)" 1
    (Node.send_buffer_size d.node);
  D.crash d;
  D.restart d;
  Alcotest.(check int) "pending send restored from checkpoint" 1
    (Node.send_buffer_size d.node);
  D.clear d;
  D.packet d (D.notice_packet ~from_:1 ~rows:[ (1, [ e ~inc:0 ~sii:5 ]) ]);
  match D.released d with
  | [ m ] -> Alcotest.(check int) "released to P2 after stability" 2 m.Wire.dst
  | l -> Alcotest.failf "expected 1 release, got %d" (List.length l)

let test_requeued_record_survives_crash () =
  (* Regression: a rollback truncates the log and requeues non-orphans; a
     crash right after must still recover them (Requeued records). *)
  let d = D.make (config ()) counter in
  D.packet d
    (Wire.App (incoming_from ~src:1 ~inc:0 ~sii:5 [ (1, e ~inc:0 ~sii:5) ]
                 (App_model.Counter_app.Add 100)));
  D.inject d ~seq:1 (App_model.Counter_app.Add 7);
  D.packet d (Wire.Ann (D.ann ~from_:1 ~ending:(e ~inc:0 ~sii:4) ()));
  (* the marker interval is (1,2); the client re-delivery starts (1,3) and
     is volatile *)
  Alcotest.check entry "re-delivered" (e ~inc:1 ~sii:3) (Node.current d.node);
  D.crash d;
  D.restart d;
  let st : App_model.Counter_app.state = Node.app_state d.node in
  Alcotest.(check int) "client effect recovered from Requeued record" 7 st.total

(* ------------------------------------------------------------------ *)
(* Output commit                                                       *)

let test_output_waits_for_stability () =
  let d = D.make (config ()) counter in
  D.packet d
    (Wire.App (incoming_from ~src:1 ~inc:0 ~sii:5 [ (1, e ~inc:0 ~sii:5) ]
                 (App_model.Counter_app.Add 2)));
  D.inject d ~seq:1 App_model.Counter_app.Report;
  D.flush d (* own intervals stable, but P1's dependency is not *);
  Alcotest.(check int) "not yet committed" 0 (Node.metrics d.node).outputs_committed;
  Alcotest.(check int) "buffered" 1 (Node.output_buffer_size d.node);
  D.packet d (D.notice_packet ~from_:1 ~rows:[ (1, [ e ~inc:0 ~sii:5 ]) ]);
  Alcotest.(check int) "committed once all dependencies stable" 1
    (Node.metrics d.node).outputs_committed;
  Alcotest.(check (list string)) "text" [ "p0 total=2" ]
    (List.map fst (Node.committed_outputs d.node))

let test_output_driven_logging () =
  let base = config () in
  let cfg =
    {
      base with
      Config.protocol = { base.Config.protocol with output_driven_logging = true };
    }
  in
  let d = D.make cfg counter in
  D.packet d
    (Wire.App (incoming_from ~src:1 ~inc:0 ~sii:5 [ (1, e ~inc:0 ~sii:5) ]
                 (App_model.Counter_app.Add 2)));
  D.clear d;
  D.inject d ~seq:1 App_model.Counter_app.Report;
  let flush_requests =
    List.filter_map
      (function
        | Node.Unicast { dst; packet = Wire.Flush_request _ } -> Some dst
        | Node.Unicast _ | Node.Broadcast _ -> None)
      (D.actions d)
  in
  Alcotest.(check (list int)) "flush forced at the dependency" [ 1 ] flush_requests

let test_flush_request_answered () =
  let d = D.make (config ()) counter in
  D.inject d ~seq:1 (App_model.Counter_app.Add 1);
  D.clear d;
  D.packet d (Wire.Flush_request { from_ = 2 });
  let notices =
    List.filter_map
      (function
        | Node.Unicast { dst; packet = Wire.Notice _ } -> Some dst
        | Node.Unicast _ | Node.Broadcast _ -> None)
      (D.actions d)
  in
  Alcotest.(check (list int)) "direct notice back" [ 2 ] notices;
  Alcotest.check entry "flushed" (e ~inc:0 ~sii:2) (Node.stable_frontier d.node)

(* ------------------------------------------------------------------ *)
(* Acks, archive and retransmission                                    *)

let test_flush_acks_senders () =
  let d = D.make (config ()) counter in
  D.packet d
    (Wire.App (incoming_from ~src:1 ~inc:0 ~sii:5 [ (1, e ~inc:0 ~sii:5) ]
                 (App_model.Counter_app.Add 1)));
  D.clear d;
  D.flush d;
  let acks =
    List.filter_map
      (function
        | Node.Unicast { dst; packet = Wire.Ack a } -> Some (dst, List.length a.Wire.ids)
        | Node.Unicast _ | Node.Broadcast _ -> None)
      (D.actions d)
  in
  Alcotest.(check (list (pair int int))) "one ack to the sender" [ (1, 1) ] acks

let test_retransmit_on_failure_announcement () =
  let d = D.make (config ()) counter in
  D.inject d ~seq:1 (App_model.Counter_app.Forward { dst = 1; amount = 5 });
  Alcotest.(check int) "released" 1 (List.length (D.released d));
  D.clear d;
  D.packet d (Wire.Ann (D.ann ~from_:1 ~ending:(e ~inc:0 ~sii:9) ()));
  (match D.released d with
  | [ m ] -> Alcotest.(check int) "archived copy resent to restarted P1" 1 m.Wire.dst
  | l -> Alcotest.failf "expected 1 retransmission, got %d" (List.length l));
  Alcotest.(check int) "metric" 1 (Node.metrics d.node).retransmissions

let test_ack_stops_retransmission () =
  let d = D.make (config ()) counter in
  D.inject d ~seq:1 (App_model.Counter_app.Forward { dst = 1; amount = 5 });
  let released = D.released d in
  let id = (List.hd released).Wire.id in
  D.packet d (Wire.Ack { Wire.from_ = 1; to_ = 0; ids = [ id ] });
  D.clear d;
  D.packet d (Wire.Ann (D.ann ~from_:1 ~ending:(e ~inc:0 ~sii:9) ()));
  Alcotest.(check int) "archive empty, nothing resent" 0
    (List.length (D.released d))

let test_no_retransmission_for_induced_rollback () =
  let d = D.make (config ()) counter in
  D.inject d ~seq:1 (App_model.Counter_app.Forward { dst = 1; amount = 5 });
  D.clear d;
  (* Non-failure announcement (as broadcast by the Strom–Yemini preset):
     the receiver lost nothing, so nothing is retransmitted. *)
  D.packet d (Wire.Ann { Wire.from_ = 1; ending = e ~inc:0 ~sii:9; failure = false });
  Alcotest.(check int) "no retransmission" 0 (List.length (D.released d))

(* ------------------------------------------------------------------ *)
(* Driver-facing details                                               *)

let test_down_node_ignores_packets () =
  let d = D.make (config ()) counter in
  D.crash d;
  D.packet d
    (Wire.App (incoming_from ~src:1 ~inc:0 ~sii:2 [ (1, e ~inc:0 ~sii:2) ]
                 (App_model.Counter_app.Add 1)));
  Alcotest.(check int) "nothing delivered while down" 0 (Node.metrics d.node).deliveries

let test_cost_accounting () =
  let d = D.make (config ()) counter in
  let _, cost = Node.inject d.node ~now:1. ~seq:9 (App_model.Counter_app.Add 1) in
  Alcotest.(check int) "one delivery" 1 cost.Node.deliveries;
  let _, cost = Node.checkpoint d.node ~now:2. in
  Alcotest.(check int) "one checkpoint" 1 cost.Node.checkpoints;
  Alcotest.(check bool) "sync writes counted" true (cost.Node.sync_writes >= 1)

let test_sy_wire_size_is_n () =
  let d = D.make (Config.strom_yemini ~timing:quiet_timing ~n:4 ()) counter in
  D.inject d ~seq:1 (App_model.Counter_app.Forward { dst = 1; amount = 1 });
  Alcotest.(check (float 0.0)) "fixed size-N vector on the wire" 4.
    (Sim.Summary.mean (Node.metrics d.node).wire_vector_size)

let test_notice_gossip () =
  let base = config () in
  let cfg =
    { base with Config.protocol = { base.Config.protocol with gossip_notices = true } }
  in
  let d = D.make cfg counter in
  D.packet d (D.notice_packet ~from_:2 ~rows:[ (2, [ e ~inc:0 ~sii:8 ]) ]);
  D.clear d;
  D.notice d;
  let rows =
    List.concat_map
      (function
        | Node.Broadcast (Wire.Notice n) -> List.map fst n.Wire.rows
        | Node.Unicast _ | Node.Broadcast _ -> [])
      (D.actions d)
  in
  Alcotest.(check bool) "gossip includes P2's row" true (List.mem 2 rows);
  Alcotest.(check bool) "own row present" true (List.mem 0 rows)

let suite =
  [
    Alcotest.test_case "Initialize (Corollary 3)" `Quick test_initial_state;
    Alcotest.test_case "delivery starts interval" `Quick test_inject_starts_interval;
    Alcotest.test_case "delivery merges piggyback" `Quick test_delivery_merges_piggyback;
    Alcotest.test_case "delivery takes lexicographic max" `Quick test_delivery_takes_lex_max;
    Alcotest.test_case "send released under K" `Quick test_send_released_when_under_k;
    Alcotest.test_case "K=0 blocks until flush" `Quick test_send_blocked_at_k0_until_flush;
    Alcotest.test_case "send blocked by remote dependency" `Quick
      test_send_blocked_by_remote_dependency;
    Alcotest.test_case "per-message K override" `Quick test_per_message_k_override;
    Alcotest.test_case "pessimistic sync logging" `Quick test_pessimistic_sync_logging;
    Alcotest.test_case "deliverable with no local entry (Cor 1)" `Quick
      test_deliverable_no_local_entry;
    Alcotest.test_case "deliverable same incarnation" `Quick test_deliverable_same_incarnation;
    Alcotest.test_case "delivery waits for smaller stability (Cor 1)" `Quick
      test_delivery_waits_for_smaller_stability;
    Alcotest.test_case "announcement unblocks delivery (Cor 1)" `Quick
      test_delivery_unblocked_by_announcement;
    Alcotest.test_case "S&Y wait-for-announcement rule" `Quick test_wait_announcement_rule;
    Alcotest.test_case "S&Y own-incarnation deps (regression)" `Quick
      test_wait_announcement_own_incarnation;
    Alcotest.test_case "orphan discarded on arrival" `Quick test_orphan_discarded_on_arrival;
    Alcotest.test_case "orphan purged from receive buffer" `Quick
      test_orphan_discarded_from_receive_buffer;
    Alcotest.test_case "receive-buffer duplicate suppressed (regression)" `Quick
      test_receive_buffer_duplicate_suppressed;
    Alcotest.test_case "duplicate of delivered dropped" `Quick test_duplicate_of_delivered_dropped;
    Alcotest.test_case "announcement without orphan: no rollback" `Quick
      test_announcement_no_rollback_when_clean;
    Alcotest.test_case "announcement triggers rollback" `Quick test_announcement_triggers_rollback;
    Alcotest.test_case "S&Y announces induced rollbacks" `Quick
      test_strom_yemini_announces_induced_rollback;
    Alcotest.test_case "rollback requeues non-orphans" `Quick test_rollback_requeues_non_orphans;
    Alcotest.test_case "rollback restores matching checkpoint" `Quick
      test_rollback_restores_matching_checkpoint;
    Alcotest.test_case "rollback cancels orphan pending sends" `Quick
      test_rollback_cancels_pending_orphan_sends;
    Alcotest.test_case "checkpoint elides own entry (Cor 2)" `Quick
      test_checkpoint_elides_own_entry;
    Alcotest.test_case "restart announces and replays" `Quick test_restart_announces_and_replays;
    Alcotest.test_case "restart dedupes stable retransmissions" `Quick
      test_restart_dedupes_stable_retransmission;
    Alcotest.test_case "restart accepts retransmission of lost" `Quick
      test_restart_accepts_retransmission_of_lost;
    Alcotest.test_case "replay regenerates sends" `Quick test_replay_regenerates_sends;
    Alcotest.test_case "committed output not repeated" `Quick test_committed_output_not_repeated;
    Alcotest.test_case "incarnations never reused" `Quick test_incarnations_never_reused;
    Alcotest.test_case "checkpointed pending send survives crash (regression)" `Quick
      test_checkpointed_pending_send_survives_crash;
    Alcotest.test_case "requeued record survives crash (regression)" `Quick
      test_requeued_record_survives_crash;
    Alcotest.test_case "output waits for stability" `Quick test_output_waits_for_stability;
    Alcotest.test_case "output-driven logging" `Quick test_output_driven_logging;
    Alcotest.test_case "flush request answered" `Quick test_flush_request_answered;
    Alcotest.test_case "flush acks senders" `Quick test_flush_acks_senders;
    Alcotest.test_case "retransmit on failure announcement" `Quick
      test_retransmit_on_failure_announcement;
    Alcotest.test_case "ack stops retransmission" `Quick test_ack_stops_retransmission;
    Alcotest.test_case "no retransmission for induced rollback" `Quick
      test_no_retransmission_for_induced_rollback;
    Alcotest.test_case "down node ignores packets" `Quick test_down_node_ignores_packets;
    Alcotest.test_case "cost accounting" `Quick test_cost_accounting;
    Alcotest.test_case "S&Y wire size is N" `Quick test_sy_wire_size_is_n;
    Alcotest.test_case "notice gossip" `Quick test_notice_gossip;
  ]
