(* Whole-system integration tests: every preset, random crash schedules,
   all checked against the offline causality oracle.  These are the tests
   that tie the implementation to the paper's theorems. *)

module Cluster = Harness.Cluster
module Node = Recovery.Node
module Config = Recovery.Config
module Oracle = Harness.Oracle
module Workload = Harness.Workload

let run_telecom ~config ~seed ~failures ~calls () =
  let c = Cluster.create ~config ~app:App_model.Telecom_app.app ~seed ~horizon:4000. () in
  let rng = Sim.Rng.create (seed * 31) in
  Workload.telecom c ~rng ~calls ~hops:3 ~start:10. ~rate:1.5;
  if failures > 0 then
    Workload.random_failures c ~rng:(Sim.Rng.split rng) ~count:failures
      ~window:(30., 120.);
  Cluster.run c;
  c

let assert_oracle ?k ~n c =
  let report = Oracle.check ?k ~n (Cluster.trace c) in
  if not (Oracle.ok report) then
    Alcotest.failf "oracle violations: %a" Oracle.pp_report report;
  report

let assert_quiescent c =
  Array.iter
    (fun nd ->
      Alcotest.(check int)
        (Fmt.str "P%d receive buffer drained" (Node.pid nd))
        0 (Node.receive_buffer_size nd);
      Alcotest.(check int)
        (Fmt.str "P%d send buffer drained" (Node.pid nd))
        0 (Node.send_buffer_size nd);
      Alcotest.(check int)
        (Fmt.str "P%d output buffer drained" (Node.pid nd))
        0 (Node.output_buffer_size nd))
    (Cluster.nodes c)

let count_outputs c =
  Array.fold_left
    (fun acc nd -> acc + List.length (Node.committed_outputs nd))
    0 (Cluster.nodes c)

let presets n =
  [
    ("pessimistic", Config.pessimistic ~n ());
    ("k0", Config.k_optimistic ~n ~k:0 ());
    ("k1", Config.k_optimistic ~n ~k:1 ());
    ("k2", Config.k_optimistic ~n ~k:2 ());
    ("optimistic", Config.optimistic ~n ());
    ("strom-yemini", Config.strom_yemini ~n ());
    ("damani-garg", Config.damani_garg ~n ());
  ]

let test_all_presets_failure_free () =
  let n = 6 in
  let calls = 40 in
  List.iter
    (fun (name, config) ->
      let c = run_telecom ~config ~seed:3 ~failures:0 ~calls () in
      ignore (assert_oracle ~k:config.Config.protocol.k ~n c : Oracle.report);
      assert_quiescent c;
      Alcotest.(check int) (name ^ ": every call connects") calls (count_outputs c);
      Alcotest.(check int) (name ^ ": no rollbacks without failures") 0
        (Cluster.stats c).induced_rollbacks)
    (presets n)

let test_all_presets_with_crashes () =
  let n = 6 in
  let calls = 60 in
  List.iter
    (fun (name, config) ->
      List.iter
        (fun seed ->
          let c = run_telecom ~config ~seed ~failures:2 ~calls () in
          ignore (assert_oracle ~k:config.Config.protocol.k ~n c : Oracle.report);
          assert_quiescent c;
          Alcotest.(check int)
            (Fmt.str "%s seed %d: every call connects exactly once" name seed)
            calls (count_outputs c))
        [ 1; 2 ])
    (presets n)

let test_k0_and_pessimistic_never_revoke () =
  let n = 6 in
  List.iter
    (fun config ->
      List.iter
        (fun seed ->
          let c = run_telecom ~config ~seed ~failures:3 ~calls:50 () in
          let s = Cluster.stats c in
          Alcotest.(check int) "no induced rollbacks" 0 s.induced_rollbacks;
          Alcotest.(check int) "no orphans" 0 s.orphans_discarded;
          Alcotest.(check int) "no undone work" 0 s.undone_intervals;
          ignore (assert_oracle ~k:0 ~n c : Oracle.report))
        [ 4; 5 ])
    [ Config.pessimistic ~n (); Config.k_optimistic ~n ~k:0 () ]

let test_theorem4_across_k () =
  let n = 6 in
  List.iter
    (fun k ->
      let config = Config.k_optimistic ~n ~k () in
      let c = run_telecom ~config ~seed:7 ~failures:2 ~calls:50 () in
      let report = assert_oracle ~k ~n c in
      Alcotest.(check bool)
        (Fmt.str "risk bound holds for K=%d" k)
        true
        (report.Oracle.max_risk <= k))
    [ 0; 1; 2; 3; 6 ]

let test_pipeline_jobs_all_complete () =
  let n = 5 in
  let config = Config.k_optimistic ~n ~k:2 () in
  let c = Cluster.create ~config ~app:App_model.Pipeline_app.app ~seed:11 ~horizon:4000. () in
  Workload.pipeline c ~jobs:30 ~start:5. ~rate:2.;
  Workload.random_failures c ~rng:(Sim.Rng.create 5) ~count:2 ~window:(10., 40.);
  Cluster.run c;
  ignore (assert_oracle ~k:2 ~n c : Oracle.report);
  Alcotest.(check int) "all jobs emerge exactly once" 30 (count_outputs c)

let test_kvstore_consistent_after_crashes () =
  let n = 4 in
  let config = Config.k_optimistic ~n ~k:2 () in
  let c = Cluster.create ~config ~app:App_model.Kvstore_app.app ~seed:13 ~horizon:4000. () in
  let rng = Sim.Rng.create 17 in
  Workload.kvstore c ~rng ~ops:80 ~keys:10 ~start:5. ~rate:2.;
  Workload.random_failures c ~rng:(Sim.Rng.split rng) ~count:2 ~window:(15., 50.);
  Cluster.run c;
  ignore (assert_oracle ~k:2 ~n c : Oracle.report);
  assert_quiescent c

let test_chatter_stress_many_failures () =
  let n = 8 in
  List.iter
    (fun (k, seed) ->
      let config = Config.k_optimistic ~n ~k () in
      let c = Cluster.create ~config ~app:App_model.Chatter_app.app ~seed ~horizon:5000. () in
      let rng = Sim.Rng.create (seed + 100) in
      Harness.Workload.chatter c ~rng ~tokens:25 ~hops:10 ~start:5. ~rate:2.;
      Workload.random_failures c ~rng:(Sim.Rng.split rng) ~count:4 ~window:(20., 200.);
      Cluster.run c;
      ignore (assert_oracle ~k ~n c : Oracle.report))
    [ (1, 21); (4, 22); (8, 23) ]

let test_concurrent_failures () =
  (* Two processes down at overlapping times. *)
  let n = 6 in
  let config = Config.optimistic ~n () in
  let c = Cluster.create ~config ~app:App_model.Telecom_app.app ~seed:31 ~horizon:4000. () in
  let rng = Sim.Rng.create 33 in
  Workload.telecom c ~rng ~calls:40 ~hops:3 ~start:5. ~rate:2.;
  Cluster.crash_at c ~time:25. ~pid:1;
  Cluster.crash_at c ~time:26. ~pid:2;
  Cluster.crash_at c ~time:60. ~pid:1;
  Cluster.run c;
  ignore (assert_oracle ~k:n ~n c : Oracle.report);
  Alcotest.(check int) "all calls connect" 40 (count_outputs c)

let test_repeated_failures_same_process () =
  let n = 4 in
  let config = Config.k_optimistic ~n ~k:2 () in
  let c = Cluster.create ~config ~app:App_model.Telecom_app.app ~seed:41 ~horizon:5000. () in
  let rng = Sim.Rng.create 43 in
  Workload.telecom c ~rng ~calls:40 ~hops:2 ~start:5. ~rate:2.;
  List.iter (fun t -> Cluster.crash_at c ~time:t ~pid:2) [ 20.; 80.; 140.; 200. ];
  Cluster.run c;
  ignore (assert_oracle ~k:2 ~n c : Oracle.report);
  Alcotest.(check int) "four restarts" 4 (Cluster.stats c).restarts;
  Alcotest.(check int) "all calls connect" 40 (count_outputs c)

let test_output_driven_logging_end_to_end () =
  let n = 6 in
  let base = Config.optimistic ~n () in
  let config =
    {
      base with
      Config.protocol = { base.Config.protocol with output_driven_logging = true };
      Config.timing = { base.Config.timing with notice_interval = Some 500. };
    }
  in
  let plain =
    { base with Config.timing = { base.Config.timing with notice_interval = Some 500. } }
  in
  let latency config =
    let c = run_telecom ~config ~seed:51 ~failures:0 ~calls:30 () in
    ignore (assert_oracle ~k:n ~n c : Oracle.report);
    Sim.Summary.mean (Cluster.stats c).output_latency
  in
  let driven = latency config and undriven = latency plain in
  Alcotest.(check bool)
    (Fmt.str "output-driven logging cuts commit latency (%.1f < %.1f)" driven undriven)
    true (driven < undriven)

(* Randomized property: any small scenario must satisfy the oracle. *)
let gen_scenario =
  QCheck2.Gen.(
    let* n = int_range 3 8 in
    let* k = int_bound n in
    let* seed = int_bound 10_000 in
    let* failures = int_bound 3 in
    let* calls = int_range 10 40 in
    return (n, k, seed, failures, calls))

let random_scenario_sound =
  Util.qtest ~count:25 "random scenarios satisfy the oracle" gen_scenario
    (fun (n, k, seed, failures, calls) ->
      let config = Config.k_optimistic ~n ~k () in
      let c = run_telecom ~config ~seed ~failures ~calls () in
      let report = Oracle.check ~k ~n (Cluster.trace c) in
      Oracle.ok report && report.Oracle.max_risk <= k)

let suite =
  [
    Alcotest.test_case "all presets, failure-free" `Slow test_all_presets_failure_free;
    Alcotest.test_case "all presets, with crashes" `Slow test_all_presets_with_crashes;
    Alcotest.test_case "K=0/pessimistic never revoke" `Slow test_k0_and_pessimistic_never_revoke;
    Alcotest.test_case "Theorem 4 across K" `Slow test_theorem4_across_k;
    Alcotest.test_case "pipeline jobs all complete" `Slow test_pipeline_jobs_all_complete;
    Alcotest.test_case "kvstore consistent after crashes" `Slow
      test_kvstore_consistent_after_crashes;
    Alcotest.test_case "chatter stress, many failures" `Slow test_chatter_stress_many_failures;
    Alcotest.test_case "concurrent failures" `Slow test_concurrent_failures;
    Alcotest.test_case "repeated failures, same process" `Slow
      test_repeated_failures_same_process;
    Alcotest.test_case "output-driven logging end to end" `Slow
      test_output_driven_logging_end_to_end;
    random_scenario_sound;
  ]
