(* Money conservation under crashes: the sharpest end-to-end check.

   Deposits inject a known amount of money; transfers shuffle it across
   shards.  Whatever the protocol does — rollbacks, replays, requeues,
   retransmissions — once the system quiesces, the global balance must be
   exactly the amount deposited: nothing lost, nothing duplicated. *)

module Cluster = Harness.Cluster
module Node = Recovery.Node
module Config = Recovery.Config
module Bank = App_model.Bank_app

let global_total cluster =
  Array.fold_left
    (fun acc nd -> acc + Bank.total (Node.app_state nd))
    0 (Cluster.nodes cluster)

let run_scenario ~config ~seed ~crashes =
  let n = config.Config.n in
  let cluster = Cluster.create ~config ~app:Bank.app ~seed ~horizon:5000. () in
  let rng = Sim.Rng.create (seed * 997) in
  (* Deposits: 1000 units spread over the shards. *)
  let deposited = ref 0 in
  for i = 1 to 20 do
    let amount = 10 + Sim.Rng.int rng 90 in
    deposited := !deposited + amount;
    Cluster.inject_at cluster
      ~time:(float_of_int i)
      ~dst:(i mod n)
      (Bank.Deposit { account = i; amount })
  done;
  (* Transfers between random shards/accounts. *)
  for i = 1 to 60 do
    let from_shard = Sim.Rng.int rng n in
    let to_shard = Sim.Rng.int rng n in
    Cluster.inject_at cluster
      ~time:(25. +. float_of_int i)
      ~dst:from_shard
      (Bank.Transfer
         {
           from_account = Sim.Rng.int rng 20;
           to_shard;
           to_account = Sim.Rng.int rng 20;
           amount = 1 + Sim.Rng.int rng 50;
         })
  done;
  List.iter (fun (time, pid) -> Cluster.crash_at cluster ~time ~pid) crashes;
  Cluster.run cluster;
  let report =
    Harness.Oracle.check ~k:config.Config.protocol.k ~n (Cluster.trace cluster)
  in
  if not (Harness.Oracle.ok report) then
    Alcotest.failf "oracle: %a" Harness.Oracle.pp_report report;
  Alcotest.(check int) "money conserved" !deposited (global_total cluster)

let test_conservation_failure_free () =
  List.iter
    (fun config -> run_scenario ~config ~seed:1 ~crashes:[])
    [
      Config.pessimistic ~n:5 ();
      Config.k_optimistic ~n:5 ~k:2 ();
      Config.optimistic ~n:5 ();
      Config.strom_yemini ~n:5 ();
    ]

let test_conservation_one_crash () =
  List.iter
    (fun config ->
      List.iter
        (fun seed -> run_scenario ~config ~seed ~crashes:[ (40., 2) ])
        [ 2; 3 ])
    [
      Config.pessimistic ~n:5 ();
      Config.k_optimistic ~n:5 ~k:1 ();
      Config.k_optimistic ~n:5 ~k:3 ();
      Config.optimistic ~n:5 ();
    ]

let test_conservation_crash_storm () =
  List.iter
    (fun config ->
      run_scenario ~config ~seed:7
        ~crashes:[ (30., 0); (45., 3); (60., 0); (75., 4) ])
    [ Config.k_optimistic ~n:5 ~k:2 (); Config.optimistic ~n:5 () ]

let test_conservation_with_gc () =
  let base = Config.k_optimistic ~n:5 ~k:2 () in
  let config =
    { base with Config.protocol = { base.Config.protocol with gc_logs = true } }
  in
  run_scenario ~config ~seed:9 ~crashes:[ (40., 1); (70., 2) ]

let test_audit_outputs () =
  let n = 4 in
  let config = Config.k_optimistic ~n ~k:2 () in
  let cluster = Cluster.create ~config ~app:Bank.app ~seed:4 ~horizon:2000. () in
  Cluster.inject_at cluster ~time:1. ~dst:0 (Bank.Deposit { account = 1; amount = 500 });
  Cluster.inject_at cluster ~time:2. ~dst:0
    (Bank.Transfer { from_account = 1; to_shard = 2; to_account = 5; amount = 200 });
  Cluster.inject_at cluster ~time:50. ~dst:0 Bank.Audit;
  Cluster.inject_at cluster ~time:50. ~dst:2 Bank.Audit;
  Cluster.run cluster;
  let outputs =
    Array.to_list (Cluster.nodes cluster)
    |> List.concat_map (fun nd -> List.map fst (Node.committed_outputs nd))
    |> List.sort String.compare
  in
  Alcotest.(check (list string)) "audited balances"
    [ "shard 0 total=300"; "shard 2 total=200" ]
    outputs

let suite =
  [
    Alcotest.test_case "conservation, failure-free" `Slow test_conservation_failure_free;
    Alcotest.test_case "conservation, one crash" `Slow test_conservation_one_crash;
    Alcotest.test_case "conservation, crash storm" `Slow test_conservation_crash_storm;
    Alcotest.test_case "conservation with GC" `Slow test_conservation_with_gc;
    Alcotest.test_case "audit outputs" `Quick test_audit_outputs;
  ]
