(* The simulation engine: routing, timers, failures, retransmission by the
   outside world, statistics. *)

module Cluster = Harness.Cluster
module Node = Recovery.Node
module Config = Recovery.Config
module Counter = App_model.Counter_app

let config ?(k = 4) ?(n = 4) () = Config.k_optimistic ~n ~k ()

let test_inject_and_run () =
  let c = Cluster.create ~config:(config ()) ~app:Counter.app ~horizon:100. () in
  Cluster.inject_at c ~time:1. ~dst:2 (Counter.Add 5);
  Cluster.inject_at c ~time:2. ~dst:2 (Counter.Add 7);
  Cluster.run c;
  let st : Counter.state = Node.app_state (Cluster.node c 2) in
  Alcotest.(check int) "both applied" 12 st.total;
  Alcotest.(check int) "stats count deliveries" 2 (Cluster.stats c).deliveries

let test_forwarding_crosses_network () =
  let c = Cluster.create ~config:(config ()) ~app:Counter.app ~horizon:100. () in
  Cluster.inject_at c ~time:1. ~dst:0 (Counter.Forward { dst = 3; amount = 9 });
  Cluster.run c;
  let st : Counter.state = Node.app_state (Cluster.node c 3) in
  Alcotest.(check int) "arrived at P3" 9 st.total

let test_crash_restart_cycle () =
  let c = Cluster.create ~config:(config ()) ~app:Counter.app ~horizon:500. () in
  Cluster.inject_at c ~time:1. ~dst:1 (Counter.Add 5);
  Cluster.crash_at c ~time:50. ~pid:1;
  Cluster.run c;
  Alcotest.(check bool) "back up" true (Node.is_up (Cluster.node c 1));
  Alcotest.(check int) "restart counted" 1 (Cluster.stats c).restarts;
  Alcotest.(check int) "announcement broadcast" 1 (Cluster.stats c).announcements

let test_client_retry_recovers_lost_request () =
  (* Long flush interval: the injected request is still volatile at the
     crash; the outside world retries it after the failure announcement. *)
  let timing =
    { Config.default_timing with flush_interval = Some 1000.; checkpoint_interval = None }
  in
  let c =
    Cluster.create
      ~config:(Config.k_optimistic ~timing ~n:4 ~k:4 ())
      ~app:Counter.app ~horizon:2000. ()
  in
  Cluster.inject_at c ~time:1. ~dst:1 (Counter.Add 5);
  Cluster.crash_at c ~time:10. ~pid:1;
  Cluster.run c;
  let st : Counter.state = Node.app_state (Cluster.node c 1) in
  Alcotest.(check int) "request recovered exactly once" 5 st.total

let test_packets_to_down_node_held () =
  let c = Cluster.create ~config:(config ()) ~app:Counter.app ~horizon:500. () in
  Cluster.crash_at c ~time:5. ~pid:3;
  (* Sent while P3 is down (restart_delay is 30): must arrive after restart. *)
  Cluster.inject_at c ~time:10. ~dst:0 (Counter.Forward { dst = 3; amount = 4 });
  Cluster.run c;
  let st : Counter.state = Node.app_state (Cluster.node c 3) in
  Alcotest.(check int) "held message delivered after restart" 4 st.total

let test_injection_to_down_node_retried () =
  let c = Cluster.create ~config:(config ()) ~app:Counter.app ~horizon:500. () in
  Cluster.crash_at c ~time:5. ~pid:3;
  Cluster.inject_at c ~time:10. ~dst:3 (Counter.Add 4);
  Cluster.run c;
  let st : Counter.state = Node.app_state (Cluster.node c 3) in
  Alcotest.(check int) "retried until the node is back" 4 st.total

let test_run_until_is_partial () =
  let c = Cluster.create ~config:(config ()) ~app:Counter.app ~horizon:100. () in
  Cluster.inject_at c ~time:1. ~dst:0 (Counter.Add 1);
  Cluster.inject_at c ~time:50. ~dst:0 (Counter.Add 1);
  Cluster.run_until c 10.;
  Alcotest.(check int) "only the first processed" 1 (Cluster.stats c).deliveries;
  Cluster.run c;
  Alcotest.(check int) "rest follows" 2 (Cluster.stats c).deliveries

let test_horizon_stops_run () =
  let c = Cluster.create ~config:(config ()) ~app:Counter.app ~horizon:20. () in
  Cluster.inject_at c ~time:50. ~dst:0 (Counter.Add 1);
  Cluster.run c;
  Alcotest.(check int) "beyond the horizon" 0 (Cluster.stats c).deliveries

let test_net_override_controls_latency () =
  let override ~src:_ ~dst:_ ~packet_kind:_ = Some 25. in
  let c =
    Cluster.create ~config:(config ()) ~app:Counter.app ~horizon:100.
      ~net_override:override ~auto_timers:false ()
  in
  Cluster.inject_at c ~time:1. ~dst:0 (Counter.Forward { dst = 1; amount = 1 });
  Cluster.run_until c 20.;
  let st : Counter.state = Node.app_state (Cluster.node c 1) in
  Alcotest.(check int) "not yet arrived" 0 st.total;
  Cluster.run c;
  let st : Counter.state = Node.app_state (Cluster.node c 1) in
  Alcotest.(check int) "arrived after 25 time units" 1 st.total

let test_fifo_channels () =
  (* With FIFO enforced, two sends on the same channel arrive in order even
     under adversarial jitter. *)
  let timing =
    { Config.default_timing with fifo = true; net_jitter = 10.; net_latency = 1. }
  in
  let c =
    Cluster.create
      ~config:(Config.strom_yemini ~timing ~n:2 ())
      ~app:Counter.app ~horizon:200. ~seed:5 ()
  in
  for i = 1 to 10 do
    Cluster.inject_at c
      ~time:(float_of_int i)
      ~dst:0
      (Counter.Forward { dst = 1; amount = i })
  done;
  Cluster.run c;
  let st : Counter.state = Node.app_state (Cluster.node c 1) in
  Alcotest.(check int) "all arrived" 55 st.total;
  (* in-order delivery means the receiver saw them as 1,2,...,10 *)
  Alcotest.(check int) "handled exactly ten" 10 st.handled

let test_determinism_across_runs () =
  let run () =
    let c =
      Cluster.create ~config:(config ()) ~app:App_model.Chatter_app.app ~seed:99
        ~horizon:500. ()
    in
    for i = 0 to 9 do
      Cluster.inject_at c
        ~time:(float_of_int (i + 1))
        ~dst:(i mod 4)
        (App_model.Chatter_app.Token { hops_left = 6; salt = i })
    done;
    Cluster.crash_at c ~time:40. ~pid:2;
    Cluster.run c;
    let s = Cluster.stats c in
    (s.deliveries, s.releases, s.induced_rollbacks, Recovery.Trace.length (Cluster.trace c))
  in
  Alcotest.(check (pair (pair int int) (pair int int)))
    "identical runs"
    (let a, b, c_, d = run () in
     ((a, b), (c_, d)))
    (let a, b, c_, d = run () in
     ((a, b), (c_, d)))

let test_seed_changes_schedule () =
  let run seed =
    let c =
      Cluster.create ~config:(config ()) ~app:App_model.Chatter_app.app ~seed
        ~horizon:300. ()
    in
    for i = 0 to 9 do
      Cluster.inject_at c ~time:(float_of_int (i + 1)) ~dst:(i mod 4)
        (App_model.Chatter_app.Token { hops_left = 6; salt = i })
    done;
    Cluster.run c;
    (Cluster.stats c).makespan
  in
  Alcotest.(check bool) "different seeds differ" true (run 1 <> run 2)

let test_stats_packets () =
  let c = Cluster.create ~config:(config ()) ~app:Counter.app ~horizon:200. () in
  Cluster.inject_at c ~time:1. ~dst:0 (Counter.Forward { dst = 1; amount = 1 });
  Cluster.run c;
  let packets = (Cluster.stats c).packets in
  Alcotest.(check bool) "app packets counted" true (List.mem_assoc "app" packets);
  Alcotest.(check bool) "notices counted" true (List.mem_assoc "notice" packets)

let test_busy_gating_serializes_node () =
  (* With a large per-delivery cost, a node processes back-to-back arrivals
     sequentially: makespan reflects the serialized work. *)
  let timing = { Util.quiet_timing with t_proc = 10. } in
  let c =
    Cluster.create
      ~config:(Config.k_optimistic ~timing ~n:2 ~k:2 ())
      ~app:Counter.app ~horizon:500. ~auto_timers:false ()
  in
  for _ = 1 to 5 do
    Cluster.inject_at c ~time:1. ~dst:0 (Counter.Add 1)
  done;
  Cluster.run c;
  Alcotest.(check bool) "serialized work visible in makespan" true
    (Cluster.now c >= 41.);
  let st : Counter.state = Node.app_state (Cluster.node c 0) in
  Alcotest.(check int) "all processed" 5 st.total

let suite =
  [
    Alcotest.test_case "inject and run" `Quick test_inject_and_run;
    Alcotest.test_case "forwarding crosses network" `Quick test_forwarding_crosses_network;
    Alcotest.test_case "crash/restart cycle" `Quick test_crash_restart_cycle;
    Alcotest.test_case "client retry recovers lost request" `Quick
      test_client_retry_recovers_lost_request;
    Alcotest.test_case "packets to down node held" `Quick test_packets_to_down_node_held;
    Alcotest.test_case "injection to down node retried" `Quick
      test_injection_to_down_node_retried;
    Alcotest.test_case "run_until is partial" `Quick test_run_until_is_partial;
    Alcotest.test_case "horizon stops run" `Quick test_horizon_stops_run;
    Alcotest.test_case "net override controls latency" `Quick test_net_override_controls_latency;
    Alcotest.test_case "fifo channels" `Quick test_fifo_channels;
    Alcotest.test_case "determinism across runs" `Quick test_determinism_across_runs;
    Alcotest.test_case "seed changes schedule" `Quick test_seed_changes_schedule;
    Alcotest.test_case "stats packets" `Quick test_stats_packets;
    Alcotest.test_case "busy gating serializes a node" `Quick test_busy_gating_serializes_node;
  ]
