(* Log and checkpoint garbage collection.

   The GC rule: a checkpoint with an empty dependency vector can never be
   rolled past, so everything before it (older checkpoints, the log
   prefix) is reclaimable; delivered identities are kept as stubs so
   duplicate suppression survives; a still-undelivered Requeued record
   blocks the boundary. *)

open Util
module Node = Recovery.Node
module Wire = Recovery.Wire
module Config = Recovery.Config
module Store = Storage.Stable_store
module D = Util.Driver

let counter = App_model.Counter_app.app

let gc_config ?(k = 4) ?(n = 4) () =
  let base = Config.k_optimistic ~timing:quiet_timing ~n ~k () in
  { base with Config.protocol = { base.Config.protocol with gc_logs = true } }

(* --- storage-level --- *)

let test_store_discard_prefix () =
  let s : (string, string, string) Store.t = Store.create () in
  List.iter (Store.append_volatile s) [ "a"; "b"; "c"; "d" ];
  ignore (Store.flush s : int);
  Alcotest.(check int) "discards two" 2 (Store.discard_log_prefix s ~before:2);
  Alcotest.(check int) "logical length unchanged" 4 (Store.stable_log_length s);
  Alcotest.(check int) "base moved" 2 (Store.log_base s);
  Alcotest.(check int) "physical count" 2 (Store.live_log_records s);
  Alcotest.(check (list string)) "suffix readable" [ "c"; "d" ]
    (Store.stable_log_from s ~pos:2);
  Alcotest.(check int) "idempotent" 0 (Store.discard_log_prefix s ~before:1);
  Alcotest.check_raises "reading into the discarded prefix fails"
    (Invalid_argument "Stable_store.stable_log_from: position out of range")
    (fun () -> ignore (Store.stable_log_from s ~pos:0))

let test_store_grow_after_gc () =
  let s : (string, string, string) Store.t = Store.create () in
  List.iter (Store.append_volatile s) [ "a"; "b" ];
  ignore (Store.flush s : int);
  ignore (Store.discard_log_prefix s ~before:2 : int);
  Store.append_volatile s "c";
  ignore (Store.flush s : int);
  Alcotest.(check (list string)) "positions stay consistent" [ "c" ]
    (Store.stable_log_from s ~pos:2);
  Alcotest.(check int) "length" 3 (Store.stable_log_length s)

let test_store_prune_checkpoints () =
  let s : (string, string, string) Store.t = Store.create () in
  List.iter (Store.save_checkpoint s) [ "c1"; "c2"; "c3" ];
  Alcotest.(check int) "two dropped" 2 (Store.prune_checkpoints s ~keep_latest:1);
  Alcotest.(check (list string)) "latest kept" [ "c3" ] (Store.checkpoints s);
  Alcotest.check_raises "must keep one"
    (Invalid_argument "Stable_store.prune_checkpoints: must keep at least one")
    (fun () -> ignore (Store.prune_checkpoints s ~keep_latest:0))

(* --- node-level --- *)

let test_gc_reclaims_after_clean_checkpoint () =
  let d = D.make (gc_config ()) counter in
  for seq = 1 to 8 do
    D.inject d ~seq (App_model.Counter_app.Add seq)
  done;
  D.checkpoint d;
  (* All eight deliveries are stable and the vector is empty after
     Corollary 2: the whole prefix is reclaimable. *)
  Alcotest.(check int) "log reclaimed" 0 (Node.live_log_records d.node);
  Alcotest.(check int) "logical length preserved" 8 (Node.stable_log_length d.node);
  Alcotest.(check int) "metric" 8 (Node.metrics d.node).gc_records

let test_gc_disabled_by_default () =
  let d = D.make (counter_config ()) counter in
  for seq = 1 to 8 do
    D.inject d ~seq (App_model.Counter_app.Add seq)
  done;
  D.checkpoint d;
  Alcotest.(check int) "nothing reclaimed" 8 (Node.live_log_records d.node)

let test_gc_blocked_by_risky_vector () =
  let d = D.make (gc_config ()) counter in
  (* A dependency on P1's non-stable interval keeps the vector non-empty:
     the checkpoint might be rolled past, so nothing may be collected. *)
  D.packet d
    (Wire.App
       (D.app_msg ~src:1 ~dst:0 ~send_interval:(e ~inc:0 ~sii:5)
          ~dep:[ (1, e ~inc:0 ~sii:5) ]
          (App_model.Counter_app.Add 1)));
  D.checkpoint d;
  Alcotest.(check int) "not reclaimed" 1 (Node.live_log_records d.node);
  (* Once P1's interval is known stable, the next checkpoint collects. *)
  D.packet d (D.notice_packet ~from_:1 ~rows:[ (1, [ e ~inc:0 ~sii:5 ]) ]);
  D.checkpoint d;
  Alcotest.(check int) "reclaimed after stability" 0 (Node.live_log_records d.node)

let test_gc_survives_crash_with_dedupe () =
  (* The regression GC must not introduce: after collecting a delivery's
     record and crashing, a retransmitted copy must still be recognized as
     a duplicate (via the checkpoint's stub set). *)
  let d = D.make (gc_config ()) counter in
  let m =
    D.app_msg ~src:1 ~dst:0 ~send_interval:(e ~inc:0 ~sii:5)
      ~dep:[ (1, e ~inc:0 ~sii:5) ]
      (App_model.Counter_app.Add 3)
  in
  D.packet d (Wire.App m);
  D.packet d (D.notice_packet ~from_:1 ~rows:[ (1, [ e ~inc:0 ~sii:5 ]) ]);
  D.checkpoint d;
  Alcotest.(check int) "record collected" 0 (Node.live_log_records d.node);
  D.crash d;
  D.restart d;
  D.packet d (Wire.App m);
  Alcotest.(check int) "retransmission recognized via stub" 1
    (Node.metrics d.node).duplicates_dropped;
  let st : App_model.Counter_app.state = Node.app_state d.node in
  Alcotest.(check int) "applied exactly once" 3 st.total

let test_gc_restart_replays_only_retained () =
  let d = D.make (gc_config ()) counter in
  for seq = 1 to 5 do
    D.inject d ~seq (App_model.Counter_app.Add seq)
  done;
  D.checkpoint d (* collects all five *);
  D.inject d ~seq:6 (App_model.Counter_app.Add 60);
  D.flush d;
  D.crash d;
  D.restart d;
  let st : App_model.Counter_app.state = Node.app_state d.node in
  Alcotest.(check int) "checkpoint state + retained suffix" 75 st.total;
  Alcotest.(check int) "only the suffix was replayed" 1 (Node.metrics d.node).replayed

let test_gc_blocked_by_undelivered_requeue () =
  (* Build a Requeued record whose message is re-delivered, then force a
     second checkpoint: the requeue has been delivered again by then, so
     GC may proceed; the interesting property is simply that state
     survives a crash afterwards. *)
  let d = D.make (gc_config ()) counter in
  D.packet d
    (Wire.App
       (D.app_msg ~src:1 ~dst:0 ~send_interval:(e ~inc:0 ~sii:5)
          ~dep:[ (1, e ~inc:0 ~sii:5) ]
          (App_model.Counter_app.Add 100)));
  D.inject d ~seq:1 (App_model.Counter_app.Add 7);
  D.packet d (Wire.Ann (D.ann ~from_:1 ~ending:(e ~inc:0 ~sii:4) ()));
  D.checkpoint d;
  D.crash d;
  D.restart d;
  let st : App_model.Counter_app.state = Node.app_state d.node in
  Alcotest.(check int) "client effect survives GC + crash" 7 st.total

let test_gc_cluster_run_equivalent () =
  (* A full cluster run with GC must behave identically to one without
     (GC is storage-only), and still satisfy the oracle. *)
  let n = 6 in
  let run gc =
    let base = Recovery.Config.k_optimistic ~n ~k:2 () in
    let config =
      { base with Recovery.Config.protocol = { base.Recovery.Config.protocol with gc_logs = gc } }
    in
    let c =
      Harness.Cluster.create ~config ~app:App_model.Telecom_app.app ~seed:77
        ~horizon:3000. ()
    in
    let rng = Sim.Rng.create 78 in
    Harness.Workload.telecom c ~rng ~calls:40 ~hops:3 ~start:10. ~rate:1.5;
    Harness.Cluster.crash_at c ~time:40. ~pid:2;
    Harness.Cluster.run c;
    let report = Harness.Oracle.check ~k:2 ~n (Harness.Cluster.trace c) in
    if not (Harness.Oracle.ok report) then
      Alcotest.failf "oracle: %a" Harness.Oracle.pp_report report;
    let s = Harness.Cluster.stats c in
    let retained =
      Array.fold_left (fun acc nd -> acc + Node.live_log_records nd) 0
        (Harness.Cluster.nodes c)
    in
    (s.outputs_committed, retained)
  in
  let outputs_gc, retained_gc = run true in
  let outputs_plain, retained_plain = run false in
  (* GC adds a (costed) stable write per collection, which can perturb event
     timing, so only timing-independent facts are compared: every call still
     connects, the oracle passes (checked inside [run]), and storage is
     actually reclaimed. *)
  Alcotest.(check int) "all calls connect with GC" 40 outputs_gc;
  Alcotest.(check int) "all calls connect without GC" 40 outputs_plain;
  Alcotest.(check bool)
    (Fmt.str "storage reclaimed (%d < %d)" retained_gc retained_plain)
    true
    (retained_gc < retained_plain)

let suite =
  [
    Alcotest.test_case "store: discard prefix" `Quick test_store_discard_prefix;
    Alcotest.test_case "store: grow after GC" `Quick test_store_grow_after_gc;
    Alcotest.test_case "store: prune checkpoints" `Quick test_store_prune_checkpoints;
    Alcotest.test_case "reclaims after clean checkpoint" `Quick
      test_gc_reclaims_after_clean_checkpoint;
    Alcotest.test_case "disabled by default" `Quick test_gc_disabled_by_default;
    Alcotest.test_case "blocked by risky vector" `Quick test_gc_blocked_by_risky_vector;
    Alcotest.test_case "dedupe survives GC + crash" `Quick test_gc_survives_crash_with_dedupe;
    Alcotest.test_case "restart replays only retained suffix" `Quick
      test_gc_restart_replays_only_retained;
    Alcotest.test_case "requeue + GC + crash" `Quick test_gc_blocked_by_undelivered_requeue;
    Alcotest.test_case "cluster run equivalent under GC" `Slow test_gc_cluster_run_equivalent;
  ]
