(* Direct dependency tracking (the Section 5 comparator).

   Failure-free operation is fully supported: one piggybacked entry per
   message, commit-time transitive-dependency assembly by query/reply.
   Failure recovery with only local information is demonstrably divergent
   (the storm test below) — the reason the direct-tracking literature uses
   coordinated recovery. *)

open Depend
open Util
module Node = Recovery.Node
module Wire = Recovery.Wire
module Config = Recovery.Config
module Cluster = Harness.Cluster
module D = Util.Driver

let counter = App_model.Counter_app.app

let direct_config ?(n = 4) () =
  Config.direct_dependency ~timing:quiet_timing ~n ()

let test_preset_validation () =
  let c = Config.direct_dependency ~n:4 () in
  Alcotest.(check bool) "announces all rollbacks" true
    c.Config.protocol.announce_all_rollbacks;
  let bad = { c with Config.protocol = { c.Config.protocol with k = 2 } } in
  Alcotest.(check bool) "k < n rejected" true
    (match Config.validate bad with Error _ -> true | Ok _ -> false);
  let bad = { c with Config.protocol = { c.Config.protocol with gc_logs = true } } in
  Alcotest.(check bool) "gc rejected" true
    (match Config.validate bad with Error _ -> true | Ok _ -> false)

let test_wire_carries_one_entry () =
  let d = D.make (direct_config ()) counter in
  (* Acquire what would be a multi-entry transitive dependency. *)
  D.packet d
    (Wire.App
       (D.app_msg ~src:1 ~dst:0 ~send_interval:(e ~inc:0 ~sii:5)
          ~dep:[ (1, e ~inc:0 ~sii:5) ]
          (App_model.Counter_app.Forward { dst = 2; amount = 1 })));
  match D.released d with
  | [ m ] ->
    Alcotest.(check (list (pair int entry)))
      "only the sender's own interval travels"
      [ (0, e ~inc:0 ~sii:2) ]
      m.Wire.dep
  | l -> Alcotest.failf "expected 1 release, got %d" (List.length l)

let test_arrival_orphan_check_direct_only () =
  let d = D.make (direct_config ()) counter in
  D.packet d (Wire.Ann { Wire.from_ = 1; ending = e ~inc:0 ~sii:4; failure = true });
  (* directly orphan: sender interval beyond the announced ending *)
  D.packet d
    (Wire.App
       (D.app_msg ~src:1 ~dst:0 ~send_interval:(e ~inc:0 ~sii:6)
          ~dep:[ (1, e ~inc:0 ~sii:6) ]
          (App_model.Counter_app.Add 1)));
  Alcotest.(check int) "direct orphan discarded" 1
    (Node.metrics d.node).orphans_discarded

let test_direct_rollback_on_announcement () =
  let d = D.make (direct_config ()) counter in
  D.packet d
    (Wire.App
       (D.app_msg ~src:1 ~dst:0 ~send_interval:(e ~inc:0 ~sii:5)
          ~dep:[ (1, e ~inc:0 ~sii:5) ]
          (App_model.Counter_app.Add 50)));
  D.clear d;
  D.packet d (Wire.Ann { Wire.from_ = 1; ending = e ~inc:0 ~sii:4; failure = true });
  Alcotest.(check int) "rolled back" 1 (Node.metrics d.node).induced_rollbacks;
  let st : App_model.Counter_app.state = Node.app_state d.node in
  Alcotest.(check int) "state reverted" 0 st.total;
  (* direct tracking must announce its own rollback for the cascade *)
  Alcotest.(check int) "cascade announcement" 1 (List.length (D.announcements d))

let test_dep_query_answered () =
  let d = D.make (direct_config ()) counter in
  D.inject d ~seq:1 (App_model.Counter_app.Add 1) (* starts (0,2) *);
  D.clear d;
  D.packet d
    (Wire.Dep_query { from_ = 2; intervals = [ e ~inc:0 ~sii:2; e ~inc:0 ~sii:9 ] });
  let replies =
    List.concat_map
      (function
        | Node.Unicast { dst = 2; packet = Wire.Dep_reply { infos; _ } } -> infos
        | Node.Unicast _ | Node.Broadcast _ -> [])
      (D.actions d)
  in
  (match List.assoc_opt (e ~inc:0 ~sii:2) replies with
  | Some (Wire.Info { stable; parents }) ->
    Alcotest.(check bool) "not yet stable" false stable;
    Alcotest.(check (list (pair int entry))) "parent is the initial interval"
      [ (0, e ~inc:0 ~sii:1) ] parents
  | Some Wire.Gone | None -> Alcotest.fail "expected Info for (0,2)");
  match List.assoc_opt (e ~inc:0 ~sii:9) replies with
  | Some Wire.Gone -> ()
  | Some (Wire.Info _) | None -> Alcotest.fail "unknown interval must be Gone"

let test_initial_interval_answerable () =
  let d = D.make (direct_config ()) counter in
  D.clear d;
  D.packet d (Wire.Dep_query { from_ = 1; intervals = [ Entry.initial ] });
  let replies =
    List.concat_map
      (function
        | Node.Unicast { packet = Wire.Dep_reply { infos; _ }; _ } -> infos
        | Node.Unicast _ | Node.Broadcast _ -> [])
      (D.actions d)
  in
  match List.assoc_opt Entry.initial replies with
  | Some (Wire.Info { stable = true; parents = [] }) -> ()
  | _ -> Alcotest.fail "the initial interval is stable with no parents"

let run_telecom config ~seed ~calls =
  let c =
    Cluster.create ~config ~app:App_model.Telecom_app.app ~seed ~horizon:4000. ()
  in
  let rng = Sim.Rng.create (seed * 13) in
  Harness.Workload.telecom c ~rng ~calls ~hops:3 ~start:10. ~rate:1.5;
  Cluster.run c;
  c

let test_failure_free_end_to_end () =
  let n = 6 in
  let c = run_telecom (Config.direct_dependency ~n ()) ~seed:5 ~calls:40 in
  let s = Cluster.stats c in
  Alcotest.(check int) "all calls connect" 40 s.outputs_committed;
  Alcotest.(check (float 0.001)) "one entry per message" 1.
    (Sim.Summary.mean s.wire_vector_size);
  Alcotest.(check bool) "assembly traffic present" true
    (List.mem_assoc "dep-query" s.packets);
  let report = Harness.Oracle.check ~k:n ~n (Cluster.trace c) in
  if not (Harness.Oracle.ok report) then
    Alcotest.failf "oracle: %a" Harness.Oracle.pp_report report

let test_commit_needs_assembly () =
  (* With notices disabled entirely, transitive stability knowledge never
     spreads — yet direct mode still commits, because assembly queries
     fetch stability point-to-point. *)
  let n = 4 in
  let base = Config.direct_dependency ~n () in
  let config =
    {
      base with
      Config.timing =
        {
          base.Config.timing with
          flush_interval = Some 20.;
          notice_interval = Some 30.;
        };
    }
  in
  let c = run_telecom config ~seed:9 ~calls:10 in
  Alcotest.(check int) "commits via assembly" 10 (Cluster.stats c).outputs_committed

let test_recovery_storm_demonstration () =
  (* The cautionary experiment: a single crash under uncoordinated direct
     tracking triggers far more rollbacks than the transitive protocol
     (which discards in-flight transitive orphans at arrival).  This is the
     behaviour that motivates coordinated recovery in the direct-tracking
     literature. *)
  let n = 6 in
  let rollbacks config =
    let c =
      Cluster.create ~config ~app:App_model.Telecom_app.app ~seed:11 ~horizon:600. ()
    in
    let rng = Sim.Rng.create 12 in
    Harness.Workload.telecom c ~rng ~calls:40 ~hops:3 ~start:10. ~rate:1.5;
    Cluster.crash_at c ~time:30. ~pid:2;
    Cluster.run c;
    (Cluster.stats c).induced_rollbacks
  in
  let direct = rollbacks (Config.direct_dependency ~n ()) in
  let transitive = rollbacks (Config.optimistic ~n ()) in
  Alcotest.(check bool)
    (Fmt.str "direct cascades dwarf transitive rollbacks (%d > 4x%d)" direct transitive)
    true
    (direct > 4 * Stdlib.max 1 transitive)

let suite =
  [
    Alcotest.test_case "preset validation" `Quick test_preset_validation;
    Alcotest.test_case "wire carries one entry" `Quick test_wire_carries_one_entry;
    Alcotest.test_case "arrival orphan check is direct-only" `Quick
      test_arrival_orphan_check_direct_only;
    Alcotest.test_case "rollback + cascade announcement" `Quick
      test_direct_rollback_on_announcement;
    Alcotest.test_case "dep query answered" `Quick test_dep_query_answered;
    Alcotest.test_case "initial interval answerable" `Quick test_initial_interval_answerable;
    Alcotest.test_case "failure-free end to end" `Slow test_failure_free_end_to_end;
    Alcotest.test_case "commit needs assembly" `Slow test_commit_needs_assembly;
    Alcotest.test_case "recovery storm demonstration" `Slow
      test_recovery_storm_demonstration;
  ]
