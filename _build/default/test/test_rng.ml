(* Deterministic RNG substrate. *)

let test_determinism () =
  let a = Sim.Rng.create 42 and b = Sim.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Rng.bits64 a) (Sim.Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Sim.Rng.create 1 and b = Sim.Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Sim.Rng.bits64 a <> Sim.Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let test_copy_preserves_state () =
  let a = Sim.Rng.create 7 in
  ignore (Sim.Rng.bits64 a);
  let b = Sim.Rng.copy a in
  Alcotest.(check int64) "copies aligned" (Sim.Rng.bits64 a) (Sim.Rng.bits64 b)

let test_split_independent () =
  let a = Sim.Rng.create 7 in
  let b = Sim.Rng.split a in
  let xs = List.init 20 (fun _ -> Sim.Rng.bits64 a) in
  let ys = List.init 20 (fun _ -> Sim.Rng.bits64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_int_bounds =
  Util.qtest "int stays in [0, bound)" QCheck2.Gen.(pair int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Sim.Rng.create seed in
      let v = Sim.Rng.int rng bound in
      v >= 0 && v < bound)

let test_int_in_bounds =
  Util.qtest "int_in stays in [lo, hi]"
    QCheck2.Gen.(triple int (int_range (-50) 50) (int_bound 100))
    (fun (seed, lo, extent) ->
      let rng = Sim.Rng.create seed in
      let hi = lo + extent in
      let v = Sim.Rng.int_in rng ~lo ~hi in
      v >= lo && v <= hi)

let test_float_bounds =
  Util.qtest "float stays in [0, bound)" QCheck2.Gen.(pair int (int_range 1 100))
    (fun (seed, bound) ->
      let rng = Sim.Rng.create seed in
      let bound = float_of_int bound in
      let v = Sim.Rng.float rng bound in
      v >= 0. && v < bound)

let test_int_never_negative () =
  (* Regression: a 63-bit logical shift overflowed into OCaml's sign bit,
     yielding negative draws roughly half the time. *)
  let rng = Sim.Rng.create 23 in
  for _ = 1 to 10_000 do
    let v = Sim.Rng.int rng 8 in
    if v < 0 || v >= 8 then Alcotest.failf "draw %d out of range" v
  done

let test_exponential_positive () =
  let rng = Sim.Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Sim.Rng.exponential rng ~mean:3. in
    if v < 0. then Alcotest.fail "negative exponential sample"
  done

let test_exponential_mean () =
  let rng = Sim.Rng.create 5 in
  let total = ref 0. in
  let samples = 20_000 in
  for _ = 1 to samples do
    total := !total +. Sim.Rng.exponential rng ~mean:3.
  done;
  let mean = !total /. float_of_int samples in
  if mean < 2.8 || mean > 3.2 then Alcotest.failf "mean %.3f too far from 3" mean

let test_uniform_distribution () =
  (* Chi-square-ish sanity: each of 8 buckets should get roughly 1/8. *)
  let rng = Sim.Rng.create 11 in
  let buckets = Array.make 8 0 in
  let samples = 80_000 in
  for _ = 1 to samples do
    let v = Sim.Rng.int rng 8 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i count ->
      let frac = float_of_int count /. float_of_int samples in
      if frac < 0.115 || frac > 0.135 then
        Alcotest.failf "bucket %d has fraction %.4f" i frac)
    buckets

let test_bernoulli_extremes () =
  let rng = Sim.Rng.create 3 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never true" false (Sim.Rng.bernoulli rng ~p:0.);
    Alcotest.(check bool) "p=1 always true" true (Sim.Rng.bernoulli rng ~p:1.)
  done

let test_geometric_p1 () =
  let rng = Sim.Rng.create 3 in
  Alcotest.(check int) "p=1 gives 0" 0 (Sim.Rng.geometric rng ~p:1.)

let test_pick_other =
  Util.qtest "pick_other avoids self"
    QCheck2.Gen.(triple int (int_range 2 16) (int_bound 15))
    (fun (seed, n, self) ->
      let self = self mod n in
      let rng = Sim.Rng.create seed in
      let v = Sim.Rng.pick_other rng ~n ~self in
      v >= 0 && v < n && v <> self)

let test_shuffle_is_permutation =
  Util.qtest "shuffle permutes" QCheck2.Gen.(pair int (list_size (int_bound 20) int))
    (fun (seed, xs) ->
      let rng = Sim.Rng.create seed in
      let a = Array.of_list xs in
      Sim.Rng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy preserves state" `Quick test_copy_preserves_state;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "int never negative (regression)" `Quick test_int_never_negative;
    Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
    Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
    Alcotest.test_case "uniform distribution" `Slow test_uniform_distribution;
    Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
    Alcotest.test_case "geometric p=1" `Quick test_geometric_p1;
    test_int_bounds;
    test_int_in_bounds;
    test_float_bounds;
    test_pick_other;
    test_shuffle_is_permutation;
  ]
