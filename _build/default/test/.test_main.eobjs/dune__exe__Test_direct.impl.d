test/test_direct.ml: Alcotest App_model Depend Entry Fmt Harness List Recovery Sim Stdlib Util
