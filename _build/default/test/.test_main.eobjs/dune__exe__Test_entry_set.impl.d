test/test_entry_set.ml: Alcotest Depend Entry Entry_set Int List QCheck2 Stdlib Util
