test/test_node.ml: Alcotest App_model Dep_vector Depend Entry Entry_set List Recovery Sim Util
