test/test_fuzz.ml: App_model Dep_vector Depend Entry Fmt List QCheck2 Recovery Util
