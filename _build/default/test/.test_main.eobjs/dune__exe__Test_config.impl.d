test/test_config.ml: Alcotest List Recovery
