test/test_heap.ml: Alcotest Float Int List QCheck2 Sim Util
