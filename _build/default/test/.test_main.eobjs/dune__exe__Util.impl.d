test/util.ml: Alcotest Dep_vector Depend Entry Entry_set List QCheck2 QCheck_alcotest Recovery
