test/test_node_edge.ml: Alcotest App_model Depend Entry Entry_set List Recovery Util
