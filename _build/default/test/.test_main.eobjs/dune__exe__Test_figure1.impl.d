test/test_figure1.ml: Alcotest Harness List
