test/test_storage.ml: Alcotest List Storage
