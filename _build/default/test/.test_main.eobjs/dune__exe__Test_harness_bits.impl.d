test/test_harness_bits.ml: Alcotest App_model Float Fmt Harness List Recovery Sim String Util
