test/test_runtime.ml: Alcotest App_model Fun Harness List Recovery Runtime Thread
