test/test_rng.ml: Alcotest Array List QCheck2 Sim Util
