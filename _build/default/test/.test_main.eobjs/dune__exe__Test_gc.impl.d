test/test_gc.ml: Alcotest App_model Array Fmt Harness List Recovery Sim Storage Util
