test/test_entry.ml: Alcotest Depend Entry Fmt QCheck2 Util
