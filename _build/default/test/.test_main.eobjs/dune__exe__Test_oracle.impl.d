test/test_oracle.ml: Alcotest Depend Entry Harness Recovery Util
