test/test_dep_vector.ml: Alcotest Dep_vector Depend Entry Int List Multi_dep QCheck2 Util
