test/test_apps.ml: Alcotest App_model Chatter_app Counter_app Fmt Hashing Kvstore_app List Pipeline_app QCheck2 Script_app Telecom_app Util
