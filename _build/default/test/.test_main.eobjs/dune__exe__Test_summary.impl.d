test/test_summary.ml: Alcotest Float List QCheck2 Sim Util
