test/test_cluster.ml: Alcotest App_model Harness List Recovery Util
