test/test_integration.ml: Alcotest App_model Array Fmt Harness List QCheck2 Recovery Sim Util
