test/test_bank.ml: Alcotest App_model Array Harness List Recovery Sim String
