(* Streaming summaries. *)

let close a b = Float.abs (a -. b) < 1e-9

let test_empty () =
  let s = Sim.Summary.create () in
  Alcotest.(check int) "count" 0 (Sim.Summary.count s);
  Alcotest.(check (float 0.0)) "mean" 0. (Sim.Summary.mean s);
  Alcotest.(check bool) "min nan" true (Float.is_nan (Sim.Summary.min s));
  Alcotest.(check bool) "max nan" true (Float.is_nan (Sim.Summary.max s));
  Alcotest.(check bool) "percentile nan" true
    (Float.is_nan (Sim.Summary.percentile s 50.))

let test_single () =
  let s = Sim.Summary.create () in
  Sim.Summary.add s 3.5;
  Alcotest.(check (float 0.0)) "mean" 3.5 (Sim.Summary.mean s);
  Alcotest.(check (float 0.0)) "median" 3.5 (Sim.Summary.median s);
  Alcotest.(check (float 0.0)) "stddev" 0. (Sim.Summary.stddev s)

let test_mean_matches_naive =
  Util.qtest "mean matches naive computation"
    QCheck2.Gen.(list_size (int_range 1 100) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Sim.Summary.create () in
      List.iter (Sim.Summary.add s) xs;
      let naive = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
      close (Sim.Summary.mean s) naive)

let test_minmax =
  Util.qtest "min/max match sorting"
    QCheck2.Gen.(list_size (int_range 1 100) (float_range (-100.) 100.))
    (fun xs ->
      let s = Sim.Summary.create () in
      List.iter (Sim.Summary.add s) xs;
      let sorted = List.sort Float.compare xs in
      close (Sim.Summary.min s) (List.hd sorted)
      && close (Sim.Summary.max s) (List.nth sorted (List.length sorted - 1)))

let test_percentile_nearest_rank () =
  let s = Sim.Summary.create () in
  List.iter (Sim.Summary.add_int s) [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  Alcotest.(check (float 0.0)) "p50" 5. (Sim.Summary.percentile s 50.);
  Alcotest.(check (float 0.0)) "p10" 1. (Sim.Summary.percentile s 10.);
  Alcotest.(check (float 0.0)) "p100" 10. (Sim.Summary.percentile s 100.);
  Alcotest.(check (float 0.0)) "p0 clamps" 1. (Sim.Summary.percentile s 0.)

let test_percentile_monotone =
  Util.qtest "percentiles are monotone"
    QCheck2.Gen.(list_size (int_range 1 60) (float_range 0. 100.))
    (fun xs ->
      let s = Sim.Summary.create () in
      List.iter (Sim.Summary.add s) xs;
      let ps = [ 1.; 25.; 50.; 75.; 99. ] in
      let values = List.map (Sim.Summary.percentile s) ps in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      monotone values)

let test_stddev () =
  let s = Sim.Summary.create () in
  List.iter (Sim.Summary.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check (float 1e-9)) "population stddev" 2. (Sim.Summary.stddev s)

let test_merge =
  Util.qtest "merge equals concatenation"
    QCheck2.Gen.(
      pair
        (list_size (int_bound 40) (float_range (-10.) 10.))
        (list_size (int_bound 40) (float_range (-10.) 10.)))
    (fun (xs, ys) ->
      let a = Sim.Summary.create () and b = Sim.Summary.create () in
      List.iter (Sim.Summary.add a) xs;
      List.iter (Sim.Summary.add b) ys;
      let merged = Sim.Summary.merge a b in
      let all = Sim.Summary.create () in
      List.iter (Sim.Summary.add all) (xs @ ys);
      Sim.Summary.count merged = Sim.Summary.count all
      && close (Sim.Summary.mean merged) (Sim.Summary.mean all)
      && (Sim.Summary.count all = 0
         || close (Sim.Summary.median merged) (Sim.Summary.median all)))

let test_total () =
  let s = Sim.Summary.create () in
  List.iter (Sim.Summary.add s) [ 1.; 2.; 3. ];
  Alcotest.(check (float 1e-9)) "total" 6. (Sim.Summary.total s)

let test_cache_invalidation () =
  (* Percentile caches the sorted array; adding must invalidate it. *)
  let s = Sim.Summary.create () in
  Sim.Summary.add s 10.;
  Alcotest.(check (float 0.0)) "before" 10. (Sim.Summary.median s);
  Sim.Summary.add s 0.;
  Alcotest.(check (float 0.0)) "after add" 0. (Sim.Summary.median s)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "single sample" `Quick test_single;
    Alcotest.test_case "nearest-rank percentiles" `Quick test_percentile_nearest_rank;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "total" `Quick test_total;
    Alcotest.test_case "cache invalidation" `Quick test_cache_invalidation;
    test_mean_matches_naive;
    test_minmax;
    test_percentile_monotone;
    test_merge;
  ]
