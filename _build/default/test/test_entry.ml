(* State-interval identifiers: the lexicographic order everything rests on. *)

open Depend
open Util

let test_initial () =
  Alcotest.check entry "initial is (0,1)" (e ~inc:0 ~sii:1) Entry.initial

let test_lexicographic () =
  Alcotest.(check bool) "incarnation dominates" true
    (Entry.lt (e ~inc:0 ~sii:100) (e ~inc:1 ~sii:1));
  Alcotest.(check bool) "index within incarnation" true
    (Entry.lt (e ~inc:2 ~sii:3) (e ~inc:2 ~sii:4));
  Alcotest.(check bool) "equal not lt" false (Entry.lt (e ~inc:1 ~sii:1) (e ~inc:1 ~sii:1))

let test_order_total =
  qtest "compare is a total order (antisymmetric, transitive)"
    QCheck2.Gen.(triple gen_entry gen_entry gen_entry)
    (fun (a, b, c) ->
      Entry.compare a b = -Entry.compare b a
      && (not (Entry.compare a b <= 0 && Entry.compare b c <= 0)
         || Entry.compare a c <= 0))

let test_max_min =
  qtest "max/min agree with compare" QCheck2.Gen.(pair gen_entry gen_entry)
    (fun (a, b) ->
      let mx = Entry.max a b and mn = Entry.min a b in
      Entry.le mn mx
      && (Entry.equal mx a || Entry.equal mx b)
      && (Entry.equal mn a || Entry.equal mn b)
      && Entry.le a mx && Entry.le b mx && Entry.le mn a && Entry.le mn b)

let test_next_interval () =
  Alcotest.check entry "next interval" (e ~inc:3 ~sii:8)
    (Entry.next_interval (e ~inc:3 ~sii:7))

let test_next_incarnation () =
  (* The current.inc++; current.sii++ step of Restart/Rollback. *)
  Alcotest.check entry "next incarnation" (e ~inc:1 ~sii:5)
    (Entry.next_incarnation (e ~inc:0 ~sii:4))

let test_pp () =
  Alcotest.(check string) "paper notation" "(0,4)" (Entry.to_string (e ~inc:0 ~sii:4));
  Alcotest.(check string) "subscripted" "(2,6)_3"
    (Fmt.str "%a" (Entry.pp_at 3) (e ~inc:2 ~sii:6))

let suite =
  [
    Alcotest.test_case "initial" `Quick test_initial;
    Alcotest.test_case "lexicographic order" `Quick test_lexicographic;
    Alcotest.test_case "next_interval" `Quick test_next_interval;
    Alcotest.test_case "next_incarnation" `Quick test_next_incarnation;
    Alcotest.test_case "printing" `Quick test_pp;
    test_order_total;
    test_max_min;
  ]
