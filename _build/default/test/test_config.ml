(* Configuration presets and validation. *)

module Config = Recovery.Config

let ok = function Ok _ -> true | Error _ -> false

let test_presets_valid () =
  List.iter
    (fun (name, c) ->
      Alcotest.(check bool) name true (ok (Config.validate c)))
    [
      ("pessimistic", Config.pessimistic ~n:4 ());
      ("optimistic", Config.optimistic ~n:4 ());
      ("k=2", Config.k_optimistic ~n:4 ~k:2 ());
      ("strom-yemini", Config.strom_yemini ~n:4 ());
      ("damani-garg", Config.damani_garg ~n:4 ());
    ]

let test_k_bounds () =
  Alcotest.check_raises "k negative"
    (Invalid_argument "Config: k must be in [0, n]") (fun () ->
      ignore (Config.k_optimistic ~n:4 ~k:(-1) ()));
  Alcotest.check_raises "k above n"
    (Invalid_argument "Config: k must be in [0, n]") (fun () ->
      ignore (Config.k_optimistic ~n:4 ~k:5 ()))

let test_small_k_needs_commit_tracking () =
  let c = Config.k_optimistic ~n:4 ~k:2 () in
  let bad =
    { c with Config.protocol = { c.Config.protocol with commit_tracking = false } }
  in
  Alcotest.(check bool) "rejected" false (ok (Config.validate bad))

let test_wait_rule_needs_all_announcements () =
  let c = Config.strom_yemini ~n:4 () in
  let bad =
    {
      c with
      Config.protocol = { c.Config.protocol with announce_all_rollbacks = false };
    }
  in
  Alcotest.(check bool) "rejected" false (ok (Config.validate bad))

let test_n_positive () =
  let c = Config.optimistic ~n:4 () in
  Alcotest.(check bool) "n=0 rejected" false (ok (Config.validate { c with Config.n = 0 }))

let test_describe () =
  Alcotest.(check string) "pessimistic" "pessimistic (sync logging, K=0)"
    (Config.describe (Config.pessimistic ~n:4 ()));
  Alcotest.(check string) "optimistic" "optimistic (K=N)"
    (Config.describe (Config.optimistic ~n:4 ()));
  Alcotest.(check string) "2-optimistic" "2-optimistic"
    (Config.describe (Config.k_optimistic ~n:4 ~k:2 ()))

let test_sy_preset_shape () =
  let c = Config.strom_yemini ~n:4 () in
  Alcotest.(check bool) "no commit tracking" false c.Config.protocol.commit_tracking;
  Alcotest.(check bool) "announces all" true c.Config.protocol.announce_all_rollbacks;
  Alcotest.(check bool) "fifo channels" true c.Config.timing.fifo;
  Alcotest.(check bool) "wait rule" true
    (c.Config.protocol.delivery_rule = Config.Wait_announcement)

let suite =
  [
    Alcotest.test_case "presets valid" `Quick test_presets_valid;
    Alcotest.test_case "k bounds" `Quick test_k_bounds;
    Alcotest.test_case "k<n needs commit tracking" `Quick test_small_k_needs_commit_tracking;
    Alcotest.test_case "wait rule needs announcements" `Quick
      test_wait_rule_needs_all_announcements;
    Alcotest.test_case "n positive" `Quick test_n_positive;
    Alcotest.test_case "describe" `Quick test_describe;
    Alcotest.test_case "strom-yemini preset shape" `Quick test_sy_preset_shape;
  ]
