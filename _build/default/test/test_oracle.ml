(* The causality oracle itself: it must accept correct histories and reject
   fabricated incorrect ones — otherwise its green light on the protocol
   means nothing. *)

open Depend
open Util
module Trace = Recovery.Trace
module Wire = Recovery.Wire

let n = 3

let id ~origin ~interval ?(idx = 0) () =
  { Wire.origin; origin_interval = interval; idx }

(* Build traces by hand.  Helper emits a fresh trace with initial intervals
   for all processes. *)
let fresh () =
  let tr = Trace.create () in
  for pid = 0 to n - 1 do
    Trace.add tr ~time:0.
      (Trace.Interval_started
         {
           pid;
           interval = Entry.initial;
           pred = None;
           by = None;
           sender_interval = None;
           digest = pid;
           replay = false;
         })
  done;
  tr

let start ?(replay = false) tr ~time ~pid ~interval ~pred ~by ~sender_interval ~digest =
  Trace.add tr ~time
    (Trace.Interval_started { pid; interval; pred; by; sender_interval; digest; replay })

let send tr ~time ~mid ~src ~dst ~send_interval =
  Trace.add tr ~time (Trace.Message_sent { id = mid; src; dst; send_interval })

let deliver tr ~time ~mid ~dst ~interval =
  Trace.add tr ~time (Trace.Message_delivered { id = mid; dst; interval })

let stable tr ~time ~pid ~upto =
  Trace.add tr ~time (Trace.Stability_advanced { pid; upto })

let crash tr ~time ~pid ~first_lost =
  Trace.add tr ~time (Trace.Crashed { pid; first_lost })

let restarted tr ~time ~pid ~ending ~new_current =
  Trace.add tr ~time
    (Trace.Restarted
       { pid; announced = { Wire.from_ = pid; ending; failure = true }; new_current })

(* A message from P0's (0,2) delivered at P1 starting (0,2)_1. *)
let simple_exchange tr =
  let m = id ~origin:0 ~interval:(e ~inc:0 ~sii:2) () in
  start tr ~time:1. ~pid:0 ~interval:(e ~inc:0 ~sii:2) ~pred:(Some Entry.initial)
    ~by:(Some (id ~origin:(-1) ~interval:(e ~inc:0 ~sii:1) ()))
    ~sender_interval:None ~digest:42;
  send tr ~time:1. ~mid:m ~src:0 ~dst:1 ~send_interval:(e ~inc:0 ~sii:2);
  Trace.add tr ~time:1.5 (Trace.Message_released { id = m; dep_size = 1; blocked = 0. });
  deliver tr ~time:2. ~mid:m ~dst:1 ~interval:(e ~inc:0 ~sii:2);
  start tr ~time:2. ~pid:1 ~interval:(e ~inc:0 ~sii:2) ~pred:(Some Entry.initial)
    ~by:(Some m) ~sender_interval:(Some (e ~inc:0 ~sii:2)) ~digest:7;
  m

let test_clean_history_accepted () =
  let tr = fresh () in
  ignore (simple_exchange tr : Wire.identity);
  let report = Harness.Oracle.check ~k:3 ~n tr in
  Alcotest.(check bool) "accepted" true (Harness.Oracle.ok report);
  Alcotest.(check int) "intervals counted" 5 report.Harness.Oracle.intervals

let test_replay_divergence_detected () =
  let tr = fresh () in
  ignore (simple_exchange tr : Wire.identity);
  (* replay of P1's (0,2) with a different digest: PWD broken *)
  start tr ~time:5. ~replay:true ~pid:1 ~interval:(e ~inc:0 ~sii:2)
    ~pred:(Some Entry.initial) ~by:None ~sender_interval:None ~digest:999;
  let report = Harness.Oracle.check ~n tr in
  Alcotest.(check bool) "rejected" false (Harness.Oracle.ok report)

let test_surviving_orphan_detected () =
  let tr = fresh () in
  ignore (simple_exchange tr : Wire.identity);
  (* P0 crashes losing (0,2); P1's (0,2) depends on it and is never rolled
     back. *)
  crash tr ~time:3. ~pid:0 ~first_lost:(Some (e ~inc:0 ~sii:2));
  restarted tr ~time:4. ~pid:0 ~ending:(e ~inc:0 ~sii:1)
    ~new_current:(e ~inc:1 ~sii:2);
  let report = Harness.Oracle.check ~n tr in
  Alcotest.(check bool) "orphan must be flagged" false (Harness.Oracle.ok report);
  Alcotest.(check int) "counted" 1 report.Harness.Oracle.orphans_at_end

let test_orphan_rolled_back_accepted () =
  let tr = fresh () in
  ignore (simple_exchange tr : Wire.identity);
  crash tr ~time:3. ~pid:0 ~first_lost:(Some (e ~inc:0 ~sii:2));
  restarted tr ~time:4. ~pid:0 ~ending:(e ~inc:0 ~sii:1)
    ~new_current:(e ~inc:1 ~sii:2);
  Trace.add tr ~time:5.
    (Trace.Rolled_back
       {
         pid = 1;
         restored = Entry.initial;
         first_undone = e ~inc:0 ~sii:2;
         new_current = e ~inc:1 ~sii:2;
         because = { Wire.from_ = 0; ending = e ~inc:0 ~sii:1; failure = true };
       });
  let report = Harness.Oracle.check ~n tr in
  Alcotest.(check bool) "accepted" true (Harness.Oracle.ok report);
  Alcotest.(check int) "one interval undone" 1 report.Harness.Oracle.undone

let test_unjustified_rollback_detected () =
  let tr = fresh () in
  ignore (simple_exchange tr : Wire.identity);
  (* No crash at all, yet P1 rolls back its (non-orphan) interval. *)
  Trace.add tr ~time:5.
    (Trace.Rolled_back
       {
         pid = 1;
         restored = Entry.initial;
         first_undone = e ~inc:0 ~sii:2;
         new_current = e ~inc:1 ~sii:2;
         because = { Wire.from_ = 0; ending = e ~inc:0 ~sii:1; failure = true };
       });
  let report = Harness.Oracle.check ~n tr in
  Alcotest.(check bool) "flagged" false (Harness.Oracle.ok report)

let test_wrong_discard_detected () =
  let tr = fresh () in
  let m = simple_exchange tr in
  (* The message is not orphan (nothing was lost), yet someone discarded it
     as one. *)
  Trace.add tr ~time:6.
    (Trace.Message_discarded { id = m; dst = 2; reason = Trace.Orphan_message });
  let report = Harness.Oracle.check ~n tr in
  Alcotest.(check bool) "flagged" false (Harness.Oracle.ok report)

let test_justified_discard_accepted () =
  let tr = fresh () in
  let m = simple_exchange tr in
  crash tr ~time:3. ~pid:0 ~first_lost:(Some (e ~inc:0 ~sii:2));
  restarted tr ~time:4. ~pid:0 ~ending:(e ~inc:0 ~sii:1)
    ~new_current:(e ~inc:1 ~sii:2);
  Trace.add tr ~time:5.
    (Trace.Rolled_back
       {
         pid = 1;
         restored = Entry.initial;
         first_undone = e ~inc:0 ~sii:2;
         new_current = e ~inc:1 ~sii:2;
         because = { Wire.from_ = 0; ending = e ~inc:0 ~sii:1; failure = true };
       });
  Trace.add tr ~time:6.
    (Trace.Message_discarded { id = m; dst = 1; reason = Trace.Orphan_message });
  let report = Harness.Oracle.check ~n tr in
  Alcotest.(check bool) "accepted" true (Harness.Oracle.ok report)

let test_revoked_output_detected () =
  let tr = fresh () in
  ignore (simple_exchange tr : Wire.identity);
  let oid = { Wire.out_interval = e ~inc:0 ~sii:2; out_idx = 0 } in
  Trace.add tr ~time:2.5
    (Trace.Output_buffered { pid = 1; id = oid; text = "out" });
  Trace.add tr ~time:2.6
    (Trace.Output_committed { pid = 1; id = oid; text = "out"; latency = 0.1 });
  crash tr ~time:3. ~pid:0 ~first_lost:(Some (e ~inc:0 ~sii:2));
  restarted tr ~time:4. ~pid:0 ~ending:(e ~inc:0 ~sii:1)
    ~new_current:(e ~inc:1 ~sii:2);
  Trace.add tr ~time:5.
    (Trace.Rolled_back
       {
         pid = 1;
         restored = Entry.initial;
         first_undone = e ~inc:0 ~sii:2;
         new_current = e ~inc:1 ~sii:2;
         because = { Wire.from_ = 0; ending = e ~inc:0 ~sii:1; failure = true };
       });
  let report = Harness.Oracle.check ~n tr in
  Alcotest.(check bool) "revoked output flagged" false (Harness.Oracle.ok report)

let test_theorem4_bound_checked () =
  let tr = fresh () in
  ignore (simple_exchange tr : Wire.identity);
  (* The released message carried a dependency on P0's non-stable (0,2):
     one risky process.  k=0 must flag it, k=1 must not. *)
  let r0 = Harness.Oracle.check ~k:0 ~n tr in
  Alcotest.(check bool) "k=0 flags it" false (Harness.Oracle.ok r0);
  let r1 = Harness.Oracle.check ~k:1 ~n tr in
  Alcotest.(check bool) "k=1 accepts" true (Harness.Oracle.ok r1);
  Alcotest.(check int) "max risk" 1 r1.Harness.Oracle.max_risk

let test_stability_lowers_risk () =
  let tr = fresh () in
  let m = id ~origin:0 ~interval:(e ~inc:0 ~sii:2) () in
  start tr ~time:1. ~pid:0 ~interval:(e ~inc:0 ~sii:2) ~pred:(Some Entry.initial)
    ~by:(Some (id ~origin:(-1) ~interval:(e ~inc:0 ~sii:1) ()))
    ~sender_interval:None ~digest:42;
  send tr ~time:1. ~mid:m ~src:0 ~dst:1 ~send_interval:(e ~inc:0 ~sii:2);
  (* Stability arrives before the release: zero risk at release time. *)
  stable tr ~time:1.2 ~pid:0 ~upto:(e ~inc:0 ~sii:2);
  Trace.add tr ~time:1.5 (Trace.Message_released { id = m; dep_size = 0; blocked = 0.5 });
  let report = Harness.Oracle.check ~k:0 ~n tr in
  Alcotest.(check bool) "k=0 satisfied" true (Harness.Oracle.ok report);
  Alcotest.(check int) "risk zero" 0 report.Harness.Oracle.max_risk

let test_stable_interval_lost_detected () =
  let tr = fresh () in
  ignore (simple_exchange tr : Wire.identity);
  stable tr ~time:2.5 ~pid:0 ~upto:(e ~inc:0 ~sii:2);
  (* Storage claims (0,2) stable, then the crash loses it: storage bug. *)
  crash tr ~time:3. ~pid:0 ~first_lost:(Some (e ~inc:0 ~sii:2));
  let report = Harness.Oracle.check ~n tr in
  Alcotest.(check bool) "flagged" false (Harness.Oracle.ok report)

let test_dependencies_extraction () =
  let tr = fresh () in
  ignore (simple_exchange tr : Wire.identity);
  match Harness.Oracle.dependencies ~n tr ~pid:1 (e ~inc:0 ~sii:2) with
  | None -> Alcotest.fail "interval exists"
  | Some deps ->
    Alcotest.(check (list (pair int entry)))
      "transitive closure as per-incarnation maxima"
      [ (0, e ~inc:0 ~sii:2); (1, e ~inc:0 ~sii:2) ]
      deps

let test_dependencies_missing () =
  let tr = fresh () in
  Alcotest.(check bool) "unknown interval" true
    (Harness.Oracle.dependencies ~n tr ~pid:0 (e ~inc:5 ~sii:5) = None)

let suite =
  [
    Alcotest.test_case "clean history accepted" `Quick test_clean_history_accepted;
    Alcotest.test_case "replay divergence detected" `Quick test_replay_divergence_detected;
    Alcotest.test_case "surviving orphan detected" `Quick test_surviving_orphan_detected;
    Alcotest.test_case "orphan rolled back accepted" `Quick test_orphan_rolled_back_accepted;
    Alcotest.test_case "unjustified rollback detected" `Quick test_unjustified_rollback_detected;
    Alcotest.test_case "wrong discard detected" `Quick test_wrong_discard_detected;
    Alcotest.test_case "justified discard accepted" `Quick test_justified_discard_accepted;
    Alcotest.test_case "revoked output detected" `Quick test_revoked_output_detected;
    Alcotest.test_case "Theorem 4 bound checked" `Quick test_theorem4_bound_checked;
    Alcotest.test_case "stability lowers risk" `Quick test_stability_lowers_risk;
    Alcotest.test_case "stable interval lost detected" `Quick test_stable_interval_lost_detected;
    Alcotest.test_case "dependency extraction" `Quick test_dependencies_extraction;
    Alcotest.test_case "dependency extraction missing" `Quick test_dependencies_missing;
  ]
