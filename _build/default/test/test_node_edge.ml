(* Edge cases around the interactions of checkpoints, rollbacks, crashes
   and buffers — the places where Figure 3's sketch needs the DESIGN.md
   §5a refinements. *)

open Depend
open Util
module Node = Recovery.Node
module Wire = Recovery.Wire
module Config = Recovery.Config
module D = Util.Driver

let counter = App_model.Counter_app.app

let config ?(k = 4) ?(n = 4) () = Config.k_optimistic ~timing:quiet_timing ~n ~k ()

let test_rollback_then_crash_then_restart () =
  (* Marker supersede: a crash right after an induced rollback must restart
     into a fresh incarnation, never reusing the rollback's number. *)
  let d = D.make (config ()) counter in
  D.packet d
    (Wire.App
       (D.app_msg ~src:1 ~dst:0 ~send_interval:(e ~inc:0 ~sii:5)
          ~dep:[ (1, e ~inc:0 ~sii:5) ]
          (App_model.Counter_app.Add 100)));
  D.packet d (Wire.Ann (D.ann ~from_:1 ~ending:(e ~inc:0 ~sii:4) ()));
  Alcotest.(check int) "rolled back into incarnation 1" 1 (Node.current d.node).Entry.inc;
  D.crash d;
  D.clear d;
  D.restart d;
  Alcotest.(check int) "restart takes incarnation 2" 2 (Node.current d.node).Entry.inc;
  match D.announcements d with
  | [ a ] ->
    Alcotest.(check int) "announcement covers the dead incarnation 1" 1
      a.Wire.ending.Entry.inc
  | l -> Alcotest.failf "expected one announcement, got %d" (List.length l)

let test_double_crash_no_deliveries_between () =
  let d = D.make (config ()) counter in
  D.inject d ~seq:1 (App_model.Counter_app.Add 5);
  D.flush d;
  D.crash d;
  D.restart d;
  D.crash d;
  D.restart d;
  Alcotest.(check int) "two distinct incarnations consumed" 2
    (Node.current d.node).Entry.inc;
  let st : App_model.Counter_app.state = Node.app_state d.node in
  Alcotest.(check int) "state intact" 5 st.total

let test_kept_pending_send_survives_rollback () =
  (* A K-blocked send from an interval before the rollback point must stay
     buffered through the rollback and release later. *)
  let d = D.make (config ~k:0 ()) counter in
  (* kept interval with a pending send depending on P2 *)
  D.packet d
    (Wire.App
       (D.app_msg ~src:2 ~dst:0 ~send_interval:(e ~inc:0 ~sii:3)
          ~dep:[ (2, e ~inc:0 ~sii:3) ]
          (App_model.Counter_app.Forward { dst = 3; amount = 1 })));
  (* later interval that will be orphaned *)
  D.packet d
    (Wire.App
       (D.app_msg ~src:1 ~dst:0 ~send_interval:(e ~inc:0 ~sii:5)
          ~dep:[ (1, e ~inc:0 ~sii:5) ]
          (App_model.Counter_app.Add 100)));
  Alcotest.(check int) "one pending send" 1 (Node.send_buffer_size d.node);
  D.packet d (Wire.Ann (D.ann ~from_:1 ~ending:(e ~inc:0 ~sii:4) ()));
  Alcotest.(check int) "pending send survives the rollback" 1
    (Node.send_buffer_size d.node);
  D.clear d;
  D.packet d (D.notice_packet ~from_:2 ~rows:[ (2, [ e ~inc:0 ~sii:3 ]) ]);
  D.flush d;
  match D.released d with
  | [ m ] -> Alcotest.(check int) "released after stability" 3 m.Wire.dst
  | l -> Alcotest.failf "expected 1 release, got %d" (List.length l)

let test_ann_for_unknown_process_is_noop () =
  let d = D.make (config ()) counter in
  D.inject d ~seq:1 (App_model.Counter_app.Add 1);
  let before = Node.current d.node in
  D.packet d (Wire.Ann (D.ann ~from_:3 ~ending:(e ~inc:2 ~sii:9) ()));
  Alcotest.check entry "no rollback" before (Node.current d.node);
  Alcotest.(check bool) "iet recorded anyway" true
    (Entry_set.orphans (Node.iet_row d.node 3) (e ~inc:1 ~sii:10))

let test_flush_idempotent_trace () =
  let d = D.make (config ()) counter in
  D.inject d ~seq:1 (App_model.Counter_app.Add 1);
  D.flush d;
  let events_before = Recovery.Trace.length d.trace in
  D.flush d;
  D.flush d;
  (* No new deliveries: repeated flushes must not spam stability events. *)
  Alcotest.(check int) "no trace growth on idle flushes" events_before
    (Recovery.Trace.length d.trace)

let test_checkpointed_output_commits_once_after_crash () =
  let d = D.make (config ()) counter in
  (* Output blocked on a remote dependency, then checkpointed. *)
  D.packet d
    (Wire.App
       (D.app_msg ~src:1 ~dst:0 ~send_interval:(e ~inc:0 ~sii:5)
          ~dep:[ (1, e ~inc:0 ~sii:5) ]
          (App_model.Counter_app.Add 2)));
  D.inject d ~seq:1 App_model.Counter_app.Report;
  D.checkpoint d;
  Alcotest.(check int) "still buffered" 1 (Node.output_buffer_size d.node);
  D.crash d;
  D.restart d;
  Alcotest.(check int) "restored from checkpoint" 1 (Node.output_buffer_size d.node);
  D.packet d (D.notice_packet ~from_:1 ~rows:[ (1, [ e ~inc:0 ~sii:5 ]) ]);
  Alcotest.(check int) "committed exactly once" 1 (Node.metrics d.node).outputs_committed;
  D.crash d;
  D.restart d;
  Alcotest.(check int) "not repeated by the second recovery" 1
    (Node.metrics d.node).outputs_committed

let test_per_incarnation_stability_rows () =
  (* After a rollback, the process's own logging-progress row must keep a
     frontier for the old incarnation (its surviving prefix) and one for
     the new incarnation. *)
  let d = D.make (config ()) counter in
  D.inject d ~seq:1 (App_model.Counter_app.Add 1) (* (0,2) *);
  D.packet d
    (Wire.App
       (D.app_msg ~src:1 ~dst:0 ~send_interval:(e ~inc:0 ~sii:5)
          ~dep:[ (1, e ~inc:0 ~sii:5) ]
          (App_model.Counter_app.Add 100)));
  D.packet d (Wire.Ann (D.ann ~from_:1 ~ending:(e ~inc:0 ~sii:4) ()));
  let row = Node.log_row d.node 0 in
  Alcotest.(check (option int)) "incarnation 0 stable through the kept prefix"
    (Some 2) (Entry_set.find row ~inc:0);
  Alcotest.(check bool) "new incarnation's marker stable" true
    (Entry_set.covers row (Node.current d.node))

let test_wait_rule_blocks_gap_incarnation () =
  (* Under the S&Y rule a dependency on incarnation 2 needs the announcement
     ending incarnation 1, even if the one ending incarnation 0 arrived. *)
  let d = D.make (Config.strom_yemini ~timing:quiet_timing ~n:4 ()) counter in
  D.packet d (Wire.Ann { Wire.from_ = 1; ending = e ~inc:0 ~sii:3; failure = true });
  D.packet d
    (Wire.App
       (D.app_msg ~src:1 ~dst:0 ~send_interval:(e ~inc:2 ~sii:9)
          ~dep:[ (1, e ~inc:2 ~sii:9) ]
          (App_model.Counter_app.Add 1)));
  Alcotest.(check int) "blocked on the missing announcement" 0
    (Node.metrics d.node).deliveries;
  D.packet d (Wire.Ann { Wire.from_ = 1; ending = e ~inc:1 ~sii:6; failure = false });
  Alcotest.(check int) "unblocked" 1 (Node.metrics d.node).deliveries

let test_checkpoint_restore_prefers_latest_clean () =
  (* Figure 3 restores the LATEST checkpoint satisfying condition (I), not
     just any: verify the replay distance is minimal. *)
  let d = D.make (config ()) counter in
  for seq = 1 to 3 do
    D.inject d ~seq (App_model.Counter_app.Add 10)
  done;
  D.checkpoint d (* clean at (0,4) *);
  D.inject d ~seq:4 (App_model.Counter_app.Add 10);
  D.checkpoint d (* clean at (0,5) — the one that must be used *);
  D.packet d
    (Wire.App
       (D.app_msg ~src:1 ~dst:0 ~send_interval:(e ~inc:0 ~sii:5)
          ~dep:[ (1, e ~inc:0 ~sii:5) ]
          (App_model.Counter_app.Add 100)));
  let replayed_before = (Node.metrics d.node).replayed in
  D.packet d (Wire.Ann (D.ann ~from_:1 ~ending:(e ~inc:0 ~sii:4) ()));
  Alcotest.(check int) "nothing to replay from the latest clean checkpoint"
    replayed_before (Node.metrics d.node).replayed;
  let st : App_model.Counter_app.state = Node.app_state d.node in
  Alcotest.(check int) "all pre-checkpoint work kept" 40 st.total

let test_archive_survives_sender_checkpoint_and_crash () =
  (* Regression: a released message whose send interval is absorbed into a
     checkpoint is never regenerated by replay; if the sender then crashes,
     only the checkpointed archive can honour a retransmission request from
     a receiver that lost the delivery. *)
  let d = D.make (config ()) counter in
  D.inject d ~seq:1 (App_model.Counter_app.Forward { dst = 2; amount = 9 });
  Alcotest.(check int) "released live" 1 (List.length (D.released d));
  D.checkpoint d (* the send interval is now behind the checkpoint *);
  D.crash d;
  D.clear d;
  D.restart d;
  Alcotest.(check int) "replay regenerates nothing (pre-checkpoint)" 0
    (List.length (D.released d));
  D.clear d;
  (* P2 fails having lost the delivery: the announcement must trigger a
     retransmission from the restored archive. *)
  D.packet d (Wire.Ann (D.ann ~from_:2 ~ending:(e ~inc:0 ~sii:1) ()));
  match D.released d with
  | [ m ] ->
    Alcotest.(check int) "archived copy retransmitted" 2 m.Wire.dst;
    Alcotest.(check int) "counted" 1 (Node.metrics d.node).retransmissions
  | l -> Alcotest.failf "expected 1 retransmission, got %d" (List.length l)

let suite =
  [
    Alcotest.test_case "rollback then crash then restart" `Quick
      test_rollback_then_crash_then_restart;
    Alcotest.test_case "double crash, no deliveries between" `Quick
      test_double_crash_no_deliveries_between;
    Alcotest.test_case "kept pending send survives rollback" `Quick
      test_kept_pending_send_survives_rollback;
    Alcotest.test_case "announcement for unknown process" `Quick
      test_ann_for_unknown_process_is_noop;
    Alcotest.test_case "idle flushes do not spam the trace" `Quick
      test_flush_idempotent_trace;
    Alcotest.test_case "checkpointed output commits once across crashes" `Quick
      test_checkpointed_output_commits_once_after_crash;
    Alcotest.test_case "per-incarnation stability rows" `Quick
      test_per_incarnation_stability_rows;
    Alcotest.test_case "wait rule blocks gap incarnations" `Quick
      test_wait_rule_blocks_gap_incarnation;
    Alcotest.test_case "restore prefers the latest clean checkpoint" `Quick
      test_checkpoint_restore_prefers_latest_clean;
    Alcotest.test_case "archive survives sender checkpoint + crash (regression)" `Quick
      test_archive_survives_sender_checkpoint_and_crash;
  ]
