(* Interactive simulator CLI: run one configurable cluster simulation and
   print stats, committed outputs, the oracle's verdict, and optionally the
   full event trace.

     dune exec bin/koptsim.exe -- --help
     dune exec bin/koptsim.exe -- -n 8 -k 2 --workload telecom --calls 100 \
       --failures 3 --seed 42 --trace
*)

open Cmdliner
module Config = Recovery.Config
module Cluster = Harness.Cluster
module Workload = Harness.Workload

type workload = Telecom | Pipeline | Chatter | Kvstore

let workload_conv =
  let parse = function
    | "telecom" -> Ok Telecom
    | "pipeline" -> Ok Pipeline
    | "chatter" -> Ok Chatter
    | "kvstore" -> Ok Kvstore
    | s -> Error (`Msg (Fmt.str "unknown workload %S" s))
  in
  let print ppf w =
    Fmt.string ppf
      (match w with
      | Telecom -> "telecom"
      | Pipeline -> "pipeline"
      | Chatter -> "chatter"
      | Kvstore -> "kvstore")
  in
  Arg.conv (parse, print)

type preset =
  | Koptimistic
  | Pessimistic
  | Optimistic
  | Strom_yemini
  | Damani_garg
  | Direct

let preset_conv =
  let parse = function
    | "k-optimistic" -> Ok Koptimistic
    | "pessimistic" -> Ok Pessimistic
    | "optimistic" -> Ok Optimistic
    | "strom-yemini" -> Ok Strom_yemini
    | "damani-garg" -> Ok Damani_garg
    | "direct" -> Ok Direct
    | s -> Error (`Msg (Fmt.str "unknown preset %S" s))
  in
  let print ppf p =
    Fmt.string ppf
      (match p with
      | Koptimistic -> "k-optimistic"
      | Pessimistic -> "pessimistic"
      | Optimistic -> "optimistic"
      | Strom_yemini -> "strom-yemini"
      | Damani_garg -> "damani-garg"
      | Direct -> "direct")
  in
  Arg.conv (parse, print)

let config_of ~preset ~n ~k =
  match preset with
  | Koptimistic -> Config.k_optimistic ~n ~k ()
  | Pessimistic -> Config.pessimistic ~n ()
  | Optimistic -> Config.optimistic ~n ()
  | Strom_yemini -> Config.strom_yemini ~n ()
  | Damani_garg -> Config.damani_garg ~n ()
  | Direct -> Config.direct_dependency ~n ()

let pp_stats (s : Cluster.stats) =
  Fmt.pr "makespan            %10.1f@." s.makespan;
  Fmt.pr "deliveries          %10d@." s.deliveries;
  Fmt.pr "messages released   %10d@." s.releases;
  Fmt.pr "sync writes         %10d@." s.sync_writes;
  Fmt.pr "send blocked        %a@." Sim.Summary.pp s.blocked_time;
  Fmt.pr "wire vector size    %a@." Sim.Summary.pp s.wire_vector_size;
  Fmt.pr "delivery delay      %a@." Sim.Summary.pp s.delivery_delay;
  Fmt.pr "outputs committed   %10d@." s.outputs_committed;
  Fmt.pr "output latency      %a@." Sim.Summary.pp s.output_latency;
  Fmt.pr "restarts            %10d@." s.restarts;
  Fmt.pr "induced rollbacks   %10d@." s.induced_rollbacks;
  Fmt.pr "intervals lost      %10d@." s.lost_intervals;
  Fmt.pr "intervals undone    %10d@." s.undone_intervals;
  Fmt.pr "orphan msgs dropped %10d@." s.orphans_discarded;
  Fmt.pr "duplicates dropped  %10d@." s.duplicates_dropped;
  Fmt.pr "replayed            %10d@." s.replayed;
  Fmt.pr "retransmissions     %10d@." s.retransmissions;
  Fmt.pr "packets             %a@."
    Fmt.(list ~sep:comma (pair ~sep:(any "=") string int))
    s.packets

let simulate preset n k workload items failures seed horizon show_trace =
  let config = config_of ~preset ~n ~k in
  let report_k = config.Config.protocol.k in
  let oracle_check trace =
    let report = Harness.Oracle.check ~k:report_k ~n trace in
    Fmt.pr "@.%a@." Harness.Oracle.pp_report report;
    if Harness.Oracle.ok report then 0 else 1
  in
  let rng = Sim.Rng.create (seed * 131) in
  let finish cluster =
    Cluster.run cluster;
    Fmt.pr "=== %s | N=%d | workload items=%d | failures=%d | seed=%d ===@."
      (Config.describe config) n items failures seed;
    pp_stats (Cluster.stats cluster);
    if show_trace then Fmt.pr "@.--- trace ---@.%a@." Recovery.Trace.dump (Cluster.trace cluster);
    oracle_check (Cluster.trace cluster)
  in
  let inject_failures cluster =
    if failures > 0 then
      Workload.random_failures cluster ~rng:(Sim.Rng.split rng) ~count:failures
        ~window:(20., 20. +. (float_of_int items /. 1.5))
  in
  match workload with
  | Telecom ->
    let c = Cluster.create ~config ~app:App_model.Telecom_app.app ~seed ~horizon () in
    Workload.telecom c ~rng ~calls:items ~hops:4 ~start:10. ~rate:1.5;
    inject_failures c;
    finish c
  | Pipeline ->
    let c = Cluster.create ~config ~app:App_model.Pipeline_app.app ~seed ~horizon () in
    Workload.pipeline c ~jobs:items ~start:10. ~rate:1.5;
    inject_failures c;
    finish c
  | Chatter ->
    let c = Cluster.create ~config ~app:App_model.Chatter_app.app ~seed ~horizon () in
    Workload.chatter c ~rng ~tokens:items ~hops:10 ~start:10. ~rate:1.5;
    inject_failures c;
    finish c
  | Kvstore ->
    let c = Cluster.create ~config ~app:App_model.Kvstore_app.app ~seed ~horizon () in
    Workload.kvstore c ~rng ~ops:items ~keys:(Stdlib.max 4 (items / 5)) ~start:10.
      ~rate:1.5;
    inject_failures c;
    finish c

let cmd =
  let n = Arg.(value & opt int 8 & info [ "n" ] ~doc:"Number of processes.") in
  let k = Arg.(value & opt int 2 & info [ "k" ] ~doc:"Degree of optimism.") in
  let preset =
    Arg.(
      value
      & opt preset_conv Koptimistic
      & info [ "preset" ]
          ~doc:
            "Protocol: k-optimistic, pessimistic, optimistic, strom-yemini, \
             damani-garg, direct (direct tracking is failure-free only: pass \
             --failures 0).")
  in
  let workload =
    Arg.(
      value
      & opt workload_conv Telecom
      & info [ "workload" ] ~doc:"Workload: telecom, pipeline, chatter, kvstore.")
  in
  let items =
    Arg.(value & opt int 100 & info [ "items"; "calls"; "jobs" ] ~doc:"Workload size.")
  in
  let failures =
    Arg.(value & opt int 2 & info [ "failures" ] ~doc:"Number of crashes to inject.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.") in
  let horizon =
    Arg.(value & opt float 5000. & info [ "horizon" ] ~doc:"Simulated-time bound.")
  in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Dump the full event trace.") in
  let doc = "Simulate an N-process cluster under K-optimistic logging." in
  Cmd.v
    (Cmd.info "koptsim" ~version:"1.0" ~doc)
    Term.(
      const simulate $ preset $ n $ k $ workload $ items $ failures $ seed $ horizon
      $ trace)

let () = exit (Cmd.eval' cmd)
