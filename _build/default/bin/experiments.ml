(* Experiment runner: regenerates each table of EXPERIMENTS.md.

     dune exec bin/experiments.exe -- list
     dune exec bin/experiments.exe -- run overhead_vs_k
     dune exec bin/experiments.exe -- run --all
*)

open Cmdliner

let list_cmd =
  let doc = "List available experiments." in
  let run () =
    List.iter print_endline Harness.Experiments.names;
    0
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run one experiment (or --all) and print its table." in
  let all =
    Arg.(value & flag & info [ "all" ] ~doc:"Run every experiment in order.")
  in
  let names =
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"Experiment names.")
  in
  let run all names =
    if all then begin
      List.iter Harness.Report.print (Harness.Experiments.all ());
      0
    end
    else if names = [] then begin
      prerr_endline "no experiment given; try `list` or `run --all`";
      2
    end
    else
      List.fold_left
        (fun code name ->
          match Harness.Experiments.by_name name with
          | Some f ->
            Harness.Report.print (f ());
            code
          | None ->
            Fmt.epr "unknown experiment %S (see `list`)@." name;
            2)
        0 names
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ all $ names)

let () =
  let doc = "K-optimistic logging experiment suite (ICDCS '97 reproduction)" in
  let info = Cmd.info "experiments" ~version:"1.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ list_cmd; run_cmd ]))
