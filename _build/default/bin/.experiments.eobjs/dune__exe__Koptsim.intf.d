bin/koptsim.mli:
