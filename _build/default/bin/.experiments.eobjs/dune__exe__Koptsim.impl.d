bin/koptsim.ml: App_model Arg Cmd Cmdliner Fmt Harness Recovery Sim Stdlib Term
