bin/experiments.ml: Arg Cmd Cmdliner Fmt Harness List Term
