bin/experiments.mli:
