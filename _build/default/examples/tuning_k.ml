(* Sweep the degree of optimism K and print the two curves the paper's
   tradeoff is about: failure-free overhead (send-buffer blocking,
   piggyback size) against recovery efficiency (rollback scope).

   This is the "ne-grain tradeoff" knob of Section 4 in action: an
   operator picks the K where the overhead they can afford meets the
   recovery time they can tolerate.

     dune exec examples/tuning_k.exe
*)

module Config = Recovery.Config
module Cluster = Harness.Cluster
module Workload = Harness.Workload

let n = 8

let measure ~k ~failures =
  let config = Config.k_optimistic ~n ~k () in
  let cluster =
    Cluster.create ~config ~app:App_model.Telecom_app.app ~seed:4242 ~horizon:4000. ()
  in
  let rng = Sim.Rng.create 77 in
  Workload.telecom cluster ~rng ~calls:100 ~hops:4 ~start:10. ~rate:1.5;
  if failures then
    Workload.random_failures cluster ~rng:(Sim.Rng.split rng) ~count:3
      ~window:(30., 100.);
  Cluster.run cluster;
  let report = Harness.Oracle.check ~k ~n (Cluster.trace cluster) in
  if not (Harness.Oracle.ok report) then exit 1;
  Cluster.stats cluster

let () =
  Fmt.pr "=== tuning K: N=%d, telecom workload ===@.@." n;
  Fmt.pr
    "  K | blocked mean | vector mean | max revokers |  rollbacks | undone work@.";
  Fmt.pr "----+--------------+-------------+--------------+------------+------------@.";
  List.iter
    (fun k ->
      let free = measure ~k ~failures:false in
      let faulty = measure ~k ~failures:true in
      Fmt.pr " %2d | %12.2f | %11.2f | %12d | %10d | %11d@." k
        (Sim.Summary.mean free.blocked_time)
        (Sim.Summary.mean free.wire_vector_size)
        k faulty.induced_rollbacks faulty.undone_intervals)
    [ 0; 1; 2; 3; 4; 6; 8 ];
  Fmt.pr
    "@.Left columns: failure-free run (overhead falls as K grows).@.Right \
     columns: same workload with 3 crashes (rollback scope grows with K).@.\
     Pessimistic logging is the K=0 row; classical optimistic logging is K=N.@."
