examples/scientific_pipeline.mli:
