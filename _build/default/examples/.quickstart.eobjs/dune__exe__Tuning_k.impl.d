examples/tuning_k.ml: App_model Fmt Harness List Recovery Sim
