examples/scientific_pipeline.ml: App_model Array Float Fmt Harness List Recovery
