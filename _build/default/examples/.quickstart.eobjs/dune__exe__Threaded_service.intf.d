examples/threaded_service.mli:
