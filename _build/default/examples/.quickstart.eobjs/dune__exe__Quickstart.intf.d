examples/quickstart.mli:
