examples/telecom_service.ml: App_model Fmt Harness Recovery Sim
