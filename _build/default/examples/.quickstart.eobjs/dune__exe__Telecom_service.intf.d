examples/telecom_service.mli:
