examples/figure1_walkthrough.ml: Fmt Harness List
