examples/quickstart.ml: App_model Array Depend Fmt Harness List Recovery
