examples/tuning_k.mli:
