examples/threaded_service.ml: App_model Fmt Fun Harness List Recovery Runtime
