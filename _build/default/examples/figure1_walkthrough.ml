(* Replays the paper's Figure 1 example and prints the full annotated
   event trace: P0..P5, messages m1..m7, P1's failure and r1, P3's rollback
   to (2,6)_3, and P4's output commit.

     dune exec examples/figure1_walkthrough.exe
*)

let () =
  Harness.Figure1.walkthrough Fmt.stdout;
  match Harness.Figure1.check () with
  | [] -> Fmt.pr "@.All prose facts of Figure 1 reproduced (both delivery rules).@."
  | failures ->
    List.iter (fun f -> Fmt.pr "FAILED: %s@." f) failures;
    exit 1
