(* Quickstart: a 4-process cluster running K-optimistic logging.

   We inject a handful of counter operations, crash a process in the middle
   of the run, and watch the system recover: the failed process replays its
   stable log, the outside world retries the lost request, and the final
   state is exactly what a failure-free run would have produced.

     dune exec examples/quickstart.exe
*)

module Config = Recovery.Config
module Node = Recovery.Node
module Cluster = Harness.Cluster
module Counter = App_model.Counter_app

let () =
  let n = 4 in
  (* Degree of optimism K = 2: a message may leave while at most two
     processes' failures could still revoke it. *)
  let config = Config.k_optimistic ~n ~k:2 () in
  let cluster = Cluster.create ~config ~app:Counter.app ~seed:7 ~horizon:2000. () in

  (* The outside world sends work: additions to processes, some forwarding
     between them, and finally a report (an output that must never be
     revoked). *)
  for i = 1 to 10 do
    Cluster.inject_at cluster
      ~time:(float_of_int (5 * i))
      ~dst:(i mod n)
      (Counter.Add i)
  done;
  Cluster.inject_at cluster ~time:60. ~dst:0 (Counter.Forward { dst = 3; amount = 100 });
  Cluster.inject_at cluster ~time:70. ~dst:3 Counter.Report;

  (* Process 3 fails mid-run. *)
  Cluster.crash_at cluster ~time:40. ~pid:3;

  Cluster.run cluster;

  Fmt.pr "=== quickstart: %s, N=%d ===@." (Config.describe config) n;
  Array.iter
    (fun node ->
      let st : Counter.state = Node.app_state node in
      Fmt.pr "P%d: total=%-4d current interval %a (stable through %a)@."
        (Node.pid node) st.total Depend.Entry.pp (Node.current node)
        Depend.Entry.pp (Node.stable_frontier node))
    (Cluster.nodes cluster);

  let stats = Cluster.stats cluster in
  Fmt.pr "@.deliveries=%d released=%d restarts=%d rollbacks=%d replayed=%d@."
    stats.deliveries stats.releases stats.restarts stats.induced_rollbacks
    stats.replayed;
  Array.iter
    (fun node ->
      List.iter
        (fun (text, time) -> Fmt.pr "output committed at %.1f: %s@." time text)
        (Node.committed_outputs node))
    (Cluster.nodes cluster);

  (* The offline oracle re-derives the true causal order and certifies the
     run: no orphan survived, no output was revoked, and Theorem 4's bound
     held for every released message. *)
  let report = Harness.Oracle.check ~k:2 ~n (Cluster.trace cluster) in
  Fmt.pr "@.%a@." Harness.Oracle.pp_report report;
  if not (Harness.Oracle.ok report) then exit 1
