(* The same protocol outside the simulator: a bank service on real OS
   threads, with a real crash-and-recover cycle, finishing with a money
   audit and the causality oracle's verdict on the merged trace.

     dune exec examples/threaded_service.exe
*)

module Rt = Runtime.Actor_runtime
module Node = Recovery.Node
module Config = Recovery.Config
module Bank = App_model.Bank_app

let () =
  let n = 4 in
  let timing =
    {
      Config.default_timing with
      flush_interval = Some 10.;
      checkpoint_interval = Some 60.;
      notice_interval = Some 8.;
      restart_delay = 25.;
    }
  in
  let config = Config.k_optimistic ~timing ~n ~k:2 () in
  let rt = Rt.create ~config ~app:Bank.app () in

  let deposited = ref 0 in
  for i = 1 to 16 do
    let amount = 25 * i in
    deposited := !deposited + amount;
    Rt.inject rt ~dst:(i mod n) (Bank.Deposit { account = i; amount })
  done;
  for i = 1 to 40 do
    Rt.inject rt ~dst:(i mod n)
      (Bank.Transfer
         {
           from_account = 1 + (i mod 16);
           to_shard = (i * 5) mod n;
           to_account = 1 + ((i * 3) mod 16);
           amount = 7;
         })
  done;
  Fmt.pr "injected %d units across %d shards; crashing shard 2 mid-stream...@."
    !deposited n;
  Rt.crash rt ~pid:2;

  let total () =
    List.fold_left
      (fun acc pid -> acc + Rt.with_node rt pid (fun nd -> Bank.total (Node.app_state nd)))
      0 (List.init n Fun.id)
  in
  let settled = Rt.await rt ~timeout:20. (fun () -> Rt.idle rt && total () = !deposited) in
  Rt.shutdown rt;

  List.iter
    (fun pid ->
      Rt.with_node rt pid (fun nd ->
          Fmt.pr "shard %d: balance %6d | restarts %d | replayed %d@." pid
            (Bank.total (Node.app_state nd))
            (Node.metrics nd).restarts (Node.metrics nd).replayed))
    (List.init n Fun.id);
  Fmt.pr "deposited %d, final global balance %d -> %s@." !deposited (total ())
    (if settled then "money conserved through the crash" else "NOT SETTLED");

  let report = Harness.Oracle.check ~k:2 ~n (Rt.trace rt) in
  Fmt.pr "%a@." Harness.Oracle.pp_report report;
  if (not settled) || not (Harness.Oracle.ok report) then exit 1
