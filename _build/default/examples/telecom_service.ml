(* The paper's motivating application: a continuously-running
   service-providing system (a telecom switch fabric).

   "A telecommunications system needs to choose a parameter to control the
   overhead so that it can be responsive during normal operation, and also
   control the rollback scope so that it can recover reasonably fast upon a
   failure."  (Section 1)

   This example runs the same call workload under three settings —
   pessimistic, K=2 and fully optimistic — injects two switch failures, and
   prints the service-quality metrics an operator would look at: call setup
   work, output (call-connected) latency, and how far each failure
   propagated.

     dune exec examples/telecom_service.exe
*)

module Config = Recovery.Config
module Cluster = Harness.Cluster
module Workload = Harness.Workload

let switches = 8
let calls = 120

let run name config =
  let cluster =
    Cluster.create ~config ~app:App_model.Telecom_app.app ~seed:2026 ~horizon:4000. ()
  in
  let rng = Sim.Rng.create 555 in
  Workload.telecom cluster ~rng ~calls ~hops:4 ~start:10. ~rate:1.5;
  Cluster.crash_at cluster ~time:45. ~pid:2;
  Cluster.crash_at cluster ~time:95. ~pid:5;
  Cluster.run cluster;
  let s = Cluster.stats cluster in
  Fmt.pr
    "%-12s calls connected %3d/%d | blocked %6.2f | connect latency %7.2f | sync \
     writes %4d | rollbacks %2d | undone work %3d intervals@."
    name s.outputs_committed calls
    (Sim.Summary.mean s.blocked_time)
    (Sim.Summary.mean s.output_latency)
    s.sync_writes s.induced_rollbacks s.undone_intervals;
  let report =
    Harness.Oracle.check ~k:config.Config.protocol.k ~n:switches
      (Cluster.trace cluster)
  in
  if not (Harness.Oracle.ok report) then begin
    Fmt.pr "%a@." Harness.Oracle.pp_report report;
    exit 1
  end

let () =
  Fmt.pr "=== telecom switch fabric: %d switches, %d calls, 2 failures ===@.@."
    switches calls;
  run "pessimistic" (Config.pessimistic ~n:switches ());
  run "K=2" (Config.k_optimistic ~n:switches ~k:2 ());
  run "optimistic" (Config.optimistic ~n:switches ());
  Fmt.pr
    "@.K tunes the operating point: pessimistic pays synchronous logging on \
     every call hop, optimistic pays wide rollbacks on every failure, and a \
     small K buys most of both worlds.@."
