(* The paper's other motivating workload: a long-running scientific
   computation, where the goal is to minimize total execution time and
   failures mainly cost lost work.

   A staged pipeline pushes jobs through every process.  We compare total
   completion time and lost work across the K spectrum with a couple of
   failures injected, illustrating Section 4.1: for throughput-oriented
   jobs, optimistic logging (large K) wins as long as failures are rare.

     dune exec examples/scientific_pipeline.exe
*)

module Config = Recovery.Config
module Cluster = Harness.Cluster
module Workload = Harness.Workload

let stages = 6
let jobs = 80

let last_output_time cluster =
  Array.fold_left
    (fun acc node ->
      List.fold_left
        (fun acc (_, time) -> Float.max acc time)
        acc
        (Recovery.Node.committed_outputs node))
    0. (Cluster.nodes cluster)

let run name config ~failures =
  let cluster =
    Cluster.create ~config ~app:App_model.Pipeline_app.app ~seed:99 ~horizon:6000. ()
  in
  Workload.pipeline cluster ~jobs ~start:5. ~rate:2.;
  if failures then begin
    Cluster.crash_at cluster ~time:30. ~pid:2;
    Cluster.crash_at cluster ~time:70. ~pid:4
  end;
  Cluster.run cluster;
  let s = Cluster.stats cluster in
  Fmt.pr
    "%-12s %s | jobs done %3d/%d | last result at %7.1f | busy time %8.1f | \
     replayed %4d | lost+undone %3d@."
    name
    (if failures then "2 crashes " else "no crashes")
    s.outputs_committed jobs (last_output_time cluster) s.busy_time s.replayed
    (s.lost_intervals + s.undone_intervals);
  let report =
    Harness.Oracle.check ~k:config.Config.protocol.k ~n:stages (Cluster.trace cluster)
  in
  if not (Harness.Oracle.ok report) then exit 1

let () =
  Fmt.pr "=== scientific pipeline: %d stages, %d jobs ===@.@." stages jobs;
  List.iter
    (fun failures ->
      run "pessimistic" (Config.pessimistic ~n:stages ()) ~failures;
      run "K=1" (Config.k_optimistic ~n:stages ~k:1 ()) ~failures;
      run "K=3" (Config.k_optimistic ~n:stages ~k:3 ()) ~failures;
      run "optimistic" (Config.optimistic ~n:stages ()) ~failures;
      Fmt.pr "@.")
    [ false; true ];
  Fmt.pr
    "Failure-free, larger K means less logging stall per hop (lower busy \
     time); with crashes, it pays in replayed and discarded work.@."
