type t = { inc : int; sii : int }

let make ~inc ~sii = { inc; sii }

let initial = { inc = 0; sii = 1 }

let compare a b =
  let c = Int.compare a.inc b.inc in
  if c <> 0 then c else Int.compare a.sii b.sii

let equal a b = compare a b = 0

let max a b = if compare a b >= 0 then a else b

let min a b = if compare a b <= 0 then a else b

let lt a b = compare a b < 0

let le a b = compare a b <= 0

let next_interval e = { e with sii = e.sii + 1 }

let next_incarnation e = { inc = e.inc + 1; sii = e.sii + 1 }

let pp ppf e = Fmt.pf ppf "(%d,%d)" e.inc e.sii

let pp_at i ppf e = Fmt.pf ppf "(%d,%d)_%d" e.inc e.sii i

let to_string e = Fmt.str "%a" pp e
