type t = Entry_set.t array

let create ~n =
  if n <= 0 then invalid_arg "Multi_dep.create: n must be positive";
  Array.make n Entry_set.empty

let n = Array.length

let copy = Array.copy

let row t j = t.(j)

let add t j e = t.(j) <- Entry_set.insert t.(j) e

let merge ~into src =
  if Array.length into <> Array.length src then
    invalid_arg "Multi_dep.merge: size mismatch";
  for j = 0 to Array.length into - 1 do
    into.(j) <- Entry_set.merge into.(j) src.(j)
  done

let depends_on t j (e : Entry.t) =
  match Entry_set.find t.(j) ~inc:e.inc with
  | None -> false
  | Some x -> x >= e.sii

let entries t =
  let acc = ref [] in
  for j = Array.length t - 1 downto 0 do
    List.iter (fun e -> acc := (j, e) :: !acc) (List.rev (Entry_set.entries t.(j)))
  done;
  !acc

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2 Entry_set.equal a b

let pp ppf t =
  let item ppf (j, e) = Entry.pp_at j ppf e in
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any "; ") item) (entries t)
