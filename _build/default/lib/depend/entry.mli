(** State-interval identifiers.

    Following the paper's notation, [(t, x)] identifies the [x]-th state
    interval of the [t]-th incarnation of a process.  Entries are ordered
    lexicographically — the "lexicographical maximum operation" of Strom &
    Yemini — which is the order used everywhere in the protocol: dependency
    merging, deliverability checks, and incarnation-end comparisons. *)

type t = {
  inc : int;  (** incarnation number [t]; starts at 0, bumped on rollback *)
  sii : int;  (** state-interval index [x]; monotone along a process history *)
}

val make : inc:int -> sii:int -> t

val initial : t
(** [(0, 1)]: the first state interval, always stable by the initial
    checkpoint (Corollary 3 context). *)

val compare : t -> t -> int
(** Lexicographic: incarnation first, then interval index. *)

val equal : t -> t -> bool

val max : t -> t -> t

val min : t -> t -> t

val lt : t -> t -> bool

val le : t -> t -> bool

val next_interval : t -> t
(** Same incarnation, next state-interval index. *)

val next_incarnation : t -> t
(** Next incarnation, next state-interval index — the [current.inc++;
    current.sii++] step of Restart/Rollback in Figure 3. *)

val pp : t Fmt.t
(** Prints [(t,x)], matching the paper. *)

val pp_at : int -> t Fmt.t
(** [pp_at i] prints [(t,x)_i], the paper's subscripted form. *)

val to_string : t -> string
