(** Fully asynchronous multi-incarnation dependency tracking.

    Section 2 of the paper describes a completely asynchronous recovery
    protocol in which "a process needs to track the highest-index interval of
    {e every incarnation} that its current state depends on" — e.g. P4's
    dependency set [{(1,3)_0; (0,4)_1; (1,5)_1; (0,3)_2; (2,6)_3; (0,3)_4}]
    after delivering m6, which holds two incarnations of P1 at once.

    This structure implements that tracker: one {!Entry_set} per process.  It
    is used (a) by the Figure 1 reproduction to check the prose dependency
    sets verbatim, and (b) by the offline causality oracle, where per-process
    per-incarnation maxima are a complete representation of a transitive
    dependency set (dependencies are downward closed along each incarnation
    chain). *)

type t

val create : n:int -> t

val n : t -> int

val copy : t -> t

val row : t -> int -> Entry_set.t

val add : t -> int -> Entry.t -> unit
(** Record a (possibly transitive) dependency on an interval of process [j],
    keeping the per-incarnation maximum. *)

val merge : into:t -> t -> unit
(** Union of dependency sets, the multi-incarnation analogue of
    {!Dep_vector.merge_max}. *)

val depends_on : t -> int -> Entry.t -> bool
(** [depends_on t j e]: the set contains an interval of process [j], in
    [e]'s incarnation, with index [>= e.sii] — i.e. (by downward closure)
    the tracked state transitively depends on interval [e]. *)

val entries : t -> (int * Entry.t) list
(** All dependencies as [(process, entry)] pairs, ordered by process then
    incarnation. *)

val equal : t -> t -> bool

val pp : t Fmt.t
(** Paper-style set notation [{(t,x)_j; ...}]. *)
