lib/depend/entry_set.ml: Entry Fmt Int List Map Stdlib
