lib/depend/dep_vector.ml: Array Entry Fmt List
