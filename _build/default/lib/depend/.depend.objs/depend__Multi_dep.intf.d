lib/depend/multi_dep.mli: Entry Entry_set Fmt
