lib/depend/entry.ml: Fmt Int
