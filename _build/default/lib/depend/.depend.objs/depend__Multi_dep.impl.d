lib/depend/multi_dep.ml: Array Entry Entry_set Fmt List
