lib/depend/entry_set.mli: Entry Fmt
