lib/depend/entry.mli: Fmt
