lib/depend/dep_vector.mli: Entry Fmt
