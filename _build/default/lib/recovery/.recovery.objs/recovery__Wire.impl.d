lib/recovery/wire.ml: Depend Entry Fmt List
