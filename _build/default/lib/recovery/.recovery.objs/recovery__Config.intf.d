lib/recovery/config.mli:
