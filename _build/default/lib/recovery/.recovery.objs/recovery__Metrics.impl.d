lib/recovery/metrics.ml: Sim
