lib/recovery/node.mli: App_model Config Dep_vector Depend Entry Entry_set Fmt Metrics Trace Wire
