lib/recovery/trace.ml: Depend Entry Fmt List Wire
