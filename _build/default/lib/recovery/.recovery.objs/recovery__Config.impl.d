lib/recovery/config.ml: Fmt
