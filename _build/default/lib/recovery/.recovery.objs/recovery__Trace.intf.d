lib/recovery/trace.mli: Depend Entry Fmt Wire
