lib/recovery/node.ml: App_model Array Config Dep_vector Depend Entry Entry_set Fmt Fun Hashtbl List Metrics Sim Stdlib Storage Trace Wire
