lib/recovery/metrics.mli: Sim
