lib/runtime/actor_runtime.ml: Array Condition Fun List Mutex Queue Recovery Thread Unix
