lib/runtime/actor_runtime.mli: App_model Recovery
