type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 (Steele, Lea, Flood 2014): one additive step followed by a
   64-bit finalizer.  Chosen for determinism across platforms and cheap
   splitting; statistical quality is ample for simulation workloads. *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = bits64 t }

(* Keep 62 significant bits: OCaml's native int has 63, so a 63-bit
   unsigned value would overflow into the sign bit. *)
let nonneg t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias on pathological bounds. *)
  let max_int62 = (1 lsl 62) - 1 in
  let limit = max_int62 - (max_int62 mod bound) in
  let rec draw () =
    let v = nonneg t in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let int_in t ~lo ~hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  assert (bound > 0.);
  (* 53 uniform mantissa bits, the full precision of a double in [0,1). *)
  let bits53 = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int bits53 /. 9007199254740992. *. bound

let uniform t ~lo ~hi =
  assert (lo <= hi);
  if lo = hi then lo else lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t ~p =
  let p = Float.max 0. (Float.min 1. p) in
  float t 1. < p

let exponential t ~mean =
  assert (mean > 0.);
  let u = float t 1. in
  (* 1 - u is in (0, 1], keeping log finite. *)
  -.mean *. log (1. -. u)

let geometric t ~p =
  assert (p > 0. && p <= 1.);
  if p >= 1. then 0
  else
    let u = float t 1. in
    int_of_float (Float.floor (log (1. -. u) /. log (1. -. p)))

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let pick_other t ~n ~self =
  assert (n >= 2);
  let v = int t (n - 1) in
  if v >= self then v + 1 else v

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
