type 'a cell = { time : float; seq : int; payload : 'a }

type 'a t = {
  heap : 'a cell Heap.t;
  mutable next_seq : int;
}

let cmp a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () = { heap = Heap.create ~cmp; next_seq = 0 }

let schedule t ~time payload =
  if not (Float.is_finite time) || time < 0. then
    invalid_arg "Event_queue.schedule: time must be finite and non-negative";
  Heap.push t.heap { time; seq = t.next_seq; payload };
  t.next_seq <- t.next_seq + 1

let next t =
  match Heap.pop t.heap with
  | None -> None
  | Some cell -> Some (cell.time, cell.payload)

let peek_time t =
  match Heap.peek t.heap with
  | None -> None
  | Some cell -> Some cell.time

let is_empty t = Heap.is_empty t.heap

let length t = Heap.length t.heap

let drain t ~keep =
  let cells = Heap.to_list t.heap in
  Heap.clear t.heap;
  let surviving = List.filter (fun c -> keep (c.time, c.payload)) cells in
  List.iter (Heap.push t.heap) (List.sort cmp surviving)
