(** Discrete-event scheduler queue.

    Events are ordered by simulated time; ties break deterministically by
    insertion order, so a simulation run is fully reproducible. *)

type 'a t

val create : unit -> 'a t

val schedule : 'a t -> time:float -> 'a -> unit
(** Enqueue an event at absolute simulated time [time] (must be finite and
    non-negative). *)

val next : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val peek_time : 'a t -> float option
(** Time of the earliest pending event. *)

val is_empty : 'a t -> bool

val length : 'a t -> int

val drain : 'a t -> keep:(float * 'a -> bool) -> unit
(** Remove every pending event that does not satisfy [keep].  Relative order
    of surviving events is preserved.  Used by failure injection to cancel a
    crashed node's local timers. *)
