(** Deterministic pseudo-random number generator (SplitMix64).

    Every simulation draws randomness exclusively from values of this type so
    that a run is a pure function of its seed.  [split] derives an
    independent stream, which lets subsystems (network latency, workload,
    failure schedule) evolve without perturbing each other's sequences. *)

type t

val create : int -> t
(** [create seed] is a fresh generator.  Equal seeds yield equal streams. *)

val copy : t -> t
(** [copy t] duplicates the current stream state. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t] by one step. *)

val bits64 : t -> int64
(** Next raw 64-bit output of the SplitMix64 sequence. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Requires [bound > 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** [int_in t ~lo ~hi] is uniform in [\[lo, hi\]] inclusive.
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)].  Requires [bound > 0.]. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)].  Requires [lo <= hi]. *)

val bool : t -> bool

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean ([mean > 0.]). *)

val geometric : t -> p:float -> int
(** Number of Bernoulli(p) failures before the first success; [0 < p <= 1]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_other : t -> n:int -> self:int -> int
(** Uniform element of [\[0, n) \ {self}].  Requires [n >= 2]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
