lib/sim/summary.ml: Array Float Fmt List Stdlib
