lib/sim/heap.mli:
