lib/sim/summary.mli: Fmt
