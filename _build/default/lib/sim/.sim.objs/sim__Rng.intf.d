lib/sim/rng.mli:
