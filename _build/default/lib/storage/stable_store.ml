type ('ckpt, 'log, 'ann) t = {
  mutable stable_log : 'log list; (* newest first, positions [base, stable_len) *)
  mutable stable_len : int;
  mutable base : int; (* logical position of the oldest retained record *)
  volatile : 'log Queue.t;
  mutable ckpts : 'ckpt list; (* newest first *)
  mutable anns : 'ann list; (* newest first *)
  mutable inc : int;
  mutable sync_writes : int;
  mutable flushes : int;
}

let create () =
  {
    stable_log = [];
    stable_len = 0;
    base = 0;
    volatile = Queue.create ();
    ckpts = [];
    anns = [];
    inc = 0;
    sync_writes = 0;
    flushes = 0;
  }

let append_volatile t r = Queue.add r t.volatile

let flush t =
  let n = Queue.length t.volatile in
  if n > 0 then begin
    Queue.iter (fun r -> t.stable_log <- r :: t.stable_log) t.volatile;
    Queue.clear t.volatile;
    t.stable_len <- t.stable_len + n;
    t.flushes <- t.flushes + 1;
    t.sync_writes <- t.sync_writes + 1
  end;
  n

let stable_log_length t = t.stable_len

let volatile_length t = Queue.length t.volatile

let volatile_peek t = Queue.peek_opt t.volatile

let stable_log_from t ~pos =
  if pos < t.base || pos > t.stable_len then
    invalid_arg "Stable_store.stable_log_from: position out of range";
  (* stable_log is newest first; take until we reach position [pos]. *)
  let rec take i acc = function
    | [] -> acc
    | r :: rest -> if i < pos then acc else take (i - 1) (r :: acc) rest
  in
  take (t.stable_len - 1) [] t.stable_log

let truncate_stable_log t ~keep =
  if keep < t.base || keep > t.stable_len then
    invalid_arg "Stable_store.truncate_stable_log: keep out of range";
  let removed = stable_log_from t ~pos:keep in
  let rec drop i l = if i = 0 then l else drop (i - 1) (List.tl l) in
  t.stable_log <- drop (t.stable_len - keep) t.stable_log;
  t.stable_len <- keep;
  Queue.clear t.volatile;
  removed

let discard_log_prefix t ~before =
  if before > t.stable_len then
    invalid_arg "Stable_store.discard_log_prefix: position out of range";
  if before <= t.base then 0
  else begin
    (* newest-first: keep the first (stable_len - before) physical cells *)
    let keep_cells = t.stable_len - before in
    let rec take i acc l =
      if i = 0 then List.rev acc
      else
        match l with
        | [] -> List.rev acc
        | r :: rest -> take (i - 1) (r :: acc) rest
    in
    let discarded = before - t.base in
    t.stable_log <- take keep_cells [] t.stable_log;
    t.base <- before;
    discarded
  end

let log_base t = t.base

let live_log_records t = t.stable_len - t.base

let save_checkpoint t c =
  ignore (flush t : int);
  t.ckpts <- c :: t.ckpts;
  t.sync_writes <- t.sync_writes + 1

let latest_checkpoint t =
  match t.ckpts with [] -> None | c :: _ -> Some c

let checkpoints t = t.ckpts

let restore_checkpoint t ~satisfying =
  let rec find = function
    | [] -> None
    | c :: rest -> if satisfying c then Some (c, c :: rest) else find rest
  in
  match find t.ckpts with
  | None -> None
  | Some (c, kept) ->
    t.ckpts <- kept;
    Some c

let prune_checkpoints t ~keep_latest =
  if keep_latest < 1 then
    invalid_arg "Stable_store.prune_checkpoints: must keep at least one";
  let rec split i acc = function
    | [] -> (List.rev acc, [])
    | rest when i = 0 -> (List.rev acc, rest)
    | c :: rest -> split (i - 1) (c :: acc) rest
  in
  let kept, dropped = split keep_latest [] t.ckpts in
  t.ckpts <- kept;
  List.length dropped

let prune_checkpoints_older_than t ~anchor =
  let rec split acc = function
    | [] -> None
    | c :: rest when anchor c -> Some (List.rev (c :: acc), rest)
    | c :: rest -> split (c :: acc) rest
  in
  match split [] t.ckpts with
  | None -> 0
  | Some (kept, dropped) ->
    t.ckpts <- kept;
    List.length dropped

let log_announcement t a =
  t.anns <- a :: t.anns;
  t.sync_writes <- t.sync_writes + 1

let announcements t = List.rev t.anns

let set_incarnation t i =
  t.inc <- i;
  t.sync_writes <- t.sync_writes + 1

let incarnation t = t.inc

let crash t =
  let lost = Queue.length t.volatile in
  Queue.clear t.volatile;
  lost

let sync_writes t = t.sync_writes

let flushes t = t.flushes
