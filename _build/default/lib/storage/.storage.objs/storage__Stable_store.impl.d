lib/storage/stable_store.ml: List Queue
