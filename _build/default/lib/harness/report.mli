(** Plain-text experiment tables.

    Every experiment renders through this module so that
    [bench/main.exe] and [bin/experiments.exe] produce uniform,
    diff-friendly output recorded in EXPERIMENTS.md. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument on column-count mismatch. *)

val note : t -> string -> unit
(** Free-form footnote printed under the table. *)

val pp : t Fmt.t

val print : t -> unit
(** [pp] to stdout, followed by a blank line. *)

(** {1 Cell formatting helpers} *)

val cell_f : float -> string
(** Two-decimal float, [-] for NaN. *)

val cell_i : int -> string

val cell_pct : float -> string

val cell_summary : Sim.Summary.t -> string
(** [mean/p99] rendering. *)
