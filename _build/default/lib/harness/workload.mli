(** Workload and failure-schedule generators.

    Each generator schedules outside-world injections on a cluster.  The
    fixed-work generators (pipeline, telecom, kvstore) perform the same
    total application work regardless of protocol or K, which makes
    overhead comparisons across configurations meaningful; the chatter
    generator produces order-dependent branching and is used for stress and
    oracle testing rather than like-for-like overhead numbers. *)

val chatter :
  (App_model.Chatter_app.state, App_model.Chatter_app.msg) Cluster.t ->
  rng:Sim.Rng.t ->
  tokens:int ->
  hops:int ->
  start:float ->
  rate:float ->
  unit
(** Inject [tokens] tokens at exponential inter-arrival times with the
    given mean [rate] (arrivals per time unit), round-robin destinations. *)

val pipeline :
  (App_model.Pipeline_app.state, App_model.Pipeline_app.msg) Cluster.t ->
  jobs:int ->
  start:float ->
  rate:float ->
  unit
(** [jobs] jobs entering stage 0; each traverses all N processes. *)

val telecom :
  (App_model.Telecom_app.state, App_model.Telecom_app.msg) Cluster.t ->
  rng:Sim.Rng.t ->
  calls:int ->
  hops:int ->
  start:float ->
  rate:float ->
  unit
(** Call setups at random ingress switches; each call routes through
    [hops] switches and commits a "connected" output at the egress. *)

val kvstore :
  (App_model.Kvstore_app.state, App_model.Kvstore_app.msg) Cluster.t ->
  rng:Sim.Rng.t ->
  ops:int ->
  keys:int ->
  start:float ->
  rate:float ->
  unit
(** Mixed puts (75%) and gets (25%) over [keys] distinct keys, sent to
    random coordinator processes. *)

val random_failures :
  ('state, 'msg) Cluster.t ->
  rng:Sim.Rng.t ->
  count:int ->
  window:float * float ->
  unit
(** Schedule [count] crashes of uniformly random processes at uniformly
    random times within the window.  At most one crash is scheduled per
    process per window slice to keep episodes distinguishable. *)
