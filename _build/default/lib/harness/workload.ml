let arrivals ~rng ~count ~start ~rate k =
  let time = ref start in
  for i = 0 to count - 1 do
    time := !time +. Sim.Rng.exponential rng ~mean:(1. /. rate);
    k i !time
  done

let chatter cluster ~rng ~tokens ~hops ~start ~rate =
  let n = Cluster.n cluster in
  arrivals ~rng ~count:tokens ~start ~rate (fun i time ->
      Cluster.inject_at cluster ~time ~dst:(i mod n)
        (App_model.Chatter_app.Token { hops_left = hops; salt = i }))

let pipeline cluster ~jobs ~start ~rate =
  (* Deterministic arrival spacing: the pipeline is the fixed-work baseline
     workload, so keep even its injection times configuration-independent. *)
  let period = 1. /. rate in
  for i = 0 to jobs - 1 do
    Cluster.inject_at cluster
      ~time:(start +. (period *. float_of_int i))
      ~dst:0
      (App_model.Pipeline_app.Job { id = i; stage = 0; payload = i })
  done

let telecom cluster ~rng ~calls ~hops ~start ~rate =
  let n = Cluster.n cluster in
  arrivals ~rng ~count:calls ~start ~rate (fun i time ->
      let ingress = Sim.Rng.int rng n in
      let route = App_model.Telecom_app.route ~n ~ingress ~call_id:i ~hops in
      Cluster.inject_at cluster ~time ~dst:ingress
        (App_model.Telecom_app.Setup { call_id = i; route }))

let kvstore cluster ~rng ~ops ~keys ~start ~rate =
  let n = Cluster.n cluster in
  arrivals ~rng ~count:ops ~start ~rate (fun i time ->
      let key = Fmt.str "key-%d" (Sim.Rng.int rng keys) in
      let dst = Sim.Rng.int rng n in
      let msg =
        if Sim.Rng.int rng 4 < 3 then App_model.Kvstore_app.Put { key; value = i }
        else App_model.Kvstore_app.Get key
      in
      Cluster.inject_at cluster ~time ~dst msg)

let random_failures cluster ~rng ~count ~window:(lo, hi) =
  let n = Cluster.n cluster in
  let slice = (hi -. lo) /. float_of_int (Stdlib.max 1 count) in
  for i = 0 to count - 1 do
    let time = lo +. (slice *. float_of_int i) +. Sim.Rng.float rng slice in
    let pid = Sim.Rng.int rng n in
    Cluster.crash_at cluster ~time ~pid
  done
