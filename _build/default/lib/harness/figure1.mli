(** Reproduction of the paper's Figure 1 worked example.

    The scenario reconstructs the six-process execution of Sections 2–3:
    P0 is in its second incarnation; a chain m1 (P0→P1), m2a (P1→P3), m2
    (P3→P4) builds the dependency set the paper lists for P4's interval
    (0,2)_4; P4 emits an output from that interval; P1 sends m3 to P3 and
    then fails having lost interval (0,5)_1; it restarts, announces r1 with
    ending index (0,4)_1, continues as incarnation 1 at (1,5)_1 and sends m5
    (→P2, which then sends m6→P4) and m7 (→P5).

    Prose-backed facts checked ({!check} returns the list of violated ones,
    empty on success):

    - the multi-incarnation dependency sets recorded for (0,2)_4 and
      (0,3)_4 (via the causality oracle, which implements exactly the
      Section 2 tracker);
    - P1 rolls back to (0,4)_1 and r1 carries ending index (0,4);
    - P3 detects its dependency on (0,5)_1 and rolls back to (2,6)_3;
    - P4 survives r1 (its dependency (0,4)_1 is not rolled back);
    - under Strom–Yemini delivery, m6 waits for r1 at P4 and m7 waits for
      r1 at P5; under the improved protocol both deliver without waiting
      (Corollary 1);
    - P4's output from (0,2)_4 commits only after (0,2)_4 is stable and
      logging progress from P0, P1 (via r1 itself) and P3 has arrived.

    The figure in the source text is partially garbled; every assertion
    here is backed by prose, and the message endpoints not fixed by prose
    were chosen consistently with all prose facts (see DESIGN.md). *)

type flavour =
  | Improved  (** the paper's K-optimistic protocol (Theorems 1–2, Cor. 1) *)
  | Strom_yemini  (** the baseline whose delays Section 3 eliminates *)

type outcome = {
  flavour : flavour;
  failures : string list;  (** violated prose facts; empty = faithful *)
  trace : Recovery.Trace.t;
  oracle : Oracle.report;
  m6_delivered_at : float option;
  m7_delivered_at : float option;
  r1_at_p4 : float option;
  r1_at_p5 : float option;
  output_committed_at : float option;
}

val run : flavour -> outcome

val check : unit -> string list
(** Run both flavours; all violated facts from both. *)

val walkthrough : Format.formatter -> unit
(** Print the annotated event trace of the improved-protocol run, for the
    example binary. *)
