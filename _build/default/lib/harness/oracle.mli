(** Offline causality oracle.

    Rebuilds the {e true} transitive-dependency relation from an execution
    trace, completely independently of the protocol's own vectors, and
    checks every decision the protocol made against the paper's
    definitions:

    - Definition 1 (orphans): an interval is orphan iff it transitively
      depends on a rolled-back interval.  We use the refinement actually
      relevant under Theorem 1: the roots are intervals {e lost in
      failures}; everything else rolled back must have been orphan through
      such a root.
    - Theorems 1/2 (soundness of rollback and discard decisions): every
      induced rollback undid only true orphans; every message discarded as
      orphan truly was one; at the end of the run no surviving state is
      orphan.
    - Output commit: no committed output ever depends on a lost interval.
    - Theorem 4: for every released message, the number of distinct
      processes owning a not-yet-stable interval in its dependency closure
      at release time is at most K.
    - PWD replay: a replayed interval reproduces the original state digest.
    - Storage: intervals announced stable are never among the crash-lost.

    Dependency sets are represented as one {!Depend.Multi_dep} per interval
    (per-process, per-incarnation maxima) — a complete representation
    because transitive dependencies are downward closed along incarnation
    chains. *)

type report = {
  violations : string list;  (** empty iff the execution is correct *)
  intervals : int;  (** state intervals observed *)
  lost : int;  (** intervals lost to crashes (orphan roots) *)
  undone : int;  (** intervals undone by rollbacks *)
  orphans_at_end : int;  (** surviving orphan intervals (must be 0) *)
  released : int;  (** released messages checked against Theorem 4 *)
  max_risk : int;
      (** largest observed number of processes able to revoke a released
          message *)
  committed_outputs : int;
}

val check : ?k:int -> n:int -> Recovery.Trace.t -> report
(** Analyse a finished run.  [k] (default: skip the bound check) is the
    degree of optimism to verify Theorem 4 against. *)

val ok : report -> bool

val pp_report : report Fmt.t

val dependencies :
  n:int ->
  Recovery.Trace.t ->
  pid:int ->
  Depend.Entry.t ->
  (int * Depend.Entry.t) list option
(** The true transitive dependency set of one state interval, as
    per-process per-incarnation maxima — exactly the representation the
    paper's Section 2 dependency sets use (e.g. P4's
    [{(1,3)_0; (0,4)_1; (2,6)_3; (0,2)_4}]).  [None] if the interval never
    existed.  Used by the Figure 1 reproduction to check the prose sets. *)
