lib/harness/figure1.ml: App_model Cluster Dep_vector Depend Entry Fmt List Oracle Recovery
