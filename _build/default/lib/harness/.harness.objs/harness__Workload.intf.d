lib/harness/workload.mli: App_model Cluster Sim
