lib/harness/experiments.ml: App_model Array Cluster Figure1 Fmt List Oracle Recovery Report Sim Stdlib Workload
