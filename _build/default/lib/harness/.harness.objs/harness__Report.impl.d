lib/harness/report.ml: Float Fmt List Sim Stdlib String
