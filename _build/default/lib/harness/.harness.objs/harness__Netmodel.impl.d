lib/harness/netmodel.ml: Array Hashtbl List Option Recovery Sim Stdlib String
