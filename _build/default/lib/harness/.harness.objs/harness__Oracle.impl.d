lib/harness/oracle.ml: Array Depend Entry Fmt Hashtbl List Multi_dep Option Recovery
