lib/harness/oracle.mli: Depend Fmt Recovery
