lib/harness/cluster.ml: App_model Array List Netmodel Recovery Sim Stdlib
