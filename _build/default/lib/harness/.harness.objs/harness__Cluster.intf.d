lib/harness/cluster.mli: App_model Netmodel Recovery Sim
