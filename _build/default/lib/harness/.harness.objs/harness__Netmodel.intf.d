lib/harness/netmodel.mli: Recovery Sim
