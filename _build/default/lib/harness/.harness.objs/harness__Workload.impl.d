lib/harness/workload.ml: App_model Cluster Fmt Sim Stdlib
