lib/harness/figure1.mli: Format Oracle Recovery
