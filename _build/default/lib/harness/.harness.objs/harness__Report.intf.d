lib/harness/report.mli: Fmt Sim
