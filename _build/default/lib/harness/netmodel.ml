type override = src:int -> dst:int -> packet_kind:string -> float option

type t = {
  timing : Recovery.Config.timing;
  rng : Sim.Rng.t;
  override : override option;
  channel_last : float array array; (* last scheduled arrival per (src,dst) *)
  counts : (string, int) Hashtbl.t;
  mutable entries : int;
}

let create ~n ~timing ~rng ?override () =
  {
    timing;
    rng;
    override;
    channel_last = Array.make_matrix (n + 1) (n + 1) 0.;
    counts = Hashtbl.create 8;
    entries = 0;
  }

let transit t ~now ~src ~dst ~kind ~entries =
  Hashtbl.replace t.counts kind (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts kind));
  t.entries <- t.entries + entries;
  let tm = t.timing in
  let delay =
    match t.override with
    | Some f -> (
      match f ~src ~dst ~packet_kind:kind with
      | Some d -> d
      | None ->
        tm.net_latency
        +. Sim.Rng.float t.rng (Stdlib.max 1e-9 tm.net_jitter)
        +. (float_of_int entries *. tm.per_entry_overhead))
    | None ->
      tm.net_latency
      +. Sim.Rng.float t.rng (Stdlib.max 1e-9 tm.net_jitter)
      +. (float_of_int entries *. tm.per_entry_overhead)
  in
  let arrival = now +. Stdlib.max 0. delay in
  if tm.fifo && src >= 0 && dst >= 0 then begin
    let last = t.channel_last.(src).(dst) in
    let arrival = Stdlib.max arrival (last +. 1e-9) in
    t.channel_last.(src).(dst) <- arrival;
    arrival
  end
  else arrival

let packets_sent t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let entries_carried t = t.entries
