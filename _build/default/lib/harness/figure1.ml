open Depend
module Trace = Recovery.Trace
module Wire = Recovery.Wire
module Config = Recovery.Config
module Script = App_model.Script_app
module App_intf = App_model.App_intf

type flavour = Improved | Strom_yemini

type outcome = {
  flavour : flavour;
  failures : string list;
  trace : Recovery.Trace.t;
  oracle : Oracle.report;
  m6_delivered_at : float option;
  m7_delivered_at : float option;
  r1_at_p4 : float option;
  r1_at_p5 : float option;
  output_committed_at : float option;
}

let n = 6

let e = Entry.make

(* The message chains of Figure 1, encoded as a Script_app plan.  Labels
   match the paper's message names; fA/fB/f1/f2/fC/f3/go* are filler or
   trigger deliveries that position each process at the interval index the
   figure shows. *)
let plan () =
  Script.make_plan
    [
      (0, "go0", [ App_intf.send 1 "m1" ]);
      (1, "m1", [ App_intf.send 3 "m2a" ]);
      (3, "m2a", [ App_intf.send 4 "m2" ]);
      (4, "m2", [ App_intf.output "call-connected" ]);
      (1, "go1", [ App_intf.send 3 "m3" ]);
      (2, "m5", [ App_intf.send 4 "m6" ]);
    ]

let timing =
  {
    Config.default_timing with
    t_proc = 0.01;
    t_sync_write = 0.01;
    t_replay = 0.001;
    t_checkpoint = 0.01;
    per_entry_overhead = 0.;
    flush_interval = None;
    checkpoint_interval = None;
    notice_interval = None;
    restart_delay = 2.;
    net_latency = 1.;
    net_jitter = 0.;
  }

(* Deterministic transit times.  r1 (P1's failure announcement) is slowed
   down selectively so that m6 reaches P4 and m7 reaches P5 before it —
   the race the paper uses to contrast the two delivery rules. *)
let net_override ~src ~dst ~packet_kind =
  if packet_kind = "ann" && src = 1 then
    Some
      (match dst with
      | 0 -> 2.0
      | 2 -> 2.5
      | 3 -> 3.0
      | 4 -> 40.0
      | 5 -> 23.2
      | _ -> 1.0)
  else Some 1.0

let config = function
  | Improved ->
    Config.k_optimistic ~timing ~n ~k:n ()
  | Strom_yemini -> Config.strom_yemini ~timing ~n ()

(* --- trace queries ------------------------------------------------- *)

let find_time trace pred =
  List.find_map
    (fun (entry : Trace.entry) -> if pred entry.ev then Some entry.time else None)
    (Trace.events trace)

let delivery_time trace ~pid ~interval =
  find_time trace (function
    | Trace.Interval_started { pid = p; interval = i; replay = false; _ } ->
      p = pid && Entry.equal i interval
    | _ -> false)

let r1_receipt trace ~pid =
  find_time trace (function
    | Trace.Announcement_received { pid = p; ann } ->
      p = pid && ann.Wire.from_ = 1 && ann.Wire.failure
    | _ -> false)

(* --- scenario ------------------------------------------------------ *)

type probe = {
  mutable p4_after_m2 : Dep_vector.t option;
  mutable p4_after_m6 : Dep_vector.t option;
}

let run flavour =
  let cluster =
    Cluster.create ~config:(config flavour) ~app:(Script.app (plan ())) ~seed:1
      ~horizon:120. ~net_override ~auto_timers:false ()
  in
  let inject time dst label = Cluster.inject_at cluster ~time ~dst label in
  (* Pre-phase: position every process at its Figure 1 starting interval.
     P0 reaches incarnation 1 through an early crash; P3 reaches
     incarnation 2 through two. *)
  Cluster.crash_at cluster ~time:1.0 ~pid:0;
  Cluster.crash_at cluster ~time:1.0 ~pid:3;
  Cluster.crash_at cluster ~time:5.0 ~pid:3;
  inject 8.0 1 "fA";
  inject 9.0 1 "fB";
  inject 10.0 3 "f1";
  inject 11.0 3 "f2";
  inject 12.0 2 "fC";
  (* The window of Figure 1. *)
  inject 20.0 0 "go0" (* (1,3)_0 sends m1 *);
  Cluster.flush_at cluster ~time:30.0 ~pid:1 (* (0,4)_1 becomes stable *);
  inject 32.0 1 "go1" (* (0,5)_1 sends m3 *);
  inject 35.0 3 "f3" (* (2,8)_3 *);
  Cluster.crash_at cluster ~time:40.0 ~pid:1 (* the X: (0,5)_1 is lost *);
  (* P1 continues inside its post-restart interval (1,5)_1. *)
  Cluster.perform_at cluster ~time:44.8 ~pid:1
    [ App_intf.send 2 "m5"; App_intf.send 5 "m7" ];
  (* Logging-progress traffic that lets P4 commit its output. *)
  Cluster.flush_at cluster ~time:85.0 ~pid:0;
  Cluster.notice_at cluster ~time:86.0 ~pid:0;
  Cluster.notice_at cluster ~time:87.0 ~pid:3;
  Cluster.flush_at cluster ~time:89.0 ~pid:4;
  let probe = { p4_after_m2 = None; p4_after_m6 = None } in
  Cluster.run_until cluster 28.;
  probe.p4_after_m2 <- Some (Recovery.Node.dep_vector (Cluster.node cluster 4));
  Cluster.run_until cluster 84.;
  probe.p4_after_m6 <- Some (Recovery.Node.dep_vector (Cluster.node cluster 4));
  Cluster.run cluster;
  let trace = Cluster.trace cluster in
  let oracle = Oracle.check ~k:n ~n trace in
  let failures = ref [] in
  let fail fmt = Fmt.kstr (fun s -> failures := s :: !failures) fmt in
  let expect cond fmt = Fmt.kstr (fun s -> if not cond then failures := s :: !failures) fmt in
  (* -- facts common to both flavours -------------------------------- *)
  expect (Oracle.ok oracle) "oracle found violations: %a" Oracle.pp_report oracle;
  (* P1 fails having lost (0,5)_1 ... *)
  expect
    (List.exists
       (fun (entry : Trace.entry) ->
         match entry.ev with
         | Trace.Crashed { pid = 1; first_lost = Some fl } -> Entry.equal fl (e ~inc:0 ~sii:5)
         | _ -> false)
       (Trace.events trace))
    "P1's crash did not lose exactly interval (0,5)_1";
  (* ... rolls back to (0,4)_1, announces r1 containing (0,4), and
     continues as (1,5)_1. *)
  expect
    (List.exists
       (fun (entry : Trace.entry) ->
         match entry.ev with
         | Trace.Restarted { pid = 1; announced; new_current } ->
           Entry.equal announced.Wire.ending (e ~inc:0 ~sii:4)
           && Entry.equal new_current (e ~inc:1 ~sii:5)
         | _ -> false)
       (Trace.events trace))
    "P1 did not announce ending (0,4) and continue as (1,5)";
  (* P3 rolls back to (2,6)_3 and continues as incarnation 3. *)
  expect
    (List.exists
       (fun (entry : Trace.entry) ->
         match entry.ev with
         | Trace.Rolled_back { pid = 3; restored; new_current; _ } ->
           Entry.equal restored (e ~inc:2 ~sii:6) && new_current.Entry.inc = 3
         | _ -> false)
       (Trace.events trace))
    "P3 did not roll back to (2,6)_3";
  (* P4 survives r1. *)
  expect
    (not
       (List.exists
          (fun (entry : Trace.entry) ->
            match entry.ev with Trace.Rolled_back { pid = 4; _ } -> true | _ -> false)
          (Trace.events trace)))
    "P4 rolled back although its state does not depend on a rolled-back interval";
  (* f3, undone at P3's rollback but not orphaned, is re-delivered as
     (3,8)_3 — the figure's post-rollback intervals. *)
  expect
    (delivery_time trace ~pid:3 ~interval:(e ~inc:3 ~sii:8) <> None)
    "P3 did not re-deliver the undone non-orphan message at (3,8)_3";
  (* The multi-incarnation dependency sets of Section 2, checked against
     the causality oracle.  Pre-window incarnations (P0's 0th, P3's 0th and
     1st, and other processes' initial intervals) are allowed extras. *)
  let check_dep_set ~interval ~expected ~allowed_extra label =
    match Oracle.dependencies ~n trace ~pid:4 interval with
    | None -> fail "interval %a of P4 was never created" Entry.pp interval
    | Some actual ->
      List.iter
        (fun (pid, exp_entry) ->
          let got =
            List.find_opt
              (fun (p, (a : Entry.t)) -> p = pid && a.inc = exp_entry.Entry.inc)
              actual
          in
          match got with
          | Some (_, a) when Entry.equal a exp_entry -> ()
          | Some (_, a) ->
            fail "%s: dependency on P%d incarnation %d is %a, paper says %a" label
              pid exp_entry.Entry.inc Entry.pp a Entry.pp exp_entry
          | None ->
            fail "%s: missing dependency %a on P%d" label Entry.pp exp_entry pid)
        expected;
      List.iter
        (fun (pid, (a : Entry.t)) ->
          let in_expected =
            List.exists
              (fun (p, (x : Entry.t)) -> p = pid && x.inc = a.inc)
              expected
          in
          let in_allowed = List.mem (pid, a.inc) allowed_extra in
          if not (in_expected || in_allowed) then
            fail "%s: unexpected dependency %a on P%d" label Entry.pp a pid)
        actual
  in
  let prehistory = [ (0, 0); (3, 0); (3, 1); (1, -1) ] in
  check_dep_set ~interval:(e ~inc:0 ~sii:2)
    ~expected:
      [ (0, e ~inc:1 ~sii:3); (1, e ~inc:0 ~sii:4); (3, e ~inc:2 ~sii:6); (4, e ~inc:0 ~sii:2) ]
    ~allowed_extra:prehistory "dep set of (0,2)_4 after m2";
  check_dep_set ~interval:(e ~inc:0 ~sii:3)
    ~expected:
      [
        (0, e ~inc:1 ~sii:3);
        (1, e ~inc:0 ~sii:4);
        (1, e ~inc:1 ~sii:5);
        (2, e ~inc:0 ~sii:3);
        (3, e ~inc:2 ~sii:6);
        (4, e ~inc:0 ~sii:3);
      ]
    ~allowed_extra:prehistory "dep set of (0,3)_4 after m6";
  (* -- the delivery-rule race ---------------------------------------- *)
  let m6_delivered_at = delivery_time trace ~pid:4 ~interval:(e ~inc:0 ~sii:3) in
  let m7_delivered_at = delivery_time trace ~pid:5 ~interval:(e ~inc:0 ~sii:2) in
  let r1_at_p4 = r1_receipt trace ~pid:4 in
  let r1_at_p5 = r1_receipt trace ~pid:5 in
  let before what a b =
    match a, b with
    | Some a, Some b -> expect (a < b) "%s" what
    | _, _ -> fail "%s: missing events" what
  in
  let after what a b =
    match a, b with
    | Some a, Some b -> expect (a >= b) "%s" what
    | _, _ -> fail "%s: missing events" what
  in
  (match flavour with
  | Improved ->
    before "Corollary 1: m6 should be delivered at P4 without waiting for r1"
      m6_delivered_at r1_at_p4;
    before "Corollary 1: m7 should be delivered at P5 without waiting for r1"
      m7_delivered_at r1_at_p5
  | Strom_yemini ->
    after "Strom-Yemini: m6 must wait at P4 for r1" m6_delivered_at r1_at_p4;
    after "Strom-Yemini: m7 must wait at P5 for r1" m7_delivered_at r1_at_p5;
    (* The single-entry dependency vector P4 "records" after m2 and the
       post-r1 vector after m6 (with the lexicographic maximum applied). *)
    let expect_vec label actual expected =
      match actual with
      | None -> fail "%s: no probe" label
      | Some v ->
        let got = Dep_vector.non_null v in
        let want = List.map (fun (p, en) -> (p, en)) expected in
        if
          not
            (List.length got = List.length want
            && List.for_all2
                 (fun (p1, e1) (p2, e2) -> p1 = p2 && Entry.equal e1 e2)
                 got want)
        then
          fail "%s: vector is %a, paper says {%a}" label Dep_vector.pp v
            Fmt.(list ~sep:(any "; ") (fun ppf (p, en) -> Entry.pp_at p ppf en))
            want
    in
    expect_vec "P4's vector after m2" probe.p4_after_m2
      [ (0, e ~inc:1 ~sii:3); (1, e ~inc:0 ~sii:4); (3, e ~inc:2 ~sii:6); (4, e ~inc:0 ~sii:2) ];
    expect_vec "P4's vector after m6 (lexicographic max applied)" probe.p4_after_m6
      [
        (0, e ~inc:1 ~sii:3);
        (1, e ~inc:1 ~sii:5);
        (2, e ~inc:0 ~sii:3);
        (3, e ~inc:2 ~sii:6);
        (4, e ~inc:0 ~sii:3);
      ];
    (* Pre-Theorem 1, P3's induced rollback is announced. *)
    expect
      (List.exists
         (fun (entry : Trace.entry) ->
           match entry.ev with
           | Trace.Announcement_received { ann; _ } ->
             ann.Wire.from_ = 3 && (not ann.Wire.failure) && entry.time > 44.
           | _ -> false)
         (Trace.events trace))
      "Strom-Yemini: P3's induced rollback was not announced");
  (* Theorem 1 applied: the improved protocol announces failures only. *)
  (match flavour with
  | Improved ->
    expect
      (not
         (List.exists
            (fun (entry : Trace.entry) ->
              match entry.ev with
              | Trace.Announcement_received { ann; _ } -> not ann.Wire.failure
              | _ -> false)
            (Trace.events trace)))
      "improved protocol announced a non-failure rollback"
  | Strom_yemini -> ());
  (* -- output commit -------------------------------------------------- *)
  let output_committed_at =
    find_time trace (function
      | Trace.Output_committed { pid = 4; _ } -> true
      | _ -> false)
  in
  (match output_committed_at with
  | None -> fail "P4's output from (0,2)_4 was never committed"
  | Some tc ->
    expect (tc >= 88.9) "output committed at %.2f, before all notifications" tc;
    (match r1_at_p4 with
    | Some tr -> expect (tc > tr) "output committed before r1 reached P4"
    | None -> fail "r1 never reached P4"));
  {
    flavour;
    failures = List.rev !failures;
    trace;
    oracle;
    m6_delivered_at;
    m7_delivered_at;
    r1_at_p4;
    r1_at_p5;
    output_committed_at;
  }

let check () =
  let a = run Improved in
  let b = run Strom_yemini in
  List.map (fun f -> "improved: " ^ f) a.failures
  @ List.map (fun f -> "strom-yemini: " ^ f) b.failures

let walkthrough ppf =
  let outcome = run Improved in
  Fmt.pf ppf
    "Figure 1 walkthrough (improved protocol).@\n\
     m6 delivered at P4 at %a; r1 reached P4 at %a.@\n\
     m7 delivered at P5 at %a; r1 reached P5 at %a.@\n\
     P4's output committed at %a.@\n\
     %a@\n\
     --- full trace ---@\n\
     %a@."
    Fmt.(option ~none:(any "-") float)
    outcome.m6_delivered_at
    Fmt.(option ~none:(any "-") float)
    outcome.r1_at_p4
    Fmt.(option ~none:(any "-") float)
    outcome.m7_delivered_at
    Fmt.(option ~none:(any "-") float)
    outcome.r1_at_p5
    Fmt.(option ~none:(any "-") float)
    outcome.output_committed_at Oracle.pp_report outcome.oracle Trace.dump
    outcome.trace
