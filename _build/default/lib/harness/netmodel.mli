(** Network timing model.

    Computes per-packet transit times: a base latency, uniform jitter, a
    per-piggyback-entry serialization cost (this is how dependency-vector
    size turns into failure-free overhead), and optional FIFO enforcement
    per channel (Strom & Yemini assume FIFO; the K-optimistic protocol does
    not need it).  An override hook lets scripted scenarios (Figure 1) pin
    exact arrival orders. *)

type override = src:int -> dst:int -> packet_kind:string -> float option
(** Returns the full transit time for a packet, or [None] to use the model. *)

type t

val create :
  n:int ->
  timing:Recovery.Config.timing ->
  rng:Sim.Rng.t ->
  ?override:override ->
  unit ->
  t

val transit :
  t -> now:float -> src:int -> dst:int -> kind:string -> entries:int -> float
(** Absolute arrival time for a packet handed to the network at [now].
    Guaranteed [>= now]; with FIFO enabled, also no earlier than the last
    arrival scheduled on the same (src, dst) channel. *)

val packets_sent : t -> (string * int) list
(** Packet counts by kind, for traffic accounting. *)

val entries_carried : t -> int
(** Total piggybacked dependency entries carried by all packets. *)
