type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* newest first *)
  mutable notes : string list; (* newest first *)
}

let create ~title ~columns = { title; columns; rows = []; notes = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Fmt.str "Report.add_row: %d cells for %d columns in %S" (List.length row)
         (List.length t.columns) t.title);
  t.rows <- row :: t.rows

let note t s = t.notes <- s :: t.notes

let widths t =
  let all = t.columns :: List.rev t.rows in
  List.fold_left
    (fun acc row -> List.map2 (fun w cell -> Stdlib.max w (String.length cell)) acc row)
    (List.map String.length t.columns)
    (List.tl all)

let pad width s = s ^ String.make (width - String.length s) ' '

let pp ppf t =
  let widths = widths t in
  let line row = String.concat "  " (List.map2 pad widths row) in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  Fmt.pf ppf "== %s ==@\n%s@\n%s" t.title (line t.columns) rule;
  List.iter (fun row -> Fmt.pf ppf "@\n%s" (line row)) (List.rev t.rows);
  List.iter (fun n -> Fmt.pf ppf "@\n  note: %s" n) (List.rev t.notes)

let print t = Fmt.pr "%a@\n@\n" pp t

let cell_f v = if Float.is_nan v then "-" else Fmt.str "%.2f" v

let cell_i = string_of_int

let cell_pct v = if Float.is_nan v then "-" else Fmt.str "%.1f%%" v

let cell_summary s =
  if Sim.Summary.count s = 0 then "-"
  else Fmt.str "%.2f/%.2f" (Sim.Summary.mean s) (Sim.Summary.percentile s 99.)
