(** Small deterministic mixing helpers shared by the applications.

    Applications must be deterministic yet we want varied, data-dependent
    behaviour (fan-out choices, payload transforms).  These helpers derive
    pseudo-random-looking but fully reproducible values from application
    data, independent of any global hash state. *)

let mix h x =
  (* Boost-style hash_combine on 62-bit ints. *)
  let h = h lxor (x + 0x9e3779b9 + (h lsl 6) + (h lsr 2)) in
  h land max_int

let int x = mix 0 x

let string s =
  let h = ref (String.length s) in
  String.iter (fun c -> h := mix !h (Char.code c)) s;
  !h

let pair a b = mix (int a) b

let in_range h ~bound =
  if bound <= 0 then invalid_arg "Hashing.in_range: bound must be positive";
  (* Re-mix before reducing so that small structured inputs spread out. *)
  int h mod bound
