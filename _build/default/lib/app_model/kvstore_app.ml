(** A replicated key-value store.

    Keys are owned by [hash key mod n]; a [Put] arriving anywhere is routed
    to the owner, which applies it and replicates to the next process.  Reads
    are answered with an output.  This exercises multi-hop causal chains —
    the structure under which optimistic logging's rollback propagation is
    interesting. *)

module Str_map = Map.Make (String)

type msg =
  | Put of { key : string; value : int }
  | Replica of { key : string; value : int; version : int }
  | Get of string

type state = {
  pid : int;
  store : (int * int) Str_map.t; (* key -> (value, version) *)
  puts : int;
}

let owner ~n key = Hashing.string key mod n

let pp_msg ppf = function
  | Put { key; value } -> Fmt.pf ppf "Put %s=%d" key value
  | Replica { key; value; version } -> Fmt.pf ppf "Replica %s=%d v%d" key value version
  | Get key -> Fmt.pf ppf "Get %s" key

let lookup state key = Str_map.find_opt key state.store

let apply state key value version =
  { state with store = Str_map.add key (value, version) state.store }

let app : (state, msg) App_intf.t =
  {
    name = "kvstore";
    init = (fun ~pid ~n:_ -> { pid; store = Str_map.empty; puts = 0 });
    handle =
      (fun ~pid ~n state ~src:_ msg ->
        match msg with
        | Put { key; value } ->
          let o = owner ~n key in
          if o <> pid then (state, [ App_intf.send o (Put { key; value }) ])
          else begin
            let version =
              match lookup state key with None -> 1 | Some (_, v) -> v + 1
            in
            let state = apply { state with puts = state.puts + 1 } key value version in
            let replica_holder = (pid + 1) mod n in
            let effects =
              if replica_holder = pid then []
              else [ App_intf.send replica_holder (Replica { key; value; version }) ]
            in
            (state, effects)
          end
        | Replica { key; value; version } ->
          let newer =
            match lookup state key with
            | None -> true
            | Some (_, v) -> version > v
          in
          ((if newer then apply state key value version else state), [])
        | Get key ->
          let answer =
            match lookup state key with
            | None -> Fmt.str "get %s -> none" key
            | Some (value, version) -> Fmt.str "get %s -> %d (v%d)" key value version
          in
          (state, [ App_intf.output answer ]));
    digest =
      (fun s ->
        Str_map.fold
          (fun key (value, version) h ->
            Hashing.mix (Hashing.mix (Hashing.mix h (Hashing.string key)) value) version)
          s.store
          (Hashing.pair s.pid s.puts));
    pp_msg;
  }
