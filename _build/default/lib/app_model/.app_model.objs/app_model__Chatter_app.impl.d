lib/app_model/chatter_app.ml: App_intf Fmt Hashing List
