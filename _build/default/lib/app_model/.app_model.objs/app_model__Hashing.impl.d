lib/app_model/hashing.ml: Char String
