lib/app_model/bank_app.ml: App_intf Fmt Hashing Int Map Option
