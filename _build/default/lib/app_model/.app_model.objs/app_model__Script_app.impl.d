lib/app_model/script_app.ml: App_intf Fmt Hashing Hashtbl List
