lib/app_model/app_intf.ml: Fmt
