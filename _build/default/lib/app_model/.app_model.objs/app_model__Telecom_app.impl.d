lib/app_model/telecom_app.ml: App_intf Fmt Hashing Int List Set Stdlib
