lib/app_model/kvstore_app.ml: App_intf Fmt Hashing Map String
