lib/app_model/pipeline_app.ml: App_intf Fmt Hashing
