lib/app_model/counter_app.ml: App_intf Fmt Hashing
