(* Benchmark harness.

   Two layers, mirroring EXPERIMENTS.md:

   1. The macro tables (F1, T*, E1–E7): every figure/claim of the paper is
      regenerated as a measured table by the experiment suite.  The oracle
      certifies each run, so a printed table implies a correct execution.
   2. Micro-benchmarks (B1–B6, Bechamel): cost of the protocol's hot data
      structures and of one protocol step, which is what the paper's
      "failure-free overhead" is made of.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- micro   # micro-benchmarks only
     dune exec bench/main.exe -- macro   # experiment tables only
*)

open Depend
module Config = Recovery.Config
module Node = Recovery.Node

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks                                                    *)

let e = Entry.make

let vector_pair n =
  let a = Dep_vector.create ~n and b = Dep_vector.create ~n in
  for j = 0 to n - 1 do
    if j mod 2 = 0 then Dep_vector.set a j (Some (e ~inc:(j mod 3) ~sii:j));
    if j mod 3 = 0 then Dep_vector.set b j (Some (e ~inc:(j mod 2) ~sii:(j + 1)))
  done;
  (a, b)

let bench_merge n =
  let a, b = vector_pair n in
  Bechamel.Test.make
    ~name:(Fmt.str "B1 dep_vector.merge_max n=%d" n)
    (Bechamel.Staged.stage (fun () ->
         let into = Dep_vector.copy a in
         Dep_vector.merge_max ~into b))

let bench_elide n =
  let a, _ = vector_pair n in
  let stable j (x : Entry.t) = (j + x.sii) mod 2 = 0 in
  Bechamel.Test.make
    ~name:(Fmt.str "B2 dep_vector.elide_stable n=%d" n)
    (Bechamel.Staged.stage (fun () ->
         let v = Dep_vector.copy a in
         ignore (Dep_vector.elide_stable v ~stable : int)))

let bench_entry_set () =
  let set =
    Entry_set.of_entries (List.init 6 (fun i -> e ~inc:i ~sii:(10 * (i + 1))))
  in
  Bechamel.Test.make ~name:"B3 entry_set insert+covers+orphans"
    (Bechamel.Staged.stage (fun () ->
         let set = Entry_set.insert set (e ~inc:3 ~sii:37) in
         ignore (Entry_set.covers set (e ~inc:3 ~sii:35) : bool);
         ignore (Entry_set.orphans set (e ~inc:2 ~sii:25) : bool)))

let bench_node_step () =
  (* Cost of one full protocol step: receive -> deliver -> send release. *)
  let config = Config.k_optimistic ~n:8 ~k:4 () in
  Bechamel.Test.make ~name:"B4 node: deliver+release step (x16)"
    (Bechamel.Staged.stage (fun () ->
         let trace = Recovery.Trace.create () in
         let node =
           Node.create ~config ~pid:0 ~app:App_model.Counter_app.app ?store_dir:None ?obs:None
             ~trace
         in
         for seq = 1 to 16 do
           ignore
             (Node.inject node ~now:(float_of_int seq) ~seq
                (App_model.Counter_app.Forward { dst = 1; amount = seq }))
         done))

let bench_crash_recovery () =
  let config = Config.k_optimistic ~n:8 ~k:4 () in
  Bechamel.Test.make ~name:"B5 node: crash + replay of 32 deliveries"
    (Bechamel.Staged.stage (fun () ->
         let trace = Recovery.Trace.create () in
         let node =
           Node.create ~config ~pid:0 ~app:App_model.Counter_app.app ?store_dir:None ?obs:None
             ~trace
         in
         for seq = 1 to 32 do
           ignore
             (Node.inject node ~now:(float_of_int seq) ~seq (App_model.Counter_app.Add seq))
         done;
         ignore (Node.flush node ~now:40.);
         Node.crash node ~now:41.;
         ignore (Node.restart node ~now:42.)))

let oracle_trace =
  lazy
    (let config = Config.k_optimistic ~n:6 ~k:2 () in
     let cluster =
       Harness.Cluster.create ~config ~app:App_model.Telecom_app.app ~seed:3
         ~horizon:2000. ()
     in
     let rng = Sim.Rng.create 5 in
     Harness.Workload.telecom cluster ~rng ~calls:40 ~hops:3 ~start:10. ~rate:2.;
     Harness.Cluster.crash_at cluster ~time:30. ~pid:2;
     Harness.Cluster.run cluster;
     Harness.Cluster.trace cluster)

let bench_oracle () =
  let trace = Lazy.force oracle_trace in
  Bechamel.Test.make ~name:"B6 oracle: full causality check of a run"
    (Bechamel.Staged.stage (fun () ->
         ignore (Harness.Oracle.check ~k:2 ~n:6 trace : Harness.Oracle.report)))

(* B7: the sender-side retransmission archive.  The former implementation
   was a newest-first list whose per-ack removal scanned the whole archive
   (O(n^2) over a run); Recovery.Archive keys by identity. *)
let archive_msgs =
  lazy
    (List.init 512 (fun i ->
         {
           Recovery.Wire.id =
             { Recovery.Wire.origin = 0; origin_interval = e ~inc:0 ~sii:1; idx = i };
           src = 0;
           dst = 1;
           send_interval = e ~inc:0 ~sii:1;
           dep = [];
           payload = ();
         }))

let bench_archive_list () =
  let msgs = Lazy.force archive_msgs in
  let ids = List.map (fun m -> m.Recovery.Wire.id) msgs in
  Bechamel.Test.make ~name:"B7 archive: 512 releases + 512 acks (list)"
    (Bechamel.Staged.stage (fun () ->
         let store = ref [] in
         List.iter (fun m -> store := m :: !store) msgs;
         List.iter
           (fun id -> store := List.filter (fun m -> m.Recovery.Wire.id <> id) !store)
           ids))

let bench_archive_keyed () =
  let msgs = Lazy.force archive_msgs in
  let ids = List.map (fun m -> m.Recovery.Wire.id) msgs in
  Bechamel.Test.make ~name:"B7 archive: 512 releases + 512 acks (keyed)"
    (Bechamel.Staged.stage (fun () ->
         let a = Recovery.Archive.create () in
         List.iter (fun m -> Recovery.Archive.add a m) msgs;
         List.iter (fun id -> Recovery.Archive.remove a id) ids))

(* B8: durable record codec, encode + decode of a fixed volume per run.
   64 records of 1 KiB = 65536 payload bytes each way; MB/s follows from
   the ns/run estimate (bytes / ns * 1000 ≈ MB/s). *)
let codec_payload_bytes = 65536

let bench_codec () =
  let payload = String.init 1024 (fun i -> Char.chr ((i * 31) land 0xff)) in
  let records = codec_payload_bytes / String.length payload in
  Bechamel.Test.make
    ~name:(Fmt.str "B8 codec: encode+decode %d KiB" (codec_payload_bytes / 1024))
    (Bechamel.Staged.stage (fun () ->
         let buf = Buffer.create (codec_payload_bytes + (records * 16)) in
         for _ = 1 to records do
           Durable.Codec.encode_into buf ~kind:0x4C payload
         done;
         let s = Buffer.contents buf in
         let pos = ref 0 in
         let continue = ref true in
         while !continue do
           match Durable.Codec.decode s ~pos:!pos with
           | Durable.Codec.Record { next; _ } -> pos := next
           | Durable.Codec.End -> continue := false
           | Durable.Codec.Truncated | Durable.Codec.Corrupt ->
             failwith "B8: codec round-trip corrupted"
         done))

(* B9: cost of one batched durable flush — 8 log records made stable with a
   single fsync plus the stable-length witness write (a second fsync on the
   synchronous area).  This is the real-file price of the paper's one
   stable-storage operation per flush. *)
let bench_durable_flush () =
  let store =
    lazy
      (let dir = Durable.Temp.fresh_dir ~prefix:"bench-b9" () in
       at_exit (fun () -> Durable.Temp.rm_rf dir);
       let store, _report = Durable.Durable_store.open_ ~dir () in
       (store : (unit, string, unit) Durable.Durable_store.t))
  in
  let payload = String.make 64 'x' in
  Bechamel.Test.make ~name:"B9 durable store: flush of 8 records (fsync)"
    (Bechamel.Staged.stage (fun () ->
         let store = Lazy.force store in
         for _ = 1 to 8 do
           Durable.Durable_store.append_volatile store payload
         done;
         ignore (Durable.Durable_store.flush store : int)))

(* B13: the observability plane's hot path — one counter bump and one
   histogram observation, the per-event price of leaving the registry
   always on (the daemon pays it per delivered frame and per timed
   phase).  64 operations per run so the Staged closure overhead is
   amortised; the per-op figure is the estimate divided by 64, which the
   [check] mode guards. *)
let b13_ops = 64

let bench_obs_counter () =
  let obs = Obs.Registry.create () in
  let c = Obs.Registry.counter obs "bench_total" in
  Bechamel.Test.make
    ~name:(Fmt.str "B13 obs: counter incr (x%d)" b13_ops)
    (Bechamel.Staged.stage (fun () ->
         for _ = 1 to b13_ops do
           Obs.Counter.incr c
         done))

let bench_obs_histogram () =
  let obs = Obs.Registry.create () in
  let h = Obs.Registry.histogram obs "bench_seconds" in
  Bechamel.Test.make
    ~name:(Fmt.str "B13 obs: histogram observe (x%d)" b13_ops)
    (Bechamel.Staged.stage (fun () ->
         for i = 1 to b13_ops do
           Obs.Histogram.observe h (float_of_int i *. 1.3e-6)
         done))

let micro_tests () =
  [
    bench_merge 8;
    bench_merge 32;
    bench_elide 32;
    bench_entry_set ();
    bench_node_step ();
    bench_crash_recovery ();
    bench_oracle ();
    bench_archive_list ();
    bench_archive_keyed ();
    bench_codec ();
    bench_durable_flush ();
    bench_obs_counter ();
    bench_obs_histogram ();
  ]

let run_micro () =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  Fmt.pr "== Micro-benchmarks (Bechamel, ns/run) ==@.";
  let rows = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let results = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] -> Some est
            | Some _ | None -> None
          in
          rows := (name, estimate) :: !rows)
        results)
    (micro_tests ());
  (* Hashtbl.iter order is nondeterministic; sort so runs are comparable. *)
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) !rows in
  List.iter
    (fun (name, estimate) ->
      Fmt.pr "%-45s %s@." name
        (match estimate with
        | Some est -> Fmt.str "%12.1f ns/run" est
        | None -> "n/a"))
    rows;
  let oc = open_out "BENCH_micro.json" in
  let field (name, estimate) =
    Fmt.str "  %S: %s" name
      (match estimate with Some est -> Fmt.str "%.1f" est | None -> "null")
  in
  output_string oc ("{\n" ^ String.concat ",\n" (List.map field rows) ^ "\n}\n");
  close_out oc;
  Fmt.pr "@.wrote BENCH_micro.json@.@."

(* ------------------------------------------------------------------ *)
(* Network benchmarks (B10/B11) -> BENCH_net.json                      *)

(* B10: the TCP wire codec — encode+decode of a representative app packet
   (8 dependency entries, 128-byte payload) through the full frame path
   (header, CRC, payload codec), 64 packets per run. *)
let bench_wire_codec () =
  let swf = App_model.App_intf.string_wire_format in
  let packet =
    Recovery.Wire.App
      {
        Recovery.Wire.id =
          { Recovery.Wire.origin = 3; origin_interval = e ~inc:1 ~sii:42; idx = 2 };
        src = 3;
        dst = 5;
        send_interval = e ~inc:1 ~sii:42;
        dep = List.init 8 (fun j -> (j, e ~inc:(j mod 3) ~sii:(10 + j)));
        payload = String.init 128 (fun i -> Char.chr ((i * 17) land 0xff));
      }
  in
  Bechamel.Test.make ~name:"B10 wire codec: encode+decode 64 app packets"
    (Bechamel.Staged.stage (fun () ->
         for _ = 1 to 64 do
           let frame = Net.Wire_codec.encode_packet swf packet in
           match Net.Wire_codec.decode_packet swf frame with
           | Ok _ -> ()
           | Error err -> failwith ("B10: decode failed: " ^ err)
         done))

let run_b10 rows =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols instance (Benchmark.all cfg [ instance ] (bench_wire_codec ())) in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] ->
        Fmt.pr "%-45s %12.1f ns/run@." name est;
        rows := (name, est) :: !rows
      | Some _ | None -> ())
    results

(* B11: real loopback deployment — delivered-message throughput and mean
   output-commit latency as a function of K, benign network (the proxy and
   kill costs are E14's subject; this is the failure-free wire price). *)
let run_b11 rows =
  let n = 3 in
  let ops = 150 in
  List.iter
    (fun k ->
      let t = Net.Deployment.launch ~n ~k ~seed:(50 + k) () in
      let t0 = Unix.gettimeofday () in
      Net.Deployment.run_workload t ~ops ~seed:21;
      ignore (Net.Deployment.settle t : bool);
      let elapsed = Unix.gettimeofday () -. t0 in
      let outcome = Net.Deployment.finish t in
      if outcome.Net.Deployment.oracle.Harness.Oracle.violations <> [] then
        failwith "B11: oracle violations in a benign run";
      let delivs =
        try List.assoc "deliveries_total" outcome.Net.Deployment.counters
        with Not_found -> 0
      in
      (* Mean output-commit latency from the cluster-merged snapshot's
         [output_latency] histogram — sum and count are exact (the
         daemons rebuild the histogram from raw samples at collect), in
         abstract units (ms at the default time scale). *)
      let lat_count, lat_total =
        match
          Obs.Snapshot.hist outcome.Net.Deployment.obs "output_latency"
        with
        | Some h -> (Obs.Snapshot.hist_count h, h.Obs.Snapshot.sum)
        | None -> (0, 0.)
      in
      let throughput = float_of_int delivs /. elapsed in
      Fmt.pr "B11 k=%d: %d deliveries in %.2f s (%.0f delivs/s)" k delivs elapsed
        throughput;
      rows := (Fmt.str "B11 loopback delivs/s k=%d n=%d" k n, throughput) :: !rows;
      if lat_count > 0 then begin
        let mean = lat_total /. float_of_int lat_count in
        Fmt.pr ", output commit %.1f ms mean" mean;
        rows := (Fmt.str "B11 output commit latency ms k=%d n=%d" k n, mean) :: !rows
      end;
      Fmt.pr "@.";
      Durable.Temp.rm_rf (Net.Deployment.root t))
    [ 0; 1; n ]

(* B12: the same loopback cluster, driven open-loop (no pacing sleeps) —
   measures the batched hot path end to end: group-commit fsyncs, coalesced
   wire writes, per-batch eager flushes and piggybacked notices.  Reports
   delivered-message throughput plus output-commit p50/p99 from the merged
   trace (every 8th injection is a Get, whose reply is a 0-optimistic
   output). *)
let output_latencies (trace : Recovery.Trace.t) =
  List.filter_map
    (fun (e : Recovery.Trace.entry) ->
      match e.Recovery.Trace.ev with
      | Recovery.Trace.Output_committed { latency; _ } -> Some latency
      | _ -> None)
    (Recovery.Trace.events trace)

let percentile sorted p =
  let n = Array.length sorted in
  let idx = int_of_float (Float.round (p /. 100. *. float_of_int n)) - 1 in
  sorted.(max 0 (min (n - 1) idx))

let b12_run ~n ~k ~ops ~seed =
  let t = Net.Deployment.launch ~n ~k ~seed () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to ops - 1 do
    let key = Fmt.str "key%d" (i mod 17) in
    let msg =
      if i mod 8 = 7 then App_model.Kvstore_app.Get key
      else App_model.Kvstore_app.Put { key; value = i * 37 }
    in
    Net.Deployment.inject t ~dst:(i mod n) msg
  done;
  ignore (Net.Deployment.settle t : bool);
  let elapsed = Unix.gettimeofday () -. t0 in
  let outcome = Net.Deployment.finish t in
  if outcome.Net.Deployment.oracle.Harness.Oracle.violations <> [] then
    failwith "B12: oracle violations in a benign run";
  let delivs =
    try List.assoc "deliveries_total" outcome.Net.Deployment.counters with Not_found -> 0
  in
  let lats =
    output_latencies outcome.Net.Deployment.trace
    |> List.sort compare |> Array.of_list
  in
  Durable.Temp.rm_rf (Net.Deployment.root t);
  (float_of_int delivs /. elapsed, lats, delivs)

let run_b12 rows =
  let n = 4 in
  let ops = 9600 in
  List.iter
    (fun k ->
      let throughput, lats, delivs = b12_run ~n ~k ~ops ~seed:(60 + k) in
      Fmt.pr "B12 k=%d: %d deliveries (%.0f delivs/s)" k delivs throughput;
      rows := (Fmt.str "B12 batched delivs/s k=%d n=%d" k n, throughput) :: !rows;
      if Array.length lats > 0 then begin
        let p50 = percentile lats 50. in
        let p99 = percentile lats 99. in
        Fmt.pr ", output commit p50 %.1f / p99 %.1f ms" p50 p99;
        rows :=
          (Fmt.str "B12 output p50 ms k=%d n=%d" k n, p50)
          :: (Fmt.str "B12 output p99 ms k=%d n=%d" k n, p99)
          :: !rows
      end;
      Fmt.pr "@.")
    [ 0; 2; 4 ]

(* CI tripwire, not a perf gate: a reduced open-loop run that must stay
   oracle-clean, commit outputs, and clear a floor far below what the
   batched path delivers on any machine — it only trips if batching
   collapses back to per-event durability. *)
let run_b12_smoke () =
  Fmt.pr "== B12 smoke (batched hot path, reduced size) ==@.";
  let throughput, lats, delivs = b12_run ~n:3 ~k:2 ~ops:400 ~seed:62 in
  Fmt.pr "B12 smoke: %d deliveries, %.0f delivs/s, %d output latency points@."
    delivs throughput (Array.length lats);
  if Array.length lats = 0 then failwith "B12 smoke: no outputs committed";
  if throughput < 500. then
    failwith (Fmt.str "B12 smoke: throughput collapsed (%.0f delivs/s)" throughput)

let run_net () =
  Fmt.pr "== Network benchmarks (B10 wire codec, B11/B12 loopback cluster) ==@.";
  let rows = ref [] in
  run_b10 rows;
  run_b11 rows;
  run_b12 rows;
  (* Merge, not overwrite: BENCH_net.json is shared with the E15 keys
     written by `experiments kv`. *)
  Harness.Report.merge_bench "BENCH_net.json" !rows;
  Fmt.pr "@.wrote BENCH_net.json@.@."

(* CI tripwire over the shared bench file: the E15 smoke keys (written by
   `experiments kv --smoke` earlier in the CI run) must exist and clear a
   floor far below any plausible machine, and the committed full-run E15
   keys must not silently vanish. *)
let run_check_net_floors () =
  let entries = Harness.Report.load_bench "BENCH_net.json" in
  let find key =
    match List.assoc_opt key entries with
    | Some v -> v
    | None -> failwith (Fmt.str "BENCH_net.json: missing key %S" key)
  in
  let smoke_key = "E15 kv delivs/s n=4 k=1 (smoke)" in
  let smoke = find smoke_key in
  if smoke < 50. then
    failwith (Fmt.str "%s: throughput collapsed (%.1f delivs/s)" smoke_key smoke);
  List.iter
    (fun key ->
      if find key <= 0. then failwith (Fmt.str "%s: non-positive" key))
    [ "E15 kv delivs/s n=16 k=2"; "E15 kv delivs/s n=64 k=2" ];
  (* Committed E16 keys: serving-during-recovery must hold on the largest
     committed log — a probe answered (ttfr positive) well before full
     recovery, and incremental checkpoints must keep bounded-replay
     recovery under the whole-log figure. *)
  let ttfr = find "E16 ttfr ms ops=1200 k=2" in
  let ttfull = find "E16 ttfull ms ops=1200 k=2" in
  if ttfr <= 0. then failwith "E16 ttfr ms ops=1200 k=2: non-positive";
  if ttfr >= ttfull then
    failwith
      (Fmt.str
         "E16 ops=1200 k=2: first request not served before full recovery \
          (ttfr %.1f ms >= ttfull %.1f ms)"
         ttfr ttfull);
  let pckpt = find "E16 ttfull ms ops=1200 k=2 pckpt" in
  if pckpt <= 0. || pckpt >= ttfull then
    failwith
      (Fmt.str
         "E16 ops=1200: incremental checkpoints did not beat whole-log \
          replay (%.1f ms vs %.1f ms)"
         pckpt ttfull);
  (* Committed E17 keys: the churn run certified with risk at most K at
     the grown membership width, delivered traffic throughout, and the
     brownout window actually refused flushes (degradation was reported,
     not silently absorbed). *)
  let e17_width = find "E17 membership width k=2" in
  if e17_width < 4. then
    failwith
      (Fmt.str "E17 membership width k=2: cluster never grew (%.0f)" e17_width);
  if find "E17 deliveries k=2" <= 0. then
    failwith "E17 deliveries k=2: non-positive";
  let e17_risk = find "E17 max risk k=2" in
  if e17_risk > 2. then
    failwith (Fmt.str "E17 max risk k=2: exceeds K (%.0f)" e17_risk);
  if find "E17 degraded flushes k=2" < 1. then
    failwith "E17 degraded flushes k=2: brownout refused no flush";
  Fmt.pr
    "net floors ok: %s = %.1f; E16 ttfr %.1f < ttfull %.1f ms (pckpt %.1f); \
     E17 width %.0f risk %.0f@."
    smoke_key smoke ttfr ttfull pckpt e17_width e17_risk

(* Floor guard over the committed BENCH_micro.json: the B13 keys must
   exist, and the per-operation cost of the always-on metrics plane must
   stay low — the ceilings are an order of magnitude above any measured
   figure, so they only trip on a genuine hot-path regression (a lock on
   the increment path, a float box per observation), never on CI machine
   noise. *)
let run_check_micro_floors () =
  let entries = Harness.Report.load_bench "BENCH_micro.json" in
  let find key =
    match List.assoc_opt key entries with
    | Some v -> v
    | None -> failwith (Fmt.str "BENCH_micro.json: missing key %S" key)
  in
  let per_op key ceiling =
    let est = find key in
    let ns = est /. float_of_int b13_ops in
    if ns > ceiling then
      failwith
        (Fmt.str "%s: %.1f ns/op exceeds the %.0f ns ceiling" key ns ceiling);
    ns
  in
  let c = per_op (Fmt.str "B13 obs: counter incr (x%d)" b13_ops) 500. in
  let h = per_op (Fmt.str "B13 obs: histogram observe (x%d)" b13_ops) 1500. in
  Fmt.pr "micro floors ok: obs counter %.1f ns/op, histogram %.1f ns/op@." c h

(* ------------------------------------------------------------------ *)

let run_macro () = List.iter Harness.Report.print (Harness.Experiments.all ())

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match mode with
  | "micro" -> run_micro ()
  | "macro" -> run_macro ()
  | "net" -> run_net ()
  | "b12-smoke" -> run_b12_smoke ()
  | "check-net-floors" -> run_check_net_floors ()
  | "check" ->
    run_check_net_floors ();
    run_check_micro_floors ()
  | _ ->
    run_macro ();
    run_micro ();
    run_net ()
