(* Shared test helpers: testables, generators, and a hand-driving harness
   for exercising a Node without the full cluster. *)

open Depend

let entry = Alcotest.testable Entry.pp Entry.equal

let entry_set = Alcotest.testable Entry_set.pp Entry_set.equal

let dep_vector = Alcotest.testable Dep_vector.pp Dep_vector.equal

let e ~inc ~sii = Entry.make ~inc ~sii

(* QCheck generators *)

let gen_entry =
  QCheck2.Gen.(
    map2 (fun inc sii -> Entry.make ~inc ~sii) (int_bound 5) (int_range 1 40))

let gen_entry_list = QCheck2.Gen.(list_size (int_bound 12) gen_entry)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* A minimal driver that feeds packets to a single node and records its
   outgoing actions, without network, timers or time costs.  Tests drive
   protocol routines one call at a time and inspect the node in between. *)
module Driver = struct
  module Node = Recovery.Node
  module Wire = Recovery.Wire

  type ('s, 'm) t = {
    node : ('s, 'm) Node.t;
    trace : Recovery.Trace.t;
    mutable outbox : 'm Node.action list; (* newest first *)
    mutable clock : float;
  }

  let make ?(pid = 0) ?store_dir config app =
    let trace = Recovery.Trace.create () in
    let node = Node.create ~config ~pid ~app ?store_dir ?obs:None ~trace in
    { node; trace; outbox = []; clock = 0. }

  let absorb t (actions, _cost) = t.outbox <- List.rev_append actions t.outbox

  let tick t =
    t.clock <- t.clock +. 1.;
    t.clock

  let packet t p = absorb t (Node.handle_packet t.node ~now:(tick t) p)

  let inject t ~seq msg = absorb t (Node.inject t.node ~now:(tick t) ~seq msg)

  let flush t = absorb t (Node.flush t.node ~now:(tick t))

  let checkpoint t = absorb t (Node.checkpoint t.node ~now:(tick t))

  let notice t = absorb t (Node.broadcast_notice t.node ~now:(tick t))

  let crash t = Node.crash t.node ~now:(tick t)

  let restart t = absorb t (Node.restart t.node ~now:(tick t))

  let perform t effects = absorb t (Node.perform t.node ~now:(tick t) effects)

  let actions t = List.rev t.outbox

  let clear t = t.outbox <- []

  (* Outgoing released application messages, oldest first. *)
  let released t =
    List.filter_map
      (function
        | Node.Unicast { packet = Wire.App m; _ } -> Some m
        | Node.Unicast _ | Node.Broadcast _ -> None)
      (actions t)

  let announcements t =
    List.filter_map
      (function
        | Node.Broadcast (Wire.Ann a) -> Some a
        | Node.Unicast _ | Node.Broadcast _ -> None)
      (actions t)

  (* Build an incoming application message by hand. *)
  let app_msg ?(idx = 0) ~src ~dst ~send_interval ~dep payload =
    {
      Wire.id = { Wire.origin = src; origin_interval = send_interval; idx };
      src;
      dst;
      send_interval;
      dep;
      payload;
    }

  let ann ~from_ ~ending ?(failure = true) () = { Wire.from_; ending; failure }

  let notice_packet ~from_ ~rows = Wire.Notice { Wire.from_; rows; anns = [] }
end

let counter_config ?(k = 2) ?(n = 4) () =
  Recovery.Config.k_optimistic ~n ~k ()

let quiet_timing =
  {
    Recovery.Config.default_timing with
    flush_interval = None;
    checkpoint_interval = None;
    notice_interval = None;
  }
