(* The checked-in schedule corpus: every serialized schedule must load,
   re-encode byte-for-byte, and replay to its recorded verdict class.
   The corpus pins known-good certifications (Figure 1, K boundaries) and
   known-bad counter-examples (minimized chaos case, a model-checker
   counter-example against a deliberately broken send gate) so that a
   regression in the protocol, the simulator, or the codec shows up as a
   verdict mismatch on a specific, human-readable file. *)

module Schedule = Harness.Schedule
module Explore = Harness.Explore

let corpus_dir = "corpus"

let corpus_files () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".sched")
  |> List.sort String.compare
  |> List.map (Filename.concat corpus_dir)

let replay_file file () =
  let sched =
    match Schedule.load ~file with
    | Ok s -> s
    | Error msg -> Alcotest.failf "%s: parse error: %s" file msg
  in
  (* Encoding is canonical: a loaded schedule re-serializes identically. *)
  let reencoded = Schedule.to_string sched in
  let on_disk = In_channel.with_open_bin file In_channel.input_all in
  Alcotest.(check string) "canonical on disk" reencoded on_disk;
  let verdict = Explore.replay sched in
  if not (Explore.verdict_matches sched.Schedule.expect verdict) then
    Alcotest.failf "%s: expected %s, replayed to %a" file
      (Schedule.expect_to_string sched.Schedule.expect)
      Harness.Chaos.pp_verdict verdict

let test_corpus_nonempty () =
  Alcotest.(check bool) "corpus has schedules" true (corpus_files () <> [])

let suite =
  Alcotest.test_case "corpus is non-empty" `Quick test_corpus_nonempty
  :: List.map
       (fun file ->
         Alcotest.test_case (Filename.basename file) `Slow (replay_file file))
       (corpus_files ())
