(* Wire-codec properties, mirroring the durable-codec suite in
   test_fuzz.ml: every packet/control/trace value round-trips exactly, and
   no single-byte mutation of a frame can decode to a *different* valid
   value — the CRC covers the version, kind and length fields as well as
   the payload, so corruption is always reported, never reinterpreted. *)

open Util
module Wire = Recovery.Wire
module Trace = Recovery.Trace
module Wire_codec = Net.Wire_codec
module Trace_codec = Net.Trace_codec

let swf = App_model.App_intf.string_wire_format

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

open QCheck2.Gen

let gen_pid = int_bound 7

let gen_payload = string_size (int_bound 40)

(* Exact binary64 values that survive the float <-> bits round trip and
   compare with (=): built from integers. *)
let gen_time = map2 (fun a b -> float_of_int a +. (float_of_int b /. 64.)) (int_bound 10_000) (int_bound 63)

let gen_identity =
  map3
    (fun origin origin_interval idx -> { Wire.origin; origin_interval; idx })
    (int_range (-1) 7) gen_entry (int_bound 4)

let gen_dep = list_size (int_bound 6) (pair gen_pid gen_entry)

let gen_app_message =
  map
    (fun (id, (src, dst), send_interval, dep, payload) ->
      { Wire.id; src; dst; send_interval; dep; payload })
    (tup5 gen_identity (pair gen_pid gen_pid) gen_entry gen_dep gen_payload)

let gen_announcement =
  map3
    (fun from_ ending failure -> { Wire.from_; ending; failure })
    gen_pid gen_entry bool

let gen_notice =
  map3
    (fun from_ rows anns -> { Wire.from_; rows; anns })
    gen_pid
    (list_size (int_bound 4) (pair gen_pid (list_size (int_bound 3) gen_entry)))
    (list_size (int_bound 3) gen_announcement)

let gen_ack =
  map3
    (fun from_ to_ ids -> { Wire.from_; to_; ids })
    gen_pid gen_pid
    (list_size (int_bound 5) gen_identity)

let gen_dep_info =
  frequency
    [
      (1, return Wire.Gone);
      ( 3,
        map2
          (fun stable parents -> Wire.Info { stable; parents })
          bool gen_dep );
    ]

let gen_packet =
  frequency
    [
      (4, map (fun m -> Wire.App m) gen_app_message);
      (2, map (fun a -> Wire.Ann a) gen_announcement);
      (2, map (fun n -> Wire.Notice n) gen_notice);
      (2, map (fun a -> Wire.Ack a) gen_ack);
      (1, map (fun from_ -> Wire.Flush_request { from_ }) gen_pid);
      ( 1,
        map2
          (fun from_ intervals -> Wire.Dep_query { from_; intervals })
          gen_pid (list_size (int_bound 5) gen_entry) );
      ( 1,
        map2
          (fun from_ infos -> Wire.Dep_reply { from_; infos })
          gen_pid
          (list_size (int_bound 4) (pair gen_entry gen_dep_info)) );
    ]

let gen_status =
  map
    (fun (((up, pending), (sb, rb), (ob, del), (tl, cur)), (recovering, rp)) ->
      {
        Wire_codec.st_up = up;
        st_pending = pending;
        st_send_buf = sb;
        st_recv_buf = rb;
        st_out_buf = ob;
        st_deliveries = del;
        st_trace_len = tl;
        st_current = cur;
        st_recovering = recovering;
        st_replay_pending = rp;
      })
    (pair
       (tup4 (pair bool small_nat) (pair small_nat small_nat)
          (pair small_nat small_nat) (pair small_nat gen_entry))
       (pair bool small_nat))

let gen_tick = oneofl [ `Flush; `Checkpoint; `Notice ]

let gen_control =
  frequency
    [
      (1, map (fun pid -> Wire_codec.Hello { pid }) gen_pid);
      ( 3,
        map2
          (fun seq payload -> Wire_codec.Inject { seq; payload })
          small_nat gen_payload );
      (1, map (fun t -> Wire_codec.Tick t) gen_tick);
      (1, return Wire_codec.Crash);
      (1, return Wire_codec.Status_req);
      (1, map (fun s -> Wire_codec.Status s) gen_status);
      (1, return Wire_codec.Quit);
      (1, return Wire_codec.Bye);
      (1, map2 (fun pid port -> Wire_codec.Add_peer { pid; port }) gen_pid small_nat);
      (1, return Wire_codec.Retire_req);
      ( 1,
        map2
          (fun slow rounds -> Wire_codec.Arm_brownout { slow; rounds })
          (option gen_time) (int_bound 5) );
      (1, return Wire_codec.Stats_req);
      (* Stats carries an opaque exposition text; the codec must pass any
         bytes through, newlines and quotes included. *)
      (1, map (fun s -> Wire_codec.Stats s) (string_size (int_bound 200)));
    ]

let gen_output_id =
  map2 (fun out_interval out_idx -> { Wire.out_interval; out_idx }) gen_entry (int_bound 5)

let gen_event =
  frequency
    [
      ( 3,
        map
          (fun ((pid, interval), (pred, by), (sender_interval, digest), replay) ->
            Trace.Interval_started
              { pid; interval; pred; by; sender_interval; digest; replay })
          (tup4 (pair gen_pid gen_entry)
             (pair (option gen_entry) (option gen_identity))
             (pair (option gen_entry) int)
             bool) );
      ( 2,
        map
          (fun (id, (src, dst), send_interval) ->
            Trace.Message_sent { id; src; dst; send_interval })
          (triple gen_identity (pair gen_pid gen_pid) gen_entry) );
      ( 2,
        map3
          (fun id dep_size blocked -> Trace.Message_released { id; dep_size; blocked })
          gen_identity (int_bound 8) gen_time );
      ( 2,
        map3
          (fun id dst interval -> Trace.Message_delivered { id; dst; interval })
          gen_identity gen_pid gen_entry );
      ( 1,
        map3
          (fun id dst orphan ->
            Trace.Message_discarded
              {
                id;
                dst;
                reason = (if orphan then Trace.Orphan_message else Trace.Duplicate);
              })
          gen_identity gen_pid bool );
      (1, map2 (fun id src -> Trace.Send_cancelled { id; src }) gen_identity gen_pid);
      (1, map2 (fun pid upto -> Trace.Stability_advanced { pid; upto }) gen_pid gen_entry);
      ( 1,
        map2 (fun pid interval -> Trace.Checkpoint_taken { pid; interval }) gen_pid gen_entry
      );
      ( 1,
        map2
          (fun pid first_lost -> Trace.Crashed { pid; first_lost })
          gen_pid (option gen_entry) );
      ( 1,
        map3
          (fun pid announced new_current -> Trace.Restarted { pid; announced; new_current })
          gen_pid gen_announcement gen_entry );
      ( 1,
        map
          (fun ((pid, restored), (first_undone, new_current), because) ->
            Trace.Rolled_back { pid; restored; first_undone; new_current; because })
          (triple (pair gen_pid gen_entry) (pair gen_entry gen_entry) gen_announcement)
      );
      ( 1,
        map2
          (fun pid ann -> Trace.Announcement_received { pid; ann })
          gen_pid gen_announcement );
      (1, map2 (fun pid entries -> Trace.Notice_sent { pid; entries }) gen_pid small_nat);
      ( 1,
        map3
          (fun pid id text -> Trace.Output_buffered { pid; id; text })
          gen_pid gen_output_id gen_payload );
      ( 1,
        map
          (fun (pid, id, text, latency) ->
            Trace.Output_committed { pid; id; text; latency })
          (tup4 gen_pid gen_output_id gen_payload gen_time) );
    ]

let gen_trace_entry =
  map3 (fun time seq ev -> { Trace.time; seq; ev }) gen_time small_nat gen_event

(* ------------------------------------------------------------------ *)
(* Round trips                                                         *)

let test_packet_roundtrip =
  qtest ~count:1000 "packet: decode inverts encode (every kind)" gen_packet
    (fun packet ->
      match Wire_codec.decode_packet swf (Wire_codec.encode_packet swf packet) with
      | Ok p -> p = packet
      | Error _ -> false)

let test_control_roundtrip =
  qtest ~count:500 "control: decode inverts encode (every kind)" gen_control
    (fun ctl ->
      match Wire_codec.decode_control swf (Wire_codec.encode_control swf ctl) with
      | Ok c -> c = ctl
      | Error _ -> false)

let test_trace_roundtrip =
  qtest ~count:1000 "trace entry: decode inverts encode (every event)"
    gen_trace_entry (fun entry ->
      match Trace_codec.decode_entry (Trace_codec.encode_entry entry) with
      | Ok e -> e = entry
      | Error _ -> false)

let kv_wire = App_model.Kvstore_app.wire

let gen_kv_msg =
  let key = string_size (int_bound 12) in
  frequency
    [
      ( 2,
        map2 (fun key value -> App_model.Kvstore_app.Put { key; value }) key int );
      ( 1,
        map3
          (fun key value version ->
            App_model.Kvstore_app.Replica { key; value; version })
          key int small_nat );
      (1, map (fun k -> App_model.Kvstore_app.Get k) key);
    ]

let test_kv_roundtrip =
  qtest ~count:500 "kvstore payload: read inverts write" gen_kv_msg (fun msg ->
      match kv_wire.App_model.App_intf.read (kv_wire.App_model.App_intf.write msg) with
      | Ok m -> m = msg
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Data frames: piggybacked notices and coalesced batches              *)

let test_data_frame_roundtrip =
  qtest ~count:800 "data frame: piggybacked notice rides along and round-trips"
    (tup2 gen_app_message (option gen_notice))
    (fun (m, piggyback) ->
      let frame = Wire_codec.encode_data swf ?piggyback m in
      (* without a notice the frame is byte-identical to a plain App packet *)
      (match piggyback with
      | None -> frame = Wire_codec.encode_packet swf (Wire.App m)
      | Some _ -> true)
      &&
      match Wire_codec.decode_frame frame ~pos:0 with
      | Error _ -> false
      | Ok (kind, body, next) -> (
        next = String.length frame
        &&
        match Wire_codec.decode_data_body swf ~kind body with
        | Ok (m', nt') -> m' = m && nt' = piggyback
        | Error _ -> false))

(* The transport's writer coalesces its whole queue into one write.
   Frames are self-delimiting, so a reader walking the concatenation must
   recover exactly the per-frame sequence — and a tear mid-batch (the
   connection dying partway through the single syscall) must still yield
   a true prefix, never a reinterpreted frame. *)
let gen_frame =
  frequency
    [
      (3, map (Wire_codec.encode_packet swf) gen_packet);
      ( 2,
        map2
          (fun m notice -> Wire_codec.encode_data swf ?piggyback:notice m)
          gen_app_message (option gen_notice) );
    ]

let test_coalesced_batch_decodes_like_per_frame =
  qtest ~count:500
    "coalesced batch: one write decodes to the per-frame sequence (even torn)"
    (tup2 (list_size (int_range 1 8) gen_frame) (int_bound 100_000))
    (fun (frames, cut_seed) ->
      let batch = String.concat "" frames in
      let walk s =
        let rec loop pos acc =
          if pos >= String.length s then List.rev acc
          else
            match Wire_codec.decode_frame s ~pos with
            | Ok (kind, body, next) -> loop next ((kind, body) :: acc)
            | Error _ -> List.rev acc
        in
        loop 0 []
      in
      let expected =
        List.map
          (fun f ->
            match Wire_codec.decode_frame f ~pos:0 with
            | Ok (kind, body, _) -> (kind, body)
            | Error e -> Alcotest.failf "generated frame undecodable: %s" e)
          frames
      in
      let rec is_prefix xs ys =
        match (xs, ys) with
        | [], _ -> true
        | x :: xs, y :: ys -> x = y && is_prefix xs ys
        | _ :: _, [] -> false
      in
      walk batch = expected
      &&
      let cut = cut_seed mod (String.length batch + 1) in
      is_prefix (walk (String.sub batch 0 cut)) expected)

(* ------------------------------------------------------------------ *)
(* Mutation                                                            *)

let test_packet_single_byte_mutation =
  qtest ~count:1500
    "packet: no single-byte mutation decodes to a different valid packet"
    (tup3 gen_packet (int_bound 100_000) (int_range 1 255))
    (fun (packet, off_seed, xor) ->
      let frame = Wire_codec.encode_packet swf packet in
      let off = off_seed mod String.length frame in
      let mutated = Bytes.of_string frame in
      Bytes.set mutated off (Char.chr (Char.code (Bytes.get mutated off) lxor xor));
      match Wire_codec.decode_packet swf (Bytes.to_string mutated) with
      | Error _ -> true (* detected *)
      | Ok p -> p = packet (* a mutation may never fabricate a new packet *))

let test_kv_payload_mutation =
  qtest ~count:800 "kvstore payload: mutation is an error or the same value"
    (tup3 gen_kv_msg (int_bound 100_000) (int_range 1 255))
    (fun (msg, off_seed, xor) ->
      let s = kv_wire.App_model.App_intf.write msg in
      if String.length s = 0 then true
      else begin
        let off = off_seed mod String.length s in
        let mutated = Bytes.of_string s in
        Bytes.set mutated off (Char.chr (Char.code (Bytes.get mutated off) lxor xor));
        (* The frame CRC catches wire corruption before the payload reader
           runs; what the reader itself owes us on arbitrary bytes is an
           [Error] or a value — never an exception. *)
        match kv_wire.App_model.App_intf.read (Bytes.to_string mutated) with
        | Error _ | Ok _ -> true
        | exception _ -> false
      end)

(* A trace file cut at an arbitrary byte (the SIGKILL torn tail) loads as
   a true prefix, with the damage reported. *)
let test_trace_stream_tear =
  qtest ~count:500 "trace stream: a torn tail loads as a reported true prefix"
    (tup2 (list_size (int_range 1 6) gen_trace_entry) (int_bound 100_000))
    (fun (entries, cut_seed) ->
      let whole = String.concat "" (List.map Trace_codec.encode_entry entries) in
      let cut = cut_seed mod (String.length whole + 1) in
      let torn = String.sub whole 0 cut in
      let load = Trace_codec.decode_stream torn in
      let rec is_prefix xs ys =
        match (xs, ys) with
        | [], _ -> true
        | x :: xs, y :: ys -> x = y && is_prefix xs ys
        | _ :: _, [] -> false
      in
      is_prefix load.Trace_codec.entries entries
      &&
      (* no silent truncation: an undamaged load accounted for every byte *)
      match load.Trace_codec.damage with
      | None ->
        String.concat "" (List.map Trace_codec.encode_entry load.Trace_codec.entries)
        = torn
      | Some _ -> true)

let suite =
  [
    test_packet_roundtrip;
    test_control_roundtrip;
    test_trace_roundtrip;
    test_kv_roundtrip;
    test_data_frame_roundtrip;
    test_coalesced_batch_decodes_like_per_frame;
    test_packet_single_byte_mutation;
    test_kv_payload_mutation;
    test_trace_stream_tear;
  ]
