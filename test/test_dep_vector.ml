(* Dependency vectors with NULL entries. *)

open Depend
open Util

let gen_vec ~n =
  QCheck2.Gen.(
    map
      (fun opts ->
        let v = Dep_vector.create ~n in
        List.iteri (fun j o -> Dep_vector.set v j o) opts;
        v)
      (list_repeat n (option gen_entry)))

let gen_vec4 = gen_vec ~n:4

let test_create_all_null () =
  let v = Dep_vector.create ~n:5 in
  Alcotest.(check int) "no entries" 0 (Dep_vector.non_null_count v);
  Alcotest.(check int) "size" 5 (Dep_vector.n v);
  for j = 0 to 4 do
    Alcotest.(check bool) "null" true (Dep_vector.get v j = None)
  done

let test_create_invalid () =
  Alcotest.check_raises "n=0" (Invalid_argument "Dep_vector.create: n must be positive")
    (fun () -> ignore (Dep_vector.create ~n:0))

let test_merge_lexmax () =
  let a = Dep_vector.create ~n:3 and b = Dep_vector.create ~n:3 in
  Dep_vector.set a 0 (Some (e ~inc:0 ~sii:5));
  Dep_vector.set b 0 (Some (e ~inc:1 ~sii:2));
  Dep_vector.set a 1 (Some (e ~inc:0 ~sii:9));
  Dep_vector.set b 2 (Some (e ~inc:0 ~sii:1));
  Dep_vector.merge_max ~into:a b;
  Alcotest.(check (option entry)) "incarnation wins" (Some (e ~inc:1 ~sii:2))
    (Dep_vector.get a 0);
  Alcotest.(check (option entry)) "kept" (Some (e ~inc:0 ~sii:9)) (Dep_vector.get a 1);
  Alcotest.(check (option entry)) "acquired" (Some (e ~inc:0 ~sii:1))
    (Dep_vector.get a 2)

let merge_copy a b =
  let r = Dep_vector.copy a in
  Dep_vector.merge_max ~into:r b;
  r

let test_merge_commutative =
  qtest "merge is commutative" QCheck2.Gen.(pair gen_vec4 gen_vec4) (fun (a, b) ->
      Dep_vector.equal (merge_copy a b) (merge_copy b a))

let test_merge_associative =
  qtest "merge is associative" QCheck2.Gen.(triple gen_vec4 gen_vec4 gen_vec4)
    (fun (a, b, c) ->
      Dep_vector.equal
        (merge_copy (merge_copy a b) c)
        (merge_copy a (merge_copy b c)))

let test_merge_idempotent =
  qtest "merge is idempotent" gen_vec4 (fun a ->
      Dep_vector.equal (merge_copy a a) a)

let test_merge_null_identity =
  qtest "all-NULL vector is the identity" gen_vec4 (fun a ->
      Dep_vector.equal (merge_copy a (Dep_vector.create ~n:4)) a)

let test_merge_size_mismatch () =
  let a = Dep_vector.create ~n:2 and b = Dep_vector.create ~n:3 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Dep_vector.merge_max: size mismatch")
    (fun () -> Dep_vector.merge_max ~into:a b)

let test_wire_roundtrip =
  qtest "non_null/of_non_null roundtrip" gen_vec4 (fun a ->
      Dep_vector.equal a (Dep_vector.of_non_null ~n:4 (Dep_vector.non_null a)))

let test_non_null_sorted =
  qtest "wire entries sorted by process" gen_vec4 (fun a ->
      let idx = List.map fst (Dep_vector.non_null a) in
      List.sort Int.compare idx = idx)

let test_elide_stable () =
  (* Theorem 2: entries on known-stable intervals are dropped. *)
  let v = Dep_vector.create ~n:3 in
  Dep_vector.set v 0 (Some (e ~inc:0 ~sii:3));
  Dep_vector.set v 1 (Some (e ~inc:0 ~sii:7));
  Dep_vector.set v 2 (Some (e ~inc:1 ~sii:2));
  let stable j (x : Entry.t) = j = 0 || (j = 2 && x.inc = 1) in
  let elided = Dep_vector.elide_stable v ~stable in
  Alcotest.(check int) "two elided" 2 elided;
  Alcotest.(check (option entry)) "0 gone" None (Dep_vector.get v 0);
  Alcotest.(check (option entry)) "1 kept" (Some (e ~inc:0 ~sii:7)) (Dep_vector.get v 1);
  Alcotest.(check (option entry)) "2 gone" None (Dep_vector.get v 2)

(* Theorem 2's actual claim, as a law: eliding entries on known-stable
   intervals never changes any later orphan-detection verdict.  Stability
   comes from per-process logging-progress frontiers; the incarnation end
   table is constrained to be *consistent* with them — an interval
   announced stable is never revoked (stable intervals are recoverable, so
   no failure rolls them back; that consistency is what the protocol and
   oracle guarantee, and what the theorem presupposes). *)
let gen_theorem2 =
  let n = 4 in
  QCheck2.Gen.(
    let gen_process =
      (* (stable frontier, raw iet entries) for one process *)
      pair gen_entry (list_size (int_bound 4) gen_entry)
    in
    pair (gen_vec ~n) (list_repeat n gen_process))

let test_elide_preserves_orphan_verdicts =
  qtest "Theorem 2: elision never changes orphan verdicts" gen_theorem2
    (fun (v, processes) ->
      let rows =
        List.map
          (fun ((frontier : Entry.t), raw_iet) ->
            let log = Entry_set.insert Entry_set.empty frontier in
            (* Consistency: a rollback announcement by an incarnation >=
               the frontier's must end at or beyond the frontier index,
               otherwise it would revoke a stable interval. *)
            let iet =
              List.fold_left
                (fun iet (e : Entry.t) ->
                  let e =
                    if e.Entry.inc >= frontier.Entry.inc
                       && e.Entry.sii < frontier.Entry.sii
                    then Entry.make ~inc:e.Entry.inc ~sii:frontier.Entry.sii
                    else e
                  in
                  Entry_set.insert iet e)
                Entry_set.empty raw_iet
            in
            (log, iet))
          processes
      in
      let log j = fst (List.nth rows j) in
      let iet j = snd (List.nth rows j) in
      (* The verdict the protocol derives from a vector: does any entry
         witness a dependency on a revoked interval? (Check_orphan.) *)
      let orphaned vec =
        List.exists (fun (j, e) -> Entry_set.orphans (iet j) e)
          (Dep_vector.non_null vec)
      in
      let before = orphaned v in
      let elided = Dep_vector.copy v in
      ignore
        (Dep_vector.elide_stable elided ~stable:(fun j e ->
             Entry_set.covers (log j) e));
      orphaned elided = before)

let test_clear () =
  let v = Dep_vector.create ~n:2 in
  Dep_vector.set v 1 (Some (e ~inc:0 ~sii:1));
  Dep_vector.clear v 1;
  Alcotest.(check int) "cleared" 0 (Dep_vector.non_null_count v)

let test_copy_isolated () =
  let v = Dep_vector.create ~n:2 in
  Dep_vector.set v 0 (Some (e ~inc:0 ~sii:1));
  let w = Dep_vector.copy v in
  Dep_vector.clear v 0;
  Alcotest.(check (option entry)) "copy unaffected" (Some (e ~inc:0 ~sii:1))
    (Dep_vector.get w 0)

let test_of_non_null_bad_index () =
  Alcotest.check_raises "index" (Invalid_argument "Dep_vector.of_non_null: bad index")
    (fun () -> ignore (Dep_vector.of_non_null ~n:2 [ (5, e ~inc:0 ~sii:1) ]))

(* Multi-incarnation tracker *)

let test_multi_dep_basic () =
  let m = Multi_dep.create ~n:3 in
  Multi_dep.add m 1 (e ~inc:0 ~sii:4);
  Multi_dep.add m 1 (e ~inc:1 ~sii:5);
  Multi_dep.add m 1 (e ~inc:0 ~sii:2);
  (* Section 2: both incarnations tracked, per-incarnation maxima. *)
  Alcotest.(check (list (pair int entry)))
    "two entries for P1"
    [ (1, e ~inc:0 ~sii:4); (1, e ~inc:1 ~sii:5) ]
    (Multi_dep.entries m);
  Alcotest.(check bool) "depends on smaller" true
    (Multi_dep.depends_on m 1 (e ~inc:0 ~sii:3));
  Alcotest.(check bool) "not beyond max" false
    (Multi_dep.depends_on m 1 (e ~inc:0 ~sii:5));
  Alcotest.(check bool) "other process" false
    (Multi_dep.depends_on m 2 (e ~inc:0 ~sii:1))

let test_multi_dep_merge =
  qtest "multi_dep merge = union"
    QCheck2.Gen.(pair (list_size (int_bound 10) (pair (int_bound 3) gen_entry))
                   (list_size (int_bound 10) (pair (int_bound 3) gen_entry)))
    (fun (xs, ys) ->
      let build entries =
        let m = Multi_dep.create ~n:4 in
        List.iter (fun (j, en) -> Multi_dep.add m j en) entries;
        m
      in
      let a = build xs and b = build ys in
      Multi_dep.merge ~into:a b;
      Multi_dep.equal a (build (xs @ ys)))

let suite =
  [
    Alcotest.test_case "create all NULL (Corollary 3)" `Quick test_create_all_null;
    Alcotest.test_case "create invalid" `Quick test_create_invalid;
    Alcotest.test_case "merge takes lexicographic max" `Quick test_merge_lexmax;
    Alcotest.test_case "merge size mismatch" `Quick test_merge_size_mismatch;
    Alcotest.test_case "elide stable (Theorem 2)" `Quick test_elide_stable;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "copy isolation" `Quick test_copy_isolated;
    Alcotest.test_case "of_non_null bad index" `Quick test_of_non_null_bad_index;
    Alcotest.test_case "multi-incarnation tracking (Section 2)" `Quick
      test_multi_dep_basic;
    test_merge_commutative;
    test_merge_associative;
    test_merge_idempotent;
    test_elide_preserves_orphan_verdicts;
    test_merge_null_identity;
    test_wire_roundtrip;
    test_non_null_sorted;
    test_multi_dep_merge;
  ]
