(* Protocol fuzzer: drive a single node with random packet/timer/crash
   sequences and check local invariants after every step.

   The invariants:
   - the node never raises;
   - every released message carries at most K dependency entries (the
     local face of Theorem 4);
   - the self entry of the vector is either NULL or the current interval;
   - the stability frontier never exceeds the current interval;
   - the current interval never moves backwards except through a rollback
     or restart, which must strictly increase the incarnation;
   - after a final crash+restart, the replayed application state digest
     matches the digest the live run had at the stability frontier. *)

open Depend
open Util
module Node = Recovery.Node
module Wire = Recovery.Wire
module Config = Recovery.Config
module D = Util.Driver

let counter = App_model.Counter_app.app

type cmd =
  | Inject of int
  | Incoming of { src : int; inc : int; sii : int; idx : int; fwd : bool }
  | Announce of { src : int; inc : int; sii : int }
  | Notice of { src : int; inc : int; sii : int }
  | Ack_all
  | Flush
  | Checkpoint
  | Crash_restart
  | Perform_send of int

let gen_cmd =
  QCheck2.Gen.(
    frequency
      [
        (4, map (fun v -> Inject v) (int_range 1 9));
        ( 6,
          map
            (fun (src, inc, sii, idx, fwd) -> Incoming { src; inc; sii; idx; fwd })
            (tup5 (int_range 1 3) (int_bound 2) (int_range 1 20) (int_bound 2) bool) );
        ( 3,
          map
            (fun (src, inc, sii) -> Announce { src; inc; sii })
            (triple (int_range 1 3) (int_bound 2) (int_range 1 20)) );
        ( 3,
          map
            (fun (src, inc, sii) -> Notice { src; inc; sii })
            (triple (int_range 1 3) (int_bound 2) (int_range 1 20)) );
        (1, return Ack_all);
        (3, return Flush);
        (2, return Checkpoint);
        (1, return Crash_restart);
        (2, map (fun dst -> Perform_send dst) (int_range 1 3));
      ])

let gen_cmds = QCheck2.Gen.(list_size (int_range 5 60) gen_cmd)

exception Violation of string

let check_invariants ~k d ~prev_current =
  let node = d.D.node in
  let current = Node.current node in
  let frontier = Node.stable_frontier node in
  if Entry.lt current prev_current && current.Entry.inc <= prev_current.Entry.inc
  then
    raise
      (Violation
         (Fmt.str "current moved back without an incarnation bump: %a -> %a"
            Entry.pp prev_current Entry.pp current));
  if Entry.lt current frontier then
    raise
      (Violation
         (Fmt.str "stability frontier %a beyond current %a" Entry.pp frontier
            Entry.pp current));
  (match Dep_vector.get (Node.dep_vector node) 0 with
  | None -> ()
  | Some e ->
    if not (Entry.equal e current) then
      raise
        (Violation
           (Fmt.str "self entry %a is neither NULL nor current %a" Entry.pp e
              Entry.pp current)));
  List.iter
    (fun (m : _ Wire.app_message) ->
      if List.length m.dep > k then
        raise
          (Violation
             (Fmt.str "released message with %d > K=%d entries"
                (List.length m.dep) k)))
    (D.released d);
  D.clear d

let run_cmds ~k cmds =
  let config = Config.k_optimistic ~timing:quiet_timing ~n:4 ~k () in
  let d = D.make config counter in
  let seq = ref 0 in
  let ack_candidates = ref [] in
  let apply = function
    | Inject v ->
      incr seq;
      D.inject d ~seq:!seq (App_model.Counter_app.Add v)
    | Incoming { src; inc; sii; idx; fwd } ->
      let payload =
        if fwd then App_model.Counter_app.Forward { dst = (src + 1) mod 4; amount = 1 }
        else App_model.Counter_app.Add 1
      in
      let m =
        D.app_msg ~idx ~src ~dst:0 ~send_interval:(e ~inc ~sii)
          ~dep:[ (src, e ~inc ~sii) ]
          payload
      in
      D.packet d (Wire.App m)
    | Announce { src; inc; sii } ->
      D.packet d (Wire.Ann { Wire.from_ = src; ending = e ~inc ~sii; failure = true })
    | Notice { src; inc; sii } ->
      D.packet d (D.notice_packet ~from_:src ~rows:[ (src, [ e ~inc ~sii ]) ])
    | Ack_all ->
      List.iter (fun id -> D.packet d (Wire.Ack { Wire.from_ = 1; to_ = 0; ids = [ id ] }))
        !ack_candidates;
      ack_candidates := []
    | Flush -> D.flush d
    | Checkpoint -> D.checkpoint d
    | Crash_restart ->
      D.crash d;
      D.restart d
    | Perform_send dst ->
      D.perform d [ App_model.App_intf.send dst (App_model.Counter_app.Add 1) ]
  in
  List.iter
    (fun cmd ->
      let prev_current = Node.current d.node in
      ack_candidates :=
        List.map (fun (m : _ Wire.app_message) -> m.Wire.id) (D.released d)
        @ !ack_candidates;
      apply cmd;
      check_invariants ~k d ~prev_current)
    cmds;
  d

let fuzz_property ~k cmds =
  match run_cmds ~k cmds with
  | _ -> true
  | exception Violation msg -> QCheck2.Test.fail_report msg

let test_fuzz_k0 = qtest ~count:150 "fuzz: invariants hold at K=0" gen_cmds (fuzz_property ~k:0)

let test_fuzz_k1 = qtest ~count:150 "fuzz: invariants hold at K=1" gen_cmds (fuzz_property ~k:1)

let test_fuzz_k4 = qtest ~count:150 "fuzz: invariants hold at K=4" gen_cmds (fuzz_property ~k:4)

(* Replay determinism under fuzzing: after any command sequence, flush,
   crash and restart; every interval the restart replays must carry the
   same application digest the live run recorded when it first executed
   that interval.  The check is intervalwise rather than a comparison of
   final states because the post-restart state may legally run {e ahead}
   of the pre-crash state: restart rebuilds its logging-progress knowledge
   from stable storage alone (notices are soft state), and the rebuilt
   dependency vector can make a still-buffered message deliverable that
   the live run was holding back. *)
let test_fuzz_replay =
  qtest ~count:150 "fuzz: crash replay reproduces the stable prefix" gen_cmds
    (fun cmds ->
      match run_cmds ~k:2 cmds with
      | exception Violation msg -> QCheck2.Test.fail_report msg
      | d ->
        D.flush d;
        let live = Hashtbl.create 64 in
        List.iter
          (fun { Recovery.Trace.ev; _ } ->
            match ev with
            | Recovery.Trace.Interval_started { interval; digest; replay = false; _ }
              ->
              (* Incarnation bumps never reuse numbers, so each interval is
                 executed live exactly once. *)
              Hashtbl.replace live interval digest
            | _ -> ())
          (Recovery.Trace.events d.trace);
        let before = Recovery.Trace.length d.trace in
        D.crash d;
        D.restart d;
        List.for_all
          (fun { Recovery.Trace.ev; _ } ->
            match ev with
            | Recovery.Trace.Interval_started { interval; digest; replay = true; _ }
              ->
              Hashtbl.find_opt live interval = Some digest
            | _ -> true)
          (Recovery.Trace.suffix d.trace ~from_:before))

(* The Strom-Yemini configuration must survive the same fuzzing. *)
let test_fuzz_sy =
  qtest ~count:100 "fuzz: Strom-Yemini configuration never raises" gen_cmds
    (fun cmds ->
      let config = Config.strom_yemini ~timing:quiet_timing ~n:4 () in
      let d = D.make config counter in
      let seq = ref 0 in
      List.iter
        (fun cmd ->
          match cmd with
          | Inject v ->
            incr seq;
            D.inject d ~seq:!seq (App_model.Counter_app.Add v)
          | Incoming { src; inc; sii; idx; _ } ->
            D.packet d
              (Wire.App
                 (D.app_msg ~idx ~src ~dst:0 ~send_interval:(e ~inc ~sii)
                    ~dep:[ (src, e ~inc ~sii) ]
                    (App_model.Counter_app.Add 1)))
          | Announce { src; inc; sii } ->
            D.packet d
              (Wire.Ann { Wire.from_ = src; ending = e ~inc ~sii; failure = inc = 0 })
          | Notice { src; inc; sii } ->
            D.packet d (D.notice_packet ~from_:src ~rows:[ (src, [ e ~inc ~sii ]) ])
          | Ack_all -> ()
          | Flush -> D.flush d
          | Checkpoint -> D.checkpoint d
          | Crash_restart ->
            D.crash d;
            D.restart d
          | Perform_send dst ->
            D.perform d [ App_model.App_intf.send dst (App_model.Counter_app.Add 1) ])
        cmds;
      true)

(* Netmodel fault-plan equivalence: the fault machinery draws from its own
   RNG stream, so a plan with no loss, no reordering and no partitions must
   be observationally identical to the plain model — same arrival for the
   same timing seed, packet by packet. *)

let gen_net_schedule =
  QCheck2.Gen.(
    pair (int_range 0 1000)
      (list_size (int_range 1 80)
         (tup4 (int_range 0 700) (int_range 0 3) (int_range 0 3) (int_range 0 5))))

let net_steps f steps =
  List.for_all
    (fun (dt, src, dst, entries) ->
      let now = float_of_int dt /. 7. in
      let kind = if entries mod 2 = 0 then "app" else "notice" in
      f ~now ~src ~dst ~kind ~entries)
    steps

let test_netmodel_zero_plan_equiv =
  qtest ~count:200 "netmodel: zeroed fault plan is observationally identical"
    gen_net_schedule (fun (seed, steps) ->
      let timing = Recovery.Config.default_timing in
      let plain = Harness.Netmodel.create ~n:4 ~timing ~rng:(Sim.Rng.create seed) () in
      let planned =
        Harness.Netmodel.create ~n:4 ~timing ~rng:(Sim.Rng.create seed)
          ~fault_rng:(Sim.Rng.create (seed + 1))
          ~plan:
            {
              Harness.Netmodel.loss = 0.;
              duplicate = 0.;
              reorder = 0.;
              reorder_spread = 17.;
              partitions = [];
            }
          ()
      in
      net_steps
        (fun ~now ~src ~dst ~kind ~entries ->
          let base = Harness.Netmodel.transit plain ~now ~src ~dst ~kind ~entries in
          Harness.Netmodel.arrivals planned ~now ~src ~dst ~kind ~entries = [ base ])
        steps)

(* Duplication only echoes packets: the first arrival of every packet is
   exactly the plain model's arrival (the timing stream is untouched by
   fault draws), and any echo comes strictly no earlier. *)
let test_netmodel_duplication_first_arrival =
  qtest ~count:200 "netmodel: duplication-only plan preserves first arrivals"
    gen_net_schedule (fun (seed, steps) ->
      let timing = Recovery.Config.default_timing in
      let plain = Harness.Netmodel.create ~n:4 ~timing ~rng:(Sim.Rng.create seed) () in
      let planned =
        Harness.Netmodel.create ~n:4 ~timing ~rng:(Sim.Rng.create seed)
          ~fault_rng:(Sim.Rng.create (seed + 1))
          ~plan:{ Harness.Netmodel.benign with duplicate = 0.5 }
          ()
      in
      net_steps
        (fun ~now ~src ~dst ~kind ~entries ->
          let base = Harness.Netmodel.transit plain ~now ~src ~dst ~kind ~entries in
          match Harness.Netmodel.arrivals planned ~now ~src ~dst ~kind ~entries with
          | [ a ] -> a = base
          | [ a; echo ] -> a = base && echo >= a
          | _ -> false)
        steps)

(* Durable record codec: the property open-time recovery rests on.  A
   reader faced with mutated bytes may lose records (truncation) but must
   never accept a record that was not written. *)

module Codec = Durable.Codec

let gen_record = QCheck2.Gen.(pair (int_bound 255) (string_size (int_bound 200)))

let test_codec_roundtrip =
  qtest ~count:500 "codec: decode inverts encode"
    QCheck2.Gen.(list_size (int_bound 8) gen_record)
    (fun records ->
      let buf = Buffer.create 256 in
      List.iter (fun (kind, payload) -> Codec.encode_into buf ~kind payload) records;
      let scan = Codec.scan (Buffer.contents buf) in
      scan.Codec.tail = Codec.Clean
      && scan.Codec.records = records
      && scan.Codec.valid_bytes = Buffer.length buf)

let test_codec_single_byte_mutation =
  qtest ~count:1000 "codec: any single-byte mutation is detected"
    QCheck2.Gen.(
      tup4 (int_bound 255) (string_size (int_bound 120)) (int_bound 10_000)
        (int_range 1 255))
    (fun (kind, payload, off_seed, xor) ->
      let frame = Codec.encode ~kind payload in
      let off = off_seed mod String.length frame in
      let mutated = Bytes.of_string frame in
      Bytes.set mutated off (Char.chr (Char.code (Bytes.get mutated off) lxor xor));
      match Codec.decode (Bytes.to_string mutated) ~pos:0 with
      | Codec.Corrupt | Codec.Truncated -> true (* caught, or a clean tear *)
      | Codec.End | Codec.Record _ -> false (* a wrong record was accepted *))

let test_codec_stream_mutation_prefix =
  qtest ~count:500 "codec: a mutated stream scans to a true prefix"
    QCheck2.Gen.(
      tup4
        (list_size (int_range 1 6) gen_record)
        (int_bound 10_000) (int_range 1 255) bool)
    (fun (records, off_seed, xor, tear) ->
      let buf = Buffer.create 256 in
      List.iter (fun (kind, payload) -> Codec.encode_into buf ~kind payload) records;
      let whole = Buffer.contents buf in
      let damaged =
        if tear then String.sub whole 0 (off_seed mod String.length whole)
        else begin
          let off = off_seed mod String.length whole in
          let b = Bytes.of_string whole in
          Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor xor));
          Bytes.to_string b
        end
      in
      let scan = Codec.scan damaged in
      let rec is_prefix xs ys =
        match (xs, ys) with
        | [], _ -> true
        | x :: xs, y :: ys -> x = y && is_prefix xs ys
        | _ :: _, [] -> false
      in
      is_prefix scan.Codec.records records)

let suite =
  [
    test_fuzz_k0;
    test_fuzz_k1;
    test_fuzz_k4;
    test_fuzz_replay;
    test_fuzz_sy;
    test_codec_roundtrip;
    test_codec_single_byte_mutation;
    test_codec_stream_mutation_prefix;
    test_netmodel_zero_plan_equiv;
    test_netmodel_duplication_first_arrival;
  ]
