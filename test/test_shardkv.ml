(* The sharded KV service: consistent-hash ring laws, the shard
   application's wire format, the multi-put ack's K-rule gating (scripted
   in the simulator), and a live mini-cluster multi-put surviving a
   SIGKILL of a participating shard. *)

open Util
module Ring = Shardkv.Ring
module Shard_app = Shardkv.Shard_app
module Cluster = Harness.Cluster
module Deployment = Net.Deployment

(* ------------------------------------------------------------------ *)
(* Ring                                                                *)

(* Cross-run / cross-process stability: clients and daemons never exchange
   ring state, they rebuild it — so the mapping itself is part of the wire
   contract and is pinned by value, not just by self-consistency. *)
let test_ring_golden () =
  let r = Ring.make ~shards:8 () in
  Alcotest.(check int) "key_hash pinned" 2124457483120015867
    (Ring.key_hash r "key-0");
  List.iter
    (fun (key, owner) -> Alcotest.(check int) key owner (Ring.owner r key))
    [ ("key-0", 7); ("key-1", 0); ("key-42", 6); ("alpha", 7); ("omega", 2) ];
  let r' = Ring.make ~shards:8 () in
  Alcotest.(check bool) "construction is deterministic" true
    (Ring.points r = Ring.points r')

(* Distribution balance, on a deterministic key sample so the bound is a
   regression test rather than a flaky estimate: with 64 vnodes each of 8
   shards owns between 1/1.6 and 1.6x fair share of 20000 keys. *)
let test_ring_balance () =
  let shards = 8 in
  let keys = 20000 in
  let r = Ring.make ~shards () in
  let counts = Array.make shards 0 in
  for i = 0 to keys - 1 do
    let o = Ring.owner r (Fmt.str "key-%d" i) in
    counts.(o) <- counts.(o) + 1
  done;
  let fair = float_of_int keys /. float_of_int shards in
  Array.iteri
    (fun shard c ->
      let ratio = float_of_int c /. fair in
      if ratio > 1.6 || ratio < 1. /. 1.6 then
        Alcotest.failf "shard %d owns %d keys (%.2fx fair share)" shard c ratio)
    counts

(* Growing 16 -> 17 shards must remap about 1/17 of keys — the point of
   consistent hashing.  Exact fraction measured on the same sample. *)
let test_ring_minimal_movement_fraction () =
  let keys = 20000 in
  let a = Ring.make ~shards:16 () in
  let b = Ring.make ~shards:17 () in
  let moved = ref 0 in
  for i = 0 to keys - 1 do
    let k = Fmt.str "key-%d" i in
    if Ring.owner a k <> Ring.owner b k then incr moved
  done;
  let bound = 2. *. float_of_int keys /. 17. in
  if float_of_int !moved > bound then
    Alcotest.failf "%d of %d keys moved (bound %.0f)" !moved keys bound;
  Alcotest.(check bool) "some keys moved" true (!moved > 0)

let gen_ring_key =
  QCheck2.Gen.(
    oneof
      [
        map (Fmt.str "key-%d") (int_bound 100000);
        string_size ~gen:printable (int_range 1 24);
      ])

(* The exact minimal-movement law (not a statistical bound): point
   positions don't depend on ring size, so growing the ring can only move
   a key to the new shard. *)
let test_ring_grow_law =
  qtest "grow n->n+1 remaps only onto the new shard"
    QCheck2.Gen.(pair (int_range 1 32) gen_ring_key)
    (fun (n, key) ->
      let r = Ring.make ~shards:n () in
      let before = Ring.owner r key in
      let after = Ring.owner (Ring.make ~shards:(n + 1) ()) key in
      (* Incremental widening is the same ring as rebuilding from scratch,
         so a daemon that grows via a [Grow] message and one that boots at
         the new width agree point-for-point. *)
      Ring.points (Ring.grow r ~shards:(n + 1))
      = Ring.points (Ring.make ~shards:(n + 1) ())
      && (after = before || after = n))

let test_ring_remove_law =
  qtest "remove i remaps only keys i owned"
    QCheck2.Gen.(triple (int_range 2 32) (int_bound 1000) gen_ring_key)
    (fun (n, i, key) ->
      let i = i mod n in
      let r = Ring.make ~shards:n () in
      let owner = Ring.owner r key in
      let owner' = Ring.owner (Ring.remove r i) key in
      if owner = i then owner' <> i else owner' = owner)

(* ------------------------------------------------------------------ *)
(* Wire format                                                         *)

let gen_pairs =
  QCheck2.Gen.(
    list_size (int_range 1 6)
      (pair (string_size ~gen:printable (int_bound 20)) (int_range (-1000) 1000)))

let gen_shard_msg =
  QCheck2.Gen.(
    oneof
      [
        map2
          (fun key value -> Shard_app.Put { key; value })
          (string_size ~gen:printable (int_bound 20))
          int;
        map2
          (fun g key -> Shard_app.Get { g; key })
          (int_bound 10000)
          (string_size ~gen:printable (int_bound 20));
        map2 (fun m pairs -> Shard_app.Multi_put { m; pairs }) (int_bound 10000)
          gen_pairs;
        map3
          (fun m coord pairs -> Shard_app.Mp_apply { m; coord; pairs })
          (int_bound 10000) (int_bound 64) gen_pairs;
        map2
          (fun m from_ -> Shard_app.Mp_ack { m; from_ })
          (int_bound 10000) (int_bound 64);
        map (fun w -> Shard_app.Grow { w }) (int_bound 128);
        map (fun shard -> Shard_app.Retire_shard { shard }) (int_bound 128);
      ])

let test_wire_roundtrip =
  qtest "shardkv payload: read inverts write" gen_shard_msg (fun msg ->
      match Shard_app.wire.read (Shard_app.wire.write msg) with
      | Ok msg' -> msg = msg'
      | Error e -> QCheck2.Test.fail_report e)

(* ------------------------------------------------------------------ *)
(* Multi-put commit gating (scripted, K = 0)                           *)

(* The paper's output-commit rule IS the multi-put commit protocol: at
   K = 0 the client ack may not commit before every apply interval it
   transitively depends on is stable.  Script the full episode — gated
   fan-out, a participant crash that loses its (unflushed) apply, replay
   via retransmission, and an ack that is delivered but stays uncommitted
   until the coordinator's own interval is flushed. *)
let test_multi_put_gating_k0 () =
  let n = 3 in
  let config = Recovery.Config.k_optimistic ~n ~k:0 () in
  let cl =
    Cluster.create ~config ~app:Shard_app.app ~horizon:400. ~auto_timers:false ()
  in
  let ring = Ring.make ~shards:n () in
  (* Two keys with distinct owners; the coordinator owns the first. *)
  let coord = Ring.owner ring "key-0" in
  let kp =
    let rec find i =
      if Ring.owner ring (Fmt.str "key-%d" i) <> coord then Fmt.str "key-%d" i
      else find (i + 1)
    in
    find 1
  in
  let participant = Ring.owner ring kp in
  Cluster.inject_at cl ~time:1. ~dst:coord
    (Shard_app.Multi_put { m = 0; pairs = [ ("key-0", 10); (kp, 20) ] });
  Cluster.run_until cl 5.;
  (* K = 0 gates the Mp_apply fan-out until the coordinator flushes. *)
  Alcotest.(check bool) "fan-out gated before flush" true
    (Recovery.Node.send_buffer_size (Cluster.node cl coord) > 0);
  Alcotest.(check int) "no ack yet" 0 (Cluster.stats cl).outputs_committed;
  Cluster.flush_at cl ~time:6. ~pid:coord;
  Cluster.run_until cl 10.;
  Alcotest.(check int) "participant applied" 1
    (Recovery.Node.app_state (Cluster.node cl participant)).Shard_app.puts;
  Alcotest.(check int) "still no ack" 0 (Cluster.stats cl).outputs_committed;
  (* Crash the participant before it ever flushed: its apply interval and
     its gated Mp_ack are lost; recovery must redo both. *)
  Cluster.crash_at cl ~time:11. ~pid:participant;
  Cluster.run_until cl 80.;
  Alcotest.(check int) "ack still withheld after crash + replay" 0
    (Cluster.stats cl).outputs_committed;
  Cluster.flush_at cl ~time:85. ~pid:participant;
  Cluster.run_until cl 95.;
  (* The Mp_ack has now reached the coordinator and the ack output exists —
     but the coordinator's own receiving interval is not stable, so the
     commit must still wait: no ack precedes commit stability. *)
  Alcotest.(check int) "ack delivered but uncommitted" 0
    (Cluster.stats cl).outputs_committed;
  Alcotest.(check bool) "ack buffered at coordinator" true
    (Recovery.Node.output_buffer_size (Cluster.node cl coord) > 0);
  Cluster.flush_at cl ~time:100. ~pid:coord;
  Cluster.run_until cl 110.;
  Alcotest.(check int) "ack committed exactly once" 1
    (Cluster.stats cl).outputs_committed;
  let committed_texts =
    List.filter_map
      (fun { Recovery.Trace.ev; _ } ->
        match ev with
        | Recovery.Trace.Output_committed { text; _ } -> Some text
        | _ -> None)
      (Recovery.Trace.events (Cluster.trace cl))
  in
  Alcotest.(check (list string)) "the ack is the multi-put's" [ "mp:0 ok" ]
    committed_texts;
  let report = Harness.Oracle.check ~k:0 ~n (Cluster.trace cl) in
  Alcotest.(check (list string)) "oracle certifies" []
    report.Harness.Oracle.violations;
  Alcotest.(check int) "risk 0 at K=0" 0 report.Harness.Oracle.max_risk

(* ------------------------------------------------------------------ *)
(* Live: multi-put across shards survives killing a participant        *)

let test_live_multi_put_under_kill () =
  let root = Durable.Temp.fresh_dir ~prefix:"test-shardkv-live" () in
  let t = Deployment.launch ~n:3 ~k:0 ~app:"shardkv" ~seed:21 ~root () in
  Fun.protect
    ~finally:(fun () -> try Deployment.destroy t with _ -> ())
  @@ fun () ->
  let svc = Shardkv.Service.connect t in
  let ring = Shardkv.Service.ring svc in
  let coord = Ring.owner ring "key-0" in
  let kp =
    let rec find i =
      if Ring.owner ring (Fmt.str "key-%d" i) <> coord then Fmt.str "key-%d" i
      else find (i + 1)
    in
    find 1
  in
  Shardkv.Service.multi_put svc [ ("key-0", 1); (kp, 2) ];
  (* SIGKILL the participating shard immediately: whether the kill lands
     before or after its apply became stable, the K = 0 oracle run proves
     the ack was never released ahead of commit stability, and the ack
     must still arrive exactly once after recovery. *)
  Deployment.kill t ~dst:(Ring.owner ring kp);
  ignore (Deployment.settle t : bool);
  let outcome = Deployment.finish t in
  Alcotest.(check (list string))
    "oracle certifies" []
    outcome.Deployment.oracle.Harness.Oracle.violations;
  Alcotest.(check int) "risk 0 at K=0" 0
    outcome.Deployment.oracle.Harness.Oracle.max_risk;
  let lat = Shardkv.Service.latency svc in
  Shardkv.Service.Latency.ingest lat outcome.Deployment.trace;
  let stats = Shardkv.Service.Latency.stats lat in
  Alcotest.(check int) "ack committed" 1 stats.Shardkv.Service.acked;
  Alcotest.(check int) "nothing outstanding" 0
    stats.Shardkv.Service.outstanding;
  let acks =
    List.filter
      (fun { Recovery.Trace.ev; _ } ->
        match ev with
        | Recovery.Trace.Output_committed { text; _ } -> text = "mp:0 ok"
        | _ -> false)
      (Recovery.Trace.events outcome.Deployment.trace)
  in
  Alcotest.(check int) "exactly one ack in the merged trace" 1
    (List.length acks)

(* ------------------------------------------------------------------ *)
(* Live: ring grow/remove wired to real membership churn               *)

(* Grow the live cluster by one shard, route fresh traffic onto the
   joiner, then gracefully retire an incumbent and keep serving: the
   law-checked ring transitions ([grow] appends the new shard's points,
   [remove] drops the retiree's) are driven here by actual join/retire,
   with the [Grow]/[Retire_shard] config messages logged like any other
   message so replayed incarnations reproduce the routing. *)
let test_live_grow_retire () =
  let root = Durable.Temp.fresh_dir ~prefix:"test-shardkv-churn" () in
  let t = Deployment.launch ~n:3 ~k:1 ~app:"shardkv" ~seed:31 ~root () in
  Fun.protect
    ~finally:(fun () -> try Deployment.destroy t with _ -> ())
  @@ fun () ->
  let svc = Shardkv.Service.connect t in
  for i = 0 to 9 do
    Shardkv.Service.put svc ~key:(Fmt.str "pre-%d" i) ~value:i
  done;
  Alcotest.(check bool) "settles at width 3" true (Deployment.settle t);
  let joiner = Shardkv.Service.grow svc in
  Alcotest.(check int) "joiner is shard 3" 3 joiner;
  let ring = Shardkv.Service.ring svc in
  Alcotest.(check int) "client ring widened" 4 (Ring.shards ring);
  (* Fresh keys after the grow; the namespace is wide enough that some
     land on the joiner (minimal movement puts ~1/4 of keys there). *)
  let post_keys = List.init 24 (Fmt.str "post-%d") in
  Alcotest.(check bool) "some fresh keys belong to the joiner" true
    (List.exists (fun k -> Ring.owner ring k = joiner) post_keys);
  List.iteri
    (fun i k -> Shardkv.Service.put svc ~key:k ~value:(100 + i))
    post_keys;
  List.iter (fun k -> Shardkv.Service.get svc ~key:k) post_keys;
  Alcotest.(check bool) "settles at width 4" true (Deployment.settle t);
  Shardkv.Service.retire_shard svc ~shard:1;
  let ring = Shardkv.Service.ring svc in
  let pre_retire = Ring.make ~shards:4 () in
  let moved = List.filter (fun k -> Ring.owner pre_retire k = 1) post_keys in
  Alcotest.(check bool) "retiree owned some keys" true (moved <> []);
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Fmt.str "%s no longer routes to the retiree" k)
        true
        (Ring.owner ring k <> 1))
    post_keys;
  (* Rewrite and re-read the moved keys: their new owners must answer. *)
  List.iteri (fun i k -> Shardkv.Service.put svc ~key:k ~value:(500 + i)) moved;
  List.iter (fun k -> Shardkv.Service.get svc ~key:k) moved;
  Alcotest.(check bool) "settles after retirement" true (Deployment.settle t);
  let outcome = Deployment.finish t in
  Alcotest.(check (list string))
    "oracle certifies at the final width" []
    outcome.Deployment.oracle.Harness.Oracle.violations;
  Alcotest.(check bool) "risk within K=1" true
    (outcome.Deployment.oracle.Harness.Oracle.max_risk <= 1);
  let lat = Shardkv.Service.latency svc in
  Shardkv.Service.Latency.ingest lat outcome.Deployment.trace;
  let stats = Shardkv.Service.Latency.stats lat in
  Alcotest.(check int) "every get acked" 0 stats.Shardkv.Service.outstanding;
  let joiner_served =
    List.exists
      (fun { Recovery.Trace.ev; _ } ->
        match ev with
        | Recovery.Trace.Output_committed { pid; _ } -> pid = joiner
        | _ -> false)
      (Recovery.Trace.events outcome.Deployment.trace)
  in
  Alcotest.(check bool) "the joiner committed client outputs" true
    joiner_served

(* The histogram-backed Latency tracker against an exact reference
   computation over the same synthetic trace: counts and max must match
   exactly; the histogram percentiles must bracket the exact order
   statistics within one power-of-two bucket.  Also pins idempotence —
   re-ingesting the same trace (a replayed duplicate commit) changes
   nothing. *)
let test_latency_tracker_equivalence () =
  let epoch = 1000. and time_scale = 0.001 in
  let lat = Shardkv.Service.Latency.create ~epoch ~time_scale () in
  let n = 40 in
  let issue_at i = epoch +. (0.003 *. float_of_int i) in
  for i = 0 to n - 1 do
    Shardkv.Service.Latency.issue lat ~tag:(Fmt.str "get:%d" i)
      ~at:(issue_at i)
  done;
  (* Commit all but the last three, with latencies spreading over several
     histogram buckets; trace time is abstract units. *)
  let acked = n - 3 in
  let exact_lat i = 0.004 +. (0.0011 *. float_of_int (i * i mod 17)) in
  let trace = Recovery.Trace.create () in
  let id = { Recovery.Wire.out_interval = Depend.Entry.make ~inc:0 ~sii:1; out_idx = 0 } in
  for i = 0 to acked - 1 do
    let commit_wall = issue_at i +. exact_lat i in
    Recovery.Trace.add trace
      ~time:((commit_wall -. epoch) /. time_scale)
      (Recovery.Trace.Output_committed
         { pid = 0; id; text = Fmt.str "get:%d -> hit" i; latency = 0. })
  done;
  (* An output answering nothing we issued must not count. *)
  Recovery.Trace.add trace ~time:1.
    (Recovery.Trace.Output_committed
       { pid = 0; id; text = "mp:999 ok"; latency = 0. });
  Shardkv.Service.Latency.ingest lat trace;
  Shardkv.Service.Latency.ingest lat trace;
  let stats = Shardkv.Service.Latency.stats lat in
  let exact = Array.init acked exact_lat in
  Array.sort compare exact;
  let exact_pct p =
    exact.(Stdlib.min (acked - 1)
             (Stdlib.max 0 (int_of_float (Float.ceil (p *. float_of_int acked)) - 1)))
  in
  Alcotest.(check int) "acked exact" acked stats.Shardkv.Service.acked;
  Alcotest.(check int) "outstanding exact" 3 stats.Shardkv.Service.outstanding;
  Alcotest.(check (float 1e-9)) "max exact" exact.(acked - 1)
    stats.Shardkv.Service.max;
  let bracket name hist_q exact_q =
    Alcotest.(check bool)
      (name ^ " within one bucket above the order statistic")
      true
      (hist_q >= exact_q && hist_q <= 2. *. exact_q)
  in
  bracket "p50" stats.Shardkv.Service.p50 (exact_pct 0.5);
  bracket "p99" stats.Shardkv.Service.p99 (exact_pct 0.99);
  (* The deprecated wrapper is the same computation over the service's
     tracker; on a fresh tracker fed the same trace it must agree. *)
  let lat2 = Shardkv.Service.Latency.create ~epoch ~time_scale () in
  for i = 0 to n - 1 do
    Shardkv.Service.Latency.issue lat2 ~tag:(Fmt.str "get:%d" i)
      ~at:(issue_at i)
  done;
  Shardkv.Service.Latency.ingest lat2 trace;
  let stats2 = Shardkv.Service.Latency.stats lat2 in
  Alcotest.(check bool) "independent trackers agree" true (stats = stats2)

let suite =
  [
    Alcotest.test_case "ring: golden values and determinism" `Quick
      test_ring_golden;
    Alcotest.test_case "ring: balance within bound" `Quick test_ring_balance;
    Alcotest.test_case "ring: grow remaps ~1/N of keys" `Quick
      test_ring_minimal_movement_fraction;
    test_ring_grow_law;
    test_ring_remove_law;
    test_wire_roundtrip;
    Alcotest.test_case "latency tracker: histogram vs exact reference"
      `Quick test_latency_tracker_equivalence;
    Alcotest.test_case "multi-put ack gated by the K rule (K=0, scripted)"
      `Quick test_multi_put_gating_k0;
    Alcotest.test_case "live: multi-put survives participant SIGKILL" `Slow
      test_live_multi_put_under_kill;
    Alcotest.test_case "live: ring grow/remove wired to join/retire" `Slow
      test_live_grow_retire;
  ]
