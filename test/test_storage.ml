(* Stable storage: crash semantics, flush, truncation.

   Every assertion runs as a functor over both backends — the in-memory
   simulation and the file-backed durable store — so the two implementations
   of the [Stable_store] contract can never drift apart.  Durable-only
   behavior (kill, reopen, file damage) lives in [Test_durable]. *)

module Store = Storage.Stable_store

module type BACKEND = sig
  val name : string

  val make : unit -> (string, string, string) Store.t
end

module Mem_backend = struct
  let name = "mem"

  let make () : (string, string, string) Store.t = Store.create ()
end

module Disk_backend = struct
  let name = "disk"

  let dirs : string list ref = ref []

  let () = at_exit (fun () -> List.iter Durable.Temp.rm_rf !dirs)

  let make () : (string, string, string) Store.t =
    let dir = Durable.Temp.fresh_dir ~prefix:"conformance" () in
    dirs := dir :: !dirs;
    let store, report = Store.open_durable ~dir () in
    Alcotest.(check bool) "fresh store" true report.Store.fresh;
    store
end

module Conformance (B : BACKEND) = struct
  let make = B.make

  let test_volatile_then_flush () =
    let s = make () in
    Store.append_volatile s "a";
    Store.append_volatile s "b";
    Alcotest.(check int) "volatile" 2 (Store.volatile_length s);
    Alcotest.(check int) "stable" 0 (Store.stable_log_length s);
    Alcotest.(check int) "flush count" 2 (Store.flush s);
    Alcotest.(check int) "volatile empty" 0 (Store.volatile_length s);
    Alcotest.(check int) "stable grows" 2 (Store.stable_log_length s);
    Alcotest.(check (list string)) "order" [ "a"; "b" ] (Store.stable_log_from s ~pos:0)

  let test_empty_flush_not_counted () =
    let s = make () in
    Alcotest.(check int) "nothing written" 0 (Store.flush s);
    Alcotest.(check int) "no flush counted" 0 (Store.flushes s);
    Alcotest.(check int) "no sync write" 0 (Store.sync_writes s)

  let test_crash_drops_volatile_only () =
    let s = make () in
    Store.append_volatile s "stable1";
    ignore (Store.flush s : int);
    Store.append_volatile s "lost1";
    Store.append_volatile s "lost2";
    Alcotest.(check (option string)) "first loss" (Some "lost1") (Store.volatile_peek s);
    Alcotest.(check int) "two lost" 2 (Store.crash s);
    Alcotest.(check int) "volatile gone" 0 (Store.volatile_length s);
    Alcotest.(check (list string)) "stable survives" [ "stable1" ]
      (Store.stable_log_from s ~pos:0)

  let test_stable_log_from () =
    let s = make () in
    List.iter (Store.append_volatile s) [ "a"; "b"; "c"; "d" ];
    ignore (Store.flush s : int);
    Alcotest.(check (list string)) "suffix" [ "c"; "d" ] (Store.stable_log_from s ~pos:2);
    Alcotest.(check (list string)) "whole" [ "a"; "b"; "c"; "d" ]
      (Store.stable_log_from s ~pos:0);
    Alcotest.(check (list string)) "empty suffix" [] (Store.stable_log_from s ~pos:4);
    Alcotest.check_raises "out of range"
      (Invalid_argument "Stable_store.stable_log_from: position out of range") (fun () ->
        ignore (Store.stable_log_from s ~pos:5))

  let test_truncate () =
    let s = make () in
    List.iter (Store.append_volatile s) [ "a"; "b"; "c"; "d" ];
    ignore (Store.flush s : int);
    Store.append_volatile s "volatile";
    let removed = Store.truncate_stable_log s ~keep:2 in
    Alcotest.(check (list string)) "removed tail in order" [ "c"; "d" ] removed;
    Alcotest.(check int) "kept" 2 (Store.stable_log_length s);
    Alcotest.(check int) "volatile cleared too" 0 (Store.volatile_length s);
    Alcotest.(check (list string)) "prefix intact" [ "a"; "b" ]
      (Store.stable_log_from s ~pos:0);
    (* the log can grow again past the truncation point *)
    Store.append_volatile s "e";
    ignore (Store.flush s : int);
    Alcotest.(check (list string)) "regrown" [ "a"; "b"; "e" ]
      (Store.stable_log_from s ~pos:0)

  let test_checkpoints () =
    let s = make () in
    Store.save_checkpoint s "ck1";
    Store.append_volatile s "m1";
    Store.save_checkpoint s "ck2";
    Alcotest.(check int) "checkpoint flushes" 1 (Store.stable_log_length s);
    Alcotest.(check (option string)) "latest" (Some "ck2") (Store.latest_checkpoint s);
    Alcotest.(check (list string)) "newest first" [ "ck2"; "ck1" ] (Store.checkpoints s)

  let test_restore_checkpoint () =
    let s = make () in
    List.iter (Store.save_checkpoint s) [ "ck1"; "ck2"; "ck3" ];
    let found = Store.restore_checkpoint s ~satisfying:(fun c -> c = "ck2") in
    Alcotest.(check (option string)) "found" (Some "ck2") found;
    (* "Discard the checkpoints that follow" (Figure 3). *)
    Alcotest.(check (list string)) "later ones discarded" [ "ck2"; "ck1" ]
      (Store.checkpoints s);
    Alcotest.(check (option string)) "none match" None
      (Store.restore_checkpoint s ~satisfying:(fun c -> c = "ck3"))

  let test_announcements () =
    let s = make () in
    Store.log_announcement s "ann1";
    Store.log_announcement s "ann2";
    Alcotest.(check (list string)) "oldest first" [ "ann1"; "ann2" ]
      (Store.announcements s);
    ignore (Store.crash s : int);
    Alcotest.(check (list string)) "survive crash" [ "ann1"; "ann2" ]
      (Store.announcements s)

  let test_incarnation_counter () =
    let s = make () in
    Alcotest.(check int) "initial" 0 (Store.incarnation s);
    Store.set_incarnation s 3;
    ignore (Store.crash s : int);
    Alcotest.(check int) "survives crash" 3 (Store.incarnation s)

  let test_sync_write_accounting () =
    let s = make () in
    Store.append_volatile s "x";
    ignore (Store.flush s : int);
    Store.save_checkpoint s "ck";
    Store.log_announcement s "ann";
    Store.set_incarnation s 1;
    (* flush(1) + checkpoint(1) + announcement(1) + incarnation(1) *)
    Alcotest.(check int) "sync writes" 4 (Store.sync_writes s);
    Alcotest.(check int) "flushes" 1 (Store.flushes s);
    (* Metrics consistency, as E12/B9 report them: empty flushes are not
       durability rounds, and sync_writes decomposes exactly into flush
       rounds + checkpoints + announcements + incarnation bumps. *)
    ignore (Store.flush s : int);
    Store.append_volatile s "y";
    ignore (Store.flush s : int);
    Store.log_announcement s "ann2";
    let checkpoints = 1 and announcements = 2 and incarnations = 1 in
    Alcotest.(check int) "flush rounds" 2 (Store.flushes s);
    Alcotest.(check int) "sync_writes decomposes"
      (Store.flushes s + checkpoints + announcements + incarnations)
      (Store.sync_writes s)

  let test_truncate_out_of_range () =
    let s = make () in
    Store.append_volatile s "a";
    ignore (Store.flush s : int);
    Alcotest.check_raises "keep too large"
      (Invalid_argument "Stable_store.truncate_stable_log: keep out of range") (fun () ->
        ignore (Store.truncate_stable_log s ~keep:2))

  let test_discard_log_prefix () =
    let s = make () in
    List.iter (Store.append_volatile s) [ "a"; "b"; "c"; "d" ];
    ignore (Store.flush s : int);
    Alcotest.(check int) "discarded" 2 (Store.discard_log_prefix s ~before:2);
    Alcotest.(check int) "base moved" 2 (Store.log_base s);
    Alcotest.(check int) "length unchanged" 4 (Store.stable_log_length s);
    Alcotest.(check int) "live records" 2 (Store.live_log_records s);
    Alcotest.(check (list string)) "suffix readable" [ "c"; "d" ]
      (Store.stable_log_from s ~pos:2)

  let test_prune_checkpoints () =
    let s = make () in
    List.iter (Store.save_checkpoint s) [ "ck1"; "ck2"; "ck3"; "ck4" ];
    Alcotest.(check int) "pruned" 2 (Store.prune_checkpoints s ~keep_latest:2);
    Alcotest.(check (list string)) "latest survive" [ "ck4"; "ck3" ]
      (Store.checkpoints s);
    Alcotest.check_raises "must keep one"
      (Invalid_argument "Stable_store.prune_checkpoints: must keep at least one")
      (fun () -> ignore (Store.prune_checkpoints s ~keep_latest:0))

  let test_prune_older_than_anchor () =
    let s = make () in
    List.iter (Store.save_checkpoint s) [ "ck1"; "ck2"; "ck3" ];
    Alcotest.(check int) "older dropped" 1
      (Store.prune_checkpoints_older_than s ~anchor:(fun c -> c = "ck2"));
    Alcotest.(check (list string)) "anchor and newer stay" [ "ck3"; "ck2" ]
      (Store.checkpoints s)

  let suite =
    List.map
      (fun (name, f) -> Alcotest.test_case (B.name ^ ": " ^ name) `Quick f)
      [
        ("volatile then flush", test_volatile_then_flush);
        ("empty flush not counted", test_empty_flush_not_counted);
        ("crash drops volatile only", test_crash_drops_volatile_only);
        ("stable_log_from", test_stable_log_from);
        ("truncate", test_truncate);
        ("checkpoints", test_checkpoints);
        ("restore_checkpoint discards later", test_restore_checkpoint);
        ("announcements synchronous", test_announcements);
        ("incarnation counter", test_incarnation_counter);
        ("sync write accounting", test_sync_write_accounting);
        ("truncate out of range", test_truncate_out_of_range);
        ("discard log prefix", test_discard_log_prefix);
        ("prune checkpoints", test_prune_checkpoints);
        ("prune older than anchor", test_prune_older_than_anchor);
      ]
end

module Mem_conformance = Conformance (Mem_backend)
module Disk_conformance = Conformance (Disk_backend)

let suite = Mem_conformance.suite @ Disk_conformance.suite
